package badabing_test

import (
	"testing"
	"time"

	"badabing"
)

// TestPublicAPIRoundTrip exercises the documented downstream workflow
// through the facade package only: schedule, mark, assemble, report.
func TestPublicAPIRoundTrip(t *testing.T) {
	plans := badabing.MustSchedule(badabing.ScheduleConfig{P: 0.5, N: 1000, Seed: 1})
	if len(plans) == 0 {
		t.Fatal("empty schedule")
	}

	// Synthesize observations: congestion in slots 100..119 (20 slots
	// = 100 ms at the default 5 ms slot width).
	congested := func(slot int64) bool { return slot >= 100 && slot < 120 }
	var obs []badabing.ProbeObs
	seen := map[int64]bool{}
	for _, pl := range plans {
		for j := 0; j < pl.Probes; j++ {
			s := pl.Slot + int64(j)
			if seen[s] {
				continue
			}
			seen[s] = true
			o := badabing.ProbeObs{
				Slot:        s,
				SentPackets: 3,
				T:           time.Duration(s) * badabing.DefaultSlot,
				OWD:         50 * time.Millisecond,
			}
			if congested(s) {
				o.LostPackets = 1
				o.OWD = 150 * time.Millisecond
			}
			obs = append(obs, o)
		}
	}
	marked := badabing.Mark(obs, badabing.RecommendedMarker(0.5, badabing.DefaultSlot))
	bySlot := map[int64]bool{}
	for i, o := range obs {
		bySlot[o.Slot] = bySlot[o.Slot] || marked[i]
	}
	acc := &badabing.Accumulator{}
	skipped := badabing.Assemble(acc, plans, bySlot)
	if skipped != 0 {
		t.Fatalf("skipped %d experiments with full observations", skipped)
	}
	rep := acc.MakeReport()
	// True frequency is 20/1000 = 0.02.
	if rep.Frequency < 0.01 || rep.Frequency > 0.04 {
		t.Errorf("frequency %.4f, want ≈0.02", rep.Frequency)
	}
	if !rep.HasDuration {
		t.Fatal("no duration estimate")
	}
	// One 100 ms episode.
	if rep.Duration < 0.05 || rep.Duration > 0.2 {
		t.Errorf("duration %.3fs, want ≈0.1s", rep.Duration)
	}
}

func TestPublicMonitor(t *testing.T) {
	m := badabing.NewMonitor(badabing.MonitorConfig{MinExperiments: 10})
	for i := 0; i < 9; i++ {
		m.Add([]bool{false, false})
	}
	if m.Converged() {
		t.Fatal("converged below MinExperiments")
	}
}
