// Package badabing is a Go implementation of the BADABING loss-measurement
// methodology from "Improving Accuracy in End-to-end Packet Loss
// Measurement" (Sommers, Barford, Duffield, Ron — SIGCOMM 2005).
//
// It estimates two characteristics of an end-to-end path that simple
// Poisson probing measures poorly: the frequency of loss episodes and
// their mean duration. The probe process is a discrete-time design —
// at each time slot, with probability p, a short experiment of two (or,
// in the improved design, sometimes three) multi-packet probes is sent —
// whose estimators are consistent under mild assumptions, with built-in
// validation tests that report when the estimates should not be trusted.
//
// This root package re-exports the measurement core so downstream users
// can depend on a single import path:
//
//	sched := badabing.Schedule(badabing.ScheduleConfig{P: 0.3, N: 180000, Seed: 1})
//	acc := &badabing.Accumulator{}
//	... // run the probes, Mark the observations, Assemble the outcomes
//	report := acc.MakeReport()
//
// The repository also contains:
//
//   - a real-UDP sender/collector pair (cmd/badabing) and a Poisson
//     prober baseline (cmd/zing);
//   - a userspace UDP impairment gateway for end-to-end testing without
//     router hardware (cmd/gateway);
//   - a discrete-event reproduction of the paper's laboratory testbed and
//     every table and figure of its evaluation (cmd/labsim, bench_test.go).
package badabing

import (
	"time"

	core "badabing/internal/badabing"
)

// Core probe-process model and estimators (paper §5).
type (
	// Accumulator tallies experiment outcomes and computes the
	// frequency and duration estimators.
	Accumulator = core.Accumulator
	// Plan is one scheduled experiment (start slot and probe count).
	Plan = core.Plan
	// ScheduleConfig parameterizes experiment generation.
	ScheduleConfig = core.ScheduleConfig
	// Report bundles a measurement's estimates and validation.
	Report = core.Report
	// Validation carries the §5.4 self-calibration checks.
	Validation = core.Validation
	// Criteria are acceptance thresholds for Validation.
	Criteria = core.Criteria
	// ProbeObs is a raw per-probe observation.
	ProbeObs = core.ProbeObs
	// MarkerConfig holds the §6.1 congestion-marking parameters α, τ.
	MarkerConfig = core.MarkerConfig
	// Monitor wraps an Accumulator with an open-ended stopping rule.
	Monitor = core.Monitor
	// MonitorConfig parameterizes a Monitor.
	MonitorConfig = core.MonitorConfig
)

// DefaultSlot is the paper's 5 ms discretization interval.
const DefaultSlot = core.DefaultSlot

// Schedule draws the experiment start slots for a session, rejecting
// invalid configurations with an error.
func Schedule(cfg ScheduleConfig) ([]Plan, error) { return core.Schedule(cfg) }

// MustSchedule is Schedule for statically known-good configurations; it
// panics on an invalid one.
func MustSchedule(cfg ScheduleConfig) []Plan { return core.MustSchedule(cfg) }

// Fraction returns a pointer to f, for ScheduleConfig.ExtendedFraction.
func Fraction(f float64) *float64 { return core.Fraction(f) }

// Streaming estimation (mid-run snapshots over sliding windows).
type (
	// Stream is the incremental estimator: outcomes are observed one at
	// a time and F̂/D̂/r̂ can be snapshotted mid-run.
	Stream = core.Stream
	// StreamConfig parameterizes a Stream.
	StreamConfig = core.StreamConfig
	// StreamSnapshot is the estimator state at one instant.
	StreamSnapshot = core.StreamSnapshot
	// Estimates is a JSON-friendly snapshot of one view's estimators.
	Estimates = core.Estimates
)

// NewStream validates the configuration and returns an empty stream.
func NewStream(cfg StreamConfig) (*Stream, error) { return core.NewStream(cfg) }

// EstimatesOf summarizes an accumulator in Estimates form.
func EstimatesOf(a *Accumulator) Estimates { return core.EstimatesOf(a) }

// Mark classifies probes as congested per §6.1 (loss, or high one-way
// delay near a loss).
func Mark(obs []ProbeObs, cfg MarkerConfig) []bool { return core.Mark(obs, cfg) }

// OutcomeSink consumes experiment outcomes (Accumulator, Recorder and
// Monitor all implement it).
type OutcomeSink = core.OutcomeSink

// Recorder retains the outcome sequence for bootstrap confidence
// intervals.
type Recorder = core.Recorder

// Interval is a bootstrap confidence interval.
type Interval = core.Interval

// BootstrapConfig controls Recorder.Bootstrap resampling.
type BootstrapConfig = core.BootstrapConfig

// Counts is the transferable outcome-tally state of an Accumulator.
type Counts = core.Counts

// Adaptive is the round-based §8 adaptivity controller.
type Adaptive = core.Adaptive

// AdaptiveConfig parameterizes an Adaptive controller.
type AdaptiveConfig = core.AdaptiveConfig

// NewAdaptive creates an adaptive controller.
func NewAdaptive(cfg AdaptiveConfig) *Adaptive { return core.NewAdaptive(cfg) }

// Assemble groups per-slot congestion bits into experiment outcomes.
func Assemble(sink OutcomeSink, plans []Plan, marked map[int64]bool) int {
	return core.Assemble(sink, plans, marked)
}

// RecommendedMarker returns the §6.2 α/τ choices for a probe rate.
func RecommendedMarker(p float64, slot time.Duration) MarkerConfig {
	return core.RecommendedMarker(p, slot)
}

// NewMonitor returns a Monitor with the given config.
func NewMonitor(cfg MonitorConfig) *Monitor { return core.NewMonitor(cfg) }
