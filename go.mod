module badabing

go 1.22
