# Standard developer entry points. Everything is plain `go` underneath;
# this file only spells out the common invocations.

GO ?= go

.PHONY: all build vet test race check chaos soak lint bench bench-smoke bench-paper bench-full fuzz experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/runner/... ./internal/wire/... ./internal/session/... ./internal/fleet/... ./internal/store/... ./internal/health/... ./cmd/badabingd/... .

# Fast pre-push gate: static checks plus the race-sensitive packages.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -short ./internal/fleet/... ./internal/session/... ./internal/wire/... ./internal/runner/... ./internal/store/... ./internal/health/...

# Fault-injection matrix under the race detector: every impairment class
# (drop, duplicate, reorder, delay, truncate, corrupt, bursts) against a
# live session, the batch-vs-fallback estimate parity row, plus the
# dead-reflector abort, fleet retry and daemon drain paths.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/... \
		-run 'TestImpaired|TestBatchFallbackParity|TestHung|TestKilled|TestHandshake|TestFlaky'
	$(GO) test -race -count=1 ./internal/session/wiretransport/... ./cmd/badabingd/...
	$(GO) test -race -count=1 ./internal/fleet/ -run 'TestWireSession|TestCreateAPIHardening|TestRetry'

# Supervised self-healing soak: N live wire sessions while the harness
# kills the archive disk (FaultySink windows) and bounces reflectors
# mid-run, under the race detector. Asserts the full recovery story:
# breaker trips, health walks ok→degraded→ok, every spilled event
# replays, no goroutine/fd leak. `-short` runs a reduced matrix in CI.
soak:
	$(GO) test -race -count=1 -v ./internal/chaos/ -run TestSoakSelfHealing
	$(GO) test -race -count=1 ./internal/fleet/ -run 'TestBreaker|TestKillTheDisk|TestAdmission|TestReadyz|TestRetryAfter'

# Static analysis beyond vet. The external analyzers are optional
# locally (skipped with a note when not installed); CI installs both.
lint: vet metrics-hygiene
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "govulncheck not installed; skipping"; fi

# internal/obs is the only producer of Prometheus exposition text: a
# hand-rolled `fmt.Fprintf(w, "# HELP ...")` writer anywhere else
# bypasses the registry (unsorted families, duplicate names, no
# conformance coverage). Test files may hold the literals (they parse
# and assert on them).
metrics-hygiene:
	@bad=$$(grep -rln --include='*.go' --exclude='*_test.go' -e '# HELP' -e '# TYPE' . | grep -v '^\./internal/obs/' || true); \
	if [ -n "$$bad" ]; then \
		echo "metrics-hygiene: exposition text written outside internal/obs:"; \
		echo "$$bad"; exit 1; \
	fi
.PHONY: metrics-hygiene

# Wire hot-path benchmark harness: reflector throughput (batch vs
# single-packet), sender pacing-error distribution, and session cost at
# 1/16/64 concurrent sessions. Writes BENCH_6.json (see README).
bench:
	$(GO) run ./cmd/benchx -out BENCH_6.json

# CI smoke: short workloads, gated against the committed baseline — fails
# on a >20% regression of the batch/single speedup ratio.
bench-smoke:
	$(GO) run ./cmd/benchx -short -out BENCH_6.smoke.json -baseline BENCH_6.json

# Shortened-horizon paper benchmarks: one per table/figure plus ablations.
bench-paper:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Paper-scale benchmarks (same horizons as the paper's 900 s runs).
bench-full:
	BADABING_BENCH_HORIZON=900s $(GO) test -bench=. -benchmem -timeout 4h -run '^$$' .

fuzz:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzHeaderUnmarshal -fuzztime 30s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzControlQuery -fuzztime 30s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzControlReply -fuzztime 30s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzZingHeaderUnmarshal -fuzztime 30s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzLiveness -fuzztime 30s
	$(GO) test ./internal/store/ -run '^$$' -fuzz FuzzWALDecode -fuzztime 30s

# Reproduce every paper table and figure at full scale (≈25 minutes).
experiments:
	$(GO) run ./cmd/labsim -experiment all -horizon 900s

clean:
	$(GO) clean ./...
