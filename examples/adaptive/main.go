// Adaptive: the §8 adaptivity extension running live over UDP. The sender
// starts probing gently (p = 0.1), queries the collector's control channel
// after every round, and escalates only if boundary evidence is arriving
// too slowly — stopping the moment the validation criteria and the §7
// reliability bound are met.
//
// The path is an impairment gateway with loss episodes roughly every
// 700 ms. Takes ≈10–20 real-time seconds depending on when the controller
// converges.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/wire"
	"badabing/internal/wire/gateway"
)

func main() {
	colConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	slot := 10 * time.Millisecond
	col := wire.NewCollector(colConn)
	col.SetMarker(badabing.RecommendedMarker(0.3, slot))
	go col.Run()
	defer col.Close()

	gw, err := gateway.New(gateway.Config{
		Listen:          "127.0.0.1:0",
		Target:          colConn.LocalAddr().String(),
		BitsPerSec:      10_000_000,
		Delay:           10 * time.Millisecond,
		QueueBytes:      62_500,
		EpisodeEvery:    700 * time.Millisecond,
		EpisodeDuration: 120 * time.Millisecond,
		EpisodeOverload: 1.5,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	conn, err := net.Dial("udp", gw.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	fmt.Println("adaptive measurement through the impairment gateway...")
	start := time.Now()
	res, err := wire.SendAdaptive(context.Background(), conn, wire.AdaptiveConfig{
		BaseID: uint64(time.Now().Unix()) << 8,
		Slot:   slot,
		Controller: badabing.AdaptiveConfig{
			PMin:       0.1,
			PMax:       0.9,
			RoundSlots: 300, // 3 s rounds at 10 ms slots
			MaxRounds:  10,
			Monitor: badabing.MonitorConfig{
				Slot:           slot,
				MinExperiments: 200,
				Criteria:       badabing.Criteria{MinBoundarySamples: 12},
			},
		},
		Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, _, episodes := gw.Stats()
	fmt.Printf("done in %v: %d rounds, final p %.2f, %d probe packets, %d gateway episodes\n",
		time.Since(start).Round(time.Millisecond), res.Rounds, res.FinalP, res.Packets, episodes)
	if res.Converged {
		fmt.Println("stopped by convergence (validation + reliability bound)")
	} else {
		fmt.Println("stopped by round budget")
	}
	rep := res.Report
	fmt.Printf("loss-episode frequency: %.4f\n", rep.Frequency)
	if rep.HasDuration {
		fmt.Printf("loss-episode duration:  %.3fs ± %.3fs\n", rep.Duration, rep.StdDev)
	}
}
