// Livewire: the full BADABING tool running over real UDP sockets on
// localhost. A userspace impairment gateway (10 Mb/s link, 15 ms delay,
// drop-tail queue, engineered loss episodes) stands between the sender and
// the collector; the collector reconstructs the probe schedule from the
// packets alone and reports loss characteristics.
//
// This exercises the same code as the cmd/badabing and cmd/gateway
// binaries, wired together in-process. Takes about twelve real-time seconds.
//
// Run with:
//
//	go run ./examples/livewire
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/wire"
	"badabing/internal/wire/gateway"
)

func main() {
	// Collector (the collaborating target host).
	colConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	col := wire.NewCollector(colConn)
	go col.Run()
	defer col.Close()

	// Impairment gateway in front of it: loss episodes of ≈150 ms
	// roughly every 600 ms.
	gw, err := gateway.New(gateway.Config{
		Listen:          "127.0.0.1:0",
		Target:          colConn.LocalAddr().String(),
		BitsPerSec:      10_000_000,
		Delay:           15 * time.Millisecond,
		QueueBytes:      62_500, // 50 ms at 10 Mb/s
		EpisodeEvery:    900 * time.Millisecond,
		EpisodeDuration: 120 * time.Millisecond,
		EpisodeOverload: 1.5,
		Seed:            11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	// Sender: 6 seconds of 10 ms slots at p = 0.5, improved design.
	conn, err := net.Dial("udp", gw.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	cfg := wire.SenderConfig{
		ExpID:    uint64(time.Now().Unix()),
		P:        0.5,
		N:        1200,
		Slot:     10 * time.Millisecond,
		Improved: true,
		Seed:     5,
	}
	fmt.Printf("probing through gateway %v for %v...\n",
		gw.Addr(), time.Duration(cfg.N)*cfg.Slot)
	st, err := wire.Send(context.Background(), conn, cfg)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond) // drain in-flight packets

	rep, ss, err := col.Report(cfg.ExpID, badabing.RecommendedMarker(cfg.P, cfg.Slot))
	if err != nil {
		log.Fatal(err)
	}
	fwd, drop, eps := gw.Stats()

	fmt.Printf("sender: %d experiments, %d probes, %d packets (max pacing lag %v)\n",
		st.Experiments, st.Probes, st.Packets, st.MaxLag)
	fmt.Printf("gateway: forwarded %d, dropped %d, generated %d loss episodes\n", fwd, drop, eps)
	fmt.Printf("collector: %d packets, %d lost, %d probes invalidated for late pacing\n",
		ss.Packets, ss.PacketsLost, ss.LateInvalid)
	fmt.Printf("estimated loss frequency: %.4f\n", rep.Frequency)
	if rep.HasDuration {
		fmt.Printf("estimated episode duration: %.3fs (reliability ±%.3fs)\n", rep.Duration, rep.StdDev)
	}
	v := rep.Validation
	fmt.Printf("validation: 01/10 = %d/%d, violations %d, pass = %v\n",
		v.C01, v.C10, v.Violations, v.Passes(badabing.Criteria{}))
}
