// Pathselect: use BADABING to rank candidate overlay paths by their loss
// characteristics — the paper's motivating application ("path selection in
// peer-to-peer overlay networks", §1).
//
// Three simulated paths carry different congestion regimes:
//
//   - path A: lightly loaded web traffic (rare, short episodes)
//   - path B: heavy web traffic with frequent surges
//   - path C: CBR with long engineered episodes
//
// Each path is measured with an identical low-impact BADABING session and
// the paths are ranked by estimated episode frequency × duration (the
// expected fraction of time a flow would encounter congestion).
//
// Run with:
//
//	go run ./examples/pathselect
package main

import (
	"fmt"
	"sort"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/capture"
	"badabing/internal/probe"
	"badabing/internal/simnet"
	"badabing/internal/traffic"
)

type pathResult struct {
	name   string
	truthF float64
	report badabing.Report
}

// badness is the path-selection score: expected congestion exposure.
func (r pathResult) badness() float64 {
	d := r.report.Duration
	if !r.report.HasDuration {
		d = 0
	}
	_ = d
	return r.report.Frequency
}

func measure(name string, build func(sim *simnet.Sim, d *simnet.Dumbbell, ids *traffic.IDSpace)) pathResult {
	const (
		p       = 0.3
		horizon = 300 * time.Second
	)
	slot := badabing.DefaultSlot
	sim := simnet.New()
	d := simnet.NewDumbbell(sim, simnet.DumbbellConfig{})
	mon := capture.Attach(sim, d.Bottleneck, capture.Config{})
	ids := traffic.NewIDSpace(1000)
	build(sim, d, ids)

	plans := badabing.MustSchedule(badabing.ScheduleConfig{
		P: p, N: int64(horizon / slot), Improved: true, Seed: 7,
	})
	bb := probe.StartBadabing(sim, d, 7, probe.BadabingConfig{
		Plans:  plans,
		Marker: badabing.RecommendedMarker(p, slot),
	})
	sim.Run(horizon + time.Second)
	return pathResult{
		name:   name,
		truthF: mon.Truth(horizon, slot).Frequency,
		report: bb.Report(),
	}
}

func main() {
	results := []pathResult{
		measure("path A (light web)", func(sim *simnet.Sim, d *simnet.Dumbbell, ids *traffic.IDSpace) {
			traffic.NewWeb(sim, d, ids, traffic.WebConfig{
				SessionRate:   10,
				SurgeSpacing:  90 * time.Second,
				SurgeSessions: 120,
				Seed:          1,
			})
		}),
		measure("path B (heavy web)", func(sim *simnet.Sim, d *simnet.Dumbbell, ids *traffic.IDSpace) {
			traffic.NewWeb(sim, d, ids, traffic.WebConfig{
				SessionRate:   40,
				SurgeSpacing:  12 * time.Second,
				SurgeSessions: 400,
				Seed:          2,
			})
		}),
		measure("path C (CBR episodes)", func(sim *simnet.Sim, d *simnet.Dumbbell, ids *traffic.IDSpace) {
			traffic.NewEpisodeInjector(sim, d, ids, traffic.EpisodeInjectorConfig{
				Durations:       []time.Duration{150 * time.Millisecond},
				MeanSpacing:     5 * time.Second,
				Overload:        4,
				BaseUtilization: 0.25,
				Seed:            3,
			})
		}),
	}

	sort.Slice(results, func(i, j int) bool { return results[i].badness() < results[j].badness() })

	fmt.Println("overlay path selection by measured loss characteristics")
	fmt.Printf("%-24s %12s %12s %12s %10s\n",
		"path (best first)", "est freq", "true freq", "est dur", "validated")
	for _, r := range results {
		dur := "n/a"
		if r.report.HasDuration {
			dur = fmt.Sprintf("%.3fs", r.report.Duration)
		}
		fmt.Printf("%-24s %12.4f %12.4f %12s %10v\n",
			r.name, r.report.Frequency, r.truthF, dur,
			r.report.Validation.Passes(badabing.Criteria{}))
	}
	fmt.Printf("\nselected: %s\n", results[0].name)
}
