// Quickstart: measure loss-episode frequency and duration on a congested
// path with BADABING, and compare against ground truth.
//
// The path is the paper's testbed simulated in-process: an OC3 bottleneck
// with 100 ms of buffering and 50 ms of one-way delay, carrying CBR cross
// traffic with engineered ≈68 ms loss episodes every ≈10 s.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/capture"
	"badabing/internal/probe"
	"badabing/internal/simnet"
	"badabing/internal/traffic"
)

func main() {
	const (
		p       = 0.3                  // probe probability per slot
		horizon = 900 * time.Second    // measurement length (the paper runs 15 min)
		slot    = badabing.DefaultSlot // 5 ms discretization
	)

	// Build the simulated path and attach the ground-truth monitor.
	sim := simnet.New()
	path := simnet.NewDumbbell(sim, simnet.DumbbellConfig{})
	monitor := capture.Attach(sim, path.Bottleneck, capture.Config{})

	// Cross traffic: constant-bit-rate load with loss episodes of
	// ≈68 ms at exponentially spaced intervals (the paper's Iperf
	// scenario).
	ids := traffic.NewIDSpace(1000)
	traffic.NewEpisodeInjector(sim, path, ids, traffic.EpisodeInjectorConfig{
		Durations:       []time.Duration{68 * time.Millisecond},
		MeanSpacing:     10 * time.Second,
		Overload:        4,
		BaseUtilization: 0.25,
	})

	// The measurement: schedule the probe process and start BADABING.
	plans := badabing.MustSchedule(badabing.ScheduleConfig{
		P:        p,
		N:        int64(horizon / slot),
		Improved: true,
		Seed:     7,
	})
	bb := probe.StartBadabing(sim, path, 7, probe.BadabingConfig{
		Plans:  plans,
		Marker: badabing.RecommendedMarker(p, slot),
	})

	// Run the virtual clock and report.
	sim.Run(horizon + time.Second)
	truth := monitor.Truth(horizon, slot)
	report := bb.Report()

	fmt.Println("BADABING quickstart — CBR traffic with engineered loss episodes")
	fmt.Printf("probes: %d (%d experiments), ≈%.1f%% of bottleneck capacity\n",
		bb.ProbeCount(), report.M,
		100*float64(bb.ProbeCount()*3*600*8)/(horizon.Seconds()*float64(simnet.OC3)))
	fmt.Printf("%-22s %10s %12s\n", "", "true", "estimated")
	fmt.Printf("%-22s %10.4f %12.4f\n", "episode frequency", truth.Frequency, report.Frequency)
	fmt.Printf("%-22s %9.3fs %11.3fs\n", "episode duration", truth.Duration.Mean(), report.Duration)
	v := report.Validation
	fmt.Printf("validation: boundary counts %d/%d, violations %d — pass=%v\n",
		v.C01, v.C10, v.Violations, v.Passes(badabing.Criteria{}))
}
