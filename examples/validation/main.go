// Validation: BADABING's self-calibration (§5.4, §7). Two measurements of
// the same kind are run:
//
//  1. a well-behaved path whose loss episodes satisfy the model's
//     assumptions — validation passes and the estimates can be trusted;
//  2. a pathological path whose congestion flaps on and off at the probe
//     discretization itself (episodes no longer than a slot, separated by
//     single clear slots) — 010/101 outcomes pile up and the tool
//     *reports its own estimates as untrustworthy* instead of silently
//     misleading (§7: the discretization must be finer than the episodes
//     being measured).
//
// It also demonstrates the open-ended mode: probing continues until the
// validation criteria and the §7 reliability bound are met.
//
// Run with:
//
//	go run ./examples/validation
package main

import (
	"fmt"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/probe"
	"badabing/internal/simnet"
	"badabing/internal/traffic"
)

func wellBehaved() {
	const p = 0.5
	slot := badabing.DefaultSlot
	horizon := 600 * time.Second

	sim := simnet.New()
	d := simnet.NewDumbbell(sim, simnet.DumbbellConfig{})
	ids := traffic.NewIDSpace(1000)
	traffic.NewEpisodeInjector(sim, d, ids, traffic.EpisodeInjectorConfig{
		Durations:       []time.Duration{100 * time.Millisecond},
		MeanSpacing:     8 * time.Second,
		Overload:        4,
		BaseUtilization: 0.25,
	})
	plans := badabing.MustSchedule(badabing.ScheduleConfig{
		P: p, N: int64(horizon / slot), Improved: true, Seed: 8,
	})
	bb := probe.StartBadabing(sim, d, 7, probe.BadabingConfig{
		Plans:  plans,
		Marker: badabing.RecommendedMarker(p, slot),
	})
	sim.Run(horizon + time.Second)
	show("well-behaved path (≈100ms episodes every ≈8s)", bb.Report())
}

// pathological drives a path whose congestion alternates at the slot
// period itself: a small 5 ms buffer is slammed full every 10 ms during
// flap phases, so congested and clear slots interleave 1:1 — exactly the
// structure the 010/101 check exists to catch.
func pathological() {
	const p = 0.5
	slot := badabing.DefaultSlot
	horizon := 600 * time.Second

	sim := simnet.New()
	d := simnet.NewDumbbell(sim, simnet.DumbbellConfig{
		QueueDuration: 5 * time.Millisecond,
	})
	// Flapper: every 2 s, a 400 ms phase of one queue-slamming burst
	// per 10 ms.
	qBytes := d.Bottleneck.QueueCap()
	burst := func(at time.Duration) {
		sim.ScheduleAt(at, func() {
			// Dump 2× the queue in 1500-byte packets: the buffer
			// is full (dropping) for ≈5 ms, then drains clear.
			n := 2 * qBytes / 1500
			for i := 0; i < n; i++ {
				d.Bottleneck.Send(&simnet.Packet{
					ID: sim.NextPacketID(), Flow: 999,
					Kind: simnet.Data, Size: 1500, Sent: at,
				})
			}
		})
	}
	for phase := time.Second; phase < horizon; phase += 2 * time.Second {
		for off := time.Duration(0); off < 400*time.Millisecond; off += 10 * time.Millisecond {
			burst(phase + off)
		}
	}

	plans := badabing.MustSchedule(badabing.ScheduleConfig{
		P: p, N: int64(horizon / slot), Improved: true, Seed: 3,
	})
	bb := probe.StartBadabing(sim, d, 7, probe.BadabingConfig{
		Plans: plans,
		// Loss-only marking: delay thresholds would only blur the
		// sub-slot structure this scenario is about.
		Marker: badabing.MarkerConfig{Alpha: 0, Tau: 0},
	})
	sim.Run(horizon + time.Second)
	show("pathological path (congestion flapping at the slot period)", bb.Report())
}

func show(name string, rep badabing.Report) {
	v := rep.Validation
	fmt.Printf("-- %s\n", name)
	fmt.Printf("   frequency %.4f, duration %.3fs over %d experiments\n",
		rep.Frequency, rep.Duration, rep.M)
	fmt.Printf("   01/10 = %d/%d (asymmetry %.2f), 010/101 violations = %d (rate %.2f)\n",
		v.C01, v.C10, v.BoundaryAsymmetry, v.Violations, v.ViolationRate)
	if v.Passes(badabing.Criteria{}) {
		fmt.Println("   => validation PASSED: estimates are trustworthy")
	} else {
		fmt.Println("   => validation FAILED: reject these estimates (self-calibration, §5.4)")
	}
	fmt.Println()
}

func monitorDemo() {
	// Open-ended measurement: consult the validation criteria and the
	// §7 reliability bound periodically, stop as soon as they hold —
	// the "report when validation confirms the estimation is robust"
	// mode, instead of a fixed-length run.
	slot := badabing.DefaultSlot
	budget := 1800 * time.Second
	sim := simnet.New()
	d := simnet.NewDumbbell(sim, simnet.DumbbellConfig{})
	ids := traffic.NewIDSpace(1000)
	traffic.NewEpisodeInjector(sim, d, ids, traffic.EpisodeInjectorConfig{
		Durations:       []time.Duration{100 * time.Millisecond},
		MeanSpacing:     8 * time.Second,
		Overload:        4,
		BaseUtilization: 0.25,
	})
	plans := badabing.MustSchedule(badabing.ScheduleConfig{
		P: 0.3, N: int64(budget / slot), Improved: true, Seed: 9,
	})
	bb := probe.StartBadabing(sim, d, 7, probe.BadabingConfig{
		Plans:  plans,
		Marker: badabing.RecommendedMarker(0.3, slot),
	})

	var stoppedAt time.Duration
	var check func()
	check = func() {
		rep := bb.Report()
		if rep.M >= 2000 && rep.Validation.Passes(badabing.Criteria{}) &&
			rep.StdDev > 0 && rep.StdDev <= 0.05 {
			stoppedAt = sim.Now()
			return
		}
		if sim.Now() < budget {
			sim.Schedule(30*time.Second, check)
		}
	}
	sim.Schedule(60*time.Second, check)
	sim.Run(budget + time.Second)

	rep := bb.Report()
	fmt.Println("-- open-ended monitoring with a stopping rule")
	if stoppedAt > 0 {
		fmt.Printf("   converged after %v of probing (budget %v)\n", stoppedAt, budget)
	} else {
		fmt.Printf("   did not converge within %v\n", budget)
	}
	fmt.Printf("   frequency %.4f, duration %.3fs ± %.3fs over %d experiments\n",
		rep.Frequency, rep.Duration, rep.StdDev, rep.M)
}

func main() {
	wellBehaved()
	pathological()
	monitorDemo()
}
