// Command zing is a ZING-style Poisson-modulated loss prober over UDP —
// the baseline tool of the paper's §4. The sender emits timestamped,
// sequence-numbered probes at exponentially distributed intervals; the
// collector infers loss from sequence gaps and reports loss frequency and
// the durations of runs of consecutive lost probes.
//
// Usage:
//
//	zing send -target HOST:PORT [-hz 10] [-size 256] [-duration 900s] [-id ID]
//	zing collect -listen :8791 [-every 10s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"badabing/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "send":
		err = runSend(os.Args[2:])
	case "collect":
		err = runCollect(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zing:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  zing send -target HOST:PORT [-hz 10] [-size 256] [-duration 900s]
  zing collect -listen ADDR [-every 10s]`)
}

func runSend(args []string) error {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	target := fs.String("target", "", "collector address (required)")
	hz := fs.Float64("hz", 10, "mean probe rate in probes per second")
	size := fs.Int("size", 256, "probe packet size")
	duration := fs.Duration("duration", 900*time.Second, "session length")
	id := fs.Uint64("id", uint64(time.Now().Unix()), "session id")
	seed := fs.Int64("seed", 0, "interval RNG seed (0 = derive from clock)")
	fs.Parse(args)
	if *target == "" {
		return fmt.Errorf("missing -target")
	}
	conn, err := net.Dial("udp", *target)
	if err != nil {
		return err
	}
	defer conn.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("session %d: Poisson probes at %.1f Hz, %dB → %s for %v\n",
		*id, *hz, *size, *target, *duration)
	sent, err := wire.ZingSend(ctx, conn, wire.ZingSenderConfig{
		ExpID: *id, Rate: *hz, Size: *size, Duration: *duration, Seed: *seed,
	})
	if errors.Is(err, context.Canceled) {
		fmt.Printf("interrupted after %d probes\n", sent)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Printf("sent %d probes; pass -total %d to the collector for exact trailing-loss accounting\n", sent, sent)
	return nil
}

func runCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	listen := fs.String("listen", ":8791", "UDP address to listen on")
	every := fs.Duration("every", 10*time.Second, "report interval")
	total := fs.Uint64("total", 0, "probes the sender reports having sent (0 = infer)")
	fs.Parse(args)

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return err
	}
	defer conn.Close()
	col := wire.NewZingCollector()
	go func() {
		buf := make([]byte, 65536)
		for {
			n, _, err := conn.ReadFrom(buf)
			if err != nil {
				return
			}
			var h wire.ZingHeader
			if err := h.Unmarshal(buf[:n]); err == nil {
				col.Record(&h)
			}
		}
	}()
	fmt.Printf("collecting on %v\n", conn.LocalAddr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tick := time.NewTicker(*every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			report(col, *total)
			return nil
		case <-tick.C:
			report(col, *total)
		}
	}
}

func report(col *wire.ZingCollector, total uint64) {
	ids := col.Sessions()
	if len(ids) == 0 {
		fmt.Println("no sessions yet")
		return
	}
	for _, id := range ids {
		rep, err := col.Report(id, total)
		if err != nil {
			continue
		}
		fmt.Printf("session %d: %d/%d probes received, frequency %.5f, loss runs %d, duration µ %.4fs (σ %.4f)\n",
			id, rep.Received, rep.Probes, rep.Frequency,
			rep.Duration.N(), rep.Duration.Mean(), rep.Duration.StdDev())
	}
}
