package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCrashChild is not a test: it is the subprocess body for
// TestCrashRecovery. When the gate variable is set it runs the real
// daemon against the parent's data dir until the parent SIGKILLs it.
func TestCrashChild(t *testing.T) {
	if os.Getenv("BADABINGD_CRASH_CHILD") != "1" {
		t.Skip("crash-test child body; run via TestCrashRecovery")
	}
	// -fsync always so every acknowledged API write is on disk before
	// the response: the parent's assertions don't race the kill.
	err := run(context.Background(), []string{
		"-listen", "127.0.0.1:0",
		"-data-dir", os.Getenv("BADABINGD_CRASH_DIR"),
		"-fsync", "always",
		"-max-concurrent", "4",
	}, os.Stdout, nil)
	// Only reached if the daemon exits on its own — that is a failure;
	// the parent expects to SIGKILL us.
	fmt.Println("badabingd: child exited:", err)
	os.Exit(3)
}

// startCrashChild re-execs the test binary as a daemon subprocess and
// returns its API base URL once it logs the listen address.
func startCrashChild(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"BADABINGD_CRASH_CHILD=1",
		"BADABINGD_CRASH_DIR="+dir,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "addr="); i >= 0 && strings.Contains(line, "listening") {
				addr, _, _ := strings.Cut(line[i+len("addr="):], " ")
				select {
				case addrc <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatal("child daemon never logged its listen address")
		return nil, ""
	}
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func createSession(t *testing.T, base, cfg string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated || view.ID == "" {
		t.Fatalf("create %s: status %d id %q", cfg, resp.StatusCode, view.ID)
	}
	return view.ID
}

func waitState(t *testing.T, base, id string, want func(string) bool) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body := getBody(t, base+"/v1/sessions/"+id)
		var view struct {
			State string `json:"state"`
		}
		if status == http.StatusOK {
			json.Unmarshal(body, &view)
			if want(view.State) {
				return view.State
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s stuck in %q (status %d)", id, view.State, status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// metricValue extracts an unlabelled sample from a Prometheus text
// exposition.
func metricValue(t *testing.T, body []byte, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad sample %q", name, line)
			}
			return v
		}
	}
	t.Fatalf("metric %s missing from exposition", name)
	return 0
}

// TestCrashRecovery is the end-to-end durability test: a real daemon
// subprocess is SIGKILLed mid-run and restarted on the same data dir.
// Terminal sessions must come back with their history byte-for-byte
// intact, an opted-in running session must resume, a non-opted-in one
// must surface as "recovered", and the registry totals must be monotone
// across the crash.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()

	child1, base := startCrashChild(t, dir)

	// A short session runs to completion: its history is the
	// byte-for-byte baseline.
	doneID := createSession(t, base, `{"scenario":"idle","slots":3000,"seed":7}`)
	waitState(t, base, doneID, func(s string) bool { return s == "done" })
	histURL := "/v1/sessions/" + doneID + "/history"
	status, histBefore := getBody(t, base+histURL)
	if status != http.StatusOK {
		t.Fatalf("history before crash: %d", status)
	}
	var hist struct {
		Store bool `json:"store"`
		Count int  `json:"count"`
	}
	if err := json.Unmarshal(histBefore, &hist); err != nil {
		t.Fatal(err)
	}
	if !hist.Store || hist.Count == 0 {
		t.Fatalf("history before crash: store=%v count=%d, want persisted points", hist.Store, hist.Count)
	}

	// Two slow sessions that will be mid-run at the kill: one opted into
	// resume, one not.
	slowCfg := `"scenario":"idle","slots":60000,"seed":3,"step_delay_micros":50000`
	resumeID := createSession(t, base, `{`+slowCfg+`,"resume":true}`)
	markID := createSession(t, base, `{`+slowCfg+`}`)
	waitState(t, base, resumeID, func(s string) bool { return s == "running" })
	waitState(t, base, markID, func(s string) bool { return s == "running" })

	_, metricsBefore := getBody(t, base+"/metrics")
	createdBefore := metricValue(t, metricsBefore, "badabingd_sessions_created_total")
	if createdBefore != 3 {
		t.Fatalf("created_total before crash = %v, want 3", createdBefore)
	}

	// Crash: no drain, no flush beyond what -fsync always already wrote.
	if err := child1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	child1.Wait()

	_, base2 := startCrashChild(t, dir)

	// Terminal history is byte-for-byte identical across the restart.
	status, histAfter := getBody(t, base2+histURL)
	if status != http.StatusOK {
		t.Fatalf("history after crash: %d", status)
	}
	if string(histAfter) != string(histBefore) {
		t.Errorf("terminal history changed across crash:\nbefore: %s\nafter:  %s", histBefore, histAfter)
	}
	var doneView struct {
		State string `json:"state"`
	}
	_, body := getBody(t, base2+"/v1/sessions/"+doneID)
	json.Unmarshal(body, &doneView)
	if doneView.State != "done" {
		t.Errorf("terminal session state after crash: %q, want done", doneView.State)
	}

	// The resume-opted session is running (or queued) again.
	st := waitState(t, base2, resumeID, func(s string) bool {
		return s == "running" || s == "pending"
	})
	t.Logf("resumed session %s state after restart: %s", resumeID, st)

	// The non-opted session is marked recovered, with its last persisted
	// snapshot still visible.
	var markView struct {
		State     string `json:"state"`
		Recovered bool   `json:"recovered"`
	}
	_, body = getBody(t, base2+"/v1/sessions/"+markID)
	json.Unmarshal(body, &markView)
	if markView.State != "recovered" || !markView.Recovered {
		t.Errorf("interrupted session: state %q recovered %v, want recovered/true", markView.State, markView.Recovered)
	}

	// Registry totals are monotone across the crash, and the recovery
	// metrics report the replay.
	_, metricsAfter := getBody(t, base2+"/metrics")
	createdAfter := metricValue(t, metricsAfter, "badabingd_sessions_created_total")
	if createdAfter < createdBefore {
		t.Errorf("created_total went backwards: %v -> %v", createdBefore, createdAfter)
	}
	for _, name := range []string{"badabingd_probes_sent_total", "badabingd_packets_sent_total"} {
		before := metricValue(t, metricsBefore, name)
		after := metricValue(t, metricsAfter, name)
		if after < before {
			t.Errorf("%s went backwards across crash: %v -> %v", name, before, after)
		}
	}
	if replayed := metricValue(t, metricsAfter, "badabingd_store_records_replayed"); replayed == 0 {
		t.Error("store_records_replayed = 0 after a crash restart")
	}
	if torn := metricValue(t, metricsAfter, "badabingd_store_torn_tails"); torn > 1 {
		t.Errorf("store_torn_tails = %v, want at most the active segment", torn)
	}
}
