package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"badabing/internal/health"
)

// pinnedFamilies is the metric surface the daemon exported before the
// telemetry unification: every family the bespoke writers (fleet,
// store, breaker, health, watchdog, reflector, admission) produced.
// The refactor must keep each name, with its pre-refactor type, or it
// silently breaks every dashboard built on the old exposition.
var pinnedFamilies = map[string]string{
	// fleet registry
	"badabingd_sessions_active":           "gauge",
	"badabingd_sessions":                  "gauge",
	"badabingd_queue_depth":               "gauge",
	"badabingd_workers":                   "gauge",
	"badabingd_sessions_created_total":    "counter",
	"badabingd_sessions_finished_total":   "counter",
	"badabingd_probes_sent_total":         "counter",
	"badabingd_probes_lost_total":         "counter",
	"badabingd_packets_sent_total":        "counter",
	"badabingd_packets_lost_total":        "counter",
	"badabingd_experiments_total":         "counter",
	"badabingd_session_retries_total":     "counter",
	"badabingd_wire_write_failures_total": "counter",
	"badabingd_session_loss_frequency":    "gauge",
	"badabingd_session_experiments":       "gauge",
	"badabingd_session_estimator":         "gauge",
	// admission + health + watchdog
	"badabingd_admission_shed_total":     "counter",
	"badabingd_health_state":             "gauge",
	"badabingd_health_component":         "gauge",
	"badabingd_health_transitions_total": "counter",
	"badabingd_watchdog_goroutines":      "gauge",
	"badabingd_watchdog_heap_bytes":      "gauge",
	// durable archive
	"badabingd_store_bytes_written_total":       "counter",
	"badabingd_store_records_written_total":     "counter",
	"badabingd_store_records_replayed":          "gauge",
	"badabingd_store_recovery_seconds":          "gauge",
	"badabingd_store_torn_tails":                "gauge",
	"badabingd_store_segments":                  "gauge",
	"badabingd_store_segments_dropped_total":    "counter",
	"badabingd_store_compactions_total":         "counter",
	"badabingd_store_fsyncs_total":              "counter",
	"badabingd_store_fsync_seconds_total":       "counter",
	"badabingd_store_sessions":                  "gauge",
	"badabingd_store_points":                    "gauge",
	"badabingd_store_dropped_after_close_total": "counter",
	"badabingd_store_write_errors_total":        "counter",
	"badabingd_store_fsync_errors_total":        "counter",
	// store circuit breaker
	"badabingd_store_breaker_open":         "gauge",
	"badabingd_store_breaker_trips_total":  "counter",
	"badabingd_store_spill_depth":          "gauge",
	"badabingd_store_spilled_total":        "counter",
	"badabingd_store_spill_replayed_total": "counter",
	"badabingd_store_spill_dropped_total":  "counter",
	// co-hosted reflector
	"badabingd_reflector_packets_total":       "counter",
	"badabingd_reflector_pings_total":         "counter",
	"badabingd_reflector_dropped_total":       "counter",
	"badabingd_reflector_read_errors_total":   "counter",
	"badabingd_reflector_shard_packets_total": "counter",
	"badabingd_reflector_shard_pings_total":   "counter",
	"badabingd_reflector_shard_dropped_total": "counter",
}

// TestMetricsConformance boots the full daemon — durable store, circuit
// breaker, watchdog, co-hosted reflector — runs a session to completion
// and validates the live /metrics body end to end: well-formed 0.0.4
// text (one HELP/TYPE pair per family, sorted families, no duplicate
// samples, _total families are counters) carrying at least every
// pre-refactor family.
func TestMetricsConformance(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-listen", "127.0.0.1:0",
			"-data-dir", t.TempDir(),
			"-reflect", "127.0.0.1:0",
			"-max-concurrent", "2",
		}, io.Discard, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// One real session, with a bootstrap estimator so the interval
	// gauges have data to mirror.
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(
		`{"scenario":"cbr","slots":2000,"seed":7,`+
			`"estimator":{"kind":"bootstrap","resamples":60,"block_len":20,"level":0.9,"seed":5}}`))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ID       string `json:"id"`
		State    string `json:"state"`
		Snapshot struct {
			Total struct {
				HasDuration bool `json:"has_duration,omitempty"`
			} `json:"total"`
			FrequencyCI *struct{} `json:"frequency_ci,omitempty"`
			DurationCI  *struct{} `json:"duration_ci,omitempty"`
		} `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for view.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %q", view.State)
		}
		time.Sleep(10 * time.Millisecond)
		resp, err = http.Get(base + "/v1/sessions/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want text/plain; version=0.0.4", ct)
	}

	families := checkExposition(t, string(body))

	// The refactor keeps the complete pre-unification surface, typed as
	// before.
	for name, typ := range pinnedFamilies {
		got, ok := families[name]
		if !ok {
			t.Errorf("pinned family %s missing from /metrics", name)
			continue
		}
		if got != typ {
			t.Errorf("family %s is %s, want pinned type %s", name, got, typ)
		}
	}
	// Families present only when their source has data follow the JSON
	// API's view of the same session.
	conditional := map[string]bool{
		"badabingd_watchdog_open_fds":                   health.CountFDs() >= 0,
		"badabingd_session_loss_frequency_ci_lo":        view.Snapshot.FrequencyCI != nil,
		"badabingd_session_loss_frequency_ci_hi":        view.Snapshot.FrequencyCI != nil,
		"badabingd_session_loss_duration_seconds":       view.Snapshot.Total.HasDuration,
		"badabingd_session_loss_duration_ci_lo_seconds": view.Snapshot.DurationCI != nil,
		"badabingd_session_loss_duration_ci_hi_seconds": view.Snapshot.DurationCI != nil,
	}
	for name, want := range conditional {
		if _, ok := families[name]; ok != want {
			t.Errorf("conditional family %s: present=%v, want %v", name, ok, want)
		}
	}
	// The daemon's own self-metrics ride the same path.
	for _, name := range []string{
		"badabingd_http_requests_total",
		"badabingd_http_request_seconds",
		"badabingd_metrics_render_seconds",
	} {
		if _, ok := families[name]; !ok {
			t.Errorf("self-metric family %s missing", name)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// checkExposition strictly validates a Prometheus 0.0.4 text body and
// returns the family name → type map.
func checkExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	families := make(map[string]string)
	var order []string
	seen := make(map[string]bool) // full sample identity (name{labels})
	var cur, curType string
	helpSeen := make(map[string]bool)

	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || parts[3] == "" {
				t.Fatalf("malformed HELP line %q", line)
			}
			if helpSeen[parts[2]] {
				t.Fatalf("family %s has more than one HELP line", parts[2])
			}
			helpSeen[parts[2]] = true
			cur, curType = parts[2], ""
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, typ := parts[2], parts[3]
			if name != cur {
				t.Fatalf("TYPE %s not directly after its HELP (current family %q)", name, cur)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("family %s has unknown type %q", name, typ)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("family %s declared twice", name)
			}
			if strings.HasSuffix(name, "_total") && typ != "counter" {
				t.Errorf("family %s ends in _total but is a %s", name, typ)
			}
			families[name] = typ
			order = append(order, name)
			curType = typ
			continue
		}
		// Sample line: name{labels} value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		id, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil && val != "+Inf" && val != "NaN" {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := id
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		if curType == "histogram" {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if cut, ok := strings.CutSuffix(name, suf); ok {
					base = cut
					break
				}
			}
		}
		if base != cur {
			t.Fatalf("sample %q under family %q", line, cur)
		}
		if seen[id] {
			t.Fatalf("duplicate sample %q", id)
		}
		seen[id] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(order) {
		t.Errorf("families not sorted: %v", order)
	}
	if len(order) == 0 {
		t.Fatal("empty exposition")
	}
	return families
}
