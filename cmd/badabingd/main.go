// Command badabingd is a long-running measurement daemon: it owns a
// fleet of concurrent BADABING measurement sessions and exposes an HTTP
// API to create sessions, watch live F̂/D̂/r̂ snapshots mid-run, stop
// sessions and scrape Prometheus metrics.
//
//	badabingd -listen :8642
//
//	curl -X POST localhost:8642/v1/sessions -d '{"scenario":"cbr","slots":60000}'
//	curl localhost:8642/v1/sessions/s0001/snapshot
//	curl localhost:8642/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"badabing/internal/fleet"
	"badabing/internal/health"
	"badabing/internal/store"
	"badabing/internal/wire"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "badabingd:", err)
		os.Exit(1)
	}
}

// run wires the registry and HTTP server together and blocks until ctx
// is cancelled, then drains: the registry stops accepting sessions
// (creates answer 503), in-flight sessions are cancelled and snapshot
// their partial estimates, and the daemon exits within -drain-timeout.
// If ready is non-nil it receives the bound listen address once the
// server accepts connections (used by tests to bind port 0).
func run(ctx context.Context, args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("badabingd", flag.ContinueOnError)
	fs.SetOutput(logw)
	listen := fs.String("listen", ":8642", "HTTP listen address")
	maxSessions := fs.Int("max-sessions", 0, "max registered sessions (0 = default)")
	maxConcurrent := fs.Int("max-concurrent", 0, "max concurrently running sessions (0 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline for in-flight sessions")
	reflect := fs.String("reflect", "", "also host a UDP echo reflector on this address (e.g. :8643)")
	reflectShards := fs.Int("reflect-shards", wire.DefaultReflectorShards(),
		"echo goroutines for the co-hosted reflector (each with its own recvmmsg/sendmmsg batch state)")
	dataDir := fs.String("data-dir", "", "durable measurement archive directory (empty = in-memory only)")
	fsyncMode := fs.String("fsync", "interval", "WAL durability policy: always, interval or never")
	fsyncInterval := fs.Duration("fsync-interval", 100*time.Millisecond, "batch-fsync cadence under -fsync interval")
	segmentBytes := fs.Int64("segment-bytes", 4<<20, "WAL segment rotation size")
	retention := fs.Duration("retention", 0, "drop archived history older than this (0 = keep forever)")
	maxPending := fs.Int("max-pending", 0, "shed session creates (503) once this many sessions queue pending (0 = unbounded)")
	createRate := fs.Float64("create-rate", 0, "per-client session creates per second; over it creates shed 429 (0 = unlimited)")
	createBurst := fs.Int("create-burst", 10, "per-client create burst allowance under -create-rate")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive archive write failures that trip the store circuit breaker")
	breakerProbe := fs.Duration("breaker-probe", time.Second, "recovery-probe cadence while the store breaker is open")
	spillEvents := fs.Int("spill-events", 4096, "in-memory spill buffer capacity (events) while the store breaker is open")
	watchdogInterval := fs.Duration("watchdog-interval", 10*time.Second, "resource watchdog sampling cadence")
	maxGoroutines := fs.Int("max-goroutines", 5000, "goroutine budget; over it health degrades, at 2x it fails (0 = unwatched)")
	maxFDs := fs.Int("max-fds", 0, "open file-descriptor budget for the watchdog (0 = unwatched)")
	maxHeap := fs.Uint64("max-heap", 0, "heap-bytes budget for the watchdog (0 = unwatched)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Daemon-wide health: components (store breaker, resource watchdog)
	// report in; the aggregate drives /readyz and admission shedding.
	mon := health.NewMonitor(func(format string, args ...any) {
		fmt.Fprintf(logw, "badabingd: "+format+"\n", args...)
	})

	// The durable archive: WAL-backed session lifecycle + estimate
	// history, replayed on startup so sessions survive crashes. The
	// circuit breaker between registry and archive turns persistent
	// write failures (disk full, dying device) into bounded in-memory
	// spill + recovery replay instead of silent loss.
	var sink fleet.Sink
	var archive *store.Store
	var breaker *fleet.BreakerSink
	var info store.RecoveryInfo
	if *dataDir != "" {
		policy, err := store.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		a, rinfo, err := store.Open(store.Options{
			Dir:           *dataDir,
			SegmentBytes:  *segmentBytes,
			Fsync:         policy,
			FsyncInterval: *fsyncInterval,
			Retention:     *retention,
		})
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		archive = a
		breaker = fleet.NewBreakerSink(archive, fleet.BreakerConfig{
			Threshold:     *breakerThreshold,
			SpillCapacity: *spillEvents,
			ProbeInterval: *breakerProbe,
			Health:        mon,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(logw, "badabingd: "+format+"\n", args...)
			},
		})
		sink = breaker
		info = rinfo
		fmt.Fprintf(logw, "badabingd: store %s: replayed %d records from %d segments in %v (%d torn tails, %d sessions)\n",
			*dataDir, rinfo.Records, max(rinfo.Segments, 1), rinfo.Duration.Round(time.Microsecond),
			rinfo.TornTails, len(rinfo.Sessions))
	}

	// The resource watchdog feeds the health monitor: one transition log
	// per breach, degraded over budget, failing at 2x.
	wd := health.NewWatchdog(mon, health.Budgets{
		MaxGoroutines: *maxGoroutines,
		MaxFDs:        *maxFDs,
		MaxHeapBytes:  *maxHeap,
	}, *watchdogInterval)
	wd.Start()
	defer wd.Stop()

	reg := fleet.NewRegistry(fleet.Config{
		MaxSessions:   *maxSessions,
		MaxConcurrent: *maxConcurrent,
		Store:         sink,
	})
	// Close (and therefore the store flush+close) runs only after every
	// session goroutine joins; the registry owns that ordering.
	defer reg.Close()

	if sink != nil {
		sum := reg.Restore(info)
		if sum.Terminal+sum.Resumed+sum.Marked+sum.Skipped > 0 {
			fmt.Fprintf(logw, "badabingd: recovered %d sessions (%d terminal, %d resumed, %d marked recovered, %d skipped)\n",
				sum.Terminal+sum.Resumed+sum.Marked+sum.Skipped, sum.Terminal, sum.Resumed, sum.Marked, sum.Skipped)
		}
	}

	// Optionally co-host a reflector so one daemon can serve as the far
	// end of another's wire sessions; its counters ride on /metrics.
	var extra []func(io.Writer)
	if archive != nil {
		extra = append(extra, func(w io.Writer) { writeStoreMetrics(w, archive) })
		extra = append(extra, breaker.WriteMetrics)
	}
	extra = append(extra, wd.WriteMetrics)
	if *reflect != "" {
		pc, err := net.ListenPacket("udp", *reflect)
		if err != nil {
			return fmt.Errorf("reflector: %w", err)
		}
		refl := wire.NewReflectorConfig(pc, wire.ReflectorConfig{Shards: *reflectShards})
		refl.OnReadError(func(err error) {
			// Surfaced once per persistent error class (the loop keeps
			// serving); the running count rides on /metrics.
			fmt.Fprintf(logw, "badabingd: reflector read errors: %v\n", err)
		})
		go refl.Run()
		defer refl.Close()
		fmt.Fprintf(logw, "badabingd: reflecting on %s (%d shards)\n", pc.LocalAddr(), refl.Shards())
		extra = append(extra, func(w io.Writer) { writeReflectorMetrics(w, refl) })
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	var limiter *fleet.RateLimiter
	if *createRate > 0 {
		limiter = fleet.NewRateLimiter(*createRate, *createBurst)
	}
	handler := fleet.NewHandlerOpts(reg, fleet.HandlerOptions{
		Health:     mon,
		MaxPending: *maxPending,
		Limiter:    limiter,
	}, extra...)
	srv := newHTTPServer(handler)
	fmt.Fprintf(logw, "badabingd: listening on %s (%d workers)\n", ln.Addr(), reg.Workers())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(logw, "badabingd: draining (deadline %v)\n", *drainTimeout)
	start := time.Now()
	clean := reg.Drain(*drainTimeout)
	for _, s := range reg.List() {
		v := s.View()
		fmt.Fprintf(logw, "badabingd: session %s %s: %d/%d slots, F=%g\n",
			v.ID, v.State, v.SlotsDone, v.Config.Slots, v.Snapshot.Total.Frequency)
	}
	if clean {
		fmt.Fprintf(logw, "badabingd: drained in %v\n", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Fprintf(logw, "badabingd: drain deadline %v exceeded, exiting anyway\n", *drainTimeout)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// newHTTPServer wraps the API handler in a server with conservative
// network timeouts, so one stalled or malicious client cannot pin a
// connection goroutine forever: header read bounded (slowloris), whole
// request read bounded (the API takes small JSON bodies only), idle
// keep-alives reaped. No WriteTimeout: /metrics and history responses
// legitimately stream, and the handler itself is not client-paced.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// writeStoreMetrics appends the durable archive's counters to the
// Prometheus exposition.
func writeStoreMetrics(w io.Writer, s *store.Store) {
	st := s.Stats()
	emit := func(name, kind, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, kind, name, v)
	}
	emit("badabingd_store_bytes_written_total", "counter", "Bytes appended to the measurement WAL.", float64(st.BytesWritten))
	emit("badabingd_store_records_written_total", "counter", "Records appended to the measurement WAL.", float64(st.RecordsWritten))
	emit("badabingd_store_records_replayed", "gauge", "Records replayed from the WAL at the last startup.", float64(st.RecordsReplayed))
	emit("badabingd_store_recovery_seconds", "gauge", "WAL replay duration at the last startup.", st.RecoverySeconds)
	emit("badabingd_store_torn_tails", "gauge", "Segments whose replay ended at a torn or corrupt frame.", float64(st.TornTails))
	emit("badabingd_store_segments", "gauge", "Live WAL segment files (sealed + active).", float64(st.Segments))
	emit("badabingd_store_segments_dropped_total", "counter", "Segments deleted by retention.", float64(st.SegmentsDropped))
	emit("badabingd_store_compactions_total", "counter", "Retention sweeps that dropped or compacted data.", float64(st.Compactions))
	emit("badabingd_store_fsyncs_total", "counter", "WAL fsync calls.", float64(st.Fsyncs))
	emit("badabingd_store_fsync_seconds_total", "counter", "Cumulative time spent in WAL fsyncs (latency = rate of this over fsyncs).", st.FsyncSeconds)
	emit("badabingd_store_sessions", "gauge", "Sessions in the archive index.", float64(st.Sessions))
	emit("badabingd_store_points", "gauge", "Estimate snapshots in the queryable series.", float64(st.Points))
	emit("badabingd_store_dropped_after_close_total", "counter", "Events dropped because they arrived after store close (always 0 when shutdown ordering holds).", float64(st.DroppedAfterClose))
	emit("badabingd_store_write_errors_total", "counter", "WAL append failures (the breaker's trip signal; nonzero means the archive disk misbehaved).", float64(st.WriteErrors))
	emit("badabingd_store_fsync_errors_total", "counter", "WAL fsync failures (acknowledged records may not be durable).", float64(st.FsyncErrors))
}

// writeReflectorMetrics appends the co-hosted reflector's counters to the
// Prometheus exposition.
func writeReflectorMetrics(w io.Writer, refl *wire.Reflector) {
	fmt.Fprintf(w, "# HELP badabingd_reflector_packets_total Probe packets echoed by the co-hosted reflector.\n")
	fmt.Fprintf(w, "# TYPE badabingd_reflector_packets_total counter\n")
	fmt.Fprintf(w, "badabingd_reflector_packets_total %d\n", refl.Packets())
	fmt.Fprintf(w, "# HELP badabingd_reflector_pings_total Liveness pings answered by the co-hosted reflector.\n")
	fmt.Fprintf(w, "# TYPE badabingd_reflector_pings_total counter\n")
	fmt.Fprintf(w, "badabingd_reflector_pings_total %d\n", refl.Pings())
	fmt.Fprintf(w, "# HELP badabingd_reflector_dropped_total Reflector write failures (echoes or pongs it could not send).\n")
	fmt.Fprintf(w, "# TYPE badabingd_reflector_dropped_total counter\n")
	fmt.Fprintf(w, "badabingd_reflector_dropped_total %d\n", refl.Dropped())
	fmt.Fprintf(w, "# HELP badabingd_reflector_read_errors_total Transient read errors the reflector loops survived (monotone; current class logged once per change).\n")
	fmt.Fprintf(w, "# TYPE badabingd_reflector_read_errors_total counter\n")
	readErrs, _ := refl.ReadErrors()
	fmt.Fprintf(w, "badabingd_reflector_read_errors_total %d\n", readErrs)
	// Per-shard rows: the aggregates above are their exact sums, so a
	// cold shard (scheduling imbalance, wedged batch state) is visible.
	fmt.Fprintf(w, "# HELP badabingd_reflector_shard_packets_total Probe packets echoed, by echo shard.\n")
	fmt.Fprintf(w, "# TYPE badabingd_reflector_shard_packets_total counter\n")
	shards := refl.ShardCounts()
	for i, s := range shards {
		fmt.Fprintf(w, "badabingd_reflector_shard_packets_total{shard=%q} %d\n", fmt.Sprint(i), s.Packets)
	}
	fmt.Fprintf(w, "# HELP badabingd_reflector_shard_pings_total Liveness pings answered, by echo shard.\n")
	fmt.Fprintf(w, "# TYPE badabingd_reflector_shard_pings_total counter\n")
	for i, s := range shards {
		fmt.Fprintf(w, "badabingd_reflector_shard_pings_total{shard=%q} %d\n", fmt.Sprint(i), s.Pings)
	}
	fmt.Fprintf(w, "# HELP badabingd_reflector_shard_dropped_total Write failures, by echo shard.\n")
	fmt.Fprintf(w, "# TYPE badabingd_reflector_shard_dropped_total counter\n")
	for i, s := range shards {
		fmt.Fprintf(w, "badabingd_reflector_shard_dropped_total{shard=%q} %d\n", fmt.Sprint(i), s.Dropped)
	}
}
