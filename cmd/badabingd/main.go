// Command badabingd is a long-running measurement daemon: it owns a
// fleet of concurrent BADABING measurement sessions and exposes an HTTP
// API to create sessions, watch live F̂/D̂/r̂ snapshots mid-run, stop
// sessions and scrape Prometheus metrics.
//
//	badabingd -listen :8642
//
//	curl -X POST localhost:8642/v1/sessions -d '{"scenario":"cbr","slots":60000}'
//	curl localhost:8642/v1/sessions/s0001/snapshot
//	curl localhost:8642/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"badabing/internal/fleet"
	"badabing/internal/health"
	"badabing/internal/obs"
	"badabing/internal/store"
	"badabing/internal/wire"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "badabingd:", err)
		os.Exit(1)
	}
}

// run wires the registry and HTTP server together and blocks until ctx
// is cancelled, then drains: the registry stops accepting sessions
// (creates answer 503), in-flight sessions are cancelled and snapshot
// their partial estimates, and the daemon exits within -drain-timeout.
// If ready is non-nil it receives the bound listen address once the
// server accepts connections (used by tests to bind port 0).
func run(ctx context.Context, args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("badabingd", flag.ContinueOnError)
	fs.SetOutput(logw)
	listen := fs.String("listen", ":8642", "HTTP listen address")
	maxSessions := fs.Int("max-sessions", 0, "max registered sessions (0 = default)")
	maxConcurrent := fs.Int("max-concurrent", 0, "max concurrently running sessions (0 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline for in-flight sessions")
	reflect := fs.String("reflect", "", "also host a UDP echo reflector on this address (e.g. :8643)")
	reflectShards := fs.Int("reflect-shards", wire.DefaultReflectorShards(),
		"echo goroutines for the co-hosted reflector (each with its own recvmmsg/sendmmsg batch state)")
	dataDir := fs.String("data-dir", "", "durable measurement archive directory (empty = in-memory only)")
	fsyncMode := fs.String("fsync", "interval", "WAL durability policy: always, interval or never")
	fsyncInterval := fs.Duration("fsync-interval", 100*time.Millisecond, "batch-fsync cadence under -fsync interval")
	segmentBytes := fs.Int64("segment-bytes", 4<<20, "WAL segment rotation size")
	retention := fs.Duration("retention", 0, "drop archived history older than this (0 = keep forever)")
	maxPending := fs.Int("max-pending", 0, "shed session creates (503) once this many sessions queue pending (0 = unbounded)")
	createRate := fs.Float64("create-rate", 0, "per-client session creates per second; over it creates shed 429 (0 = unlimited)")
	createBurst := fs.Int("create-burst", 10, "per-client create burst allowance under -create-rate")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive archive write failures that trip the store circuit breaker")
	breakerProbe := fs.Duration("breaker-probe", time.Second, "recovery-probe cadence while the store breaker is open")
	spillEvents := fs.Int("spill-events", 4096, "in-memory spill buffer capacity (events) while the store breaker is open")
	watchdogInterval := fs.Duration("watchdog-interval", 10*time.Second, "resource watchdog sampling cadence")
	maxGoroutines := fs.Int("max-goroutines", 5000, "goroutine budget; over it health degrades, at 2x it fails (0 = unwatched)")
	maxFDs := fs.Int("max-fds", 0, "open file-descriptor budget for the watchdog (0 = unwatched)")
	maxHeap := fs.Uint64("max-heap", 0, "heap-bytes budget for the watchdog (0 = unwatched)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log line encoding: text or json")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof profiles under /debug/pprof/ on the API listener")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// One structured logger and one metric registry for the whole
	// daemon: every subsystem logs through the former and registers its
	// instrument families into the latter, which GET /metrics renders.
	log, err := obs.NewLoggerFlags(logw, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	o := obs.NewRegistry()

	// Daemon-wide health: components (store breaker, resource watchdog)
	// report in; the aggregate drives /readyz and admission shedding.
	mon := health.NewMonitor(log)

	// The durable archive: WAL-backed session lifecycle + estimate
	// history, replayed on startup so sessions survive crashes. The
	// circuit breaker between registry and archive turns persistent
	// write failures (disk full, dying device) into bounded in-memory
	// spill + recovery replay instead of silent loss.
	var sink fleet.Sink
	var archive *store.Store
	var breaker *fleet.BreakerSink
	var info store.RecoveryInfo
	if *dataDir != "" {
		policy, err := store.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		a, rinfo, err := store.Open(store.Options{
			Dir:           *dataDir,
			SegmentBytes:  *segmentBytes,
			Fsync:         policy,
			FsyncInterval: *fsyncInterval,
			Retention:     *retention,
		})
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		archive = a
		breaker = fleet.NewBreakerSink(archive, fleet.BreakerConfig{
			Threshold:     *breakerThreshold,
			SpillCapacity: *spillEvents,
			ProbeInterval: *breakerProbe,
			Health:        mon,
			Log:           log,
		})
		sink = breaker
		info = rinfo
		archive.RegisterMetrics(o)
		breaker.RegisterMetrics(o)
		log.Info("store opened",
			"dir", *dataDir, "records", rinfo.Records, "segments", max(rinfo.Segments, 1),
			"replay", rinfo.Duration.Round(time.Microsecond),
			"torn_tails", rinfo.TornTails, "sessions", len(rinfo.Sessions))
	}

	// The resource watchdog feeds the health monitor: one transition log
	// per breach, degraded over budget, failing at 2x.
	wd := health.NewWatchdog(mon, health.Budgets{
		MaxGoroutines: *maxGoroutines,
		MaxFDs:        *maxFDs,
		MaxHeapBytes:  *maxHeap,
	}, *watchdogInterval)
	wd.Start()
	defer wd.Stop()
	wd.RegisterMetrics(o)

	reg := fleet.NewRegistry(fleet.Config{
		MaxSessions:   *maxSessions,
		MaxConcurrent: *maxConcurrent,
		Store:         sink,
	})
	// Close (and therefore the store flush+close) runs only after every
	// session goroutine joins; the registry owns that ordering.
	defer reg.Close()

	if sink != nil {
		sum := reg.Restore(info)
		if sum.Terminal+sum.Resumed+sum.Marked+sum.Skipped > 0 {
			log.Info("recovered sessions",
				"total", sum.Terminal+sum.Resumed+sum.Marked+sum.Skipped,
				"terminal", sum.Terminal, "resumed", sum.Resumed,
				"marked", sum.Marked, "skipped", sum.Skipped)
		}
	}

	// Optionally co-host a reflector so one daemon can serve as the far
	// end of another's wire sessions; its counters ride on /metrics.
	if *reflect != "" {
		pc, err := net.ListenPacket("udp", *reflect)
		if err != nil {
			return fmt.Errorf("reflector: %w", err)
		}
		refl := wire.NewReflectorConfig(pc, wire.ReflectorConfig{Shards: *reflectShards})
		refl.OnReadError(func(err error) {
			// Surfaced once per persistent error class (the loop keeps
			// serving); the running count rides on /metrics.
			log.Warn("reflector read errors", "err", err)
		})
		go refl.Run()
		defer refl.Close()
		refl.RegisterMetrics(o)
		log.Info("reflecting", "addr", pc.LocalAddr(), "shards", refl.Shards())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	var limiter *fleet.RateLimiter
	if *createRate > 0 {
		limiter = fleet.NewRateLimiter(*createRate, *createBurst)
	}
	handler := fleet.NewHandlerOpts(reg, fleet.HandlerOptions{
		Health:     mon,
		MaxPending: *maxPending,
		Limiter:    limiter,
		Obs:        o,
	})
	srv := newHTTPServer(handler, *pprofOn)
	log.Info("listening", "addr", ln.Addr(), "workers", reg.Workers(), "pprof", *pprofOn)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Info("draining", "deadline", *drainTimeout)
	start := time.Now()
	clean := reg.Drain(*drainTimeout)
	for _, s := range reg.List() {
		v := s.View()
		log.Info("session final",
			"session", v.ID, "state", v.State,
			"slots_done", v.SlotsDone, "slots", v.Config.Slots,
			"frequency", v.Snapshot.Total.Frequency)
	}
	if clean {
		log.Info("drained", "took", time.Since(start).Round(time.Millisecond))
	} else {
		log.Warn("drain deadline exceeded; exiting anyway", "deadline", *drainTimeout)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// newHTTPServer wraps the API handler in a server with conservative
// network timeouts, so one stalled or malicious client cannot pin a
// connection goroutine forever: header read bounded (slowloris), whole
// request read bounded (the API takes small JSON bodies only), idle
// keep-alives reaped. No WriteTimeout: /metrics and history responses
// legitimately stream, and the handler itself is not client-paced.
// With pprofOn the Go runtime profiles mount under /debug/pprof/ on an
// outer mux, ahead of the API's catch-all 404.
func newHTTPServer(h http.Handler, pprofOn bool) *http.Server {
	if pprofOn {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", h)
		h = outer
	}
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}
