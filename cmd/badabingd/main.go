// Command badabingd is a long-running measurement daemon: it owns a
// fleet of concurrent BADABING measurement sessions and exposes an HTTP
// API to create sessions, watch live F̂/D̂/r̂ snapshots mid-run, stop
// sessions and scrape Prometheus metrics.
//
//	badabingd -listen :8642
//
//	curl -X POST localhost:8642/v1/sessions -d '{"scenario":"cbr","slots":60000}'
//	curl localhost:8642/v1/sessions/s0001/snapshot
//	curl localhost:8642/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"badabing/internal/fleet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "badabingd:", err)
		os.Exit(1)
	}
}

// run wires the registry and HTTP server together and blocks until ctx
// is cancelled, then drains sessions and in-flight requests. If ready is
// non-nil it receives the bound listen address once the server accepts
// connections (used by tests to bind port 0).
func run(ctx context.Context, args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("badabingd", flag.ContinueOnError)
	fs.SetOutput(logw)
	listen := fs.String("listen", ":8642", "HTTP listen address")
	maxSessions := fs.Int("max-sessions", 0, "max registered sessions (0 = default)")
	maxConcurrent := fs.Int("max-concurrent", 0, "max concurrently running sessions (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := fleet.NewRegistry(fleet.Config{
		MaxSessions:   *maxSessions,
		MaxConcurrent: *maxConcurrent,
	})
	defer reg.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: fleet.NewHandler(reg)}
	fmt.Fprintf(logw, "badabingd: listening on %s (%d workers)\n", ln.Addr(), reg.Workers())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(logw, "badabingd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
