package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonEndToEnd boots the daemon on an ephemeral port, runs one
// session through the API, scrapes /metrics and shuts down cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-listen", "127.0.0.1:0", "-max-concurrent", "2"}, io.Discard, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"scenario":"idle","slots":2000,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || view.ID == "" {
		t.Fatalf("create: status %d view %+v", resp.StatusCode, view)
	}

	deadline := time.Now().Add(30 * time.Second)
	for view.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %q", view.State)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err = http.Get(base + "/v1/sessions/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	if !strings.Contains(string(body), `badabingd_sessions{state="done"} 1`) {
		t.Errorf("metrics missing done session:\n%s", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonGracefulDrain sends a real SIGTERM to a daemon with an
// in-flight session and requires it to drain and exit within the
// -drain-timeout deadline: the session is cancelled (stopped, with its
// partial snapshot intact), new creates are refused with 503, and run()
// returns cleanly.
func TestDaemonGracefulDrain(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-listen", "127.0.0.1:0", "-max-concurrent", "2",
			"-drain-timeout", "5s", "-reflect", "127.0.0.1:0",
		}, io.Discard, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// The co-hosted reflector's counters ride on /metrics.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "badabingd_reflector_packets_total") {
		t.Errorf("metrics missing reflector counters:\n%s", body)
	}
	if !strings.Contains(string(body), `badabingd_reflector_shard_packets_total{shard="0"}`) {
		t.Errorf("metrics missing per-shard reflector rows:\n%s", body)
	}
	if !strings.Contains(string(body), "badabingd_reflector_read_errors_total") {
		t.Errorf("metrics missing reflector read-error counter:\n%s", body)
	}

	// A slow session that would run for ~2 minutes unattended: the drain
	// must cut it short.
	resp, err = http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"scenario":"idle","slots":60000,"seed":3,"step_delay_micros":2000000}`))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for view.State != "running" {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %q", view.State)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err = http.Get(base + "/v1/sessions/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exited with error: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatalf("daemon did not drain within the deadline")
	}
	if took := time.Since(start); took > 6*time.Second {
		t.Errorf("drain took %v, deadline was 5s", took)
	}
}

// TestDaemonBadFlags: flag errors surface instead of hanging.
func TestDaemonBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-no-such-flag"}, io.Discard, nil)
	if err == nil {
		t.Fatal("expected flag parse error")
	}
}

// TestServerTimeouts pins satellite hardening: the HTTP server must
// carry the slowloris/stall protections, with sane values.
func TestServerTimeouts(t *testing.T) {
	srv := newHTTPServer(http.NewServeMux(), false)
	cases := []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"ReadHeaderTimeout", srv.ReadHeaderTimeout, 5 * time.Second},
		{"ReadTimeout", srv.ReadTimeout, 30 * time.Second},
		{"IdleTimeout", srv.IdleTimeout, 2 * time.Minute},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.got != tc.want {
				t.Fatalf("%s = %v, want %v", tc.name, tc.got, tc.want)
			}
			if tc.got <= 0 {
				t.Fatalf("%s unset; a stalled client can pin a connection forever", tc.name)
			}
		})
	}
	if srv.WriteTimeout != 0 {
		t.Fatalf("WriteTimeout = %v, want 0 (metrics/history responses may stream)", srv.WriteTimeout)
	}
}

// TestDaemonReadyz boots the daemon and checks the deep-readiness
// endpoint reports the health state machine.
func TestDaemonReadyz(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-listen", "127.0.0.1:0", "-watchdog-interval", "50ms"}, io.Discard, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Status string `json:"status"`
		Health *struct {
			State      string                     `json:"state"`
			Components map[string]json.RawMessage `json:"components"`
		} `json:"health"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body.Status != "ok" {
		t.Fatalf("readyz: %d %+v", resp.StatusCode, body)
	}
	if body.Health == nil {
		t.Fatal("readyz body carries no health snapshot")
	}
	if _, ok := body.Health.Components["resources"]; !ok {
		t.Fatalf("watchdog component missing from readyz: %+v", body.Health.Components)
	}

	// Health metric families ride on /metrics.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"badabingd_health_state 0",
		`badabingd_health_component{component="resources"} 0`,
		"badabingd_watchdog_goroutines",
		"badabingd_admission_shed_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never exited")
	}
}
