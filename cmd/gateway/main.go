// Command gateway runs the UDP impairment proxy standalone: a
// bandwidth-limited, fixed-delay, finite-buffer forwarding element with an
// optional loss-episode generator. It lets the badabing and zing tools be
// exercised end-to-end on a single machine or across a lab without router
// hardware.
//
// Usage:
//
//	gateway -listen :9000 -target HOST:PORT [-rate 10000000]
//	        [-delay 20ms] [-queue 125000]
//	        [-episode-every 10s] [-episode-duration 100ms] [-overload 1.5]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"badabing/internal/obs"
	"badabing/internal/wire/gateway"
)

func main() {
	listen := flag.String("listen", ":9000", "UDP address to listen on")
	target := flag.String("target", "", "address to forward to (required)")
	rate := flag.Int64("rate", 10_000_000, "emulated link rate, bits per second")
	delay := flag.Duration("delay", 20*time.Millisecond, "one-way propagation delay")
	queue := flag.Int("queue", 0, "queue size in bytes (0 = 100ms at the link rate)")
	epEvery := flag.Duration("episode-every", 0, "mean loss-episode spacing (0 = no episodes)")
	epDur := flag.Duration("episode-duration", 100*time.Millisecond, "loss-episode duration")
	overload := flag.Float64("overload", 1.5, "cross-traffic overload factor during episodes")
	seed := flag.Int64("seed", 1, "episode spacing seed")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log line encoding: text or json")
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "gateway: missing -target")
		os.Exit(2)
	}
	log, err := obs.NewLoggerFlags(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gateway:", err)
		os.Exit(2)
	}
	g, err := gateway.New(gateway.Config{
		Listen:          *listen,
		Target:          *target,
		BitsPerSec:      *rate,
		Delay:           *delay,
		QueueBytes:      *queue,
		EpisodeEvery:    *epEvery,
		EpisodeDuration: *epDur,
		EpisodeOverload: *overload,
		Seed:            *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gateway:", err)
		os.Exit(1)
	}
	defer g.Close()
	log.Info("forwarding", "listen", g.Addr(), "target", *target, "rate_bps", *rate, "delay", *delay)
	if *epEvery > 0 {
		log.Info("loss episodes enabled", "mean_spacing", *epEvery, "duration", *epDur, "overload", *overload)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tick := time.NewTicker(10 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			fwd, drop, eps := g.Stats()
			log.Info("final stats", "forwarded", fwd, "dropped", drop, "episodes", eps)
			return
		case <-tick.C:
			fwd, drop, eps := g.Stats()
			log.Info("stats", "forwarded", fwd, "dropped", drop, "episodes", eps)
		}
	}
}
