// Command traceanalyze reconstructs loss characteristics offline from a
// packet trace captured with tracegen (or any writer of the same format):
// loss episodes, episode frequency and mean duration, the router-centric
// loss rate, and a cross-check of trace differencing (lost = entered but
// never left) against the recorded drop events.
//
// Usage:
//
//	traceanalyze -in trace.bbtr [-episodes] [-slot 5ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"badabing/internal/trace"
)

func main() {
	in := flag.String("in", "", "trace file (required)")
	slot := flag.Duration("slot", 5*time.Millisecond, "slot width for the frequency computation")
	listEpisodes := flag.Bool("episodes", false, "list every reconstructed episode")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "traceanalyze: missing -in")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
	sum, err := trace.Analyze(r, trace.AnalyzeConfig{Slot: *slot})
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
	// Second pass for the passive TCP estimate (the reader is drained).
	if _, err := f.Seek(0, 0); err == nil {
		if r2, err := trace.NewReader(f); err == nil {
			if recs, err := trace.ReadAll(r2); err == nil {
				est := trace.EstimateTCPLoss(recs)
				if est.Segments > 0 {
					defer fmt.Printf("passive TCP estimate: %d flows, %d retransmissions, rate %.5f\n",
						est.Flows, est.Retransmissions, est.Rate)
				}
			}
		}
	}
	fmt.Printf("link: %d b/s, queue %d bytes\n", r.Header.BitsPerSec, r.Header.QueueCap)
	fmt.Printf("records: %d (%d arrivals, %d departures, %d drops) over %v\n",
		sum.Records, sum.Arrivals, sum.Departs, sum.Drops, sum.Span.Round(time.Millisecond))
	fmt.Printf("loss rate: %.5f\n", sum.LossRate)
	fmt.Printf("loss episodes: %d (frequency %.4f at %v slots)\n",
		len(sum.Episodes), sum.Frequency, *slot)
	if sum.Duration.N() > 0 {
		fmt.Printf("episode duration: µ %.4fs (σ %.4f)\n",
			sum.Duration.Mean(), sum.Duration.StdDev())
	}
	fmt.Printf("peak queue occupancy: %d bytes (%.1f%% of capacity)\n",
		sum.PeakQueue, 100*float64(sum.PeakQueue)/float64(r.Header.QueueCap))
	if *listEpisodes {
		for i, e := range sum.Episodes {
			fmt.Printf("  %4d  [%10.3fs .. %10.3fs]  %7.1fms  %d drops\n",
				i, e.Start.Seconds(), e.End.Seconds(),
				(e.End-e.Start).Seconds()*1000, e.Drops)
		}
	}
}
