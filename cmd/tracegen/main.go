// Command tracegen runs a cross-traffic scenario on the simulated testbed
// and captures a packet trace at the bottleneck — the in-simulation
// equivalent of the paper's DAG capture setup. The trace can then be
// analyzed offline with traceanalyze.
//
// Usage:
//
//	tracegen -out trace.bbtr -scenario cbr [-horizon 120s] [-seed 1]
//
// Scenarios: tcp (40 infinite TCP sources), cbr (engineered 68 ms
// episodes), cbrmix (50/100/150 ms episodes), web (Harpoon-like).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"badabing/internal/simnet"
	"badabing/internal/trace"
	"badabing/internal/traffic"
)

func main() {
	out := flag.String("out", "", "output trace file (required)")
	scenario := flag.String("scenario", "cbr", "workload: tcp, cbr, cbrmix, web")
	horizon := flag.Duration("horizon", 120*time.Second, "capture duration")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: missing -out")
		os.Exit(2)
	}

	sim := simnet.New()
	d := simnet.NewDumbbell(sim, simnet.DumbbellConfig{})
	ids := traffic.NewIDSpace(1000)
	switch *scenario {
	case "tcp":
		traffic.NewInfiniteTCP(sim, d, ids, 40)
	case "cbr":
		traffic.NewEpisodeInjector(sim, d, ids, traffic.EpisodeInjectorConfig{
			Overload: 4, BaseUtilization: 0.25, Seed: *seed,
		})
	case "cbrmix":
		traffic.NewEpisodeInjector(sim, d, ids, traffic.EpisodeInjectorConfig{
			Durations: []time.Duration{
				50 * time.Millisecond, 100 * time.Millisecond, 150 * time.Millisecond,
			},
			Overload: 4, BaseUtilization: 0.25, Seed: *seed,
		})
	case "web":
		traffic.NewWeb(sim, d, ids, traffic.WebConfig{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	w, err := trace.NewWriter(f, trace.Header{
		BitsPerSec: int64(d.Bottleneck.Rate()),
		QueueCap:   uint32(d.Bottleneck.QueueCap()),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	tap := trace.AttachTap(d.Bottleneck, w)

	sim.Run(*horizon)
	if err := tap.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: tap:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records over %v of %s traffic to %s\n",
		w.Count(), *horizon, *scenario, *out)
}
