// Command benchx runs the wire hot-path benchmark harness and writes a
// machine-readable report (see internal/benchx). With -baseline it also
// acts as the CI regression gate: the run fails if the batched
// reflector's speedup over the single-packet baseline has regressed by
// more than -tolerance relative to the committed report.
//
// The gate compares the batch/single speedup ratio, not raw packets per
// second: absolute throughput tracks the machine (the committed baseline
// and a CI runner differ wildly), while the ratio isolates what this
// repo controls — how much the batched path buys over the portable one
// on the same box.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"badabing/internal/benchx"
)

func main() {
	var (
		out       = flag.String("out", "BENCH_6.json", "write the JSON report here ('-' for stdout)")
		short     = flag.Bool("short", false, "CI smoke sizes (~3s) instead of full workloads (~12s)")
		baseline  = flag.String("baseline", "", "committed report to gate against (empty: no gate)")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional speedup regression vs baseline")
	)
	flag.Parse()

	rep, err := benchx.RunAll(benchx.Options{Short: *short})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchx: %v\n", err)
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchx: encode: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchx: %v\n", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "reflector: batch %.0f pps vs single %.0f pps (%.2fx, %d shards)\n",
		rep.Reflector.BatchPPS, rep.Reflector.SinglePPS, rep.Reflector.Speedup, rep.Reflector.Shards)
	fmt.Fprintf(os.Stderr, "pacing:    p50 %.0fµs p95 %.0fµs p99 %.0fµs max %.0fµs over %d probes\n",
		rep.Pacing.P50us, rep.Pacing.P95us, rep.Pacing.P99us, rep.Pacing.MaxUs, rep.Pacing.Probes)
	for _, s := range rep.Sessions {
		fmt.Fprintf(os.Stderr, "sessions:  x%-3d wall %.2fs cpu %.0fms/session (%d probes, %d errors)\n",
			s.Concurrency, s.WallSeconds, s.CPUMsPerSession, s.Probes, s.Errors)
	}
	for _, e := range rep.Estimators {
		fmt.Fprintf(os.Stderr, "estimator: %-10s %.0f ns/observe, %.3f allocs/observe (%d observes)\n",
			e.Kind, e.NsPerObserve, e.AllocsPerObserve, e.Observes)
	}
	if m := rep.Metrics; m != nil {
		fmt.Fprintf(os.Stderr, "metrics:   render %.0fµs / %.1f allocs (%d families, %d samples, %d B); inc %.3f, observe %.3f allocs\n",
			m.NsPerRender/1e3, m.AllocsPerRender, m.Families, m.Samples, m.BytesPerRender,
			m.CounterIncAllocs, m.HistObserveAllocs)
	}

	// The allocation pin is machine-independent, so it gates every run,
	// baseline or not: the basic and improved estimators' observe path
	// must stay off the heap (the bootstrap kind retains outcomes by
	// design and is exempt).
	for _, e := range rep.Estimators {
		if (e.Kind == "basic" || e.Kind == "improved") && e.AllocsPerObserve > 0 {
			fmt.Fprintf(os.Stderr, "benchx: REGRESSION: estimator %s allocates %.3f per observe, want 0\n",
				e.Kind, e.AllocsPerObserve)
			os.Exit(2)
		}
	}
	// Same machine-independent pin for the telemetry hot path: metric
	// updates on the serve/receive paths must never touch the heap.
	if m := rep.Metrics; m != nil && (m.CounterIncAllocs > 0 || m.HistObserveAllocs > 0) {
		fmt.Fprintf(os.Stderr, "benchx: REGRESSION: instrument updates allocate (inc %.3f, observe %.3f), want 0\n",
			m.CounterIncAllocs, m.HistObserveAllocs)
		os.Exit(2)
	}

	if *baseline == "" {
		return
	}
	base, err := loadReport(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchx: baseline: %v\n", err)
		os.Exit(1)
	}
	floor := base.Reflector.Speedup * (1 - *tolerance)
	if rep.Reflector.Speedup < floor {
		fmt.Fprintf(os.Stderr, "benchx: REGRESSION: speedup %.2fx below floor %.2fx (baseline %.2fx, tolerance %.0f%%)\n",
			rep.Reflector.Speedup, floor, base.Reflector.Speedup, *tolerance*100)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchx: gate ok: speedup %.2fx >= floor %.2fx (baseline %.2fx)\n",
		rep.Reflector.Speedup, floor, base.Reflector.Speedup)

	// Render allocations are pool-amortized and deterministic per
	// registry shape, so they gate as a count against the committed
	// baseline (+1 slack for pool warm-up jitter), not as wall time.
	if m, bm := rep.Metrics, base.Metrics; m != nil && bm != nil {
		ceiling := bm.AllocsPerRender*(1+*tolerance) + 1
		if m.AllocsPerRender > ceiling {
			fmt.Fprintf(os.Stderr, "benchx: REGRESSION: /metrics render allocates %.1f, ceiling %.1f (baseline %.1f)\n",
				m.AllocsPerRender, ceiling, bm.AllocsPerRender)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchx: gate ok: render allocs %.1f <= ceiling %.1f (baseline %.1f)\n",
			m.AllocsPerRender, ceiling, bm.AllocsPerRender)
	}
}

func loadReport(path string) (benchx.Report, error) {
	var rep benchx.Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != benchx.Schema {
		return rep, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, benchx.Schema)
	}
	return rep, nil
}
