// Command badabing is the BADABING loss-measurement tool over real UDP:
// a sender that paces the slot-based probe process toward a collaborating
// target, and a collector that receives probes and reports loss episode
// frequency and duration estimates with validation.
//
// Usage:
//
//	badabing send -target HOST:PORT [-p 0.3] [-n 180000] [-slot 5ms]
//	              [-improved] [-packets 3] [-size 600] [-seed S] [-id ID]
//	badabing collect -listen :8790 [-alpha 0.1] [-tau 30ms] [-every 10s]
//	badabing measure -target HOST:PORT [-p 0.3] [-n 60000] [-slot 5ms] [-seed S]
//	                  [-estimator basic|improved|parametric|bootstrap]
//	badabing reflect -listen :8790
//
// The collector re-derives each session's probe schedule from parameters
// carried in the packets themselves, so no out-of-band coordination is
// needed beyond the address.
//
// send/collect split the two ends of a one-way measurement across hosts;
// measure/reflect are the round-trip deployment shape, where the far end
// is a dumb echo service and the sender runs the whole session engine —
// pacing, collection, marking and streaming estimation — locally.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/estimate"
	"badabing/internal/obs"
	"badabing/internal/session"
	"badabing/internal/session/wiretransport"
	"badabing/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "send":
		err = runSend(os.Args[2:])
	case "collect":
		err = runCollect(os.Args[2:])
	case "measure":
		err = runMeasure(os.Args[2:])
	case "reflect":
		err = runReflect(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "badabing:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  badabing send -target HOST:PORT [flags]
  badabing collect -listen ADDR [flags]
  badabing measure -target HOST:PORT [flags]
  badabing reflect -listen ADDR
run "badabing <subcommand> -h" for flags`)
}

func runSend(args []string) error {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	target := fs.String("target", "", "collector address HOST:PORT (required)")
	p := fs.Float64("p", 0.3, "per-slot experiment probability")
	n := fs.Int64("n", 180000, "number of slots in the session")
	slot := fs.Duration("slot", badabing.DefaultSlot, "slot width")
	improved := fs.Bool("improved", false, "use the improved (triple-probe) design")
	packets := fs.Int("packets", 3, "packets per probe")
	size := fs.Int("size", 600, "probe packet size in bytes")
	seed := fs.Int64("seed", 0, "schedule seed (0 = derive from clock)")
	id := fs.Uint64("id", uint64(time.Now().Unix()), "session id")
	adaptive := fs.Bool("adaptive", false, "adaptive mode: escalate p per round until the estimates validate (requires a collector answering control queries)")
	pmax := fs.Float64("pmax", 0.9, "adaptive: maximum probe probability")
	roundSlots := fs.Int64("round", 6000, "adaptive: slots per round")
	maxRounds := fs.Int("max-rounds", 40, "adaptive: round budget")
	fs.Parse(args)
	if *target == "" {
		return fmt.Errorf("missing -target")
	}
	conn, err := net.Dial("udp", *target)
	if err != nil {
		return err
	}
	defer conn.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *adaptive {
		fmt.Printf("adaptive session %d: p %.2f→%.2f, %d-slot rounds → %s\n",
			*id, *p, *pmax, *roundSlots, *target)
		res, err := wire.SendAdaptive(ctx, conn, wire.AdaptiveConfig{
			BaseID:          *id,
			Slot:            *slot,
			PacketsPerProbe: *packets,
			PacketSize:      *size,
			Seed:            *seed,
			Controller: badabing.AdaptiveConfig{
				PMin:       *p,
				PMax:       *pmax,
				RoundSlots: *roundSlots,
				MaxRounds:  *maxRounds,
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("%d rounds, final p %.2f, %d packets, converged=%v\n",
			res.Rounds, res.FinalP, res.Packets, res.Converged)
		rep := res.Report
		fmt.Printf("frequency %.5f", rep.Frequency)
		if rep.HasDuration {
			fmt.Printf(", duration %.4fs ± %.4f", rep.Duration, rep.StdDev)
		}
		fmt.Println()
		return nil
	}

	cfg := wire.SenderConfig{
		ExpID:           *id,
		P:               *p,
		N:               *n,
		Slot:            *slot,
		Improved:        *improved,
		Seed:            *seed,
		PacketsPerProbe: *packets,
		PacketSize:      *size,
	}
	fmt.Printf("session %d: p=%.2f N=%d slot=%v improved=%v → %s\n",
		*id, *p, *n, *slot, *improved, *target)
	st, err := wire.Send(ctx, conn, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("sent %d experiments, %d probes, %d packets; max pacing lag %v\n",
		st.Experiments, st.Probes, st.Packets, st.MaxLag)
	if st.MaxLag > *slot/2 {
		fmt.Printf("warning: pacing lag exceeded slot/2 — this host cannot sustain %v slots (see paper §7)\n", *slot)
	}
	return nil
}

// runMeasure drives a full round-trip session against an echo endpoint:
// the transport-neutral engine paces the schedule, collects the reflected
// probes on the same socket and streams estimates as the session runs.
func runMeasure(args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	target := fs.String("target", "", "echo endpoint HOST:PORT (required; see badabing reflect)")
	p := fs.Float64("p", 0.3, "per-slot experiment probability")
	n := fs.Int64("n", 60000, "number of slots in the session")
	slot := fs.Duration("slot", badabing.DefaultSlot, "slot width")
	improved := fs.Bool("improved", true, "use the improved (triple-probe) design")
	seed := fs.Int64("seed", 0, "schedule seed (0 = derive from clock)")
	id := fs.Uint64("id", uint64(time.Now().Unix()), "session id")
	step := fs.Int64("step", 1000, "harvest cadence in slots")
	window := fs.Int64("window", 0, "streaming window span in slots (0 = whole session)")
	estKind := fs.String("estimator", estimate.DefaultKind,
		"streaming estimator kind: "+estimate.KindList())
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log line encoding: text or json")
	fs.Parse(args)
	if *target == "" {
		return fmt.Errorf("missing -target")
	}
	log, err := obs.NewLoggerFlags(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	if _, err := estimate.Normalize(*estKind); err != nil {
		return err
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tr, err := wiretransport.Dial(*target, wire.SenderConfig{
		ExpID: *id, P: *p, N: *n, Slot: *slot, Improved: *improved, Seed: *seed,
	})
	if err != nil {
		return err
	}
	defer tr.Close()

	log.Info("session starting",
		"session", *id, "p", *p, "slots", *n, "slot", *slot,
		"improved", *improved, "target", *target)
	res, err := session.Run(ctx, tr, session.Config{
		P: *p, Slots: *n, Slot: *slot, Improved: *improved, Seed: *seed,
		StepSlots: *step, WindowSlots: *window,
		Estimator: estimate.Config{Kind: *estKind},
	}, func(u session.Update) {
		est := u.Snapshot.Total
		fmt.Printf("  %6d/%d slots  F̂=%.5f", u.SlotsDone, *n, est.Frequency)
		printCI(u.Snapshot.FrequencyCI)
		if est.HasDuration {
			fmt.Printf("  D̂=%.4fs", est.Duration)
			printCI(u.Snapshot.DurationCI)
		}
		fmt.Printf("  (%s)\n", u.Counters)
	})
	if err != nil {
		return err
	}
	final := res.Final.Snapshot
	est := final.Total
	fmt.Printf("done (%s): %d probes, frequency %.5f", final.Kind, res.Probes, est.Frequency)
	printCI(final.FrequencyCI)
	if est.HasDuration {
		fmt.Printf(", duration %.4fs", est.Duration)
		printCI(final.DurationCI)
	}
	fmt.Println()
	if lag := tr.SendStats().MaxLag; lag > *slot/2 {
		log.Warn("pacing lag exceeded slot/2; this host cannot sustain this slot width (see paper §7)",
			"max_lag", lag, "slot", *slot)
	}
	return nil
}

// runReflect is the far end of measure: a dumb UDP echo service.
func runReflect(args []string) error {
	fs := flag.NewFlagSet("reflect", flag.ExitOnError)
	listen := fs.String("listen", ":8790", "UDP address to listen on")
	fs.Parse(args)

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return err
	}
	refl := wire.NewReflector(conn)
	defer refl.Close()
	fmt.Printf("reflecting on %v\n", conn.LocalAddr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		refl.Close()
	}()
	refl.Run()
	fmt.Printf("echoed %d packets\n", refl.Packets())
	return nil
}

func runCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	listen := fs.String("listen", ":8790", "UDP address to listen on")
	alpha := fs.Float64("alpha", 0.1, "queue high-water fraction for delay marking")
	tau := fs.Duration("tau", 30*time.Millisecond, "window around losses for delay marking")
	every := fs.Duration("every", 10*time.Second, "report interval")
	jsonOut := fs.Bool("json", false, "emit reports as JSON lines")
	ci := fs.Bool("ci", false, "bootstrap 95% confidence intervals for the estimates")
	fs.Parse(args)

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return err
	}
	col := wire.NewCollector(conn)
	go col.Run()
	defer col.Close()
	fmt.Printf("collecting on %v (alpha=%.3f tau=%v)\n", conn.LocalAddr(), *alpha, *tau)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tick := time.NewTicker(*every)
	defer tick.Stop()
	marker := badabing.MarkerConfig{Alpha: *alpha, Tau: *tau}
	col.SetMarker(marker) // control-channel queries use the same marking
	emit := report
	if *ci {
		emit = func(col *wire.Collector, marker badabing.MarkerConfig) {
			reportCI(col, marker)
		}
	}
	if *jsonOut {
		emit = reportJSON
	}
	for {
		select {
		case <-ctx.Done():
			emit(col, marker)
			return nil
		case <-tick.C:
			emit(col, marker)
		}
	}
}

// jsonReport is the machine-readable form of a session report.
type jsonReport struct {
	Session     uint64            `json:"session"`
	Stats       wire.SessionStats `json:"stats"`
	Report      badabing.Report   `json:"report"`
	Validated   bool              `json:"validated"`
	GeneratedAt time.Time         `json:"generated_at"`
}

func reportJSON(col *wire.Collector, marker badabing.MarkerConfig) {
	enc := json.NewEncoder(os.Stdout)
	for _, id := range col.Sessions() {
		rep, ss, err := col.Report(id, marker)
		if err != nil {
			continue
		}
		// NaN is not representable in JSON; zero out undefined fields.
		if math.IsNaN(rep.DurationBasic) {
			rep.DurationBasic = 0
		}
		if math.IsNaN(rep.DurationImproved) {
			rep.DurationImproved = 0
		}
		if math.IsNaN(rep.StdDev) {
			rep.StdDev = 0
		}
		enc.Encode(jsonReport{
			Session:     id,
			Stats:       ss,
			Report:      rep,
			Validated:   rep.Validation.Passes(badabing.Criteria{}),
			GeneratedAt: time.Now().UTC(),
		})
	}
}

func report(col *wire.Collector, marker badabing.MarkerConfig) {
	ids := col.Sessions()
	if len(ids) == 0 {
		fmt.Println("no sessions yet")
		return
	}
	for _, id := range ids {
		rep, ss, err := col.Report(id, marker)
		if err != nil {
			fmt.Printf("session %d: %v\n", id, err)
			continue
		}
		fmt.Printf("session %d: %d pkts (%d lost, %d probes invalidated)\n",
			id, ss.Packets, ss.PacketsLost, ss.LateInvalid)
		fmt.Printf("  frequency: %.5f\n", rep.Frequency)
		if rep.HasDuration {
			fmt.Printf("  duration:  %.4fs (basic %.4f, improved %s, ±%.4f)\n",
				rep.Duration, rep.DurationBasic, fmtNaN(rep.DurationImproved), rep.StdDev)
		} else {
			fmt.Println("  duration:  no episode boundaries observed yet")
		}
		v := rep.Validation
		fmt.Printf("  validation: 01/10=%d/%d asym=%.2f violations=%d (rate %.3f) pass=%v\n",
			v.C01, v.C10, v.BoundaryAsymmetry, v.Violations, v.ViolationRate,
			v.Passes(badabing.Criteria{}))
	}
}

// reportCI prints reports with bootstrap confidence intervals.
func reportCI(col *wire.Collector, marker badabing.MarkerConfig) {
	ids := col.Sessions()
	if len(ids) == 0 {
		fmt.Println("no sessions yet")
		return
	}
	for _, id := range ids {
		rep, freqCI, durCI, ss, err := col.ReportWithCI(id, marker, badabing.BootstrapConfig{})
		if err != nil {
			fmt.Printf("session %d: %v\n", id, err)
			continue
		}
		fmt.Printf("session %d: %d pkts (%d lost)\n", id, ss.Packets, ss.PacketsLost)
		fmt.Printf("  frequency: %.5f  [%.5f, %.5f] 95%%\n", rep.Frequency, freqCI.Lo, freqCI.Hi)
		if rep.HasDuration {
			fmt.Printf("  duration:  %.4fs [%.4f, %.4f] 95%%\n", rep.Duration, durCI.Lo, durCI.Hi)
		} else {
			fmt.Println("  duration:  no episode boundaries observed yet")
		}
	}
}

// printCI renders a bootstrap confidence interval inline, when present.
func printCI(ci *badabing.Interval) {
	if ci == nil {
		return
	}
	fmt.Printf(" [%.5f, %.5f]@%v", ci.Lo, ci.Hi, ci.Level)
}

func fmtNaN(f float64) string {
	if math.IsNaN(f) {
		return "n/a"
	}
	return fmt.Sprintf("%.4f", f)
}
