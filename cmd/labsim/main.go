// Command labsim reproduces the paper's evaluation on the simulated
// testbed: every table and figure has an experiment id. The default
// horizon matches the paper's 15-minute runs; pass a shorter -horizon for
// a quick look.
//
// Usage:
//
//	labsim -experiment table1 [-horizon 900s] [-seed 1]
//	labsim -experiment all
//
// Experiment ids: table1 table2 table3 table4 table5 table6 table7 table8
// fig4 fig5 fig6 fig7 fig8 fig9a fig9b, or "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"badabing/internal/lab"
)

var experiments = []struct {
	id  string
	run func(lab.RunConfig) fmt.Stringer
}{
	{"table1", func(c lab.RunConfig) fmt.Stringer { return lab.Table1(c) }},
	{"table2", func(c lab.RunConfig) fmt.Stringer { return lab.Table2(c) }},
	{"table3", func(c lab.RunConfig) fmt.Stringer { return lab.Table3(c) }},
	{"table4", func(c lab.RunConfig) fmt.Stringer { return lab.Table4(c) }},
	{"table5", func(c lab.RunConfig) fmt.Stringer { return lab.Table5(c) }},
	{"table6", func(c lab.RunConfig) fmt.Stringer { return lab.Table6(c) }},
	{"table7", func(c lab.RunConfig) fmt.Stringer { return lab.Table7(c) }},
	{"table8", func(c lab.RunConfig) fmt.Stringer { return lab.Table8(c) }},
	{"fig4", func(c lab.RunConfig) fmt.Stringer { return lab.Figure4(c) }},
	{"fig5", func(c lab.RunConfig) fmt.Stringer { return lab.Figure5(c) }},
	{"fig6", func(c lab.RunConfig) fmt.Stringer { return lab.Figure6(c) }},
	{"fig7", func(c lab.RunConfig) fmt.Stringer { return lab.Figure7(c) }},
	{"fig8", func(c lab.RunConfig) fmt.Stringer { return lab.Figure8(c) }},
	{"fig9a", func(c lab.RunConfig) fmt.Stringer { return lab.Figure9a(c) }},
	{"fig9b", func(c lab.RunConfig) fmt.Stringer { return lab.Figure9b(c) }},
	{"multihop", func(c lab.RunConfig) fmt.Stringer { return lab.MultiHop(3, c) }},
	{"red", func(c lab.RunConfig) fmt.Stringer { return lab.RED(c) }},
	{"adaptivestudy", func(c lab.RunConfig) fmt.Stringer { return lab.AdaptiveStudy(c) }},
	{"ablation-placement", func(c lab.RunConfig) fmt.Stringer { return lab.AblationPlacement(c) }},
	{"ablation-marking", func(c lab.RunConfig) fmt.Stringer { return lab.AblationMarking(c) }},
	{"ablation-estimator", func(c lab.RunConfig) fmt.Stringer { return lab.AblationEstimator(c) }},
	{"ablation-slot", func(c lab.RunConfig) fmt.Stringer { return lab.AblationSlot(c) }},
	{"ablation-probesize", func(c lab.RunConfig) fmt.Stringer { return lab.AblationProbeSize(c) }},
	{"ablation-pairs", func(c lab.RunConfig) fmt.Stringer { return lab.AblationExtendedPairs(c) }},
	{"seeds", func(c lab.RunConfig) fmt.Stringer {
		return lab.SeedStudy(lab.CBRUniform, 0.5, []int64{1, 2, 3, 4, 5}, c)
	}},
}

func main() {
	exp := flag.String("experiment", "", "experiment id (table1..table8, fig4..fig9b, multihop, red, adaptivestudy, ablation-*, seeds, all)")
	horizon := flag.Duration("horizon", 900*time.Second, "measurement duration per run")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := lab.RunConfig{Horizon: *horizon, Seed: *seed}
	ran := false
	for _, e := range experiments {
		if *exp == "all" && strings.HasPrefix(e.id, "ablation") {
			continue // ablations run only when named (or via "ablations")
		}
		if *exp != "all" && *exp != e.id &&
			!(*exp == "ablations" && strings.HasPrefix(e.id, "ablation")) {
			continue
		}
		ran = true
		start := time.Now()
		fmt.Printf("== %s (horizon %v, seed %d)\n", e.id, *horizon, *seed)
		fmt.Println(e.run(cfg))
		fmt.Printf("   [%v elapsed]\n\n", time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "labsim: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
