// Command labsim reproduces the paper's evaluation on the simulated
// testbed: every table and figure has an experiment id. The default
// horizon matches the paper's 15-minute runs; pass a shorter -horizon for
// a quick look.
//
// Usage:
//
//	labsim -experiment table1 [-horizon 900s] [-seed 1]
//	labsim -experiment all [-workers 8] [-timeout 10m] [-progress]
//
// Run labsim -h for the experiment ids (the list is generated from the
// experiment registry, so it cannot drift from the code).
//
// Every experiment fans its cells (one scenario × parameter × seed
// combination each) out on a shared parallel experiment engine bounded by
// -workers; results are bit-identical for any worker count, so -workers
// only changes wall-clock time, never the numbers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"badabing/internal/estimate"
	"badabing/internal/lab"
	"badabing/internal/runner"
)

var experiments = []struct {
	id  string
	run func(lab.RunConfig) fmt.Stringer
}{
	{"table1", func(c lab.RunConfig) fmt.Stringer { return lab.Table1(c) }},
	{"table2", func(c lab.RunConfig) fmt.Stringer { return lab.Table2(c) }},
	{"table3", func(c lab.RunConfig) fmt.Stringer { return lab.Table3(c) }},
	{"table4", func(c lab.RunConfig) fmt.Stringer { return lab.Table4(c) }},
	{"table5", func(c lab.RunConfig) fmt.Stringer { return lab.Table5(c) }},
	{"table6", func(c lab.RunConfig) fmt.Stringer { return lab.Table6(c) }},
	{"table7", func(c lab.RunConfig) fmt.Stringer { return lab.Table7(c) }},
	{"table8", func(c lab.RunConfig) fmt.Stringer { return lab.Table8(c) }},
	{"fig4", func(c lab.RunConfig) fmt.Stringer { return lab.Figure4(c) }},
	{"fig5", func(c lab.RunConfig) fmt.Stringer { return lab.Figure5(c) }},
	{"fig6", func(c lab.RunConfig) fmt.Stringer { return lab.Figure6(c) }},
	{"fig7", func(c lab.RunConfig) fmt.Stringer { return lab.Figure7(c) }},
	{"fig8", func(c lab.RunConfig) fmt.Stringer { return lab.Figure8(c) }},
	{"fig9a", func(c lab.RunConfig) fmt.Stringer { return lab.Figure9a(c) }},
	{"fig9b", func(c lab.RunConfig) fmt.Stringer { return lab.Figure9b(c) }},
	{"multihop", func(c lab.RunConfig) fmt.Stringer { return lab.MultiHop(3, c) }},
	{"red", func(c lab.RunConfig) fmt.Stringer { return lab.RED(c) }},
	{"adaptivestudy", func(c lab.RunConfig) fmt.Stringer { return lab.AdaptiveStudy(c) }},
	{"estimators", func(c lab.RunConfig) fmt.Stringer { return lab.EstimatorStudy(estimatorKinds(), c) }},
	{"ablation-placement", func(c lab.RunConfig) fmt.Stringer { return lab.AblationPlacement(c) }},
	{"ablation-marking", func(c lab.RunConfig) fmt.Stringer { return lab.AblationMarking(c) }},
	{"ablation-estimator", func(c lab.RunConfig) fmt.Stringer { return lab.AblationEstimator(c) }},
	{"ablation-slot", func(c lab.RunConfig) fmt.Stringer { return lab.AblationSlot(c) }},
	{"ablation-probesize", func(c lab.RunConfig) fmt.Stringer { return lab.AblationProbeSize(c) }},
	{"ablation-pairs", func(c lab.RunConfig) fmt.Stringer { return lab.AblationExtendedPairs(c) }},
	{"seeds", func(c lab.RunConfig) fmt.Stringer {
		return lab.SeedStudy(lab.CBRUniform, 0.5, []int64{1, 2, 3, 4, 5}, c)
	}},
}

// experimentIDs renders the registry for flag help: every valid
// -experiment value, plus the "all"/"ablations" selectors.
func experimentIDs() string {
	ids := make([]string, 0, len(experiments)+2)
	for _, e := range experiments {
		ids = append(ids, e.id)
	}
	return strings.Join(append(ids, "ablations", "all"), " ")
}

// estimatorFlag backs -estimator; read after flag.Parse by the
// "estimators" experiment entry.
var estimatorFlag *string

// estimatorKinds parses -estimator: empty means every registered kind.
func estimatorKinds() []string {
	if estimatorFlag == nil || *estimatorFlag == "" {
		return nil
	}
	return strings.Split(*estimatorFlag, ",")
}

func main() {
	exp := flag.String("experiment", "", "experiment id: "+experimentIDs())
	estimatorFlag = flag.String("estimator", "",
		"estimators experiment: comma-separated kinds to compare (empty = all; valid: "+estimate.KindList()+")")
	horizon := flag.Duration("horizon", 900*time.Second, "measurement duration per run")
	seed := flag.Int64("seed", 1, "workload seed")
	workers := flag.Int("workers", 0, "concurrent experiment cells (0 = one per CPU); results are identical for any value")
	timeout := flag.Duration("timeout", 0, "per-cell timeout (0 = none); a timed-out cell is reported and skipped")
	progress := flag.Bool("progress", false, "print each cell completion (key, worker, elapsed) to stderr")
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	for _, kind := range estimatorKinds() {
		if _, err := estimate.Normalize(kind); err != nil {
			fmt.Fprintln(os.Stderr, "labsim:", err)
			os.Exit(2)
		}
	}

	// Ctrl-C / SIGTERM stops scheduling new cells and lets the sweep
	// drain; cells not yet started are skipped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var onResult func(runner.Result)
	if *progress {
		var mu sync.Mutex
		onResult = func(r runner.Result) {
			mu.Lock()
			defer mu.Unlock()
			status := "ok"
			if r.Err != nil {
				status = r.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "   cell %-60s worker %d  %9v  %s\n",
				r.Key, r.Worker, r.Elapsed.Round(time.Millisecond), status)
		}
	}
	pool := runner.New(runner.Config{
		Workers:  *workers,
		Timeout:  *timeout,
		BaseSeed: *seed,
		OnResult: onResult,
	})
	cfg := lab.RunConfig{Horizon: *horizon, Seed: *seed, Pool: pool, Ctx: ctx}

	var selected []int
	for i, e := range experiments {
		if *exp == "all" && strings.HasPrefix(e.id, "ablation") {
			continue // ablations run only when named (or via "ablations")
		}
		if *exp != "all" && *exp != e.id &&
			!(*exp == "ablations" && strings.HasPrefix(e.id, "ablation")) {
			continue
		}
		selected = append(selected, i)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "labsim: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	// Experiments run concurrently: each only assembles results, the
	// heavy lifting happens in cells on the shared pool, so -workers
	// bounds total parallelism. Output streams in experiment order.
	type outcome struct {
		text    string
		elapsed time.Duration
	}
	start := time.Now()
	done := make([]chan outcome, len(selected))
	for i, idx := range selected {
		e := experiments[idx]
		done[i] = make(chan outcome, 1)
		go func(ch chan<- outcome) {
			t0 := time.Now()
			ch <- outcome{e.run(cfg).String(), time.Since(t0)}
		}(done[i])
	}
	for i, idx := range selected {
		o := <-done[i]
		fmt.Printf("== %s (horizon %v, seed %d)\n", experiments[idx].id, *horizon, *seed)
		fmt.Println(o.text)
		fmt.Printf("   [%v elapsed]\n\n", o.elapsed.Round(time.Millisecond))
	}

	if st := pool.Stats(); st.Cells > 0 {
		wall := time.Since(start)
		fmt.Printf("== engine: %d cells (%d failed) on %d workers, %v wall, %v work (%.2fx speedup)\n",
			st.Cells, st.Failed, pool.Workers(), wall.Round(time.Millisecond),
			st.Work.Round(time.Millisecond), float64(st.Work)/float64(wall))
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "labsim: interrupted; remaining cells skipped")
		os.Exit(130)
	}
}
