package tcp

import (
	"testing"
	"time"

	"badabing/internal/simnet"
)

func testbed(cfg simnet.DumbbellConfig) (*simnet.Sim, *simnet.Dumbbell) {
	s := simnet.New()
	return s, simnet.NewDumbbell(s, cfg)
}

func TestFiniteTransferNoLoss(t *testing.T) {
	s, d := testbed(simnet.DumbbellConfig{})
	completed := false
	Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{
		TotalBytes: 150_000, // 100 segments
		OnComplete: func() { completed = true },
	})
	s.Run(30 * time.Second)
	if !completed {
		t.Fatal("transfer did not complete on a clean path")
	}
	_, dropped, _ := [3]uint64{}[0], uint64(0), uint64(0)
	_ = dropped
	if _, drops, _ := d.Bottleneck.Stats(); drops != 0 {
		t.Fatalf("unexpected drops on an uncongested path: %d", drops)
	}
}

func TestFiniteTransferNoRetransWithoutLoss(t *testing.T) {
	s, d := testbed(simnet.DumbbellConfig{})
	f := Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{
		TotalBytes: 1_500_000,
	})
	s.Run(60 * time.Second)
	if !f.Done() {
		t.Fatal("transfer incomplete")
	}
	sent, retrans, timeouts, fastRtx := f.Counters()
	if retrans != 0 || timeouts != 0 || fastRtx != 0 {
		t.Fatalf("spurious recovery on clean path: sent=%d retrans=%d timeouts=%d fastrtx=%d",
			sent, retrans, timeouts, fastRtx)
	}
	if f.AckedSegments() != 1000 {
		t.Fatalf("acked %d segments, want 1000", f.AckedSegments())
	}
}

func TestThroughputWindowLimited(t *testing.T) {
	// One flow, huge bottleneck: throughput should be capped by
	// rwnd/RTT = 256*1500B/100ms ≈ 30.7 Mb/s, i.e. ≈ 2560 segs/s.
	s, d := testbed(simnet.DumbbellConfig{BottleneckRate: simnet.GigE})
	f := Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{})
	s.Run(20 * time.Second)
	rate := float64(f.AckedSegments()) / 20 // segments per second
	if rate < 2000 || rate > 2700 {
		t.Fatalf("window-limited rate = %.0f seg/s, want ≈2560", rate)
	}
}

func TestRecoveryFromLoss(t *testing.T) {
	// Narrow bottleneck with a small queue forces drops; the flow must
	// still complete, using fast retransmit rather than stalling.
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{
		BottleneckRate: simnet.Rate(10_000_000),
		QueueDuration:  20 * time.Millisecond,
	})
	done := false
	f := Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{
		TotalBytes: 3_000_000,
		OnComplete: func() { done = true },
	})
	s.Run(2 * time.Minute)
	if !done {
		t.Fatal("transfer did not complete despite losses")
	}
	_, retrans, _, fastRtx := f.Counters()
	if _, drops, _ := d.Bottleneck.Stats(); drops == 0 {
		t.Fatal("test invalid: no drops induced")
	}
	if retrans == 0 {
		t.Fatal("drops occurred but no retransmissions")
	}
	if fastRtx == 0 {
		t.Fatal("expected at least one fast retransmit")
	}
}

func TestCwndHalvesOnFastRetransmit(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{
		BottleneckRate: simnet.Rate(10_000_000),
		QueueDuration:  20 * time.Millisecond,
	})
	f := Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{})
	var peak float64
	var after float64
	found := false
	var poll func()
	poll = func() {
		if f.Cwnd() > peak && !found {
			peak = f.Cwnd()
		}
		_, _, _, fr := f.Counters()
		if fr > 0 && !found {
			found = true
			after = f.Cwnd()
		}
		if !found {
			s.Schedule(time.Millisecond, poll)
		}
	}
	s.Schedule(0, poll)
	s.Run(2 * time.Minute)
	if !found {
		t.Fatal("no fast retransmit observed")
	}
	// Reno sets cwnd to flight/2 + 3 on entry to fast recovery.
	if after > peak {
		t.Fatalf("cwnd did not drop at fast retransmit: peak %.1f, after %.1f", peak, after)
	}
}

func TestManyFlowsSaturateBottleneck(t *testing.T) {
	// The paper's scenario 1: 40 infinite TCP sources sharing the OC3.
	// Aggregate goodput should be near link capacity and the queue must
	// overflow periodically.
	s, d := testbed(simnet.DumbbellConfig{})
	flows := make([]*Flow, 40)
	for i := range flows {
		flows[i] = Start(s, uint64(i+1), d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{})
	}
	s.Run(10 * time.Second) // warm up past slow start
	var base int64
	for _, f := range flows {
		base += f.AckedSegments()
	}
	const dur = 30 * time.Second
	s.Run(10*time.Second + dur)
	var acked int64
	for _, f := range flows {
		acked += f.AckedSegments()
	}
	acked -= base
	gbps := float64(acked) * 1500 * 8 / dur.Seconds()
	util := gbps / float64(simnet.OC3)
	if util < 0.85 {
		t.Fatalf("aggregate utilization %.2f, want ≥0.85 (link should saturate)", util)
	}
	if _, drops, _ := d.Bottleneck.Stats(); drops == 0 {
		t.Fatal("saturated link with 100ms buffer produced no drops")
	}
}

func TestFlowIsolationByID(t *testing.T) {
	s, d := testbed(simnet.DumbbellConfig{})
	var doneA, doneB bool
	Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{
		TotalBytes: 150_000, OnComplete: func() { doneA = true }})
	Start(s, 2, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{
		TotalBytes: 150_000, OnComplete: func() { doneB = true }})
	s.Run(time.Minute)
	if !doneA || !doneB {
		t.Fatalf("flows did not both complete: A=%v B=%v", doneA, doneB)
	}
	if d.FwdDemux.Orphans() != 0 || d.RevDemux.Orphans() != 0 {
		t.Fatalf("misrouted packets: fwd %d, rev %d orphans",
			d.FwdDemux.Orphans(), d.RevDemux.Orphans())
	}
}

func TestTimeoutRecoversFromTailLoss(t *testing.T) {
	// A tiny transfer whose entire window fits in flight: if the last
	// segments are lost there are no dupacks, so only the RTO can
	// recover. Use a brutal 2-packet queue to force such losses.
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{
		BottleneckRate: simnet.Rate(1_000_000),
		QueueDuration:  25 * time.Millisecond, // ~2 segments at 1 Mb/s
	})
	done := 0
	for i := 0; i < 4; i++ {
		Start(s, uint64(i+1), d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{
			TotalBytes: 30_000,
			OnComplete: func() { done++ },
		})
	}
	s.Run(5 * time.Minute)
	if done != 4 {
		t.Fatalf("only %d/4 flows completed under severe loss", done)
	}
}
