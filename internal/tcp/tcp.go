// Package tcp implements a packet-level TCP Reno model running over the
// simnet simulator.
//
// The paper's first cross-traffic scenario uses 40 "infinite TCP sources"
// with 256-packet receive windows; the resulting congestion-avoidance
// synchronization produces the periodic loss episodes of Figure 4. This
// model implements the mechanisms that matter for that queue dynamic: slow
// start, congestion avoidance, fast retransmit/fast recovery, retransmission
// timeouts with Karn's algorithm and exponential backoff, and a bounded
// receive window. Data and ACK segments are real simulated packets subject
// to loss and queueing on the simulated path.
package tcp

import (
	"math"
	"math/rand"
	"time"

	"badabing/internal/simnet"
)

// Config parameterizes a flow. The zero value is completed by defaults
// matching the paper's setup.
type Config struct {
	// SegmentSize is the on-the-wire size of a full data segment in
	// bytes. Default 1500 ("full size (1500 bytes) packets").
	SegmentSize int
	// AckSize is the on-the-wire size of an ACK. Default 40.
	AckSize int
	// RcvWnd is the receiver window in segments. Default 256.
	RcvWnd int
	// InitCwnd is the initial congestion window in segments. Default 2.
	InitCwnd float64
	// MinRTO bounds the retransmission timer from below. Default 1s.
	MinRTO time.Duration
	// DelayedAck enables RFC 1122-style delayed acknowledgments at the
	// receiver: every second in-order segment is acknowledged
	// immediately, a lone segment after DelayedAckTimeout; out-of-order
	// segments are always acknowledged immediately so duplicate ACKs
	// still flow for fast retransmit.
	DelayedAck bool
	// DelayedAckTimeout: default 200 ms (only used with DelayedAck).
	DelayedAckTimeout time.Duration
	// SendJitter, when positive, delays each data segment by a uniform
	// random amount up to this bound, modeling host-side processing
	// variability. Without it, deterministic simulation phase-locks
	// flows to the bottleneck's drop instants so losses concentrate on
	// a few unlucky flows — a well-known simulation artifact (Floyd &
	// Jacobson's "phase effects") that real hosts do not exhibit.
	// Intra-flow packet order is preserved.
	SendJitter time.Duration
	// TotalBytes, when positive, makes the flow finite: it closes after
	// transferring this many bytes. Zero means an infinite source.
	TotalBytes int64
	// OnComplete, if non-nil, is invoked once when a finite flow
	// delivers its last byte.
	OnComplete func()
}

func (c *Config) applyDefaults() {
	if c.SegmentSize == 0 {
		c.SegmentSize = 1500
	}
	if c.AckSize == 0 {
		c.AckSize = 40
	}
	if c.RcvWnd == 0 {
		c.RcvWnd = 256
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 2
	}
	if c.MinRTO == 0 {
		c.MinRTO = time.Second
	}
	if c.DelayedAckTimeout == 0 {
		c.DelayedAckTimeout = 200 * time.Millisecond
	}
}

// Flow is a one-directional TCP transfer: a sender pushing data segments
// into a forward link and a receiver returning cumulative ACKs over a
// reverse link. Create one with Start.
type Flow struct {
	sim *simnet.Sim
	id  uint64
	fwd *simnet.Link
	rev *simnet.Link
	cfg Config

	// Sender state. Sequence numbers count whole segments.
	cwnd     float64
	ssthresh float64
	sndUna   int64 // lowest unacknowledged segment
	sndNxt   int64 // next new segment to send
	dupacks  int
	inFR     bool  // in fast recovery
	recover  int64 // highest segment outstanding when loss was detected
	total    int64 // segments to send; 0 = infinite
	done     bool

	// RTT estimation (Karn: one timed, never-retransmitted segment).
	srtt    time.Duration
	rttvar  time.Duration
	rto     time.Duration
	backoff int
	rttSeq  int64
	rttAt   time.Duration

	rtoGen uint64
	rtoSet bool

	jrng     *rand.Rand
	lastSend time.Duration

	// Receiver state.
	rcvNxt    int64
	ooo       map[int64]bool
	ackHeld   bool   // one in-order segment awaiting a delayed ACK
	delackGen uint64 // cancels stale delayed-ACK timers

	// Counters.
	sent     uint64
	retrans  uint64
	timeouts uint64
	fastRtx  uint64
	acked    int64
}

// Start creates a flow with the given id, registers its receiver on
// fwdDemux and its sender (for ACKs) on revDemux, and begins transmitting
// immediately.
func Start(sim *simnet.Sim, id uint64, fwd, rev *simnet.Link, fwdDemux, revDemux *simnet.Demux, cfg Config) *Flow {
	cfg.applyDefaults()
	f := &Flow{
		sim:      sim,
		id:       id,
		fwd:      fwd,
		rev:      rev,
		cfg:      cfg,
		cwnd:     cfg.InitCwnd,
		ssthresh: math.Inf(1),
		rto:      cfg.MinRTO,
		rttSeq:   -1,
		ooo:      make(map[int64]bool),
	}
	if cfg.SendJitter > 0 {
		f.jrng = rand.New(rand.NewSource(int64(id)*2654435761 + 1))
	}
	if cfg.TotalBytes > 0 {
		f.total = (cfg.TotalBytes + int64(cfg.SegmentSize) - 1) / int64(cfg.SegmentSize)
	}
	fwdDemux.Register(id, simnet.ReceiverFunc(f.onData))
	revDemux.Register(id, simnet.ReceiverFunc(f.onAck))
	f.trySend()
	return f
}

// ID returns the flow identifier.
func (f *Flow) ID() uint64 { return f.id }

// Done reports whether a finite flow has completed.
func (f *Flow) Done() bool { return f.done }

// Cwnd returns the current congestion window in segments.
func (f *Flow) Cwnd() float64 { return f.cwnd }

// Counters returns cumulative segment counts: first transmissions,
// retransmissions, timeouts and fast retransmits.
func (f *Flow) Counters() (sent, retrans, timeouts, fastRtx uint64) {
	return f.sent, f.retrans, f.timeouts, f.fastRtx
}

// AckedSegments returns how many segments have been cumulatively
// acknowledged.
func (f *Flow) AckedSegments() int64 { return f.acked }

func (f *Flow) window() int64 {
	w := int64(f.cwnd)
	if w < 1 {
		w = 1
	}
	if rw := int64(f.cfg.RcvWnd); w > rw {
		w = rw
	}
	return w
}

func (f *Flow) trySend() {
	if f.done {
		return
	}
	for f.sndNxt-f.sndUna < f.window() {
		if f.total > 0 && f.sndNxt >= f.total {
			break
		}
		f.sendSeg(f.sndNxt, false)
		f.sndNxt++
	}
}

func (f *Flow) sendSeg(seq int64, isRetrans bool) {
	now := f.sim.Now()
	sendAt := now
	if f.jrng != nil {
		sendAt = now + time.Duration(f.jrng.Int63n(int64(f.cfg.SendJitter)))
		if sendAt <= f.lastSend {
			sendAt = f.lastSend + time.Nanosecond
		}
		f.lastSend = sendAt
	}
	p := &simnet.Packet{
		ID:   f.sim.NextPacketID(),
		Flow: f.id,
		Kind: simnet.Data,
		Size: f.cfg.SegmentSize,
		Seq:  seq,
		Sent: sendAt,
	}
	if isRetrans {
		f.retrans++
		if seq <= f.rttSeq {
			f.rttSeq = -1 // Karn: abandon the timing sample
		}
	} else {
		f.sent++
		if f.rttSeq < 0 {
			f.rttSeq = seq
			f.rttAt = sendAt
		}
	}
	if sendAt == now {
		f.fwd.Send(p)
	} else {
		f.sim.Schedule(sendAt-now, func() { f.fwd.Send(p) })
	}
	if !f.rtoSet {
		f.armRTO()
	}
}

func (f *Flow) armRTO() {
	f.rtoSet = true
	f.rtoGen++
	gen := f.rtoGen
	d := f.rto << f.backoff
	if max := 60 * time.Second; d > max {
		d = max
	}
	f.sim.Schedule(d, func() { f.onRTO(gen) })
}

func (f *Flow) disarmRTO() { f.rtoSet = false; f.rtoGen++ }

func (f *Flow) onRTO(gen uint64) {
	if gen != f.rtoGen || f.done {
		return
	}
	f.rtoSet = false
	if f.sndUna >= f.sndNxt {
		return // nothing outstanding
	}
	f.timeouts++
	flight := float64(f.sndNxt - f.sndUna)
	f.ssthresh = math.Max(flight/2, 2)
	f.cwnd = 1
	f.dupacks = 0
	f.inFR = false
	f.backoff++
	f.sendSeg(f.sndUna, true)
	f.armRTO()
}

// onAck handles an ACK arriving at the sender. The packet's Seq carries
// the receiver's next expected segment (a cumulative ACK).
func (f *Flow) onAck(p *simnet.Packet) {
	if f.done {
		return
	}
	ackNo := p.Seq
	switch {
	case ackNo > f.sndUna:
		f.newAck(ackNo)
	case ackNo == f.sndUna:
		f.dupAck()
	}
	f.trySend()
}

func (f *Flow) newAck(ackNo int64) {
	now := f.sim.Now()
	// RTT sample if the timed segment is covered and was never
	// retransmitted.
	if f.rttSeq >= 0 && ackNo > f.rttSeq {
		f.sampleRTT(now - f.rttAt)
		f.rttSeq = -1
	}
	f.acked += ackNo - f.sndUna
	f.sndUna = ackNo
	f.backoff = 0
	f.dupacks = 0

	if f.inFR {
		if ackNo > f.recover {
			// Full ACK: leave recovery, deflate.
			f.inFR = false
			f.cwnd = f.ssthresh
		} else {
			// Partial ACK (NewReno): retransmit the next hole and
			// stay in recovery.
			f.sendSeg(f.sndUna, true)
		}
	} else if f.cwnd < f.ssthresh {
		f.cwnd++ // slow start
	} else {
		f.cwnd += 1 / f.cwnd // congestion avoidance
	}
	// Never grow the congestion window beyond what the receive window
	// lets us use (RFC 2861-style validation): unbounded growth while
	// rwnd-limited would make later loss responses meaningless.
	if max := float64(f.cfg.RcvWnd); f.cwnd > max {
		f.cwnd = max
	}

	if f.total > 0 && f.sndUna >= f.total {
		f.finish()
		return
	}
	if f.sndUna >= f.sndNxt {
		f.disarmRTO()
	} else {
		f.disarmRTO()
		f.armRTO()
	}
}

func (f *Flow) dupAck() {
	f.dupacks++
	if f.inFR {
		f.cwnd++ // window inflation
		return
	}
	if f.dupacks == 3 {
		f.fastRtx++
		flight := float64(f.sndNxt - f.sndUna)
		f.ssthresh = math.Max(flight/2, 2)
		f.cwnd = f.ssthresh + 3
		f.recover = f.sndNxt - 1
		f.inFR = true
		f.sendSeg(f.sndUna, true)
		f.disarmRTO()
		f.armRTO()
	}
}

func (f *Flow) sampleRTT(s time.Duration) {
	if f.srtt == 0 {
		f.srtt = s
		f.rttvar = s / 2
	} else {
		d := f.srtt - s
		if d < 0 {
			d = -d
		}
		f.rttvar = (3*f.rttvar + d) / 4
		f.srtt = (7*f.srtt + s) / 8
	}
	f.rto = f.srtt + 4*f.rttvar
	if f.rto < f.cfg.MinRTO {
		f.rto = f.cfg.MinRTO
	}
}

func (f *Flow) finish() {
	f.done = true
	f.disarmRTO()
	if f.cfg.OnComplete != nil {
		f.cfg.OnComplete()
	}
}

// onData handles a data segment arriving at the receiver and returns a
// cumulative ACK (possibly delayed, per Config.DelayedAck).
func (f *Flow) onData(p *simnet.Packet) {
	seq := p.Seq
	inOrder := false
	switch {
	case seq == f.rcvNxt:
		inOrder = true
		f.rcvNxt++
		for f.ooo[f.rcvNxt] {
			delete(f.ooo, f.rcvNxt)
			f.rcvNxt++
		}
	case seq > f.rcvNxt:
		f.ooo[seq] = true
	}
	if !f.cfg.DelayedAck || !inOrder || len(f.ooo) > 0 {
		// Immediate ACK: delayed ACKs are only for clean in-order
		// arrivals; anything else must generate duplicate/teaching
		// ACKs at once.
		f.sendAck()
		return
	}
	if f.ackHeld {
		f.sendAck() // every second segment
		return
	}
	f.ackHeld = true
	f.delackGen++
	gen := f.delackGen
	f.sim.Schedule(f.cfg.DelayedAckTimeout, func() {
		if f.ackHeld && gen == f.delackGen {
			f.sendAck()
		}
	})
}

// sendAck emits a cumulative ACK and clears any held delayed ACK.
func (f *Flow) sendAck() {
	f.ackHeld = false
	f.delackGen++
	f.rev.Send(&simnet.Packet{
		ID:   f.sim.NextPacketID(),
		Flow: f.id,
		Kind: simnet.Ack,
		Size: f.cfg.AckSize,
		Seq:  f.rcvNxt,
		Sent: f.sim.Now(),
	})
}
