package tcp

import (
	"testing"
	"time"

	"badabing/internal/simnet"
)

// arrivalTap records data-segment arrival order at a link.
type arrivalTap struct{ seqs []int64 }

func (a *arrivalTap) Arrive(_ time.Duration, p *simnet.Packet, _ int) {
	if p.Kind == simnet.Data {
		a.seqs = append(a.seqs, p.Seq)
	}
}
func (a *arrivalTap) Dropped(time.Duration, *simnet.Packet, simnet.Drop) {}
func (a *arrivalTap) Depart(time.Duration, *simnet.Packet, int)          {}

func TestSendJitterPreservesOrder(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	tap := &arrivalTap{}
	d.Bottleneck.AddTap(tap)
	Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{
		TotalBytes: 750_000,
		SendJitter: 500 * time.Microsecond,
	})
	s.Run(time.Minute)
	if len(tap.seqs) == 0 {
		t.Fatal("no segments observed")
	}
	// Clean path, single flow, no retransmissions: arrival order must
	// be exactly sequence order despite per-segment jitter.
	for i := 1; i < len(tap.seqs); i++ {
		if tap.seqs[i] < tap.seqs[i-1] {
			t.Fatalf("jitter reordered segments: %d after %d", tap.seqs[i], tap.seqs[i-1])
		}
	}
}

func TestJitteredFlowCompletes(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	done := false
	f := Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{
		TotalBytes: 1_500_000,
		SendJitter: 300 * time.Microsecond,
		OnComplete: func() { done = true },
	})
	s.Run(time.Minute)
	if !done {
		t.Fatal("jittered flow did not complete")
	}
	if _, retrans, _, _ := f.Counters(); retrans != 0 {
		t.Fatalf("jitter on a clean path caused %d retransmissions", retrans)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{
		BottleneckRate: simnet.Rate(20_000_000),
		QueueDuration:  50 * time.Millisecond,
	})
	a := Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{SendJitter: 200 * time.Microsecond})
	b := Start(s, 2, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{SendJitter: 200 * time.Microsecond})
	s.Run(2 * time.Minute)
	ra, rb := float64(a.AckedSegments()), float64(b.AckedSegments())
	if ra == 0 || rb == 0 {
		t.Fatalf("starvation: %v vs %v", ra, rb)
	}
	ratio := ra / rb
	if ratio < 1.0/3 || ratio > 3 {
		t.Errorf("unfair split %.0f vs %.0f segments (ratio %.2f)", ra, rb, ratio)
	}
}

func TestTimeoutBackoffOnDeadPath(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	f := Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{TotalBytes: 15_000})
	// Kill the return path: ACKs vanish.
	d.RevDemux.Unregister(1)
	s.Run(2 * time.Minute)
	_, _, timeouts, _ := f.Counters()
	if timeouts < 2 {
		t.Fatalf("only %d timeouts on a dead path in 2 minutes", timeouts)
	}
	// Exponential backoff: far fewer timeouts than 120s / 1s.
	if timeouts > 10 {
		t.Fatalf("%d timeouts — backoff is not exponential", timeouts)
	}
	if f.Done() {
		t.Fatal("flow completed without ACKs")
	}
}

func TestFiniteFlowExactSegments(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	// 10001 bytes = 7 segments of 1500 (ceil).
	f := Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{TotalBytes: 10_001})
	s.Run(10 * time.Second)
	if !f.Done() {
		t.Fatal("not done")
	}
	if f.AckedSegments() != 7 {
		t.Fatalf("acked %d segments, want 7", f.AckedSegments())
	}
	sent, _, _, _ := f.Counters()
	if sent != 7 {
		t.Fatalf("sent %d segments, want 7", sent)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.applyDefaults()
	if c.SegmentSize != 1500 || c.AckSize != 40 || c.RcvWnd != 256 ||
		c.InitCwnd != 2 || c.MinRTO != time.Second {
		t.Fatalf("unexpected defaults: %+v", c)
	}
}

func TestOnCompleteExactlyOnce(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	calls := 0
	Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{
		TotalBytes: 150_000,
		OnComplete: func() { calls++ },
	})
	s.Run(time.Minute)
	if calls != 1 {
		t.Fatalf("OnComplete called %d times", calls)
	}
}

func TestCwndNeverBelowOneWindow(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{
		BottleneckRate: simnet.Rate(5_000_000),
		QueueDuration:  10 * time.Millisecond,
	})
	f := Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{})
	min := 1e9
	var poll func()
	poll = func() {
		if w := f.Cwnd(); w < min {
			min = w
		}
		s.Schedule(10*time.Millisecond, poll)
	}
	s.Schedule(0, poll)
	s.Run(time.Minute)
	if min < 1 {
		t.Fatalf("cwnd fell below 1 segment: %v", min)
	}
}

// ackCounter counts ACK packets on the reverse link.
type ackCounter struct{ acks uint64 }

func (a *ackCounter) Arrive(_ time.Duration, p *simnet.Packet, _ int) {
	if p.Kind == simnet.Ack {
		a.acks++
	}
}
func (a *ackCounter) Dropped(time.Duration, *simnet.Packet, simnet.Drop) {}
func (a *ackCounter) Depart(time.Duration, *simnet.Packet, int)          {}

func TestDelayedAckHalvesAckTraffic(t *testing.T) {
	run := func(delack bool) (acks uint64, segs int64) {
		s := simnet.New()
		d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
		ctr := &ackCounter{}
		d.Reverse.AddTap(ctr)
		f := Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{
			TotalBytes: 3_000_000,
			DelayedAck: delack,
		})
		s.Run(time.Minute)
		if !f.Done() {
			t.Fatal("transfer incomplete")
		}
		return ctr.acks, f.AckedSegments()
	}
	withoutAcks, segs := run(false)
	withAcks, _ := run(true)
	if withoutAcks < uint64(segs) {
		t.Fatalf("per-packet acking sent %d acks for %d segments", withoutAcks, segs)
	}
	// Delayed ACKs should roughly halve the ACK count.
	if withAcks > withoutAcks*2/3 {
		t.Errorf("delayed acks = %d, per-packet = %d: no meaningful reduction",
			withAcks, withoutAcks)
	}
}

func TestDelayedAckStillRecoversLoss(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{
		BottleneckRate: simnet.Rate(10_000_000),
		QueueDuration:  20 * time.Millisecond,
	})
	done := false
	f := Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{
		TotalBytes: 3_000_000,
		DelayedAck: true,
		OnComplete: func() { done = true },
	})
	s.Run(3 * time.Minute)
	if !done {
		t.Fatal("delayed-ack flow did not complete under loss")
	}
	if _, _, _, fastRtx := f.Counters(); fastRtx == 0 {
		t.Error("no fast retransmits — duplicate ACKs not flowing with delayed ACKs")
	}
}

func TestDelayedAckLoneSegmentTimeout(t *testing.T) {
	// A 1-segment transfer: the lone segment's ACK must arrive via the
	// delayed-ACK timer, not hang forever.
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	done := false
	Start(s, 1, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, Config{
		TotalBytes: 1000,
		DelayedAck: true,
		OnComplete: func() { done = true },
	})
	s.Run(2 * time.Second)
	if !done {
		t.Fatal("lone segment never acknowledged")
	}
}
