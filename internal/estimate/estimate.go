// Package estimate is the pluggable streaming estimation pipeline: one
// Observe/Snapshot interface that every estimator in the paper's family
// implements — the basic and improved F̂/D̂ algorithms (§5), the
// parametric geometric-episode fit (§8) and the moving-block bootstrap
// confidence intervals (§4) — all in O(1)-per-outcome streaming form.
//
// Every kind shares the same incremental core (badabing.Stream), so the
// numeric fields of any snapshot are produced by exactly the code the
// batch pipeline uses; the kinds differ only in which duration estimator
// is the headline and whether confidence intervals are attached. Batch
// estimation is a thin replay over the same core (Batch), which makes
// stream/batch Float64bits parity true by construction rather than by
// test discipline.
//
// The registry (Kinds, Normalize, New) is the single source of truth for
// the valid estimator names: flag help, HTTP validation and docs all
// derive from it, so they cannot drift.
package estimate

import (
	"fmt"
	"strings"
	"time"

	"badabing/internal/badabing"
)

// Estimator kinds. DefaultKind is what an empty selection resolves to.
const (
	KindBasic      = "basic"
	KindImproved   = "improved"
	KindParametric = "parametric"
	KindBootstrap  = "bootstrap"

	DefaultKind = KindImproved
)

// kinds is the registry, in canonical (documentation) order. Everything
// that enumerates estimators — flag help, validation errors, the fleet's
// 400 responses — walks this slice.
var kinds = []struct {
	name string
	desc string
}{
	{KindBasic, "basic F̂/D̂ estimators (§5.2): headline duration is the two-probe D̂"},
	{KindImproved, "improved estimators (§5.3, default): headline duration prefers the triple-probe D̂"},
	{KindParametric, "geometric episode model (§8): headline duration is 1/(1−ĝ) slots"},
	{KindBootstrap, "improved estimators plus moving-block bootstrap confidence intervals (§4)"},
}

// Kinds returns the valid estimator kind names in canonical order.
func Kinds() []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.name
	}
	return out
}

// KindList renders the registry for one-line flag help, e.g.
// "basic, improved, parametric, bootstrap".
func KindList() string {
	return strings.Join(Kinds(), ", ")
}

// Describe returns one help line per kind, for multi-line usage text.
func Describe() []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.name + ": " + k.desc
	}
	return out
}

// Normalize resolves a user-supplied kind name: empty selects
// DefaultKind, names are case-insensitive, anything not in the registry
// is an error (the fleet maps it to HTTP 400).
func Normalize(kind string) (string, error) {
	if kind == "" {
		return DefaultKind, nil
	}
	k := strings.ToLower(kind)
	for _, known := range kinds {
		if known.name == k {
			return k, nil
		}
	}
	return "", fmt.Errorf("estimate: unknown estimator kind %q (valid: %s)", kind, KindList())
}

// Config selects and parameterizes an estimator. It is the JSON
// "estimator" object of the fleet's session-create API; the zero value
// selects the improved estimator with default settings.
type Config struct {
	// Kind names the estimator; empty selects DefaultKind. See Kinds.
	Kind string `json:"kind,omitempty"`
	// Resamples / BlockLen / Level / Seed tune the bootstrap kind and are
	// ignored by the others. Zero values select the bootstrap defaults
	// (200 resamples, 50-outcome blocks, 95% level, seed 1). The seed is
	// fixed, never clock-derived: snapshots must replay identically.
	Resamples int     `json:"resamples,omitempty"`
	BlockLen  int     `json:"block_len,omitempty"`
	Level     float64 `json:"level,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
}

// maxResamples / maxBlockLen bound the bootstrap work a config can
// demand: the estimator runs inside the daemon's snapshot path, so a
// hostile session spec must not be able to buy unbounded CPU.
const (
	maxResamples = 10_000
	maxBlockLen  = 1_000_000
)

// Validate rejects configurations New would refuse, with errors suitable
// for client-facing 400 responses.
func (c Config) Validate() error {
	if _, err := Normalize(c.Kind); err != nil {
		return err
	}
	if c.Resamples < 0 || c.Resamples > maxResamples {
		return fmt.Errorf("estimate: resamples %d out of range [0,%d]", c.Resamples, maxResamples)
	}
	if c.BlockLen < 0 || c.BlockLen > maxBlockLen {
		return fmt.Errorf("estimate: block_len %d out of range [0,%d]", c.BlockLen, maxBlockLen)
	}
	if c.Level < 0 || c.Level >= 1 {
		return fmt.Errorf("estimate: confidence level %v out of range [0,1)", c.Level)
	}
	return nil
}

// Params are the stream-shape parameters an estimator inherits from its
// session: they describe the probe process, not the estimator choice,
// which is why they travel separately from Config.
type Params struct {
	// Slot is the discretization width. Default badabing.DefaultSlot.
	Slot time.Duration
	// WindowSlots is the sliding-window span; zero disables windowing.
	WindowSlots int64
	// Buckets is the window ring granularity (default 16).
	Buckets int
	// ExtendedPairs enables the §5.5 pair-counting modification.
	ExtendedPairs bool
}

// Snapshot is the state of an estimator at one instant. It embeds the
// stream snapshot (total and window views), tags it with the estimator
// kind and, for the bootstrap kind, attaches confidence intervals for
// the total view's frequency and duration estimates.
type Snapshot struct {
	// Kind names the estimator that produced this snapshot.
	Kind string `json:"kind"`
	badabing.StreamSnapshot
	// FrequencyCI / DurationCI are bootstrap confidence intervals over
	// the total view (bootstrap kind only; nil otherwise). The duration
	// interval covers the basic-algorithm estimator, mirroring
	// Recorder.Bootstrap.
	FrequencyCI *badabing.Interval `json:"frequency_ci,omitempty"`
	DurationCI  *badabing.Interval `json:"duration_ci,omitempty"`
}

// Estimator is the streaming estimation interface: feed experiment
// outcomes one at a time, snapshot at any instant. Implementations are
// not safe for concurrent use; the session loop owns its estimator.
type Estimator interface {
	// Kind returns the registry name this estimator was built under.
	Kind() string
	// Observe records one experiment outcome (2 or 3 congestion bits)
	// that started at the given slot. O(1) per call.
	Observe(slot int64, bits []bool)
	// M returns the number of experiments observed so far.
	M() int
	// Snapshot computes the current estimates. It may be called at any
	// time, including on an empty estimator.
	Snapshot() Snapshot
	// Reset discards all observed outcomes, returning the estimator to
	// its freshly-constructed state (the session engine's end-of-run
	// rebuild re-feeds the fully re-marked observation set).
	Reset()
}

// New builds the estimator cfg selects, shaped by p. Unknown kinds and
// out-of-range bootstrap settings are errors.
func New(cfg Config, p Params) (Estimator, error) {
	kind, err := Normalize(cfg.Kind)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &streamEstimator{kind: kind, cfg: cfg, params: p}
	if err := e.rebuild(); err != nil {
		return nil, err
	}
	return e, nil
}

// streamEstimator implements every kind over the shared incremental
// core: one badabing.Stream, plus (bootstrap only) a Recorder retaining
// the outcome sequence for resampling.
type streamEstimator struct {
	kind   string
	cfg    Config
	params Params
	stream *badabing.Stream
	rec    *badabing.Recorder // bootstrap kind only
}

func (e *streamEstimator) Kind() string { return e.kind }

// rebuild is Reset with the construction error exposed (New validates
// params exactly once through it).
func (e *streamEstimator) rebuild() error {
	stream, err := badabing.NewStream(badabing.StreamConfig{
		Slot:          e.params.Slot,
		WindowSlots:   e.params.WindowSlots,
		Buckets:       e.params.Buckets,
		ExtendedPairs: e.params.ExtendedPairs,
	})
	if err != nil {
		return err
	}
	e.stream = stream
	if e.kind == KindBootstrap {
		e.rec = &badabing.Recorder{}
		e.rec.Acc.Slot = e.params.Slot
		e.rec.Acc.ExtendedPairs = e.params.ExtendedPairs
	}
	return nil
}

func (e *streamEstimator) Reset() {
	// Params were validated at construction; rebuilding cannot fail.
	if err := e.rebuild(); err != nil {
		panic(fmt.Sprintf("estimate: reset of validated estimator failed: %v", err))
	}
}

func (e *streamEstimator) Observe(slot int64, bits []bool) {
	e.stream.Observe(slot, bits)
	if e.rec != nil {
		e.rec.Add(bits)
	}
}

func (e *streamEstimator) M() int { return e.stream.M() }

func (e *streamEstimator) Snapshot() Snapshot {
	snap := Snapshot{Kind: e.kind, StreamSnapshot: e.stream.Snapshot()}
	applyKind(e.kind, &snap.Total)
	applyKind(e.kind, &snap.Window)
	if e.rec != nil && e.rec.Acc.M() > 0 {
		freq, dur, durOK := e.rec.Bootstrap(badabing.BootstrapConfig{
			Resamples: e.cfg.Resamples,
			BlockLen:  e.cfg.BlockLen,
			Level:     e.cfg.Level,
			Seed:      e.cfg.Seed,
		})
		snap.FrequencyCI = &freq
		if durOK {
			snap.DurationCI = &dur
		}
	}
	return snap
}

// applyKind selects the headline Duration field per estimator kind. The
// component estimates (basic, improved, geometric, r̂, stddev) are
// always present in Estimates regardless of kind; only the headline
// changes, so switching kinds never hides data.
func applyKind(kind string, e *badabing.Estimates) {
	switch kind {
	case KindBasic:
		e.Duration, e.HasDuration = e.DurationBasic, e.HasDurationBasic
	case KindParametric:
		// Geometric when the model has data; otherwise keep the
		// nonparametric fallback already selected by EstimatesOf.
		if e.HasDurationGeometric {
			e.Duration, e.HasDuration = e.DurationGeometric, true
		}
	}
	// KindImproved and KindBootstrap keep EstimatesOf's headline: the
	// improved estimator when defined, basic otherwise.
}

// Batch is the batch entry point: it replays assembled outcomes for a
// completed run through a fresh estimator of cfg's kind and returns the
// final snapshot plus the number of experiments skipped because a probe
// slot was missing or invalid. Because it runs the identical streaming
// core in plan order, its result is Float64bits-identical to a live
// session's end-of-run snapshot over the same marks.
func Batch(cfg Config, p Params, plans []badabing.Plan, bySlot map[int64]bool) (Snapshot, int, error) {
	est, err := New(cfg, p)
	if err != nil {
		return Snapshot{}, 0, err
	}
	skipped := Replay(est, plans, bySlot)
	return est.Snapshot(), skipped, nil
}

// Replay feeds a schedule's outcomes into an estimator from a per-slot
// congestion-bit map, in plan order, skipping experiments that touch a
// slot absent from the map (lost-and-invalid slots). It returns the
// skipped count. This is the one assembly loop every batch and rebuild
// path shares.
func Replay(est Estimator, plans []badabing.Plan, bySlot map[int64]bool) int {
	skipped := 0
	var scratch [3]bool
	for _, pl := range plans {
		bits := scratch[:0]
		ok := true
		for j := 0; j < pl.Probes; j++ {
			b, present := bySlot[pl.Slot+int64(j)]
			if !present {
				ok = false
				break
			}
			bits = append(bits, b)
		}
		if !ok {
			skipped++
			continue
		}
		est.Observe(pl.Slot, bits)
	}
	return skipped
}
