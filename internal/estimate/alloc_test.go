package estimate

import "testing"

// TestObservePathAllocFree pins the harvest-loop invariant the benchx
// gate also watches: the basic, improved and parametric estimators'
// Observe path performs zero heap allocations, windowed or not. (The
// bootstrap kind is exempt: it retains the outcome sequence for
// resampling, which grows a slice by design. Three-bit outcomes are also
// exempt: the triple-count map reallocates when a window bucket recycles.)
func TestObservePathAllocFree(t *testing.T) {
	for _, kind := range []string{KindBasic, KindImproved, KindParametric} {
		for _, windowSlots := range []int64{0, 512} {
			est, err := New(Config{Kind: kind}, Params{WindowSlots: windowSlots})
			if err != nil {
				t.Fatal(err)
			}
			var bits [2]bool
			slot := int64(0)
			allocs := testing.AllocsPerRun(5000, func() {
				slot += 3
				bits[0] = slot%7 == 0
				bits[1] = slot%11 == 0
				est.Observe(slot, bits[:])
			})
			if allocs != 0 {
				t.Errorf("kind=%s window=%d: %v allocs per Observe, want 0",
					kind, windowSlots, allocs)
			}
		}
	}
}
