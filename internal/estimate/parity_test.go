package estimate

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"badabing/internal/badabing"
	"badabing/internal/runner"
)

// fixture builds a deterministic marked run: a real improved-design
// schedule and a seeded congestion mark for every probe slot.
func fixture(t *testing.T) ([]badabing.Plan, map[int64]bool) {
	t.Helper()
	plans := badabing.MustSchedule(badabing.ScheduleConfig{
		P: 0.4, N: 5000, Improved: true, Seed: 7,
	})
	rng := rand.New(rand.NewSource(11))
	bySlot := make(map[int64]bool)
	for _, pl := range plans {
		for j := 0; j < pl.Probes; j++ {
			slot := pl.Slot + int64(j)
			if _, ok := bySlot[slot]; !ok {
				// Bursty marks so episodes span probes: a marked slot
				// makes the next one likelier to be marked too.
				p := 0.04
				if bySlot[slot-1] {
					p = 0.7
				}
				bySlot[slot] = rng.Float64() < p
			}
		}
	}
	return plans, bySlot
}

// configsUnderTest is the parity table: every registered kind, including
// a bootstrap variant with non-default tuning.
func configsUnderTest() []Config {
	cfgs := make([]Config, 0, len(Kinds())+1)
	for _, kind := range Kinds() {
		cfgs = append(cfgs, Config{Kind: kind})
	}
	cfgs = append(cfgs, Config{Kind: KindBootstrap, Resamples: 80, BlockLen: 20, Level: 0.9, Seed: 3})
	return cfgs
}

// TestBatchStreamParity: for every estimator kind, feeding outcomes one
// at a time through a live estimator — with snapshots interleaved mid-run,
// which must not perturb state — lands on a final snapshot
// Float64bits-identical to the batch entry point over the same marks.
func TestBatchStreamParity(t *testing.T) {
	plans, bySlot := fixture(t)
	p := Params{WindowSlots: 1200}
	for _, cfg := range configsUnderTest() {
		t.Run(cfg.Kind, func(t *testing.T) {
			batchSnap, skipped, err := Batch(cfg, p, plans, bySlot)
			if err != nil {
				t.Fatal(err)
			}
			if skipped != 0 {
				t.Fatalf("fixture skipped %d experiments, want 0", skipped)
			}

			est, err := New(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			for i, pl := range plans {
				bits := make([]bool, 0, 3)
				for j := 0; j < pl.Probes; j++ {
					bits = append(bits, bySlot[pl.Slot+int64(j)])
				}
				est.Observe(pl.Slot, bits)
				if i%97 == 0 {
					est.Snapshot() // mid-run snapshots must be side-effect free
				}
			}
			streamSnap := est.Snapshot()

			assertSnapshotsIdentical(t, batchSnap, streamSnap)

			// Reset + replay is the session engine's end-of-run rebuild:
			// it must land on the same bits again.
			est.Reset()
			if est.M() != 0 {
				t.Fatalf("M after reset = %d, want 0", est.M())
			}
			Replay(est, plans, bySlot)
			assertSnapshotsIdentical(t, batchSnap, est.Snapshot())
		})
	}
}

// assertSnapshotsIdentical compares two snapshots field-for-field at
// Float64bits strictness (the Has-flag convention keeps NaN out of the
// structs, so DeepEqual is exact for every non-float field too).
func assertSnapshotsIdentical(t *testing.T, want, got Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("snapshots differ:\nwant %+v\ngot  %+v", want, got)
	}
	for _, pair := range [][2]float64{
		{want.Total.Frequency, got.Total.Frequency},
		{want.Total.Duration, got.Total.Duration},
		{want.Window.Frequency, got.Window.Frequency},
		{want.Window.Duration, got.Window.Duration},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Fatalf("Float64bits differ: %x vs %x", math.Float64bits(pair[0]), math.Float64bits(pair[1]))
		}
	}
	if (want.FrequencyCI == nil) != (got.FrequencyCI == nil) {
		t.Fatalf("frequency CI presence differs: %v vs %v", want.FrequencyCI, got.FrequencyCI)
	}
	if want.FrequencyCI != nil {
		if math.Float64bits(want.FrequencyCI.Lo) != math.Float64bits(got.FrequencyCI.Lo) ||
			math.Float64bits(want.FrequencyCI.Hi) != math.Float64bits(got.FrequencyCI.Hi) {
			t.Fatalf("frequency CI differs: %+v vs %+v", *want.FrequencyCI, *got.FrequencyCI)
		}
	}
}

// TestBatchParityAcrossWorkers: the per-kind batch computation fanned out
// on the shared experiment engine produces identical snapshots at 1 and 8
// workers — estimation must be deterministic under concurrency.
func TestBatchParityAcrossWorkers(t *testing.T) {
	plans, bySlot := fixture(t)
	p := Params{WindowSlots: 1200}
	cfgs := configsUnderTest()

	runAll := func(workers int) []Snapshot {
		pool := runner.New(runner.Config{Workers: workers})
		cells := make([]runner.Cell, len(cfgs))
		for i, cfg := range cfgs {
			cfg := cfg
			cells[i] = runner.Cell{
				Key: "parity/" + cfg.Kind,
				Run: func(context.Context, int64) (any, error) {
					snap, _, err := Batch(cfg, p, plans, bySlot)
					return snap, err
				},
			}
		}
		results, _, _ := pool.Run(context.Background(), cells)
		out := make([]Snapshot, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			out[i] = r.Value.(Snapshot)
		}
		return out
	}

	one, eight := runAll(1), runAll(8)
	for i := range cfgs {
		assertSnapshotsIdentical(t, one[i], eight[i])
	}
}

// TestNewRejectsBadConfigs: the registry's validation catches what the
// fleet must answer 400 to.
func TestNewRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Kind: "fourier"},
		{Kind: "bootstrap", Resamples: -1},
		{Kind: "bootstrap", Resamples: 1 << 30},
		{Kind: "bootstrap", BlockLen: -5},
		{Kind: "bootstrap", Level: 1.5},
		{Kind: "bootstrap", Level: -0.1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, Params{}); err == nil {
			t.Errorf("New(%+v) accepted, want error", cfg)
		}
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted, want error", cfg)
		}
	}
	for _, kind := range append(Kinds(), "") {
		if _, err := New(Config{Kind: kind}, Params{}); err != nil {
			t.Errorf("New(kind=%q): %v", kind, err)
		}
	}
}

// TestNormalize: case folding, defaulting and the error listing valid
// kinds.
func TestNormalize(t *testing.T) {
	if k, err := Normalize(""); err != nil || k != DefaultKind {
		t.Fatalf("Normalize(\"\") = %q, %v", k, err)
	}
	if k, err := Normalize("BOOTSTRAP"); err != nil || k != KindBootstrap {
		t.Fatalf("Normalize(BOOTSTRAP) = %q, %v", k, err)
	}
	if _, err := Normalize("nope"); err == nil {
		t.Fatal("Normalize(nope) accepted")
	}
}
