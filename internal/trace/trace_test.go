package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"

	"badabing/internal/capture"
	"badabing/internal/simnet"
	"badabing/internal/traffic"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{BitsPerSec: 155_520_000, QueueCap: 1_944_000})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{T: time.Millisecond, Event: Arrive, Kind: 0, Flow: 7, ID: 1, Size: 1500, Seq: 42, QueueBytes: 3000},
		{T: 2 * time.Millisecond, Event: Drop, Kind: 2, Flow: 9, ID: 2, Size: 600, Seq: -1},
		{T: 3 * time.Millisecond, Event: Depart, Kind: 1, Flow: 7, ID: 1, Size: 40, Seq: 0, QueueBytes: 1500},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.BitsPerSec != 155_520_000 || r.Header.QueueCap != 1_944_000 {
		t.Fatalf("header mismatch: %+v", r.Header)
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(tNanos int64, ev uint8, kind uint8, flow, id uint64, size uint32, seq int64, q uint32) bool {
		if tNanos < 0 {
			tNanos = -tNanos
		}
		rec := Record{
			T: time.Duration(tNanos), Event: Event(ev % 3), Kind: kind,
			Flow: flow, ID: id, Size: size, Seq: seq, QueueBytes: q,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{})
		if err != nil {
			return false
		}
		if err := w.Write(rec); err != nil {
			return false
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		return err == nil && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("short header accepted")
	}
	bad := make([]byte, headerSize)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("zero magic accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{})
	w.Write(Record{T: time.Second})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-5] // chop mid-record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("truncated record: err = %v, want io.EOF", err)
	}
}

func TestEventString(t *testing.T) {
	for ev, want := range map[Event]string{Arrive: "arrive", Depart: "depart", Drop: "drop", Event(9): "unknown"} {
		if got := ev.String(); got != want {
			t.Errorf("Event(%d) = %q, want %q", ev, got, want)
		}
	}
}

// traceScenario runs the CBR episode scenario with both a live capture
// monitor and a trace tap, returning the trace bytes plus the live truth.
func traceScenario(t *testing.T) (*bytes.Buffer, capture.Truth) {
	t.Helper()
	sim := simnet.New()
	d := simnet.NewDumbbell(sim, simnet.DumbbellConfig{})
	mon := capture.Attach(sim, d.Bottleneck, capture.Config{})
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{
		BitsPerSec: int64(d.Bottleneck.Rate()),
		QueueCap:   uint32(d.Bottleneck.QueueCap()),
	})
	if err != nil {
		t.Fatal(err)
	}
	tap := AttachTap(d.Bottleneck, w)
	ids := traffic.NewIDSpace(1000)
	traffic.NewEpisodeInjector(sim, d, ids, traffic.EpisodeInjectorConfig{
		MeanSpacing:     8 * time.Second,
		Overload:        4,
		BaseUtilization: 0.25,
		Seed:            3,
	})
	const horizon = 120 * time.Second
	sim.Run(horizon + time.Second)
	if err := tap.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf, mon.Truth(horizon, 5*time.Millisecond)
}

func TestOfflineAnalysisMatchesLiveCapture(t *testing.T) {
	buf, truth := traceScenario(t)
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Analyze(r, AnalyzeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Episodes) != truth.Episodes {
		t.Errorf("offline found %d episodes, live capture %d", len(sum.Episodes), truth.Episodes)
	}
	liveD := truth.Duration.Mean()
	offD := sum.Duration.Mean()
	if liveD > 0 && (offD < liveD*0.95 || offD > liveD*1.05) {
		t.Errorf("offline mean duration %.4f vs live %.4f", offD, liveD)
	}
	if sum.Drops == 0 || sum.LossRate <= 0 {
		t.Error("offline analysis found no loss")
	}
	if sum.PeakQueue == 0 {
		t.Error("no queue occupancy recorded")
	}
}

func TestMatchLossAgreesWithDropRecords(t *testing.T) {
	buf, _ := traceScenario(t)
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	dropIDs := map[uint64]bool{}
	for _, rec := range recs {
		if rec.Event == Drop {
			dropIDs[rec.ID] = true
		}
	}
	lost := MatchLoss(recs, recs)
	// Packets still queued when the capture ends look lost to trace
	// differencing — the same boundary effect a real DAG analysis has.
	// Allow a handful of those, but never fewer than the true drops.
	extra := len(lost) - len(dropIDs)
	if extra < 0 || extra > 5 {
		t.Fatalf("trace differencing found %d lost packets, drop records say %d",
			len(lost), len(dropIDs))
	}
	inferred := map[uint64]bool{}
	for _, id := range lost {
		inferred[id] = true
	}
	for id := range dropIDs {
		if !inferred[id] {
			t.Fatalf("dropped packet %d not inferred lost", id)
		}
	}
}
