package trace

import (
	"io"
	"time"

	"badabing/internal/stats"
)

// Summary is the offline analysis of a trace: the same loss
// characteristics the live capture monitor computes, reconstructed purely
// from recorded packet events.
type Summary struct {
	Records   uint64
	Arrivals  uint64
	Departs   uint64
	Drops     uint64
	Span      time.Duration
	LossRate  float64
	Episodes  []EpisodeSummary
	Frequency float64 // fraction of slots intersecting an episode
	Duration  stats.Summary
	// PeakQueue is the highest observed occupancy in bytes.
	PeakQueue uint32
}

// EpisodeSummary is one reconstructed loss episode.
type EpisodeSummary struct {
	Start, End time.Duration
	Drops      int
}

// AnalyzeConfig controls episode reconstruction; the defaults match the
// live capture monitor so online and offline results agree.
type AnalyzeConfig struct {
	// MaxGap merges drops closer than this. Default 30 ms.
	MaxGap time.Duration
	// HighWater merges across longer gaps when the queue stayed above
	// this fraction of capacity. Default 0.9.
	HighWater float64
	// Slot for the frequency computation. Default 5 ms.
	Slot time.Duration
}

func (c *AnalyzeConfig) applyDefaults() {
	if c.MaxGap == 0 {
		c.MaxGap = 30 * time.Millisecond
	}
	if c.HighWater == 0 {
		c.HighWater = 0.9
	}
	if c.Slot == 0 {
		c.Slot = 5 * time.Millisecond
	}
}

// Analyze reads an entire trace and reconstructs its loss characteristics.
func Analyze(r *Reader, cfg AnalyzeConfig) (Summary, error) {
	cfg.applyDefaults()
	var s Summary
	highWater := uint32(cfg.HighWater * float64(r.Header.QueueCap))

	var cur EpisodeSummary
	open := false
	var minQ uint32
	flush := func() {
		if open {
			s.Episodes = append(s.Episodes, cur)
			s.Duration.AddDuration(cur.End - cur.Start)
			open = false
		}
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return s, err
		}
		s.Records++
		if rec.T > s.Span {
			s.Span = rec.T
		}
		if rec.QueueBytes > s.PeakQueue {
			s.PeakQueue = rec.QueueBytes
		}
		switch rec.Event {
		case Arrive:
			s.Arrivals++
		case Depart:
			s.Departs++
			if open && rec.QueueBytes < minQ {
				minQ = rec.QueueBytes
			}
		case Drop:
			s.Drops++
			if !open {
				open = true
				cur = EpisodeSummary{Start: rec.T, End: rec.T, Drops: 1}
				minQ = r.Header.QueueCap
				continue
			}
			gap := rec.T - cur.End
			if gap <= cfg.MaxGap || minQ >= highWater {
				cur.End = rec.T
				cur.Drops++
			} else {
				s.Episodes = append(s.Episodes, cur)
				s.Duration.AddDuration(cur.End - cur.Start)
				cur = EpisodeSummary{Start: rec.T, End: rec.T, Drops: 1}
			}
			minQ = r.Header.QueueCap
		}
	}
	flush()
	if s.Arrivals > 0 {
		s.LossRate = float64(s.Drops) / float64(s.Arrivals)
	}
	if s.Span > 0 && cfg.Slot > 0 {
		nSlots := int64(s.Span/cfg.Slot) + 1
		congested := int64(0)
		for _, e := range s.Episodes {
			congested += int64(e.End/cfg.Slot) - int64(e.Start/cfg.Slot) + 1
		}
		s.Frequency = float64(congested) / float64(nSlots)
	}
	return s, nil
}

// MatchLoss reproduces the paper's DAG trace-differencing: given the
// arrival records of an ingress trace and the departure records of an
// egress trace, it returns the IDs of packets that entered the queue but
// never left — the lost packets — without consulting any Drop records.
func MatchLoss(ingress, egress []Record) []uint64 {
	departed := make(map[uint64]bool)
	for _, r := range egress {
		if r.Event == Depart {
			departed[r.ID] = true
		}
	}
	var lost []uint64
	for _, r := range ingress {
		if r.Event == Arrive && !departed[r.ID] {
			lost = append(lost, r.ID)
		}
	}
	return lost
}
