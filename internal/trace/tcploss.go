package trace

// Passive TCP loss estimation (related work §2: "Allman et al.
// demonstrated how to estimate TCP loss rates from passive packet traces
// of TCP transfers taken close to the sender"). Given the ingress side of
// a trace, a segment seen more than once for the same (flow, seq) is a
// retransmission; the retransmission rate approximates the flow's loss
// rate. Taken close to the sender the estimate is biased *upward*
// (spurious retransmissions count too), and it can only see flows that
// carry traffic — both limitations the paper contrasts with active
// probing.

// TCPLossEstimate is the per-trace passive estimate.
type TCPLossEstimate struct {
	// Flows with at least one data segment.
	Flows int
	// Segments is the number of first transmissions observed.
	Segments uint64
	// Retransmissions is the number of repeated (flow, seq) sightings.
	Retransmissions uint64
	// Rate is Retransmissions / (Segments + Retransmissions).
	Rate float64
}

// EstimateTCPLoss scans arrival records for data packets (Kind value 0 =
// simnet.Data) and computes the retransmission-based loss estimate.
func EstimateTCPLoss(recs []Record) TCPLossEstimate {
	type key struct {
		flow uint64
		seq  int64
	}
	seen := make(map[key]bool)
	flows := make(map[uint64]bool)
	var est TCPLossEstimate
	for _, r := range recs {
		if r.Event != Arrive || r.Kind != 0 {
			continue
		}
		k := key{r.Flow, r.Seq}
		if seen[k] {
			est.Retransmissions++
			continue
		}
		seen[k] = true
		flows[r.Flow] = true
		est.Segments++
	}
	est.Flows = len(flows)
	if total := est.Segments + est.Retransmissions; total > 0 {
		est.Rate = float64(est.Retransmissions) / float64(total)
	}
	return est
}
