// Package trace provides passive packet-trace capture and offline
// analysis, mirroring the paper's measurement methodology: DAG cards on
// optical splitters captured every packet entering and leaving the
// bottleneck, and losses were identified by comparing the two traces.
//
// A Writer streams per-packet events (arrivals, departures, drops, with
// queue occupancy) into a compact binary format; a Reader iterates them;
// Analyze reconstructs loss episodes and summary statistics offline; and
// MatchLoss reproduces the paper's trace-differencing technique, finding
// lost packets by comparing an ingress and an egress trace without using
// explicit drop records.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic identifies trace files.
const Magic uint32 = 0x42425452 // "BBTR"

// Version of the trace format.
const Version = 1

// Event is the kind of a trace record.
type Event uint8

// Events.
const (
	Arrive Event = iota // packet arrived at the link (pre-queue)
	Depart              // packet finished transmission (post-queue)
	Drop                // packet discarded at the queue
)

func (e Event) String() string {
	switch e {
	case Arrive:
		return "arrive"
	case Depart:
		return "depart"
	case Drop:
		return "drop"
	default:
		return "unknown"
	}
}

// Record is one trace entry. QueueBytes is the buffer occupancy observed
// at the event, which lets offline tools reconstruct the queue-length
// time series exactly as the paper inferred it from DAG timestamps.
type Record struct {
	T          time.Duration
	Event      Event
	Kind       uint8 // simnet.Kind of the packet
	Flow       uint64
	ID         uint64
	Size       uint32
	Seq        int64
	QueueBytes uint32
}

// Header describes the traced link.
type Header struct {
	BitsPerSec int64
	QueueCap   uint32
}

const headerSize = 4 + 1 + 3 + 8 + 4 // magic, version, pad, rate, qcap
const recordSize = 8 + 1 + 1 + 8 + 8 + 4 + 8 + 4

// Writer streams trace records. Close (or Flush) must be called to ensure
// buffered records reach the underlying writer.
type Writer struct {
	w   *bufio.Writer
	buf [recordSize]byte
	n   uint64
}

// NewWriter writes the file header and returns a Writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], Magic)
	hdr[4] = Version
	binary.BigEndian.PutUint64(hdr[8:], uint64(h.BitsPerSec))
	binary.BigEndian.PutUint32(hdr[16:], h.QueueCap)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	b := w.buf[:]
	binary.BigEndian.PutUint64(b[0:], uint64(r.T))
	b[8] = byte(r.Event)
	b[9] = r.Kind
	binary.BigEndian.PutUint64(b[10:], r.Flow)
	binary.BigEndian.PutUint64(b[18:], r.ID)
	binary.BigEndian.PutUint32(b[26:], r.Size)
	binary.BigEndian.PutUint64(b[30:], uint64(r.Seq))
	binary.BigEndian.PutUint32(b[38:], r.QueueBytes)
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns how many records have been written.
func (w *Writer) Count() uint64 { return w.n }

// Flush pushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader iterates a trace.
type Reader struct {
	r      *bufio.Reader
	Header Header
	buf    [recordSize]byte
}

// NewReader validates the file header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:]) != Magic {
		return nil, errors.New("trace: bad magic")
	}
	if hdr[4] != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	return &Reader{
		r: br,
		Header: Header{
			BitsPerSec: int64(binary.BigEndian.Uint64(hdr[8:])),
			QueueCap:   binary.BigEndian.Uint32(hdr[16:]),
		},
	}, nil
}

// Next returns the next record, or io.EOF at the end of the trace.
func (r *Reader) Next() (Record, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Record{}, err
	}
	b := r.buf[:]
	return Record{
		T:          time.Duration(binary.BigEndian.Uint64(b[0:])),
		Event:      Event(b[8]),
		Kind:       b[9],
		Flow:       binary.BigEndian.Uint64(b[10:]),
		ID:         binary.BigEndian.Uint64(b[18:]),
		Size:       binary.BigEndian.Uint32(b[26:]),
		Seq:        int64(binary.BigEndian.Uint64(b[30:])),
		QueueBytes: binary.BigEndian.Uint32(b[38:]),
	}, nil
}

// ReadAll drains the trace into memory.
func ReadAll(r *Reader) ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
