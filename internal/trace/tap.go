package trace

import (
	"time"

	"badabing/internal/simnet"
)

// Tap records every packet event at a simulated link into a Writer — the
// in-simulation equivalent of attaching a DAG capture card to the link's
// optical splitter.
type Tap struct {
	w   *Writer
	err error
}

// AttachTap creates a Writer-backed tap on link. The caller owns flushing
// the Writer after the simulation drains. The first write error is
// retained and reported by Err; subsequent events are dropped.
func AttachTap(link *simnet.Link, w *Writer) *Tap {
	t := &Tap{w: w}
	link.AddTap(t)
	return t
}

// Err returns the first write error encountered, if any.
func (t *Tap) Err() error { return t.err }

func (t *Tap) write(r Record) {
	if t.err != nil {
		return
	}
	t.err = t.w.Write(r)
}

// Arrive implements simnet.Tap.
func (t *Tap) Arrive(now time.Duration, p *simnet.Packet, queued int) {
	t.write(Record{
		T: now, Event: Arrive, Kind: uint8(p.Kind), Flow: p.Flow,
		ID: p.ID, Size: uint32(p.Size), Seq: p.Seq, QueueBytes: uint32(queued),
	})
}

// Depart implements simnet.Tap.
func (t *Tap) Depart(now time.Duration, p *simnet.Packet, queued int) {
	t.write(Record{
		T: now, Event: Depart, Kind: uint8(p.Kind), Flow: p.Flow,
		ID: p.ID, Size: uint32(p.Size), Seq: p.Seq, QueueBytes: uint32(queued),
	})
}

// Dropped implements simnet.Tap.
func (t *Tap) Dropped(now time.Duration, p *simnet.Packet, _ simnet.Drop) {
	t.write(Record{
		T: now, Event: Drop, Kind: uint8(p.Kind), Flow: p.Flow,
		ID: p.ID, Size: uint32(p.Size), Seq: p.Seq,
	})
}
