package trace

import (
	"bytes"
	"testing"
	"time"

	"badabing/internal/capture"
	"badabing/internal/simnet"
	"badabing/internal/traffic"
)

func TestEstimateTCPLossSynthetic(t *testing.T) {
	recs := []Record{
		{Event: Arrive, Kind: 0, Flow: 1, Seq: 0},
		{Event: Arrive, Kind: 0, Flow: 1, Seq: 1},
		{Event: Arrive, Kind: 0, Flow: 1, Seq: 1}, // retransmission
		{Event: Arrive, Kind: 0, Flow: 2, Seq: 0},
		{Event: Arrive, Kind: 1, Flow: 3, Seq: 0}, // ACK: ignored
		{Event: Depart, Kind: 0, Flow: 1, Seq: 2}, // not an arrival
	}
	est := EstimateTCPLoss(recs)
	if est.Flows != 2 {
		t.Fatalf("flows = %d, want 2", est.Flows)
	}
	if est.Segments != 3 || est.Retransmissions != 1 {
		t.Fatalf("segments/retrans = %d/%d, want 3/1", est.Segments, est.Retransmissions)
	}
	if est.Rate != 0.25 {
		t.Fatalf("rate = %v, want 0.25", est.Rate)
	}
}

func TestEstimateTCPLossEmpty(t *testing.T) {
	est := EstimateTCPLoss(nil)
	if est.Rate != 0 || est.Flows != 0 {
		t.Fatalf("empty estimate: %+v", est)
	}
}

// TestPassiveEstimateTracksRouterLossRate runs real TCP over a congested
// bottleneck and compares the retransmission-based passive estimate to
// the monitor's true router-centric loss rate. Close to the sender (our
// tap is pre-queue), retransmission rate ≈ loss rate, modulo spurious
// retransmissions.
func TestPassiveEstimateTracksRouterLossRate(t *testing.T) {
	sim := simnet.New()
	d := simnet.NewDumbbell(sim, simnet.DumbbellConfig{
		BottleneckRate: simnet.Rate(20_000_000),
		QueueDuration:  40 * time.Millisecond,
	})
	mon := capture.Attach(sim, d.Bottleneck, capture.Config{})
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{BitsPerSec: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	tap := AttachTap(d.Bottleneck, w)
	ids := traffic.NewIDSpace(0)
	traffic.NewInfiniteTCP(sim, d, ids, 10)
	const horizon = 60 * time.Second
	sim.Run(horizon)
	if err := tap.Err(); err != nil {
		t.Fatal(err)
	}
	w.Flush()

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateTCPLoss(recs)
	truth := mon.Truth(horizon, 5*time.Millisecond)
	if truth.LossRate <= 0 {
		t.Fatal("no loss in scenario")
	}
	if est.Rate <= 0 {
		t.Fatal("passive estimate found no retransmissions")
	}
	ratio := est.Rate / truth.LossRate
	// Data-only loss rate vs all-packets loss rate plus spurious
	// retransmissions: allow a factor of three.
	if ratio < 1.0/3 || ratio > 3 {
		t.Errorf("passive rate %.4f vs router-centric %.4f (ratio %.2f)",
			est.Rate, truth.LossRate, ratio)
	}
}
