package badabing

import (
	"math"
	"math/rand"
	"testing"
)

// synthSeries generates an alternating renewal congestion series over n
// slots: geometric uncongested gaps with the given mean and episodes of
// exactly epLen slots. Returns the series and the true (F, D).
func synthSeries(rng *rand.Rand, n int, gapMean float64, epLen int) (series []bool, f float64, d float64) {
	series = make([]bool, n)
	congested := 0
	episodes := 0
	i := 0
	for i < n {
		gap := 1 + int(rng.ExpFloat64()*gapMean)
		i += gap
		if i >= n {
			break
		}
		episodes++
		for j := 0; j < epLen && i < n; j++ {
			series[i] = true
			congested++
			i++
		}
	}
	if episodes == 0 {
		return series, 0, 0
	}
	return series, float64(congested) / float64(n), float64(congested) / float64(episodes)
}

// observe applies the paper's §5.2.1 detection model to the true bits of
// one experiment: a correct report with probability p1 (one congested
// slot) or p2 (two or more), otherwise all-zeros.
func observe(rng *rand.Rand, truth []bool, p1, p2 float64) []bool {
	ones := 0
	for _, b := range truth {
		if b {
			ones++
		}
	}
	if ones == 0 {
		return truth
	}
	pk := p1
	if ones >= 2 {
		pk = p2
	}
	if rng.Float64() < pk {
		return truth
	}
	return make([]bool, len(truth))
}

// runSynthetic probes a synthetic series and returns the accumulator.
func runSynthetic(t *testing.T, seed int64, n int, gapMean float64, epLen int, p, p1, p2 float64, improved bool) (*Accumulator, float64, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	series, trueF, trueD := synthSeries(rng, n, gapMean, epLen)
	if trueD == 0 {
		t.Fatal("synthetic series has no episodes")
	}
	plans := MustSchedule(ScheduleConfig{P: p, N: int64(n), Improved: improved, Seed: seed + 1})
	acc := &Accumulator{}
	for _, pl := range plans {
		truth := make([]bool, pl.Probes)
		for j := range truth {
			truth[j] = series[pl.Slot+int64(j)]
		}
		acc.Add(observe(rng, truth, p1, p2))
	}
	return acc, trueF, trueD
}

func TestFrequencyUnbiasedPerfectprobes(t *testing.T) {
	acc, trueF, _ := runSynthetic(t, 1, 2_000_000, 500, 14, 0.2, 1, 1, false)
	got := acc.Frequency()
	if math.Abs(got-trueF) > 0.15*trueF {
		t.Errorf("F̂ = %v, true F = %v (>15%% off)", got, trueF)
	}
}

func TestDurationConsistentPerfectProbes(t *testing.T) {
	acc, _, trueD := runSynthetic(t, 2, 2_000_000, 500, 14, 0.2, 1, 1, false)
	got, ok := acc.DurationSlots()
	if !ok {
		t.Fatal("no duration estimate")
	}
	if math.Abs(got-trueD) > 0.15*trueD {
		t.Errorf("D̂ = %v slots, true D = %v (>15%% off)", got, trueD)
	}
}

func TestDurationConsistentEqualDetection(t *testing.T) {
	// p1 = p2 = 0.6: the basic estimator remains consistent (r = 1)
	// even though individual probes miss congestion 40% of the time.
	acc, _, trueD := runSynthetic(t, 3, 4_000_000, 500, 14, 0.2, 0.6, 0.6, false)
	got, ok := acc.DurationSlots()
	if !ok {
		t.Fatal("no duration estimate")
	}
	if math.Abs(got-trueD) > 0.2*trueD {
		t.Errorf("D̂ = %v slots, true D = %v (>20%% off with p1=p2=0.6)", got, trueD)
	}
}

func TestFrequencyAttenuatedByDetection(t *testing.T) {
	// With p1 = p2 = q < 1, F̂ converges to q·F: the estimator is
	// unbiased only under the basic algorithm's p1 = p2 = 1 assumption.
	const q = 0.5
	acc, trueF, _ := runSynthetic(t, 4, 2_000_000, 500, 14, 0.2, q, q, false)
	got := acc.Frequency()
	want := q * trueF
	if math.Abs(got-want) > 0.2*want {
		t.Errorf("F̂ = %v, want ≈ q·F = %v", got, want)
	}
}

func TestBasicDurationBiasedWhenP1NeqP2(t *testing.T) {
	// p2 < p1 makes the basic estimator underestimate duration.
	acc, _, trueD := runSynthetic(t, 5, 4_000_000, 500, 14, 0.3, 0.9, 0.45, true)
	basic, ok := acc.DurationSlots()
	if !ok {
		t.Fatal("no basic estimate")
	}
	if basic > 0.8*trueD {
		t.Errorf("basic D̂ = %v not visibly biased low vs true %v with r=0.5", basic, trueD)
	}
}

func TestImprovedDurationCorrectsBias(t *testing.T) {
	acc, _, trueD := runSynthetic(t, 6, 6_000_000, 500, 14, 0.3, 0.9, 0.45, true)
	imp, ok := acc.DurationSlotsImproved()
	if !ok {
		t.Fatal("no improved estimate")
	}
	if math.Abs(imp-trueD) > 0.25*trueD {
		t.Errorf("improved D̂ = %v, true %v (>25%% off)", imp, trueD)
	}
	r, ok := acc.RHat()
	if !ok {
		t.Fatal("no r estimate")
	}
	if math.Abs(r-0.5) > 0.15 {
		t.Errorf("r̂ = %v, want ≈0.5", r)
	}
}

func TestScheduleDensityAndShape(t *testing.T) {
	const n, p = 100_000, 0.3
	plans := MustSchedule(ScheduleConfig{P: p, N: n, Seed: 7})
	got := float64(len(plans)) / n
	if math.Abs(got-p) > 0.02 {
		t.Errorf("experiment density %v, want ≈%v", got, p)
	}
	for _, pl := range plans {
		if pl.Probes != 2 {
			t.Fatalf("basic-only schedule contains %d-probe experiment", pl.Probes)
		}
		if pl.Slot < 0 || pl.Slot+int64(pl.Probes) > n {
			t.Fatalf("experiment at slot %d overruns horizon", pl.Slot)
		}
	}
}

func TestScheduleImprovedMix(t *testing.T) {
	plans := MustSchedule(ScheduleConfig{P: 0.3, N: 100_000, Improved: true, Seed: 8})
	ext := 0
	for _, pl := range plans {
		if pl.Probes == 3 {
			ext++
		} else if pl.Probes != 2 {
			t.Fatalf("unexpected probe count %d", pl.Probes)
		}
	}
	frac := float64(ext) / float64(len(plans))
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("extended fraction %v, want ≈0.5", frac)
	}
}

func TestScheduleInvalidP(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.5, math.NaN()} {
		if _, err := Schedule(ScheduleConfig{P: p, N: 10}); err == nil {
			t.Errorf("Schedule(P=%v) accepted", p)
		}
	}
	if _, err := Schedule(ScheduleConfig{P: 0.5, N: 0}); err == nil {
		t.Error("Schedule(N=0) accepted")
	}
	if _, err := Schedule(ScheduleConfig{P: 0.5, N: 10}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMustSchedulePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchedule(P=0) did not panic")
		}
	}()
	MustSchedule(ScheduleConfig{P: 0, N: 10})
}

func TestAccumulatorCounts(t *testing.T) {
	acc := &Accumulator{}
	acc.AddBasic(false, false) // 00
	acc.AddBasic(false, true)  // 01
	acc.AddBasic(true, false)  // 10
	acc.AddBasic(true, true)   // 11
	acc.AddBasic(true, true)   // 11
	r, s := acc.RS()
	if r != 4 || s != 2 {
		t.Fatalf("R,S = %d,%d; want 4,2", r, s)
	}
	if acc.M() != 5 {
		t.Fatalf("M = %d, want 5", acc.M())
	}
	if got, want := acc.Frequency(), 3.0/5.0; got != want {
		t.Fatalf("F̂ = %v, want %v", got, want)
	}
	d, ok := acc.DurationSlots()
	if !ok || d != 2*(4.0/2.0-1)+1 {
		t.Fatalf("D̂ = %v (%v), want 3", d, ok)
	}
}

func TestAccumulatorExtendedCounts(t *testing.T) {
	acc := &Accumulator{}
	acc.AddExtended(false, true, true)  // 011 → U
	acc.AddExtended(true, true, false)  // 110 → U
	acc.AddExtended(false, false, true) // 001 → V
	acc.AddExtended(true, false, true)  // 101 → violation
	u, v := acc.UV()
	if u != 2 || v != 1 {
		t.Fatalf("U,V = %d,%d; want 2,1", u, v)
	}
	val := acc.Validate()
	if val.Violations != 1 {
		t.Fatalf("violations = %d, want 1", val.Violations)
	}
	r, ok := acc.RHat()
	if !ok || r != 2 {
		t.Fatalf("r̂ = %v (%v), want 2", r, ok)
	}
}

func TestDurationUndefinedWithoutBoundaries(t *testing.T) {
	acc := &Accumulator{}
	for i := 0; i < 100; i++ {
		acc.AddBasic(false, false)
	}
	if _, ok := acc.Duration(); ok {
		t.Fatal("duration defined with S=0")
	}
	if _, ok := acc.DurationStdDev(); ok {
		t.Fatal("stddev defined with S=0")
	}
}

func TestValidationSymmetryOnCleanProcess(t *testing.T) {
	acc, _, _ := runSynthetic(t, 9, 2_000_000, 500, 14, 0.3, 1, 1, true)
	v := acc.Validate()
	if v.BoundaryAsymmetry > 0.15 {
		t.Errorf("boundary asymmetry %v on a clean renewal process", v.BoundaryAsymmetry)
	}
	if !v.Passes(Criteria{}) {
		t.Errorf("validation failed on a clean process: %+v", v)
	}
}

func TestValidationDetectsShortGapViolations(t *testing.T) {
	// A process with many 1-slot gaps produces 101 patterns, which the
	// model treats as assumption violations.
	n := 500_000
	series := make([]bool, n)
	for i := 0; i < n; i++ {
		// Alternate 1-congested/1-clear in bursts.
		if (i/2)%40 == 0 && i%2 == 0 {
			series[i] = true
		}
	}
	plans := MustSchedule(ScheduleConfig{P: 0.5, N: int64(n), Improved: true, Seed: 11})
	acc := &Accumulator{}
	for _, pl := range plans {
		bits := make([]bool, pl.Probes)
		for j := range bits {
			bits[j] = series[pl.Slot+int64(j)]
		}
		acc.Add(bits)
	}
	v := acc.Validate()
	if v.Violations == 0 {
		t.Fatal("no violations detected on a pathological series")
	}
	if v.Passes(Criteria{}) {
		t.Errorf("validation passed despite violation rate %v", v.ViolationRate)
	}
}

func TestDurationStdDevShrinksWithData(t *testing.T) {
	short, _, _ := runSynthetic(t, 12, 200_000, 500, 14, 0.2, 1, 1, false)
	long, _, _ := runSynthetic(t, 12, 4_000_000, 500, 14, 0.2, 1, 1, false)
	s1, ok1 := short.DurationStdDev()
	s2, ok2 := long.DurationStdDev()
	if !ok1 || !ok2 {
		t.Fatal("stddev undefined")
	}
	if s2 >= s1 {
		t.Errorf("stddev did not shrink with more data: %v → %v", s1, s2)
	}
}

func TestMakeReportFields(t *testing.T) {
	acc, _, _ := runSynthetic(t, 13, 1_000_000, 500, 14, 0.3, 1, 1, true)
	rep := acc.MakeReport()
	if rep.M != acc.M() {
		t.Errorf("report M = %d, want %d", rep.M, acc.M())
	}
	if !rep.HasDuration {
		t.Error("report should have a duration")
	}
	if math.IsNaN(rep.DurationBasic) || math.IsNaN(rep.DurationImproved) {
		t.Error("both estimators should be defined")
	}
	if rep.Frequency <= 0 {
		t.Error("frequency should be positive")
	}
	if math.IsNaN(rep.StdDev) || rep.StdDev <= 0 {
		t.Error("stddev should be defined and positive")
	}
}

func TestMonitorConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	series, _, _ := synthSeries(rng, 4_000_000, 500, 14)
	m := NewMonitor(MonitorConfig{MinExperiments: 500})
	plans := MustSchedule(ScheduleConfig{P: 0.2, N: int64(len(series)), Improved: true, Seed: 15})
	converged := false
	var used int
	for i, pl := range plans {
		bits := make([]bool, pl.Probes)
		for j := range bits {
			bits[j] = series[pl.Slot+int64(j)]
		}
		m.Add(bits)
		if m.Converged() {
			converged = true
			used = i + 1
			break
		}
	}
	if !converged {
		t.Fatal("monitor never converged on a clean process")
	}
	if used == len(plans) {
		t.Error("monitor only converged at the very end")
	}
	rep := m.Report()
	if !rep.HasDuration {
		t.Error("converged monitor lacks duration estimate")
	}
}

func TestAssembleSkipsIncomplete(t *testing.T) {
	acc := &Accumulator{}
	plans := []Plan{{Slot: 0, Probes: 2}, {Slot: 10, Probes: 2}, {Slot: 20, Probes: 3}}
	marked := map[int64]bool{0: false, 1: true, 20: true, 21: true, 22: false}
	skipped := Assemble(acc, plans, marked)
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if acc.M() != 2 {
		t.Fatalf("M = %d, want 2", acc.M())
	}
	u, _ := acc.UV()
	if u != 1 { // 110 recorded
		t.Fatalf("U = %d, want 1", u)
	}
}

func TestEpisodeRateHat(t *testing.T) {
	// Deterministic construction: S = 2pB exactly in expectation.
	acc := &Accumulator{}
	for i := 0; i < 40; i++ {
		acc.AddBasic(i%2 == 0, i%2 != 0) // 20×"10", 20×"01" → S = 40
	}
	got := acc.EpisodeRateHat(0.2, 10_000)
	want := 40.0 / (2 * 0.2 * 10_000)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("L̂ = %v, want %v", got, want)
	}
}
