package badabing

import (
	"math"
	"math/rand"
	"testing"
)

// synthGeometric generates an alternating renewal series with geometric
// episode lengths of mean meanLen slots and geometric gaps of mean
// gapMean. Returns the true mean episode length over the realized series.
func synthGeometric(rng *rand.Rand, n int, gapMean, meanLen float64) ([]bool, float64) {
	series := make([]bool, n)
	g := 1 - 1/meanLen
	congested, episodes := 0, 0
	i := 0
	for i < n {
		i += 1 + int(rng.ExpFloat64()*gapMean)
		if i >= n {
			break
		}
		episodes++
		for i < n {
			series[i] = true
			congested++
			i++
			if rng.Float64() >= g {
				break
			}
		}
	}
	if episodes == 0 {
		return series, 0
	}
	return series, float64(congested) / float64(episodes)
}

func probeSeries(series []bool, p float64, seed int64) *Accumulator {
	plans := MustSchedule(ScheduleConfig{P: p, N: int64(len(series)), Improved: true, Seed: seed})
	acc := &Accumulator{}
	for _, pl := range plans {
		bits := make([]bool, pl.Probes)
		for j := range bits {
			bits[j] = series[pl.Slot+int64(j)]
		}
		acc.Add(bits)
	}
	return acc
}

func TestGeometricEstimatorConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, meanLen := range []float64{2, 5, 14} {
		series, trueD := synthGeometric(rng, 4_000_000, 300, meanLen)
		if trueD == 0 {
			t.Fatal("no episodes")
		}
		acc := probeSeries(series, 0.3, 62)
		got, ok := acc.DurationSlotsGeometric()
		if !ok {
			t.Fatalf("meanLen=%v: no parametric estimate", meanLen)
		}
		if math.Abs(got-trueD) > 0.2*trueD {
			t.Errorf("meanLen=%v: parametric D̂ = %.2f, true %.2f", meanLen, got, trueD)
		}
	}
}

func TestGeometricEstimatorHandlesSubSlotEpisodes(t *testing.T) {
	// Episodes of exactly 1 slot, where the nonparametric validation
	// rejects (every interior observation is a 010 violation): the
	// parametric estimator is the right tool and must return ≈1 slot.
	rng := rand.New(rand.NewSource(63))
	series, trueD := synthGeometric(rng, 2_000_000, 100, 1.0000001)
	acc := probeSeries(series, 0.4, 64)
	if trueD < 0.99 || trueD > 1.01 {
		t.Fatalf("series not single-slot: true %v", trueD)
	}
	got, ok := acc.DurationSlotsGeometric()
	if !ok {
		t.Fatal("no estimate")
	}
	if got < 0.95 || got > 1.2 {
		t.Errorf("parametric D̂ = %v for single-slot episodes, want ≈1", got)
	}
	// And the nonparametric validation indeed flags this regime.
	if acc.Validate().ViolationRate < 0.2 {
		t.Errorf("expected high violation rate, got %v", acc.Validate().ViolationRate)
	}
}

func TestGeometricEstimatorUndefinedCases(t *testing.T) {
	acc := &Accumulator{}
	if _, ok := acc.DurationSlotsGeometric(); ok {
		t.Fatal("estimate from empty accumulator")
	}
	// Only continuations, never an end: ĝ = 1, unbounded.
	acc.AddExtended(false, true, true)
	acc.AddExtended(true, true, false)
	if _, _, ok := acc.GeometricContinuation(); !ok {
		t.Fatal("continuation MLE should be defined")
	}
	if _, ok := acc.DurationSlotsGeometric(); ok {
		t.Fatal("estimate should be undefined at ĝ = 1")
	}
}

func TestGeometricContinuationCounts(t *testing.T) {
	acc := &Accumulator{}
	acc.AddExtended(false, true, true)  // 011: forward continuation
	acc.AddExtended(true, true, false)  // 110: backward continuation
	acc.AddExtended(false, true, false) // 010: one stop in each direction
	g, n, ok := acc.GeometricContinuation()
	if !ok || n != 4 {
		t.Fatalf("n = %d (%v), want 4", n, ok)
	}
	if g != 0.5 {
		t.Fatalf("ĝ = %v, want 0.5", g)
	}
	d, ok := acc.DurationSlotsGeometric()
	if !ok || d != 2 {
		t.Fatalf("D̂ = %v (%v), want 2", d, ok)
	}
}
