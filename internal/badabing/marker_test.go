package badabing

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// mkObs builds an observation at time t (ms) with the given OWD (ms).
func mkObs(slot int64, tMillis, owdMillis int, lost int) ProbeObs {
	return ProbeObs{
		Slot:        slot,
		SentPackets: 3,
		LostPackets: lost,
		OWD:         ms(owdMillis),
		T:           ms(tMillis),
	}
}

func TestMarkLossAlwaysCongested(t *testing.T) {
	obs := []ProbeObs{
		mkObs(0, 0, 150, 1),
		mkObs(1, 5, 50, 0),
	}
	got := Mark(obs, MarkerConfig{Alpha: 0.1, Tau: ms(10)})
	if !got[0] {
		t.Error("lossy probe not marked congested")
	}
}

func TestMarkHighDelayNearLoss(t *testing.T) {
	// Baseline OWD 50 ms; loss at t=100 with OWD 150 ms (queue 100 ms).
	// A probe at t=110 with OWD 145 ms (queue 95 ms > 0.9×100) must be
	// congested; a probe at t=500 with the same delay must not (too far
	// from the loss); a probe at t=105 with low delay must not.
	obs := []ProbeObs{
		mkObs(0, 0, 50, 0),      // baseline
		mkObs(20, 100, 150, 1),  // loss
		mkObs(22, 110, 145, 0),  // high delay, near loss → congested
		mkObs(24, 120, 60, 0),   // low delay, near loss → clean
		mkObs(100, 500, 145, 0), // high delay, far from loss → clean
	}
	got := Mark(obs, MarkerConfig{Alpha: 0.1, Tau: ms(40)})
	want := []bool{false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("obs %d marked %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMarkBeforeLossWithinTau(t *testing.T) {
	// Probes *preceding* a loss by less than τ also qualify (the queue
	// was already full while it was filling).
	obs := []ProbeObs{
		mkObs(0, 0, 50, 0),
		mkObs(18, 90, 148, 0),  // 10 ms before the loss, queue nearly full
		mkObs(20, 100, 150, 1), // loss
	}
	got := Mark(obs, MarkerConfig{Alpha: 0.1, Tau: ms(40)})
	if !got[1] {
		t.Error("high-delay probe just before a loss not marked congested")
	}
}

func TestMarkNoLossesNoDelayMarking(t *testing.T) {
	// Without any loss, OWDmax is unknown: only losses mark congestion.
	obs := []ProbeObs{
		mkObs(0, 0, 50, 0),
		mkObs(1, 5, 500, 0), // large delay but no loss anywhere
	}
	got := Mark(obs, MarkerConfig{Alpha: 0.1, Tau: ms(40)})
	if got[0] || got[1] {
		t.Error("probes marked congested without any loss evidence")
	}
}

func TestMarkAlphaSensitivity(t *testing.T) {
	// Queue max 100 ms. A probe at 85 ms of queueing near a loss: with
	// α=0.20 the threshold is 80 ms (congested); with α=0.05 it is
	// 95 ms (clean). This is the mechanism behind Figure 9a.
	obs := []ProbeObs{
		mkObs(0, 0, 50, 0),
		mkObs(20, 100, 150, 1),
		mkObs(22, 110, 135, 0), // 85 ms of queueing
	}
	loose := Mark(obs, MarkerConfig{Alpha: 0.20, Tau: ms(40)})
	tight := Mark(obs, MarkerConfig{Alpha: 0.05, Tau: ms(40)})
	if !loose[2] {
		t.Error("α=0.20 should mark the 85ms-queue probe congested")
	}
	if tight[2] {
		t.Error("α=0.05 should not mark the 85ms-queue probe congested")
	}
}

func TestMarkTauSensitivity(t *testing.T) {
	// Same probe, 60 ms from the loss: τ=80 marks it, τ=20 does not.
	// This is the mechanism behind Figure 9b.
	obs := []ProbeObs{
		mkObs(0, 0, 50, 0),
		mkObs(20, 100, 150, 1),
		mkObs(32, 160, 148, 0),
	}
	wide := Mark(obs, MarkerConfig{Alpha: 0.1, Tau: ms(80)})
	narrow := Mark(obs, MarkerConfig{Alpha: 0.1, Tau: ms(20)})
	if !wide[2] {
		t.Error("τ=80ms should mark the probe congested")
	}
	if narrow[2] {
		t.Error("τ=20ms should not mark the probe congested")
	}
}

func TestMarkUnsortedInput(t *testing.T) {
	obs := []ProbeObs{
		mkObs(22, 110, 145, 0),
		mkObs(0, 0, 50, 0),
		mkObs(20, 100, 150, 1),
	}
	got := Mark(obs, MarkerConfig{Alpha: 0.1, Tau: ms(40)})
	if !got[0] {
		t.Error("marking must not depend on input order")
	}
}

func TestMarkOWDMaxAveraging(t *testing.T) {
	// Two losses with different delays: OWDmax is their mean queue
	// depth. Losses at 150 ms and 130 ms over a 50 ms baseline give
	// OWDmax = 90 ms; threshold at α=0.1 is 81 ms.
	obs := []ProbeObs{
		mkObs(0, 0, 50, 0),
		mkObs(20, 100, 150, 1),
		mkObs(40, 200, 130, 1),
		mkObs(42, 210, 135, 0), // 85 ms queue ≥ 81 → congested
		mkObs(44, 220, 128, 0), // 78 ms queue < 81 → clean
	}
	got := Mark(obs, MarkerConfig{Alpha: 0.1, Tau: ms(40)})
	if !got[3] {
		t.Error("probe above averaged threshold not marked")
	}
	if got[4] {
		t.Error("probe below averaged threshold marked")
	}
}

func TestMarkEmpty(t *testing.T) {
	if got := Mark(nil, MarkerConfig{}); len(got) != 0 {
		t.Fatal("non-empty result for empty input")
	}
}
