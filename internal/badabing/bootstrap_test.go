package badabing

import (
	"math/rand"
	"testing"
)

// recordSynthetic drives a Recorder over a synthetic series.
func recordSynthetic(seed int64, n int) (*Recorder, float64, float64) {
	rng := rand.New(rand.NewSource(seed))
	series, f, d := synthSeries(rng, n, 500, 14)
	plans := MustSchedule(ScheduleConfig{P: 0.2, N: int64(n), Improved: true, Seed: seed + 1})
	rec := &Recorder{}
	for _, pl := range plans {
		bits := make([]bool, pl.Probes)
		for j := range bits {
			bits[j] = series[pl.Slot+int64(j)]
		}
		rec.Add(bits)
	}
	return rec, f, d
}

func TestBootstrapCoversTruth(t *testing.T) {
	rec, trueF, trueD := recordSynthetic(51, 2_000_000)
	freq, dur, durOK := rec.Bootstrap(BootstrapConfig{Resamples: 100, Seed: 7})
	if freq.Lo >= freq.Hi {
		t.Fatalf("degenerate frequency interval: %+v", freq)
	}
	if trueF < freq.Lo || trueF > freq.Hi {
		t.Errorf("true F %v outside 95%% interval [%v, %v]", trueF, freq.Lo, freq.Hi)
	}
	if !durOK {
		t.Fatal("no duration interval despite many boundaries")
	}
	trueDs := trueD * DefaultSlot.Seconds()
	// The duration interval is in seconds; allow some slack since the
	// estimator itself carries bias at finite samples.
	if trueDs < dur.Lo*0.7 || trueDs > dur.Hi*1.3 {
		t.Errorf("true D %.4fs far outside interval [%.4f, %.4f]", trueDs, dur.Lo, dur.Hi)
	}
}

func TestBootstrapPointEstimateInsideInterval(t *testing.T) {
	rec, _, _ := recordSynthetic(52, 1_000_000)
	freq, _, _ := rec.Bootstrap(BootstrapConfig{Resamples: 100, Seed: 9})
	point := rec.Acc.Frequency()
	if point < freq.Lo || point > freq.Hi {
		t.Errorf("point estimate %v outside its own bootstrap interval [%v, %v]",
			point, freq.Lo, freq.Hi)
	}
}

func TestBootstrapIntervalShrinksWithData(t *testing.T) {
	small, _, _ := recordSynthetic(53, 400_000)
	big, _, _ := recordSynthetic(53, 4_000_000)
	fs, _, _ := small.Bootstrap(BootstrapConfig{Resamples: 100, Seed: 3})
	fb, _, _ := big.Bootstrap(BootstrapConfig{Resamples: 100, Seed: 3})
	if fb.Hi-fb.Lo >= fs.Hi-fs.Lo {
		t.Errorf("interval did not shrink: small width %v, big width %v",
			fs.Hi-fs.Lo, fb.Hi-fb.Lo)
	}
}

func TestBootstrapEmptyRecorder(t *testing.T) {
	rec := &Recorder{}
	freq, _, durOK := rec.Bootstrap(BootstrapConfig{})
	if durOK {
		t.Fatal("duration interval from no data")
	}
	if freq.Lo != 0 || freq.Hi != 0 {
		t.Fatalf("non-trivial interval from no data: %+v", freq)
	}
}

func TestBootstrapNoBoundaries(t *testing.T) {
	rec := &Recorder{}
	for i := 0; i < 500; i++ {
		rec.Add([]bool{false, false})
	}
	_, _, durOK := rec.Bootstrap(BootstrapConfig{Resamples: 50})
	if durOK {
		t.Fatal("duration interval despite zero boundary observations")
	}
}

func TestRecorderMatchesAccumulator(t *testing.T) {
	rec := &Recorder{}
	acc := &Accumulator{}
	outcomes := [][]bool{
		{false, false}, {false, true}, {true, true},
		{true, false, false}, {false, true, true},
	}
	for _, o := range outcomes {
		rec.Add(o)
		acc.Add(o)
	}
	if rec.Acc.Frequency() != acc.Frequency() {
		t.Fatal("recorder diverged from accumulator")
	}
	r1, s1 := rec.Acc.RS()
	r2, s2 := acc.RS()
	if r1 != r2 || s1 != s2 {
		t.Fatal("RS counts diverged")
	}
	u1, v1 := rec.Acc.UV()
	u2, v2 := acc.UV()
	if u1 != u2 || v1 != v2 {
		t.Fatal("UV counts diverged")
	}
}

func TestPercentileInterval(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	iv := percentileInterval(xs, 0.90)
	if iv.Lo != 5 || iv.Hi != 95 {
		t.Fatalf("90%% interval [%v, %v], want [5, 95]", iv.Lo, iv.Hi)
	}
}
