package badabing

import "time"

// ProbeSlots flattens an experiment schedule into the deduplicated list of
// slots to probe, in first-use order. Overlapping experiments share probes:
// each slot appears once and its observation feeds every experiment covering
// it. Every substrate (simulated prober, wire sender, wire collector) derives
// its probe set through this one function so their views of a schedule can
// never diverge.
func ProbeSlots(plans []Plan) []int64 {
	seen := make(map[int64]bool)
	var slots []int64
	for _, pl := range plans {
		for j := 0; j < pl.Probes; j++ {
			s := pl.Slot + int64(j)
			if !seen[s] {
				seen[s] = true
				slots = append(slots, s)
			}
		}
	}
	return slots
}

// InheritOWD applies the §6.1 rule for fully lost probes in place: a probe
// with no delay sample (every packet lost, OWD zero) inherits the delay of
// the most recent probe that had one, as the best available queue-depth
// estimate at its send time. Observations must be in send order.
func InheritOWD(obs []ProbeObs) {
	var last time.Duration
	for i := range obs {
		own := obs[i].OWD > 0
		if !own && last > 0 {
			obs[i].OWD = last
		}
		if own {
			last = obs[i].OWD
		}
	}
}
