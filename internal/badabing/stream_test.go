package badabing

import (
	"math"
	"math/rand"
	"testing"
)

// streamFixture runs a fixed-seed synthetic measurement and feeds every
// outcome to both the batch accumulator and a stream configured with the
// given window.
func streamFixture(t *testing.T, windowSlots int64, buckets int) (*Accumulator, *Stream) {
	t.Helper()
	const n = 200_000
	rng := rand.New(rand.NewSource(91))
	series, _, d := synthSeries(rng, n, 500, 14)
	if d == 0 {
		t.Fatal("synthetic series has no episodes")
	}
	plans := MustSchedule(ScheduleConfig{P: 0.2, N: n, Improved: true, Seed: 92})
	acc := &Accumulator{}
	st, err := NewStream(StreamConfig{WindowSlots: windowSlots, Buckets: buckets})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range plans {
		truth := make([]bool, pl.Probes)
		for j := range truth {
			truth[j] = series[pl.Slot+int64(j)]
		}
		bits := observe(rng, truth, 0.9, 0.9)
		acc.Add(bits)
		st.Observe(pl.Slot, bits)
	}
	return acc, st
}

// TestStreamBatchParity pins the acceptance criterion: a single window
// spanning the entire fixed-seed run produces F̂, D̂ and r̂ identical — to
// the last float bit — to the batch estimator, in both the total and the
// window views.
func TestStreamBatchParity(t *testing.T) {
	acc, st := streamFixture(t, 200_000, 16)
	snap := st.Snapshot()
	batch := EstimatesOf(acc)

	for _, view := range []struct {
		name string
		got  Estimates
	}{{"total", snap.Total}, {"window", snap.Window}} {
		if view.got != batch {
			t.Errorf("%s view diverged from batch:\n got %+v\nwant %+v", view.name, view.got, batch)
		}
		pairs := []struct {
			name      string
			got, want float64
		}{
			{"F̂", view.got.Frequency, batch.Frequency},
			{"D̂ basic", view.got.DurationBasic, batch.DurationBasic},
			{"D̂ improved", view.got.DurationImproved, batch.DurationImproved},
			{"r̂", view.got.RHat, batch.RHat},
			{"stddev", view.got.StdDev, batch.StdDev},
		}
		for _, p := range pairs {
			if math.Float64bits(p.got) != math.Float64bits(p.want) {
				t.Errorf("%s %s: %x != batch %x", view.name, p.name,
					math.Float64bits(p.got), math.Float64bits(p.want))
			}
		}
	}

	// Golden values for the fixed seed, so estimator regressions cannot
	// hide behind the parity check (both sides drifting together).
	golden := []struct {
		name string
		got  float64
		want uint64
	}{
		{"F̂", snap.Total.Frequency, 0x3f97afa1900dd007},
		{"D̂ improved", snap.Total.DurationImproved, 0x3fb3a779381c9e69},
		{"r̂", snap.Total.RHat, 0x3fee85e85e85e85f},
	}
	for _, g := range golden {
		if math.Float64bits(g.got) != g.want {
			t.Errorf("golden %s: got %v (bits %x), want bits %x", g.name, g.got,
				math.Float64bits(g.got), g.want)
		}
	}
	if !snap.Total.HasDuration || !snap.Total.HasRHat {
		t.Error("fixture produced no duration or r̂ estimate")
	}
}

// TestStreamWindowTracksRegimeChange: a path that is lossy early and clean
// late should show near-zero frequency in a recent window while the total
// still averages the lossy past in.
func TestStreamWindowTracksRegimeChange(t *testing.T) {
	const n = 100_000
	rng := rand.New(rand.NewSource(17))
	plans := MustSchedule(ScheduleConfig{P: 0.3, N: n, Seed: 18})
	st, err := NewStream(StreamConfig{WindowSlots: 20_000, Buckets: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range plans {
		lossy := pl.Slot < n/2
		bits := make([]bool, pl.Probes)
		for j := range bits {
			bits[j] = lossy && rng.Float64() < 0.3
		}
		st.Observe(pl.Slot, bits)
	}
	snap := st.Snapshot()
	if snap.Window.Frequency != 0 {
		t.Errorf("window F̂ = %v over the clean tail, want 0", snap.Window.Frequency)
	}
	if snap.Total.Frequency < 0.05 {
		t.Errorf("total F̂ = %v, want the lossy half to dominate", snap.Total.Frequency)
	}
	if snap.Window.M >= snap.Total.M {
		t.Errorf("window M %d not below total M %d", snap.Window.M, snap.Total.M)
	}
}

// TestStreamOutOfOrderOldOutcome: outcomes older than the window count in
// the total but not the window.
func TestStreamOutOfOrderOldOutcome(t *testing.T) {
	st, err := NewStream(StreamConfig{WindowSlots: 100, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	st.Observe(10_000, []bool{false, false})
	st.Observe(3, []bool{true, true}) // far behind the window
	snap := st.Snapshot()
	if snap.Total.M != 2 {
		t.Errorf("total M = %d, want 2", snap.Total.M)
	}
	if snap.Window.M != 1 || snap.Window.Frequency != 0 {
		t.Errorf("window M = %d F̂ = %v, want the stale outcome dropped",
			snap.Window.M, snap.Window.Frequency)
	}
	if snap.LastSlot != 10_000 {
		t.Errorf("LastSlot = %d, want 10000", snap.LastSlot)
	}
}

// TestStreamNoWindowMirrorsTotal: windowing disabled means the window view
// is the total view.
func TestStreamNoWindowMirrorsTotal(t *testing.T) {
	st, err := NewStream(StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st.Observe(0, []bool{true, false})
	st.Observe(5, []bool{false, true, false})
	snap := st.Snapshot()
	if snap.Total != snap.Window {
		t.Errorf("window %+v != total %+v", snap.Window, snap.Total)
	}
	if snap.Total.M != 2 {
		t.Errorf("M = %d, want 2", snap.Total.M)
	}
}

// TestStreamEmptySnapshot: snapshotting an empty stream is defined.
func TestStreamEmptySnapshot(t *testing.T) {
	st, err := NewStream(StreamConfig{WindowSlots: 50})
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.Total.M != 0 || snap.Window.M != 0 || snap.LastSlot != -1 {
		t.Errorf("empty snapshot %+v", snap)
	}
}

func TestStreamConfigValidation(t *testing.T) {
	for _, cfg := range []StreamConfig{
		{WindowSlots: -1},
		{Buckets: -2},
		{Slot: -1},
	} {
		if _, err := NewStream(cfg); err == nil {
			t.Errorf("NewStream(%+v) accepted", cfg)
		}
	}
}

// TestStreamExtendedPairs: the §5.5 modification applies to both views.
func TestStreamExtendedPairs(t *testing.T) {
	st, err := NewStream(StreamConfig{WindowSlots: 100, ExtendedPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	st.Observe(0, []bool{false, true, true})
	snap := st.Snapshot()
	acc := &Accumulator{ExtendedPairs: true}
	acc.AddExtended(false, true, true)
	want := EstimatesOf(acc)
	if snap.Total != want || snap.Window != want {
		t.Errorf("pairs: total %+v window %+v want %+v", snap.Total, snap.Window, want)
	}
}
