package badabing

import (
	"math"
	"sort"
	"time"
)

// RecommendedMarker returns the §6.2 parameter choices for a given probe
// probability p and slot width: τ is the expected time between probes plus
// one standard deviation (probe gaps are geometric with mean 1/p and
// standard deviation sqrt(1−p)/p slots), and α follows the paper's table:
// 0.2 for p ≤ 0.1, 0.1 for p ≤ 0.5, 0.5 above.
func RecommendedMarker(p float64, slot time.Duration) MarkerConfig {
	if slot == 0 {
		slot = DefaultSlot
	}
	mean := 1 / p
	sd := math.Sqrt(1-p) / p
	cfg := MarkerConfig{Tau: time.Duration((mean + sd) * float64(slot))}
	switch {
	case p <= 0.1:
		cfg.Alpha = 0.2
	case p <= 0.5:
		cfg.Alpha = 0.1
	default:
		cfg.Alpha = 0.5
	}
	return cfg
}

// ProbeObs is the raw observation for one probe (a bunch of 1..N tightly
// spaced packets sent in one slot), as assembled by a receiver.
type ProbeObs struct {
	// Slot is the slot index the probe was sent in.
	Slot int64
	// SentPackets and LostPackets count the probe's packets.
	SentPackets, LostPackets int
	// OWD is the maximum one-way delay among the probe's received
	// packets. For fully lost probes it is the delay of the most
	// recent previously received packet, supplied by the assembler;
	// zero means unknown.
	OWD time.Duration
	// T is the probe's send time.
	T time.Duration
}

// Lost reports whether any packet of the probe was lost.
func (o ProbeObs) Lost() bool { return o.LostPackets > 0 }

// MarkerConfig holds the §6.1 congestion-marking parameters.
type MarkerConfig struct {
	// Alpha is the queue high-water fraction: a probe whose one-way
	// queueing delay exceeds (1−Alpha)×OWDmax counts as congested if
	// it is also near a loss in time. The paper explores 0.025–0.2.
	Alpha float64
	// Tau is the time window around an observed packet loss within
	// which high-delay probes are marked congested. The paper's rule
	// of thumb: expected time between probes plus one standard
	// deviation.
	Tau time.Duration
	// MaxEstimates bounds the OWDmax running-estimate window; the mean
	// of the last MaxEstimates loss-time delays is the OWDmax
	// reference, which filters spurious end-host losses. Default 16.
	MaxEstimates int
}

func (c *MarkerConfig) applyDefaults() {
	if c.MaxEstimates == 0 {
		c.MaxEstimates = 16
	}
}

// Mark classifies each probe as congested or not, per §6.1:
//
//   - a probe that lost any packet is congested;
//   - a probe within Tau of a loss indication whose relative one-way
//     delay exceeds (1−Alpha)×OWDmax is congested;
//   - everything else is not congested.
//
// Delays are made relative by subtracting the minimum observed OWD
// (removing propagation and clock offset, which is legitimate as long as
// skew is negligible over the run — see §7). OWDmax is the mean of the
// delays observed at loss times, a FIFO-consistent estimate of the full
// queue's depth.
//
// Mark operates on the complete observation set because probes *preceding*
// a loss by less than Tau also qualify. Observations need not be sorted.
func Mark(obs []ProbeObs, cfg MarkerConfig) []bool {
	cfg.applyDefaults()
	out := make([]bool, len(obs))
	if len(obs) == 0 {
		return out
	}

	// Baseline: minimum OWD across probes with a known delay.
	var minOWD time.Duration
	first := true
	for _, o := range obs {
		if o.OWD == 0 {
			continue
		}
		if first || o.OWD < minOWD {
			minOWD = o.OWD
			first = false
		}
	}

	// Loss times, sorted, and the OWDmax estimate from delays at loss.
	var lossTimes []time.Duration
	var est []time.Duration
	idx := make([]int, 0, len(obs))
	for i := range obs {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return obs[idx[a]].T < obs[idx[b]].T })
	for _, i := range idx {
		o := obs[i]
		if o.Lost() {
			lossTimes = append(lossTimes, o.T)
			if o.OWD > 0 {
				est = append(est, o.OWD-minOWD)
				if len(est) > cfg.MaxEstimates {
					est = est[1:]
				}
			}
		}
	}
	var owdMax time.Duration
	if len(est) > 0 {
		var sum time.Duration
		for _, e := range est {
			sum += e
		}
		owdMax = sum / time.Duration(len(est))
	}
	threshold := time.Duration((1 - cfg.Alpha) * float64(owdMax))

	for i, o := range obs {
		if o.Lost() {
			out[i] = true
			continue
		}
		if owdMax == 0 || o.OWD == 0 {
			continue
		}
		if o.OWD-minOWD < threshold {
			continue
		}
		out[i] = nearWithin(lossTimes, o.T, cfg.Tau)
	}
	return out
}

// nearWithin reports whether sorted ts contains a value within d of t.
func nearWithin(ts []time.Duration, t, d time.Duration) bool {
	if len(ts) == 0 {
		return false
	}
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= t })
	if i < len(ts) && ts[i]-t <= d {
		return true
	}
	if i > 0 && t-ts[i-1] <= d {
		return true
	}
	return false
}

// OutcomeSink consumes experiment outcomes; Accumulator, Recorder and
// Monitor all implement it.
type OutcomeSink interface {
	Add(bits []bool)
}

// Assemble groups per-probe congestion bits into experiment outcomes and
// feeds them to sink. plans is the experiment schedule; marked maps slot
// index to the congestion bit of the probe sent in that slot (from Mark).
// Experiments any of whose probes are missing from marked are skipped and
// counted in the returned number.
func Assemble(sink OutcomeSink, plans []Plan, marked map[int64]bool) (skipped int) {
	for _, pl := range plans {
		bits := make([]bool, 0, pl.Probes)
		ok := true
		for j := 0; j < pl.Probes; j++ {
			b, present := marked[pl.Slot+int64(j)]
			if !present {
				ok = false
				break
			}
			bits = append(bits, b)
		}
		if !ok {
			skipped++
			continue
		}
		sink.Add(bits)
	}
	return skipped
}
