package badabing

import (
	"fmt"
	"time"
)

// Adaptive probing (§8's "adding adaptivity to our probe process model in
// a limited sense"): measurement proceeds in rounds, starting at a gentle
// probe rate. After each round the §5.4 validation and the §7 reliability
// bound are consulted; if the estimates have converged the measurement
// stops, and if boundary evidence is accumulating too slowly the per-slot
// probability escalates. The trade-off between timeliness and impact
// (§7) is thus navigated automatically: quiet paths are probed lightly
// for longer, lossy paths briefly at higher rate.

// AdaptiveConfig parameterizes the controller.
type AdaptiveConfig struct {
	// PMin is the starting probe probability. Default 0.1.
	PMin float64
	// PMax caps escalation. Default 0.9.
	PMax float64
	// Escalation multiplies p on a slow round. Default 2.
	Escalation float64
	// RoundSlots is the round length in slots. Default 6000 (30 s at
	// the default slot width).
	RoundSlots int64
	// MinBoundaryGain is the number of new boundary observations
	// (01/10 outcomes) per round below which the round counts as slow.
	// Default 10.
	MinBoundaryGain int
	// Monitor carries the convergence criteria.
	Monitor MonitorConfig
	// MaxRounds bounds the whole measurement. Default 40.
	MaxRounds int
}

func (c *AdaptiveConfig) applyDefaults() {
	if c.PMin == 0 {
		c.PMin = 0.1
	}
	if c.PMax == 0 {
		c.PMax = 0.9
	}
	if c.Escalation == 0 {
		c.Escalation = 2
	}
	if c.RoundSlots == 0 {
		c.RoundSlots = 6000
	}
	if c.MinBoundaryGain == 0 {
		c.MinBoundaryGain = 10
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 40
	}
}

// Adaptive is the round-based controller. Use NextRound to obtain each
// round's schedule, feed the outcomes through Add, then call EndRound;
// repeat until Done.
type Adaptive struct {
	cfg AdaptiveConfig
	mon *Monitor

	p         float64
	round     int
	lastS     int
	converged bool
	seed      int64
}

// NewAdaptive creates a controller.
func NewAdaptive(cfg AdaptiveConfig) *Adaptive {
	cfg.applyDefaults()
	if cfg.PMin <= 0 || cfg.PMax > 1 || cfg.PMin > cfg.PMax {
		panic(fmt.Sprintf("badabing: invalid adaptive p range [%v, %v]", cfg.PMin, cfg.PMax))
	}
	return &Adaptive{
		cfg: cfg,
		mon: NewMonitor(cfg.Monitor),
		p:   cfg.PMin,
	}
}

// P returns the current probe probability.
func (a *Adaptive) P() float64 { return a.p }

// RoundSlots returns the configured round length after defaulting, so
// round drivers size their sessions from the controller rather than
// re-implementing the defaulting rule.
func (a *Adaptive) RoundSlots() int64 { return a.cfg.RoundSlots }

// Round returns how many rounds have completed.
func (a *Adaptive) Round() int { return a.round }

// Done reports whether measurement should stop: either the estimates
// converged or the round budget ran out.
func (a *Adaptive) Done() bool {
	return a.converged || a.round >= a.cfg.MaxRounds
}

// Converged reports whether Done is due to convergence rather than the
// round budget.
func (a *Adaptive) Converged() bool { return a.converged }

// NextRound returns the schedule for the next round, as slot offsets
// relative to the round's start (the caller owns absolute placement), and
// the probability it was drawn at.
func (a *Adaptive) NextRound(seed int64) ([]Plan, float64) {
	a.seed = seed
	plans := MustSchedule(ScheduleConfig{
		P:        a.p,
		N:        a.cfg.RoundSlots,
		Improved: true,
		Seed:     seed,
	})
	return plans, a.p
}

// Add records one experiment outcome from the current round.
func (a *Adaptive) Add(bits []bool) { a.mon.Add(bits) }

// EndRound evaluates the stopping and escalation rules after a round's
// outcomes have been added.
func (a *Adaptive) EndRound() {
	a.round++
	if a.mon.Converged() {
		a.converged = true
		return
	}
	_, s := a.mon.Acc.RS()
	gain := s - a.lastS
	a.lastS = s
	if gain < a.cfg.MinBoundaryGain && a.p < a.cfg.PMax {
		a.p *= a.cfg.Escalation
		if a.p > a.cfg.PMax {
			a.p = a.cfg.PMax
		}
	}
}

// RunRounds drives the controller to completion over an abstract round
// executor: each iteration draws the next round's schedule at
// seed+round, hands it to exec together with the probability it was
// drawn at, and merges the returned outcome counts through the
// stopping/escalation rules. It is the one round loop shared by every
// substrate — the wire sender executes a round as a UDP session and
// queries the collector's control channel for the counts; the lab
// executes it on the simulated testbed. exec's error aborts the
// measurement with rounds already merged still counted.
func (a *Adaptive) RunRounds(seed int64, exec func(round int, plans []Plan, p float64) (Counts, error)) error {
	for !a.Done() {
		plans, p := a.NextRound(seed + int64(a.round))
		counts, err := exec(a.round, plans, p)
		if err != nil {
			return err
		}
		a.MergeRound(counts)
	}
	return nil
}

// Report returns the current estimates.
func (a *Adaptive) Report() Report { return a.mon.Report() }

// Elapsed returns the virtual measurement time after the completed
// rounds, at the given slot width.
func (a *Adaptive) Elapsed(slot time.Duration) time.Duration {
	if slot == 0 {
		slot = DefaultSlot
	}
	return time.Duration(a.round) * time.Duration(a.cfg.RoundSlots) * slot
}
