package badabing

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestCountsRoundTrip(t *testing.T) {
	a := &Accumulator{}
	a.AddBasic(false, true)
	a.AddBasic(true, true)
	a.AddExtended(false, true, true)
	a.AddExtended(true, false, true)

	b := &Accumulator{}
	b.Merge(a.Counts())
	if !reflect.DeepEqual(a.Counts(), b.Counts()) {
		t.Fatalf("merge did not reproduce counts:\n%+v\n%+v", a.Counts(), b.Counts())
	}
	if b.Frequency() != a.Frequency() {
		t.Fatal("frequency diverged after merge")
	}
	r1, s1 := a.RS()
	r2, s2 := b.RS()
	if r1 != r2 || s1 != s2 {
		t.Fatal("RS diverged after merge")
	}
	v1, v2 := a.Validate(), b.Validate()
	if v1 != v2 {
		t.Fatalf("validation diverged: %+v vs %+v", v1, v2)
	}
}

func TestCountsMergeEquivalentToStreaming(t *testing.T) {
	// Splitting an outcome stream into chunks and merging their counts
	// must equal accumulating the whole stream.
	rng := rand.New(rand.NewSource(81))
	whole := &Accumulator{}
	merged := &Accumulator{}
	chunk := &Accumulator{}
	for i := 0; i < 5000; i++ {
		bits := make([]bool, 2+rng.Intn(2))
		for j := range bits {
			bits[j] = rng.Intn(4) == 0
		}
		whole.Add(bits)
		chunk.Add(bits)
		if i%500 == 499 {
			merged.Merge(chunk.Counts())
			chunk = &Accumulator{}
		}
	}
	merged.Merge(chunk.Counts())
	if !reflect.DeepEqual(whole.Counts(), merged.Counts()) {
		t.Fatal("chunked merge diverged from streaming")
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{M: 1, Z: 1, C2: [4]int{1, 0, 0, 0}}
	b := Counts{M: 2, Z: 0, C2: [4]int{0, 1, 1, 0}, C3: [8]int{7: 3}}
	sum := a.Add(b)
	if sum.M != 3 || sum.Z != 1 || sum.C2 != [4]int{1, 1, 1, 0} || sum.C3[7] != 3 {
		t.Fatalf("sum = %+v", sum)
	}
}

func TestAdaptiveMergeRound(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{
		MaxRounds: 3,
		Monitor:   MonitorConfig{MinExperiments: 10},
	})
	// A remote round with rich boundary evidence.
	remote := &Accumulator{}
	for i := 0; i < 20; i++ {
		remote.AddBasic(true, false)
		remote.AddBasic(false, true)
	}
	a.MergeRound(remote.Counts())
	if !a.Converged() {
		t.Fatalf("did not converge on merged evidence: %+v", a.Report().Validation)
	}
	if got := a.Report().M; got != 40 {
		t.Fatalf("merged M = %d, want 40", got)
	}
}
