package badabing

import "time"

// MonitorConfig controls open-ended, self-validating measurement (§7's
// "alternate design ... take measurements continuously, and report when
// our validation techniques confirm that the estimation is robust").
type MonitorConfig struct {
	// Slot width; defaults to DefaultSlot.
	Slot time.Duration
	// Criteria accepted for stopping.
	Criteria Criteria
	// MinExperiments before stopping is considered. Default 1000.
	MinExperiments int
	// MaxDurationStdDev additionally requires the §7 reliability bound
	// (in seconds) to fall below this before stopping; zero disables.
	MaxDurationStdDev float64
}

func (c *MonitorConfig) applyDefaults() {
	if c.Slot == 0 {
		c.Slot = DefaultSlot
	}
	if c.MinExperiments == 0 {
		c.MinExperiments = 1000
	}
}

// Monitor wraps an Accumulator with a stopping rule.
type Monitor struct {
	Acc Accumulator
	cfg MonitorConfig
}

// NewMonitor returns a Monitor with the given config.
func NewMonitor(cfg MonitorConfig) *Monitor {
	cfg.applyDefaults()
	m := &Monitor{cfg: cfg}
	m.Acc.Slot = cfg.Slot
	return m
}

// Add records an experiment outcome.
func (m *Monitor) Add(bits []bool) { m.Acc.Add(bits) }

// Converged reports whether enough validated evidence has accumulated for
// the estimates to be trustworthy.
func (m *Monitor) Converged() bool {
	if m.Acc.M() < m.cfg.MinExperiments {
		return false
	}
	if !m.Acc.Validate().Passes(m.cfg.Criteria) {
		return false
	}
	if m.cfg.MaxDurationStdDev > 0 {
		sd, ok := m.Acc.DurationStdDev()
		if !ok {
			return false
		}
		if sd*m.cfg.Slot.Seconds() > m.cfg.MaxDurationStdDev {
			return false
		}
	}
	return true
}

// Report returns the current estimates.
func (m *Monitor) Report() Report { return m.Acc.MakeReport() }
