package badabing

// Counts is the transferable state of an Accumulator: every outcome
// tally, with no derived quantities. It exists so that measurement state
// can be merged across rounds or shipped between hosts (the collector
// answers control-channel queries with Counts, and an adaptive sender
// merges them into its own Accumulator to drive escalation decisions).
type Counts struct {
	M int `json:"m"`
	Z int `json:"z"`
	// Two-digit outcome counts, indexed 00, 01, 10, 11.
	C2 [4]int `json:"c2"`
	// Three-digit outcome counts, indexed by the bits b0b1b2 (0..7).
	C3 [8]int `json:"c3"`
}

// Counts snapshots the accumulator's tallies.
func (a *Accumulator) Counts() Counts {
	c := Counts{
		M:  a.m,
		Z:  a.z,
		C2: [4]int{a.c00, a.c01, a.c10, a.c11},
	}
	for k, v := range a.c3 {
		c.C3[k] = v
	}
	return c
}

// Merge adds another accumulator's counts into a. Slot width and
// ExtendedPairs settings are the receiver's own; merging counts produced
// under a different slot width is a caller error.
func (a *Accumulator) Merge(c Counts) {
	a.m += c.M
	a.z += c.Z
	a.c00 += c.C2[0]
	a.c01 += c.C2[1]
	a.c10 += c.C2[2]
	a.c11 += c.C2[3]
	for k, v := range c.C3 {
		if v == 0 {
			continue
		}
		if a.c3 == nil {
			a.c3 = make(map[uint8]int)
		}
		a.c3[uint8(k)] += v
	}
}

// Add returns the element-wise sum of two Counts.
func (c Counts) Add(o Counts) Counts {
	out := c
	out.M += o.M
	out.Z += o.Z
	for i := range out.C2 {
		out.C2[i] += o.C2[i]
	}
	for i := range out.C3 {
		out.C3[i] += o.C3[i]
	}
	return out
}

// MergeRound feeds a remote round's counts into the adaptive controller
// and applies the end-of-round stopping/escalation rules — the
// control-channel twin of Add+EndRound.
func (a *Adaptive) MergeRound(c Counts) {
	a.mon.Acc.Merge(c)
	a.EndRound()
}
