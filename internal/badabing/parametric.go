package badabing

// Parametric duration estimation (§8's "alternative, parametric methods
// for inferring loss characteristics from our probe process").
//
// Model: episode lengths are geometric — at every congested slot the
// episode continues with probability g, so the mean duration is
// D = 1/(1−g) slots. Extended experiments observe this directly: among
// outcomes whose first two digits are 01 (an episode starting at the
// middle slot), the third digit is 1 with probability g. Symmetrically,
// among outcomes ending in 10 (an episode that was alive at the middle
// slot and ended), the *first* digit tells whether it had already lasted
// more than one slot.
//
// Under the detection model, a misdetected experiment reports all zeros,
// so conditioning on a nonzero prefix leaves the continuation bit
// unbiased when detection probabilities for the participating patterns
// agree (the basic algorithm's assumption). Unlike the nonparametric
// estimator, this one uses the 010 outcomes as signal — they are
// single-slot episodes, perfectly legal under the geometric model —
// which makes it the right tool exactly where the nonparametric
// validation rejects (episodes at or below the slot scale).

// GeometricContinuation returns the MLE ĝ of the per-slot episode
// continuation probability from extended experiments, and the number of
// Bernoulli observations it is based on. ok is false with no data.
func (a *Accumulator) GeometricContinuation() (g float64, n int, ok bool) {
	c011 := a.c3[key3(false, true, true)]
	c110 := a.c3[key3(true, true, false)]
	c010 := a.c3[key3(false, true, false)]
	// Forward view (01x: episode starts at the middle slot): 011 means
	// it continued (probability g), 010 means it ended after one slot.
	// Backward view (x10: episode ends at the middle slot): 110 means
	// it had lasted at least two slots (probability g, by the
	// time-reversibility of geometric lengths), 010 again means a
	// single-slot episode. A 010 outcome therefore counts once in each
	// direction, keeping the two views symmetric.
	cont := c011 + c110
	stop := 2 * c010
	n = cont + stop
	if n == 0 {
		return 0, 0, false
	}
	return float64(cont) / float64(n), n, true
}

// DurationSlotsGeometric returns the parametric duration estimate
// D̂ = 1/(1−ĝ) in slots. ok is false when no extended experiment observed
// an episode interior, or when ĝ = 1 (no episode end ever observed — the
// estimate would be unbounded).
func (a *Accumulator) DurationSlotsGeometric() (slots float64, ok bool) {
	g, _, ok := a.GeometricContinuation()
	if !ok || g >= 1 {
		return 0, false
	}
	return 1 / (1 - g), true
}
