package badabing

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property: the frequency estimator is always a valid proportion and the
// outcome counts partition the experiments.
func TestAccumulatorInvariantsProperty(t *testing.T) {
	f := func(outcomes []uint8) bool {
		acc := &Accumulator{}
		basic := 0
		for _, o := range outcomes {
			if o%2 == 0 {
				acc.AddBasic(o&4 != 0, o&2 != 0)
				basic++
			} else {
				acc.AddExtended(o&4 != 0, o&2 != 0, o&8 != 0)
			}
		}
		if acc.M() != len(outcomes) {
			return false
		}
		fr := acc.Frequency()
		if fr < 0 || fr > 1 {
			return false
		}
		r, s := acc.RS()
		if s > r || r < 0 {
			return false
		}
		if acc.c00+acc.c01+acc.c10+acc.c11 != basic {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the duration estimator, when defined, is at least
// 2(1-1)+1 = 1 slot when R == S and grows with R.
func TestDurationMonotoneInR(t *testing.T) {
	acc := &Accumulator{}
	acc.AddBasic(false, true)
	acc.AddBasic(true, false)
	d1, ok := acc.DurationSlots()
	if !ok || d1 != 1 {
		t.Fatalf("pure-boundary D̂ = %v (%v), want 1", d1, ok)
	}
	acc.AddBasic(true, true)
	d2, _ := acc.DurationSlots()
	if d2 <= d1 {
		t.Fatalf("adding 11 outcomes did not grow D̂: %v → %v", d1, d2)
	}
}

// Property: Schedule emits strictly increasing slots within bounds, and
// never lets an experiment overrun the horizon.
func TestScheduleInvariantsProperty(t *testing.T) {
	f := func(seed int64, pRaw uint16, improved bool) bool {
		p := (float64(pRaw%900) + 50) / 1000 // 0.05 .. 0.95
		const n = 5000
		plans := MustSchedule(ScheduleConfig{P: p, N: n, Improved: improved, Seed: seed})
		last := int64(-1)
		for _, pl := range plans {
			if pl.Slot <= last {
				return false
			}
			last = pl.Slot
			if pl.Probes != 2 && pl.Probes != 3 {
				return false
			}
			if !improved && pl.Probes != 2 {
				return false
			}
			if pl.Slot < 0 || pl.Slot+int64(pl.Probes) > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Mark returns one verdict per observation and every lossy
// probe is congested, regardless of parameters.
func TestMarkInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(nRaw uint8, alphaRaw uint8, tauMs uint8) bool {
		n := int(nRaw%50) + 1
		obs := make([]ProbeObs, n)
		for i := range obs {
			obs[i] = ProbeObs{
				Slot:        int64(i),
				SentPackets: 3,
				LostPackets: rng.Intn(4),
				OWD:         time.Duration(rng.Intn(200)) * time.Millisecond,
				T:           time.Duration(i*10) * time.Millisecond,
			}
		}
		cfg := MarkerConfig{
			Alpha: float64(alphaRaw%50) / 100,
			Tau:   time.Duration(tauMs) * time.Millisecond,
		}
		out := Mark(obs, cfg)
		if len(out) != n {
			return false
		}
		for i, o := range obs {
			if o.Lost() && !out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKey3Bijective(t *testing.T) {
	seen := map[uint8]bool{}
	for _, b0 := range []bool{false, true} {
		for _, b1 := range []bool{false, true} {
			for _, b2 := range []bool{false, true} {
				k := key3(b0, b1, b2)
				if k > 7 || seen[k] {
					t.Fatalf("key3(%v,%v,%v) = %d not unique in [0,7]", b0, b1, b2, k)
				}
				seen[k] = true
			}
		}
	}
}

func TestAddPanicsOnBadArity(t *testing.T) {
	acc := &Accumulator{}
	defer func() {
		if recover() == nil {
			t.Fatal("4-bit outcome accepted")
		}
	}()
	acc.Add([]bool{true, false, true, false})
}

func TestRecommendedMarkerShape(t *testing.T) {
	slot := DefaultSlot
	low := RecommendedMarker(0.1, slot)
	mid := RecommendedMarker(0.3, slot)
	high := RecommendedMarker(0.9, slot)
	// τ shrinks as p grows (probes arrive more often).
	if !(low.Tau > mid.Tau && mid.Tau > high.Tau) {
		t.Errorf("tau not decreasing in p: %v %v %v", low.Tau, mid.Tau, high.Tau)
	}
	if low.Alpha != 0.2 || mid.Alpha != 0.1 || high.Alpha != 0.5 {
		t.Errorf("alpha table mismatch: %v %v %v", low.Alpha, mid.Alpha, high.Alpha)
	}
	// Paper §6.2: τ ≈ expected gap plus one σ; for p=0.1 that is
	// 5ms × (10 + 9.49) ≈ 97ms.
	if low.Tau < 90*time.Millisecond || low.Tau > 105*time.Millisecond {
		t.Errorf("tau(p=0.1) = %v, want ≈97ms", low.Tau)
	}
	// Zero slot falls back to the default width.
	if def := RecommendedMarker(0.3, 0); def.Tau != mid.Tau {
		t.Errorf("zero-slot tau %v != default-slot tau %v", def.Tau, mid.Tau)
	}
}

func TestValidationPassesCriteriaEdges(t *testing.T) {
	v := Validation{C01: 15, C10: 15}
	if !v.Passes(Criteria{MinBoundarySamples: 30}) {
		t.Error("exactly-at-threshold samples rejected")
	}
	if v.Passes(Criteria{MinBoundarySamples: 31}) {
		t.Error("below-threshold samples accepted")
	}
	v = Validation{C01: 30, C10: 10, BoundaryAsymmetry: 0.5}
	if v.Passes(Criteria{}) {
		t.Error("asymmetric boundaries accepted")
	}
	v = Validation{C01: 20, C10: 20, ViolationRate: 0.5}
	if v.Passes(Criteria{}) {
		t.Error("high violation rate accepted")
	}
}

func TestMonitorStdDevGate(t *testing.T) {
	m := NewMonitor(MonitorConfig{MinExperiments: 1, MaxDurationStdDev: 0.001})
	// Enough boundaries to pass validation (S = 20), but
	// σ = sqrt(2/S)·slot ≈ 1.6 ms is still above the 1 ms gate.
	for i := 0; i < 10; i++ {
		m.Add([]bool{true, false})
		m.Add([]bool{false, true})
	}
	if m.Converged() {
		t.Fatal("converged with σ above the gate")
	}
	for i := 0; i < 25000; i++ {
		m.Add([]bool{true, false})
		m.Add([]bool{false, true})
	}
	if !m.Converged() {
		sd, _ := m.Acc.DurationStdDev()
		t.Fatalf("did not converge with S huge (σ=%v slots)", sd)
	}
}
