// Package badabing implements the paper's primary contribution (§5–§6 of
// "Improving Accuracy in End-to-end Packet Loss Measurement", SIGCOMM
// 2005): a discrete-time probe process and estimators for loss-episode
// frequency and mean loss-episode duration, together with the validation
// tests that make the tool self-calibrating.
//
// Time is discretized into slots of width Delta (the paper uses 5 ms). At
// each slot, independently with probability p, a *basic experiment* starts:
// probes are sent in slots i and i+1, and each reports one bit — whether it
// observed congestion. The improved design flips a fair coin to instead run
// an *extended experiment* of three probes at slots i, i+1, i+2, which
// allows estimating the ratio r = p2/p1 of detection probabilities and
// correcting the duration estimator's bias.
//
// The package is transport-agnostic: both the simulator prober
// (internal/probe) and the real UDP tool (internal/wire) feed observations
// through Marker and Accumulator.
package badabing

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// DefaultSlot is the paper's discretization interval.
const DefaultSlot = 5 * time.Millisecond

// Kind distinguishes experiment shapes.
type Kind uint8

// Experiment kinds.
const (
	Basic    Kind = iota // two probes, slots i and i+1
	Extended             // three probes, slots i..i+2
)

// Plan is one scheduled experiment.
type Plan struct {
	Slot   int64 // first slot index
	Probes int   // 2 for basic, 3 for extended
}

// ScheduleConfig controls experiment generation.
type ScheduleConfig struct {
	// P is the per-slot probability of starting an experiment.
	P float64
	// N is the number of slots in the full experiment.
	N int64
	// Improved selects the improved design: each experiment is
	// extended with probability ExtendedFraction.
	Improved bool
	// ExtendedFraction is the probability that an improved-design
	// experiment uses three probes instead of two. nil selects the
	// paper's 1/2; §5.5 notes the weighting may be varied — basic
	// experiments cost less probe load, while extended ones feed the
	// r̂ correction (and, with Accumulator.ExtendedPairs, the duration
	// estimate itself). An explicit &0.0 disables extended experiments
	// entirely (use Fraction to build the pointer).
	ExtendedFraction *float64
	// Seed for the schedule RNG.
	Seed int64
}

// Fraction returns a pointer to f, for setting
// ScheduleConfig.ExtendedFraction in a composite literal.
func Fraction(f float64) *float64 { return &f }

// Validate checks the configuration without drawing a schedule. NaN
// probabilities are rejected by the same comparisons as out-of-range ones.
func (cfg ScheduleConfig) Validate() error {
	if !(cfg.P > 0 && cfg.P <= 1) {
		return fmt.Errorf("badabing: probe probability %v out of (0,1]", cfg.P)
	}
	if cfg.N <= 0 {
		return fmt.Errorf("badabing: slot count %d must be positive", cfg.N)
	}
	if f := cfg.ExtendedFraction; f != nil && !(*f >= 0 && *f <= 1) {
		return fmt.Errorf("badabing: extended fraction %v out of [0,1]", *f)
	}
	return nil
}

// Schedule draws the experiment start slots. Experiments whose probes
// would overlap a previous experiment's slots are kept — the process is
// defined per-slot independent — but ones extending past N are truncated
// away. An invalid configuration returns an error (never a panic), so
// services can reject bad requests without crashing.
func Schedule(cfg ScheduleConfig) ([]Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	extFrac := 0.5
	if cfg.ExtendedFraction != nil {
		extFrac = *cfg.ExtendedFraction
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var plans []Plan
	for i := int64(0); i < cfg.N; i++ {
		if rng.Float64() >= cfg.P {
			continue
		}
		n := 2
		if cfg.Improved && rng.Float64() < extFrac {
			n = 3
		}
		if i+int64(n) > cfg.N {
			break
		}
		plans = append(plans, Plan{Slot: i, Probes: n})
	}
	return plans, nil
}

// MustSchedule is Schedule for statically known-good configurations; it
// panics on an invalid one. Anything handling untrusted configuration
// (network headers, API requests) must use Schedule and propagate the
// error instead.
func MustSchedule(cfg ScheduleConfig) []Plan {
	plans, err := Schedule(cfg)
	if err != nil {
		panic(err)
	}
	return plans
}

// Accumulator tallies experiment outcomes yi and computes the paper's
// estimators. The zero value (plus a Slot width) is ready for use.
type Accumulator struct {
	// Slot is the discretization width used to convert the duration
	// estimate from slots to time. Defaults to DefaultSlot when zero.
	Slot time.Duration

	// ExtendedPairs enables the §5.5 modification: each extended
	// (three-probe) experiment also contributes its two overlapping
	// slot pairs to the R/S counts used by the duration estimators,
	// "thereby decreasing the total number of probes that are required
	// in order to achieve the same level of confidence". The extra
	// pairs shrink variance; under the basic algorithm's p1 = p2
	// assumption they are unbiased samples of the same pair process
	// (with p1 ≠ p2 they inherit the triple's detection probability,
	// a second-order effect the validation checks would surface).
	ExtendedPairs bool

	m int // experiments observed
	z int // sum of first digits (for F̂)

	// Two-digit outcome counts.
	c00, c01, c10, c11 int
	// Three-digit outcome counts.
	c3 map[uint8]int // key: bits b0b1b2 packed little-significance-last
}

// key packs up to three bits: b0<<2 | b1<<1 | b2.
func key3(b0, b1, b2 bool) uint8 {
	var k uint8
	if b0 {
		k |= 4
	}
	if b1 {
		k |= 2
	}
	if b2 {
		k |= 1
	}
	return k
}

// AddBasic records a basic experiment outcome: the congestion bits of the
// probes at slots i and i+1.
func (a *Accumulator) AddBasic(b0, b1 bool) {
	a.m++
	if b0 {
		a.z++
	}
	switch {
	case !b0 && !b1:
		a.c00++
	case !b0 && b1:
		a.c01++
	case b0 && !b1:
		a.c10++
	default:
		a.c11++
	}
}

// AddExtended records an extended experiment outcome (slots i, i+1, i+2).
func (a *Accumulator) AddExtended(b0, b1, b2 bool) {
	a.m++
	if b0 {
		a.z++
	}
	if a.c3 == nil {
		a.c3 = make(map[uint8]int)
	}
	a.c3[key3(b0, b1, b2)]++
	if a.ExtendedPairs {
		a.addPair(b0, b1)
		a.addPair(b1, b2)
	}
}

// addPair tallies a slot pair into the two-digit counts without counting
// a new experiment (used by the §5.5 ExtendedPairs modification).
func (a *Accumulator) addPair(b0, b1 bool) {
	switch {
	case !b0 && !b1:
		a.c00++
	case !b0 && b1:
		a.c01++
	case b0 && !b1:
		a.c10++
	default:
		a.c11++
	}
}

// Add records an outcome of either shape.
func (a *Accumulator) Add(bits []bool) {
	switch len(bits) {
	case 2:
		a.AddBasic(bits[0], bits[1])
	case 3:
		a.AddExtended(bits[0], bits[1], bits[2])
	default:
		panic(fmt.Sprintf("badabing: experiment with %d probes", len(bits)))
	}
}

// M returns the number of experiments recorded.
func (a *Accumulator) M() int { return a.m }

// slotWidth returns the effective slot duration.
func (a *Accumulator) slotWidth() time.Duration {
	if a.Slot == 0 {
		return DefaultSlot
	}
	return a.Slot
}

// Frequency returns the unbiased estimator F̂ = Σ zi / M of the fraction
// of congested slots. It returns 0 for an empty accumulator.
func (a *Accumulator) Frequency() float64 {
	if a.m == 0 {
		return 0
	}
	return float64(a.z) / float64(a.m)
}

// RS returns the basic-design counts R = #{yi ∈ {01,10,11}} and
// S = #{yi ∈ {01,10}}.
func (a *Accumulator) RS() (r, s int) {
	return a.c01 + a.c10 + a.c11, a.c01 + a.c10
}

// UV returns the improved-design counts U = #{yi ∈ {011,110}} and
// V = #{yi ∈ {001,100}}.
func (a *Accumulator) UV() (u, v int) {
	u = a.c3[key3(false, true, true)] + a.c3[key3(true, true, false)]
	v = a.c3[key3(false, false, true)] + a.c3[key3(true, false, false)]
	return u, v
}

// DurationSlots returns the basic-algorithm duration estimate
// D̂ = 2(R/S − 1) + 1 in slots. ok is false when S = 0 (no episode
// boundary was ever observed, so no estimate exists).
func (a *Accumulator) DurationSlots() (slots float64, ok bool) {
	r, s := a.RS()
	if s == 0 {
		return 0, false
	}
	return 2*(float64(r)/float64(s)-1) + 1, true
}

// Duration returns the basic-algorithm estimate as a time.Duration.
func (a *Accumulator) Duration() (time.Duration, bool) {
	slots, ok := a.DurationSlots()
	if !ok {
		return 0, false
	}
	return time.Duration(slots * float64(a.slotWidth())), true
}

// RHat estimates r = p2/p1 from extended experiments as U/V. ok is false
// when V = 0.
func (a *Accumulator) RHat() (r float64, ok bool) {
	u, v := a.UV()
	if v == 0 {
		return 0, false
	}
	return float64(u) / float64(v), true
}

// DurationSlotsImproved returns the improved-algorithm estimate
// D̂ = (2V/U)(R/S − 1) + 1 in slots, which remains consistent when
// p1 ≠ p2. ok is false when S = 0 or U = 0.
func (a *Accumulator) DurationSlotsImproved() (slots float64, ok bool) {
	r, s := a.RS()
	u, v := a.UV()
	if s == 0 || u == 0 {
		return 0, false
	}
	return (2*float64(v)/float64(u))*(float64(r)/float64(s)-1) + 1, true
}

// DurationImproved returns the improved estimate as a time.Duration.
func (a *Accumulator) DurationImproved() (time.Duration, bool) {
	slots, ok := a.DurationSlotsImproved()
	if !ok {
		return 0, false
	}
	return time.Duration(slots * float64(a.slotWidth())), true
}

// EpisodeRateHat estimates B̂, the number of loss episodes per slot,
// from S ≈ 2pB over N slots: B̂/N = S/(2pN). It feeds the §7 standard
// deviation approximation.
func (a *Accumulator) EpisodeRateHat(p float64, n int64) float64 {
	if p <= 0 || n <= 0 {
		return 0
	}
	_, s := a.RS()
	return float64(s) / (2 * p * float64(n))
}

// DurationStdDev returns the §7 reliability approximation
// StdDev(duration) ≈ 1/sqrt(pNL), with L estimated from the data.
// With L̂ = S/(2pN), this reduces to sqrt(2/S).
func (a *Accumulator) DurationStdDev() (float64, bool) {
	_, s := a.RS()
	if s == 0 {
		return 0, false
	}
	return math.Sqrt(2 / float64(s)), true
}
