package badabing

import (
	"math/rand"
	"sort"
)

// This file implements the paper's §8 future-work item: "estimate the
// variability of the estimates of congestion frequency and duration
// themselves directly from the measured data, under a minimal set of
// statistical assumptions on the congestion process."
//
// The approach is a moving-block bootstrap over the sequence of recorded
// experiment outcomes. Because outcomes close in time are dependent (they
// may sample the same congestion episode), experiments are resampled in
// contiguous blocks rather than singly, which preserves the short-range
// dependence structure without modelling it.

// outcome is a compact record of one experiment for resampling.
type outcome struct {
	bits uint8 // packed, key3-style; for basic experiments bit2 is unused
	ext  bool
}

// Recorder wraps an Accumulator and retains the outcome sequence so that
// confidence intervals can be bootstrapped afterwards. Use it in place of
// a bare Accumulator when interval estimates are wanted; memory cost is
// two bytes per experiment.
type Recorder struct {
	Acc Accumulator
	seq []outcome
}

// Add records an experiment outcome (2 or 3 bits, in slot order).
func (r *Recorder) Add(bits []bool) {
	r.Acc.Add(bits)
	var o outcome
	switch len(bits) {
	case 2:
		o.bits = key3(bits[0], bits[1], false)
	case 3:
		o.bits = key3(bits[0], bits[1], bits[2])
		o.ext = true
	}
	r.seq = append(r.seq, o)
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Level is the nominal coverage, e.g. 0.95.
	Level float64 `json:"level"`
}

// BootstrapConfig controls the resampling.
type BootstrapConfig struct {
	// Resamples: default 200.
	Resamples int
	// BlockLen is the moving-block length in experiments. Default 50 —
	// a few episode lengths at typical p, enough to keep within-episode
	// dependence inside blocks.
	BlockLen int
	// Level: default 0.95.
	Level float64
	// Seed for the resampling RNG.
	Seed int64
}

func (c *BootstrapConfig) applyDefaults() {
	if c.Resamples == 0 {
		c.Resamples = 200
	}
	if c.BlockLen == 0 {
		c.BlockLen = 50
	}
	if c.Level == 0 {
		c.Level = 0.95
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Bootstrap returns percentile confidence intervals for the frequency and
// (basic-algorithm) duration estimators. durOK is false when too few
// resamples produced a defined duration estimate for an interval to be
// meaningful.
func (r *Recorder) Bootstrap(cfg BootstrapConfig) (freq Interval, dur Interval, durOK bool) {
	cfg.applyDefaults()
	n := len(r.seq)
	if n == 0 {
		return Interval{Level: cfg.Level}, Interval{Level: cfg.Level}, false
	}
	block := cfg.BlockLen
	if block > n {
		block = n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	freqs := make([]float64, 0, cfg.Resamples)
	durs := make([]float64, 0, cfg.Resamples)
	for b := 0; b < cfg.Resamples; b++ {
		var acc Accumulator
		acc.Slot = r.Acc.Slot
		for filled := 0; filled < n; filled += block {
			start := rng.Intn(n - block + 1)
			for i := 0; i < block && filled+i < n; i++ {
				o := r.seq[start+i]
				if o.ext {
					acc.AddExtended(o.bits&4 != 0, o.bits&2 != 0, o.bits&1 != 0)
				} else {
					acc.AddBasic(o.bits&4 != 0, o.bits&2 != 0)
				}
			}
		}
		freqs = append(freqs, acc.Frequency())
		if d, ok := acc.Duration(); ok {
			durs = append(durs, d.Seconds())
		}
	}
	freq = percentileInterval(freqs, cfg.Level)
	if len(durs) >= cfg.Resamples/2 {
		dur = percentileInterval(durs, cfg.Level)
		durOK = true
	} else {
		dur = Interval{Level: cfg.Level}
	}
	return freq, dur, durOK
}

func percentileInterval(xs []float64, level float64) Interval {
	sort.Float64s(xs)
	alpha := (1 - level) / 2
	lo := int(alpha*float64(len(xs)) + 0.5)
	hi := int((1-alpha)*float64(len(xs)) + 0.5)
	if hi >= len(xs) {
		hi = len(xs) - 1
	}
	return Interval{Lo: xs[lo], Hi: xs[hi], Level: level}
}
