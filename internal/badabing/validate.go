package badabing

import "math"

// Validation is the outcome of the paper's §5.4 checks: simple tests,
// requiring no extra experimentation, for the statistical assumptions
// underlying the estimators. They make the tool self-calibrating — able to
// report when its own estimates should not be trusted.
type Validation struct {
	// C01 and C10 are the basic-design boundary counts. The design
	// assumes P(yi=01) = P(yi=10); a persistent imbalance not bridged
	// by more experiments invalidates the estimates.
	C01, C10 int
	// BoundaryAsymmetry is |C01−C10| / (C01+C10), in [0,1].
	BoundaryAsymmetry float64
	// SingleCounts are the improved-design rates that should agree:
	// counts of 01, 10, 001, 100.
	SingleCounts [4]int
	// SingleSpread is (max−min)/mean over SingleCounts.
	SingleSpread float64
	// DoubleCounts are counts of 011 and 110, which should also agree.
	DoubleCounts [2]int
	// Violations counts yi ∈ {010, 101}, each occurrence of which
	// contradicts the model's assumptions outright.
	Violations int
	// ViolationRate is Violations divided by the number of extended
	// experiments that observed any congestion (all-zero outcomes
	// carry no evidence either way).
	ViolationRate float64
}

// Criteria are acceptance thresholds for Validation. The zero value is
// completed with pragmatic defaults.
type Criteria struct {
	// MaxBoundaryAsymmetry: default 0.2.
	MaxBoundaryAsymmetry float64
	// MinBoundarySamples requires C01+C10 ≥ this before the asymmetry
	// test is meaningful. Default 20.
	MinBoundarySamples int
	// MaxViolationRate: default 0.1.
	MaxViolationRate float64
}

func (c *Criteria) applyDefaults() {
	if c.MaxBoundaryAsymmetry == 0 {
		c.MaxBoundaryAsymmetry = 0.2
	}
	if c.MinBoundarySamples == 0 {
		c.MinBoundarySamples = 20
	}
	if c.MaxViolationRate == 0 {
		c.MaxViolationRate = 0.1
	}
}

// Validate computes the §5.4 checks over the accumulated outcomes.
func (a *Accumulator) Validate() Validation {
	v := Validation{C01: a.c01, C10: a.c10}
	if tot := a.c01 + a.c10; tot > 0 {
		v.BoundaryAsymmetry = math.Abs(float64(a.c01-a.c10)) / float64(tot)
	}
	v.SingleCounts = [4]int{
		a.c01,
		a.c10,
		a.c3[key3(false, false, true)],
		a.c3[key3(true, false, false)],
	}
	min, max, sum := v.SingleCounts[0], v.SingleCounts[0], 0
	for _, c := range v.SingleCounts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		sum += c
	}
	if sum > 0 {
		v.SingleSpread = float64(max-min) * 4 / float64(sum)
	}
	v.DoubleCounts = [2]int{
		a.c3[key3(false, true, true)],
		a.c3[key3(true, true, false)],
	}
	v.Violations = a.c3[key3(false, true, false)] + a.c3[key3(true, false, true)]
	nonZero := 0
	for k, c := range a.c3 {
		if k != 0 {
			nonZero += c
		}
	}
	if nonZero > 0 {
		v.ViolationRate = float64(v.Violations) / float64(nonZero)
	}
	return v
}

// Passes reports whether the validation satisfies the criteria. It is the
// stopping rule for open-ended experimentation (§5.4, §7): keep probing
// until Passes returns true, or give up and reject the estimates.
func (v Validation) Passes(c Criteria) bool {
	c.applyDefaults()
	if v.C01+v.C10 < c.MinBoundarySamples {
		return false
	}
	if v.BoundaryAsymmetry > c.MaxBoundaryAsymmetry {
		return false
	}
	if v.ViolationRate > c.MaxViolationRate {
		return false
	}
	return true
}

// Report bundles the estimates a measurement run produces, in the form
// the paper's tables present them.
type Report struct {
	// M is the number of experiments.
	M int
	// Frequency is F̂.
	Frequency float64
	// Duration is the best available duration estimate: improved when
	// extended experiments observed episode boundaries, basic
	// otherwise. HasDuration is false if neither estimator is defined.
	Duration    float64 // seconds
	HasDuration bool
	// DurationBasic and DurationImproved expose both estimators when
	// defined (seconds; NaN when undefined).
	DurationBasic    float64
	DurationImproved float64
	// StdDev is the §7 reliability approximation for the duration
	// estimate (seconds; NaN when undefined).
	StdDev float64
	// Validation carries the self-calibration checks.
	Validation Validation
}

// MakeReport summarizes the accumulator.
func (a *Accumulator) MakeReport() Report {
	rep := Report{
		M:                a.m,
		Frequency:        a.Frequency(),
		DurationBasic:    math.NaN(),
		DurationImproved: math.NaN(),
		StdDev:           math.NaN(),
		Validation:       a.Validate(),
	}
	if d, ok := a.Duration(); ok {
		rep.DurationBasic = d.Seconds()
		rep.Duration = d.Seconds()
		rep.HasDuration = true
	}
	if d, ok := a.DurationImproved(); ok {
		rep.DurationImproved = d.Seconds()
		rep.Duration = d.Seconds()
		rep.HasDuration = true
	}
	if sd, ok := a.DurationStdDev(); ok {
		rep.StdDev = sd * a.slotWidth().Seconds()
	}
	return rep
}
