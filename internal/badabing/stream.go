package badabing

import (
	"fmt"
	"time"
)

// Stream is the incremental form of the estimation pipeline: outcomes are
// observed one experiment at a time (tagged with their start slot) and the
// estimators can be snapshotted at any point mid-run, instead of only
// after a run completes. It maintains two views:
//
//   - a running total, identical to feeding every outcome through one
//     Accumulator (the batch estimator);
//   - a sliding window of the most recent WindowSlots slots, held as a
//     ring of per-bucket Accumulators so that Observe is O(1) and
//     Snapshot is O(buckets).
//
// The window trades a little resolution for constant memory: the window
// advances in bucket-sized steps (WindowSlots/Buckets slots), so a
// snapshot's window spans between WindowSlots and WindowSlots +
// bucketSlots slots of history.
//
// Stream is not safe for concurrent use; callers serialize access (the
// fleet session loop owns its stream).
type Stream struct {
	cfg         StreamConfig
	bucketSlots int64
	total       Accumulator
	buckets     []streamBucket
	maxEpoch    int64 // highest bucket epoch observed; -1 before any
	lastSlot    int64
}

type streamBucket struct {
	epoch int64 // slot / bucketSlots; -1 when empty
	acc   Accumulator
}

// StreamConfig parameterizes a Stream.
type StreamConfig struct {
	// Slot is the discretization width, for converting duration
	// estimates to seconds. Default DefaultSlot.
	Slot time.Duration
	// WindowSlots is the sliding-window span in slots. Zero disables
	// windowing: Snapshot's Window view mirrors the Total view.
	WindowSlots int64
	// Buckets is the ring granularity; the window advances in steps of
	// WindowSlots/Buckets slots. Default 16.
	Buckets int
	// ExtendedPairs enables the §5.5 modification on both views.
	ExtendedPairs bool
}

// NewStream validates the configuration and returns an empty stream.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.Slot == 0 {
		cfg.Slot = DefaultSlot
	}
	if cfg.Slot < 0 {
		return nil, fmt.Errorf("badabing: negative slot width %v", cfg.Slot)
	}
	if cfg.WindowSlots < 0 {
		return nil, fmt.Errorf("badabing: negative window %d slots", cfg.WindowSlots)
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 16
	}
	if cfg.Buckets < 0 {
		return nil, fmt.Errorf("badabing: negative bucket count %d", cfg.Buckets)
	}
	s := &Stream{cfg: cfg, maxEpoch: -1, lastSlot: -1}
	s.total.Slot = cfg.Slot
	s.total.ExtendedPairs = cfg.ExtendedPairs
	if cfg.WindowSlots > 0 {
		s.bucketSlots = (cfg.WindowSlots + int64(cfg.Buckets) - 1) / int64(cfg.Buckets)
		s.buckets = make([]streamBucket, cfg.Buckets)
		for i := range s.buckets {
			s.buckets[i].epoch = -1
			s.buckets[i].acc.Slot = cfg.Slot
			s.buckets[i].acc.ExtendedPairs = cfg.ExtendedPairs
		}
	}
	return s, nil
}

// Observe records one experiment outcome that started at the given slot.
// Outcomes may arrive slightly out of order; ones older than the window
// still count toward the total but are dropped from the window view.
func (s *Stream) Observe(slot int64, bits []bool) {
	s.total.Add(bits)
	if slot > s.lastSlot {
		s.lastSlot = slot
	}
	if s.bucketSlots == 0 {
		return
	}
	epoch := slot / s.bucketSlots
	if epoch > s.maxEpoch {
		s.maxEpoch = epoch
	} else if epoch <= s.maxEpoch-int64(len(s.buckets)) {
		return // older than the ring's span
	}
	b := &s.buckets[epoch%int64(len(s.buckets))]
	if b.epoch != epoch {
		b.acc = Accumulator{Slot: s.cfg.Slot, ExtendedPairs: s.cfg.ExtendedPairs}
		b.epoch = epoch
	}
	b.acc.Add(bits)
}

// M returns the total number of experiments observed.
func (s *Stream) M() int { return s.total.M() }

// Estimates is a JSON-friendly snapshot of one Accumulator's estimators:
// F̂ (loss-episode frequency), D̂ (mean episode duration, seconds, basic
// and improved variants) and r̂ (the p2/p1 detection-probability ratio).
// Undefined estimates are flagged by their Has fields rather than NaN so
// the struct survives encoding/json.
type Estimates struct {
	// M is the number of experiments the estimates are computed from.
	M int `json:"m"`
	// Frequency is F̂.
	Frequency float64 `json:"frequency"`
	// Duration is the best available duration estimate in seconds
	// (improved when defined, basic otherwise), mirroring Report.
	Duration    float64 `json:"duration_seconds"`
	HasDuration bool    `json:"has_duration"`
	// DurationBasic and DurationImproved expose both estimators when
	// their Has flags are set.
	DurationBasic       float64 `json:"duration_basic_seconds"`
	HasDurationBasic    bool    `json:"has_duration_basic"`
	DurationImproved    float64 `json:"duration_improved_seconds"`
	HasDurationImproved bool    `json:"has_duration_improved"`
	// DurationGeometric is the parametric §8 estimate 1/(1−ĝ) under the
	// geometric episode model, when extended experiments observed an
	// episode interior.
	DurationGeometric    float64 `json:"duration_geometric_seconds"`
	HasDurationGeometric bool    `json:"has_duration_geometric"`
	// RHat is r̂ = U/V from extended experiments.
	RHat    float64 `json:"r_hat"`
	HasRHat bool    `json:"has_r_hat"`
	// StdDev is the §7 reliability approximation for the duration
	// estimate, in seconds.
	StdDev    float64 `json:"stddev_seconds"`
	HasStdDev bool    `json:"has_stddev"`
}

// EstimatesOf summarizes an accumulator. Every numeric field is produced
// by the same Accumulator methods the batch pipeline uses, so a stream
// whose window covers a whole run is bit-identical to batch estimation.
func EstimatesOf(a *Accumulator) Estimates {
	e := Estimates{M: a.M(), Frequency: a.Frequency()}
	if d, ok := a.Duration(); ok {
		e.DurationBasic = d.Seconds()
		e.HasDurationBasic = true
		e.Duration = e.DurationBasic
		e.HasDuration = true
	}
	if d, ok := a.DurationImproved(); ok {
		e.DurationImproved = d.Seconds()
		e.HasDurationImproved = true
		e.Duration = e.DurationImproved
		e.HasDuration = true
	}
	if d, ok := a.DurationSlotsGeometric(); ok {
		e.DurationGeometric = d * a.slotWidth().Seconds()
		e.HasDurationGeometric = true
	}
	if r, ok := a.RHat(); ok {
		e.RHat = r
		e.HasRHat = true
	}
	if sd, ok := a.DurationStdDev(); ok {
		e.StdDev = sd * a.slotWidth().Seconds()
		e.HasStdDev = true
	}
	return e
}

// StreamSnapshot is the state of the estimators at one instant mid-run.
type StreamSnapshot struct {
	// Total covers every outcome observed since the stream was created.
	Total Estimates `json:"total"`
	// Window covers roughly the last WindowSlots slots (it mirrors
	// Total when windowing is disabled).
	Window Estimates `json:"window"`
	// WindowSlots echoes the configured span; LastSlot is the highest
	// experiment start slot observed (-1 before any).
	WindowSlots int64 `json:"window_slots"`
	LastSlot    int64 `json:"last_slot"`
}

// Snapshot computes the current estimates. It may be called at any time,
// including on an empty stream.
func (s *Stream) Snapshot() StreamSnapshot {
	snap := StreamSnapshot{
		Total:       EstimatesOf(&s.total),
		WindowSlots: s.cfg.WindowSlots,
		LastSlot:    s.lastSlot,
	}
	if s.bucketSlots == 0 {
		snap.Window = snap.Total
		return snap
	}
	win := Accumulator{Slot: s.cfg.Slot, ExtendedPairs: s.cfg.ExtendedPairs}
	oldest := s.maxEpoch - int64(len(s.buckets)) + 1
	for i := range s.buckets {
		b := &s.buckets[i]
		if b.epoch < 0 || b.epoch < oldest {
			continue
		}
		win.Merge(b.acc.Counts())
	}
	snap.Window = EstimatesOf(&win)
	return snap
}
