package badabing_test

import (
	"fmt"
	"time"

	badabing "badabing/internal/badabing"
)

// The full measurement pipeline on synthetic observations: schedule →
// mark → assemble → report.
func Example() {
	// Draw the probe schedule: 50 000 slots of 5 ms (250 s), p = 0.5.
	plans := badabing.MustSchedule(badabing.ScheduleConfig{P: 0.5, N: 50000, Seed: 7})

	// Pretend the path had a 200 ms loss episode (40 slots) every
	// 1000 slots (5 s), and synthesize per-probe observations.
	congested := func(slot int64) bool { return slot%1000 >= 300 && slot%1000 < 340 }
	var obs []badabing.ProbeObs
	seen := map[int64]bool{}
	for _, pl := range plans {
		for j := 0; j < pl.Probes; j++ {
			slot := pl.Slot + int64(j)
			if seen[slot] {
				continue
			}
			seen[slot] = true
			o := badabing.ProbeObs{
				Slot:        slot,
				SentPackets: 3,
				T:           time.Duration(slot) * badabing.DefaultSlot,
				OWD:         50 * time.Millisecond,
			}
			if congested(slot) {
				o.LostPackets = 1
				o.OWD = 150 * time.Millisecond
			}
			obs = append(obs, o)
		}
	}

	// Mark congestion, assemble experiment outcomes, estimate.
	marked := badabing.Mark(obs, badabing.RecommendedMarker(0.5, badabing.DefaultSlot))
	bySlot := map[int64]bool{}
	for i, o := range obs {
		bySlot[o.Slot] = bySlot[o.Slot] || marked[i]
	}
	acc := &badabing.Accumulator{}
	badabing.Assemble(acc, plans, bySlot)
	rep := acc.MakeReport()

	// True frequency is 40/1000 = 0.04 and true duration 200 ms.
	fmt.Printf("frequency %.3f\n", rep.Frequency)
	d, _ := acc.Duration()
	fmt.Printf("duration %v\n", d)
	// Output:
	// frequency 0.038
	// duration 187.399999ms
}

// Validation flags a process whose episodes flap at the slot scale.
func ExampleValidation() {
	acc := &badabing.Accumulator{}
	for i := 0; i < 30; i++ {
		acc.AddExtended(false, true, false) // 010: single-slot episodes
	}
	v := acc.Validate()
	fmt.Printf("violations: %d, passes: %v\n", v.Violations, v.Passes(badabing.Criteria{}))
	// Output:
	// violations: 30, passes: false
}
