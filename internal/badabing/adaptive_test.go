package badabing

import (
	"math/rand"
	"testing"
)

// driveAdaptive runs the controller against a synthetic series, laying
// each round's slots consecutively.
func driveAdaptive(t *testing.T, a *Adaptive, series []bool) {
	t.Helper()
	base := int64(0)
	seed := int64(100)
	for !a.Done() {
		plans, _ := a.NextRound(seed)
		seed++
		for _, pl := range plans {
			if base+pl.Slot+int64(pl.Probes) > int64(len(series)) {
				t.Fatal("series exhausted")
			}
			bits := make([]bool, pl.Probes)
			for j := range bits {
				bits[j] = series[base+pl.Slot+int64(j)]
			}
			a.Add(bits)
		}
		base += 6000
		a.EndRound()
	}
}

func TestAdaptiveConvergesOnLossyPath(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	series, _, _ := synthSeries(rng, 400_000, 400, 14)
	a := NewAdaptive(AdaptiveConfig{
		Monitor: MonitorConfig{MinExperiments: 500},
	})
	driveAdaptive(t, a, series)
	if !a.Converged() {
		t.Fatalf("did not converge in %d rounds", a.Round())
	}
	rep := a.Report()
	if !rep.HasDuration || rep.Frequency <= 0 {
		t.Fatalf("converged without usable estimates: %+v", rep)
	}
}

func TestAdaptiveEscalatesOnQuietPath(t *testing.T) {
	// Episodes so rare that low-p rounds see almost no boundaries: the
	// controller must raise p.
	rng := rand.New(rand.NewSource(72))
	series, _, _ := synthSeries(rng, 400_000, 20_000, 14)
	a := NewAdaptive(AdaptiveConfig{
		MaxRounds: 20,
		Monitor:   MonitorConfig{MinExperiments: 500},
	})
	start := a.P()
	driveAdaptive(t, a, series)
	if a.P() <= start {
		t.Fatalf("p never escalated from %v on a quiet path", start)
	}
}

func TestAdaptiveStaysGentleWhenEvidenceFlows(t *testing.T) {
	// Frequent episodes: boundary evidence arrives fast at p=0.1, so
	// escalation should be mild or absent before convergence.
	rng := rand.New(rand.NewSource(73))
	series, _, _ := synthSeries(rng, 800_000, 150, 14)
	a := NewAdaptive(AdaptiveConfig{
		Monitor: MonitorConfig{MinExperiments: 300},
	})
	driveAdaptive(t, a, series)
	if !a.Converged() {
		t.Fatal("did not converge")
	}
	if a.P() > 0.4 {
		t.Errorf("p escalated to %v despite abundant evidence", a.P())
	}
}

func TestAdaptiveRespectsRoundBudget(t *testing.T) {
	// All-clear path: can never converge (no boundaries), must stop at
	// MaxRounds with p pinned at PMax.
	series := make([]bool, 200_000)
	a := NewAdaptive(AdaptiveConfig{
		MaxRounds: 5,
		Monitor:   MonitorConfig{MinExperiments: 100},
	})
	driveAdaptive(t, a, series)
	if a.Converged() {
		t.Fatal("converged on a lossless path")
	}
	if a.Round() != 5 {
		t.Fatalf("ran %d rounds, want 5", a.Round())
	}
	if a.P() != 0.9 {
		t.Fatalf("p = %v after persistent silence, want PMax 0.9", a.P())
	}
}

func TestAdaptiveElapsed(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{})
	a.EndRound()
	a.EndRound()
	if got := a.Elapsed(0); got != 2*6000*DefaultSlot {
		t.Fatalf("elapsed = %v", got)
	}
}

func TestAdaptiveInvalidRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid range accepted")
		}
	}()
	NewAdaptive(AdaptiveConfig{PMin: 0.8, PMax: 0.2})
}
