package badabing

import (
	"math"
	"math/rand"
	"testing"
)

func TestExtendedPairsCounting(t *testing.T) {
	acc := &Accumulator{ExtendedPairs: true}
	acc.AddExtended(false, true, true) // pairs: 01, 11
	r, s := acc.RS()
	if r != 2 || s != 1 {
		t.Fatalf("R,S = %d,%d; want 2,1", r, s)
	}
	if acc.M() != 1 {
		t.Fatalf("M = %d, want 1 (pairs must not count as experiments)", acc.M())
	}
	acc.AddExtended(true, false, false) // pairs: 10, 00
	r, s = acc.RS()
	if r != 3 || s != 2 {
		t.Fatalf("R,S = %d,%d; want 3,2", r, s)
	}
}

func TestExtendedPairsOffByDefault(t *testing.T) {
	acc := &Accumulator{}
	acc.AddExtended(false, true, true)
	if r, s := acc.RS(); r != 0 || s != 0 {
		t.Fatalf("R,S = %d,%d without ExtendedPairs; want 0,0", r, s)
	}
}

// runSyntheticPairs mirrors runSynthetic with ExtendedPairs enabled.
func runSyntheticPairs(t *testing.T, seed int64, n int, extendedPairs bool) (est float64, trueD float64, boundaries int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	series, _, d := synthSeries(rng, n, 500, 14)
	plans := MustSchedule(ScheduleConfig{P: 0.2, N: int64(n), Improved: true, Seed: seed + 1})
	acc := &Accumulator{ExtendedPairs: extendedPairs}
	for _, pl := range plans {
		bits := make([]bool, pl.Probes)
		for j := range bits {
			bits[j] = series[pl.Slot+int64(j)]
		}
		acc.Add(bits)
	}
	slots, ok := acc.DurationSlots()
	if !ok {
		t.Fatal("no estimate")
	}
	_, s := acc.RS()
	return slots, d, s
}

func TestExtendedPairsConsistent(t *testing.T) {
	est, trueD, _ := runSyntheticPairs(t, 31, 4_000_000, true)
	if math.Abs(est-trueD) > 0.15*trueD {
		t.Errorf("D̂ = %v with ExtendedPairs, true %v", est, trueD)
	}
}

func TestExtendedPairsIncreaseBoundarySamples(t *testing.T) {
	_, _, sWithout := runSyntheticPairs(t, 32, 1_000_000, false)
	_, _, sWith := runSyntheticPairs(t, 32, 1_000_000, true)
	if sWith <= sWithout {
		t.Errorf("S with pairs %d not above S without %d", sWith, sWithout)
	}
}

func TestExtendedPairsShrinkStdDev(t *testing.T) {
	runOne := func(pairs bool) float64 {
		rng := rand.New(rand.NewSource(33))
		series, _, _ := synthSeries(rng, 1_000_000, 500, 14)
		plans := MustSchedule(ScheduleConfig{P: 0.2, N: int64(len(series)), Improved: true, Seed: 34})
		acc := &Accumulator{ExtendedPairs: pairs}
		for _, pl := range plans {
			bits := make([]bool, pl.Probes)
			for j := range bits {
				bits[j] = series[pl.Slot+int64(j)]
			}
			acc.Add(bits)
		}
		sd, ok := acc.DurationStdDev()
		if !ok {
			t.Fatal("no stddev")
		}
		return sd
	}
	if with, without := runOne(true), runOne(false); with >= without {
		t.Errorf("stddev with pairs %v not below without %v", with, without)
	}
}

func TestScheduleExtendedFraction(t *testing.T) {
	count := func(frac float64) float64 {
		plans := MustSchedule(ScheduleConfig{
			P: 0.5, N: 100_000, Improved: true, ExtendedFraction: Fraction(frac), Seed: 41,
		})
		ext := 0
		for _, pl := range plans {
			if pl.Probes == 3 {
				ext++
			}
		}
		return float64(ext) / float64(len(plans))
	}
	if got := count(0.2); got < 0.17 || got > 0.23 {
		t.Errorf("extended fraction %v, want ≈0.2", got)
	}
	if got := count(0.8); got < 0.77 || got > 0.83 {
		t.Errorf("extended fraction %v, want ≈0.8", got)
	}
}

func TestScheduleExtendedFractionValidation(t *testing.T) {
	for _, f := range []float64{1.5, -0.1, math.NaN()} {
		_, err := Schedule(ScheduleConfig{P: 0.5, N: 100, Improved: true, ExtendedFraction: Fraction(f)})
		if err == nil {
			t.Errorf("fraction %v accepted", f)
		}
	}
}

// TestScheduleExtendedFractionZero pins the fix for the zero-value
// footgun: an explicit 0 means "no extended experiments", while leaving
// the field nil still selects the paper's 1/2.
func TestScheduleExtendedFractionZero(t *testing.T) {
	cfg := ScheduleConfig{P: 0.5, N: 100_000, Improved: true, Seed: 41}
	cfg.ExtendedFraction = Fraction(0)
	for _, pl := range MustSchedule(cfg) {
		if pl.Probes == 3 {
			t.Fatal("extended experiment scheduled with ExtendedFraction = &0")
		}
	}
	cfg.ExtendedFraction = nil
	ext := 0
	plans := MustSchedule(cfg)
	for _, pl := range plans {
		if pl.Probes == 3 {
			ext++
		}
	}
	if frac := float64(ext) / float64(len(plans)); frac < 0.45 || frac > 0.55 {
		t.Errorf("nil ExtendedFraction drew %v extended, want ≈0.5", frac)
	}
}
