package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population variance of this classic set is 4; sample variance is 32/7.
	if got, want := s.Var(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Var = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Fatal("empty summary not all zero")
	}
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Var() != 0 {
		t.Fatalf("single-sample summary: mean %v var %v", s.Mean(), s.Var())
	}
}

func TestSummaryDurations(t *testing.T) {
	var s Summary
	s.AddDuration(100 * time.Millisecond)
	s.AddDuration(200 * time.Millisecond)
	if got, want := s.MeanDuration(), 150*time.Millisecond; got != want {
		t.Errorf("MeanDuration = %v, want %v", got, want)
	}
	if s.StdDevDuration() <= 0 {
		t.Errorf("StdDevDuration = %v, want > 0", s.StdDevDuration())
	}
}

// Property: Welford mean matches the naive sum/count for any input.
func TestSummaryMatchesNaiveProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		var sum float64
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			s.Add(x)
			sum += x
			n++
		}
		if n == 0 {
			return s.N() == 0
		}
		naive := sum / float64(n)
		return math.Abs(s.Mean()-naive) <= 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Summary
	mean := 10 * time.Second
	for i := 0; i < 20000; i++ {
		d := Exp(rng, mean)
		if d < 0 {
			t.Fatalf("negative exponential draw %v", d)
		}
		s.AddDuration(d)
	}
	if got := s.Mean(); math.Abs(got-10) > 0.3 {
		t.Errorf("empirical mean %.3fs, want ≈10s", got)
	}
}

func TestParetoProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const alpha, xm = 1.5, 1000.0
	var s Summary
	for i := 0; i < 50000; i++ {
		v := Pareto(rng, alpha, xm)
		if v < xm {
			t.Fatalf("Pareto draw %v below minimum %v", v, xm)
		}
		s.Add(v)
	}
	// E[X] = alpha*xm/(alpha-1) = 3000 for alpha=1.5. The tail is heavy,
	// so allow a generous band.
	if s.Mean() < 2000 || s.Mean() > 4500 {
		t.Errorf("Pareto empirical mean %.0f, want ≈3000", s.Mean())
	}
}

func TestBoundedPareto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 10000; i++ {
		v := BoundedPareto(rng, 1.2, 100, 10000)
		if v < 100 || v > 10000 {
			t.Fatalf("BoundedPareto draw %v outside [100,10000]", v)
		}
	}
}
