package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram is a fixed-layout log-scale histogram for positive durations,
// suitable for streaming one-way-delay samples: buckets grow
// geometrically from Min to Max so that both sub-millisecond jitter and
// multi-second outliers resolve. The zero value is not usable; create one
// with NewHistogram.
type Histogram struct {
	min, max float64 // seconds
	ratio    float64 // per-bucket growth factor
	counts   []uint64
	under    uint64
	over     uint64
	n        uint64
	sum      float64
}

// NewHistogram creates a histogram spanning [min, max] with the given
// number of buckets.
func NewHistogram(min, max time.Duration, buckets int) *Histogram {
	if min <= 0 || max <= min || buckets < 1 {
		panic(fmt.Sprintf("stats: invalid histogram [%v, %v] x%d", min, max, buckets))
	}
	h := &Histogram{
		min:    min.Seconds(),
		max:    max.Seconds(),
		counts: make([]uint64, buckets),
	}
	h.ratio = math.Pow(h.max/h.min, 1/float64(buckets))
	return h
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.n++
	s := d.Seconds()
	h.sum += s
	switch {
	case s < h.min:
		h.under++
	case s >= h.max:
		h.over++
	default:
		i := int(math.Log(s/h.min) / math.Log(h.ratio))
		if i < 0 {
			i = 0
		}
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// N returns the number of samples.
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the sample mean.
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.n) * float64(time.Second))
}

// bucketUpper returns the upper edge of bucket i in seconds.
func (h *Histogram) bucketUpper(i int) float64 {
	return h.min * math.Pow(h.ratio, float64(i+1))
}

// Quantile returns an upper bound for the q-quantile (0 < q < 1) of the
// recorded samples, resolved to bucket granularity.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 || q <= 0 || q >= 1 {
		return 0
	}
	target := uint64(q * float64(h.n))
	cum := h.under
	if cum > target {
		return time.Duration(h.min * float64(time.Second))
	}
	for i, c := range h.counts {
		cum += c
		if cum > target {
			return time.Duration(h.bucketUpper(i) * float64(time.Second))
		}
	}
	return time.Duration(h.max * float64(time.Second))
}

// Quantiles returns upper bounds for several quantiles at once.
func (h *Histogram) Quantiles(qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}

// String renders a compact summary.
func (h *Histogram) String() string {
	if h.n == 0 {
		return "no samples"
	}
	qs := h.Quantiles(0.5, 0.95, 0.99)
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50≤%v p95≤%v p99≤%v",
		h.n, h.Mean().Round(time.Microsecond),
		qs[0].Round(time.Microsecond), qs[1].Round(time.Microsecond), qs[2].Round(time.Microsecond))
	return b.String()
}

// ECDF computes an empirical CDF from raw samples: the returned function
// maps x to P(X ≤ x). Useful in tests and small analyses where keeping
// all samples is fine.
func ECDF(samples []float64) func(float64) float64 {
	xs := append([]float64(nil), samples...)
	sort.Float64s(xs)
	return func(x float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		i := sort.SearchFloat64s(xs, x)
		for i < len(xs) && xs[i] == x {
			i++
		}
		return float64(i) / float64(len(xs))
	}
}
