package stats

import (
	"math/rand"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Second, 200)
	// Uniform 10..100 ms.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100_000; i++ {
		h.Add(time.Duration(10+rng.Intn(90)) * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	if p50 < 50*time.Millisecond || p50 > 62*time.Millisecond {
		t.Errorf("p50 = %v, want ≈55ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 95*time.Millisecond || p99 > 110*time.Millisecond {
		t.Errorf("p99 = %v, want ≈99ms", p99)
	}
	if h.N() != 100_000 {
		t.Errorf("N = %d", h.N())
	}
	mean := h.Mean()
	if mean < 50*time.Millisecond || mean > 60*time.Millisecond {
		t.Errorf("mean = %v, want ≈54.5ms", mean)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second, 64)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10_000; i++ {
		h.Add(time.Duration(rng.ExpFloat64() * float64(50*time.Millisecond)))
	}
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %v < quantile at lower q (%v)", v, prev)
		}
		prev = v
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 100*time.Millisecond, 8)
	h.Add(time.Millisecond)      // under
	h.Add(time.Second)           // over
	h.Add(50 * time.Millisecond) // in range
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
	// Quantile 0.99 should land at the max bound due to the overflow
	// sample.
	if q := h.Quantile(0.99); q != 100*time.Millisecond {
		t.Errorf("p99 = %v, want clamped to 100ms", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second, 8)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.String() != "no samples" {
		t.Fatalf("String() = %q", h.String())
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram accepted")
		}
	}()
	NewHistogram(0, time.Second, 8)
}

func TestECDF(t *testing.T) {
	cdf := ECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := cdf(c.x); got != c.want {
			t.Errorf("cdf(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if ECDF(nil)(1) != 0 {
		t.Error("empty ECDF not zero")
	}
}
