// Package stats provides small statistical helpers shared by the traffic
// generators, the ground-truth analyzer and the loss estimators: running
// moments (Welford), duration summaries, and the heavy-tailed and
// memoryless random variates the paper's workloads are built from.
package stats

import (
	"math"
	"math/rand"
	"time"
)

// Summary accumulates a sample's count, mean and variance using Welford's
// online algorithm. The zero value is an empty summary ready for use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddDuration incorporates d, in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the sample count.
func (s Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 for an empty summary.
func (s Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance, or 0 for fewer than 2 samples.
func (s Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample, or 0 for an empty summary.
func (s Summary) Min() float64 { return s.min }

// Max returns the largest sample, or 0 for an empty summary.
func (s Summary) Max() float64 { return s.max }

// MeanDuration returns the mean as a time.Duration.
func (s Summary) MeanDuration() time.Duration {
	return time.Duration(s.mean * float64(time.Second))
}

// StdDevDuration returns the standard deviation as a time.Duration.
func (s Summary) StdDevDuration() time.Duration {
	return time.Duration(s.StdDev() * float64(time.Second))
}

// Exp draws an exponentially distributed duration with the given mean.
// This is the memoryless spacing used for Poisson-modulated probing and
// for the randomly spaced loss episodes in the paper's CBR scenario.
func Exp(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// Pareto draws a Pareto-distributed value with the given shape alpha and
// minimum xm. Heavy-tailed object sizes (alpha slightly above 1) are what
// make web-like traffic bursty across time scales.
func Pareto(rng *rand.Rand, alpha, xm float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto draws a Pareto value truncated to at most hi by rejection.
func BoundedPareto(rng *rand.Rand, alpha, xm, hi float64) float64 {
	for i := 0; i < 64; i++ {
		if v := Pareto(rng, alpha, xm); v <= hi {
			return v
		}
	}
	return hi
}
