//go:build !unix

package benchx

// cpuSeconds is unavailable off unix; session CPU columns read zero.
func cpuSeconds() float64 { return 0 }
