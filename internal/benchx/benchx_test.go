package benchx

import (
	"encoding/json"
	"testing"
	"time"
)

// tinyOpts keeps the harness's own test fast: the test checks that every
// report section is populated and coherent, not the numbers themselves.
func tinyOpts() Options {
	return Options{
		Short:           true,
		Seed:            7,
		ReflectorWindow: 150 * time.Millisecond,
		PacingSlots:     60,
		SessionSlots:    12,
		SessionLevels:   []int{1, 2},
	}
}

func TestRunAllProducesCoherentReport(t *testing.T) {
	rep, err := RunAll(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Errorf("schema = %q, want %q", rep.Schema, Schema)
	}
	if rep.Reflector.BatchPPS <= 0 || rep.Reflector.SinglePPS <= 0 {
		t.Errorf("reflector throughput not measured: %+v", rep.Reflector)
	}
	if rep.Reflector.Speedup <= 0 {
		t.Errorf("speedup not computed: %+v", rep.Reflector)
	}
	if rep.Pacing.Probes == 0 {
		t.Errorf("pacing bench paced no probes: %+v", rep.Pacing)
	}
	if !(rep.Pacing.P50us <= rep.Pacing.P95us && rep.Pacing.P95us <= rep.Pacing.P99us && rep.Pacing.P99us <= rep.Pacing.MaxUs) {
		t.Errorf("pacing percentiles not monotone: %+v", rep.Pacing)
	}
	if len(rep.Sessions) != 2 {
		t.Fatalf("got %d session tiers, want 2", len(rep.Sessions))
	}
	for _, s := range rep.Sessions {
		if s.Errors != 0 {
			t.Errorf("tier x%d had %d session errors", s.Concurrency, s.Errors)
		}
		if s.Probes == 0 || s.WallSeconds <= 0 {
			t.Errorf("tier x%d empty: %+v", s.Concurrency, s)
		}
	}

	if m := rep.Metrics; m == nil {
		t.Error("metrics stage missing from report")
	} else {
		if m.Families == 0 || m.Samples == 0 || m.NsPerRender <= 0 || m.BytesPerRender == 0 {
			t.Errorf("metrics stage empty: %+v", m)
		}
		if m.CounterIncAllocs != 0 || m.HistObserveAllocs != 0 {
			t.Errorf("instrument updates allocate (inc %.3f, observe %.3f), want 0", m.CounterIncAllocs, m.HistObserveAllocs)
		}
	}

	// The report must round-trip through its wire format.
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != rep.Schema || len(back.Sessions) != len(rep.Sessions) {
		t.Fatalf("report did not survive JSON round trip")
	}
}

// TestPacingDeterministicSchedule pins that the pacing workload is
// seeded: two runs must pace the identical number of probes.
func TestPacingDeterministicSchedule(t *testing.T) {
	opts := tinyOpts()
	a, err := RunPacingBench(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPacingBench(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Probes != b.Probes {
		t.Fatalf("same seed paced %d vs %d probes", a.Probes, b.Probes)
	}
}
