// Package benchx is the repeatable performance-regression harness for
// the wire hot path. It measures the three quantities the batch rebuild
// exists to improve — loopback reflector throughput (batched vs the
// single-packet baseline), sender pacing-error distribution, and
// end-to-end session cost under concurrency — and emits them as one
// machine-readable report (BENCH_*.json) that CI diffs against a
// committed baseline.
//
// Workloads are seeded and fixed-size, so two runs on the same machine
// measure the same packet schedule; absolute throughput still varies
// across machines, which is why the regression gate compares the
// batch/single *speedup ratio* rather than raw packets per second.
package benchx

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/session"
	"badabing/internal/session/wiretransport"
	"badabing/internal/wire"
)

// Schema identifies the report layout for downstream tooling.
const Schema = "badabing-bench/1"

// Options sizes a harness run. The zero value selects the full-size
// workloads; Short selects CI-smoke sizes. Explicit fields override both
// (tests use tiny workloads).
type Options struct {
	// Short selects the CI smoke sizes (~3s total instead of ~12s).
	Short bool
	// Seed fixes every workload schedule.
	Seed int64
	// ReflectorWindow is the measured throughput window per mode.
	ReflectorWindow time.Duration
	// PacingSlots is the pacing-session length in slots.
	PacingSlots int64
	// SessionSlots is the per-session horizon of the concurrency tiers.
	SessionSlots int64
	// SessionLevels are the concurrency tiers to run.
	SessionLevels []int
}

func (o *Options) applyDefaults() {
	pick := func(d *time.Duration, short, full time.Duration) {
		if *d == 0 {
			if o.Short {
				*d = short
			} else {
				*d = full
			}
		}
	}
	picki := func(d *int64, short, full int64) {
		if *d == 0 {
			if o.Short {
				*d = short
			} else {
				*d = full
			}
		}
	}
	pick(&o.ReflectorWindow, 700*time.Millisecond, 1500*time.Millisecond)
	picki(&o.PacingSlots, 120, 400)
	picki(&o.SessionSlots, 25, 60)
	if len(o.SessionLevels) == 0 {
		o.SessionLevels = []int{1, 16, 64}
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// Report is the machine-readable result of one harness run.
type Report struct {
	Schema    string         `json:"schema"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	CPUs      int            `json:"cpus"`
	Short     bool           `json:"short"`
	Reflector ReflectorBench `json:"reflector"`
	Pacing    PacingBench    `json:"pacing"`
	Sessions  []SessionBench `json:"sessions"`
	// Estimators is the streaming estimation stage: observe-path cost
	// per estimator kind.
	Estimators []EstimatorBench `json:"estimators,omitempty"`
	// Metrics is the observability stage: /metrics render cost and
	// hot-path instrument allocation pins over a daemon-shaped registry.
	Metrics *MetricsBench `json:"metrics,omitempty"`
}

// ReflectorBench compares echo-loop throughput between the batched
// (sendmmsg/recvmmsg, sharded) path and the single-packet baseline over
// the same loopback blast workload. Speedup — the machine-normalized
// ratio — is what the regression gate watches.
type ReflectorBench struct {
	Seconds   float64 `json:"seconds"`
	Shards    int     `json:"shards"`
	BatchPPS  float64 `json:"batch_pps"`
	SinglePPS float64 `json:"single_pps"`
	Speedup   float64 `json:"speedup"`
}

// PacingBench is the sender's pacing-error distribution: how far behind
// its slot deadline each probe actually left, in microseconds. This is
// the accuracy-critical quantity (§7): pacing error shifts when probes
// sample the path.
type PacingBench struct {
	Slots  int64   `json:"slots"`
	SlotMs float64 `json:"slot_ms"`
	Probes int     `json:"probes"`
	P50us  float64 `json:"p50_us"`
	P95us  float64 `json:"p95_us"`
	P99us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// SessionBench is the end-to-end cost of one concurrency tier: wall and
// CPU time for N full sessions (pace → reflect → collect → estimate)
// sharing one reflector.
type SessionBench struct {
	Concurrency     int     `json:"concurrency"`
	Slots           int64   `json:"slots"`
	WallSeconds     float64 `json:"wall_seconds"`
	CPUSeconds      float64 `json:"cpu_seconds"`
	CPUMsPerSession float64 `json:"cpu_ms_per_session"`
	Probes          int     `json:"probes"`
	Errors          int     `json:"errors"`
}

// RunAll runs the full harness and assembles the report.
func RunAll(opts Options) (Report, error) {
	opts.applyDefaults()
	rep := Report{
		Schema: Schema,
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Short:  opts.Short,
	}
	var err error
	if rep.Reflector, err = RunReflectorBench(opts); err != nil {
		return rep, fmt.Errorf("reflector bench: %w", err)
	}
	if rep.Pacing, err = RunPacingBench(opts); err != nil {
		return rep, fmt.Errorf("pacing bench: %w", err)
	}
	for _, level := range opts.SessionLevels {
		sb, err := RunSessionBench(opts, level)
		if err != nil {
			return rep, fmt.Errorf("session bench x%d: %w", level, err)
		}
		rep.Sessions = append(rep.Sessions, sb)
	}
	if rep.Estimators, err = RunEstimatorBench(opts); err != nil {
		return rep, fmt.Errorf("estimator bench: %w", err)
	}
	mb, err := RunMetricsBench(opts)
	if err != nil {
		return rep, fmt.Errorf("metrics bench: %w", err)
	}
	rep.Metrics = &mb
	return rep, nil
}

// blast floods addr with probe-sized datagrams until stop closes, using
// the batch writer unless disabled (the baseline mode must be the whole
// pre-batch data path, sender included).
func blast(addr string, disableBatch bool, stop <-chan struct{}, wg *sync.WaitGroup) error {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return err
	}
	frame := make([]byte, wire.HeaderSize)
	h := wire.Header{ExpID: 1, P: 0.3, N: 1 << 30, PktsPerProbe: 3,
		SlotWidth: 5 * time.Millisecond, Seed: 1, SendTime: time.Now().UnixNano()}
	if _, err := h.Marshal(frame); err != nil {
		conn.Close()
		return err
	}
	var bw wire.BatchWriter
	if !disableBatch {
		bw = wire.NewBatchWriter(conn)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer conn.Close()
		if bw != nil {
			ms := wire.MakeMessages(wire.MaxBatch)
			for i := range ms {
				ms[i].N = copy(ms[i].Buf, frame)
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				bw.WriteBatch(ms)
			}
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			conn.Write(frame)
		}
	}()
	return nil
}

// reflectorPPS measures how many datagrams per second one reflector
// configuration absorbs from a sustained loopback blast.
func reflectorPPS(window time.Duration, disableBatch bool, shards int) (float64, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	r := wire.NewReflectorConfig(conn, wire.ReflectorConfig{
		Shards: shards, DisableBatch: disableBatch,
	})
	done := make(chan struct{})
	go func() {
		r.Run()
		close(done)
	}()
	defer func() {
		r.Close()
		<-done
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	defer wg.Wait()
	defer close(stop)
	// Two blasters keep even the sharded batch path saturated.
	for i := 0; i < 2; i++ {
		if err := blast(conn.LocalAddr().String(), disableBatch, stop, &wg); err != nil {
			return 0, err
		}
	}

	time.Sleep(window / 10) // warm up sockets and shard scheduling
	c0 := r.Packets()
	start := time.Now()
	time.Sleep(window)
	c1 := r.Packets()
	elapsed := time.Since(start).Seconds()
	return float64(c1-c0) / elapsed, nil
}

// reflectorTrials is how many times each reflector mode is measured; the
// best trial is reported. Max-of-N is the standard defence against
// scheduler interference: noise only ever subtracts throughput, so the
// maximum is the least-biased estimate of what the mode can do, and the
// regression gate's speedup ratio stops flapping with CI runner load.
const reflectorTrials = 3

// RunReflectorBench measures batch vs single-packet reflector throughput
// over identical blast workloads, best of reflectorTrials per mode.
func RunReflectorBench(opts Options) (ReflectorBench, error) {
	opts.applyDefaults()
	shards := wire.DefaultReflectorShards()
	rb := ReflectorBench{
		Seconds: opts.ReflectorWindow.Seconds(),
		Shards:  shards,
	}
	best := func(disableBatch bool, shards int) (float64, error) {
		var top float64
		for i := 0; i < reflectorTrials; i++ {
			pps, err := reflectorPPS(opts.ReflectorWindow, disableBatch, shards)
			if err != nil {
				return 0, err
			}
			if pps > top {
				top = pps
			}
		}
		return top, nil
	}
	var err error
	// Baseline first: the classic one-goroutine, one-syscall-per-packet
	// reflector this repo shipped before the batch rebuild.
	if rb.SinglePPS, err = best(true, 1); err != nil {
		return rb, err
	}
	if rb.BatchPPS, err = best(false, shards); err != nil {
		return rb, err
	}
	if rb.SinglePPS > 0 {
		rb.Speedup = rb.BatchPPS / rb.SinglePPS
	}
	return rb, nil
}

// RunPacingBench paces a full seeded probe schedule at a 5 ms slot width
// against a sink socket and reports the per-probe lag distribution: how
// long after its slot deadline each probe finished hitting the wire.
func RunPacingBench(opts Options) (PacingBench, error) {
	opts.applyDefaults()
	const slotW = 5 * time.Millisecond
	pb := PacingBench{Slots: opts.PacingSlots, SlotMs: slotW.Seconds() * 1e3}

	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return pb, err
	}
	defer sink.Close()
	conn, err := net.Dial("udp", sink.LocalAddr().String())
	if err != nil {
		return pb, err
	}
	defer conn.Close()

	cfg := wire.SenderConfig{ExpID: 1, P: 0.3, N: opts.PacingSlots, Slot: slotW, Improved: true, Seed: opts.Seed}
	if err := cfg.Normalize(); err != nil {
		return pb, err
	}
	plans, err := badabing.Schedule(badabing.ScheduleConfig{
		P: cfg.P, N: cfg.N, Improved: cfg.Improved, Seed: cfg.Seed,
	})
	if err != nil {
		return pb, err
	}
	slots := badabing.ProbeSlots(plans)

	lags := make([]time.Duration, 0, len(slots))
	start := time.Now()
	_, err = wire.SendSlots(context.Background(), conn, cfg, slots, start, func(i int, slot int64) {
		lags = append(lags, time.Since(start.Add(time.Duration(slot)*slotW)))
	})
	if err != nil {
		return pb, err
	}
	if len(lags) == 0 {
		return pb, fmt.Errorf("benchx: schedule produced no probes")
	}
	sort.Slice(lags, func(a, b int) bool { return lags[a] < lags[b] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(lags)-1))
		return float64(lags[i]) / 1e3
	}
	pb.Probes = len(lags)
	pb.P50us = pct(0.50)
	pb.P95us = pct(0.95)
	pb.P99us = pct(0.99)
	pb.MaxUs = float64(lags[len(lags)-1]) / 1e3
	return pb, nil
}

// RunSessionBench runs `level` concurrent full measurement sessions
// against one shared reflector and reports their aggregate wall and CPU
// cost.
func RunSessionBench(opts Options, level int) (SessionBench, error) {
	opts.applyDefaults()
	const slotW = 10 * time.Millisecond
	sb := SessionBench{Concurrency: level, Slots: opts.SessionSlots}

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return sb, err
	}
	r := wire.NewReflectorConfig(conn, wire.ReflectorConfig{Shards: wire.DefaultReflectorShards()})
	done := make(chan struct{})
	go func() {
		r.Run()
		close(done)
	}()
	defer func() {
		r.Close()
		<-done
	}()

	var probes, errs atomic.Int64
	var wg sync.WaitGroup
	cpu0 := cpuSeconds()
	wall0 := time.Now()
	for i := 0; i < level; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := opts.Seed + int64(i)
			tr, err := wiretransport.DialOptions(conn.LocalAddr().String(), wire.SenderConfig{
				ExpID: uint64(i + 1), P: 0.3, N: opts.SessionSlots, Slot: slotW,
				Improved: true, Seed: seed,
			}, wiretransport.Options{SkipHandshake: true})
			if err != nil {
				errs.Add(1)
				return
			}
			defer tr.Close()
			res, err := session.Run(context.Background(), tr, session.Config{
				P: 0.3, Slots: opts.SessionSlots, Slot: slotW, Improved: true, Seed: seed,
				StepSlots: 20, Settle: 200 * time.Millisecond,
			}, nil)
			if err != nil {
				errs.Add(1)
				return
			}
			probes.Add(int64(res.Probes))
		}(i)
	}
	wg.Wait()
	sb.WallSeconds = time.Since(wall0).Seconds()
	sb.CPUSeconds = cpuSeconds() - cpu0
	sb.CPUMsPerSession = sb.CPUSeconds * 1e3 / float64(level)
	sb.Probes = int(probes.Load())
	sb.Errors = int(errs.Load())
	return sb, nil
}
