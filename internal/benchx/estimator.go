package benchx

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"badabing/internal/estimate"
)

// EstimatorBench is the observe-path cost of one estimator kind: how
// many nanoseconds one streamed experiment outcome costs, and how many
// heap allocations it performs. The basic and improved kinds must
// observe with zero allocations — that invariant keeps the harvest loop
// off the garbage collector — and cmd/benchx gates on it; the bootstrap
// kind necessarily allocates (it retains the outcome sequence for
// resampling), so its figure is reported but not gated.
type EstimatorBench struct {
	Kind             string  `json:"kind"`
	Observes         int     `json:"observes"`
	NsPerObserve     float64 `json:"ns_per_observe"`
	AllocsPerObserve float64 `json:"allocs_per_observe"`
}

// estimatorWindowSlots sizes the benchmark streams' sliding window so the
// observe path exercises the bucket ring, not just the total accumulator.
const estimatorWindowSlots = 4096

// estimatorObserves sizes the timing loop per kind.
func estimatorObserves(opts Options) int {
	if opts.Short {
		return 50_000
	}
	return 200_000
}

// RunEstimatorBench measures the streaming observe path of every
// registered estimator kind over one deterministic seeded outcome
// sequence (basic two-bit outcomes at p≈0.3 loss marks, slots advancing
// like a real schedule).
func RunEstimatorBench(opts Options) ([]EstimatorBench, error) {
	opts.applyDefaults()
	n := estimatorObserves(opts)
	out := make([]EstimatorBench, 0, len(estimate.Kinds()))
	for _, kind := range estimate.Kinds() {
		eb, err := runEstimatorKindBench(kind, opts.Seed, n)
		if err != nil {
			return nil, err
		}
		out = append(out, eb)
	}
	return out, nil
}

func runEstimatorKindBench(kind string, seed int64, n int) (EstimatorBench, error) {
	eb := EstimatorBench{Kind: kind, Observes: n}
	newEst := func() (estimate.Estimator, error) {
		return estimate.New(estimate.Config{Kind: kind}, estimate.Params{
			WindowSlots: estimatorWindowSlots,
		})
	}

	// Pre-draw the outcome sequence so the timed loop measures Observe
	// alone, not the RNG.
	rng := rand.New(rand.NewSource(seed))
	slots := make([]int64, n)
	bits := make([][2]bool, n)
	slot := int64(0)
	for i := range slots {
		slot += 1 + int64(rng.Intn(5))
		slots[i] = slot
		bits[i] = [2]bool{rng.Float64() < 0.05, rng.Float64() < 0.05}
	}

	est, err := newEst()
	if err != nil {
		return eb, err
	}
	var scratch [2]bool
	start := time.Now()
	for i := 0; i < n; i++ {
		scratch = bits[i]
		est.Observe(slots[i], scratch[:])
	}
	eb.NsPerObserve = float64(time.Since(start).Nanoseconds()) / float64(n)
	if est.M() != n {
		return eb, fmt.Errorf("benchx: estimator %s observed %d of %d outcomes", kind, est.M(), n)
	}

	// Allocation pin: the same observe path under the runtime's
	// allocation counter. testing.AllocsPerRun is usable outside tests.
	est2, err := newEst()
	if err != nil {
		return eb, err
	}
	i := 0
	eb.AllocsPerObserve = testing.AllocsPerRun(min(n, 10_000), func() {
		scratch = bits[i%n]
		est2.Observe(slots[i%n], scratch[:])
		i++
	})
	return eb, nil
}
