//go:build unix

package benchx

import (
	"syscall"
	"time"
)

// cpuSeconds returns this process's cumulative user+system CPU time.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return (time.Duration(ru.Utime.Nano()) + time.Duration(ru.Stime.Nano())).Seconds()
}
