package benchx

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"badabing/internal/obs"
)

// MetricsBench is the cost of the one exposition path every subsystem
// now shares: how long one /metrics render of a daemon-shaped registry
// takes, how many heap allocations it performs, and how many the
// hot-path instrument updates (counter inc, histogram observe) perform.
// The instrument figures must be zero — those updates sit on the probe
// receive and HTTP serve paths — and cmd/benchx gates on them; render
// allocations are gated against the committed baseline because the
// render path amortizes through buffer pools, not by never allocating.
type MetricsBench struct {
	Families          int     `json:"families"`
	Samples           int     `json:"samples"`
	Renders           int     `json:"renders"`
	NsPerRender       float64 `json:"ns_per_render"`
	BytesPerRender    int     `json:"bytes_per_render"`
	AllocsPerRender   float64 `json:"allocs_per_render"`
	CounterIncAllocs  float64 `json:"counter_inc_allocs"`
	HistObserveAllocs float64 `json:"hist_observe_allocs"`
}

// metricsRenders sizes the render timing loop.
func metricsRenders(opts Options) int {
	if opts.Short {
		return 300
	}
	return 1500
}

// countingWriter tallies rendered bytes without retaining them.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// RunMetricsBench measures the exposition render over a registry shaped
// like a loaded daemon's: the full static family surface plus per-route
// HTTP histograms, per-shard reflector counters and a 64-session fleet.
func RunMetricsBench(opts Options) (MetricsBench, error) {
	opts.applyDefaults()
	o := obs.NewRegistry()

	// Static families standing in for the store/breaker/health/watchdog
	// surface: ~40 families of counters and gauges.
	counters := make([]obs.Counter, 24)
	for i := range counters {
		counters[i] = o.Counter(fmt.Sprintf("bench_static_%02d_total", i), "Synthetic counter family.")
		counters[i].Add(uint64(i * 17))
	}
	gauges := make([]obs.Gauge, 16)
	for i := range gauges {
		gauges[i] = o.Gauge(fmt.Sprintf("bench_gauge_%02d", i), "Synthetic gauge family.")
		gauges[i].Set(float64(i) * 1.5)
	}

	// Per-route HTTP self-metrics: 12 routes x 5 status classes plus a
	// latency histogram per route.
	requests := o.CounterVec("bench_http_requests_total", "Synthetic request counter.", "route", "code")
	latency := o.HistogramVec("bench_http_request_seconds", "Synthetic latency histogram.", nil, "route")
	routes := []string{"create", "list", "get", "snapshot", "history", "store_stats", "stop", "delete", "metrics", "healthz", "readyz", "other"}
	var hot obs.Counter
	var hotHist obs.Histogram
	for _, route := range routes {
		for _, code := range []string{"1xx", "2xx", "3xx", "4xx", "5xx"} {
			requests.With(route, code).Inc()
		}
		h := latency.With(route)
		for i := 0; i < 32; i++ {
			h.Observe(float64(i) / 997)
		}
		hot = requests.With(route, "2xx")
		hotHist = h
	}

	// Per-shard reflector counters and a 64-session fleet of gauges.
	shardPackets := o.CounterVec("bench_shard_packets_total", "Synthetic per-shard counter.", "shard")
	for i := 0; i < 8; i++ {
		shardPackets.With(strconv.Itoa(i)).Add(uint64(i) * 1000)
	}
	freq := o.GaugeVec("bench_session_frequency", "Synthetic per-session gauge.", "session")
	m := o.GaugeVec("bench_session_experiments", "Synthetic per-session gauge.", "session")
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("s%04d", i)
		freq.With(id).Set(float64(i) / 997)
		m.With(id).SetInt(int64(i * 31))
	}

	mb := MetricsBench{Renders: metricsRenders(opts), Families: len(o.Families())}

	var cw countingWriter
	if err := o.Write(&cw); err != nil {
		return mb, err
	}
	mb.BytesPerRender = cw.n

	// Warm the render buffer pool, then time.
	for i := 0; i < 8; i++ {
		var w countingWriter
		if err := o.Write(&w); err != nil {
			return mb, err
		}
	}
	start := time.Now()
	for i := 0; i < mb.Renders; i++ {
		var w countingWriter
		if err := o.Write(&w); err != nil {
			return mb, err
		}
	}
	mb.NsPerRender = float64(time.Since(start).Nanoseconds()) / float64(mb.Renders)

	mb.AllocsPerRender = testing.AllocsPerRun(64, func() {
		var w countingWriter
		o.Write(&w)
	})
	mb.CounterIncAllocs = testing.AllocsPerRun(10_000, hot.Inc)
	v := 0
	mb.HistObserveAllocs = testing.AllocsPerRun(10_000, func() {
		hotHist.Observe(float64(v) / 997)
		v++
	})

	// Samples: every rendered line is either a sample or one of the two
	// comment lines per family; approximate from the first render.
	mb.Samples = countSamples(o)
	return mb, nil
}

// countSamples renders once and counts sample (non-comment) lines.
func countSamples(o *obs.Registry) int {
	var buf bytes.Buffer
	o.Write(&buf)
	n := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			n++
		}
	}
	return n
}
