package fleet

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"badabing/internal/health"
	"badabing/internal/obs"
	"badabing/internal/store"
)

// BreakerState is the store circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed forwards every event straight to the inner sink.
	BreakerClosed BreakerState = iota
	// BreakerOpen buffers events in the in-memory spill; periodic
	// recovery probes replay the spill into the inner sink and close
	// the breaker once it drains.
	BreakerOpen
)

func (s BreakerState) String() string {
	if s == BreakerOpen {
		return "open"
	}
	return "closed"
}

// StoreComponent is the health-monitor component the breaker reports
// under.
const StoreComponent = "store"

// BreakerConfig parameterizes a BreakerSink.
type BreakerConfig struct {
	// Threshold is how many consecutive append failures trip the
	// breaker. Default 3.
	Threshold int
	// SpillCapacity bounds the in-memory spill buffer (events). Beyond
	// it new events are dropped and counted — the archive has visibly
	// lost history, and the health component escalates to failing so
	// admission sheds new sessions. Default 4096.
	SpillCapacity int
	// ProbeInterval is the recovery-probe cadence while events are
	// spilled. Default 1s.
	ProbeInterval time.Duration
	// Health, when set, receives the breaker's state under
	// StoreComponent: ok (closed), degraded (open, spilling), failing
	// (spill overflowed).
	Health *health.Monitor
	// Log receives one structured line per state transition (nil
	// discards).
	Log *obs.Logger
}

func (c *BreakerConfig) applyDefaults() {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.SpillCapacity <= 0 {
		c.SpillCapacity = 4096
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
}

// spillEvent is one buffered sink call, replayed verbatim (original
// timestamps and values) so post-recovery history is identical to an
// unimpaired run.
type spillEvent struct {
	kind    byte // 'c' created, 's' state, 'p' point, 't' totals
	id      string
	at      time.Time
	cfgJSON []byte
	seed    int64
	state   string
	term    bool
	errMsg  string
	retries int
	point   store.Point
	totals  store.Totals
}

// BreakerSink wraps a Sink in a circuit breaker: persistent append
// errors (disk full, I/O error) trip it into a bounded in-memory spill
// buffer, and periodic recovery probes replay the spill — in original
// order, with original timestamps — once writes succeed again. A full
// disk therefore degrades durability visibly (health, metrics, spill
// depth) instead of silently dropping history.
//
// Ordering invariant: once any event is spilled, every later event
// spills behind it until the buffer fully drains, so the inner sink
// always observes events in publish order.
type BreakerSink struct {
	inner Sink
	cfg   BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive forward failures
	spill    []spillEvent
	draining bool // a drain is in flight (it yields mu between chunks)
	lastErr  error

	trips       atomic.Int64
	spilled     atomic.Int64
	replayed    atomic.Int64
	dropped     atomic.Int64
	writeErrors atomic.Int64
	depth       atomic.Int64

	stop     chan struct{}
	loopDone sync.WaitGroup
}

// NewBreakerSink wraps inner and starts the recovery-probe loop. Close
// stops the loop, makes a final replay attempt and closes inner if it
// is an io.Closer.
func NewBreakerSink(inner Sink, cfg BreakerConfig) *BreakerSink {
	cfg.applyDefaults()
	b := &BreakerSink{inner: inner, cfg: cfg, stop: make(chan struct{})}
	b.reportHealth()
	b.loopDone.Add(1)
	go b.probeLoop()
	return b
}

// Unwrap returns the wrapped sink (the registry resolves History/Stats
// query interfaces through it).
func (b *BreakerSink) Unwrap() Sink { return b.inner }

// SessionCreated implements Sink.
func (b *BreakerSink) SessionCreated(id string, at time.Time, cfgJSON []byte, seed int64) error {
	return b.deliver(spillEvent{kind: 'c', id: id, at: at, cfgJSON: append([]byte(nil), cfgJSON...), seed: seed})
}

// SessionState implements Sink.
func (b *BreakerSink) SessionState(id string, at time.Time, state string, terminal bool, errMsg string, retries int, seed int64) error {
	return b.deliver(spillEvent{kind: 's', id: id, at: at, state: state, term: terminal, errMsg: errMsg, retries: retries, seed: seed})
}

// SessionPoint implements Sink.
func (b *BreakerSink) SessionPoint(id string, p store.Point) error {
	return b.deliver(spillEvent{kind: 'p', id: id, point: p})
}

// RegistryTotals implements Sink.
func (b *BreakerSink) RegistryTotals(t store.Totals) error {
	return b.deliver(spillEvent{kind: 't', totals: t})
}

// forward replays one event into the inner sink.
func (b *BreakerSink) forward(ev spillEvent) error {
	switch ev.kind {
	case 'c':
		return b.inner.SessionCreated(ev.id, ev.at, ev.cfgJSON, ev.seed)
	case 's':
		return b.inner.SessionState(ev.id, ev.at, ev.state, ev.term, ev.errMsg, ev.retries, ev.seed)
	case 'p':
		return b.inner.SessionPoint(ev.id, ev.point)
	default:
		return b.inner.RegistryTotals(ev.totals)
	}
}

// deliver is the single write path: forward while healthy, spill while
// tripped (or while earlier events are still queued, preserving order).
// It always returns nil — the breaker IS the error policy; failures are
// surfaced through health, metrics and Stats instead of the caller.
func (b *BreakerSink) deliver(ev spillEvent) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerClosed && len(b.spill) > 0 {
		// Below-threshold failures left events queued: retry them inline
		// so a transient blip drains without waiting for the probe loop,
		// while a persistent fault accumulates the consecutive failures
		// that trip the breaker.
		b.drainLocked()
	}
	if b.state == BreakerOpen || len(b.spill) > 0 {
		b.spillLocked(ev)
		return nil
	}
	if err := b.forward(ev); err != nil {
		b.noteFailureLocked(err)
		b.spillLocked(ev)
		return nil
	}
	b.fails = 0
	return nil
}

// noteFailureLocked counts one forward failure and trips the breaker at
// the threshold.
func (b *BreakerSink) noteFailureLocked(err error) {
	b.writeErrors.Add(1)
	b.lastErr = err
	b.fails++
	if b.state == BreakerClosed && b.fails >= b.cfg.Threshold {
		b.state = BreakerOpen
		b.trips.Add(1)
		b.cfg.Log.Error("store breaker open",
			"consecutive_failures", b.fails, "err", err)
		b.reportHealth()
	}
}

// spillLocked buffers one event, dropping (and counting) it when the
// buffer is full.
func (b *BreakerSink) spillLocked(ev spillEvent) {
	if len(b.spill) >= b.cfg.SpillCapacity {
		if b.dropped.Add(1) == 1 {
			b.cfg.Log.Error("store breaker spill full; dropping history",
				"capacity", b.cfg.SpillCapacity)
			b.reportHealth()
		}
		return
	}
	b.spill = append(b.spill, ev)
	b.spilled.Add(1)
	b.depth.Store(int64(len(b.spill)))
}

// probeLoop periodically attempts recovery while events are spilled.
func (b *BreakerSink) probeLoop() {
	defer b.loopDone.Done()
	t := time.NewTicker(b.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.Probe()
		}
	}
}

// Probe attempts recovery now: it replays the spill head-first into the
// inner sink, stopping at the first failure. When the buffer drains the
// breaker closes. Probe reports whether the breaker is closed with an
// empty spill afterwards. The loop calls this on ProbeInterval; tests
// call it directly for determinism.
func (b *BreakerSink) Probe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.drainLocked()
}

// drainChunk bounds how many spilled events a drain replays per mutex
// hold: between chunks the drain yields b.mu so concurrent deliver
// calls spill behind the queue instead of stalling for the whole
// replay (a full spill can be thousands of events, each fsynced).
const drainChunk = 64

// drainLocked replays the spill head-first into the inner sink in
// bounded chunks, stopping at the first failure (which counts toward
// the trip threshold), and closes the breaker when the buffer empties.
// It reports whether the breaker is closed with an empty spill. At most
// one drain runs at a time: because the mutex is yielded between
// chunks, a second caller backs off instead of replaying the same head.
func (b *BreakerSink) drainLocked() bool {
	if b.draining {
		return false
	}
	b.draining = true
	defer func() { b.draining = false }()
	replayedNow := 0
	for len(b.spill) > 0 {
		for n := 0; n < drainChunk && len(b.spill) > 0; n++ {
			if err := b.forward(b.spill[0]); err != nil {
				// Still failing: keep the remainder for the next attempt.
				b.noteFailureLocked(err)
				b.depth.Store(int64(len(b.spill)))
				return false
			}
			b.fails = 0
			b.spill = b.spill[1:]
			b.replayed.Add(1)
			replayedNow++
		}
		if len(b.spill) > 0 {
			b.depth.Store(int64(len(b.spill)))
			b.mu.Unlock()
			b.mu.Lock()
		}
	}
	b.spill = nil
	b.depth.Store(0)
	if b.state == BreakerOpen {
		b.state = BreakerClosed
		b.cfg.Log.Info("store breaker closed", "replayed", replayedNow)
		b.reportHealth()
	}
	return b.state == BreakerClosed
}

// reportHealth feeds the breaker's condition into the health monitor.
// Spill overflow escalates to failing: history is being lost, so new
// sessions must be shed rather than measured unauditable.
func (b *BreakerSink) reportHealth() {
	if b.cfg.Health == nil {
		return
	}
	switch {
	case b.state == BreakerClosed && b.dropped.Load() == 0:
		b.cfg.Health.Set(StoreComponent, health.Ok, "")
	case b.state == BreakerClosed:
		// Recovered, but history was dropped while open: degraded until
		// an operator acknowledges (restarts) — the gap is permanent.
		b.cfg.Health.Set(StoreComponent, health.Degraded,
			fmt.Sprintf("breaker closed; %d events dropped during outage", b.dropped.Load()))
	case b.dropped.Load() > 0:
		b.cfg.Health.Set(StoreComponent, health.Failing,
			fmt.Sprintf("store breaker open, spill full (%d events dropped)", b.dropped.Load()))
	default:
		reason := "store breaker open; spilling to memory"
		if b.lastErr != nil {
			reason = fmt.Sprintf("store breaker open (%v); spilling to memory", b.lastErr)
		}
		b.cfg.Health.Set(StoreComponent, health.Degraded, reason)
	}
}

// BreakerStats is the breaker's operational snapshot.
type BreakerStats struct {
	State         string `json:"state"`
	Trips         int64  `json:"trips"`
	SpillDepth    int64  `json:"spill_depth"`
	SpillCapacity int    `json:"spill_capacity"`
	Spilled       int64  `json:"spilled_total"`
	Replayed      int64  `json:"replayed_total"`
	Dropped       int64  `json:"dropped_total"`
	WriteErrors   int64  `json:"write_errors_total"`
	LastError     string `json:"last_error,omitempty"`
}

// Stats snapshots the breaker's counters.
func (b *BreakerSink) Stats() BreakerStats {
	b.mu.Lock()
	state := b.state
	lastErr := ""
	if b.lastErr != nil {
		lastErr = b.lastErr.Error()
	}
	b.mu.Unlock()
	return BreakerStats{
		State:         state.String(),
		Trips:         b.trips.Load(),
		SpillDepth:    b.depth.Load(),
		SpillCapacity: b.cfg.SpillCapacity,
		Spilled:       b.spilled.Load(),
		Replayed:      b.replayed.Load(),
		Dropped:       b.dropped.Load(),
		WriteErrors:   b.writeErrors.Load(),
		LastError:     lastErr,
	}
}

// State returns the breaker's current position.
func (b *BreakerSink) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RegisterMetrics registers the breaker's metric families; each scrape
// mirrors a Stats snapshot.
func (b *BreakerSink) RegisterMetrics(o *obs.Registry) {
	open := o.Gauge("badabingd_store_breaker_open", "1 while the store circuit breaker is open (WAL writes failing, events spilling to memory).")
	trips := o.Counter("badabingd_store_breaker_trips_total", "Times the store circuit breaker tripped open.")
	depth := o.Gauge("badabingd_store_spill_depth", "Events currently buffered in the breaker's in-memory spill.")
	spilled := o.Counter("badabingd_store_spilled_total", "Events ever diverted to the in-memory spill.")
	replayed := o.Counter("badabingd_store_spill_replayed_total", "Spilled events replayed into the WAL after recovery.")
	dropped := o.Counter("badabingd_store_spill_dropped_total", "Events dropped because the spill buffer was full (permanent history loss).")
	o.OnScrape(func() {
		st := b.Stats()
		if st.State == "open" {
			open.SetInt(1)
		} else {
			open.SetInt(0)
		}
		trips.Set(float64(st.Trips))
		depth.SetInt(st.SpillDepth)
		spilled.Set(float64(st.Spilled))
		replayed.Set(float64(st.Replayed))
		dropped.Set(float64(st.Dropped))
	})
}

// Close stops the probe loop, makes a final replay attempt and closes
// the inner sink if it is closable. Events still spilled at close are
// counted as dropped — they never reached stable storage.
func (b *BreakerSink) Close() error {
	close(b.stop)
	b.loopDone.Wait()
	b.Probe()
	b.mu.Lock()
	if n := len(b.spill); n > 0 {
		b.dropped.Add(int64(n))
		b.cfg.Log.Warn("store breaker closing with unreplayed spill; events lost", "events", n)
		b.spill = nil
		b.depth.Store(0)
	}
	inner := b.inner
	b.mu.Unlock()
	if c, ok := inner.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
