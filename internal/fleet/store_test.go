package fleet

import (
	"context"
	"strings"
	"testing"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/estimate"
	"badabing/internal/store"
)

// TestRegistryEmitsStoreEvents: the registry's sink sees the full
// lifecycle — created, state transitions, published points and totals.
func TestRegistryEmitsStoreEvents(t *testing.T) {
	mem := store.NewMem()
	reg := NewRegistry(Config{MaxConcurrent: 1, Store: mem})
	reg.runOverride = func(ctx context.Context, s *Session, seed int64) error {
		snap := estimate.Snapshot{Kind: estimate.DefaultKind}
		snap.Total = badabing.Estimates{M: 10, Frequency: 0.25}
		snap.LastSlot = 99
		s.publish(snap, 100, SessionCounters{ProbesSent: 10, ProbesLost: 2, PacketsSent: 30, PacketsLost: 5, Experiments: 10})
		return nil
	}
	s, err := reg.Create(SessionConfig{Scenario: "idle", Slots: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, 10*time.Second); st != Done {
		t.Fatalf("state %v, want done", st)
	}
	reg.Close()

	events := mem.Events()
	joined := strings.Join(events, "\n")
	for _, want := range []string{
		"created " + s.ID,
		"state " + s.ID + " running",
		"point " + s.ID,
		"state " + s.ID + " done",
		"totals",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("sink missing %q in:\n%s", want, joined)
		}
	}
	hist, ok := mem.History(s.ID, time.Time{}, time.Time{})
	if !ok || len(hist) == 0 {
		t.Fatalf("no persisted history (ok=%v)", ok)
	}
	last := hist[len(hist)-1]
	if last.Frequency != 0.25 || last.ProbesSent != 10 {
		t.Errorf("persisted point %+v, want F=0.25 probes=10", last)
	}
	if tot := mem.Totals(); tot.SessionsCreated != 1 || tot.SessionsFinished != 1 {
		t.Errorf("persisted totals %+v", tot)
	}
	if mem.AfterClose() != 0 {
		t.Errorf("%d events arrived after close", mem.AfterClose())
	}
}

// TestDrainStoreOrdering is the regression test for the drain/store
// race: a session that outlives the drain deadline keeps publishing
// after Drain returns false, and the store must not close until that
// goroutine joins — no publish may ever hit a closed sink.
func TestDrainStoreOrdering(t *testing.T) {
	mem := store.NewMem()
	reg := NewRegistry(Config{MaxConcurrent: 1, Store: mem})
	release := make(chan struct{})
	reg.runOverride = func(ctx context.Context, s *Session, seed int64) error {
		<-ctx.Done() // drain cancels us...
		// ...but we ignore it for a while, publishing the whole time —
		// exactly the window the old Drain bug closed the store in.
		for i := 0; i < 20; i++ {
			var snap estimate.Snapshot
			snap.Total = badabing.Estimates{M: i + 1}
			snap.LastSlot = int64(i)
			s.publish(snap, int64(i), SessionCounters{Experiments: int64(i) + 1})
			time.Sleep(5 * time.Millisecond)
		}
		close(release)
		return ctx.Err()
	}
	s, err := reg.Create(SessionConfig{Scenario: "idle", Slots: 2000})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.State() != Running {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %v", s.State())
		}
		time.Sleep(time.Millisecond)
	}

	if clean := reg.Drain(20 * time.Millisecond); clean {
		t.Fatal("drain reported clean with a stuck session")
	}
	// Drain's deadline has passed but the session goroutine is still
	// publishing: the store must still be open.
	if mem.Closed() {
		t.Fatal("store closed while a session goroutine was still alive")
	}

	<-release
	deadline = time.Now().Add(5 * time.Second)
	for !mem.Closed() {
		if time.Now().After(deadline) {
			t.Fatal("store never closed after the last session joined")
		}
		time.Sleep(time.Millisecond)
	}
	if n := mem.AfterClose(); n != 0 {
		t.Fatalf("%d publishes hit the closed store", n)
	}
	// Every publish before the join landed.
	hist, _ := mem.History(s.ID, time.Time{}, time.Time{})
	if len(hist) == 0 {
		t.Fatal("post-cancel publishes were lost")
	}
	reg.Close() // idempotent: the waiter already closed the store
}

// TestRestoreLifecycle drives the full crash-recovery path through a
// real on-disk store: terminal sessions come back in their final
// state, Resume sessions re-run, and everything else is marked
// Recovered.
func TestRestoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Minute).Truncate(time.Second)
	pt := store.Point{
		At: base.Add(10 * time.Second).UnixNano(), SlotsDone: 500, M: 50,
		Frequency: 0.1, ProbesSent: 50, ProbesLost: 5, PacketsSent: 150,
		PacketsLost: 12, Experiments: 50,
	}
	// s0001 finished before the "crash".
	st.SessionCreated("s0001", base, []byte(`{"scenario":"idle","slots":1000}`), 11)
	st.SessionState("s0001", base, "running", false, "", 0, 11)
	st.SessionPoint("s0001", pt)
	st.SessionState("s0001", base.Add(20*time.Second), "done", true, "", 0, 11)
	// s0002 was running and opted into resume.
	st.SessionCreated("s0002", base, []byte(`{"scenario":"idle","slots":1000,"resume":true}`), 22)
	st.SessionState("s0002", base, "running", false, "", 0, 22)
	st.SessionPoint("s0002", pt)
	// s0003 was running with no resume opt-in.
	st.SessionCreated("s0003", base, []byte(`{"scenario":"idle","slots":1000}`), 33)
	st.SessionState("s0003", base, "running", false, "", 0, 33)
	// s0004 has an undecodable config: skipped.
	st.SessionCreated("s0004", base, []byte(`{{{`), 44)
	st.RegistryTotals(store.Totals{SessionsCreated: 4, ProbesSent: 100})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, info, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(Config{MaxConcurrent: 2, Store: st2})
	defer reg.Close()
	resumedSeed := make(chan int64, 1)
	reg.runOverride = func(ctx context.Context, s *Session, seed int64) error {
		resumedSeed <- seed
		return nil
	}
	sum := reg.Restore(info)
	if sum.Terminal != 1 || sum.Resumed != 1 || sum.Marked != 1 || sum.Skipped != 1 {
		t.Fatalf("summary %+v, want 1/1/1/1", sum)
	}

	// Terminal: final state, snapshot and counters rebuilt from the last
	// persisted point.
	s1, err := reg.Get("s0001")
	if err != nil {
		t.Fatal(err)
	}
	if s1.State() != Done {
		t.Errorf("s0001 state %v, want done", s1.State())
	}
	v := s1.View()
	if !v.Recovered || v.Snapshot.Total.Frequency != 0.1 || v.Counters.ProbesSent != 50 {
		t.Errorf("s0001 view not rebuilt from last point: %+v", v)
	}

	// Resumed: runs again with the pinned seed.
	s2, err := reg.Get("s0002")
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s2, 10*time.Second); st != Done {
		t.Fatalf("resumed session state %v, want done", st)
	}
	select {
	case seed := <-resumedSeed:
		if seed != 22 {
			t.Errorf("resumed seed %d, want the persisted 22", seed)
		}
	default:
		t.Error("resumed session never ran")
	}

	// Marked: terminal Recovered with the interruption as its error.
	s3, err := reg.Get("s0003")
	if err != nil {
		t.Fatal(err)
	}
	if s3.State() != Recovered {
		t.Errorf("s0003 state %v, want recovered", s3.State())
	}
	if err := s3.Err(); err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Errorf("s0003 err %v, want ErrInterrupted", err)
	}
	if !s3.State().Terminal() {
		t.Error("recovered must be a terminal state")
	}

	// Skipped: not registered, but its history is still queryable.
	if _, err := reg.Get("s0004"); err == nil {
		t.Error("undecodable session was registered")
	}

	// Totals were seeded: monotone across the restart.
	if tot := reg.Totals(); tot.SessionsCreated < 4 || tot.ProbesSent < 100 {
		t.Errorf("totals not restored: %+v", tot)
	}

	// New ids allocate above the recovered ones.
	s5, err := reg.Create(SessionConfig{Scenario: "idle", Slots: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if s5.ID != "s0005" {
		t.Errorf("next id %s, want s0005", s5.ID)
	}
	waitTerminal(t, s5, 10*time.Second)
}
