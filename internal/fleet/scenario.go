package fleet

import (
	"context"
	"fmt"
	"strings"
	"time"

	"badabing/internal/lab"
	"badabing/internal/probe"
	"badabing/internal/session"
	"badabing/internal/session/simtransport"
	"badabing/internal/session/wiretransport"
	"badabing/internal/simnet"
	"badabing/internal/wire"
)

// probeFlowID is the flow id reserved for measurement traffic on simulated
// paths (cross-traffic ids are allocated well above it, as in the lab).
const probeFlowID = 7

// transportBuilder constructs the measurement substrate for a session.
// Simulated scenarios build their path with seed+1 so cross-traffic
// randomness stays decoupled from the schedule's.
type transportBuilder func(cfg SessionConfig, seed int64, slot time.Duration) (session.Transport, error)

// scenarioOf maps a scenario name to a transport builder.
func scenarioOf(name string) (transportBuilder, error) {
	switch strings.ToLower(name) {
	case "idle":
		// A loss-free path: the testbed topology with no cross traffic.
		return simScenario(func(int64) (*simnet.Sim, *simnet.Dumbbell) {
			s := simnet.New()
			return s, simnet.NewDumbbell(s, simnet.DumbbellConfig{})
		}), nil
	case "tcp", "infinite-tcp":
		return simScenario(labScenario(lab.InfiniteTCP)), nil
	case "cbr":
		return simScenario(labScenario(lab.CBRUniform)), nil
	case "cbr-mixed":
		return simScenario(labScenario(lab.CBRMixed)), nil
	case "web":
		return simScenario(labScenario(lab.Web)), nil
	case "wire":
		return wireScenario, nil
	default:
		return nil, fmt.Errorf("fleet: unknown scenario %q", name)
	}
}

func labScenario(sc lab.Scenario) func(seed int64) (*simnet.Sim, *simnet.Dumbbell) {
	return func(seed int64) (*simnet.Sim, *simnet.Dumbbell) {
		p := lab.NewPath(sc, lab.RunConfig{Seed: seed})
		return p.Sim, p.D
	}
}

func simScenario(build func(seed int64) (*simnet.Sim, *simnet.Dumbbell)) transportBuilder {
	return func(cfg SessionConfig, seed int64, slot time.Duration) (session.Transport, error) {
		sim, d := build(seed + 1)
		return simtransport.New(sim, d, probeFlowID, probe.BadabingConfig{Slot: slot}), nil
	}
}

// wireScenario measures the round trip to a real UDP echo endpoint
// (cfg.Target, e.g. a wire.Reflector). The session id doubles as the wire
// experiment id; the schedule seed is pinned so sender and collector agree
// on the schedule.
func wireScenario(cfg SessionConfig, seed int64, slot time.Duration) (session.Transport, error) {
	return wiretransport.DialOptions(cfg.Target, wire.SenderConfig{
		ExpID:        uint64(seed),
		P:            cfg.P,
		N:            cfg.Slots,
		Slot:         slot,
		Improved:     !cfg.Basic,
		Seed:         seed,
		DisableBatch: cfg.DisableBatch,
	}, wiretransport.Options{
		Liveness: wire.LivenessConfig{Seed: seed},
	})
}

// runSession is the session body: it resolves the scenario to a transport
// and hands the whole measurement to the transport-neutral session engine,
// republishing each harvest step's update into the registry.
func runSession(ctx context.Context, s *Session, seed int64) error {
	cfg := s.cfg
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	s.setSeed(seed)

	slot := time.Duration(cfg.SlotMicros) * time.Microsecond
	build, err := scenarioOf(cfg.Scenario)
	if err != nil {
		return err
	}
	tr, err := build(cfg, seed, slot)
	if err != nil {
		return err
	}
	defer tr.Close()
	s.setTransport(tr)

	_, err = session.Run(ctx, tr, session.Config{
		P:                cfg.P,
		Slots:            cfg.Slots,
		Slot:             slot,
		Improved:         !cfg.Basic,
		ExtendedFraction: cfg.ExtendedFraction,
		ExtendedPairs:    cfg.ExtendedPairs,
		Estimator:        cfg.estimatorConfig(),
		Seed:             seed,
		WindowSlots:      cfg.WindowSlots,
		StepSlots:        cfg.StepSlots,
		StepDelay:        time.Duration(cfg.StepDelayMicros) * time.Microsecond,
	}, func(u session.Update) {
		c := SessionCounters{
			ProbesSent:  u.Counters.ProbesSent,
			ProbesLost:  u.Counters.ProbesLost,
			PacketsSent: u.Counters.PacketsSent,
			PacketsLost: u.Counters.PacketsLost,
			Experiments: u.Counters.Experiments,
			Skipped:     u.Counters.Skipped,
		}
		if wf, ok := tr.(writeFailureSource); ok {
			c.WriteFailures = wf.WriteFailures()
		}
		s.publish(u.Snapshot, u.SlotsDone, c)
	})
	return err
}

// writeFailureSource is implemented by transports that count probe-socket
// write errors (the wire transport); simulated paths have none.
type writeFailureSource interface{ WriteFailures() int64 }
