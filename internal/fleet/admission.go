package fleet

import (
	"math"
	"net"
	"sync"
	"time"
)

// RateLimiter is a per-client token bucket keyed by remote address: the
// create endpoint's defense against one client machine-gunning
// sessions. Each key accrues Rate tokens per second up to Burst; a
// create takes one token. All methods are safe for concurrent use.
type RateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets is a hard cap on the per-client map: at the cap an insert
// first prunes idle (full) buckets, then evicts the idlest remaining
// one, so a source-address scan can never grow the map without bound.
const maxBuckets = 4096

// NewRateLimiter builds a limiter granting rate tokens/second with the
// given burst (minimum 1). A nil *RateLimiter disables limiting.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*tokenBucket),
	}
}

// SetNow injects a clock for tests.
func (l *RateLimiter) SetNow(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// Allow takes one token from key's bucket. When the bucket is empty it
// reports false and how long until the next token accrues — the
// Retry-After hint.
func (l *RateLimiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, found := l.buckets[key]
	if !found {
		if len(l.buckets) >= maxBuckets {
			l.pruneLocked(now)
			for len(l.buckets) >= maxBuckets {
				l.evictIdlestLocked(now)
			}
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if l.rate <= 0 {
		return false, time.Hour
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// pruneLocked evicts buckets that have fully refilled (idle clients).
func (l *RateLimiter) pruneLocked(now time.Time) {
	for key, b := range l.buckets {
		if math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate) >= l.burst {
			delete(l.buckets, key)
		}
	}
}

// evictIdlestLocked removes the single bucket closest to fully refilled
// (ties broken by least-recently-touched) — the hard cap enforcement
// behind pruneLocked. Evicting the most-refilled bucket forgets the
// least about currently rate-limited clients.
func (l *RateLimiter) evictIdlestLocked(now time.Time) {
	var victim string
	best := -1.0
	var bestLast time.Time
	for key, b := range l.buckets {
		eff := math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		if victim == "" || eff > best || (eff == best && b.last.Before(bestLast)) {
			victim, best, bestLast = key, eff, b.last
		}
	}
	if victim != "" {
		delete(l.buckets, victim)
	}
}

// Clients returns how many client buckets are live (for tests/metrics).
func (l *RateLimiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// clientKey extracts the per-client limiter key from an HTTP remote
// address (the host without the ephemeral port).
func clientKey(remoteAddr string) string {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		return remoteAddr
	}
	return host
}
