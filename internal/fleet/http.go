package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"badabing/internal/health"
	"badabing/internal/obs"
	"badabing/internal/store"
)

// maxCreateBody bounds the create endpoint's request body: a
// SessionConfig is a few hundred bytes, so 1 MiB is generous and keeps a
// hostile client from buffering the daemon into the ground.
const maxCreateBody = 1 << 20

// HandlerOptions parameterizes the API's self-protection layer. The
// zero value disables all of it (the bare NewHandler behavior).
type HandlerOptions struct {
	// Health, when set, backs GET /readyz (deep readiness) and the
	// badabingd_health_* metric families; a failing daemon sheds
	// session creates with 503.
	Health *health.Monitor
	// MaxPending sheds creates with 503 + Retry-After once this many
	// sessions queue in Pending state — admitting more would only
	// starve pacing deadlines. 0 disables queue-depth shedding.
	MaxPending int
	// Limiter rate-limits creates per client address (429 +
	// Retry-After). nil disables.
	Limiter *RateLimiter
	// RetryAfter is the Retry-After hint on shed responses (503s and
	// registry-full 429s; rate-limit 429s compute their own from the
	// bucket). Default 5s.
	RetryAfter time.Duration
	// Obs is the observability registry backing GET /metrics. Every
	// subsystem's instruments registered into it are rendered by the
	// one exposition path; nil gets a private registry holding just
	// this handler's and the fleet registry's families.
	Obs *obs.Registry
}

// api is one handler instance: registry + options + self-instruments.
type api struct {
	reg  *Registry
	opts HandlerOptions

	shedNotReady obs.Counter
	shedQueue    obs.Counter
	shedRate     obs.Counter

	httpRequests obs.CounterVec
	httpLatency  obs.HistogramVec
	renderTime   obs.Histogram
}

// NewHandler returns the daemon's HTTP API for a registry:
//
//	POST   /v1/sessions           create a session (JSON SessionConfig body)
//	GET    /v1/sessions           list sessions
//	GET    /v1/sessions/{id}      one session, config + counters + snapshot
//	GET    /v1/sessions/{id}/snapshot   just the live estimate snapshot
//	GET    /v1/sessions/{id}/history    persisted F̂/D̂/loss-rate series (?from=&to=)
//	POST   /v1/sessions/{id}/stop cancel a session
//	DELETE /v1/sessions/{id}      remove a terminal session
//	GET    /v1/store/stats        durable-archive operational stats
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               liveness
//	GET    /readyz                deep readiness (health state machine)
//
// All non-metrics responses are JSON; errors are {"error": "..."}.
// Status codes are uniform across routes: an unknown session id on any
// /v1/sessions/{id}/... sub-resource is 404; a malformed payload or
// query parameter is 400; unmatched paths are a JSON 404. Malformed or
// unknown-field JSON and invalid configs are client errors (400), never
// 500s; oversized bodies are cut off at 1 MiB (413); a draining
// registry answers 503. Shed responses (503 not-ready/queue-full/
// draining, 429 rate-limited/registry-full) always carry Retry-After.
func NewHandler(r *Registry) http.Handler {
	return NewHandlerOpts(r, HandlerOptions{})
}

// NewHandlerOpts is NewHandler with the self-protection layer
// configured (deep readiness, queue-depth shedding and per-client rate
// limiting on session creates) and an explicit observability registry.
// The fleet registry's families, the health monitor's (when set), the
// admission shed counters and the daemon's HTTP self-metrics are all
// registered here; GET /metrics renders opts.Obs and nothing else.
func NewHandlerOpts(r *Registry, opts HandlerOptions) http.Handler {
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 5 * time.Second
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	a := &api{reg: r, opts: opts}
	r.RegisterMetrics(opts.Obs)
	if opts.Health != nil {
		opts.Health.RegisterMetrics(opts.Obs)
	}
	shed := opts.Obs.CounterVec("badabingd_admission_shed_total",
		"Session creates shed by the overload-protection layer, by reason.", "reason")
	a.shedNotReady = shed.With("not_ready")
	a.shedQueue = shed.With("queue_full")
	a.shedRate = shed.With("rate_limited")
	a.httpRequests = opts.Obs.CounterVec("badabingd_http_requests_total",
		"API requests served, by route and status class.", "route", "code")
	a.httpLatency = opts.Obs.HistogramVec("badabingd_http_request_seconds",
		"API request handling latency, by route.", nil, "route")
	a.renderTime = opts.Obs.Histogram("badabingd_metrics_render_seconds",
		"Time spent rendering the /metrics exposition.", nil)

	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, a.instrument(route, h))
	}

	// Every unmatched path falls through here: the API's 404s are JSON
	// on every route, not just the ones with a {id} lookup.
	handle("/", "other", func(w http.ResponseWriter, req *http.Request) {
		writeError(w, http.StatusNotFound, errors.New("not found"))
	})

	handle("POST /v1/sessions", "create", func(w http.ResponseWriter, req *http.Request) {
		if !a.admit(w, req) {
			return
		}
		req.Body = http.MaxBytesReader(w, req.Body, maxCreateBody)
		var cfg SessionConfig
		dec := json.NewDecoder(req.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, err)
				return
			}
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s, err := r.Create(cfg)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrRegistryFull):
				// The registry is at MaxSessions: the client can retry
				// once something finishes or is deleted.
				status = http.StatusTooManyRequests
				setRetryAfter(w, opts.RetryAfter)
			case errors.Is(err, ErrClosed):
				// Draining: this daemon is going away.
				status = http.StatusServiceUnavailable
				setRetryAfter(w, opts.RetryAfter)
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusCreated, s.View())
	})

	handle("GET /v1/sessions", "list", func(w http.ResponseWriter, req *http.Request) {
		sessions := r.List()
		views := make([]View, len(sessions))
		for i, s := range sessions {
			views[i] = s.View()
		}
		writeJSON(w, http.StatusOK, map[string]any{"sessions": views})
	})

	handle("GET /v1/sessions/{id}", "get", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Get(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, s.View())
	})

	handle("GET /v1/sessions/{id}/snapshot", "snapshot", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Get(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id":       s.ID,
			"state":    s.State(),
			"snapshot": s.Snapshot(),
		})
	})

	handle("GET /v1/sessions/{id}/history", "history", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Get(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		from, err := parseTimeParam(req.URL.Query().Get("from"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		to, err := parseTimeParam(req.URL.Query().Get("to"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp := historyResponse{ID: s.ID, Points: []historyPoint{}}
		if hs := r.HistorySourceOf(); hs != nil {
			resp.Store = true
			points, _ := hs.History(s.ID, from, to)
			for _, p := range points {
				resp.Points = append(resp.Points, historyPoint{
					Point:    p,
					At:       time.Unix(0, p.At).UTC(),
					LossRate: p.LossRate(),
				})
			}
		}
		resp.Count = len(resp.Points)
		writeJSON(w, http.StatusOK, resp)
	})

	handle("GET /v1/store/stats", "store_stats", func(w http.ResponseWriter, req *http.Request) {
		if ss := r.StatsSourceOf(); ss != nil {
			writeJSON(w, http.StatusOK, storeStatsResponse{Enabled: true, Stats: ptr(ss.Stats())})
			return
		}
		writeJSON(w, http.StatusOK, storeStatsResponse{Enabled: false})
	})

	handle("POST /v1/sessions/{id}/stop", "stop", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Stop(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, s.View())
	})

	handle("DELETE /v1/sessions/{id}", "delete", func(w http.ResponseWriter, req *http.Request) {
		err := r.Delete(req.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNotTerminal):
			writeError(w, http.StatusConflict, err)
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})

	handle("GET /metrics", "metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		start := time.Now()
		opts.Obs.Write(w)
		// Observed after the render, so each scrape reports the cost of
		// the previous one — standard self-metric lag.
		a.renderTime.Observe(time.Since(start).Seconds())
	})

	handle("GET /healthz", "healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	handle("GET /readyz", "readyz", a.readyz)

	return mux
}

// statusRecorder captures the status code a handler writes so the
// instrumentation middleware can label the request counter by class.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// codeClasses are the status-class label values, indexed by code/100.
var codeClasses = [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}

// instrument wraps a handler with the daemon's HTTP self-metrics: a
// per-route latency histogram and a per-route, per-status-class request
// counter. The per-route children are bound once here, at registration,
// so the per-request cost is two atomic updates — no label formatting.
func (a *api) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	latency := a.httpLatency.With(route)
	var byClass [6]obs.Counter
	for i := 1; i < len(codeClasses); i++ {
		byClass[i] = a.httpRequests.With(route, codeClasses[i])
	}
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		rec := statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(&rec, req)
		latency.Observe(time.Since(start).Seconds())
		if class := rec.status / 100; class >= 1 && class < len(byClass) {
			byClass[class].Inc()
		}
	}
}

// admit applies the create endpoint's shedding policy, in order of
// severity: a failing daemon (503), a pending queue already past its
// budget (503), then the per-client rate limit (429). Shed responses
// always carry Retry-After so well-behaved clients back off instead of
// hammering.
func (a *api) admit(w http.ResponseWriter, req *http.Request) bool {
	if a.opts.Health != nil && a.opts.Health.State() == health.Failing {
		a.shedNotReady.Inc()
		setRetryAfter(w, a.opts.RetryAfter)
		writeError(w, http.StatusServiceUnavailable, errors.New("fleet: daemon failing; not accepting sessions"))
		return false
	}
	if a.opts.MaxPending > 0 {
		if pending := a.reg.StateCounts()[Pending]; pending >= a.opts.MaxPending {
			a.shedQueue.Inc()
			setRetryAfter(w, a.opts.RetryAfter)
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("fleet: %d sessions already pending; retry later", pending))
			return false
		}
	}
	if a.opts.Limiter != nil {
		if ok, wait := a.opts.Limiter.Allow(clientKey(req.RemoteAddr)); !ok {
			a.shedRate.Inc()
			setRetryAfter(w, wait)
			writeError(w, http.StatusTooManyRequests, errors.New("fleet: per-client session create rate exceeded"))
			return false
		}
	}
	return true
}

// readyzResponse is the deep-readiness body: the aggregate state, the
// per-component probes behind it, and the shedding inputs.
type readyzResponse struct {
	Status   string           `json:"status"`
	Draining bool             `json:"draining,omitempty"`
	Pending  int              `json:"pending"`
	Health   *health.Snapshot `json:"health,omitempty"`
}

// readyz reports deep readiness: 200 while the daemon can accept
// sessions (including degraded — impaired but serving), 503 once it is
// failing or draining. Load balancers route on the code; operators read
// the component detail in the body.
func (a *api) readyz(w http.ResponseWriter, req *http.Request) {
	resp := readyzResponse{Status: health.Ok.String(), Pending: a.reg.StateCounts()[Pending]}
	if a.opts.Health != nil {
		snap := a.opts.Health.Snapshot()
		resp.Status = snap.State.String()
		resp.Health = &snap
	}
	status := http.StatusOK
	if resp.Status == health.Failing.String() {
		status = http.StatusServiceUnavailable
	}
	if a.reg.Draining() {
		resp.Draining = true
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	if status != http.StatusOK {
		setRetryAfter(w, a.opts.RetryAfter)
	}
	writeJSON(w, status, resp)
}

// setRetryAfter sets the Retry-After hint, always at least 1 second —
// the header's resolution.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// historyResponse is the history endpoint's JSON shape. Field order is
// fixed, so identical persisted series encode byte-for-byte identically
// across daemon restarts.
type historyResponse struct {
	ID     string         `json:"id"`
	Store  bool           `json:"store"`
	Count  int            `json:"count"`
	Points []historyPoint `json:"points"`
}

type historyPoint struct {
	store.Point
	At       time.Time `json:"at"`
	LossRate float64   `json:"loss_rate"`
}

type storeStatsResponse struct {
	Enabled bool         `json:"enabled"`
	Stats   *store.Stats `json:"stats,omitempty"`
}

func ptr[T any](v T) *T { return &v }

// parseTimeParam accepts RFC3339(Nano) or integer Unix seconds; empty
// means an open bound.
func parseTimeParam(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(secs, 0), nil
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("fleet: bad time %q (want RFC3339 or unix seconds)", s)
	}
	return t, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
