package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"badabing/internal/health"
	"badabing/internal/store"
)

// maxCreateBody bounds the create endpoint's request body: a
// SessionConfig is a few hundred bytes, so 1 MiB is generous and keeps a
// hostile client from buffering the daemon into the ground.
const maxCreateBody = 1 << 20

// HandlerOptions parameterizes the API's self-protection layer. The
// zero value disables all of it (the bare NewHandler behavior).
type HandlerOptions struct {
	// Health, when set, backs GET /readyz (deep readiness) and the
	// badabingd_health_* metric families; a failing daemon sheds
	// session creates with 503.
	Health *health.Monitor
	// MaxPending sheds creates with 503 + Retry-After once this many
	// sessions queue in Pending state — admitting more would only
	// starve pacing deadlines. 0 disables queue-depth shedding.
	MaxPending int
	// Limiter rate-limits creates per client address (429 +
	// Retry-After). nil disables.
	Limiter *RateLimiter
	// RetryAfter is the Retry-After hint on shed responses (503s and
	// registry-full 429s; rate-limit 429s compute their own from the
	// bucket). Default 5s.
	RetryAfter time.Duration
}

// api is one handler instance: registry + options + shed counters.
type api struct {
	reg  *Registry
	opts HandlerOptions

	shedNotReady atomic.Int64
	shedQueue    atomic.Int64
	shedRate     atomic.Int64
}

// NewHandler returns the daemon's HTTP API for a registry:
//
//	POST   /v1/sessions           create a session (JSON SessionConfig body)
//	GET    /v1/sessions           list sessions
//	GET    /v1/sessions/{id}      one session, config + counters + snapshot
//	GET    /v1/sessions/{id}/snapshot   just the live estimate snapshot
//	GET    /v1/sessions/{id}/history    persisted F̂/D̂/loss-rate series (?from=&to=)
//	POST   /v1/sessions/{id}/stop cancel a session
//	DELETE /v1/sessions/{id}      remove a terminal session
//	GET    /v1/store/stats        durable-archive operational stats
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               liveness
//	GET    /readyz                deep readiness (health state machine)
//
// All non-metrics responses are JSON; errors are {"error": "..."}.
// Status codes are uniform across routes: an unknown session id on any
// /v1/sessions/{id}/... sub-resource is 404; a malformed payload or
// query parameter is 400; unmatched paths are a JSON 404. Malformed or
// unknown-field JSON and invalid configs are client errors (400), never
// 500s; oversized bodies are cut off at 1 MiB (413); a draining
// registry answers 503. Shed responses (503 not-ready/queue-full/
// draining, 429 rate-limited/registry-full) always carry Retry-After.
//
// extra metric sources (e.g. a co-hosted reflector's counters) are
// appended to the /metrics exposition.
func NewHandler(r *Registry, extra ...func(io.Writer)) http.Handler {
	return NewHandlerOpts(r, HandlerOptions{}, extra...)
}

// NewHandlerOpts is NewHandler with the self-protection layer
// configured: deep readiness, queue-depth shedding and per-client rate
// limiting on session creates.
func NewHandlerOpts(r *Registry, opts HandlerOptions, extra ...func(io.Writer)) http.Handler {
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 5 * time.Second
	}
	a := &api{reg: r, opts: opts}
	mux := http.NewServeMux()

	// Every unmatched path falls through here: the API's 404s are JSON
	// on every route, not just the ones with a {id} lookup.
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		writeError(w, http.StatusNotFound, errors.New("not found"))
	})

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, req *http.Request) {
		if !a.admit(w, req) {
			return
		}
		req.Body = http.MaxBytesReader(w, req.Body, maxCreateBody)
		var cfg SessionConfig
		dec := json.NewDecoder(req.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, err)
				return
			}
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s, err := r.Create(cfg)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrRegistryFull):
				// The registry is at MaxSessions: the client can retry
				// once something finishes or is deleted.
				status = http.StatusTooManyRequests
				setRetryAfter(w, opts.RetryAfter)
			case errors.Is(err, ErrClosed):
				// Draining: this daemon is going away.
				status = http.StatusServiceUnavailable
				setRetryAfter(w, opts.RetryAfter)
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusCreated, s.View())
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, req *http.Request) {
		sessions := r.List()
		views := make([]View, len(sessions))
		for i, s := range sessions {
			views[i] = s.View()
		}
		writeJSON(w, http.StatusOK, map[string]any{"sessions": views})
	})

	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Get(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, s.View())
	})

	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Get(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id":       s.ID,
			"state":    s.State(),
			"snapshot": s.Snapshot(),
		})
	})

	mux.HandleFunc("GET /v1/sessions/{id}/history", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Get(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		from, err := parseTimeParam(req.URL.Query().Get("from"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		to, err := parseTimeParam(req.URL.Query().Get("to"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp := historyResponse{ID: s.ID, Points: []historyPoint{}}
		if hs := r.HistorySourceOf(); hs != nil {
			resp.Store = true
			points, _ := hs.History(s.ID, from, to)
			for _, p := range points {
				resp.Points = append(resp.Points, historyPoint{
					Point:    p,
					At:       time.Unix(0, p.At).UTC(),
					LossRate: p.LossRate(),
				})
			}
		}
		resp.Count = len(resp.Points)
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /v1/store/stats", func(w http.ResponseWriter, req *http.Request) {
		if ss := r.StatsSourceOf(); ss != nil {
			writeJSON(w, http.StatusOK, storeStatsResponse{Enabled: true, Stats: ptr(ss.Stats())})
			return
		}
		writeJSON(w, http.StatusOK, storeStatsResponse{Enabled: false})
	})

	mux.HandleFunc("POST /v1/sessions/{id}/stop", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Stop(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, s.View())
	})

	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, req *http.Request) {
		err := r.Delete(req.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNotTerminal):
			writeError(w, http.StatusConflict, err)
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, r)
		if opts.Health != nil {
			opts.Health.WriteMetrics(w)
		}
		if opts.Health != nil || opts.Limiter != nil || opts.MaxPending > 0 {
			a.writeShedMetrics(w)
		}
		for _, f := range extra {
			f(w)
		}
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /readyz", a.readyz)

	return mux
}

// admit applies the create endpoint's shedding policy, in order of
// severity: a failing daemon (503), a pending queue already past its
// budget (503), then the per-client rate limit (429). Shed responses
// always carry Retry-After so well-behaved clients back off instead of
// hammering.
func (a *api) admit(w http.ResponseWriter, req *http.Request) bool {
	if a.opts.Health != nil && a.opts.Health.State() == health.Failing {
		a.shedNotReady.Add(1)
		setRetryAfter(w, a.opts.RetryAfter)
		writeError(w, http.StatusServiceUnavailable, errors.New("fleet: daemon failing; not accepting sessions"))
		return false
	}
	if a.opts.MaxPending > 0 {
		if pending := a.reg.StateCounts()[Pending]; pending >= a.opts.MaxPending {
			a.shedQueue.Add(1)
			setRetryAfter(w, a.opts.RetryAfter)
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("fleet: %d sessions already pending; retry later", pending))
			return false
		}
	}
	if a.opts.Limiter != nil {
		if ok, wait := a.opts.Limiter.Allow(clientKey(req.RemoteAddr)); !ok {
			a.shedRate.Add(1)
			setRetryAfter(w, wait)
			writeError(w, http.StatusTooManyRequests, errors.New("fleet: per-client session create rate exceeded"))
			return false
		}
	}
	return true
}

// readyzResponse is the deep-readiness body: the aggregate state, the
// per-component probes behind it, and the shedding inputs.
type readyzResponse struct {
	Status   string           `json:"status"`
	Draining bool             `json:"draining,omitempty"`
	Pending  int              `json:"pending"`
	Health   *health.Snapshot `json:"health,omitempty"`
}

// readyz reports deep readiness: 200 while the daemon can accept
// sessions (including degraded — impaired but serving), 503 once it is
// failing or draining. Load balancers route on the code; operators read
// the component detail in the body.
func (a *api) readyz(w http.ResponseWriter, req *http.Request) {
	resp := readyzResponse{Status: health.Ok.String(), Pending: a.reg.StateCounts()[Pending]}
	if a.opts.Health != nil {
		snap := a.opts.Health.Snapshot()
		resp.Status = snap.State.String()
		resp.Health = &snap
	}
	status := http.StatusOK
	if resp.Status == health.Failing.String() {
		status = http.StatusServiceUnavailable
	}
	if a.reg.Draining() {
		resp.Draining = true
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	if status != http.StatusOK {
		setRetryAfter(w, a.opts.RetryAfter)
	}
	writeJSON(w, status, resp)
}

// writeShedMetrics renders the admission counters.
func (a *api) writeShedMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP badabingd_admission_shed_total Session creates shed by the overload-protection layer, by reason.\n")
	fmt.Fprintf(w, "# TYPE badabingd_admission_shed_total counter\n")
	fmt.Fprintf(w, "badabingd_admission_shed_total{reason=\"not_ready\"} %d\n", a.shedNotReady.Load())
	fmt.Fprintf(w, "badabingd_admission_shed_total{reason=\"queue_full\"} %d\n", a.shedQueue.Load())
	fmt.Fprintf(w, "badabingd_admission_shed_total{reason=\"rate_limited\"} %d\n", a.shedRate.Load())
}

// setRetryAfter sets the Retry-After hint, always at least 1 second —
// the header's resolution.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// historyResponse is the history endpoint's JSON shape. Field order is
// fixed, so identical persisted series encode byte-for-byte identically
// across daemon restarts.
type historyResponse struct {
	ID     string         `json:"id"`
	Store  bool           `json:"store"`
	Count  int            `json:"count"`
	Points []historyPoint `json:"points"`
}

type historyPoint struct {
	store.Point
	At       time.Time `json:"at"`
	LossRate float64   `json:"loss_rate"`
}

type storeStatsResponse struct {
	Enabled bool         `json:"enabled"`
	Stats   *store.Stats `json:"stats,omitempty"`
}

func ptr[T any](v T) *T { return &v }

// parseTimeParam accepts RFC3339(Nano) or integer Unix seconds; empty
// means an open bound.
func parseTimeParam(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(secs, 0), nil
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("fleet: bad time %q (want RFC3339 or unix seconds)", s)
	}
	return t, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
