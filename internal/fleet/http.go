package fleet

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxCreateBody bounds the create endpoint's request body: a
// SessionConfig is a few hundred bytes, so 1 MiB is generous and keeps a
// hostile client from buffering the daemon into the ground.
const maxCreateBody = 1 << 20

// NewHandler returns the daemon's HTTP API for a registry:
//
//	POST   /v1/sessions           create a session (JSON SessionConfig body)
//	GET    /v1/sessions           list sessions
//	GET    /v1/sessions/{id}      one session, config + counters + snapshot
//	GET    /v1/sessions/{id}/snapshot   just the live estimate snapshot
//	POST   /v1/sessions/{id}/stop cancel a session
//	DELETE /v1/sessions/{id}      remove a terminal session
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               liveness
//
// All non-metrics responses are JSON; errors are {"error": "..."}.
// Malformed or unknown-field JSON and invalid configs are client errors
// (400), never 500s; oversized bodies are cut off at 1 MiB (413); a
// draining registry answers 503.
//
// extra metric sources (e.g. a co-hosted reflector's counters) are
// appended to the /metrics exposition.
func NewHandler(r *Registry, extra ...func(io.Writer)) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, req *http.Request) {
		req.Body = http.MaxBytesReader(w, req.Body, maxCreateBody)
		var cfg SessionConfig
		dec := json.NewDecoder(req.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, err)
				return
			}
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s, err := r.Create(cfg)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrRegistryFull):
				status = http.StatusTooManyRequests
			case errors.Is(err, ErrClosed):
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusCreated, s.View())
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, req *http.Request) {
		sessions := r.List()
		views := make([]View, len(sessions))
		for i, s := range sessions {
			views[i] = s.View()
		}
		writeJSON(w, http.StatusOK, map[string]any{"sessions": views})
	})

	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Get(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, s.View())
	})

	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Get(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id":       s.ID,
			"state":    s.State(),
			"snapshot": s.Snapshot(),
		})
	})

	mux.HandleFunc("POST /v1/sessions/{id}/stop", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Stop(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, s.View())
	})

	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, req *http.Request) {
		err := r.Delete(req.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNotTerminal):
			writeError(w, http.StatusConflict, err)
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, r)
		for _, f := range extra {
			f(w)
		}
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
