package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"badabing/internal/store"
)

// maxCreateBody bounds the create endpoint's request body: a
// SessionConfig is a few hundred bytes, so 1 MiB is generous and keeps a
// hostile client from buffering the daemon into the ground.
const maxCreateBody = 1 << 20

// NewHandler returns the daemon's HTTP API for a registry:
//
//	POST   /v1/sessions           create a session (JSON SessionConfig body)
//	GET    /v1/sessions           list sessions
//	GET    /v1/sessions/{id}      one session, config + counters + snapshot
//	GET    /v1/sessions/{id}/snapshot   just the live estimate snapshot
//	GET    /v1/sessions/{id}/history    persisted F̂/D̂/loss-rate series (?from=&to=)
//	POST   /v1/sessions/{id}/stop cancel a session
//	DELETE /v1/sessions/{id}      remove a terminal session
//	GET    /v1/store/stats        durable-archive operational stats
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               liveness
//
// All non-metrics responses are JSON; errors are {"error": "..."}.
// Status codes are uniform across routes: an unknown session id on any
// /v1/sessions/{id}/... sub-resource is 404; a malformed payload or
// query parameter is 400; unmatched paths are a JSON 404. Malformed or
// unknown-field JSON and invalid configs are client errors (400), never
// 500s; oversized bodies are cut off at 1 MiB (413); a draining
// registry answers 503.
//
// extra metric sources (e.g. a co-hosted reflector's counters) are
// appended to the /metrics exposition.
func NewHandler(r *Registry, extra ...func(io.Writer)) http.Handler {
	mux := http.NewServeMux()

	// Every unmatched path falls through here: the API's 404s are JSON
	// on every route, not just the ones with a {id} lookup.
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		writeError(w, http.StatusNotFound, errors.New("not found"))
	})

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, req *http.Request) {
		req.Body = http.MaxBytesReader(w, req.Body, maxCreateBody)
		var cfg SessionConfig
		dec := json.NewDecoder(req.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, err)
				return
			}
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s, err := r.Create(cfg)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrRegistryFull):
				status = http.StatusTooManyRequests
			case errors.Is(err, ErrClosed):
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusCreated, s.View())
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, req *http.Request) {
		sessions := r.List()
		views := make([]View, len(sessions))
		for i, s := range sessions {
			views[i] = s.View()
		}
		writeJSON(w, http.StatusOK, map[string]any{"sessions": views})
	})

	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Get(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, s.View())
	})

	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Get(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id":       s.ID,
			"state":    s.State(),
			"snapshot": s.Snapshot(),
		})
	})

	mux.HandleFunc("GET /v1/sessions/{id}/history", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Get(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		from, err := parseTimeParam(req.URL.Query().Get("from"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		to, err := parseTimeParam(req.URL.Query().Get("to"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp := historyResponse{ID: s.ID, Points: []historyPoint{}}
		if hs := r.HistorySourceOf(); hs != nil {
			resp.Store = true
			points, _ := hs.History(s.ID, from, to)
			for _, p := range points {
				resp.Points = append(resp.Points, historyPoint{
					Point:    p,
					At:       time.Unix(0, p.At).UTC(),
					LossRate: p.LossRate(),
				})
			}
		}
		resp.Count = len(resp.Points)
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /v1/store/stats", func(w http.ResponseWriter, req *http.Request) {
		if ss := r.StatsSourceOf(); ss != nil {
			writeJSON(w, http.StatusOK, storeStatsResponse{Enabled: true, Stats: ptr(ss.Stats())})
			return
		}
		writeJSON(w, http.StatusOK, storeStatsResponse{Enabled: false})
	})

	mux.HandleFunc("POST /v1/sessions/{id}/stop", func(w http.ResponseWriter, req *http.Request) {
		s, err := r.Stop(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, s.View())
	})

	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, req *http.Request) {
		err := r.Delete(req.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNotTerminal):
			writeError(w, http.StatusConflict, err)
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, r)
		for _, f := range extra {
			f(w)
		}
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	return mux
}

// historyResponse is the history endpoint's JSON shape. Field order is
// fixed, so identical persisted series encode byte-for-byte identically
// across daemon restarts.
type historyResponse struct {
	ID     string         `json:"id"`
	Store  bool           `json:"store"`
	Count  int            `json:"count"`
	Points []historyPoint `json:"points"`
}

type historyPoint struct {
	store.Point
	At       time.Time `json:"at"`
	LossRate float64   `json:"loss_rate"`
}

type storeStatsResponse struct {
	Enabled bool         `json:"enabled"`
	Stats   *store.Stats `json:"stats,omitempty"`
}

func ptr[T any](v T) *T { return &v }

// parseTimeParam accepts RFC3339(Nano) or integer Unix seconds; empty
// means an open bound.
func parseTimeParam(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(secs, 0), nil
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("fleet: bad time %q (want RFC3339 or unix seconds)", s)
	}
	return t, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
