package fleet

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/session/wiretransport"
	"badabing/internal/wire"
)

// TestWireSessionEndToEnd drives the daemon's "wire" scenario over a real
// UDP loopback path through the HTTP API: a reflector echoes the probe
// stream, mid-run snapshots appear while the session paces, and the final
// snapshot is exactly what batch estimation over the collector's
// observation log reports.
func TestWireSessionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("paces real probes for ~3s")
	}

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	refl := wire.NewReflector(pc)
	go refl.Run()
	defer refl.Close()

	reg := NewRegistry(Config{MaxConcurrent: 1})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	const (
		seed       = 77
		slots      = 200
		slotMicros = 10_000
	)
	body := fmt.Sprintf(
		`{"scenario":"wire","target":%q,"p":0.3,"slots":%d,"slot_micros":%d,"step_slots":50,"seed":%d}`,
		refl.Addr().String(), slots, slotMicros, seed)
	var created View
	if code := postJSON(t, srv.URL+"/v1/sessions", body, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}

	// Poll the API while the session paces; a live wire session must
	// publish snapshots mid-run, not only at the end.
	var sawMidRun bool
	deadline := time.Now().Add(30 * time.Second)
	var v View
	for time.Now().Before(deadline) {
		if code := getJSON(t, srv.URL+"/v1/sessions/"+created.ID, &v); code != http.StatusOK {
			t.Fatalf("get: status %d", code)
		}
		if v.State == Running && v.SlotsDone > 0 && v.SlotsDone < slots {
			sawMidRun = true
		}
		if v.State.Terminal() {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if v.State != Done {
		t.Fatalf("session ended %v (err %q)", v.State, v.Error)
	}
	if !sawMidRun {
		t.Error("no mid-run snapshot observed over the HTTP API")
	}
	if v.SlotsDone != slots {
		t.Errorf("SlotsDone = %d, want %d", v.SlotsDone, slots)
	}
	if v.Counters.ProbesSent == 0 || v.Counters.PacketsSent == 0 {
		t.Fatalf("no probes accounted: %+v", v.Counters)
	}
	if got := refl.Packets(); got == 0 {
		t.Fatal("reflector saw no packets")
	}

	// The final snapshot must match batch estimation over the very same
	// observation log the collector kept — one marking pipeline, two
	// consumers.
	s, err := reg.Get(created.ID)
	if err != nil {
		t.Fatal(err)
	}
	wt, ok := s.transport().(*wiretransport.Transport)
	if !ok {
		t.Fatalf("session transport is %T, want *wiretransport.Transport", s.transport())
	}
	slot := time.Duration(slotMicros) * time.Microsecond
	marker := badabing.RecommendedMarker(0.3, slot)
	counts, _, err := wt.Collector().Snapshot(wt.ExpID(), marker)
	if err != nil {
		t.Fatalf("collector snapshot: %v", err)
	}
	acc := &badabing.Accumulator{Slot: slot}
	acc.Merge(counts)
	want := badabing.EstimatesOf(acc)
	if got := v.Snapshot.Total; got != want {
		t.Fatalf("final snapshot diverged from the collector's batch estimate:\n got %+v\nwant %+v", got, want)
	}
	if want.M == 0 {
		t.Fatal("batch comparison vacuous: no experiments")
	}

	// The aggregate /metrics counters must have absorbed the session.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	samples := parsePrometheus(t, buf.String())
	if samples["badabingd_probes_sent_total"] != float64(v.Counters.ProbesSent) {
		t.Errorf("probes_sent_total = %v, want %d", samples["badabingd_probes_sent_total"], v.Counters.ProbesSent)
	}
	if samples["badabingd_sessions_finished_total"] != 1 {
		t.Errorf("sessions_finished_total = %v, want 1", samples["badabingd_sessions_finished_total"])
	}
}
