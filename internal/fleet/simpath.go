package fleet

import (
	"context"
	"fmt"
	"strings"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/lab"
	"badabing/internal/probe"
	"badabing/internal/simnet"
)

// probeFlowID is the flow id reserved for measurement traffic on simulated
// paths (cross-traffic ids are allocated well above it, as in the lab).
const probeFlowID = 7

// settle is how far behind virtual "now" a probe must be before its
// observation is considered stable enough to harvest: it bounds path
// delay (50 ms propagation + ≤100 ms queue on the testbed topology) plus
// the marker's τ look-ahead with a wide margin.
const settle = time.Second

// pathBuilder constructs a simulated path for a session.
type pathBuilder func(seed int64) (*simnet.Sim, *simnet.Dumbbell)

// scenarioOf maps a scenario name to a path builder.
func scenarioOf(name string) (pathBuilder, error) {
	switch strings.ToLower(name) {
	case "idle":
		// A loss-free path: the testbed topology with no cross traffic.
		return func(int64) (*simnet.Sim, *simnet.Dumbbell) {
			s := simnet.New()
			return s, simnet.NewDumbbell(s, simnet.DumbbellConfig{})
		}, nil
	case "tcp", "infinite-tcp":
		return labScenario(lab.InfiniteTCP), nil
	case "cbr":
		return labScenario(lab.CBRUniform), nil
	case "cbr-mixed":
		return labScenario(lab.CBRMixed), nil
	case "web":
		return labScenario(lab.Web), nil
	default:
		return nil, fmt.Errorf("fleet: unknown scenario %q", name)
	}
}

func labScenario(sc lab.Scenario) pathBuilder {
	return func(seed int64) (*simnet.Sim, *simnet.Dumbbell) {
		p := lab.NewPath(sc, lab.RunConfig{Seed: seed})
		return p.Sim, p.D
	}
}

// runSimPath is the session body for simulated paths: it owns a
// discrete-event simulator, paces it forward in harvest steps, and after
// each step re-marks the settled observations, feeds newly completed
// experiments to the streaming estimator and publishes a snapshot.
//
// Mid-run snapshots are provisional: marking is retrospective (the
// baseline delay and loss-time delay estimates refine as data arrives),
// so an outcome's congestion bits are frozen when it is fed. The final
// snapshot of a completed session is rebuilt from the full observation
// set and is exactly what the batch pipeline would report.
func runSimPath(ctx context.Context, s *Session, seed int64) error {
	cfg := s.cfg
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	s.setSeed(seed)

	slot := time.Duration(cfg.SlotMicros) * time.Microsecond
	plans, err := badabing.Schedule(cfg.scheduleConfig(seed))
	if err != nil {
		return err
	}
	build, err := scenarioOf(cfg.Scenario)
	if err != nil {
		return err
	}
	marker := badabing.RecommendedMarker(cfg.P, slot)
	sim, d := build(seed + 1)
	bb := probe.StartBadabing(sim, d, probeFlowID, probe.BadabingConfig{
		Plans:         plans,
		Slot:          slot,
		Marker:        marker,
		ExtendedPairs: cfg.ExtendedPairs,
	})
	stream, err := badabing.NewStream(badabing.StreamConfig{
		Slot:          slot,
		WindowSlots:   cfg.WindowSlots,
		ExtendedPairs: cfg.ExtendedPairs,
	})
	if err != nil {
		return err
	}

	h := &harvester{s: s, cfg: &cfg, plans: plans, slot: slot, marker: marker, stream: stream}
	horizon := time.Duration(cfg.Slots) * slot
	step := time.Duration(cfg.StepSlots) * slot
	stepDelay := time.Duration(cfg.StepDelayMicros) * time.Microsecond
	for t := step; ; t += step {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := t >= horizon+settle
		if end {
			t = horizon + settle
		}
		sim.Run(t)
		h.harvest(bb, t, end)
		if end {
			return nil
		}
		if stepDelay > 0 {
			timer := time.NewTimer(stepDelay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
		}
	}
}

// harvester carries the incremental estimation state across steps.
type harvester struct {
	s      *Session
	cfg    *SessionConfig
	plans  []badabing.Plan
	slot   time.Duration
	marker badabing.MarkerConfig
	stream *badabing.Stream
	fed    int // plans[:fed] have been fed to the stream
	skip   int64
}

// harvest re-marks the settled observations and feeds newly completed
// experiments. At the end of the run it rebuilds the stream from the full
// observation set so the published result matches batch estimation.
func (h *harvester) harvest(bb *probe.Badabing, now time.Duration, end bool) {
	obs := bb.Observations() // in send order
	cutoff := now - settle
	if end {
		cutoff = now
	}
	settled := obs
	for i, o := range obs {
		if o.T > cutoff {
			settled = obs[:i]
			break
		}
	}

	var c SessionCounters
	for _, o := range settled {
		c.ProbesSent++
		c.PacketsSent += int64(o.SentPackets)
		c.PacketsLost += int64(o.LostPackets)
		if o.LostPackets > 0 {
			c.ProbesLost++
		}
	}

	marked := badabing.Mark(settled, h.marker)
	bySlot := make(map[int64]bool, len(settled))
	for i, o := range settled {
		bySlot[o.Slot] = bySlot[o.Slot] || marked[i]
	}

	if end {
		// Final pass: re-mark everything and rebuild, discarding the
		// provisional mid-run marks.
		h.stream, _ = badabing.NewStream(badabing.StreamConfig{
			Slot:          h.slot,
			WindowSlots:   h.cfg.WindowSlots,
			ExtendedPairs: h.cfg.ExtendedPairs,
		})
		h.fed = 0
		h.skip = 0
	}
	// Feed experiments whose probes have all settled. An extra marker-τ
	// guard keeps a loss arriving just after the cutoff from changing a
	// mark we already froze.
	feedCutoff := cutoff - h.marker.Tau - h.slot
	if end {
		feedCutoff = cutoff
	}
	for h.fed < len(h.plans) {
		pl := h.plans[h.fed]
		if time.Duration(pl.Slot+int64(pl.Probes)-1)*h.slot > feedCutoff {
			break
		}
		bits := make([]bool, 0, pl.Probes)
		ok := true
		for j := 0; j < pl.Probes; j++ {
			b, present := bySlot[pl.Slot+int64(j)]
			if !present {
				ok = false
				break
			}
			bits = append(bits, b)
		}
		if ok {
			h.stream.Observe(pl.Slot, bits)
		} else {
			h.skip++
		}
		h.fed++
	}
	c.Experiments = int64(h.stream.M())
	c.Skipped = h.skip

	slotsDone := int64(now / h.slot)
	if slotsDone > h.cfg.Slots {
		slotsDone = h.cfg.Slots
	}
	h.s.publish(h.stream.Snapshot(), slotsDone, c)
}
