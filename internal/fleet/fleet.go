// Package fleet is the multi-session measurement service behind the
// badabingd daemon: a registry that owns many concurrent BADABING
// measurement sessions, each probing one path and feeding a streaming
// estimator, with create/start/snapshot/stop lifecycle, bounded
// concurrency on the shared experiment engine (internal/runner),
// per-session context cancellation and panic isolation.
//
// Sessions run on the transport-neutral session engine
// (internal/session): simulated scenarios (the lab testbed workloads)
// measure in-process virtual paths, and the "wire" scenario measures the
// round trip to a real UDP echo endpoint through the same engine.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/estimate"
	"badabing/internal/runner"
	"badabing/internal/session"
	"badabing/internal/store"
	"badabing/internal/wire"
)

// State is a session's lifecycle position.
type State int

// Session states. Pending sessions are created but waiting for a worker
// slot; Done, Failed, Stopped, Degraded and Recovered are terminal.
// Degraded marks a session whose far end died mid-run (after any
// retries): it carries partial estimates covering only the window the
// path was alive, clearly flagged so the outage is never read as
// measured loss. Recovered marks a session that was interrupted by a
// daemon restart and whose spec did not opt into resuming: its partial
// estimates and persisted history stand, clearly flagged as cut short.
const (
	Pending State = iota
	Running
	Done
	Failed
	Stopped
	Degraded
	Recovered
)

// states lists every State for name lookups and metrics rows.
var states = []State{Pending, Running, Done, Failed, Stopped, Degraded, Recovered}

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Stopped:
		return "stopped"
	case Degraded:
		return "degraded"
	case Recovered:
		return "recovered"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Stopped || s == Degraded || s == Recovered
}

// MarshalJSON renders the state as its lowercase name.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// stateFromString maps a lowercase name back to its State.
func stateFromString(name string) (State, bool) {
	for _, st := range states {
		if st.String() == name {
			return st, true
		}
	}
	return 0, false
}

// UnmarshalJSON parses the lowercase name form emitted by MarshalJSON.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	st, ok := stateFromString(name)
	if !ok {
		return fmt.Errorf("fleet: unknown session state %q", name)
	}
	*s = st
	return nil
}

// SessionConfig describes one measurement session. The zero value is
// completed with defaults; it is the JSON body of the create API call.
type SessionConfig struct {
	// Name is a free-form label; defaults to the session id.
	Name string `json:"name,omitempty"`
	// Scenario selects the path: a simulated workload — "idle", "tcp",
	// "cbr" (default), "cbr-mixed" or "web" — or "wire" to measure the
	// round trip to a real UDP echo endpoint (Target).
	Scenario string `json:"scenario,omitempty"`
	// Target is the "wire" scenario's echo endpoint, host:port.
	Target string `json:"target,omitempty"`
	// P is the per-slot experiment probability. Default 0.3.
	P float64 `json:"p,omitempty"`
	// Slots is the measurement horizon in slots. Default 60000 (5
	// minutes at the default 5 ms slot).
	Slots int64 `json:"slots,omitempty"`
	// SlotMicros is the slot width in microseconds. Default 5000.
	SlotMicros int64 `json:"slot_micros,omitempty"`
	// Basic disables the improved (triple-probe) design.
	Basic bool `json:"basic,omitempty"`
	// DisableBatch forces the "wire" scenario's sender onto per-packet
	// writes instead of the batched (sendmmsg) probe fast path. The two
	// paths measure identically (the chaos matrix pins their estimates
	// bit-for-bit); this knob exists for A/B runs and syscall-level
	// debugging on live paths.
	DisableBatch bool `json:"disable_batch,omitempty"`
	// ExtendedFraction is the improved design's triple-probe weighting;
	// null selects the paper's 1/2, 0 disables extended experiments.
	ExtendedFraction *float64 `json:"extended_fraction,omitempty"`
	// ExtendedPairs enables the §5.5 pair-counting modification.
	ExtendedPairs bool `json:"extended_pairs,omitempty"`
	// Estimator selects and parameterizes the streaming estimator
	// (kind: basic, improved, parametric or bootstrap, plus bootstrap
	// tuning). Omitted selects the improved estimator. Unknown kinds and
	// out-of-range settings are rejected at create time (HTTP 400).
	Estimator *estimate.Config `json:"estimator,omitempty"`
	// Seed fixes all randomness; 0 derives a stable seed from the
	// session id via the runner's descriptor hash.
	Seed int64 `json:"seed,omitempty"`
	// WindowSlots is the streaming estimator's sliding-window span.
	// Default Slots/4 (min 1000 slots).
	WindowSlots int64 `json:"window_slots,omitempty"`
	// StepSlots is the harvest cadence: how often (in slots of virtual
	// time) the session re-marks observations, feeds the stream and
	// publishes a snapshot. Default 1000.
	StepSlots int64 `json:"step_slots,omitempty"`
	// StepDelayMicros throttles the session by sleeping this much real
	// time between harvest steps. Simulated paths run in virtual time,
	// so 0 means "as fast as the CPU allows"; set it to pace a session
	// like a live one.
	StepDelayMicros int64 `json:"step_delay_micros,omitempty"`
	// MaxRetries re-queues a failed session up to this many times with
	// capped exponential backoff before it goes terminal. Stopped
	// (cancelled) sessions are never retried. Default 0 (no retries).
	MaxRetries int `json:"max_retries,omitempty"`
	// RetryBackoffMillis is the initial retry backoff; it doubles per
	// attempt (capped, jittered — the same curve the wire liveness
	// handshake uses). Default 500ms when MaxRetries > 0.
	RetryBackoffMillis int64 `json:"retry_backoff_millis,omitempty"`
	// Resume opts the session into crash recovery: if the daemon
	// restarts while the session is pending or running, the session is
	// re-queued and measured again per this spec (its persisted history
	// keeps accumulating). Without it an interrupted session is marked
	// `recovered` — terminal, with its partial estimates standing.
	Resume bool `json:"resume,omitempty"`
}

func (c *SessionConfig) applyDefaults() {
	if c.Scenario == "" {
		c.Scenario = "cbr"
	}
	if c.P == 0 {
		c.P = 0.3
	}
	if c.Slots == 0 {
		c.Slots = 60_000
	}
	if c.SlotMicros == 0 {
		c.SlotMicros = 5000
	}
	if c.WindowSlots == 0 {
		c.WindowSlots = max64(c.Slots/4, 1000)
	}
	if c.StepSlots == 0 {
		c.StepSlots = 1000
	}
	if c.MaxRetries > 0 && c.RetryBackoffMillis == 0 {
		c.RetryBackoffMillis = 500
	}
}

// scheduleConfig converts to the estimator core's form (Seed filled by
// the session).
func (c *SessionConfig) scheduleConfig(seed int64) badabing.ScheduleConfig {
	return badabing.ScheduleConfig{
		P:                c.P,
		N:                c.Slots,
		Improved:         !c.Basic,
		ExtendedFraction: c.ExtendedFraction,
		Seed:             seed,
	}
}

// estimatorConfig resolves the estimator selection; nil (the spec
// omitted it) means the zero config, i.e. the default improved kind.
func (c *SessionConfig) estimatorConfig() estimate.Config {
	if c.Estimator == nil {
		return estimate.Config{}
	}
	return *c.Estimator
}

// EstimatorKind returns the canonical name of the estimator the session
// runs with (after defaulting).
func (c *SessionConfig) EstimatorKind() string {
	kind, err := estimate.Normalize(c.estimatorConfig().Kind)
	if err != nil {
		return c.Estimator.Kind
	}
	return kind
}

// Validate rejects configurations the daemon must not crash on.
func (c *SessionConfig) Validate() error {
	if err := c.scheduleConfig(1).Validate(); err != nil {
		return err
	}
	if err := c.estimatorConfig().Validate(); err != nil {
		return err
	}
	if c.SlotMicros < 0 {
		return fmt.Errorf("fleet: negative slot width %dµs", c.SlotMicros)
	}
	if c.StepSlots < 0 || c.WindowSlots < 0 || c.StepDelayMicros < 0 {
		return errors.New("fleet: negative step, window or delay")
	}
	if c.MaxRetries < 0 || c.MaxRetries > 100 {
		return fmt.Errorf("fleet: max_retries %d out of range [0,100]", c.MaxRetries)
	}
	if c.RetryBackoffMillis < 0 {
		return fmt.Errorf("fleet: negative retry backoff %dms", c.RetryBackoffMillis)
	}
	if _, err := scenarioOf(c.Scenario); err != nil {
		return err
	}
	if strings.ToLower(c.Scenario) == "wire" && c.Target == "" {
		return errors.New("fleet: wire scenario requires a target")
	}
	return nil
}

// Totals are the registry's lifetime aggregate counters, monotone across
// session deletion (the /metrics counters).
type Totals struct {
	SessionsCreated  int64
	SessionsFinished int64
	SessionRetries   int64
	ProbesSent       int64
	ProbesLost       int64
	PacketsSent      int64
	PacketsLost      int64
	Experiments      int64
	WriteFailures    int64
}

// Sink receives the registry's durable events: session lifecycle
// transitions, periodic estimate snapshots and the lifetime totals.
// *store.Store is the production implementation; store.NewMem() is the
// in-memory test double. Implementations must be safe for concurrent
// use; calls never block on anything slower than a local disk append.
//
// Each method returns the durable-append error, if any — a full disk
// must be a visible event, not silent history loss. The registry itself
// does not retry on errors; wrap the sink in a BreakerSink to convert
// persistent failures into bounded in-memory spill + recovery replay.
type Sink interface {
	SessionCreated(id string, at time.Time, cfgJSON []byte, seed int64) error
	SessionState(id string, at time.Time, state string, terminal bool, errMsg string, retries int, seed int64) error
	SessionPoint(id string, p store.Point) error
	RegistryTotals(t store.Totals) error
}

// HistorySource is the optional query side of a Sink: the persisted
// F̂/D̂/loss-rate series behind GET /v1/sessions/{id}/history.
type HistorySource interface {
	History(id string, from, to time.Time) ([]store.Point, bool)
}

// StatsSource is the optional operational-stats side of a Sink (the
// /v1/store/stats endpoint).
type StatsSource interface {
	Stats() store.Stats
}

// Config parameterizes a Registry.
type Config struct {
	// MaxSessions caps registered (non-deleted) sessions. Default 256.
	MaxSessions int
	// MaxConcurrent bounds sessions measuring at once; further ones
	// queue in Pending state. Default GOMAXPROCS. Ignored when Pool is
	// set.
	MaxConcurrent int
	// Pool optionally shares an existing experiment engine.
	Pool *runner.Pool
	// Store receives durable events (nil disables persistence). If it
	// also implements io.Closer, the registry closes it on Close/Drain —
	// strictly after the last session goroutine joins, so no event is
	// ever appended to a closed store.
	Store Sink
}

// Registry owns the sessions. All methods are safe for concurrent use.
type Registry struct {
	pool *runner.Pool
	cfg  Config

	rootCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string
	nextID   int
	closed   bool

	// store receives durable events; storeOnce guards its close, which
	// must happen exactly once and only after wg (every session monitor
	// goroutine) has joined.
	store     Sink
	storeOnce sync.Once

	totals struct {
		sessionsCreated  atomic.Int64
		sessionsFinished atomic.Int64
		sessionRetries   atomic.Int64
		probesSent       atomic.Int64
		probesLost       atomic.Int64
		packetsSent      atomic.Int64
		packetsLost      atomic.Int64
		experiments      atomic.Int64
		writeFailures    atomic.Int64
	}

	// runOverride substitutes the session body in tests (panic
	// isolation, lifecycle) without simulating a path.
	runOverride func(ctx context.Context, s *Session, seed int64) error
}

// NewRegistry builds a registry with its own worker pool.
func NewRegistry(cfg Config) *Registry {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 256
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	pool := cfg.Pool
	if pool == nil {
		pool = runner.New(runner.Config{Workers: cfg.MaxConcurrent})
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Registry{
		pool:     pool,
		cfg:      cfg,
		rootCtx:  ctx,
		cancel:   cancel,
		sessions: make(map[string]*Session),
		store:    cfg.Store,
	}
}

// ErrRegistryFull is returned by Create when MaxSessions is reached.
var ErrRegistryFull = errors.New("fleet: session registry full")

// ErrClosed is returned by Create once the registry is closing or
// draining: the daemon is shutting down and accepts no new sessions.
var ErrClosed = errors.New("fleet: registry closed")

// ErrNotFound is returned for unknown session ids.
var ErrNotFound = errors.New("fleet: session not found")

// ErrNotTerminal is returned when deleting a session still in flight.
var ErrNotTerminal = errors.New("fleet: session not terminal; stop it first")

// Create validates the config, registers a session and starts it on the
// pool. The session queues in Pending state until a worker slot frees.
func (r *Registry) Create(cfg SessionConfig) (*Session, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if len(r.sessions) >= r.cfg.MaxSessions {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w (%d registered)", ErrRegistryFull, len(r.sessions))
	}
	r.nextID++
	id := fmt.Sprintf("s%04d", r.nextID)
	if cfg.Name == "" {
		cfg.Name = id
	}
	ctx, cancel := context.WithCancel(r.rootCtx)
	s := &Session{
		ID:      id,
		cfg:     cfg,
		reg:     r,
		cancel:  cancel,
		created: time.Now(),
	}
	s.snap.Kind = cfg.EstimatorKind()
	s.snap.LastSlot = -1
	r.sessions[id] = s
	r.order = append(r.order, id)
	r.wg.Add(1)
	r.mu.Unlock()
	r.totals.sessionsCreated.Add(1)
	if r.store != nil {
		cfgJSON, _ := json.Marshal(cfg)
		r.store.SessionCreated(id, s.created, cfgJSON, cfg.Seed)
		r.store.RegistryTotals(r.storeTotals())
	}
	r.launch(ctx, s)
	return s, nil
}

// launch submits a registered session to the pool and spawns its monitor
// goroutine (retry loop + terminal transition). The caller has already
// done r.wg.Add(1); the monitor owns the matching Done.
func (r *Registry) launch(ctx context.Context, s *Session) {
	cfg := s.cfg
	id := s.ID
	run := r.runOverride
	if run == nil {
		run = runSession
	}
	submit := func() *runner.Job {
		return r.pool.Start(ctx, []runner.Cell{{
			Key: "fleet/" + id,
			Run: func(ctx context.Context, seed int64) (v any, err error) {
				// Panic isolation: a crashing session must fail alone,
				// not take the daemon down.
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("fleet: session %s panicked: %v", id, p)
					}
				}()
				if cfg.Seed != 0 {
					seed = cfg.Seed
				}
				s.setRunning(seed)
				r.emitState(s)
				return nil, run(ctx, s, seed)
			},
		}})
	}
	// Failed wire sessions re-queue with capped exponential backoff on the
	// same jittered curve the liveness handshake uses. Cancellation is
	// never retried — a stop is a stop.
	backoff := wire.LivenessConfig{
		Attempts:   cfg.MaxRetries + 1,
		Backoff:    time.Duration(cfg.RetryBackoffMillis) * time.Millisecond,
		MaxBackoff: 30 * time.Second,
		Seed:       cfg.Seed,
	}.BackoffSchedule()
	finish := func(err error) {
		s.finish(err)
		r.totals.sessionsFinished.Add(1)
		r.emitState(s)
		if r.store != nil {
			r.store.RegistryTotals(r.storeTotals())
		}
	}
	go func() {
		defer r.wg.Done()
		job := submit()
		for attempt := 0; ; attempt++ {
			results, _, _ := job.Wait()
			var err error
			if len(results) > 0 {
				err = results[0].Err
			}
			if err == nil || errors.Is(err, context.Canceled) ||
				ctx.Err() != nil || attempt >= cfg.MaxRetries {
				finish(err)
				return
			}
			s.beginRetry()
			r.totals.sessionRetries.Add(1)
			r.emitState(s)
			timer := time.NewTimer(backoff[attempt])
			select {
			case <-ctx.Done():
				timer.Stop()
				finish(ctx.Err())
				return
			case <-timer.C:
			}
			job = submit()
		}
	}()
}

// emitState forwards the session's current lifecycle position to the
// store (no-op without one).
func (r *Registry) emitState(s *Session) {
	if r.store == nil {
		return
	}
	s.mu.Lock()
	state := s.state
	errMsg := ""
	if s.err != nil {
		errMsg = s.err.Error()
	}
	retries := s.retries
	seed := s.seed
	s.mu.Unlock()
	r.store.SessionState(s.ID, time.Now(), state.String(), state.Terminal(), errMsg, retries, seed)
}

// storeTotals converts the lifetime counters to the store's form.
func (r *Registry) storeTotals() store.Totals {
	t := r.Totals()
	return store.Totals{
		SessionsCreated:  t.SessionsCreated,
		SessionsFinished: t.SessionsFinished,
		SessionRetries:   t.SessionRetries,
		ProbesSent:       t.ProbesSent,
		ProbesLost:       t.ProbesLost,
		PacketsSent:      t.PacketsSent,
		PacketsLost:      t.PacketsLost,
		Experiments:      t.Experiments,
		WriteFailures:    t.WriteFailures,
	}
}

// Get returns a session by id.
func (r *Registry) Get(id string) (*Session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// List returns all registered sessions in creation order.
func (r *Registry) List() []*Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Session, 0, len(r.sessions))
	for _, id := range r.order {
		if s, ok := r.sessions[id]; ok {
			out = append(out, s)
		}
	}
	return out
}

// Stop cancels a session's context; the session transitions to Stopped
// at its next harvest step (immediately if still Pending). Stopping a
// terminal session is a no-op.
func (r *Registry) Stop(id string) (*Session, error) {
	s, err := r.Get(id)
	if err != nil {
		return nil, err
	}
	s.cancel()
	return s, nil
}

// Delete unregisters a terminal session. Running or pending sessions must
// be stopped first (ErrNotTerminal).
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		return ErrNotFound
	}
	if !s.State().Terminal() {
		return ErrNotTerminal
	}
	delete(r.sessions, id)
	for i, o := range r.order {
		if o == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return nil
}

// StateCounts tallies sessions by state.
func (r *Registry) StateCounts() map[State]int {
	counts := make(map[State]int)
	for _, s := range r.List() {
		counts[s.State()]++
	}
	return counts
}

// Totals returns the lifetime aggregate counters.
func (r *Registry) Totals() Totals {
	return Totals{
		SessionsCreated:  r.totals.sessionsCreated.Load(),
		SessionsFinished: r.totals.sessionsFinished.Load(),
		SessionRetries:   r.totals.sessionRetries.Load(),
		ProbesSent:       r.totals.probesSent.Load(),
		ProbesLost:       r.totals.probesLost.Load(),
		PacketsSent:      r.totals.packetsSent.Load(),
		PacketsLost:      r.totals.packetsLost.Load(),
		Experiments:      r.totals.experiments.Load(),
		WriteFailures:    r.totals.writeFailures.Load(),
	}
}

// Workers returns the concurrency bound.
func (r *Registry) Workers() int { return r.pool.Workers() }

// closeStore flushes and closes the event store, exactly once. It must
// only be called after r.wg has joined: a store closed under a live
// session goroutine would race its publish path (the old Drain bug —
// pinned by TestDrainStoreOrdering).
func (r *Registry) closeStore() {
	r.storeOnce.Do(func() {
		if c, ok := r.store.(io.Closer); ok && c != nil {
			c.Close()
		}
	})
}

// Close stops every session and waits for them to wind down, then
// flushes and closes the store. The registry accepts no new sessions
// afterwards.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cancel()
	r.wg.Wait()
	r.closeStore()
}

// Drain is the graceful-shutdown form of Close: it stops accepting new
// sessions, cancels every in-flight one (each snapshots its partial
// estimates at the cancellation harvest) and waits up to timeout for them
// to wind down. It reports whether everything finished within the
// deadline; on false the daemon should exit anyway — the deadline exists
// so shutdown is bounded.
//
// The store is flushed and closed only after the last session goroutine
// joins — never at the deadline — so a slow drain cannot race a live
// session's publish against the store shutdown.
func (r *Registry) Drain(timeout time.Duration) bool {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cancel()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		r.closeStore()
		close(done)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return true
	case <-timer.C:
		return false
	}
}

// Draining reports whether the registry has stopped accepting sessions.
func (r *Registry) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Session is one measurement in the fleet. Exported fields are immutable
// after creation; everything else is read through accessors.
type Session struct {
	ID  string
	cfg SessionConfig
	reg *Registry

	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	err       error
	created   time.Time
	started   time.Time
	finished  time.Time
	seed      int64
	retries   int
	recovered bool

	snap      estimate.Snapshot
	slotsDone int64
	counters  SessionCounters

	// tr is the live measurement substrate, kept so tests can reach the
	// wire collector behind a running session.
	tr session.Transport
}

// SessionCounters are a session's probe-level tallies so far.
// WriteFailures counts probe-socket write errors on wire sessions — a
// burst of them is the signature of a refused (crashed) far end.
type SessionCounters struct {
	ProbesSent    int64 `json:"probes_sent"`
	ProbesLost    int64 `json:"probes_lost"`
	PacketsSent   int64 `json:"packets_sent"`
	PacketsLost   int64 `json:"packets_lost"`
	Experiments   int64 `json:"experiments"`
	Skipped       int64 `json:"skipped"`
	WriteFailures int64 `json:"write_failures,omitempty"`
}

// Config returns the session's (defaulted) configuration.
func (s *Session) Config() SessionConfig { return s.cfg }

// State returns the lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Err returns the failure cause for Failed sessions.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Snapshot returns the latest published estimator snapshot. Snapshots
// appear mid-run, at every harvest step.
func (s *Session) Snapshot() estimate.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// Counters returns the probe-level tallies.
func (s *Session) Counters() SessionCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// Stop cancels the session.
func (s *Session) Stop() { s.cancel() }

// Retries returns how many times the session has been re-queued after a
// failure.
func (s *Session) Retries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retries
}

func (s *Session) setRunning(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == Pending {
		s.state = Running
		s.started = time.Now()
		s.seed = seed
	}
}

func (s *Session) setSeed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seed = seed
}

func (s *Session) setTransport(tr session.Transport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr = tr
}

// transport returns the session's measurement substrate (nil until the
// session body has built it).
func (s *Session) transport() session.Transport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr
}

func (s *Session) finish(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state.Terminal() {
		return
	}
	s.finished = time.Now()
	switch {
	case err == nil:
		s.state = Done
	case errors.Is(err, context.Canceled):
		s.state = Stopped
	case errors.Is(err, session.ErrPathDead):
		// The far end died mid-run (after any retries). The last
		// published snapshot holds the partial estimates from the alive
		// window; Degraded flags them so the outage is never read as
		// measured loss.
		s.state = Degraded
		s.err = err
	default:
		s.state = Failed
		s.err = err
	}
}

// beginRetry resets a failed session for another attempt: back to Pending
// with a clean snapshot and zeroed counters. The reset bypasses publish —
// the registry's lifetime totals stay monotone; the retry's own probes
// re-accumulate from zero.
func (s *Session) beginRetry() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retries++
	s.state = Pending
	s.started = time.Time{}
	s.err = nil
	s.snap = estimate.Snapshot{Kind: s.cfg.EstimatorKind()}
	s.snap.LastSlot = -1
	s.slotsDone = 0
	s.counters = SessionCounters{}
	s.tr = nil
}

// publish stores a new snapshot and counter set, accumulating the deltas
// into the registry's lifetime totals and appending one point to the
// session's persisted estimate series.
func (s *Session) publish(snap estimate.Snapshot, slotsDone int64, c SessionCounters) {
	s.mu.Lock()
	prev := s.counters
	s.snap = snap
	s.slotsDone = slotsDone
	s.counters = c
	s.mu.Unlock()
	t := &s.reg.totals
	t.probesSent.Add(c.ProbesSent - prev.ProbesSent)
	t.probesLost.Add(c.ProbesLost - prev.ProbesLost)
	t.packetsSent.Add(c.PacketsSent - prev.PacketsSent)
	t.packetsLost.Add(c.PacketsLost - prev.PacketsLost)
	t.experiments.Add(c.Experiments - prev.Experiments)
	if d := c.WriteFailures - prev.WriteFailures; d > 0 {
		t.writeFailures.Add(d)
	}
	if st := s.reg.store; st != nil {
		pt := store.Point{
			At:          time.Now().UnixNano(),
			SlotsDone:   slotsDone,
			M:           int64(snap.Total.M),
			Frequency:   snap.Total.Frequency,
			Duration:    snap.Total.Duration,
			HasDuration: snap.Total.HasDuration,
			ProbesSent:  c.ProbesSent,
			ProbesLost:  c.ProbesLost,
			PacketsSent: c.PacketsSent,
			PacketsLost: c.PacketsLost,
			Experiments: c.Experiments,
		}
		if ci := snap.FrequencyCI; ci != nil {
			pt.FreqLo, pt.FreqHi = ci.Lo, ci.Hi
			pt.HasFreqCI = true
			pt.CILevel = ci.Level
		}
		if ci := snap.DurationCI; ci != nil {
			pt.DurLo, pt.DurHi = ci.Lo, ci.Hi
			pt.HasDurCI = true
			pt.CILevel = ci.Level
		}
		st.SessionPoint(s.ID, pt)
		st.RegistryTotals(s.reg.storeTotals())
	}
}

// View is the JSON shape of a session in the HTTP API.
type View struct {
	ID        string            `json:"id"`
	Name      string            `json:"name"`
	State     State             `json:"state"`
	Error     string            `json:"error,omitempty"`
	Config    SessionConfig     `json:"config"`
	Seed      int64             `json:"seed"`
	Created   time.Time         `json:"created"`
	Started   *time.Time        `json:"started,omitempty"`
	Finished  *time.Time        `json:"finished,omitempty"`
	SlotsDone int64             `json:"slots_done"`
	Retries   int               `json:"retries,omitempty"`
	Recovered bool              `json:"recovered,omitempty"`
	Counters  SessionCounters   `json:"counters"`
	Snapshot  estimate.Snapshot `json:"snapshot"`
}

// View snapshots the session for the API.
func (s *Session) View() View {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := View{
		ID:        s.ID,
		Name:      s.cfg.Name,
		State:     s.state,
		Config:    s.cfg,
		Seed:      s.seed,
		Created:   s.created,
		SlotsDone: s.slotsDone,
		Retries:   s.retries,
		Recovered: s.recovered,
		Counters:  s.counters,
		Snapshot:  s.snap,
	}
	if s.err != nil {
		v.Error = s.err.Error()
	}
	if !s.started.IsZero() {
		t := s.started
		v.Started = &t
	}
	if !s.finished.IsZero() {
		t := s.finished
		v.Finished = &t
	}
	return v
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
