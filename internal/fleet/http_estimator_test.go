package fleet

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/estimate"
	"badabing/internal/session"
	"badabing/internal/session/wiretransport"
	"badabing/internal/store"
	"badabing/internal/wire"
)

// TestCreateAPIHardeningEstimator pins the create endpoint's contract for
// the "estimator" object: unknown kinds, out-of-range bootstrap tuning,
// wrong-type values and unknown nested fields are all 400s with a JSON
// error body; every registered kind (case-insensitively) is accepted and
// echoed back in both the session config and the snapshot.
func TestCreateAPIHardeningEstimator(t *testing.T) {
	reg := NewRegistry(Config{MaxConcurrent: 2})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	bad := []struct {
		name      string
		estimator string // the raw JSON value of the "estimator" key
		wantInErr string
	}{
		{"unknown kind", `{"kind":"fourier"}`, "fourier"},
		{"wrong type", `"bootstrap"`, ""},
		{"unknown nested field", `{"kindd":"basic"}`, "kindd"},
		{"negative resamples", `{"kind":"bootstrap","resamples":-4}`, "resamples"},
		{"huge resamples", `{"kind":"bootstrap","resamples":1073741824}`, "resamples"},
		{"negative block_len", `{"kind":"bootstrap","block_len":-1}`, "block_len"},
		{"level too high", `{"kind":"bootstrap","level":1.5}`, "level"},
		{"level negative", `{"kind":"bootstrap","level":-0.1}`, "level"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			body := fmt.Sprintf(`{"scenario":"idle","slots":100,"estimator":%s}`, tc.estimator)
			status, resp := post(body)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", status, resp)
			}
			if !strings.Contains(resp, `"error"`) {
				t.Errorf("error body %q, want {\"error\": ...}", resp)
			}
			if tc.wantInErr != "" && !strings.Contains(resp, tc.wantInErr) {
				t.Errorf("error %q does not name the offending input %q", resp, tc.wantInErr)
			}
		})
	}

	// The unknown-kind error must list the valid kinds — the registry is
	// the single source of truth, and the 400 teaches the caller.
	if _, resp := post(`{"scenario":"idle","slots":100,"estimator":{"kind":"fourier"}}`); !strings.Contains(resp, estimate.DefaultKind) {
		t.Errorf("unknown-kind error %q does not list valid kinds", resp)
	}

	// Every registered kind creates, including case-folded spellings, and
	// the canonical kind appears in the created view's snapshot.
	accepted := append(estimate.Kinds(), "BOOTSTRAP")
	var ids []string
	wantKinds := make(map[string]string) // session id -> canonical kind
	for _, kind := range accepted {
		body := fmt.Sprintf(`{"scenario":"idle","slots":100,"estimator":{"kind":%q}}`, kind)
		var created View
		if code := postJSON(t, srv.URL+"/v1/sessions", body, &created); code != http.StatusCreated {
			t.Fatalf("create kind %q: status %d", kind, code)
		}
		canonical, err := estimate.Normalize(kind)
		if err != nil {
			t.Fatal(err)
		}
		if created.Snapshot.Kind != canonical {
			t.Errorf("kind %q: snapshot kind %q, want %q", kind, created.Snapshot.Kind, canonical)
		}
		if created.Config.Estimator == nil || created.Config.Estimator.Kind != kind {
			t.Errorf("kind %q: config echo %+v, want the submitted spelling", kind, created.Config.Estimator)
		}
		ids = append(ids, created.ID)
		wantKinds[created.ID] = canonical
	}

	// An absent estimator object defaults without surprising the caller.
	var plain View
	if code := postJSON(t, srv.URL+"/v1/sessions", `{"scenario":"idle","slots":100}`, &plain); code != http.StatusCreated {
		t.Fatalf("create without estimator: status %d", code)
	}
	if plain.Snapshot.Kind != estimate.DefaultKind {
		t.Errorf("default snapshot kind %q, want %q", plain.Snapshot.Kind, estimate.DefaultKind)
	}

	// /metrics carries the estimator kind as an info metric per session.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	samples := parsePrometheus(t, buf.String())
	for _, id := range ids {
		key := fmt.Sprintf(`badabingd_session_estimator{session=%q,kind=%q}`, id, wantKinds[id])
		if samples[key] != 1 {
			t.Errorf("info metric %s = %v, want 1\n%s", key, samples[key], buf.String())
		}
	}
}

// TestWireSessionBootstrapEstimator is the acceptance drive for the
// pluggable estimator pipeline: a live wire session created over HTTP
// with a tuned bootstrap estimator streams confidence intervals mid-run,
// its final snapshot is Float64bits-identical to the batch pipeline over
// the collector's own observation log, the CI bounds persist through the
// durable store, and the history endpoint replays byte-for-byte across a
// daemon restart.
func TestWireSessionBootstrapEstimator(t *testing.T) {
	if testing.Short() {
		t.Skip("paces real probes for ~3s")
	}

	dir := t.TempDir()
	st, _, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	refl := wire.NewReflector(pc)
	go refl.Run()
	defer refl.Close()

	reg := NewRegistry(Config{MaxConcurrent: 1, Store: st})
	srv := httptest.NewServer(NewHandler(reg))

	const (
		seed       = 77
		slots      = 200
		slotMicros = 10_000
	)
	estCfg := estimate.Config{Kind: estimate.KindBootstrap, Resamples: 120, BlockLen: 25, Level: 0.9, Seed: 5}
	body := fmt.Sprintf(
		`{"scenario":"wire","target":%q,"p":0.3,"slots":%d,"slot_micros":%d,"step_slots":50,"seed":%d,`+
			`"estimator":{"kind":"bootstrap","resamples":120,"block_len":25,"level":0.9,"seed":5}}`,
		refl.Addr().String(), slots, slotMicros, seed)
	var created View
	if code := postJSON(t, srv.URL+"/v1/sessions", body, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.Snapshot.Kind != estimate.KindBootstrap {
		t.Fatalf("created snapshot kind %q, want bootstrap", created.Snapshot.Kind)
	}

	// A live bootstrap session must stream interval estimates while it
	// paces, not only at the end.
	var sawMidRunCI bool
	deadline := time.Now().Add(30 * time.Second)
	var v View
	for time.Now().Before(deadline) {
		if code := getJSON(t, srv.URL+"/v1/sessions/"+created.ID, &v); code != http.StatusOK {
			t.Fatalf("get: status %d", code)
		}
		if v.State == Running && v.Snapshot.FrequencyCI != nil {
			sawMidRunCI = true
		}
		if v.State.Terminal() {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if v.State != Done {
		t.Fatalf("session ended %v (err %q)", v.State, v.Error)
	}
	if !sawMidRunCI {
		t.Error("no mid-run confidence interval observed over the HTTP API")
	}
	final := v.Snapshot
	if final.Kind != estimate.KindBootstrap || final.FrequencyCI == nil {
		t.Fatalf("final snapshot lacks bootstrap CI: %+v", final)
	}
	if final.FrequencyCI.Level != estCfg.Level {
		t.Errorf("CI level %v, want the configured %v", final.FrequencyCI.Level, estCfg.Level)
	}
	if final.Total.M == 0 {
		t.Fatal("final snapshot vacuous: no experiments")
	}

	// Batch cross-check: replay the collector's own observation log
	// through the batch entry point with the identical estimator config.
	// One marking pipeline, one estimator core — the results must agree
	// to the last bit, intervals included.
	s, err := reg.Get(created.ID)
	if err != nil {
		t.Fatal(err)
	}
	wt, ok := s.transport().(*wiretransport.Transport)
	if !ok {
		t.Fatalf("session transport is %T, want *wiretransport.Transport", s.transport())
	}
	slot := time.Duration(slotMicros) * time.Microsecond
	obs, invalid := wt.Observations()
	bySlot := session.MarkSlots(obs, invalid, badabing.RecommendedMarker(0.3, slot))
	plans := badabing.MustSchedule(badabing.ScheduleConfig{P: 0.3, N: slots, Improved: true, Seed: seed})
	batch, _, err := session.BatchSnapshot(estCfg, plans, bySlot, slot, false)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Total.M != final.Total.M {
		t.Fatalf("batch m %d, session m %d", batch.Total.M, final.Total.M)
	}
	bitsEq := func(name string, a, b float64) {
		t.Helper()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("%s diverged: batch %v (%x), session %v (%x)",
				name, a, math.Float64bits(a), b, math.Float64bits(b))
		}
	}
	bitsEq("frequency", batch.Total.Frequency, final.Total.Frequency)
	if batch.Total.HasDuration != final.Total.HasDuration {
		t.Errorf("duration presence diverged: batch %v, session %v", batch.Total.HasDuration, final.Total.HasDuration)
	} else if batch.Total.HasDuration {
		bitsEq("duration", batch.Total.Duration, final.Total.Duration)
	}
	if batch.FrequencyCI == nil {
		t.Fatal("batch pipeline produced no frequency CI")
	}
	bitsEq("frequency CI lo", batch.FrequencyCI.Lo, final.FrequencyCI.Lo)
	bitsEq("frequency CI hi", batch.FrequencyCI.Hi, final.FrequencyCI.Hi)
	if (batch.DurationCI == nil) != (final.DurationCI == nil) {
		t.Errorf("duration CI presence diverged: batch %v, session %v", batch.DurationCI, final.DurationCI)
	} else if batch.DurationCI != nil {
		bitsEq("duration CI lo", batch.DurationCI.Lo, final.DurationCI.Lo)
		bitsEq("duration CI hi", batch.DurationCI.Hi, final.DurationCI.Hi)
	}

	// The persisted series carries the CI bounds.
	history := func(url string) []byte {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("history: status %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	before := history(srv.URL + "/v1/sessions/" + created.ID + "/history")
	if !bytes.Contains(before, []byte(`"has_freq_ci":true`)) {
		t.Errorf("persisted history carries no CI bounds:\n%s", before)
	}

	// Restart the daemon: close everything, recover from the WAL, and the
	// history must replay byte-for-byte; the restored session keeps its
	// estimator kind and interval bounds.
	srv.Close()
	reg.Close() // closes the store

	st2, info, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistry(Config{MaxConcurrent: 1, Store: st2})
	defer reg2.Close()
	reg2.Restore(info)
	srv2 := httptest.NewServer(NewHandler(reg2))
	defer srv2.Close()

	after := history(srv2.URL + "/v1/sessions/" + created.ID + "/history")
	if !bytes.Equal(before, after) {
		t.Fatalf("history changed across restart:\nbefore %s\nafter  %s", before, after)
	}
	var restored View
	if code := getJSON(t, srv2.URL+"/v1/sessions/"+created.ID, &restored); code != http.StatusOK {
		t.Fatalf("get restored: status %d", code)
	}
	if restored.State != Done || !restored.Recovered {
		t.Errorf("restored session state %v recovered %v, want done/true", restored.State, restored.Recovered)
	}
	if restored.Snapshot.Kind != estimate.KindBootstrap {
		t.Errorf("restored snapshot kind %q, want bootstrap", restored.Snapshot.Kind)
	}
	if restored.Snapshot.FrequencyCI == nil {
		t.Fatal("restored snapshot lost its frequency CI")
	}
	bitsEq("restored CI lo", final.FrequencyCI.Lo, restored.Snapshot.FrequencyCI.Lo)
	bitsEq("restored CI hi", final.FrequencyCI.Hi, restored.Snapshot.FrequencyCI.Hi)
	if restored.Snapshot.FrequencyCI.Level != estCfg.Level {
		t.Errorf("restored CI level %v, want %v", restored.Snapshot.FrequencyCI.Level, estCfg.Level)
	}
}
