package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"badabing/internal/health"
)

// postCreate posts a minimal valid create and returns the response.
func postCreate(t *testing.T, url string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sessions", "application/json",
		strings.NewReader(`{"scenario":"idle","slots":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, string(b)
}

// wantRetryAfter asserts the header carries a positive integer seconds
// value.
func wantRetryAfter(t *testing.T, hdr http.Header) {
	t.Helper()
	ra := hdr.Get("Retry-After")
	if ra == "" {
		t.Fatal("Retry-After header missing")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
	}
}

// TestAdmissionShedding pins the overload-protection contract on
// session creation: failing health sheds with 503, a full pending queue
// sheds with 503, the per-client limiter sheds with 429 — all with
// Retry-After — and the shed counters surface on /metrics.
func TestAdmissionShedding(t *testing.T) {
	mon := health.NewMonitor(nil)
	lim := NewRateLimiter(1, 2) // 2-burst, 1 token/s
	clock := time.Unix(1700000000, 0)
	lim.SetNow(func() time.Time { return clock })

	reg := NewRegistry(Config{MaxConcurrent: 1})
	defer reg.Close()
	srv := httptest.NewServer(NewHandlerOpts(reg, HandlerOptions{
		Health:     mon,
		MaxPending: 1,
		Limiter:    lim,
		RetryAfter: 7 * time.Second,
	}))
	defer srv.Close()

	// Healthy, idle: creates pass.
	code, _, body := postCreate(t, srv.URL)
	if code != 201 {
		t.Fatalf("healthy create: %d (%s)", code, body)
	}

	// Degraded still admits — impaired but serving.
	mon.Set("store", health.Degraded, "breaker open")
	if code, _, body = postCreate(t, srv.URL); code != 201 {
		t.Fatalf("degraded create: %d (%s)", code, body)
	}

	// Failing sheds with 503 + Retry-After.
	mon.Set("resources", health.Failing, "fd budget doubled")
	code, hdr, body := postCreate(t, srv.URL)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("failing create: %d (%s), want 503", code, body)
	}
	wantRetryAfter(t, hdr)
	if got := hdr.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %s, want 7 (configured)", got)
	}
	mon.Set("resources", health.Ok, "")
	mon.Set("store", health.Ok, "")

	// Rate limit: burst of 2 is already spent by the two accepted
	// creates; the next one sheds with 429 + computed Retry-After.
	code, hdr, body = postCreate(t, srv.URL)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate create: %d (%s), want 429", code, body)
	}
	wantRetryAfter(t, hdr)

	// Advance the limiter clock; admission resumes.
	clock = clock.Add(5 * time.Second)
	if code, _, body = postCreate(t, srv.URL); code != 201 {
		t.Fatalf("create after refill: %d (%s)", code, body)
	}

	// Shed counters are on /metrics.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`badabingd_admission_shed_total{reason="not_ready"} 1`,
		`badabingd_admission_shed_total{reason="rate_limited"} 1`,
		`badabingd_admission_shed_total{reason="queue_full"} 0`,
		`badabingd_health_state 0`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestAdmissionQueueDepth: once MaxPending sessions are queued, further
// creates shed with 503 + Retry-After instead of growing the queue.
func TestAdmissionQueueDepth(t *testing.T) {
	reg := NewRegistry(Config{MaxConcurrent: 1})
	defer reg.Close()
	srv := httptest.NewServer(NewHandlerOpts(reg, HandlerOptions{MaxPending: 1}))
	defer srv.Close()

	// A slow session occupies the single worker; the next one queues.
	slow := `{"scenario":"idle","slots":100000,"step_slots":1000,"step_delay_micros":200000}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", strings.NewReader(slow))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 201 {
			t.Fatalf("create %d: %d (%s)", i, resp.StatusCode, b)
		}
	}
	// Wait until exactly one session is Pending (the other running).
	deadline := time.Now().Add(5 * time.Second)
	for reg.StateCounts()[Pending] != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("state counts never settled: %v", reg.StateCounts())
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, hdr, body := postCreate(t, srv.URL)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("create over queue budget: %d (%s), want 503", code, body)
	}
	wantRetryAfter(t, hdr)
}

// TestRetryAfterOnFullAndDraining pins satellite (b): the pre-existing
// registry-full 429 and draining 503 now carry Retry-After.
func TestRetryAfterOnFullAndDraining(t *testing.T) {
	reg := NewRegistry(Config{MaxConcurrent: 1, MaxSessions: 1})
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	if code, _, body := postCreate(t, srv.URL); code != 201 {
		t.Fatalf("first create: %d (%s)", code, body)
	}
	code, hdr, body := postCreate(t, srv.URL)
	if code != http.StatusTooManyRequests {
		t.Fatalf("create over MaxSessions: %d (%s), want 429", code, body)
	}
	wantRetryAfter(t, hdr)

	reg.Drain(time.Second)
	code, hdr, body = postCreate(t, srv.URL)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: %d (%s), want 503", code, body)
	}
	wantRetryAfter(t, hdr)
	reg.Close()
}

// TestReadyz pins the deep-readiness contract: 200 while ok or
// degraded, 503 + Retry-After once failing or draining, with the
// component detail in the body.
func TestReadyz(t *testing.T) {
	mon := health.NewMonitor(nil)
	reg := NewRegistry(Config{MaxConcurrent: 1})
	srv := httptest.NewServer(NewHandlerOpts(reg, HandlerOptions{Health: mon}))
	defer srv.Close()

	get := func() (int, http.Header, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("readyz body: %v", err)
		}
		return resp.StatusCode, resp.Header, body
	}

	if code, _, body := get(); code != 200 || body["status"] != "ok" {
		t.Fatalf("readyz ok: %d %v", code, body)
	}

	mon.Set("store", health.Degraded, "breaker open; spilling to memory")
	code, _, body := get()
	if code != 200 || body["status"] != "degraded" {
		t.Fatalf("readyz degraded: %d %v", code, body)
	}
	healthBody, _ := body["health"].(map[string]any)
	if healthBody == nil {
		t.Fatalf("readyz body missing health detail: %v", body)
	}

	mon.Set("store", health.Failing, "spill overflow")
	code, hdr, body := get()
	if code != http.StatusServiceUnavailable || body["status"] != "failing" {
		t.Fatalf("readyz failing: %d %v", code, body)
	}
	wantRetryAfter(t, hdr)

	mon.Set("store", health.Ok, "")
	reg.Drain(time.Second)
	code, hdr, body = get()
	if code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("readyz draining: %d %v", code, body)
	}
	wantRetryAfter(t, hdr)
	reg.Close()
}

// TestReadyzWithoutHealth: a handler with no monitor still serves
// /readyz from the draining flag alone.
func TestReadyzWithoutHealth(t *testing.T) {
	reg := NewRegistry(Config{MaxConcurrent: 1})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("readyz without health: %d, want 200", resp.StatusCode)
	}
}
