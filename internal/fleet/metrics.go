package fleet

import (
	"fmt"
	"io"
)

// WriteMetrics renders the registry's state in the Prometheus text
// exposition format (version 0.0.4). It is hand-rolled — the repository
// takes no dependencies — but emits well-formed families: HELP/TYPE
// headers, escaped label values, one sample per line.
func WriteMetrics(w io.Writer, r *Registry) {
	t := r.Totals()
	counts := r.StateCounts()

	gauge(w, "badabingd_sessions_active", "Sessions currently measuring.",
		sample{value: float64(counts[Running])})
	rows := make([]sample, 0, len(states))
	for _, st := range states {
		rows = append(rows, sample{labels: lbl("state", st.String()), value: float64(counts[st])})
	}
	gauge(w, "badabingd_sessions", "Registered sessions by lifecycle state.", rows...)
	gauge(w, "badabingd_queue_depth", "Sessions waiting for a worker slot.",
		sample{labels: lbl("queue", "pending"), value: float64(counts[Pending])})
	gauge(w, "badabingd_workers", "Concurrent session bound.",
		sample{value: float64(r.Workers())})

	counter(w, "badabingd_sessions_created_total", "Sessions ever created.", float64(t.SessionsCreated))
	counter(w, "badabingd_sessions_finished_total", "Sessions ever finished (done, failed or stopped).", float64(t.SessionsFinished))
	counter(w, "badabingd_probes_sent_total", "Probes sent across all sessions.", float64(t.ProbesSent))
	counter(w, "badabingd_probes_lost_total", "Probes that lost at least one packet.", float64(t.ProbesLost))
	counter(w, "badabingd_packets_sent_total", "Probe packets sent across all sessions.", float64(t.PacketsSent))
	counter(w, "badabingd_packets_lost_total", "Probe packets lost across all sessions.", float64(t.PacketsLost))
	counter(w, "badabingd_experiments_total", "Experiment outcomes fed to the estimators.", float64(t.Experiments))
	counter(w, "badabingd_session_retries_total", "Failed sessions re-queued by the retry policy.", float64(t.SessionRetries))
	counter(w, "badabingd_wire_write_failures_total", "Probe-socket write errors across wire sessions.", float64(t.WriteFailures))

	var freq, dur, m, kind []sample
	var freqLo, freqHi, durLo, durHi []sample
	for _, s := range r.List() {
		snap := s.Snapshot()
		labels := lbl("session", s.ID)
		freq = append(freq, sample{labels: labels, value: snap.Total.Frequency})
		if snap.Total.HasDuration {
			dur = append(dur, sample{labels: labels, value: snap.Total.Duration})
		}
		m = append(m, sample{labels: labels, value: float64(snap.Total.M)})
		kind = append(kind, sample{labels: lbl2("session", s.ID, "kind", snap.Kind), value: 1})
		if ci := snap.FrequencyCI; ci != nil {
			freqLo = append(freqLo, sample{labels: labels, value: ci.Lo})
			freqHi = append(freqHi, sample{labels: labels, value: ci.Hi})
		}
		if ci := snap.DurationCI; ci != nil {
			durLo = append(durLo, sample{labels: labels, value: ci.Lo})
			durHi = append(durHi, sample{labels: labels, value: ci.Hi})
		}
	}
	gauge(w, "badabingd_session_loss_frequency", "Per-session loss-episode frequency estimate F̂.", freq...)
	gauge(w, "badabingd_session_loss_frequency_ci_lo", "Lower bootstrap confidence bound on F̂.", freqLo...)
	gauge(w, "badabingd_session_loss_frequency_ci_hi", "Upper bootstrap confidence bound on F̂.", freqHi...)
	gauge(w, "badabingd_session_loss_duration_seconds", "Per-session mean loss-episode duration estimate D̂.", dur...)
	gauge(w, "badabingd_session_loss_duration_ci_lo_seconds", "Lower bootstrap confidence bound on D̂.", durLo...)
	gauge(w, "badabingd_session_loss_duration_ci_hi_seconds", "Upper bootstrap confidence bound on D̂.", durHi...)
	gauge(w, "badabingd_session_experiments", "Per-session experiments observed.", m...)
	gauge(w, "badabingd_session_estimator", "Estimator kind per session (info metric, value always 1).", kind...)
}

type sample struct {
	labels string
	value  float64
}

// lbl renders a single-label set. %q provides exactly the exposition
// format's escapes: backslash, double quote and newline.
func lbl(k, v string) string {
	return fmt.Sprintf(`{%s=%q}`, k, v)
}

// lbl2 renders a two-label set (the info-metric shape).
func lbl2(k1, v1, k2, v2 string) string {
	return fmt.Sprintf(`{%s=%q,%s=%q}`, k1, v1, k2, v2)
}

func family(w io.Writer, name, kind, help string, samples []sample) {
	if len(samples) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
	for _, s := range samples {
		fmt.Fprintf(w, "%s%s %v\n", name, s.labels, s.value)
	}
}

func gauge(w io.Writer, name, help string, samples ...sample) {
	family(w, name, "gauge", help, samples)
}

func counter(w io.Writer, name, help string, value float64) {
	family(w, name, "counter", help, []sample{{value: value}})
}
