package fleet

import (
	"badabing/internal/obs"
)

// RegisterMetrics registers the fleet registry's instrument families
// into the observability registry. Lifetime totals and per-session
// estimate gauges are pull-style: each scrape mirrors the registry's
// authoritative counters and live snapshots, so /metrics always shows
// the same numbers the JSON API does.
func (r *Registry) RegisterMetrics(o *obs.Registry) {
	active := o.Gauge("badabingd_sessions_active", "Sessions currently measuring.")
	byState := o.GaugeVec("badabingd_sessions", "Registered sessions by lifecycle state.", "state")
	stateRows := make([]obs.Gauge, len(states))
	for i, st := range states {
		stateRows[i] = byState.With(st.String())
	}
	queue := o.GaugeVec("badabingd_queue_depth", "Sessions waiting for a worker slot.", "queue").With("pending")
	workers := o.Gauge("badabingd_workers", "Concurrent session bound.")

	created := o.Counter("badabingd_sessions_created_total", "Sessions ever created.")
	finished := o.Counter("badabingd_sessions_finished_total", "Sessions ever finished (done, failed or stopped).")
	probesSent := o.Counter("badabingd_probes_sent_total", "Probes sent across all sessions.")
	probesLost := o.Counter("badabingd_probes_lost_total", "Probes that lost at least one packet.")
	packetsSent := o.Counter("badabingd_packets_sent_total", "Probe packets sent across all sessions.")
	packetsLost := o.Counter("badabingd_packets_lost_total", "Probe packets lost across all sessions.")
	experiments := o.Counter("badabingd_experiments_total", "Experiment outcomes fed to the estimators.")
	retries := o.Counter("badabingd_session_retries_total", "Failed sessions re-queued by the retry policy.")
	writeFailures := o.Counter("badabingd_wire_write_failures_total", "Probe-socket write errors across wire sessions.")

	freq := o.GaugeVec("badabingd_session_loss_frequency", "Per-session loss-episode frequency estimate F̂.", "session")
	freqLo := o.GaugeVec("badabingd_session_loss_frequency_ci_lo", "Lower bootstrap confidence bound on F̂.", "session")
	freqHi := o.GaugeVec("badabingd_session_loss_frequency_ci_hi", "Upper bootstrap confidence bound on F̂.", "session")
	dur := o.GaugeVec("badabingd_session_loss_duration_seconds", "Per-session mean loss-episode duration estimate D̂.", "session")
	durLo := o.GaugeVec("badabingd_session_loss_duration_ci_lo_seconds", "Lower bootstrap confidence bound on D̂.", "session")
	durHi := o.GaugeVec("badabingd_session_loss_duration_ci_hi_seconds", "Upper bootstrap confidence bound on D̂.", "session")
	m := o.GaugeVec("badabingd_session_experiments", "Per-session experiments observed.", "session")
	kind := o.GaugeVec("badabingd_session_estimator", "Estimator kind per session (info metric, value always 1).", "session", "kind")

	perSession := []interface{ Reset() }{freq, freqLo, freqHi, dur, durLo, durHi, m, kind}

	o.OnScrape(func() {
		t := r.Totals()
		counts := r.StateCounts()
		active.SetInt(int64(counts[Running]))
		for i, st := range states {
			stateRows[i].SetInt(int64(counts[st]))
		}
		queue.SetInt(int64(counts[Pending]))
		workers.SetInt(int64(r.Workers()))

		created.Set(float64(t.SessionsCreated))
		finished.Set(float64(t.SessionsFinished))
		probesSent.Set(float64(t.ProbesSent))
		probesLost.Set(float64(t.ProbesLost))
		packetsSent.Set(float64(t.PacketsSent))
		packetsLost.Set(float64(t.PacketsLost))
		experiments.Set(float64(t.Experiments))
		retries.Set(float64(t.SessionRetries))
		writeFailures.Set(float64(t.WriteFailures))

		for _, v := range perSession {
			v.Reset()
		}
		for _, s := range r.List() {
			snap := s.Snapshot()
			freq.With(s.ID).Set(snap.Total.Frequency)
			if snap.Total.HasDuration {
				dur.With(s.ID).Set(snap.Total.Duration)
			}
			m.With(s.ID).SetInt(int64(snap.Total.M))
			kind.With(s.ID, snap.Kind).SetInt(1)
			if ci := snap.FrequencyCI; ci != nil {
				freqLo.With(s.ID).Set(ci.Lo)
				freqHi.With(s.ID).Set(ci.Hi)
			}
			if ci := snap.DurationCI; ci != nil {
				durLo.With(s.ID).Set(ci.Lo)
				durHi.With(s.ID).Set(ci.Hi)
			}
		}
	})
}
