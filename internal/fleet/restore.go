package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"strconv"
	"strings"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/estimate"
	"badabing/internal/store"
)

// ErrInterrupted is the failure cause carried by sessions that were
// pending or running when the daemon died and whose spec did not opt
// into resuming (SessionConfig.Resume). Their partial estimates and
// persisted history stand.
var ErrInterrupted = errors.New("fleet: session interrupted by daemon restart")

// RestoreSummary reports what Restore did with the recovered sessions.
type RestoreSummary struct {
	// Terminal sessions were re-registered in their final state; their
	// history is queryable but nothing runs.
	Terminal int
	// Resumed sessions were pending or running at the crash and opted
	// into Resume: they are re-queued and measure again per their spec.
	Resumed int
	// Marked sessions were pending or running but did not opt in: they
	// are now terminal in state Recovered.
	Marked int
	// Skipped sessions could not be restored (undecodable config, id
	// collision); their history remains queryable through the store.
	Skipped int
}

// Restore re-registers sessions recovered from the store's WAL replay
// and restores the lifetime totals, so a restarted daemon carries on
// where the previous process stopped:
//
//   - terminal sessions come back in their final state with their last
//     snapshot, counters and full persisted history;
//   - interrupted (pending/running) sessions whose spec set Resume are
//     re-queued and measured again, appending to the same history;
//   - other interrupted sessions go terminal in state Recovered.
//
// Restore must run before the registry serves traffic (sessions created
// later take ids above the recovered ones). It is not an error to call
// it with no recovered sessions.
func (r *Registry) Restore(info store.RecoveryInfo) RestoreSummary {
	r.restoreTotals(info.Totals)
	var sum RestoreSummary
	for _, rec := range info.Sessions {
		switch r.restoreSession(rec) {
		case restoreTerminal:
			sum.Terminal++
		case restoreResumed:
			sum.Resumed++
		case restoreMarked:
			sum.Marked++
		default:
			sum.Skipped++
		}
	}
	return sum
}

// restoreTotals seeds the lifetime counters with the persisted values so
// /metrics totals are monotone across restarts.
func (r *Registry) restoreTotals(t store.Totals) {
	r.totals.sessionsCreated.Add(t.SessionsCreated)
	r.totals.sessionsFinished.Add(t.SessionsFinished)
	r.totals.sessionRetries.Add(t.SessionRetries)
	r.totals.probesSent.Add(t.ProbesSent)
	r.totals.probesLost.Add(t.ProbesLost)
	r.totals.packetsSent.Add(t.PacketsSent)
	r.totals.packetsLost.Add(t.PacketsLost)
	r.totals.experiments.Add(t.Experiments)
	r.totals.writeFailures.Add(t.WriteFailures)
}

type restoreOutcome int

const (
	restoreSkipped restoreOutcome = iota
	restoreTerminal
	restoreResumed
	restoreMarked
)

func (r *Registry) restoreSession(rec store.Session) restoreOutcome {
	// Even a session we cannot re-register must keep its id number
	// reserved: its history is still in the archive, and a fresh session
	// minted under the same id would append to it.
	defer r.reserveID(rec.ID)
	var cfg SessionConfig
	if err := json.Unmarshal(rec.ConfigJSON, &cfg); err != nil || len(rec.ConfigJSON) == 0 {
		return restoreSkipped
	}
	cfg.applyDefaults()
	if cfg.Validate() != nil {
		return restoreSkipped
	}
	if rec.Seed != 0 {
		// Pin the recovered seed so a resumed run re-draws the same
		// schedule the interrupted one was measuring.
		cfg.Seed = rec.Seed
	}

	state, known := stateFromString(rec.State)
	if !known {
		state = Failed
	}

	ctx, cancel := context.WithCancel(r.rootCtx)
	s := &Session{
		ID:        rec.ID,
		cfg:       cfg,
		reg:       r,
		cancel:    cancel,
		created:   orNow(rec.Created),
		seed:      rec.Seed,
		retries:   rec.Retries,
		recovered: true,
		started:   rec.Started,
	}
	s.snap.Kind = cfg.EstimatorKind()
	s.snap.LastSlot = -1
	if rec.Points > 0 {
		s.snap = snapshotOfPoint(cfg.EstimatorKind(), rec.LastPoint)
		s.slotsDone = rec.LastPoint.SlotsDone
		s.counters = countersOfPoint(rec.LastPoint)
	}

	resume := false
	switch {
	case state.Terminal():
		s.state = state
		s.finished = orNow(rec.Finished)
		if rec.Err != "" {
			s.err = errors.New(rec.Err)
		}
	case cfg.Resume:
		s.state = Pending
		s.started = time.Time{}
		resume = true
	default:
		s.state = Recovered
		s.err = ErrInterrupted
		s.finished = time.Now()
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		cancel()
		return restoreSkipped
	}
	if _, exists := r.sessions[rec.ID]; exists {
		r.mu.Unlock()
		cancel()
		return restoreSkipped
	}
	r.sessions[rec.ID] = s
	r.order = append(r.order, rec.ID)
	if resume {
		r.wg.Add(1)
	}
	r.mu.Unlock()

	switch {
	case resume:
		r.launch(ctx, s)
		return restoreResumed
	case state.Terminal():
		cancel()
		return restoreTerminal
	default:
		cancel()
		// Tell the archive the interruption is now a terminal fact, so
		// the next restart replays it as such.
		r.emitState(s)
		return restoreMarked
	}
}

// snapshotOfPoint rebuilds the live-view snapshot from the last
// persisted point (total estimates only: the window has aged out),
// including any persisted bootstrap confidence bounds.
func snapshotOfPoint(kind string, p store.Point) estimate.Snapshot {
	est := badabing.Estimates{
		M:           int(p.M),
		Frequency:   p.Frequency,
		Duration:    p.Duration,
		HasDuration: p.HasDuration,
	}
	snap := estimate.Snapshot{Kind: kind}
	snap.Total = est
	snap.Window = est
	snap.LastSlot = -1
	if p.HasFreqCI {
		snap.FrequencyCI = &badabing.Interval{Lo: p.FreqLo, Hi: p.FreqHi, Level: p.CILevel}
	}
	if p.HasDurCI {
		snap.DurationCI = &badabing.Interval{Lo: p.DurLo, Hi: p.DurHi, Level: p.CILevel}
	}
	return snap
}

func countersOfPoint(p store.Point) SessionCounters {
	return SessionCounters{
		ProbesSent:  p.ProbesSent,
		ProbesLost:  p.ProbesLost,
		PacketsSent: p.PacketsSent,
		PacketsLost: p.PacketsLost,
		Experiments: p.Experiments,
	}
}

// reserveID keeps the id allocator above every recovered id, whether or
// not the session was re-registered.
func (r *Registry) reserveID(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := idNumber(id); n > r.nextID {
		r.nextID = n
	}
}

// idNumber parses the numeric part of a generated session id ("s0042"
// → 42), 0 for foreign ids.
func idNumber(id string) int {
	if !strings.HasPrefix(id, "s") {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimPrefix(id, "s"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func orNow(t time.Time) time.Time {
	if t.IsZero() {
		return time.Now()
	}
	return t
}

// unwrapSink walks wrapper sinks (the circuit breaker, chaos
// injectors) down to the real store, returning every layer so callers
// can probe each for a query interface. Middleware exposes its inner
// sink as either `Unwrap() Sink` (fleet's own wrappers) or
// `Unwrap() any` (wrappers that cannot import fleet).
func unwrapSink(s Sink) []Sink {
	chain := []Sink{s}
	for s != nil {
		switch u := s.(type) {
		case interface{ Unwrap() Sink }:
			s = u.Unwrap()
		case interface{ Unwrap() any }:
			next, ok := u.Unwrap().(Sink)
			if !ok {
				return chain
			}
			s = next
		default:
			return chain
		}
		chain = append(chain, s)
	}
	return chain
}

// HistorySourceOf returns the query side of the registry's store
// (unwrapping breaker middleware), nil when persistence is disabled or
// the sink cannot serve history.
func (r *Registry) HistorySourceOf() HistorySource {
	for _, s := range unwrapSink(r.store) {
		if hs, ok := s.(HistorySource); ok {
			return hs
		}
	}
	return nil
}

// StatsSourceOf returns the stats side of the registry's store
// (unwrapping breaker middleware), nil when unavailable.
func (r *Registry) StatsSourceOf() StatsSource {
	for _, s := range unwrapSink(r.store) {
		if ss, ok := s.(StatsSource); ok {
			return ss
		}
	}
	return nil
}
