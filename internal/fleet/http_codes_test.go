package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"badabing/internal/store"
)

// TestHTTPStatusCodes pins the API's error contract, uniformly across
// every route: unknown session ids are 404 (JSON body), malformed
// payloads and query parameters are 400, unmatched paths are a JSON
// 404 — never a default text/plain one, never a 500.
func TestHTTPStatusCodes(t *testing.T) {
	mem := store.NewMem()
	reg := NewRegistry(Config{MaxConcurrent: 1, Store: mem})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	do := func(method, path, body string) (int, string, http.Header) {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, srv.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b), resp.Header
	}

	// One real session so the happy paths stay distinguishable from the
	// error paths.
	s, err := reg.Create(SessionConfig{Scenario: "idle", Slots: 1000})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, 10*time.Second)

	cases := []struct {
		name         string
		method, path string
		body         string
		want         int
	}{
		{"get unknown id", "GET", "/v1/sessions/nope", "", 404},
		{"snapshot unknown id", "GET", "/v1/sessions/nope/snapshot", "", 404},
		{"history unknown id", "GET", "/v1/sessions/nope/history", "", 404},
		{"stop unknown id", "POST", "/v1/sessions/nope/stop", "", 404},
		{"delete unknown id", "DELETE", "/v1/sessions/nope", "", 404},
		{"history bad from", "GET", "/v1/sessions/" + s.ID + "/history?from=yesterday", "", 400},
		{"history bad to", "GET", "/v1/sessions/" + s.ID + "/history?to=2pm", "", 400},
		{"create malformed json", "POST", "/v1/sessions", `{"scenario":`, 400},
		{"create unknown field", "POST", "/v1/sessions", `{"scenariooo":"idle"}`, 400},
		{"create invalid config", "POST", "/v1/sessions", `{"scenario":"no-such-scenario"}`, 400},
		{"unmatched path", "GET", "/v1/nope", "", 404},
		{"root path", "GET", "/", "", 404},
		{"history ok", "GET", "/v1/sessions/" + s.ID + "/history", "", 200},
		{"history ok with bounds", "GET", "/v1/sessions/" + s.ID + "/history?from=0&to=2100-01-01T00:00:00Z", "", 200},
		{"store stats ok", "GET", "/v1/store/stats", "", 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, hdr := do(tc.method, tc.path, tc.body)
			if status != tc.want {
				t.Fatalf("%s %s: status %d, want %d (body %s)", tc.method, tc.path, status, tc.want, body)
			}
			if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("%s %s: content type %q, want JSON", tc.method, tc.path, ct)
			}
			if status >= 400 {
				var e struct {
					Error string `json:"error"`
				}
				if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
					t.Errorf("%s %s: error body %q, want {\"error\": ...}", tc.method, tc.path, body)
				}
			}
		})
	}

	// History with a store: points ride with fixed fields.
	var hist struct {
		ID     string `json:"id"`
		Store  bool   `json:"store"`
		Count  int    `json:"count"`
		Points []struct {
			AtUnixNano int64   `json:"at_unix_nano"`
			LossRate   float64 `json:"loss_rate"`
		} `json:"points"`
	}
	if code := getJSON(t, srv.URL+"/v1/sessions/"+s.ID+"/history", &hist); code != 200 {
		t.Fatalf("history: %d", code)
	}
	if !hist.Store || hist.Count != len(hist.Points) {
		t.Errorf("history response inconsistent: %+v", hist)
	}

	// Store stats report the sink.
	var stats struct {
		Enabled bool `json:"enabled"`
	}
	if code := getJSON(t, srv.URL+"/v1/store/stats", &stats); code != 200 {
		t.Fatalf("store stats: %d", code)
	}
	if stats.Enabled {
		t.Error("Mem sink is not a stats source; enabled should be false")
	}
}

// TestHTTPHistoryNoStore: without a sink the history endpoint still
// answers 200 with store:false and an empty series, and /v1/store/stats
// reports disabled.
func TestHTTPHistoryNoStore(t *testing.T) {
	reg := NewRegistry(Config{MaxConcurrent: 1})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	s, err := reg.Create(SessionConfig{Scenario: "idle", Slots: 1000})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, 10*time.Second)

	var hist struct {
		Store  bool              `json:"store"`
		Count  int               `json:"count"`
		Points []json.RawMessage `json:"points"`
	}
	if code := getJSON(t, srv.URL+"/v1/sessions/"+s.ID+"/history", &hist); code != 200 {
		t.Fatalf("history: %d", code)
	}
	if hist.Store || hist.Count != 0 || hist.Points == nil || len(hist.Points) != 0 {
		t.Errorf("history without store: %+v, want store:false count:0 points:[]", hist)
	}

	var stats struct {
		Enabled bool `json:"enabled"`
	}
	if code := getJSON(t, srv.URL+"/v1/store/stats", &stats); code != 200 {
		t.Fatalf("store stats: %d", code)
	}
	if stats.Enabled {
		t.Error("store stats enabled without a store")
	}
}
