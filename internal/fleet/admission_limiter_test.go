package fleet

import (
	"fmt"
	"testing"
	"time"
)

// TestRateLimiterBucketCap pins the hard cap on the per-client map: a
// rapid many-source scan — every bucket mid-refill, so pruning alone
// evicts nothing — must not grow the map past maxBuckets.
func TestRateLimiterBucketCap(t *testing.T) {
	lim := NewRateLimiter(1, 4)
	clock := time.Unix(1700000000, 0)
	lim.SetNow(func() time.Time { return clock })

	for i := 0; i < 2*maxBuckets; i++ {
		// The clock never advances, so no bucket ever refills and
		// pruneLocked finds nothing idle.
		if ok, _ := lim.Allow(fmt.Sprintf("10.%d.%d.%d", i>>16&0xff, i>>8&0xff, i&0xff)); !ok {
			t.Fatalf("fresh client %d denied", i)
		}
		if got := lim.Clients(); got > maxBuckets {
			t.Fatalf("bucket map grew to %d after %d clients, cap %d", got, i+1, maxBuckets)
		}
	}

	// Established limits still work at the cap: an exhausted client
	// stays limited.
	key := "203.0.113.9"
	for i := 0; i < 4; i++ {
		if ok, _ := lim.Allow(key); !ok {
			t.Fatalf("burst take %d denied", i)
		}
	}
	if ok, retry := lim.Allow(key); ok || retry <= 0 {
		t.Fatalf("exhausted client allowed (ok=%v retry=%v)", ok, retry)
	}
}
