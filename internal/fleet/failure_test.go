package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"badabing/internal/chaos"
)

// TestWireSessionRetriesToDone: a wire session created while its
// reflector is down fails the liveness handshake, re-queues under the
// retry policy with backoff, and completes once the reflector restarts —
// with the retry count surfaced in the session view and /metrics.
func TestWireSessionRetriesToDone(t *testing.T) {
	if testing.Short() {
		t.Skip("paces real probes and retry backoffs for seconds")
	}
	fr := chaos.NewFlakyReflector(chaos.Fault{}, chaos.Fault{}, 41)
	if err := fr.Start(); err != nil {
		t.Fatal(err)
	}
	addr := fr.Addr().String()
	fr.Kill() // down at session start: the first attempt must fail fast
	defer fr.Kill()

	reg := NewRegistry(Config{MaxConcurrent: 1})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	body := fmt.Sprintf(
		`{"scenario":"wire","target":%q,"p":0.3,"slots":150,"slot_micros":10000,"step_slots":50,"seed":41,"max_retries":4,"retry_backoff_millis":200}`,
		addr)
	var created View
	if code := postJSON(t, srv.URL+"/v1/sessions", body, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}

	// Bring the far end back while the first attempt is still failing.
	go func() {
		time.Sleep(1200 * time.Millisecond)
		if err := fr.Start(); err != nil {
			t.Errorf("reflector restart: %v", err)
		}
	}()

	deadline := time.Now().Add(60 * time.Second)
	var v View
	for {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %v (retries %d, err %q)", v.State, v.Retries, v.Error)
		}
		if code := getJSON(t, srv.URL+"/v1/sessions/"+created.ID, &v); code != http.StatusOK {
			t.Fatalf("get: status %d", code)
		}
		if v.State.Terminal() {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if v.State != Done {
		t.Fatalf("session ended %v (err %q), want done after retries", v.State, v.Error)
	}
	if v.Retries == 0 {
		t.Fatal("session completed without recording any retries")
	}
	if v.Counters.ProbesSent == 0 {
		t.Fatalf("no probes accounted after retry: %+v", v.Counters)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	samples := parsePrometheus(t, buf.String())
	if samples["badabingd_session_retries_total"] < 1 {
		t.Errorf("session_retries_total = %v, want >= 1", samples["badabingd_session_retries_total"])
	}
}

// TestWireSessionDegradedOnDeadPath: the reflector blackholes mid-run and
// never comes back; with no retry budget the session must go Degraded —
// partial estimates from the alive window, zero loss frequency (the path
// was clean while alive), never a fake loss episode.
func TestWireSessionDegradedOnDeadPath(t *testing.T) {
	if testing.Short() {
		t.Skip("paces real probes for seconds")
	}
	fr := chaos.NewFlakyReflector(chaos.Fault{}, chaos.Fault{}, 43)
	if err := fr.Start(); err != nil {
		t.Fatal(err)
	}
	defer fr.Kill()

	reg := NewRegistry(Config{MaxConcurrent: 1})
	defer reg.Close()

	s, err := reg.Create(SessionConfig{
		Scenario:   "wire",
		Target:     fr.Addr().String(),
		P:          0.3,
		Slots:      3000, // 30s horizon; the watchdog must cut it short
		SlotMicros: 10_000,
		StepSlots:  50,
		Seed:       43,
	})
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(1500 * time.Millisecond)
		fr.Hang()
	}()

	deadline := time.Now().Add(25 * time.Second)
	for !s.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %v", s.State())
		}
		time.Sleep(50 * time.Millisecond)
	}
	v := s.View()
	if v.State != Degraded {
		t.Fatalf("session ended %v (err %q), want degraded", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "dead") {
		t.Errorf("degraded session error does not name the dead path: %q", v.Error)
	}
	if v.Counters.ProbesSent == 0 {
		t.Fatal("degraded session published no pre-outage counters")
	}
	if v.Counters.ProbesLost != 0 {
		t.Errorf("outage leaked into counters as %d lost probes", v.Counters.ProbesLost)
	}
	if f := v.Snapshot.Total.Frequency; f != 0 {
		t.Errorf("outage reported as loss frequency %v", f)
	}

	// Degraded is terminal: deletable, counted in its own metrics state.
	if err := reg.Delete(s.ID); err != nil {
		t.Fatalf("deleting degraded session: %v", err)
	}
}

// TestCreateAPIHardening: every malformed or invalid create is a client
// error — never a 500 — oversized bodies are cut off, and a draining
// registry answers 503.
func TestCreateAPIHardening(t *testing.T) {
	reg := NewRegistry(Config{MaxConcurrent: 1})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"scenario":`, http.StatusBadRequest},
		{"unknown field", `{"scenario":"cbr","bogus":1}`, http.StatusBadRequest},
		{"wrong type", `{"slots":"many"}`, http.StatusBadRequest},
		{"unknown scenario", `{"scenario":"teleport"}`, http.StatusBadRequest},
		{"wire without target", `{"scenario":"wire"}`, http.StatusBadRequest},
		{"probability out of range", `{"p":1.5}`, http.StatusBadRequest},
		{"negative retries", `{"max_retries":-1}`, http.StatusBadRequest},
		{"negative retry backoff", `{"max_retries":1,"retry_backoff_millis":-5}`, http.StatusBadRequest},
		{"oversized body", `{"name":"` + strings.Repeat("x", 2<<20) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			if resp.StatusCode >= 500 {
				t.Fatalf("server error %d for a client mistake", resp.StatusCode)
			}
		})
	}

	// A draining registry refuses new sessions with 503.
	if !reg.Drain(time.Second) {
		t.Fatal("empty registry failed to drain")
	}
	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"scenario":"cbr"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining registry answered %d, want 503", resp.StatusCode)
	}
	if !reg.Draining() {
		t.Fatal("Draining() false after Drain")
	}
}

// TestRetryOverrideBackoff exercises the retry loop without a wire path:
// a run override that fails twice then succeeds must leave the session
// Done with two recorded retries; a cancelled session must never retry.
func TestRetryOverrideBackoff(t *testing.T) {
	reg := NewRegistry(Config{MaxConcurrent: 1})
	defer reg.Close()
	attempts := make(chan int, 8)
	n := 0
	reg.runOverride = func(ctx context.Context, s *Session, seed int64) error {
		n++
		attempts <- n
		if n < 3 {
			return fmt.Errorf("transient failure %d", n)
		}
		return nil
	}
	s, err := reg.Create(SessionConfig{MaxRetries: 5, RetryBackoffMillis: 10})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !s.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %v", s.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.State(); got != Done {
		t.Fatalf("state %v, want done (err %v)", got, s.Err())
	}
	if got := s.Retries(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if got := reg.Totals().SessionRetries; got != 2 {
		t.Fatalf("totals.SessionRetries = %d, want 2", got)
	}

	// Exhausted budget: persistent failure ends Failed with MaxRetries
	// recorded.
	n = 0
	reg.runOverride = func(ctx context.Context, s *Session, seed int64) error {
		return fmt.Errorf("always broken")
	}
	s2, err := reg.Create(SessionConfig{MaxRetries: 2, RetryBackoffMillis: 5})
	if err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for !s2.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %v", s2.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s2.State(); got != Failed {
		t.Fatalf("state %v, want failed", got)
	}
	if got := s2.Retries(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}
