package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"badabing/internal/chaos"
	"badabing/internal/health"
	"badabing/internal/store"
)

// flakySink is a scripted Sink: it records every call in order and
// fails all appends while failing is set. A non-zero delay slows every
// forward (set before use) so drains span multiple chunks.
type flakySink struct {
	delay   time.Duration
	mu      sync.Mutex
	failing bool
	calls   []string
}

var errFlaky = errors.New("flaky sink: write failed")

func (f *flakySink) note(call string) error {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing {
		return errFlaky
	}
	f.calls = append(f.calls, call)
	return nil
}

func (f *flakySink) setFailing(v bool) {
	f.mu.Lock()
	f.failing = v
	f.mu.Unlock()
}

func (f *flakySink) recorded() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.calls...)
}

func (f *flakySink) SessionCreated(id string, at time.Time, cfgJSON []byte, seed int64) error {
	return f.note(fmt.Sprintf("created %s %d %s %d", id, at.UnixNano(), cfgJSON, seed))
}

func (f *flakySink) SessionState(id string, at time.Time, state string, terminal bool, errMsg string, retries int, seed int64) error {
	return f.note(fmt.Sprintf("state %s %d %s %v %q %d %d", id, at.UnixNano(), state, terminal, errMsg, retries, seed))
}

func (f *flakySink) SessionPoint(id string, p store.Point) error {
	return f.note(fmt.Sprintf("point %s %d %d", id, p.At, p.ProbesSent))
}

func (f *flakySink) RegistryTotals(t store.Totals) error {
	return f.note(fmt.Sprintf("totals %d", t.ProbesSent))
}

// publish drives n scripted events through the sink, tagging them with
// base so interleaved batches stay distinguishable.
func publish(s Sink, base, n int) {
	t0 := time.Unix(1700000000, 0).UTC()
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(base+i) * time.Second)
		s.SessionPoint("s0001", store.Point{At: at.UnixNano(), ProbesSent: int64(base + i)})
	}
}

func TestBreakerTripSpillReplay(t *testing.T) {
	inner := &flakySink{}
	b := NewBreakerSink(inner, BreakerConfig{Threshold: 3, ProbeInterval: time.Hour})
	defer b.Close()

	publish(b, 0, 2)
	if got := len(inner.recorded()); got != 2 {
		t.Fatalf("healthy forwards = %d, want 2", got)
	}

	inner.setFailing(true)
	publish(b, 2, 5)
	st := b.Stats()
	if st.State != "open" {
		t.Fatalf("state after failures = %s, want open", st.State)
	}
	if st.Trips != 1 {
		t.Fatalf("trips = %d, want 1", st.Trips)
	}
	if st.Spilled != 5 || st.SpillDepth != 5 {
		t.Fatalf("spilled/depth = %d/%d, want 5/5", st.Spilled, st.SpillDepth)
	}
	// Writes fail 3 times before the trip; the last 2 events spill
	// without touching the sink (the breaker is already open).
	if st.WriteErrors != 3 {
		t.Fatalf("write errors = %d, want 3", st.WriteErrors)
	}
	if b.Probe() {
		t.Fatal("Probe succeeded while sink still failing")
	}

	inner.setFailing(false)
	if !b.Probe() {
		t.Fatal("Probe failed after sink recovery")
	}
	st = b.Stats()
	if st.State != "closed" || st.SpillDepth != 0 || st.Replayed != 5 || st.Dropped != 0 {
		t.Fatalf("after recovery: %+v", st)
	}

	// Every event arrived, in publish order, with original payloads.
	want := make([]string, 0, 7)
	probe := &flakySink{}
	publish(probe, 0, 2)
	publish(probe, 2, 5)
	want = append(want, probe.recorded()...)
	got := inner.recorded()
	if len(got) != len(want) {
		t.Fatalf("forwarded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBreakerOrderingBehindSpill(t *testing.T) {
	// Once anything is spilled, later events must queue behind it even
	// though the sink is healthy again — otherwise replay would reorder
	// history.
	inner := &flakySink{}
	b := NewBreakerSink(inner, BreakerConfig{Threshold: 1, ProbeInterval: time.Hour})
	defer b.Close()

	inner.setFailing(true)
	publish(b, 0, 1) // trips and spills event 0
	inner.setFailing(false)
	publish(b, 1, 3) // healthy sink, but events 1..3 must spill behind 0

	if got := len(inner.recorded()); got != 0 {
		t.Fatalf("sink saw %d events before replay, want 0", got)
	}
	if !b.Probe() {
		t.Fatal("Probe failed with healthy sink")
	}
	got := inner.recorded()
	if len(got) != 4 {
		t.Fatalf("forwarded %d events, want 4", len(got))
	}
	for i, call := range got {
		want := fmt.Sprintf("point s0001 %d %d", time.Unix(1700000000, 0).UTC().Add(time.Duration(i)*time.Second).UnixNano(), i)
		if call != want {
			t.Fatalf("event %d = %q, want %q", i, call, want)
		}
	}
}

func TestBreakerPartialReplayStaysOpen(t *testing.T) {
	inner := &flakySink{}
	b := NewBreakerSink(inner, BreakerConfig{Threshold: 1, ProbeInterval: time.Hour})
	defer b.Close()

	inner.setFailing(true)
	publish(b, 0, 4)
	inner.setFailing(false)
	if !b.Probe() {
		t.Fatal("Probe failed with healthy sink")
	}

	// A second outage must trip again and preserve the new spill across
	// failed probes.
	inner.setFailing(true)
	publish(b, 4, 2)
	if st := b.Stats(); st.State != "open" || st.SpillDepth != 2 {
		t.Fatalf("after second outage: %+v", st)
	}
	if b.Probe() {
		t.Fatal("Probe succeeded while sink failing")
	}
	if st := b.Stats(); st.SpillDepth != 2 || st.State != "open" {
		t.Fatalf("after failed probe: %+v", st)
	}
	inner.setFailing(false)
	if !b.Probe() {
		t.Fatal("Probe failed after recovery")
	}
	if st := b.Stats(); st.Trips != 2 || st.Replayed != 6 || st.Dropped != 0 {
		t.Fatalf("final stats: %+v", st)
	}
}

func TestBreakerSpillOverflow(t *testing.T) {
	mon := health.NewMonitor(nil)
	inner := &flakySink{}
	b := NewBreakerSink(inner, BreakerConfig{
		Threshold:     1,
		SpillCapacity: 3,
		ProbeInterval: time.Hour,
		Health:        mon,
	})
	defer b.Close()

	if mon.State() != health.Ok {
		t.Fatalf("initial health = %v, want ok", mon.State())
	}
	inner.setFailing(true)
	publish(b, 0, 3)
	if mon.State() != health.Degraded {
		t.Fatalf("health while spilling = %v, want degraded", mon.State())
	}
	publish(b, 3, 2) // overflows: capacity 3
	st := b.Stats()
	if st.Dropped != 2 || st.SpillDepth != 3 {
		t.Fatalf("overflow stats: %+v", st)
	}
	if mon.State() != health.Failing {
		t.Fatalf("health after overflow = %v, want failing", mon.State())
	}

	inner.setFailing(false)
	if !b.Probe() {
		t.Fatal("Probe failed after recovery")
	}
	// Recovered, but the gap is permanent: degraded, not ok.
	if mon.State() != health.Degraded {
		t.Fatalf("health after recovery with drops = %v, want degraded", mon.State())
	}
	if got := len(inner.recorded()); got != 3 {
		t.Fatalf("sink saw %d events, want the 3 surviving ones", got)
	}
}

// TestBreakerDrainReplaysAcrossChunks: a spill far larger than one
// drain chunk is still fully replayed, in order, by a single probe.
func TestBreakerDrainReplaysAcrossChunks(t *testing.T) {
	inner := &flakySink{}
	b := NewBreakerSink(inner, BreakerConfig{Threshold: 1, ProbeInterval: time.Hour})
	defer b.Close()

	inner.setFailing(true)
	n := 2*drainChunk + 7
	publish(b, 0, n)
	inner.setFailing(false)
	if !b.Probe() {
		t.Fatal("Probe failed with healthy sink")
	}
	st := b.Stats()
	if st.State != "closed" || st.SpillDepth != 0 || st.Replayed != int64(n) {
		t.Fatalf("after chunked drain: %+v", st)
	}
	got := inner.recorded()
	if len(got) != n {
		t.Fatalf("forwarded %d events, want %d", len(got), n)
	}
	for i, call := range got {
		want := fmt.Sprintf("point s0001 %d %d", time.Unix(1700000000, 0).UTC().Add(time.Duration(i)*time.Second).UnixNano(), i)
		if call != want {
			t.Fatalf("event %d = %q, want %q", i, call, want)
		}
	}
}

// TestBreakerDeliverConcurrentWithDrain: while a long drain is in
// flight (yielding the mutex between chunks), concurrent publishes must
// neither stall for the whole replay nor break the ordering invariant —
// they spill behind the queue and everything reaches the sink exactly
// once, in publish order.
func TestBreakerDeliverConcurrentWithDrain(t *testing.T) {
	inner := &flakySink{delay: 100 * time.Microsecond}
	b := NewBreakerSink(inner, BreakerConfig{Threshold: 1, ProbeInterval: time.Hour})
	defer b.Close()

	inner.setFailing(true)
	publish(b, 0, 3*drainChunk)
	inner.setFailing(false)

	done := make(chan struct{})
	go func() {
		defer close(done)
		b.Probe()
	}()
	// Races the drain: these interleave with chunk yields and must queue
	// behind the spilled events.
	publish(b, 3*drainChunk, drainChunk)
	<-done
	// Anything spilled after the drain observed an empty buffer is
	// picked up by one more probe.
	if b.Stats().SpillDepth > 0 && !b.Probe() {
		t.Fatal("final Probe failed with healthy sink")
	}

	n := 4 * drainChunk
	got := inner.recorded()
	if len(got) != n {
		t.Fatalf("forwarded %d events, want %d", len(got), n)
	}
	for i, call := range got {
		want := fmt.Sprintf("point s0001 %d %d", time.Unix(1700000000, 0).UTC().Add(time.Duration(i)*time.Second).UnixNano(), i)
		if call != want {
			t.Fatalf("event %d = %q, want %q", i, call, want)
		}
	}
	if st := b.Stats(); st.Dropped != 0 || st.SpillDepth != 0 {
		t.Fatalf("final stats: %+v", st)
	}
}

func TestBreakerCloseDropsUnreplayed(t *testing.T) {
	inner := &flakySink{}
	b := NewBreakerSink(inner, BreakerConfig{Threshold: 1, ProbeInterval: time.Hour})
	inner.setFailing(true)
	publish(b, 0, 3)
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := b.Stats(); st.Dropped != 3 || st.SpillDepth != 0 {
		t.Fatalf("stats after close: %+v", st)
	}
}

// TestKillTheDisk is the acceptance test for the self-healing store
// path: an identical scripted event sequence is driven through (a) a
// breaker wrapping a fault-injected real store, with a disk-full window
// mid-run, and (b) a plain store with no faults. After recovery and a
// clean shutdown, both archives are reopened from disk and must hold
// byte-identical session history.
func TestKillTheDisk(t *testing.T) {
	fixed := time.Unix(1700000000, 0).UTC()
	openStore := func(dir string) *store.Store {
		t.Helper()
		s, _, err := store.Open(store.Options{
			Dir:   dir,
			Fsync: store.FsyncAlways,
			Now:   func() time.Time { return fixed },
		})
		if err != nil {
			t.Fatalf("store.Open(%s): %v", dir, err)
		}
		return s
	}

	faultedDir := t.TempDir()
	controlDir := t.TempDir()

	faulted := chaos.NewFaultySink(openStore(faultedDir))
	mon := health.NewMonitor(nil)
	b := NewBreakerSink(faulted, BreakerConfig{
		Threshold:     2,
		ProbeInterval: time.Hour, // probes driven manually
		Health:        mon,
	})
	control := openStore(controlDir)

	// The scripted run: one session's lifecycle with points spanning
	// the outage. step(phase) drives both sinks identically.
	cfgJSON := []byte(`{"target":"10.0.0.1:8000","duration":"30s"}`)
	script := func(s Sink, phase int) {
		switch phase {
		case 0:
			s.SessionCreated("s0001", fixed, cfgJSON, 42)
			s.SessionState("s0001", fixed.Add(1*time.Second), "running", false, "", 0, 42)
			s.SessionPoint("s0001", store.Point{At: fixed.Add(2 * time.Second).UnixNano(), SlotsDone: 10, M: 5, Frequency: 0.05, ProbesSent: 30, ProbesLost: 2, PacketsSent: 90, PacketsLost: 3, Experiments: 5})
		case 1: // during the disk-full window
			s.SessionPoint("s0001", store.Point{At: fixed.Add(4 * time.Second).UnixNano(), SlotsDone: 20, M: 11, Frequency: 0.08, Duration: 1.5, HasDuration: true, ProbesSent: 60, ProbesLost: 5, PacketsSent: 180, PacketsLost: 8, Experiments: 11})
			s.SessionPoint("s0001", store.Point{At: fixed.Add(6 * time.Second).UnixNano(), SlotsDone: 30, M: 17, Frequency: 0.07, Duration: 1.2, HasDuration: true, ProbesSent: 90, ProbesLost: 7, PacketsSent: 270, PacketsLost: 11, Experiments: 17})
			s.RegistryTotals(store.Totals{SessionsCreated: 1, ProbesSent: 90, ProbesLost: 7, PacketsSent: 270, PacketsLost: 11, Experiments: 17})
		case 2: // after recovery
			s.SessionPoint("s0001", store.Point{At: fixed.Add(8 * time.Second).UnixNano(), SlotsDone: 40, M: 23, Frequency: 0.06, Duration: 1.1, HasDuration: true, ProbesSent: 120, ProbesLost: 8, PacketsSent: 360, PacketsLost: 12, Experiments: 23})
			s.SessionState("s0001", fixed.Add(9*time.Second), "done", true, "", 0, 42)
			s.RegistryTotals(store.Totals{SessionsCreated: 1, SessionsFinished: 1, ProbesSent: 120, ProbesLost: 8, PacketsSent: 360, PacketsLost: 12, Experiments: 23})
		}
	}

	// Phase 0: both healthy.
	script(b, 0)
	script(control, 0)
	if mon.State() != health.Ok {
		t.Fatalf("health before fault = %v, want ok", mon.State())
	}

	// Phase 1: kill the faulted store's disk mid-run. Sessions keep
	// publishing; the breaker trips and spills.
	faulted.FailWrites(nil)
	script(b, 1)
	script(control, 1)
	if b.State() != BreakerOpen {
		t.Fatalf("breaker state during outage = %v, want open", b.State())
	}
	if mon.State() != health.Degraded {
		t.Fatalf("health during outage = %v, want degraded", mon.State())
	}
	if b.Probe() {
		t.Fatal("Probe succeeded while the disk is still down")
	}

	// Recovery: writes work again; the probe replays the spill.
	faulted.RecoverWrites()
	if !b.Probe() {
		t.Fatal("Probe failed after disk recovery")
	}
	if mon.State() != health.Ok {
		t.Fatalf("health after recovery = %v, want ok", mon.State())
	}
	st := b.Stats()
	if st.Dropped != 0 || st.Spilled == 0 || st.Spilled != st.Replayed {
		t.Fatalf("spill accounting after recovery: %+v", st)
	}

	// Phase 2: both healthy again.
	script(b, 2)
	script(control, 2)

	if err := b.Close(); err != nil { // closes faulted → store
		t.Fatalf("breaker Close: %v", err)
	}
	if err := control.Close(); err != nil {
		t.Fatalf("control Close: %v", err)
	}

	// Reopen both archives from disk: recovery info and history must be
	// byte-identical — the outage left no trace in the persisted record.
	snapshot := func(dir string) []byte {
		t.Helper()
		s, info, err := store.Open(store.Options{
			Dir:   dir,
			Fsync: store.FsyncAlways,
			Now:   func() time.Time { return fixed },
		})
		if err != nil {
			t.Fatalf("reopen %s: %v", dir, err)
		}
		defer s.Close()
		hist, ok := s.History("s0001", time.Time{}, time.Time{})
		if !ok {
			t.Fatalf("%s: no history for s0001", dir)
		}
		blob, err := json.Marshal(struct {
			Sessions []store.Session
			History  []store.Point
			Totals   store.Totals
		}{s.Sessions(), hist, info.Totals})
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return blob
	}
	got, want := snapshot(faultedDir), snapshot(controlDir)
	if string(got) != string(want) {
		t.Fatalf("post-recovery archive differs from unimpaired run:\nfaulted: %s\ncontrol: %s", got, want)
	}
}
