package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/lab"
	"badabing/internal/probe"
	"badabing/internal/session"
)

// postJSON posts a JSON body and decodes the JSON response into out.
func postJSON(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitTerminal polls until the session reaches a terminal state.
func waitTerminal(t *testing.T, s *Session, within time.Duration) State {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st := s.State()
		if st.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s stuck in %v", s.ID, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFleetConcurrentSessionsOverHTTP is the acceptance drive: nine
// simulated-path sessions run concurrently on a bounded pool, snapshots
// are observable mid-run through the HTTP API, every session completes,
// and /metrics parses as Prometheus text.
func TestFleetConcurrentSessionsOverHTTP(t *testing.T) {
	reg := NewRegistry(Config{MaxConcurrent: 4})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	// 15 s of virtual time in 1 s harvest steps, throttled 5 ms of real
	// time per step so mid-run state is observable.
	const nSessions = 9
	var ids []string
	for i := 0; i < nSessions; i++ {
		scenario := "idle"
		if i%3 == 0 {
			scenario = "cbr"
		}
		body := fmt.Sprintf(`{"name":"sess-%d","scenario":%q,"slots":3000,"step_slots":200,"step_delay_micros":5000,"seed":%d}`,
			i, scenario, i+1)
		var view View
		if code := postJSON(t, srv.URL+"/v1/sessions", body, &view); code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
		if view.State.Terminal() {
			t.Fatalf("session %s terminal at creation", view.ID)
		}
		ids = append(ids, view.ID)
	}

	// Observe at least one snapshot mid-run: a session that is still
	// running (slots_done below the horizon) with experiments already
	// estimated.
	sawMidRun := false
	deadline := time.Now().Add(30 * time.Second)
	for !sawMidRun && time.Now().Before(deadline) {
		for _, id := range ids {
			var view View
			if code := getJSON(t, srv.URL+"/v1/sessions/"+id, &view); code != http.StatusOK {
				t.Fatalf("get %s: status %d", id, code)
			}
			if view.State == Running && view.SlotsDone < view.Config.Slots && view.Snapshot.Total.M > 0 {
				sawMidRun = true
				break
			}
		}
	}
	if !sawMidRun {
		t.Fatal("never observed a mid-run snapshot with M > 0 via the API")
	}

	// Every session completes.
	for _, id := range ids {
		s, err := reg.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, s, 60*time.Second); st != Done {
			t.Fatalf("session %s finished %v (err %v)", id, st, s.Err())
		}
	}

	// Completed sessions report full progress and real probe traffic.
	var list struct {
		Sessions []View `json:"sessions"`
	}
	if code := getJSON(t, srv.URL+"/v1/sessions", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Sessions) != nSessions {
		t.Fatalf("listed %d sessions, want %d", len(list.Sessions), nSessions)
	}
	for _, v := range list.Sessions {
		if v.SlotsDone != v.Config.Slots {
			t.Errorf("%s: slots_done %d of %d", v.ID, v.SlotsDone, v.Config.Slots)
		}
		if v.Counters.ProbesSent == 0 || v.Counters.PacketsSent == 0 {
			t.Errorf("%s: no probe traffic counted: %+v", v.ID, v.Counters)
		}
		if v.Snapshot.Total.M == 0 {
			t.Errorf("%s: no experiments in final snapshot", v.ID)
		}
	}

	// /metrics parses and reflects the fleet.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	samples := parsePrometheus(t, buf.String())
	if got := samples[`badabingd_sessions{state="done"}`]; got != nSessions {
		t.Errorf("done sessions metric = %v, want %d\n%s", got, nSessions, buf.String())
	}
	if samples["badabingd_probes_sent_total"] <= 0 {
		t.Error("probes_sent_total not positive")
	}
	if samples["badabingd_sessions_created_total"] != nSessions {
		t.Errorf("sessions_created_total = %v", samples["badabingd_sessions_created_total"])
	}
	found := false
	for key := range samples {
		if strings.HasPrefix(key, "badabingd_session_loss_frequency{session=") {
			found = true
		}
	}
	if !found {
		t.Error("no per-session frequency gauge exposed")
	}
}

// sampleRe matches one exposition-format sample line.
var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^{}]*\})?) ([^ ]+)$`)

// parsePrometheus validates text exposition format strictly enough to
// catch malformed families and returns sample values keyed by
// name{labels}.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge":
					typed[parts[2]] = true
				case "histogram":
					// Histogram samples append _bucket/_sum/_count to
					// the family name.
					typed[parts[2]+"_bucket"] = true
					typed[parts[2]+"_sum"] = true
					typed[parts[2]+"_count"] = true
				default:
					t.Fatalf("unknown metric type in %q", line)
				}
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := m[1]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !typed[name] {
			t.Fatalf("sample %q precedes its TYPE header", line)
		}
		samples[m[1]] = v
	}
	return samples
}

// TestSessionStopDeleteLifecycle exercises stop, delete-running conflict
// and delete-after-stop over the HTTP API.
func TestSessionStopDeleteLifecycle(t *testing.T) {
	reg := NewRegistry(Config{MaxConcurrent: 2})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	// A session long enough (real time) to still be running when we act:
	// 100 steps of 1 ms.
	var view View
	body := `{"scenario":"idle","slots":10000,"step_slots":100,"step_delay_micros":1000}`
	if code := postJSON(t, srv.URL+"/v1/sessions", body, &view); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	id := view.ID

	// Deleting a non-terminal session conflicts.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sessions/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delete running: status %d, want 409", resp.StatusCode)
	}

	if code := postJSON(t, srv.URL+"/v1/sessions/"+id+"/stop", "", &view); code != http.StatusOK {
		t.Fatalf("stop: status %d", code)
	}
	s, err := reg.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, 30*time.Second); st != Stopped {
		t.Fatalf("state after stop = %v", st)
	}

	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/sessions/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete stopped: status %d, want 204", resp.StatusCode)
	}
	if code := getJSON(t, srv.URL+"/v1/sessions/"+id, nil); code != http.StatusNotFound {
		t.Fatalf("get deleted: status %d, want 404", code)
	}
}

// TestSessionPanicIsolation: a panicking session fails alone; the
// registry and its other sessions keep working.
func TestSessionPanicIsolation(t *testing.T) {
	reg := NewRegistry(Config{MaxConcurrent: 2})
	defer reg.Close()
	reg.runOverride = func(ctx context.Context, s *Session, seed int64) error {
		if s.cfg.Name == "boom" {
			panic("synthetic session crash")
		}
		return nil
	}
	bad, err := reg.Create(SessionConfig{Name: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	good, err := reg.Create(SessionConfig{Name: "fine"})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, bad, 10*time.Second); st != Failed {
		t.Fatalf("panicking session state %v, want failed", st)
	}
	if err := bad.Err(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not surfaced: %v", err)
	}
	if st := waitTerminal(t, good, 10*time.Second); st != Done {
		t.Fatalf("healthy session state %v (err %v)", st, good.Err())
	}
}

// TestCreateValidation: the API rejects bad requests instead of crashing
// the daemon.
func TestCreateValidation(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	for _, body := range []string{
		`{"p": 1.5}`,                // probability out of range
		`{"p": -0.1}`,               // negative probability
		`{"slots": -5}`,             // negative horizon
		`{"extended_fraction": 2}`,  // fraction out of range
		`{"scenario": "teleport"}`,  // unknown scenario
		`{"step_delay_micros": -1}`, // negative delay
		`{"bogus_field": true}`,     // unknown field
		`{"p": `,                    // broken JSON
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := postJSON(t, srv.URL+"/v1/sessions", body, &e); code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, code)
		} else if e.Error == "" {
			t.Errorf("body %s: no error message", body)
		}
	}
	if got := len(reg.List()); got != 0 {
		t.Fatalf("%d sessions registered from invalid requests", got)
	}

	// An explicit extended_fraction of 0 is valid and means "no extended
	// experiments" (the zero-value footgun fix, end to end).
	var view View
	code := postJSON(t, srv.URL+"/v1/sessions",
		`{"scenario":"idle","slots":2000,"extended_fraction":0,"seed":3}`, &view)
	if code != http.StatusCreated {
		t.Fatalf("extended_fraction 0 rejected: %d", code)
	}
	if view.Config.ExtendedFraction == nil || *view.Config.ExtendedFraction != 0 {
		t.Fatalf("extended_fraction not preserved: %+v", view.Config.ExtendedFraction)
	}
}

// TestRegistryFull: MaxSessions is enforced with 429 over the API.
func TestRegistryFull(t *testing.T) {
	reg := NewRegistry(Config{MaxSessions: 2, MaxConcurrent: 1})
	defer reg.Close()
	reg.runOverride = func(ctx context.Context, s *Session, seed int64) error {
		<-ctx.Done()
		return ctx.Err()
	}
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	for i := 0; i < 2; i++ {
		if code := postJSON(t, srv.URL+"/v1/sessions", `{"scenario":"idle"}`, nil); code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
	}
	if code := postJSON(t, srv.URL+"/v1/sessions", `{"scenario":"idle"}`, nil); code != http.StatusTooManyRequests {
		t.Fatalf("create over cap: status %d, want 429", code)
	}
}

// TestFinalSnapshotMatchesBatch: a completed session's total estimates
// are exactly what the batch pipeline computes over the same path — the
// streaming path adds no drift.
func TestFinalSnapshotMatchesBatch(t *testing.T) {
	cfg := SessionConfig{Scenario: "cbr", Slots: 3000, Seed: 5}
	reg := NewRegistry(Config{MaxConcurrent: 1})
	defer reg.Close()
	s, err := reg.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, 60*time.Second); st != Done {
		t.Fatalf("session state %v (err %v)", st, s.Err())
	}
	got := s.Snapshot().Total

	// Replay the identical run through the batch pipeline.
	full := s.Config() // defaults applied
	slot := time.Duration(full.SlotMicros) * time.Microsecond
	plans := badabing.MustSchedule(full.scheduleConfig(full.Seed))
	sim, d := labScenario(lab.CBRUniform)(full.Seed + 1)
	bb := probe.StartBadabing(sim, d, probeFlowID, probe.BadabingConfig{
		Plans:  plans,
		Slot:   slot,
		Marker: badabing.RecommendedMarker(full.P, slot),
	})
	sim.Run(time.Duration(full.Slots)*slot + session.DefaultSettle)
	acc := &badabing.Accumulator{Slot: slot}
	acc.Merge(bb.Counts())
	want := badabing.EstimatesOf(acc)
	if got != want {
		t.Fatalf("final snapshot diverged from batch:\n got %+v\nwant %+v", got, want)
	}
	if got.M == 0 {
		t.Fatal("batch comparison vacuous: no experiments")
	}
}

// TestRegistryCloseStopsSessions: Close cancels in-flight sessions and
// returns once they have wound down.
func TestRegistryCloseStopsSessions(t *testing.T) {
	reg := NewRegistry(Config{MaxConcurrent: 2})
	for i := 0; i < 3; i++ {
		_, err := reg.Create(SessionConfig{
			Scenario: "idle", Slots: 50_000, StepSlots: 100, StepDelayMicros: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		reg.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return")
	}
	for _, s := range reg.List() {
		if st := s.State(); !st.Terminal() {
			t.Errorf("session %s state %v after Close", s.ID, st)
		}
	}
	if _, err := reg.Create(SessionConfig{Scenario: "idle"}); err == nil {
		t.Error("Create accepted after Close")
	}
}
