package traffic

import (
	"testing"
	"time"

	"badabing/internal/capture"
	"badabing/internal/simnet"
)

func TestCBRStop(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.GigE, 0, 1_000_000, simnet.ReceiverFunc(func(*simnet.Packet) {}))
	c := NewCBR(s, l, 1, simnet.Rate(12_000_000), 1500)
	s.Run(100 * time.Millisecond)
	c.Stop()
	atStop := c.Sent()
	s.Run(time.Second)
	if c.Sent() > atStop+1 {
		t.Fatalf("CBR kept sending after Stop: %d → %d", atStop, c.Sent())
	}
}

func TestEpisodeInjectorStop(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	ids := NewIDSpace(1000)
	inj := NewEpisodeInjector(s, d, ids, EpisodeInjectorConfig{MeanSpacing: 3 * time.Second})
	s.Run(10 * time.Second)
	inj.Stop()
	n := inj.Episodes()
	s.Run(40 * time.Second)
	if inj.Episodes() != n {
		t.Fatalf("injector kept bursting after Stop: %d → %d", n, inj.Episodes())
	}
	if _, _, delivered := d.Bottleneck.Stats(); delivered == 0 {
		t.Fatal("no traffic delivered")
	}
}

func TestEpisodeInjectorMinSpacing(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	ids := NewIDSpace(1000)
	mon := capture.Attach(s, d.Bottleneck, capture.Config{})
	// Absurdly small requested spacing: the injector must enforce its
	// 2-second floor so episodes never merge.
	NewEpisodeInjector(s, d, ids, EpisodeInjectorConfig{
		MeanSpacing:     100 * time.Millisecond,
		Overload:        4,
		BaseUtilization: 0.25,
		Seed:            6,
	})
	s.Run(60 * time.Second)
	eps := mon.Episodes()
	if len(eps) < 2 {
		t.Fatalf("only %d episodes", len(eps))
	}
	for i := 1; i < len(eps); i++ {
		if gap := eps[i].Start - eps[i-1].End; gap < time.Second {
			t.Fatalf("episodes %d,%d only %v apart", i-1, i, gap)
		}
	}
}

func TestWebStop(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	ids := NewIDSpace(1000)
	w := NewWeb(s, d, ids, WebConfig{Seed: 9})
	s.Run(10 * time.Second)
	w.Stop()
	n := w.Sessions()
	s.Run(40 * time.Second)
	if w.Sessions() != n {
		t.Fatalf("web workload kept spawning sessions after Stop: %d → %d", n, w.Sessions())
	}
	if w.Active() != 0 {
		t.Fatalf("%d transfers still active long after Stop", w.Active())
	}
}

func TestWebConfigDefaults(t *testing.T) {
	var c WebConfig
	c.applyDefaults()
	if c.SessionRate != 30 || c.ObjectsPerSession != 5 || c.ParetoAlpha != 1.2 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.SurgeSpacing != 20*time.Second {
		t.Fatalf("surge spacing default %v, want 20s (paper: loss ≈ every 20s)", c.SurgeSpacing)
	}
}

func TestEpisodeInjectorDefaults(t *testing.T) {
	var c EpisodeInjectorConfig
	c.applyDefaults()
	if len(c.Durations) != 1 || c.Durations[0] != 68*time.Millisecond {
		t.Fatalf("default durations %v, want [68ms]", c.Durations)
	}
	if c.MeanSpacing != 10*time.Second {
		t.Fatalf("default spacing %v, want 10s", c.MeanSpacing)
	}
}

func TestInfiniteTCPFlowCount(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	ids := NewIDSpace(0)
	w := NewInfiniteTCP(s, d, ids, 7)
	s.Run(5 * time.Second) // flows start staggered over the first 2 s
	if len(w.Flows) != 7 {
		t.Fatalf("started %d flows, want 7", len(w.Flows))
	}
	var total int64
	for _, f := range w.Flows {
		total += f.AckedSegments()
	}
	if total == 0 {
		t.Fatal("no progress on any flow")
	}
}
