package traffic

import (
	"testing"
	"time"

	"badabing/internal/capture"
	"badabing/internal/simnet"
)

func TestCBRRateAndSpacing(t *testing.T) {
	s := simnet.New()
	var times []time.Duration
	sink := simnet.ReceiverFunc(func(p *simnet.Packet) { times = append(times, s.Now()) })
	l := simnet.NewLink(s, simnet.GigE, 0, 10_000_000, sink)
	c := NewCBR(s, l, 1, simnet.Rate(12_000_000), 1500) // 1000 pps
	s.Run(time.Second)
	c.Stop()
	if got := len(times); got < 995 || got > 1005 {
		t.Fatalf("delivered %d packets in 1s, want ≈1000", got)
	}
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if gap < 900*time.Microsecond || gap > 1100*time.Microsecond {
			t.Fatalf("packet gap %v at %d, want ≈1ms", gap, i)
		}
	}
}

func TestEpisodeInjectorUniformDurations(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	ids := NewIDSpace(1000)
	mon := capture.Attach(s, d.Bottleneck, capture.Config{})
	inj := NewEpisodeInjector(s, d, ids, EpisodeInjectorConfig{
		Durations:   []time.Duration{68 * time.Millisecond},
		MeanSpacing: 10 * time.Second,
	})
	const horizon = 180 * time.Second
	s.Run(horizon)
	inj.Stop()
	eps := mon.Episodes()
	if len(eps) < 8 || len(eps) > 35 {
		t.Fatalf("got %d episodes in 180s with 10s mean spacing, want ≈18", len(eps))
	}
	if inj.Episodes() != len(eps) {
		t.Errorf("injector bursts %d != extracted episodes %d", inj.Episodes(), len(eps))
	}
	truth := mon.Truth(horizon, 5*time.Millisecond)
	mean := truth.Duration.MeanDuration()
	if mean < 50*time.Millisecond || mean > 90*time.Millisecond {
		t.Errorf("mean episode duration %v, want ≈68ms", mean)
	}
	// σ should be small: durations are engineered constant.
	if sd := truth.Duration.StdDevDuration(); sd > 20*time.Millisecond {
		t.Errorf("duration σ = %v, want small (constant-duration episodes)", sd)
	}
}

func TestEpisodeInjectorMixedDurations(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	ids := NewIDSpace(1000)
	mon := capture.Attach(s, d.Bottleneck, capture.Config{})
	NewEpisodeInjector(s, d, ids, EpisodeInjectorConfig{
		Durations:   []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 150 * time.Millisecond},
		MeanSpacing: 8 * time.Second,
		Seed:        3,
	})
	const horizon = 240 * time.Second
	s.Run(horizon)
	truth := mon.Truth(horizon, 5*time.Millisecond)
	if truth.Episodes < 10 {
		t.Fatalf("only %d episodes", truth.Episodes)
	}
	mean := truth.Duration.MeanDuration()
	// Expect near the 100 ms average of {50,100,150}.
	if mean < 60*time.Millisecond || mean > 140*time.Millisecond {
		t.Errorf("mean duration %v, want ≈100ms", mean)
	}
	// Mixed durations: σ must be clearly positive.
	if sd := truth.Duration.StdDevDuration(); sd < 15*time.Millisecond {
		t.Errorf("duration σ = %v, want ≥15ms for mixed durations", sd)
	}
}

func TestInfiniteTCPCreatesPeriodicEpisodes(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	ids := NewIDSpace(0)
	mon := capture.Attach(s, d.Bottleneck, capture.Config{})
	NewInfiniteTCP(s, d, ids, 40)
	const horizon = 120 * time.Second
	s.Run(horizon)
	truth := mon.Truth(horizon, 5*time.Millisecond)
	if truth.Episodes < 5 {
		t.Fatalf("only %d episodes from 40 synchronized TCP sources in 120s", truth.Episodes)
	}
	mean := truth.Duration.MeanDuration()
	// Paper observed ≈136-150 ms episodes; accept a broad band around
	// the RTT scale.
	if mean < 20*time.Millisecond || mean > 600*time.Millisecond {
		t.Errorf("mean episode duration %v, want O(RTT)", mean)
	}
	if truth.Frequency <= 0 || truth.Frequency > 0.3 {
		t.Errorf("frequency %v out of plausible range", truth.Frequency)
	}
}

func TestWebWorkloadGeneratesLoadAndEpisodes(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	ids := NewIDSpace(0)
	mon := capture.Attach(s, d.Bottleneck, capture.Config{})
	w := NewWeb(s, d, ids, WebConfig{Seed: 5})
	const horizon = 120 * time.Second
	s.Run(horizon)
	w.Stop()
	if w.Sessions() == 0 || w.Transfers() == 0 {
		t.Fatalf("no web activity: %d sessions, %d transfers", w.Sessions(), w.Transfers())
	}
	truth := mon.Truth(horizon, 5*time.Millisecond)
	if truth.Episodes < 2 {
		t.Fatalf("web workload produced %d loss episodes in 120s, want several (surges ≈ every 20s)",
			truth.Episodes)
	}
	if truth.LossRate <= 0 {
		t.Error("no packet loss under web workload")
	}
}

func TestIDSpaceUnique(t *testing.T) {
	ids := NewIDSpace(100)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := ids.Next()
		if id <= 100 {
			t.Fatalf("id %d not above base", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}
