// Package traffic implements the paper's three cross-traffic scenarios as
// workload generators over simnet:
//
//   - infinite TCP sources (§4.2, Figure 4) — see NewInfiniteTCP;
//   - Iperf-like constant-bit-rate traffic with randomly spaced,
//     (approximately) constant-duration loss episodes (§4.2, Figure 5) —
//     see CBR and NewEpisodeInjector;
//   - Harpoon-like self-similar web traffic (§4.2, Figure 6) — see
//     NewWeb.
//
// Flow identifiers are allocated from an IDSpace so that cross traffic,
// probe traffic and transport acknowledgments never collide.
package traffic

import (
	"math/rand"
	"time"

	"badabing/internal/simnet"
	"badabing/internal/stats"
	"badabing/internal/tcp"
)

// IDSource hands out flow identifiers. Implementations may hook
// allocation, e.g. to register each new flow on a hop-local demux.
type IDSource interface {
	Next() uint64
}

// IDSpace is the basic IDSource: a counter.
type IDSpace struct{ next uint64 }

// NewIDSpace returns an allocator whose first id is base.
func NewIDSpace(base uint64) *IDSpace { return &IDSpace{next: base} }

// Next returns a fresh flow id.
func (s *IDSpace) Next() uint64 { s.next++; return s.next }

// CBR is a constant-bit-rate packet source.
type CBR struct {
	sim     *simnet.Sim
	link    *simnet.Link
	flow    uint64
	size    int
	ival    time.Duration
	stopped bool
	sent    uint64
}

// NewCBR creates a CBR source sending size-byte packets into link at the
// given rate, starting immediately. Packets are evenly spaced.
func NewCBR(sim *simnet.Sim, link *simnet.Link, flow uint64, rate simnet.Rate, size int) *CBR {
	c := &CBR{
		sim:  sim,
		link: link,
		flow: flow,
		size: size,
		ival: time.Duration(int64(size) * 8 * int64(time.Second) / int64(rate)),
	}
	sim.Schedule(0, c.tick)
	return c
}

func (c *CBR) tick() {
	if c.stopped {
		return
	}
	c.link.Send(&simnet.Packet{
		ID:   c.sim.NextPacketID(),
		Flow: c.flow,
		Kind: simnet.Data,
		Size: c.size,
		Seq:  int64(c.sent),
		Sent: c.sim.Now(),
	})
	c.sent++
	c.sim.Schedule(c.ival, c.tick)
}

// Stop halts the source after the current tick.
func (c *CBR) Stop() { c.stopped = true }

// Sent returns how many packets have been sent.
func (c *CBR) Sent() uint64 { return c.sent }

// InfiniteTCP is the paper's first scenario: n long-lived TCP flows
// sharing the bottleneck.
type InfiniteTCP struct {
	Flows []*tcp.Flow
}

// NewInfiniteTCP starts n infinite TCP sources on the dumbbell with the
// paper's parameters (1500-byte segments, 256-segment receive windows).
// Flow starts are staggered over the first two seconds, as real host
// stacks would be, so startup slow-starts do not align into one giant
// synchronized overshoot.
func NewInfiniteTCP(sim *simnet.Sim, d *simnet.Dumbbell, ids *IDSpace, n int) *InfiniteTCP {
	w := &InfiniteTCP{}
	rng := rand.New(rand.NewSource(int64(n)))
	for i := 0; i < n; i++ {
		id := ids.Next()
		start := time.Duration(rng.Int63n(int64(2 * time.Second)))
		sim.Schedule(start, func() {
			f := tcp.Start(sim, id, d.Bottleneck, d.Reverse, d.FwdDemux, d.RevDemux, tcp.Config{
				SendJitter: 200 * time.Microsecond,
			})
			w.Flows = append(w.Flows, f)
		})
	}
	return w
}

// EpisodeInjectorConfig parameterizes the Iperf-like scenario: a steady
// base load plus overload bursts engineered to produce loss episodes of
// approximately the requested durations, randomly spaced with exponential
// inter-arrival times.
type EpisodeInjectorConfig struct {
	// Durations are the target loss-episode durations; each episode
	// picks one uniformly at random. The paper uses {68 ms} (Table 4)
	// and {50, 100, 150 ms} (Table 5).
	Durations []time.Duration
	// MeanSpacing is the mean time between episode starts. Default 10 s.
	MeanSpacing time.Duration
	// BaseUtilization is the fraction of the bottleneck consumed by the
	// steady CBR component. Default 0.5.
	BaseUtilization float64
	// Overload is the ratio of total input rate to bottleneck rate
	// during a burst. Default 2.0.
	Overload float64
	// PacketSize for both components. Default 1500.
	PacketSize int
	// Seed for the spacing/duration RNG.
	Seed int64
}

func (c *EpisodeInjectorConfig) applyDefaults() {
	if len(c.Durations) == 0 {
		c.Durations = []time.Duration{68 * time.Millisecond}
	}
	if c.MeanSpacing == 0 {
		c.MeanSpacing = 10 * time.Second
	}
	if c.BaseUtilization == 0 {
		c.BaseUtilization = 0.5
	}
	if c.Overload == 0 {
		c.Overload = 2.0
	}
	if c.PacketSize == 0 {
		c.PacketSize = 1500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// EpisodeInjector drives the CBR-with-episodes workload.
type EpisodeInjector struct {
	sim  *simnet.Sim
	link *simnet.Link
	cfg  EpisodeInjectorConfig
	rng  *rand.Rand
	ids  IDSource
	base *CBR

	episodes int
	stopped  bool
}

// NewEpisodeInjector starts the base CBR load and schedules the first
// burst. Bursts are sized so that, after the time needed to fill the
// remaining buffer, the queue stays in overflow for the sampled duration.
func NewEpisodeInjector(sim *simnet.Sim, d *simnet.Dumbbell, ids *IDSpace, cfg EpisodeInjectorConfig) *EpisodeInjector {
	return NewEpisodeInjectorAt(sim, d.Bottleneck, ids, cfg)
}

// NewEpisodeInjectorAt is the topology-agnostic form: the workload
// congests the given link, which may be any hop of a multi-hop chain.
func NewEpisodeInjectorAt(sim *simnet.Sim, link *simnet.Link, ids IDSource, cfg EpisodeInjectorConfig) *EpisodeInjector {
	cfg.applyDefaults()
	inj := &EpisodeInjector{
		sim:  sim,
		link: link,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		ids:  ids,
	}
	bottleneck := link.Rate()
	baseRate := simnet.Rate(float64(bottleneck) * cfg.BaseUtilization)
	inj.base = NewCBR(sim, link, ids.Next(), baseRate, cfg.PacketSize)
	inj.scheduleNext()
	return inj
}

// Episodes returns how many bursts have been injected so far.
func (e *EpisodeInjector) Episodes() int { return e.episodes }

// Stop halts both the base load and future bursts.
func (e *EpisodeInjector) Stop() {
	e.stopped = true
	e.base.Stop()
}

func (e *EpisodeInjector) scheduleNext() {
	gap := stats.Exp(e.rng, e.cfg.MeanSpacing)
	// Keep episodes separated enough for the queue to drain fully:
	// below this floor, consecutive bursts would merge.
	if min := 2 * time.Second; gap < min {
		gap = min
	}
	e.sim.Schedule(gap, e.burst)
}

func (e *EpisodeInjector) burst() {
	if e.stopped {
		return
	}
	e.episodes++
	target := e.cfg.Durations[e.rng.Intn(len(e.cfg.Durations))]
	bottleneck := e.link.Rate()
	// Extra input rate during the burst, beyond the base load.
	extra := simnet.Rate(float64(bottleneck) * (e.cfg.Overload - e.cfg.BaseUtilization))
	// The queue's drain-time occupancy grows at (overload-1) seconds
	// per second, so filling the (empty) buffer takes
	// queueDur/(overload-1); the episode then lasts until the burst
	// ends.
	queueDur := bottleneck.TxTime(e.link.QueueCap())
	fill := time.Duration(float64(queueDur) / (e.cfg.Overload - 1))
	on := fill + target

	flow := e.ids.Next()
	ival := time.Duration(int64(e.cfg.PacketSize) * 8 * int64(time.Second) / int64(extra))
	n := int(on / ival)
	for i := 0; i < n; i++ {
		i := i
		e.sim.Schedule(time.Duration(i)*ival, func() {
			e.link.Send(&simnet.Packet{
				ID:   e.sim.NextPacketID(),
				Flow: flow,
				Kind: simnet.Data,
				Size: e.cfg.PacketSize,
				Seq:  int64(i),
				Sent: e.sim.Now(),
			})
		})
	}
	e.scheduleNext()
}
