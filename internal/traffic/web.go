package traffic

import (
	"math/rand"
	"time"

	"badabing/internal/simnet"
	"badabing/internal/stats"
	"badabing/internal/tcp"
)

// WebConfig parameterizes the Harpoon-like web workload: Poisson user
// sessions fetching heavy-tailed objects over TCP, plus periodic load
// surges. The paper configured Harpoon "to briefly increase its load in
// order to induce packet loss, on average, every 20 seconds".
type WebConfig struct {
	// SessionRate is the mean arrival rate of steady-state sessions per
	// second. Default 30.
	SessionRate float64
	// ObjectsPerSession is the mean number of objects fetched by a
	// session (geometric). Default 5.
	ObjectsPerSession float64
	// ParetoAlpha shapes object sizes. Default 1.2 (heavy-tailed, the
	// classic web-size regime).
	ParetoAlpha float64
	// MinObjectBytes is the Pareto scale parameter. Default 3000.
	MinObjectBytes float64
	// MaxObjectBytes truncates the tail. Default 5e6.
	MaxObjectBytes float64
	// ThinkTime is the mean pause between a session's objects.
	// Default 500 ms.
	ThinkTime time.Duration
	// SurgeSpacing is the mean time between load surges. Default 20 s.
	SurgeSpacing time.Duration
	// SurgeSessions is how many extra single-object sessions a surge
	// injects at once. Default 200 — enough to push the paper-scale
	// bottleneck into overflow briefly.
	SurgeSessions int
	// SurgeMinBytes is the minimum object size for surge sessions.
	// Surges model flash crowds pulling substantial objects, so their
	// flows ramp far enough to overload the link. Default 50000.
	SurgeMinBytes float64
	// Seed for all workload randomness.
	Seed int64
}

func (c *WebConfig) applyDefaults() {
	if c.SessionRate == 0 {
		c.SessionRate = 30
	}
	if c.ObjectsPerSession == 0 {
		c.ObjectsPerSession = 5
	}
	if c.ParetoAlpha == 0 {
		c.ParetoAlpha = 1.2
	}
	if c.MinObjectBytes == 0 {
		c.MinObjectBytes = 3000
	}
	if c.MaxObjectBytes == 0 {
		c.MaxObjectBytes = 5e6
	}
	if c.ThinkTime == 0 {
		c.ThinkTime = 500 * time.Millisecond
	}
	if c.SurgeSpacing == 0 {
		c.SurgeSpacing = 20 * time.Second
	}
	if c.SurgeSessions == 0 {
		c.SurgeSessions = 200
	}
	if c.SurgeMinBytes == 0 {
		c.SurgeMinBytes = 50_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Web drives the web-like workload.
type Web struct {
	sim *simnet.Sim
	d   *simnet.Dumbbell
	cfg WebConfig
	rng *rand.Rand
	ids *IDSpace

	stopped   bool
	sessions  uint64
	transfers uint64
	active    int
}

// NewWeb starts the workload immediately.
func NewWeb(sim *simnet.Sim, d *simnet.Dumbbell, ids *IDSpace, cfg WebConfig) *Web {
	cfg.applyDefaults()
	w := &Web{
		sim: sim,
		d:   d,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		ids: ids,
	}
	w.scheduleArrival()
	w.scheduleSurge()
	return w
}

// Stop prevents new sessions and surges; in-flight transfers complete.
func (w *Web) Stop() { w.stopped = true }

// Sessions returns how many sessions have started.
func (w *Web) Sessions() uint64 { return w.sessions }

// Transfers returns how many object transfers have completed.
func (w *Web) Transfers() uint64 { return w.transfers }

// Active returns the number of in-flight object transfers.
func (w *Web) Active() int { return w.active }

func (w *Web) scheduleArrival() {
	mean := time.Duration(float64(time.Second) / w.cfg.SessionRate)
	w.sim.Schedule(stats.Exp(w.rng, mean), func() {
		if w.stopped {
			return
		}
		w.startSession()
		w.scheduleArrival()
	})
}

func (w *Web) scheduleSurge() {
	w.sim.Schedule(stats.Exp(w.rng, w.cfg.SurgeSpacing), func() {
		if w.stopped {
			return
		}
		for i := 0; i < w.cfg.SurgeSessions; i++ {
			// Surge sessions fetch a single substantial object each:
			// a flash crowd pulse that overloads the queue briefly,
			// rather than a sustained multi-object load increase.
			w.sessions++
			w.fetchObject(1, w.cfg.SurgeMinBytes)
		}
		w.scheduleSurge()
	})
}

func (w *Web) startSession() { w.startSessionMin(w.cfg.MinObjectBytes) }

func (w *Web) startSessionMin(minBytes float64) {
	w.sessions++
	// Geometric number of objects with the configured mean.
	n := 1
	pCont := 1 - 1/w.cfg.ObjectsPerSession
	for w.rng.Float64() < pCont {
		n++
	}
	w.fetchObject(n, minBytes)
}

// fetchObject transfers one object, then after a think time fetches the
// next, remaining times.
func (w *Web) fetchObject(remaining int, minBytes float64) {
	if remaining <= 0 || w.stopped {
		return
	}
	size := int64(stats.BoundedPareto(w.rng, w.cfg.ParetoAlpha, minBytes, w.cfg.MaxObjectBytes))
	id := w.ids.Next()
	w.active++
	tcp.Start(w.sim, id, w.d.Bottleneck, w.d.Reverse, w.d.FwdDemux, w.d.RevDemux, tcp.Config{
		TotalBytes: size,
		OnComplete: func() {
			w.active--
			w.transfers++
			w.d.FwdDemux.Unregister(id)
			w.d.RevDemux.Unregister(id)
			w.sim.Schedule(stats.Exp(w.rng, w.cfg.ThinkTime), func() {
				w.fetchObject(remaining-1, minBytes)
			})
		},
	})
}
