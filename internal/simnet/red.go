package simnet

import "math/rand"

// AQM is a queue admission policy. The zero behavior of a Link is
// drop-tail (admit anything that fits); SetAQM installs an active queue
// management policy consulted before the capacity check.
//
// The paper's testbed ran drop-tail FIFOs, where loss comes in crisp
// full-buffer episodes. Under RED, drops are probabilistic and spread
// thin across time, which erodes the very notion of a loss *episode* —
// making AQM paths a stress test for the estimators and the §5.4
// validation (see lab.RED).
type AQM interface {
	// Admit decides whether to accept a packet given the current
	// occupancy in bytes (before the packet is added).
	Admit(p *Packet, queuedBytes int) bool
}

// SetAQM installs an admission policy on the link. Packets rejected by
// the policy count as drops with the same tap callbacks as queue
// overflow.
func (l *Link) SetAQM(a AQM) { l.aqm = a }

// REDConfig parameterizes Random Early Detection (Floyd & Jacobson 1993),
// in bytes.
type REDConfig struct {
	// MinTh: below this average occupancy nothing is dropped.
	MinTh int
	// MaxTh: above this average occupancy everything is dropped.
	MaxTh int
	// MaxP is the drop probability as the average reaches MaxTh.
	// Default 0.1.
	MaxP float64
	// Wq is the EWMA weight for the average queue size. Default 0.002.
	Wq float64
	// Seed for the drop lottery.
	Seed int64
}

func (c *REDConfig) applyDefaults() {
	if c.MaxP == 0 {
		c.MaxP = 0.1
	}
	if c.Wq == 0 {
		c.Wq = 0.002
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RED implements the classic random-early-detection gateway: an EWMA of
// the queue size drives a drop probability that rises linearly from 0 at
// MinTh to MaxP at MaxTh, with the count-based spacing correction from
// the original paper.
type RED struct {
	cfg   REDConfig
	rng   *rand.Rand
	avg   float64
	count int // packets since the last drop
}

// NewRED returns a RED policy. MinTh and MaxTh must be sensible
// (0 < MinTh < MaxTh).
func NewRED(cfg REDConfig) *RED {
	cfg.applyDefaults()
	if cfg.MinTh <= 0 || cfg.MaxTh <= cfg.MinTh {
		panic("simnet: RED thresholds must satisfy 0 < MinTh < MaxTh")
	}
	return &RED{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), count: -1}
}

// Avg returns the current average queue size estimate in bytes.
func (r *RED) Avg() float64 { return r.avg }

// Admit implements AQM.
func (r *RED) Admit(_ *Packet, queuedBytes int) bool {
	r.avg = (1-r.cfg.Wq)*r.avg + r.cfg.Wq*float64(queuedBytes)
	switch {
	case r.avg < float64(r.cfg.MinTh):
		r.count = -1
		return true
	case r.avg >= float64(r.cfg.MaxTh):
		r.count = 0
		return false
	}
	r.count++
	pb := r.cfg.MaxP * (r.avg - float64(r.cfg.MinTh)) / float64(r.cfg.MaxTh-r.cfg.MinTh)
	// Spacing correction: makes inter-drop gaps uniform rather than
	// geometric.
	pa := pb / (1 - float64(r.count)*pb)
	if pa < 0 || pa > 1 {
		pa = 1
	}
	if r.rng.Float64() < pa {
		r.count = 0
		return false
	}
	return true
}

// REDForLink builds thresholds from a link's buffer: MinTh at lowFrac and
// MaxTh at highFrac of capacity (the common 1/4 and 3/4 rule when called
// with 0.25, 0.75).
func REDForLink(l *Link, lowFrac, highFrac, maxP float64, seed int64) *RED {
	return NewRED(REDConfig{
		MinTh: int(lowFrac * float64(l.QueueCap())),
		MaxTh: int(highFrac * float64(l.QueueCap())),
		MaxP:  maxP,
		Seed:  seed,
	})
}

// redAdmit is called from Link.Send; kept here so all RED logic lives in
// one file.
func (l *Link) redAdmit(p *Packet) bool {
	if l.aqm == nil {
		return true
	}
	return l.aqm.Admit(p, l.qbytes)
}
