package simnet

// Demux routes delivered packets to per-flow receivers. Packets for flows
// with no registered receiver are counted and discarded, which models
// traffic sinking at a host with no listener.
type Demux struct {
	byFlow   map[uint64]Receiver
	fallback Receiver
	orphans  uint64
}

// NewDemux returns an empty demultiplexer.
func NewDemux() *Demux {
	return &Demux{byFlow: make(map[uint64]Receiver)}
}

// Register routes packets whose Flow equals flow to r, replacing any
// previous registration.
func (d *Demux) Register(flow uint64, r Receiver) {
	d.byFlow[flow] = r
}

// Unregister removes the receiver for flow, if any.
func (d *Demux) Unregister(flow uint64) {
	delete(d.byFlow, flow)
}

// SetFallback routes packets for unregistered flows to r instead of
// discarding them.
func (d *Demux) SetFallback(r Receiver) { d.fallback = r }

// Orphans returns how many packets arrived for unregistered flows.
func (d *Demux) Orphans() uint64 { return d.orphans }

// Deliver implements Receiver.
func (d *Demux) Deliver(p *Packet) {
	if r, ok := d.byFlow[p.Flow]; ok {
		r.Deliver(p)
		return
	}
	if d.fallback != nil {
		d.fallback.Deliver(p)
		return
	}
	d.orphans++
}
