// Package simnet provides a discrete-event packet network simulator.
//
// The simulator stands in for the laboratory testbed used in the paper
// "Improving Accuracy in End-to-end Packet Loss Measurement" (SIGCOMM 2005):
// bandwidth-limited links with propagation delay and finite drop-tail FIFO
// queues, connected between traffic sources and sinks. Simulated time is
// represented as a time.Duration offset from the start of the simulation,
// giving nanosecond resolution — finer than the microsecond-synchronized
// DAG capture cards used for ground truth in the paper.
package simnet

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback in virtual time.
type event struct {
	at  time.Duration
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is not usable; create
// one with New. Sim is not safe for concurrent use: all events run on the
// goroutine that calls Run.
type Sim struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	nextID uint64
}

// New returns an empty simulator positioned at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// NextPacketID returns a fresh packet identifier, unique within this Sim.
func (s *Sim) NextPacketID() uint64 {
	s.nextID++
	return s.nextID
}

// Schedule runs fn after delay of virtual time. A negative delay is an
// error in the caller; Schedule panics to surface it immediately.
func (s *Sim) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", delay))
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at, which must not be in
// the past.
func (s *Sim) ScheduleAt(at time.Duration, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("simnet: schedule at %v before now %v", at, s.now))
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// Run executes events in time order until the event queue is empty or the
// next event is after the until horizon. The clock is left at the time of
// the last executed event, or at until if it is later.
func (s *Sim) Run(until time.Duration) {
	for len(s.events) > 0 {
		next := s.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.events)
		s.now = next.at
		next.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending reports the number of scheduled events not yet run.
func (s *Sim) Pending() int { return len(s.events) }
