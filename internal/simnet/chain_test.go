package simnet

import (
	"testing"
	"time"
)

func TestChainEndToEndDelivery(t *testing.T) {
	s := New()
	c := NewChain(s, ChainConfig{Hops: 3})
	sink := &collect{sim: s}
	c.FwdDemux.Register(42, sink)
	s.Schedule(0, func() {
		c.Entry().Send(&Packet{ID: s.NextPacketID(), Flow: 42, Size: 1500})
	})
	s.Run(time.Second)
	if len(sink.pkts) != 1 {
		t.Fatalf("delivered %d, want 1", len(sink.pkts))
	}
	// Total propagation 50 ms split over 3 hops plus 3 serializations.
	if sink.at[0] < 50*time.Millisecond || sink.at[0] > 52*time.Millisecond {
		t.Fatalf("delivery at %v, want ≈50ms", sink.at[0])
	}
}

func TestChainRTT(t *testing.T) {
	s := New()
	c := NewChain(s, ChainConfig{Hops: 2})
	if got := c.RTT(); got < 99*time.Millisecond || got > 101*time.Millisecond {
		t.Fatalf("RTT = %v, want ≈100ms", got)
	}
}

func TestChainLocalCrossTrafficExitsAtHop(t *testing.T) {
	s := New()
	c := NewChain(s, ChainConfig{Hops: 2})
	localSink := &collect{sim: s}
	endSink := &collect{sim: s}
	c.HopDemux[0].Register(7, localSink) // local to hop 0
	c.FwdDemux.Register(8, endSink)      // end to end
	s.Schedule(0, func() {
		c.Entry().Send(&Packet{ID: s.NextPacketID(), Flow: 7, Size: 1500})
		c.Entry().Send(&Packet{ID: s.NextPacketID(), Flow: 8, Size: 1500})
	})
	s.Run(time.Second)
	if len(localSink.pkts) != 1 {
		t.Fatalf("local flow delivered %d at hop 0, want 1", len(localSink.pkts))
	}
	if len(endSink.pkts) != 1 {
		t.Fatalf("end-to-end flow delivered %d, want 1", len(endSink.pkts))
	}
	// Local cross traffic must never reach the second hop.
	if arrived, _, _ := c.Hops[1].Stats(); arrived != 1 {
		t.Fatalf("hop 1 saw %d packets, want only the end-to-end one", arrived)
	}
}

func TestChainIndependentCongestion(t *testing.T) {
	s := New()
	c := NewChain(s, ChainConfig{
		Hops:        2,
		RatePerHop:  Rate(8_000_000),
		QueuePerHop: 10 * time.Millisecond,
	})
	// Overload only hop 1 with local traffic (enters at hop 0? No —
	// local to hop 1 means injected directly into Hops[1]).
	s.Schedule(0, func() {
		for i := 0; i < 40; i++ {
			c.Hops[1].Send(&Packet{ID: s.NextPacketID(), Flow: 9, Size: 1000})
		}
	})
	s.Run(time.Second)
	if _, drops, _ := c.Hops[0].Stats(); drops != 0 {
		t.Fatalf("hop 0 dropped %d packets without load", drops)
	}
	if _, drops, _ := c.Hops[1].Stats(); drops == 0 {
		t.Fatal("hop 1 did not drop under overload")
	}
}
