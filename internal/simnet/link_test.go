package simnet

import (
	"testing"
	"time"
)

// collect is a Receiver that records deliveries with timestamps.
type collect struct {
	sim  *Sim
	pkts []*Packet
	at   []time.Duration
}

func (c *collect) Deliver(p *Packet) {
	c.pkts = append(c.pkts, p)
	c.at = append(c.at, c.sim.Now())
}

// tapRec records tap callbacks.
type tapRec struct {
	arrivals, drops, departs int
	dropIDs                  []uint64
}

func (t *tapRec) Arrive(_ time.Duration, _ *Packet, _ int) { t.arrivals++ }
func (t *tapRec) Dropped(_ time.Duration, p *Packet, _ Drop) {
	t.drops++
	t.dropIDs = append(t.dropIDs, p.ID)
}
func (t *tapRec) Depart(_ time.Duration, _ *Packet, _ int) { t.departs++ }

func mkpkt(s *Sim, size int) *Packet {
	return &Packet{ID: s.NextPacketID(), Size: size, Sent: s.Now()}
}

func TestLinkDeliveryTiming(t *testing.T) {
	s := New()
	dst := &collect{sim: s}
	// 8 Mb/s: a 1000-byte packet serializes in exactly 1 ms.
	l := NewLink(s, Rate(8_000_000), 10*time.Millisecond, 100_000, dst)
	s.Schedule(0, func() { l.Send(mkpkt(s, 1000)) })
	s.Run(time.Second)
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(dst.pkts))
	}
	if want := 11 * time.Millisecond; dst.at[0] != want {
		t.Fatalf("delivered at %v, want %v (tx 1ms + prop 10ms)", dst.at[0], want)
	}
}

func TestLinkFIFOOrderAndSerialization(t *testing.T) {
	s := New()
	dst := &collect{sim: s}
	l := NewLink(s, Rate(8_000_000), 0, 1_000_000, dst)
	s.Schedule(0, func() {
		for i := 0; i < 5; i++ {
			p := mkpkt(s, 1000)
			p.Seq = int64(i)
			l.Send(p)
		}
	})
	s.Run(time.Second)
	if len(dst.pkts) != 5 {
		t.Fatalf("delivered %d, want 5", len(dst.pkts))
	}
	for i, p := range dst.pkts {
		if p.Seq != int64(i) {
			t.Errorf("delivery %d has seq %d, want %d (FIFO violated)", i, p.Seq, i)
		}
		if want := time.Duration(i+1) * time.Millisecond; dst.at[i] != want {
			t.Errorf("delivery %d at %v, want %v (back-to-back serialization)", i, dst.at[i], want)
		}
	}
}

func TestLinkDropTail(t *testing.T) {
	s := New()
	dst := &collect{sim: s}
	// Queue capacity of exactly 3 × 1000 B. Sending 6 back-to-back: the
	// first starts transmitting (in-service byte accounting), so the
	// buffer holds it plus two more; the rest drop.
	l := NewLink(s, Rate(8_000_000), 0, 3000, dst)
	tap := &tapRec{}
	l.AddTap(tap)
	s.Schedule(0, func() {
		for i := 0; i < 6; i++ {
			l.Send(mkpkt(s, 1000))
		}
	})
	s.Run(time.Second)
	if got := len(dst.pkts); got != 3 {
		t.Fatalf("delivered %d, want 3", got)
	}
	if tap.drops != 3 {
		t.Fatalf("dropped %d, want 3", tap.drops)
	}
	arrived, dropped, delivered := l.Stats()
	if arrived != 6 || dropped != 3 || delivered != 3 {
		t.Fatalf("stats = (%d,%d,%d), want (6,3,3)", arrived, dropped, delivered)
	}
}

func TestLinkQueueDrainsAndAcceptsAgain(t *testing.T) {
	s := New()
	dst := &collect{sim: s}
	l := NewLink(s, Rate(8_000_000), 0, 2000, dst)
	send := func(n int) func() {
		return func() {
			for i := 0; i < n; i++ {
				l.Send(mkpkt(s, 1000))
			}
		}
	}
	s.Schedule(0, send(4))                   // 2 accepted, 2 dropped
	s.Schedule(10*time.Millisecond, send(2)) // queue empty again: both accepted
	s.Run(time.Second)
	if got := len(dst.pkts); got != 4 {
		t.Fatalf("delivered %d, want 4", got)
	}
}

func TestLinkQueueDelayReflectsOccupancy(t *testing.T) {
	s := New()
	dst := &collect{sim: s}
	l := NewLink(s, Rate(8_000_000), 0, 100_000, dst)
	s.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			l.Send(mkpkt(s, 1000))
		}
		// 10 packets × 1 ms serialization each queued right now.
		if got, want := l.QueueDelay(), 10*time.Millisecond; got != want {
			t.Errorf("QueueDelay = %v, want %v", got, want)
		}
	})
	s.Run(time.Second)
	if l.QueueBytes() != 0 {
		t.Fatalf("queue not drained: %d bytes", l.QueueBytes())
	}
}

func TestLinkTapSequence(t *testing.T) {
	s := New()
	dst := &collect{sim: s}
	l := NewLink(s, Rate(8_000_000), time.Millisecond, 10_000, dst)
	tap := &tapRec{}
	l.AddTap(tap)
	s.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			l.Send(mkpkt(s, 500))
		}
	})
	s.Run(time.Second)
	if tap.arrivals != 4 || tap.departs != 4 || tap.drops != 0 {
		t.Fatalf("tap saw (%d arrive, %d depart, %d drop), want (4,4,0)",
			tap.arrivals, tap.departs, tap.drops)
	}
}

func TestLinkHeadCompaction(t *testing.T) {
	s := New()
	dst := &collect{sim: s}
	l := NewLink(s, Rate(80_000_000), 0, 10_000_000, dst)
	const n = 10_000
	s.Schedule(0, func() {
		for i := 0; i < n; i++ {
			p := mkpkt(s, 100)
			p.Seq = int64(i)
			l.Send(p)
		}
	})
	s.Run(time.Minute)
	if len(dst.pkts) != n {
		t.Fatalf("delivered %d, want %d", len(dst.pkts), n)
	}
	for i, p := range dst.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("FIFO violated at %d after compaction", i)
		}
	}
}

func TestDemuxRouting(t *testing.T) {
	s := New()
	a := &collect{sim: s}
	b := &collect{sim: s}
	d := NewDemux()
	d.Register(1, a)
	d.Register(2, b)
	d.Deliver(&Packet{Flow: 1})
	d.Deliver(&Packet{Flow: 2})
	d.Deliver(&Packet{Flow: 2})
	d.Deliver(&Packet{Flow: 99})
	if len(a.pkts) != 1 || len(b.pkts) != 2 {
		t.Fatalf("routed (%d,%d), want (1,2)", len(a.pkts), len(b.pkts))
	}
	if d.Orphans() != 1 {
		t.Fatalf("orphans = %d, want 1", d.Orphans())
	}
	d.Unregister(2)
	d.Deliver(&Packet{Flow: 2})
	if d.Orphans() != 2 {
		t.Fatalf("orphans after unregister = %d, want 2", d.Orphans())
	}
}

func TestDemuxFallback(t *testing.T) {
	s := New()
	fb := &collect{sim: s}
	d := NewDemux()
	d.SetFallback(fb)
	d.Deliver(&Packet{Flow: 7})
	if len(fb.pkts) != 1 || d.Orphans() != 0 {
		t.Fatalf("fallback got %d pkts, orphans %d; want 1, 0", len(fb.pkts), d.Orphans())
	}
}

func TestDumbbellDefaults(t *testing.T) {
	s := New()
	d := NewDumbbell(s, DumbbellConfig{})
	if d.Bottleneck.Rate() != OC3 {
		t.Errorf("bottleneck rate = %d, want OC3", d.Bottleneck.Rate())
	}
	if d.RTT() != 100*time.Millisecond {
		t.Errorf("RTT = %v, want 100ms", d.RTT())
	}
	// 100 ms of OC3 ≈ 1.944 MB.
	wantQ := OC3.Bytes(100 * time.Millisecond)
	if d.Bottleneck.QueueCap() != wantQ {
		t.Errorf("queue cap = %d, want %d", d.Bottleneck.QueueCap(), wantQ)
	}
}

func TestDumbbellEndToEnd(t *testing.T) {
	s := New()
	d := NewDumbbell(s, DumbbellConfig{})
	sink := &collect{sim: s}
	d.FwdDemux.Register(42, sink)
	s.Schedule(0, func() {
		d.Bottleneck.Send(&Packet{ID: s.NextPacketID(), Flow: 42, Size: 1500})
	})
	s.Run(time.Second)
	if len(sink.pkts) != 1 {
		t.Fatalf("delivered %d, want 1", len(sink.pkts))
	}
	// ~50 ms prop + ~77 µs serialization at OC3.
	if sink.at[0] < 50*time.Millisecond || sink.at[0] > 51*time.Millisecond {
		t.Fatalf("delivery at %v, want ≈50ms", sink.at[0])
	}
}
