package simnet

import "time"

// DumbbellConfig parameterizes the paper's testbed topology (Figure 3): N
// sources feeding a single bottleneck link toward receiving hosts, with an
// uncongested reverse path for acknowledgments. The defaults reproduce the
// testbed: an OC3 bottleneck, 50 ms of propagation delay in each direction,
// and roughly 100 ms of buffering at the bottleneck.
type DumbbellConfig struct {
	BottleneckRate  Rate          // default OC3 (155.52 Mb/s)
	OneWayDelay     time.Duration // default 50 ms each direction
	QueueDuration   time.Duration // buffer capacity as drain time; default 100 ms
	ReverseRate     Rate          // default OC12; never congested in practice
	ReverseQueueCap int           // default: 1 s of the reverse rate
}

func (c *DumbbellConfig) applyDefaults() {
	if c.BottleneckRate == 0 {
		c.BottleneckRate = OC3
	}
	if c.OneWayDelay == 0 {
		c.OneWayDelay = 50 * time.Millisecond
	}
	if c.QueueDuration == 0 {
		c.QueueDuration = 100 * time.Millisecond
	}
	if c.ReverseRate == 0 {
		c.ReverseRate = OC12
	}
	if c.ReverseQueueCap == 0 {
		c.ReverseQueueCap = c.ReverseRate.Bytes(time.Second)
	}
}

// Dumbbell is the instantiated topology. Forward traffic is sent into
// Bottleneck and demultiplexed by flow at FwdDemux; reverse traffic
// (acknowledgments) is sent into Reverse and demultiplexed at RevDemux.
type Dumbbell struct {
	Sim        *Sim
	Bottleneck *Link
	Reverse    *Link
	FwdDemux   *Demux
	RevDemux   *Demux
}

// NewDumbbell builds the topology on sim. A zero config yields the paper's
// testbed parameters.
func NewDumbbell(sim *Sim, cfg DumbbellConfig) *Dumbbell {
	cfg.applyDefaults()
	d := &Dumbbell{
		Sim:      sim,
		FwdDemux: NewDemux(),
		RevDemux: NewDemux(),
	}
	qcap := cfg.BottleneckRate.Bytes(cfg.QueueDuration)
	d.Bottleneck = NewLink(sim, cfg.BottleneckRate, cfg.OneWayDelay, qcap, d.FwdDemux)
	d.Reverse = NewLink(sim, cfg.ReverseRate, cfg.OneWayDelay, cfg.ReverseQueueCap, d.RevDemux)
	return d
}

// RTT returns the base (zero-queue) round-trip time of the path.
func (d *Dumbbell) RTT() time.Duration {
	return d.Bottleneck.Delay() + d.Reverse.Delay()
}
