package simnet

import "time"

// Kind classifies a packet's role in the simulation.
type Kind uint8

// Packet kinds.
const (
	Data  Kind = iota // bulk cross-traffic payload
	Ack               // transport acknowledgment
	Probe             // measurement probe
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Probe:
		return "probe"
	default:
		return "unknown"
	}
}

// Packet is a simulated packet. Size is the on-the-wire size in bytes and
// is what the link scheduler and queue account for. Meta carries
// protocol-specific state (TCP sequence bookkeeping, probe identity) and is
// owned by whichever layer created the packet.
type Packet struct {
	ID   uint64
	Flow uint64
	Kind Kind
	Size int
	Seq  int64
	Sent time.Duration // time the packet entered the network
	Meta any
}

// Receiver consumes delivered packets.
type Receiver interface {
	Deliver(p *Packet)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(p *Packet)

// Deliver implements Receiver.
func (f ReceiverFunc) Deliver(p *Packet) { f(p) }

// Drop is the reason a packet was discarded.
type Drop uint8

// Drop reasons.
const (
	DropQueueFull Drop = iota
)

// Tap observes packet events at a link. All callbacks run synchronously
// inside the simulation event loop, at the virtual time reported by
// Sim.Now. Implementations must not retain p past the callback unless they
// copy it.
type Tap interface {
	// Arrive is called when a packet arrives at the link, before the
	// enqueue-or-drop decision.
	Arrive(now time.Duration, p *Packet, queuedBytes int)
	// Dropped is called when the link discards a packet.
	Dropped(now time.Duration, p *Packet, reason Drop)
	// Depart is called when a packet finishes transmission and leaves
	// the queue (it will be delivered after the propagation delay).
	Depart(now time.Duration, p *Packet, queuedBytes int)
}
