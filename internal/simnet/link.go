package simnet

import (
	"fmt"
	"time"
)

// Rate is a link bandwidth in bits per second.
type Rate int64

// Common link rates from the paper's testbed.
const (
	OC3  Rate = 155_520_000 // bottleneck link in the testbed
	OC12 Rate = 622_080_000
	GigE Rate = 1_000_000_000
)

// TxTime returns how long size bytes take to serialize at rate r.
func (r Rate) TxTime(size int) time.Duration {
	return time.Duration(int64(size) * 8 * int64(time.Second) / int64(r))
}

// Bytes returns how many bytes r carries in d.
func (r Rate) Bytes(d time.Duration) int {
	return int(int64(r) * int64(d) / (8 * int64(time.Second)))
}

// Link models a store-and-forward output link: a drop-tail FIFO of QueueCap
// bytes feeding a transmitter of the given Rate, followed by a fixed
// propagation Delay. This is the paper's Figure 1 system: loss episodes are
// created exclusively by this queue overflowing.
//
// Occupancy accounting includes the packet currently being transmitted,
// matching how router buffer occupancy is reported.
type Link struct {
	sim      *Sim
	rate     Rate
	delay    time.Duration
	queueCap int // bytes
	dst      Receiver

	busy   bool
	qbytes int // queued bytes, including packet in service
	q      []*Packet
	head   int

	taps []Tap
	aqm  AQM

	// Counters.
	arrived   uint64
	dropped   uint64
	delivered uint64
}

// NewLink creates a link feeding dst. queueCap is the buffer size in bytes;
// the paper's bottleneck held approximately 100 ms of packets, i.e.
// queueCap = rate.Bytes(100*time.Millisecond).
func NewLink(sim *Sim, rate Rate, delay time.Duration, queueCap int, dst Receiver) *Link {
	if rate <= 0 {
		panic(fmt.Sprintf("simnet: invalid rate %d", rate))
	}
	if queueCap <= 0 {
		panic(fmt.Sprintf("simnet: invalid queue capacity %d", queueCap))
	}
	return &Link{sim: sim, rate: rate, delay: delay, queueCap: queueCap, dst: dst}
}

// AddTap registers t to observe this link's packet events.
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// Rate returns the link bandwidth.
func (l *Link) Rate() Rate { return l.rate }

// Delay returns the propagation delay.
func (l *Link) Delay() time.Duration { return l.delay }

// QueueCap returns the buffer capacity in bytes.
func (l *Link) QueueCap() int { return l.queueCap }

// QueueBytes returns the current buffer occupancy in bytes, including the
// packet in service.
func (l *Link) QueueBytes() int { return l.qbytes }

// QueueDelay returns the current buffer occupancy expressed as time to
// drain at the link rate — the quantity plotted on the y axis of the
// paper's queue-length figures.
func (l *Link) QueueDelay() time.Duration { return l.rate.TxTime(l.qbytes) }

// Stats returns cumulative arrival, drop and delivery counts.
func (l *Link) Stats() (arrived, dropped, delivered uint64) {
	return l.arrived, l.dropped, l.delivered
}

// Send places p on the link. If the buffer cannot hold it, p is dropped.
func (l *Link) Send(p *Packet) {
	now := l.sim.Now()
	l.arrived++
	for _, t := range l.taps {
		t.Arrive(now, p, l.qbytes)
	}
	if (l.busy && l.qbytes+p.Size > l.queueCap) || !l.redAdmit(p) {
		l.dropped++
		for _, t := range l.taps {
			t.Dropped(now, p, DropQueueFull)
		}
		return
	}
	l.qbytes += p.Size
	l.push(p)
	if !l.busy {
		l.busy = true
		l.transmit(l.pop())
	}
}

func (l *Link) push(p *Packet) {
	l.q = append(l.q, p)
}

func (l *Link) pop() *Packet {
	p := l.q[l.head]
	l.q[l.head] = nil
	l.head++
	if l.head > 1024 && l.head*2 >= len(l.q) {
		n := copy(l.q, l.q[l.head:])
		l.q = l.q[:n]
		l.head = 0
	}
	return p
}

func (l *Link) empty() bool { return l.head == len(l.q) }

func (l *Link) transmit(p *Packet) {
	l.sim.Schedule(l.rate.TxTime(p.Size), func() {
		l.qbytes -= p.Size
		l.delivered++
		now := l.sim.Now()
		for _, t := range l.taps {
			t.Depart(now, p, l.qbytes)
		}
		l.sim.Schedule(l.delay, func() { l.dst.Deliver(p) })
		if !l.empty() {
			l.transmit(l.pop())
		} else {
			l.busy = false
		}
	})
}
