package simnet

import "time"

// Chain is a multi-hop path: several store-and-forward links in series,
// each with its own finite queue that can congest independently. The
// paper's evaluation is single-bottleneck; §6.2 flags "more complex
// multi-hop scenarios" as future work, and this topology is what the
// multi-hop experiments in internal/lab run on.
//
// End-to-end traffic enters at Hops[0] and is delivered from FwdDemux
// after the last hop. Cross traffic local to hop k is sent into Hops[k]
// with a flow id registered on HopDemux[k], where it exits the path; all
// unregistered flows fall through to the next hop.
type Chain struct {
	Sim      *Sim
	Hops     []*Link
	HopDemux []*Demux // demux after each hop; last one is FwdDemux
	FwdDemux *Demux
	Reverse  *Link
	RevDemux *Demux
}

// ChainConfig parameterizes NewChain. Zero values inherit the dumbbell
// defaults, with the one-way delay split evenly across hops.
type ChainConfig struct {
	Hops            int           // number of forward links; default 2
	RatePerHop      Rate          // default OC3
	OneWayDelay     time.Duration // total, split across hops; default 50 ms
	QueuePerHop     time.Duration // buffer per hop as drain time; default 100 ms
	ReverseRate     Rate          // default OC12
	ReverseQueueCap int
}

func (c *ChainConfig) applyDefaults() {
	if c.Hops == 0 {
		c.Hops = 2
	}
	if c.RatePerHop == 0 {
		c.RatePerHop = OC3
	}
	if c.OneWayDelay == 0 {
		c.OneWayDelay = 50 * time.Millisecond
	}
	if c.QueuePerHop == 0 {
		c.QueuePerHop = 100 * time.Millisecond
	}
	if c.ReverseRate == 0 {
		c.ReverseRate = OC12
	}
	if c.ReverseQueueCap == 0 {
		c.ReverseQueueCap = c.ReverseRate.Bytes(time.Second)
	}
}

// NewChain builds the multi-hop path.
func NewChain(sim *Sim, cfg ChainConfig) *Chain {
	cfg.applyDefaults()
	ch := &Chain{Sim: sim}
	perHopDelay := cfg.OneWayDelay / time.Duration(cfg.Hops)
	qcap := cfg.RatePerHop.Bytes(cfg.QueuePerHop)

	// Build back to front so each hop's demux can fall through to the
	// next link.
	demuxes := make([]*Demux, cfg.Hops)
	links := make([]*Link, cfg.Hops)
	for i := cfg.Hops - 1; i >= 0; i-- {
		demuxes[i] = NewDemux()
		links[i] = NewLink(sim, cfg.RatePerHop, perHopDelay, qcap, demuxes[i])
		if i < cfg.Hops-1 {
			next := links[i+1]
			demuxes[i].SetFallback(ReceiverFunc(func(p *Packet) { next.Send(p) }))
		}
	}
	ch.Hops = links
	ch.HopDemux = demuxes
	ch.FwdDemux = demuxes[cfg.Hops-1]
	ch.RevDemux = NewDemux()
	ch.Reverse = NewLink(sim, cfg.ReverseRate, cfg.OneWayDelay, cfg.ReverseQueueCap, ch.RevDemux)
	return ch
}

// RTT returns the base round-trip time of the path.
func (c *Chain) RTT() time.Duration {
	var fwd time.Duration
	for _, l := range c.Hops {
		fwd += l.Delay()
	}
	return fwd + c.Reverse.Delay()
}

// Entry returns the first forward link.
func (c *Chain) Entry() *Link { return c.Hops[0] }
