package simnet

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSimRunsEventsInOrder(t *testing.T) {
	s := New()
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 40} {
		d := d
		s.Schedule(d, func() { got = append(got, s.Now()) })
	}
	s.Run(time.Hour)
	want := []time.Duration{10, 10, 20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSimEqualTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events ran out of schedule order: %v", order)
		}
	}
}

func TestSimRunHorizon(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(10*time.Millisecond, func() { ran = true })
	s.Run(5 * time.Millisecond)
	if ran {
		t.Fatal("event past horizon ran")
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v, want 5ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run(time.Second)
	if !ran {
		t.Fatal("event not run after extending horizon")
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := New()
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		if ticks < 100 {
			s.Schedule(time.Millisecond, tick)
		}
	}
	s.Schedule(0, tick)
	s.Run(time.Second)
	if ticks != 100 {
		t.Fatalf("ticks = %d, want 100", ticks)
	}
	if s.Now() != time.Second {
		t.Fatalf("now = %v, want 1s", s.Now())
	}
}

func TestSimSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(time.Second, func() {})
	s.Run(2 * time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.ScheduleAt(time.Millisecond, func() {})
}

func TestSimNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestPacketIDsUnique(t *testing.T) {
	s := New()
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := s.NextPacketID()
		if seen[id] {
			t.Fatalf("duplicate packet id %d", id)
		}
		seen[id] = true
	}
}

// Property: for any batch of scheduled delays, events execute in
// nondecreasing time order and the clock never goes backwards.
func TestSimTimeMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var times []time.Duration
		for _, d := range delays {
			s.Schedule(time.Duration(d)*time.Microsecond, func() {
				times = append(times, s.Now())
			})
		}
		s.Run(time.Hour)
		if len(times) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRateTxTime(t *testing.T) {
	cases := []struct {
		rate Rate
		size int
		want time.Duration
	}{
		{Rate(8_000_000), 1000, time.Millisecond},
		{Rate(1_000_000), 125, time.Millisecond},
		{OC3, 0, 0},
	}
	for _, c := range cases {
		if got := c.rate.TxTime(c.size); got != c.want {
			t.Errorf("Rate(%d).TxTime(%d) = %v, want %v", c.rate, c.size, got, c.want)
		}
	}
}

func TestRateBytesRoundTrip(t *testing.T) {
	r := OC3
	for _, d := range []time.Duration{time.Millisecond, 100 * time.Millisecond, time.Second} {
		b := r.Bytes(d)
		back := r.TxTime(b)
		if diff := back - d; diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("Bytes/TxTime round trip for %v drifted by %v", d, diff)
		}
	}
}

func TestSimManyEventsRandomOrder(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	count := 0
	for i := 0; i < n; i++ {
		s.Schedule(time.Duration(rng.Intn(1_000_000))*time.Microsecond, func() { count++ })
	}
	s.Run(2 * time.Second)
	if count != n {
		t.Fatalf("ran %d events, want %d", count, n)
	}
}
