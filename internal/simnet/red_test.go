package simnet

import (
	"testing"
	"time"
)

func TestREDValidation(t *testing.T) {
	for _, c := range []REDConfig{
		{MinTh: 0, MaxTh: 100},
		{MinTh: 100, MaxTh: 100},
		{MinTh: 200, MaxTh: 100},
	} {
		c := c
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RED(%+v) accepted", c)
				}
			}()
			NewRED(c)
		}()
	}
}

func TestREDNoDropsBelowMinTh(t *testing.T) {
	r := NewRED(REDConfig{MinTh: 10_000, MaxTh: 30_000})
	for i := 0; i < 1000; i++ {
		if !r.Admit(nil, 5_000) {
			t.Fatal("drop below MinTh")
		}
	}
}

func TestREDAlwaysDropsAboveMaxTh(t *testing.T) {
	r := NewRED(REDConfig{MinTh: 10_000, MaxTh: 30_000})
	// Drive the EWMA well above MaxTh.
	for i := 0; i < 5000; i++ {
		r.Admit(nil, 60_000)
	}
	if r.Avg() < 30_000 {
		t.Fatalf("EWMA %v did not reach MaxTh", r.Avg())
	}
	for i := 0; i < 100; i++ {
		if r.Admit(nil, 60_000) {
			t.Fatal("admit above MaxTh")
		}
	}
}

func TestREDIntermediateDropRate(t *testing.T) {
	r := NewRED(REDConfig{MinTh: 10_000, MaxTh: 30_000, MaxP: 0.1, Seed: 3})
	// Hold occupancy at the midpoint: expected drop prob ≈ MaxP/2 = 5%
	// (slightly higher with the spacing correction).
	for i := 0; i < 10_000; i++ {
		r.Admit(nil, 20_000)
	}
	drops := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		if !r.Admit(nil, 20_000) {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.02 || rate > 0.15 {
		t.Fatalf("midpoint drop rate %.3f, want ≈0.05", rate)
	}
}

func TestREDOnLinkSpreadsDrops(t *testing.T) {
	s := New()
	dst := &collect{sim: s}
	// 8 Mb/s, 50 ms buffer.
	l := NewLink(s, Rate(8_000_000), 0, 50_000, dst)
	// Wq sized for this queue's ≈100 ms fill time at 1000 packets/s;
	// the canonical 0.002 would track too slowly to prevent tail hits.
	l.SetAQM(NewRED(REDConfig{MinTh: 12_500, MaxTh: 37_500, MaxP: 0.1, Wq: 0.05, Seed: 7}))
	// Offered load 1.5x for two seconds: drop-tail would hold the queue
	// pinned at 100% and drop in bursts; RED must keep the backlog near
	// the thresholds instead.
	ival := Rate(12_000_000).TxTime(1000)
	n := int(2 * time.Second / ival)
	var maxQ int
	for i := 0; i < n; i++ {
		at := time.Duration(i) * ival
		s.ScheduleAt(at, func() {
			l.Send(&Packet{ID: s.NextPacketID(), Kind: Data, Size: 1000})
			// Ignore the warm-up transient: the EWMA needs time to
			// catch up with the instantaneous queue (classic RED).
			if s.Now() > 500*time.Millisecond && l.QueueBytes() > maxQ {
				maxQ = l.QueueBytes()
			}
		})
	}
	s.Run(5 * time.Second)
	_, dropped, delivered := l.Stats()
	if dropped == 0 {
		t.Fatal("no drops under sustained overload")
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// In steady state RED should keep the queue around MaxTh, well
	// below the hard cap.
	if maxQ >= 45_000 {
		t.Errorf("steady-state queue %d bytes despite RED (cap 50000)", maxQ)
	}
	// Roughly a third of offered load must drop (input 1.5x capacity).
	rate := float64(dropped) / float64(dropped+delivered)
	if rate < 0.15 || rate > 0.5 {
		t.Errorf("drop rate %.3f, want ≈1/3", rate)
	}
}

func TestDropTailUnaffectedWithoutAQM(t *testing.T) {
	s := New()
	dst := &collect{sim: s}
	l := NewLink(s, Rate(8_000_000), 0, 3000, dst)
	s.Schedule(0, func() {
		for i := 0; i < 6; i++ {
			l.Send(mkpkt(s, 1000))
		}
	})
	s.Run(time.Second)
	if _, dropped, _ := l.Stats(); dropped != 3 {
		t.Fatalf("drop-tail behavior changed: %d drops, want 3", dropped)
	}
}
