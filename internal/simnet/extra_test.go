package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestLinkZeroDelayDelivery(t *testing.T) {
	s := New()
	dst := &collect{sim: s}
	l := NewLink(s, Rate(8_000_000), 0, 10_000, dst)
	s.Schedule(0, func() { l.Send(mkpkt(s, 1000)) })
	s.Run(time.Second)
	if len(dst.pkts) != 1 || dst.at[0] != time.Millisecond {
		t.Fatalf("zero-delay delivery at %v, want 1ms (tx only)", dst.at)
	}
}

func TestNewLinkValidation(t *testing.T) {
	s := New()
	for _, tc := range []struct {
		rate Rate
		qcap int
	}{
		{0, 1000},
		{-5, 1000},
		{8_000_000, 0},
		{8_000_000, -1},
	} {
		tc := tc
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLink(rate=%d, qcap=%d) did not panic", tc.rate, tc.qcap)
				}
			}()
			NewLink(s, tc.rate, 0, tc.qcap, &collect{sim: s})
		}()
	}
}

// Property: packet conservation — every packet sent is either delivered
// or dropped, never both, never lost by the machinery itself.
func TestLinkConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		s := New()
		dst := &collect{sim: s}
		l := NewLink(s, Rate(8_000_000), time.Millisecond, 5_000, dst)
		tap := &tapRec{}
		l.AddTap(tap)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Intn(50)) * time.Millisecond
			s.ScheduleAt(at, func() { l.Send(mkpkt(s, 200+rng.Intn(1300))) })
		}
		s.Run(time.Minute)
		arrived, dropped, delivered := l.Stats()
		if arrived != uint64(n) {
			return false
		}
		if dropped+delivered != arrived {
			return false
		}
		if len(dst.pkts) != int(delivered) {
			return false
		}
		if tap.drops != int(dropped) || tap.departs != int(delivered) {
			return false
		}
		return l.QueueBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLinkMixedSizesSerializationOrder(t *testing.T) {
	s := New()
	dst := &collect{sim: s}
	l := NewLink(s, Rate(8_000_000), 0, 1_000_000, dst)
	sizes := []int{1500, 40, 600, 1500, 40}
	s.Schedule(0, func() {
		for i, sz := range sizes {
			p := mkpkt(s, sz)
			p.Seq = int64(i)
			l.Send(p)
		}
	})
	s.Run(time.Second)
	if len(dst.pkts) != len(sizes) {
		t.Fatalf("delivered %d, want %d", len(dst.pkts), len(sizes))
	}
	var want time.Duration
	for i, sz := range sizes {
		want += Rate(8_000_000).TxTime(sz)
		if dst.pkts[i].Seq != int64(i) {
			t.Fatalf("order violated at %d", i)
		}
		if dst.at[i] != want {
			t.Fatalf("packet %d delivered at %v, want %v", i, dst.at[i], want)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Data: "data", Ack: "ack", Probe: "probe", Kind(99): "unknown"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestReceiverFunc(t *testing.T) {
	called := 0
	r := ReceiverFunc(func(*Packet) { called++ })
	r.Deliver(&Packet{})
	if called != 1 {
		t.Fatal("ReceiverFunc did not invoke the function")
	}
}

func TestDumbbellCustomConfig(t *testing.T) {
	s := New()
	d := NewDumbbell(s, DumbbellConfig{
		BottleneckRate: Rate(10_000_000),
		OneWayDelay:    5 * time.Millisecond,
		QueueDuration:  20 * time.Millisecond,
	})
	if d.Bottleneck.Rate() != Rate(10_000_000) {
		t.Error("custom rate ignored")
	}
	if d.RTT() != 10*time.Millisecond {
		t.Errorf("RTT = %v, want 10ms", d.RTT())
	}
	if got, want := d.Bottleneck.QueueCap(), Rate(10_000_000).Bytes(20*time.Millisecond); got != want {
		t.Errorf("queue cap %d, want %d", got, want)
	}
}

func TestSimRunTwiceContinues(t *testing.T) {
	s := New()
	var hits []time.Duration
	for _, d := range []time.Duration{time.Second, 3 * time.Second} {
		d := d
		s.Schedule(d, func() { hits = append(hits, s.Now()) })
	}
	s.Run(2 * time.Second)
	if len(hits) != 1 {
		t.Fatalf("after first Run: %d events, want 1", len(hits))
	}
	s.Run(5 * time.Second)
	if len(hits) != 2 {
		t.Fatalf("after second Run: %d events, want 2", len(hits))
	}
}
