package wire

import (
	"testing"
	"time"
)

// FuzzHeaderUnmarshal ensures arbitrary bytes never panic the decoder and
// that anything it accepts re-encodes to an equivalent header.
func FuzzHeaderUnmarshal(f *testing.F) {
	seedBuf := make([]byte, HeaderSize)
	good := Header{P: 0.3, N: 1000, SlotWidth: 5 * time.Millisecond, Seed: 1}
	good.Marshal(seedBuf)
	f.Add(seedBuf)
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x44, 0x42, 0x47})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		if err := h.Unmarshal(data); err != nil {
			return
		}
		// Accepted: P must be re-marshalable unless out of range.
		if h.P <= 0 || h.P > 1 {
			return
		}
		buf := make([]byte, HeaderSize)
		if _, err := h.Marshal(buf); err != nil {
			t.Fatalf("accepted header failed to re-marshal: %v (%+v)", err, h)
		}
		var h2 Header
		if err := h2.Unmarshal(buf); err != nil {
			t.Fatalf("re-marshaled header failed to decode: %v", err)
		}
		if h2.ExpID != h.ExpID || h2.Slot != h.Slot || h2.Seq != h.Seq {
			t.Fatalf("round trip diverged: %+v vs %+v", h2, h)
		}
	})
}

// FuzzZingHeaderUnmarshal does the same for the ZING format.
func FuzzZingHeaderUnmarshal(f *testing.F) {
	seedBuf := make([]byte, ZingHeaderSize)
	good := ZingHeader{ExpID: 1, Seq: 2, SendTime: 3}
	good.Marshal(seedBuf)
	f.Add(seedBuf)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h ZingHeader
		if err := h.Unmarshal(data); err != nil {
			return
		}
		buf := make([]byte, ZingHeaderSize)
		if _, err := h.Marshal(buf); err != nil {
			t.Fatalf("accepted header failed to re-marshal: %v", err)
		}
		var h2 ZingHeader
		if err := h2.Unmarshal(buf); err != nil || h2 != h {
			t.Fatalf("round trip diverged: %+v vs %+v (%v)", h2, h, err)
		}
	})
}
