package wire

import (
	"testing"
	"time"
)

// FuzzHeaderUnmarshal ensures arbitrary bytes never panic the decoder and
// that anything it accepts re-encodes to an equivalent header.
func FuzzHeaderUnmarshal(f *testing.F) {
	seedBuf := make([]byte, HeaderSize)
	good := Header{P: 0.3, N: 1000, SlotWidth: 5 * time.Millisecond, Seed: 1}
	good.Marshal(seedBuf)
	f.Add(seedBuf)
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x44, 0x42, 0x47})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		if err := h.Unmarshal(data); err != nil {
			return
		}
		// Accepted: P must be re-marshalable unless out of range.
		if h.P <= 0 || h.P > 1 {
			return
		}
		buf := make([]byte, HeaderSize)
		if _, err := h.Marshal(buf); err != nil {
			t.Fatalf("accepted header failed to re-marshal: %v (%+v)", err, h)
		}
		var h2 Header
		if err := h2.Unmarshal(buf); err != nil {
			t.Fatalf("re-marshaled header failed to decode: %v", err)
		}
		if h2.ExpID != h.ExpID || h2.Slot != h.Slot || h2.Seq != h.Seq {
			t.Fatalf("round trip diverged: %+v vs %+v", h2, h)
		}
	})
}

// FuzzControlQuery throws arbitrary bytes at the collector's control
// request parser. parseQuery must never panic, must reject anything
// shorter than a query or with the wrong magic/version, and everything
// built by marshalQuery must round-trip to the same expID.
func FuzzControlQuery(f *testing.F) {
	f.Add(marshalQuery(0))
	f.Add(marshalQuery(7))
	f.Add(marshalQuery(^uint64(0)))
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x42, 0x52, 0x51}) // magic alone, truncated
	f.Add(marshalQuery(7)[:querySize-1])  // one byte short of a query
	f.Add(append(marshalQuery(7), 0xFF))  // trailing garbage is still a query
	wrongVer := marshalQuery(7)
	wrongVer[4] = Version + 1
	f.Add(wrongVer) // future protocol version must be rejected
	asReply := marshalQuery(9)
	asReply[3] = 0x50 // reply magic in a query-sized frame
	f.Add(asReply)
	// Batch-boundary shapes: a buggy batcher would deliver glued frames,
	// a frame padded out to the full batch slot, or a slot's stale tail
	// after a shorter datagram. Each must parse exactly like its
	// single-packet equivalent (prefix-only).
	f.Add(append(marshalQuery(3), marshalQuery(4)...)) // two queries in one slot
	padded := make([]byte, maxDatagram)
	copy(padded, marshalQuery(5))
	f.Add(padded) // query at the head of a full 2 KiB batch buffer
	stale := append(marshalQuery(6), marshalQuery(^uint64(0))...)
	f.Add(stale[:querySize+3]) // stale bytes from the previous batch fill
	f.Fuzz(func(t *testing.T, data []byte) {
		expID, ok := parseQuery(data)
		if !ok {
			return
		}
		// Accepted: re-marshaling the extracted expID must produce a
		// packet the parser accepts with the same id.
		id2, ok2 := parseQuery(marshalQuery(expID))
		if !ok2 || id2 != expID {
			t.Fatalf("query round trip diverged: %d -> %d (ok=%v)", expID, id2, ok2)
		}
	})
}

// FuzzControlReply drives the reply decode path used by Query: framing
// detection, then JSON body decode. Arbitrary bytes must never panic,
// and every reply built by encodeReply must parse back to the same
// counts.
func FuzzControlReply(f *testing.F) {
	good, _ := encodeReply(ControlReply{ExpID: 7, Found: true, PacketsLost: 3, Skipped: 1})
	f.Add(good)
	f.Add(good[:replyHeader]) // framed but empty body
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x42, 0x52, 0x50, Version, 0, 0, 0, '{'})           // framed, corrupt JSON
	f.Add(marshalQuery(7))                                                 // a query is not a reply
	f.Add(good[:len(good)-1])                                              // body truncated mid-JSON
	f.Add(good[:replyHeader-1])                                            // truncated inside the header
	f.Add(append(append([]byte{}, good...), good...))                      // two replies glued together
	f.Add([]byte("\x42\x42\x52\x50\x01\x00\x00\x00{\"exp_id\":-1}"))       // out-of-range field
	f.Add([]byte("\x42\x42\x52\x50\x01\x00\x00\x00{\"exp_id\":7}garbage")) // JSON then trailing junk
	f.Add([]byte("\x42\x42\x52\x50\x01\x00\x00\x00null"))                  // body is JSON null
	f.Fuzz(func(t *testing.T, data []byte) {
		reply, ok, err := parseReply(data)
		if !ok || err != nil {
			return
		}
		// Accepted: the reply must survive a re-encode/re-parse cycle.
		buf, err := encodeReply(reply)
		if err != nil {
			t.Fatalf("accepted reply failed to re-encode: %v (%+v)", err, reply)
		}
		r2, ok2, err2 := parseReply(buf)
		if !ok2 || err2 != nil {
			t.Fatalf("re-encoded reply failed to parse: ok=%v err=%v", ok2, err2)
		}
		if r2 != reply {
			t.Fatalf("reply round trip diverged: %+v vs %+v", r2, reply)
		}
	})
}

// FuzzLiveness throws arbitrary bytes at the liveness-frame parser: it
// must never panic, must reject short frames, foreign magics/versions and
// unknown kinds, and everything it accepts must round-trip through
// marshalLiveness unchanged.
func FuzzLiveness(f *testing.F) {
	f.Add(marshalLiveness(livenessPing, 7, 1234))
	f.Add(marshalLiveness(livenessPong, ^uint64(0), -1))
	f.Add(pongFor(42, 99))
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x42, 0x4C, 0x56}) // magic alone, truncated
	f.Add(marshalLiveness(livenessPing, 7, 1)[:livenessSize-1])
	f.Add(append(marshalLiveness(livenessPing, 7, 1), 0xFF)) // trailing junk
	wrongVer := marshalLiveness(livenessPing, 7, 1)
	wrongVer[4] = Version + 1
	f.Add(wrongVer)
	wrongKind := marshalLiveness(livenessPing, 7, 1)
	wrongKind[5] = 9
	f.Add(wrongKind)
	hdr := make([]byte, HeaderSize) // a probe header is not a liveness frame
	(&Header{P: 0.3, N: 100, SlotWidth: time.Millisecond, Seed: 1}).Marshal(hdr)
	f.Add(hdr)
	// Batch-boundary shapes (see FuzzControlQuery): glued frames, a frame
	// padded to the full batch slot, and a pong bleeding into a stale
	// tail must all decode prefix-only, like their single-packet twins.
	f.Add(append(marshalLiveness(livenessPing, 1, 2), marshalLiveness(livenessPong, 3, 4)...))
	padded := make([]byte, maxDatagram)
	copy(padded, marshalLiveness(livenessPong, 8, 9))
	f.Add(padded)
	stale := append(marshalLiveness(livenessPing, 5, 6), hdr...)
	f.Add(stale[:livenessSize+5])
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, nonce, sendTime, ok := parseLiveness(data)
		if !ok {
			return
		}
		if kind != livenessPing && kind != livenessPong {
			t.Fatalf("accepted unknown kind %d", kind)
		}
		kind2, nonce2, sendTime2, ok2 := parseLiveness(marshalLiveness(kind, nonce, sendTime))
		if !ok2 || kind2 != kind || nonce2 != nonce || sendTime2 != sendTime {
			t.Fatalf("liveness round trip diverged: (%d,%d,%d,%v) vs (%d,%d,%d)",
				kind2, nonce2, sendTime2, ok2, kind, nonce, sendTime)
		}
	})
}

// FuzzZingHeaderUnmarshal does the same for the ZING format.
func FuzzZingHeaderUnmarshal(f *testing.F) {
	seedBuf := make([]byte, ZingHeaderSize)
	good := ZingHeader{ExpID: 1, Seq: 2, SendTime: 3}
	good.Marshal(seedBuf)
	f.Add(seedBuf)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h ZingHeader
		if err := h.Unmarshal(data); err != nil {
			return
		}
		buf := make([]byte, ZingHeaderSize)
		if _, err := h.Marshal(buf); err != nil {
			t.Fatalf("accepted header failed to re-marshal: %v", err)
		}
		var h2 ZingHeader
		if err := h2.Unmarshal(buf); err != nil || h2 != h {
			t.Fatalf("round trip diverged: %+v vs %+v (%v)", h2, h, err)
		}
	})
}
