package wire

import (
	"context"
	"net"
	"testing"
	"time"

	"badabing/internal/badabing"
)

func TestControlQueryRoundTrip(t *testing.T) {
	col, addr := startCollector(t)
	col.SetMarker(badabing.RecommendedMarker(0.5, badabing.DefaultSlot))
	conn := dial(t, addr)
	st, err := Send(context.Background(), conn, SenderConfig{
		ExpID: 21, P: 0.5, N: 200, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	reply, err := Query(conn, 21, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Found {
		t.Fatal("session not found via control channel")
	}
	if reply.Counts.M+reply.Skipped != st.Experiments {
		t.Fatalf("counts M=%d + skipped %d ≠ %d experiments",
			reply.Counts.M, reply.Skipped, st.Experiments)
	}
	// Loopback: nothing lost, nothing congested.
	if reply.Counts.Z != 0 || reply.PacketsLost != 0 {
		t.Fatalf("loopback reported congestion: %+v", reply)
	}
}

func TestControlQueryUnknownSession(t *testing.T) {
	_, addr := startCollector(t)
	conn := dial(t, addr)
	reply, err := Query(conn, 999, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Found {
		t.Fatal("unknown session reported found")
	}
	if _, err := QueryCounts(conn, 999, time.Second); err != ErrSessionNotFound {
		t.Fatalf("QueryCounts err = %v, want ErrSessionNotFound", err)
	}
}

func TestControlQueryTimeout(t *testing.T) {
	// A socket nobody answers on.
	silent, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	conn := dial(t, silent.LocalAddr().String())
	if _, err := Query(conn, 1, 200*time.Millisecond); err == nil {
		t.Fatal("query against a silent peer did not time out")
	}
}

func TestParseQueryRejectsProbes(t *testing.T) {
	buf := make([]byte, 600)
	h := Header{P: 0.5, N: 10, SlotWidth: time.Millisecond}
	h.Marshal(buf)
	if _, ok := parseQuery(buf); ok {
		t.Fatal("probe packet parsed as control query")
	}
	if _, ok := parseQuery([]byte{1, 2}); ok {
		t.Fatal("short packet parsed as control query")
	}
}

func TestSendAdaptiveLoopback(t *testing.T) {
	// Lossless loopback: the controller can never converge (no
	// boundaries), so it must escalate to PMax and stop at MaxRounds.
	col, addr := startCollector(t)
	col.SetMarker(badabing.MarkerConfig{})
	conn := dial(t, addr)
	res, err := SendAdaptive(context.Background(), conn, AdaptiveConfig{
		BaseID: 5000,
		Slot:   10 * time.Millisecond,
		Controller: badabing.AdaptiveConfig{
			RoundSlots: 100, // 1 s rounds
			MaxRounds:  3,
			Monitor:    badabing.MonitorConfig{MinExperiments: 10},
		},
		DrainWait: 100 * time.Millisecond,
		Seed:      31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("converged on a lossless path")
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	if res.FinalP <= 0.1 {
		t.Fatalf("p did not escalate: %v", res.FinalP)
	}
	if res.Report.Frequency != 0 {
		t.Fatalf("loopback frequency %v", res.Report.Frequency)
	}
}

func TestSendAdaptiveRespectsContext(t *testing.T) {
	_, addr := startCollector(t)
	conn := dial(t, addr)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SendAdaptive(ctx, conn, AdaptiveConfig{
		BaseID:     1,
		Controller: badabing.AdaptiveConfig{RoundSlots: 100, MaxRounds: 2},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReportWithCI(t *testing.T) {
	col, addr := startCollector(t)
	conn := dial(t, addr)
	if _, err := Send(context.Background(), conn, SenderConfig{
		ExpID: 33, P: 0.5, N: 400, Seed: 35,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	rep, freqCI, _, ss, err := col.ReportWithCI(33, badabing.MarkerConfig{},
		badabing.BootstrapConfig{Resamples: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.M == 0 || ss.Packets == 0 {
		t.Fatal("empty report")
	}
	// Loopback: frequency 0 with a degenerate [0,0] interval.
	if freqCI.Lo != 0 || freqCI.Hi != 0 {
		t.Fatalf("loopback frequency CI [%v, %v], want [0, 0]", freqCI.Lo, freqCI.Hi)
	}
	if _, _, _, _, err := col.ReportWithCI(999, badabing.MarkerConfig{},
		badabing.BootstrapConfig{}); err != ErrUnknownSession {
		t.Fatalf("unknown session err = %v", err)
	}
}
