//go:build linux && (amd64 || arm64)

package wire

import (
	"net"
	"os"
	"syscall"
	"unsafe"
)

// mmsgConn moves batches of UDP datagrams with recvmmsg(2)/sendmmsg(2)
// through the socket's raw file descriptor, while delegating everything
// else (deadlines, close, single-packet I/O) to the *net.UDPConn. All
// per-message kernel structures — mmsghdr/iovec arrays and sockaddr
// storage — are preallocated once and rewritten in place, so the steady
// read/echo path performs zero heap allocations.
//
// Not safe for concurrent ReadBatch (or concurrent WriteBatch) calls on
// one instance: each reflector shard wraps the shared socket in its own
// mmsgConn.
type mmsgConn struct {
	*net.UDPConn
	rc syscall.RawConn

	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	raddrs []syscall.RawSockaddrAny
	rudp   []net.UDPAddr // reused ReadBatch result addresses
	rips   []byte        // backing storage for rudp IPs, 16 bytes each

	whdrs  []mmsghdr
	wiovs  []syscall.Iovec
	waddrs []syscall.RawSockaddrInet6 // scratch dest sockaddrs (v4 fits too)

	// The raw-conn callbacks are built once and communicate through
	// these fields: a fresh closure per call would put itself (and every
	// captured result variable) on the heap, breaking the zero-alloc
	// contract the hot path is built around.
	readFn, writeFn func(fd uintptr) bool
	rwant, rgot     int
	rerrno          syscall.Errno
	wwant, wsent    int
	werrno          syscall.Errno
}

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-reported
// datagram length. The trailing pad keeps the array stride at the
// kernel's 8-byte-aligned layout on 64-bit targets (the only ones this
// file builds for).
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// newMmsgConn returns nil if the socket's descriptor is unavailable
// (caller then falls back to single-packet I/O).
func newMmsgConn(u *net.UDPConn) BatchConn {
	rc, err := u.SyscallConn()
	if err != nil {
		return nil
	}
	c := &mmsgConn{UDPConn: u, rc: rc}
	c.readFn = c.rawRecvmmsg
	c.writeFn = c.rawSendmmsg
	return c
}

// newUDPBatchWriter returns the sender-side batch fast path for a
// connected UDP socket, or nil when unavailable.
func newUDPBatchWriter(u *net.UDPConn) BatchWriter {
	if bc := newMmsgConn(u); bc != nil {
		return bc
	}
	return nil
}

// rawRecvmmsg is the persistent RawConn.Read callback: one recvmmsg of
// up to rwant datagrams, reporting through rgot/rerrno.
func (c *mmsgConn) rawRecvmmsg(fd uintptr) bool {
	r, _, e := syscall.Syscall6(sysRECVMMSG, fd,
		uintptr(unsafe.Pointer(&c.rhdrs[0])), uintptr(c.rwant),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if e == syscall.EAGAIN {
		return false // wait for readability
	}
	c.rgot, c.rerrno = int(r), e
	return true
}

// rawSendmmsg is the persistent RawConn.Write callback: one sendmmsg of
// wwant messages, reporting through wsent/werrno.
func (c *mmsgConn) rawSendmmsg(fd uintptr) bool {
	r, _, e := syscall.Syscall6(sysSENDMMSG, fd,
		uintptr(unsafe.Pointer(&c.whdrs[0])), uintptr(c.wwant),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if e == syscall.EAGAIN {
		return false // wait for writability
	}
	c.wsent, c.werrno = int(r), e
	return true
}

func (c *mmsgConn) growRead(n int) {
	if len(c.rhdrs) >= n {
		return
	}
	c.rhdrs = make([]mmsghdr, n)
	c.riovs = make([]syscall.Iovec, n)
	c.raddrs = make([]syscall.RawSockaddrAny, n)
	c.rudp = make([]net.UDPAddr, n)
	c.rips = make([]byte, n*16)
}

func (c *mmsgConn) growWrite(n int) {
	if len(c.whdrs) >= n {
		return
	}
	c.whdrs = make([]mmsghdr, n)
	c.wiovs = make([]syscall.Iovec, n)
	c.waddrs = make([]syscall.RawSockaddrInet6, n)
}

// ReadBatch fills ms from one recvmmsg call, blocking (via the runtime
// poller, so deadlines and Close work) until at least one datagram is
// ready. The returned addresses are reused storage, valid until the next
// ReadBatch.
func (c *mmsgConn) ReadBatch(ms []Message) (int, error) {
	n := len(ms)
	if n == 0 {
		return 0, nil
	}
	if n > MaxBatch {
		n = MaxBatch
	}
	c.growRead(n)
	for i := 0; i < n; i++ {
		c.riovs[i].Base = &ms[i].Buf[0]
		c.riovs[i].Len = uint64(len(ms[i].Buf))
		h := &c.rhdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&c.raddrs[i]))
		h.Namelen = syscall.SizeofSockaddrAny
		h.Iov = &c.riovs[i]
		h.Iovlen = 1
		h.Control = nil
		h.Controllen = 0
		h.Flags = 0
		c.rhdrs[i].len = 0
	}
	c.rwant, c.rgot, c.rerrno = n, 0, 0
	err := c.rc.Read(c.readFn)
	if err != nil {
		return 0, err
	}
	if c.rerrno != 0 {
		return 0, &net.OpError{Op: "read", Net: "udp", Addr: c.LocalAddr(), Err: os.NewSyscallError("recvmmsg", c.rerrno)}
	}
	got := c.rgot
	for i := 0; i < got; i++ {
		ms[i].N = int(c.rhdrs[i].len)
		ms[i].Addr = c.sockaddrToUDP(i)
	}
	return got, nil
}

// sockaddrToUDP converts slot i's raw source address into the slot's
// reused *net.UDPAddr without allocating.
func (c *mmsgConn) sockaddrToUDP(i int) net.Addr {
	ua := &c.rudp[i]
	ip := c.rips[i*16 : i*16+16]
	switch c.raddrs[i].Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&c.raddrs[i]))
		copy(ip[:4], sa.Addr[:])
		ua.IP = ip[:4]
		ua.Port = int(sa.Port>>8 | sa.Port<<8)
		ua.Zone = ""
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&c.raddrs[i]))
		copy(ip, sa.Addr[:])
		ua.IP = ip
		ua.Port = int(sa.Port>>8 | sa.Port<<8)
		ua.Zone = zoneOf(sa.Scope_id)
	default:
		return nil
	}
	return ua
}

// zoneOf resolves an IPv6 scope id to its interface name; scope 0 (the
// only case on the loopback hot path) costs nothing.
func zoneOf(scope uint32) string {
	if scope == 0 {
		return ""
	}
	if ifi, err := net.InterfaceByIndex(int(scope)); err == nil {
		return ifi.Name
	}
	return ""
}

// WriteBatch sends ms with one sendmmsg call (retrying the tail if the
// kernel takes only a prefix). A nil Addr sends to the connected peer.
func (c *mmsgConn) WriteBatch(ms []Message) (int, error) {
	total := 0
	for total < len(ms) {
		batch := ms[total:]
		if len(batch) > MaxBatch {
			batch = batch[:MaxBatch]
		}
		n, err := c.writeBatchOnce(batch)
		total += n
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, &net.OpError{Op: "write", Net: "udp", Addr: c.LocalAddr(), Err: os.NewSyscallError("sendmmsg", syscall.EIO)}
		}
	}
	return total, nil
}

func (c *mmsgConn) writeBatchOnce(ms []Message) (int, error) {
	n := len(ms)
	c.growWrite(n)
	for i := 0; i < n; i++ {
		c.wiovs[i].Base = &ms[i].Buf[0]
		c.wiovs[i].Len = uint64(ms[i].N)
		h := &c.whdrs[i].hdr
		h.Iov = &c.wiovs[i]
		h.Iovlen = 1
		h.Control = nil
		h.Controllen = 0
		h.Flags = 0
		c.whdrs[i].len = 0
		if ms[i].Addr == nil {
			h.Name = nil
			h.Namelen = 0
			continue
		}
		nameLen, err := putSockaddr(&c.waddrs[i], ms[i].Addr)
		if err != nil {
			return i, err
		}
		h.Name = (*byte)(unsafe.Pointer(&c.waddrs[i]))
		h.Namelen = nameLen
	}
	c.wwant, c.wsent, c.werrno = n, 0, 0
	err := c.rc.Write(c.writeFn)
	if err != nil {
		return 0, err
	}
	if c.werrno != 0 {
		return 0, &net.OpError{Op: "write", Net: "udp", Addr: c.LocalAddr(), Err: os.NewSyscallError("sendmmsg", c.werrno)}
	}
	return c.wsent, nil
}

// putSockaddr encodes addr (a *net.UDPAddr) into raw storage, returning
// the kernel's namelen. IPv4 destinations reuse the Inet6 slot's memory
// as an Inet4 struct.
func putSockaddr(dst *syscall.RawSockaddrInet6, addr net.Addr) (uint32, error) {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return 0, &net.AddrError{Err: "wire: batch write needs *net.UDPAddr", Addr: addr.String()}
	}
	if ip4 := ua.IP.To4(); ip4 != nil {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(dst))
		sa.Family = syscall.AF_INET
		sa.Port = uint16(ua.Port>>8) | uint16(ua.Port)<<8
		copy(sa.Addr[:], ip4)
		return syscall.SizeofSockaddrInet4, nil
	}
	dst.Family = syscall.AF_INET6
	dst.Port = uint16(ua.Port>>8) | uint16(ua.Port)<<8
	copy(dst.Addr[:], ua.IP.To16())
	dst.Scope_id = 0
	return syscall.SizeofSockaddrInet6, nil
}
