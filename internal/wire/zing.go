package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"badabing/internal/stats"
)

// ZingMagic identifies ZING-style Poisson probe packets.
const ZingMagic uint32 = 0x5a494e47 // "ZING"

// ZingHeaderSize is the encoded size of a ZingHeader.
//
// Layout (big-endian): magic uint32, version uint8, pad uint8,
// expID uint64, seq uint64, sendTime int64.
const ZingHeaderSize = 30

// ZingHeader is the wire header of the Poisson prober: sequence-numbered,
// timestamped UDP probes (§2: "ZING sends UDP packets at Poisson-modulated
// intervals with fixed mean rate ... timestamps and unique sequence
// numbers, and the receiver logs the probe packet arrivals").
type ZingHeader struct {
	ExpID    uint64
	Seq      uint64
	SendTime int64 // Unix nanos
}

// Marshal encodes h into buf.
func (h *ZingHeader) Marshal(buf []byte) (int, error) {
	if len(buf) < ZingHeaderSize {
		return 0, fmt.Errorf("wire: buffer %d bytes, need %d", len(buf), ZingHeaderSize)
	}
	binary.BigEndian.PutUint32(buf[0:], ZingMagic)
	buf[4] = Version
	buf[5] = 0
	binary.BigEndian.PutUint64(buf[6:], h.ExpID)
	binary.BigEndian.PutUint64(buf[14:], h.Seq)
	binary.BigEndian.PutUint64(buf[22:], uint64(h.SendTime))
	return ZingHeaderSize, nil
}

// Unmarshal decodes a header from buf.
func (h *ZingHeader) Unmarshal(buf []byte) error {
	if len(buf) < ZingHeaderSize {
		return fmt.Errorf("wire: short packet: %d bytes", len(buf))
	}
	if binary.BigEndian.Uint32(buf[0:]) != ZingMagic {
		return errors.New("wire: bad zing magic")
	}
	if buf[4] != Version {
		return fmt.Errorf("wire: unsupported version %d", buf[4])
	}
	h.ExpID = binary.BigEndian.Uint64(buf[6:])
	h.Seq = binary.BigEndian.Uint64(buf[14:])
	h.SendTime = int64(binary.BigEndian.Uint64(buf[22:]))
	return nil
}

// ZingSenderConfig parameterizes a Poisson-modulated probe session (§2's
// ZING baseline: UDP probes at exponentially distributed intervals).
type ZingSenderConfig struct {
	// ExpID identifies the session at the collector.
	ExpID uint64
	// Rate is the mean probe rate in probes per second.
	Rate float64
	// Size is the probe packet size; default 256, minimum ZingHeaderSize.
	Size int
	// Duration bounds the session length.
	Duration time.Duration
	// Seed drives the interval RNG; 0 derives it from the clock.
	Seed int64
}

func (c *ZingSenderConfig) applyDefaults() error {
	if c.Size == 0 {
		c.Size = 256
	}
	if c.Size < ZingHeaderSize {
		return fmt.Errorf("wire: zing packet size %d below header size %d", c.Size, ZingHeaderSize)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("wire: zing rate %v must be positive", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("wire: zing duration %v must be positive", c.Duration)
	}
	if c.Seed == 0 {
		c.Seed = nowNano()
	}
	return nil
}

// ZingSend emits sequence-numbered, timestamped probes over conn at
// Poisson-modulated intervals until the configured duration elapses or ctx
// is cancelled (in which case it returns the probes sent so far alongside
// ctx's error). The returned count is the exact total a collector needs
// for trailing-loss accounting.
func ZingSend(ctx context.Context, conn net.Conn, cfg ZingSenderConfig) (uint64, error) {
	if err := cfg.applyDefaults(); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	mean := time.Duration(float64(time.Second) / cfg.Rate)
	end := time.Now().Add(cfg.Duration)
	buf := make([]byte, cfg.Size)
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	var seq uint64
	for time.Now().Before(end) {
		gap := time.Duration(rng.ExpFloat64() * float64(mean))
		timer.Reset(gap)
		select {
		case <-ctx.Done():
			return seq, ctx.Err()
		case <-timer.C:
		}
		h := ZingHeader{ExpID: cfg.ExpID, Seq: seq, SendTime: time.Now().UnixNano()}
		if _, err := h.Marshal(buf); err != nil {
			return seq, err
		}
		if _, err := conn.Write(buf); err != nil {
			return seq, err
		}
		seq++
	}
	return seq, nil
}

// zingSession holds received sequence numbers and send times.
type zingSession struct {
	seqs   map[uint64]int64 // seq → send time
	maxSeq uint64
}

// ZingCollector receives ZING probes and reports loss characteristics the
// way §4.2 analyzes them: loss frequency as the fraction of lost probes
// and loss episodes as runs of consecutive lost sequence numbers.
type ZingCollector struct {
	mu       sync.Mutex
	sessions map[uint64]*zingSession
}

// NewZingCollector returns an empty collector; feed it with Record or via
// Serve.
func NewZingCollector() *ZingCollector {
	return &ZingCollector{sessions: make(map[uint64]*zingSession)}
}

// Record registers one received probe.
func (c *ZingCollector) Record(h *ZingHeader) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sessions[h.ExpID]
	if s == nil {
		s = &zingSession{seqs: make(map[uint64]int64)}
		c.sessions[h.ExpID] = s
	}
	s.seqs[h.Seq] = h.SendTime
	if h.Seq > s.maxSeq {
		s.maxSeq = h.Seq
	}
}

// ZingWireReport is the per-session analysis.
type ZingWireReport struct {
	Probes    uint64
	Received  uint64
	Lost      uint64
	Frequency float64
	// Duration summarizes loss-run durations in seconds, where a run's
	// duration is the send-time span of its consecutive lost probes.
	Duration stats.Summary
}

// Report analyzes a session. totalSent > 0 overrides the probe count
// inferred from the highest sequence seen (which misses trailing losses).
func (c *ZingCollector) Report(expID uint64, totalSent uint64) (ZingWireReport, error) {
	c.mu.Lock()
	s := c.sessions[expID]
	if s == nil {
		c.mu.Unlock()
		return ZingWireReport{}, ErrUnknownSession
	}
	seqs := make(map[uint64]int64, len(s.seqs))
	for k, v := range s.seqs {
		seqs[k] = v
	}
	maxSeq := s.maxSeq
	c.mu.Unlock()

	total := maxSeq + 1
	if totalSent > 0 {
		total = totalSent
	}
	rep := ZingWireReport{Probes: total, Received: uint64(len(seqs))}
	if total < rep.Received {
		total = rep.Received
		rep.Probes = total
	}
	rep.Lost = total - rep.Received

	// Reconstruct loss runs. Send times of lost probes are unknown, so
	// a run's span is measured between the send times of its bracketing
	// received probes, interpolated one inter-probe gap inward — for an
	// isolated loss this yields zero, matching the §4.2 analysis where
	// a single lost probe carries no duration information.
	received := make([]uint64, 0, len(seqs))
	for seq := range seqs {
		received = append(received, seq)
	}
	sort.Slice(received, func(i, j int) bool { return received[i] < received[j] })
	for i := 1; i < len(received); i++ {
		gap := received[i] - received[i-1]
		if gap <= 1 {
			continue
		}
		lostCount := gap - 1
		span := time.Duration(seqs[received[i]] - seqs[received[i-1]])
		// The span covers lostCount+1 inter-probe intervals; the
		// lost run itself covers lostCount-1 of them.
		runDur := span * time.Duration(lostCount-1) / time.Duration(lostCount+1)
		rep.Duration.AddDuration(runDur)
	}
	if total > 0 {
		rep.Frequency = float64(rep.Lost) / float64(total)
	}
	return rep, nil
}

// Sessions lists known session ids.
func (c *ZingCollector) Sessions() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, len(c.sessions))
	for id := range c.sessions {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
