//go:build !linux || (!amd64 && !arm64)

package wire

import "net"

// newMmsgConn is unavailable without the linux multi-message syscalls;
// callers fall back to the portable single-packet batch adapter.
func newMmsgConn(u *net.UDPConn) BatchConn { return nil }

// newUDPBatchWriter is unavailable without sendmmsg; the sender stays on
// per-packet writes.
func newUDPBatchWriter(u *net.UDPConn) BatchWriter { return nil }
