package wire

import (
	"net"
	"os"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"
)

// openFDs counts this process's open descriptors, or -1 where /proc is
// unavailable.
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// probeFrame builds a valid probe datagram for reflector tests.
func probeFrame(t *testing.T, seq uint64) []byte {
	t.Helper()
	h := Header{ExpID: 5, P: 0.3, N: 1000, PktsPerProbe: 3,
		SlotWidth: 5 * time.Millisecond, Seed: 1,
		SendTime: time.Now().UnixNano(), Seq: seq}
	buf := make([]byte, HeaderSize)
	if _, err := h.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestReflectorShardedShutdown proves the sharded reflector's lifecycle
// invariants: Run fans out and serves traffic on every shard, Close makes
// Run return with all shards drained, no goroutine or file descriptor
// outlives the reflector, counters only ever grow, and the per-shard
// rows sum exactly to the aggregates badabingd exports.
func TestReflectorShardedShutdown(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	baseFDs := openFDs()

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := NewReflectorConfig(conn, ReflectorConfig{Shards: 4, Batch: 8})
	if r.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", r.Shards())
	}
	done := make(chan struct{})
	go func() {
		r.Run()
		close(done)
	}()

	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const probes, pings = 60, 12
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < probes; i++ {
			client.Write(probeFrame(t, uint64(i)))
		}
		for i := 0; i < pings; i++ {
			client.Write(marshalLiveness(livenessPing, uint64(i), time.Now().UnixNano()))
		}
	}()

	// Counters must be monotone while traffic lands and eventually reach
	// the exact totals (UDP on loopback does not drop).
	var lastP, lastG uint64
	deadline := time.Now().Add(5 * time.Second)
	for {
		p, g := r.Packets(), r.Pings()
		if p < lastP || g < lastG {
			t.Fatalf("counters went backwards: packets %d→%d pings %d→%d", lastP, p, lastG, g)
		}
		lastP, lastG = p, g
		if p == probes && g == pings {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("packets=%d pings=%d, want %d/%d", p, g, probes, pings)
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()

	var sumP, sumG, sumD uint64
	for _, sc := range r.ShardCounts() {
		sumP += sc.Packets
		sumG += sc.Pings
		sumD += sc.Dropped
	}
	if sumP != r.Packets() || sumG != r.Pings() || sumD != r.Dropped() {
		t.Fatalf("shard rows (%d,%d,%d) don't sum to aggregates (%d,%d,%d)",
			sumP, sumG, sumD, r.Packets(), r.Pings(), r.Dropped())
	}

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return within 5s of Close — a shard is stuck")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	client.Close() // the test's own socket must not count as a leak

	// Every shard goroutine and the socket FD must be gone. Poll: exit
	// is asynchronous with Run's return only for the GC of conns, so
	// allow the runtime a moment to settle.
	deadline = time.Now().Add(5 * time.Second)
	for {
		g := runtime.NumGoroutine()
		f := openFDs()
		if g <= baseGoroutines && (baseFDs < 0 || f <= baseFDs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after shutdown: goroutines %d (base %d), fds %d (base %d)",
				g, baseGoroutines, f, baseFDs)
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
}

// scriptedConn is a PacketConn whose reads follow a script of errors and
// datagrams, then report closure. It stands in for a socket suffering a
// persistent error condition (e.g. EMSGSIZE after an MTU/profile change).
type scriptedConn struct {
	mu    sync.Mutex
	steps []scriptStep
	src   net.Addr
}

type scriptStep struct {
	data []byte
	err  error
}

func opErr(errno syscall.Errno) error {
	return &net.OpError{Op: "read", Net: "udp", Err: os.NewSyscallError("recvmmsg", errno)}
}

func (c *scriptedConn) ReadFrom(p []byte) (int, net.Addr, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.steps) == 0 {
		return 0, nil, net.ErrClosed
	}
	s := c.steps[0]
	c.steps = c.steps[1:]
	if s.err != nil {
		return 0, nil, s.err
	}
	return copy(p, s.data), c.src, nil
}

func (c *scriptedConn) WriteTo(p []byte, addr net.Addr) (int, error) { return len(p), nil }
func (c *scriptedConn) Close() error                                 { return nil }
func (c *scriptedConn) LocalAddr() net.Addr                          { return c.src }
func (c *scriptedConn) SetDeadline(t time.Time) error                { return nil }
func (c *scriptedConn) SetReadDeadline(t time.Time) error            { return nil }
func (c *scriptedConn) SetWriteDeadline(t time.Time) error           { return nil }

// TestReflectorSurfacesPersistentReadErrors is the regression test for
// the swallowed-error fix: a run of EMSGSIZE-class read errors must
// surface exactly once, a change of class must surface exactly once
// more, the loop must keep serving datagrams throughout, and the
// monotone count must tally every error survived.
func TestReflectorSurfacesPersistentReadErrors(t *testing.T) {
	src := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9999}
	conn := &scriptedConn{src: src, steps: []scriptStep{
		{err: opErr(syscall.EMSGSIZE)},
		{err: opErr(syscall.EMSGSIZE)},
		{err: opErr(syscall.EMSGSIZE)},
		{data: probeFrame(t, 1)}, // loop still serves mid-condition
		{err: opErr(syscall.ECONNREFUSED)},
		{err: opErr(syscall.ECONNREFUSED)},
	}}
	r := NewReflector(conn)
	var surfaced []string
	r.OnReadError(func(err error) { surfaced = append(surfaced, errClass(err)) })
	r.Run() // returns when the script reports closure

	if r.Packets() != 1 {
		t.Errorf("served %d datagrams through the error runs, want 1", r.Packets())
	}
	want := []string{syscall.EMSGSIZE.Error(), syscall.ECONNREFUSED.Error()}
	if len(surfaced) != len(want) || surfaced[0] != want[0] || surfaced[1] != want[1] {
		t.Errorf("surfaced %v, want one firing per class change: %v", surfaced, want)
	}
	count, class := r.ReadErrors()
	if count != 5 {
		t.Errorf("ReadErrors count = %d, want 5 (monotone tally of every error)", count)
	}
	if class != syscall.ECONNREFUSED.Error() {
		t.Errorf("current class = %q, want %q", class, syscall.ECONNREFUSED.Error())
	}
}

// TestCollectorSurfacesPersistentReadErrors proves the collector's read
// loop has the same once-per-class surfacing: it must outlive the error
// burst, keep recording probes, and report the monotone count.
func TestCollectorSurfacesPersistentReadErrors(t *testing.T) {
	src := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9999}
	conn := &scriptedConn{src: src, steps: []scriptStep{
		{err: opErr(syscall.EMSGSIZE)},
		{err: opErr(syscall.EMSGSIZE)},
		{data: probeFrame(t, 1)},       // still collecting mid-condition
		{err: opErr(syscall.EMSGSIZE)}, // same class again: no re-fire
	}}
	c := NewCollector(conn)
	var surfaced []string
	c.OnReadError(func(err error) { surfaced = append(surfaced, errClass(err)) })
	c.Run()

	if got := c.Sessions(); len(got) != 1 || got[0] != 5 {
		t.Errorf("sessions = %v, want [5] — the error burst stopped collection", got)
	}
	if len(surfaced) != 1 || surfaced[0] != syscall.EMSGSIZE.Error() {
		t.Errorf("surfaced %v, want exactly one %q firing", surfaced, syscall.EMSGSIZE.Error())
	}
	count, class := c.ReadErrors()
	if count != 3 || class != syscall.EMSGSIZE.Error() {
		t.Errorf("ReadErrors = (%d, %q), want (3, %q)", count, class, syscall.EMSGSIZE.Error())
	}
}
