//go:build !race

// Zero-allocation regression pins for the wire hot path. The batch
// rebuild's whole point is that the steady send/receive/echo path stays
// off the allocator (GC pauses show up directly as pacing error, the
// accuracy-critical quantity); these tests turn that property into a
// tier-1 invariant. Gated from -race because the race runtime adds its
// own allocations.
package wire

import (
	"net"
	"testing"
	"time"
)

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warm up: one-time growth (batch headers, map buckets) is allowed
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s allocates %.2f times per run, want 0", name, avg)
	}
}

// TestProbeCodecZeroAlloc pins Header Marshal/Unmarshal — executed once
// per packet on both ends — at zero heap allocations.
func TestProbeCodecZeroAlloc(t *testing.T) {
	h := Header{ExpID: 7, Slot: 3, PktsPerProbe: 3, P: 0.3, N: 1000,
		SlotWidth: 5 * time.Millisecond, Seed: 11, SendTime: time.Now().UnixNano(), Seq: 9}
	buf := make([]byte, HeaderSize)
	var out Header
	assertZeroAllocs(t, "Header.Marshal", func() {
		if _, err := h.Marshal(buf); err != nil {
			t.Fatal(err)
		}
	})
	assertZeroAllocs(t, "Header.Unmarshal", func() {
		if err := out.Unmarshal(buf); err != nil {
			t.Fatal(err)
		}
	})
}

// TestLivenessCodecZeroAlloc pins the liveness frame encode (the pooled
// putLiveness the reflector's pong path uses) and decode at zero
// allocations.
func TestLivenessCodecZeroAlloc(t *testing.T) {
	buf := make([]byte, livenessSize)
	assertZeroAllocs(t, "putLiveness", func() {
		putLiveness(buf, livenessPong, 42, 123456789)
	})
	assertZeroAllocs(t, "parseLiveness", func() {
		if _, _, _, ok := parseLiveness(buf); !ok {
			t.Fatal("parseLiveness rejected its own frame")
		}
	})
}

// sinkBatchConn is a BatchConn whose writes vanish: it lets the alloc
// test drive the reflector's full classify+echo iteration without
// sockets. Only WriteBatch is ever called on the serveBatch path.
type sinkBatchConn struct {
	net.PacketConn
}

func (c *sinkBatchConn) ReadBatch(ms []Message) (int, error)  { return 0, net.ErrClosed }
func (c *sinkBatchConn) WriteBatch(ms []Message) (int, error) { return len(ms), nil }

// TestReflectorServeBatchZeroAlloc pins one full reflector batch
// iteration — probe classification, tap dispatch, pooled pong encode,
// batched echo — at zero heap allocations. This is the per-datagram cost
// at fleet scale.
func TestReflectorServeBatchZeroAlloc(t *testing.T) {
	sink := &sinkBatchConn{}
	// NewBatchConn sees the conn's own BatchConn implementation, so the
	// shard batches straight into the sink.
	r := NewReflectorConfig(sink, ReflectorConfig{Shards: 1, Batch: 8})
	s := r.shards[0]

	src := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 4242}
	h := Header{ExpID: 7, P: 0.3, N: 1000, PktsPerProbe: 3,
		SlotWidth: 5 * time.Millisecond, Seed: 1, SendTime: time.Now().UnixNano()}
	for i := 0; i < 7; i++ {
		n, err := h.Marshal(s.in[i].Buf)
		if err != nil {
			t.Fatal(err)
		}
		s.in[i].N = n
		s.in[i].Addr = src
	}
	// Slot 7 is a liveness ping, exercising the pooled pong path too.
	s.in[7].N = putLiveness(s.in[7].Buf, livenessPing, 99, time.Now().UnixNano())
	s.in[7].Addr = src

	taps := 0
	tap := func(data []byte, from net.Addr) { taps++ }
	assertZeroAllocs(t, "Reflector.serveBatch", func() {
		r.serveBatch(s, tap, 8)
	})
	if taps == 0 {
		t.Fatal("tap never ran — the batch was not classified")
	}
	if r.Packets() == 0 || r.Pings() == 0 || r.Dropped() != 0 {
		t.Fatalf("counter snapshot packets=%d pings=%d dropped=%d", r.Packets(), r.Pings(), r.Dropped())
	}
}

// TestMmsgBatchZeroAlloc pins the real multi-message syscall path —
// sendmmsg with explicit destinations, recvmmsg with reused address
// storage — at zero allocations per batch, over live loopback sockets.
func TestMmsgBatchZeroAlloc(t *testing.T) {
	recv := udpListener(t)
	send := udpListener(t)
	rbc := NewBatchConn(recv, false)
	wbc := NewBatchConn(send, false)
	if _, ok := rbc.(*fallbackConn); ok {
		t.Skip("no multi-message syscalls on this platform")
	}

	const k = 8
	wms := MakeMessages(k)
	dst := recv.LocalAddr().(*net.UDPAddr)
	for i := 0; i < k; i++ {
		wms[i].N = copy(wms[i].Buf, payloadFor(i))
		wms[i].Addr = dst
	}
	rms := MakeMessages(k)
	if err := recv.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}

	assertZeroAllocs(t, "mmsg write+read batch", func() {
		n, err := wbc.WriteBatch(wms)
		if err != nil || n != k {
			t.Fatalf("WriteBatch = (%d, %v)", n, err)
		}
		for got := 0; got < k; {
			n, err := rbc.ReadBatch(rms)
			if err != nil {
				t.Fatalf("ReadBatch: %v", err)
			}
			got += n
		}
	})
}
