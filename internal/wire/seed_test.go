package wire

import (
	"testing"
	"time"
)

// pinNow overrides the clock-derived seed source for the test's duration.
func pinNow(t *testing.T, nanos int64) {
	t.Helper()
	old := nowNano
	nowNano = func() int64 { return nanos }
	t.Cleanup(func() { nowNano = old })
}

func TestSenderConfigSeedFromClock(t *testing.T) {
	pinNow(t, 424242)
	cfg := SenderConfig{P: 0.3, N: 100}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatalf("applyDefaults: %v", err)
	}
	if cfg.Seed != 424242 {
		t.Fatalf("clock-derived seed = %d, want 424242", cfg.Seed)
	}

	cfg = SenderConfig{P: 0.3, N: 100, Seed: 7}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatalf("applyDefaults: %v", err)
	}
	if cfg.Seed != 7 {
		t.Fatalf("explicit seed overwritten: got %d, want 7", cfg.Seed)
	}
}

func TestAdaptiveConfigSeedFromClock(t *testing.T) {
	pinNow(t, 171717)
	cfg := AdaptiveConfig{}
	cfg.applyDefaults()
	if cfg.Seed != 171717 {
		t.Fatalf("clock-derived seed = %d, want 171717", cfg.Seed)
	}

	cfg = AdaptiveConfig{Seed: 9}
	cfg.applyDefaults()
	if cfg.Seed != 9 {
		t.Fatalf("explicit seed overwritten: got %d, want 9", cfg.Seed)
	}
}

func TestZingSenderConfigSeedFromClock(t *testing.T) {
	pinNow(t, 99)
	cfg := ZingSenderConfig{Rate: 10, Duration: time.Second}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatalf("applyDefaults: %v", err)
	}
	if cfg.Seed != 99 {
		t.Fatalf("clock-derived seed = %d, want 99", cfg.Seed)
	}
}
