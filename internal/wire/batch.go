package wire

import (
	"errors"
	"net"
)

// Batched datagram I/O. The wire hot path — the reflector's echo loop,
// the collector's receive loop and the sender's per-probe packet bursts —
// previously cost one syscall per packet. At fleet scale (many concurrent
// sessions against one daemon, Ekelin et al.'s reflecting-server
// dimensioning problem) that syscall overhead both caps throughput and
// skews probe pacing, which is the accuracy-critical quantity. This file
// defines the portable batch interface; batch_linux.go implements it with
// sendmmsg(2)/recvmmsg(2), and every other platform (plus any non-UDP
// net.PacketConn) falls back to semantically identical single-packet
// loops.

// MaxBatch is the largest number of datagrams moved per batched syscall.
// Linux caps sendmmsg/recvmmsg vectors at UIO_MAXIOV (1024); 64 already
// amortizes syscall entry to noise while keeping per-shard buffer memory
// (64 × 2 KiB) trivial.
const MaxBatch = 64

// DefaultBatch is the batch size used when a config leaves it zero.
const DefaultBatch = 32

// maxDatagram is the buffer size reserved per batched message. Probe
// packets default to 600 bytes and liveness frames to 24; 2 KiB leaves
// generous headroom for foreign or future traffic without making batch
// buffers expensive. Larger datagrams are truncated by the kernel, which
// the parsers treat exactly like wire truncation (not ours / loss).
const maxDatagram = 2048

// Message is one datagram in a batch: a reusable buffer, the number of
// valid bytes, and the peer address (source on read, destination on
// write; nil means the socket's connected peer).
type Message struct {
	Buf  []byte
	N    int
	Addr net.Addr
}

// Payload returns the valid bytes of the message.
func (m *Message) Payload() []byte { return m.Buf[:m.N] }

// BatchConn is a net.PacketConn that can move several datagrams per
// call. ReadBatch blocks until at least one datagram is available, fills
// as many of ms as are immediately readable, and returns the count; the
// buffers and addresses it populates are valid only until the next
// ReadBatch on the same instance. WriteBatch sends ms[i].Buf[:ms[i].N] to
// ms[i].Addr and returns how many were handed to the kernel; a short
// count comes with the error that stopped the batch, and the caller owns
// retrying the remainder (the reflector retries them one at a time so
// per-packet drop accounting stays exact).
//
// A BatchConn instance is not safe for concurrent ReadBatch or
// concurrent WriteBatch calls; the sharded reflector wraps one instance
// per shard over the same socket.
type BatchConn interface {
	net.PacketConn
	ReadBatch(ms []Message) (int, error)
	WriteBatch(ms []Message) (int, error)
}

// ErrBatchUnsupported is returned by batch fast paths on platforms or
// socket types without a true multi-message syscall; callers fall back
// to the single-packet path.
var ErrBatchUnsupported = errors.New("wire: batched I/O unsupported on this conn")

// BatchWriter is the sender-side half of the batch interface: SendSlots
// probes for it on its conn and, when present, emits each probe's packet
// bunch with a single call. Implementations must tolerate a nil Message
// Addr (the connected peer). Any shortfall or error makes the sender
// fall back to per-packet Write for the batch's remainder, so write
// failures keep their per-packet accounting.
type BatchWriter interface {
	WriteBatch(ms []Message) (int, error)
}

// NewBatchWriter returns a persistent batch writer for a connected UDP
// socket (sendmmsg on linux), or nil when the platform or socket cannot
// batch — callers then stay on per-packet writes.
func NewBatchWriter(conn net.Conn) BatchWriter {
	if u, ok := conn.(*net.UDPConn); ok {
		if bw := newUDPBatchWriter(u); bw != nil {
			return bw
		}
	}
	return nil
}

// NewBatchConn wraps conn in a BatchConn. Wrapping prefers, in order:
// conn's own batch implementation (chaos.ImpairedConn implements the
// interface so fault injection sees every datagram individually), the
// platform multi-message syscalls for *net.UDPConn (unless disabled),
// and a portable single-packet fallback. Each call returns an
// independent instance: shards wrap the same socket once each.
func NewBatchConn(conn net.PacketConn, disable bool) BatchConn {
	if bc, ok := conn.(BatchConn); ok {
		return bc
	}
	if !disable {
		if u, ok := conn.(*net.UDPConn); ok {
			if bc := newMmsgConn(u); bc != nil {
				return bc
			}
		}
	}
	return &fallbackConn{PacketConn: conn}
}

// fallbackConn adapts any net.PacketConn to the batch interface with
// single-packet syscalls: ReadBatch delivers exactly one datagram per
// call (a blocking ReadFrom cannot know whether a second is pending) and
// WriteBatch loops WriteTo. It is the semantic reference the mmsg path
// is tested against.
type fallbackConn struct {
	net.PacketConn
}

func (c *fallbackConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	n, addr, err := c.ReadFrom(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].N = n
	ms[0].Addr = addr
	return 1, nil
}

func (c *fallbackConn) WriteBatch(ms []Message) (int, error) {
	for i := range ms {
		if _, err := c.writeOne(&ms[i]); err != nil {
			return i, err
		}
	}
	return len(ms), nil
}

func (c *fallbackConn) writeOne(m *Message) (int, error) {
	if m.Addr == nil {
		if w, ok := c.PacketConn.(net.Conn); ok {
			return w.Write(m.Payload())
		}
		return 0, errors.New("wire: nil addr on unconnected conn")
	}
	return c.WriteTo(m.Payload(), m.Addr)
}

// MakeMessages builds a reusable batch of n messages, each owning a
// maxDatagram-byte buffer.
func MakeMessages(n int) []Message {
	backing := make([]byte, n*maxDatagram)
	ms := make([]Message, n)
	for i := range ms {
		ms[i].Buf = backing[i*maxDatagram : (i+1)*maxDatagram : (i+1)*maxDatagram]
	}
	return ms
}
