package wire

import (
	"testing"
	"time"
)

func TestZingHeaderRoundTrip(t *testing.T) {
	h := ZingHeader{ExpID: 7, Seq: 12345, SendTime: time.Now().UnixNano()}
	buf := make([]byte, ZingHeaderSize)
	if _, err := h.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	var got ZingHeader
	if err := got.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
}

func TestZingHeaderRejects(t *testing.T) {
	var h ZingHeader
	if err := h.Unmarshal(make([]byte, 5)); err == nil {
		t.Error("short packet accepted")
	}
	if err := h.Unmarshal(make([]byte, ZingHeaderSize)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := h.Marshal(make([]byte, 3)); err == nil {
		t.Error("short buffer accepted")
	}
}

// feed records seqs 0..n-1 except those in lost, spaced 100 ms apart.
func feed(c *ZingCollector, expID uint64, n int, lost map[int]bool) {
	for i := 0; i < n; i++ {
		if lost[i] {
			continue
		}
		c.Record(&ZingHeader{
			ExpID:    expID,
			Seq:      uint64(i),
			SendTime: int64(i) * int64(100*time.Millisecond),
		})
	}
}

func TestZingCollectorNoLoss(t *testing.T) {
	c := NewZingCollector()
	feed(c, 1, 100, nil)
	rep, err := c.Report(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 || rep.Frequency != 0 || rep.Duration.N() != 0 {
		t.Fatalf("loss reported on clean stream: %+v", rep)
	}
}

func TestZingCollectorIsolatedLosses(t *testing.T) {
	c := NewZingCollector()
	feed(c, 1, 100, map[int]bool{10: true, 50: true, 90: true})
	rep, err := c.Report(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 3 {
		t.Fatalf("lost = %d, want 3", rep.Lost)
	}
	if rep.Frequency != 0.03 {
		t.Fatalf("frequency = %v, want 0.03", rep.Frequency)
	}
	// Isolated losses have zero duration (no consecutive losses).
	if rep.Duration.Mean() != 0 {
		t.Fatalf("duration mean = %v, want 0 for isolated losses", rep.Duration.Mean())
	}
	if rep.Duration.N() != 3 {
		t.Fatalf("runs = %d, want 3", rep.Duration.N())
	}
}

func TestZingCollectorConsecutiveRun(t *testing.T) {
	c := NewZingCollector()
	// Probes 20..24 lost: a 5-probe run. Bracketing received probes are
	// 19 (at 1.9s) and 25 (at 2.5s): span 600 ms over 6 intervals, run
	// duration = 600ms × 4/6 = 400 ms.
	lost := map[int]bool{20: true, 21: true, 22: true, 23: true, 24: true}
	feed(c, 1, 100, lost)
	rep, err := c.Report(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 5 {
		t.Fatalf("lost = %d, want 5", rep.Lost)
	}
	if rep.Duration.N() != 1 {
		t.Fatalf("runs = %d, want 1", rep.Duration.N())
	}
	if got, want := rep.Duration.Mean(), 0.4; abs(got-want) > 1e-9 {
		t.Fatalf("run duration = %v, want %v", got, want)
	}
}

func TestZingCollectorTrailingLoss(t *testing.T) {
	c := NewZingCollector()
	feed(c, 1, 100, map[int]bool{98: true, 99: true})
	// Without totalSent the collector can only infer 98 probes
	// (seq 0..97); with it, the trailing losses are counted.
	repInferred, _ := c.Report(1, 0)
	if repInferred.Lost != 0 {
		t.Fatalf("inferred lost = %d, want 0 (trailing losses invisible)", repInferred.Lost)
	}
	rep, _ := c.Report(1, 100)
	if rep.Lost != 2 {
		t.Fatalf("lost = %d, want 2 with totalSent", rep.Lost)
	}
}

func TestZingCollectorUnknownSession(t *testing.T) {
	c := NewZingCollector()
	if _, err := c.Report(5, 0); err != ErrUnknownSession {
		t.Fatalf("err = %v, want ErrUnknownSession", err)
	}
}

func TestZingCollectorSessions(t *testing.T) {
	c := NewZingCollector()
	feed(c, 3, 5, nil)
	feed(c, 1, 5, nil)
	ids := c.Sessions()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("sessions = %v, want [1 3]", ids)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
