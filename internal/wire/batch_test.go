package wire

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"
)

// udpListener opens a loopback UDP socket for batch tests.
func udpListener(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn.(*net.UDPConn)
}

// payloadFor builds a distinct, recognizable datagram for slot i.
func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf("batch-datagram-%03d-%s", i, "payload"))
}

// drainBatch reads from bc until want datagrams have arrived (or the
// deadline hits), appending copies of each payload in arrival order.
func drainBatch(t *testing.T, bc BatchConn, ms []Message, want int) [][]byte {
	t.Helper()
	var got [][]byte
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < want {
		if err := bc.SetReadDeadline(deadline); err != nil {
			t.Fatal(err)
		}
		n, err := bc.ReadBatch(ms)
		if err != nil {
			t.Fatalf("ReadBatch after %d/%d datagrams: %v", len(got), want, err)
		}
		if n < 1 || n > len(ms) {
			t.Fatalf("ReadBatch returned %d messages from a %d-slot batch", n, len(ms))
		}
		for i := 0; i < n; i++ {
			if ms[i].Addr == nil {
				t.Fatalf("message %d arrived with nil source address", len(got))
			}
			got = append(got, append([]byte(nil), ms[i].Payload()...))
		}
	}
	return got
}

// TestBatchReadRoundTrip sends k datagrams and reads them back through
// both the platform mmsg path and the portable fallback, over the batch
// sizes the reflector actually uses. Every payload must come back intact
// and exactly once, whatever the batching.
func TestBatchReadRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		disable bool
		batch   int
		send    int
	}{
		{"mmsg/batch1", false, 1, 5},
		{"mmsg/batch8", false, 8, 24},
		{"mmsg/batchMax", false, MaxBatch, MaxBatch + 7},
		{"fallback/batch1", true, 1, 5},
		{"fallback/batch8", true, 8, 24},
		{"fallback/batchMax", true, MaxBatch, MaxBatch + 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recv := udpListener(t)
			bc := NewBatchConn(recv, tc.disable)
			sender, err := net.Dial("udp", recv.LocalAddr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer sender.Close()

			want := make(map[string]int, tc.send)
			for i := 0; i < tc.send; i++ {
				p := payloadFor(i)
				if _, err := sender.Write(p); err != nil {
					t.Fatal(err)
				}
				want[string(p)]++
			}

			got := drainBatch(t, bc, MakeMessages(tc.batch), tc.send)
			for _, p := range got {
				want[string(p)]--
			}
			for p, n := range want {
				if n != 0 {
					t.Errorf("payload %q count off by %d", p, n)
				}
			}
		})
	}
}

// TestBatchWriteRoundTrip drives WriteBatch with explicit destination
// addresses on an unconnected socket, in both modes, and checks the far
// end receives every datagram byte-identical and in order.
func TestBatchWriteRoundTrip(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "mmsg"
		if disable {
			name = "fallback"
		}
		t.Run(name, func(t *testing.T) {
			recv := udpListener(t)
			send := udpListener(t)
			bc := NewBatchConn(send, disable)

			const k = 17
			ms := MakeMessages(k)
			dst := recv.LocalAddr()
			for i := 0; i < k; i++ {
				p := payloadFor(i)
				ms[i].N = copy(ms[i].Buf, p)
				ms[i].Addr = dst
			}
			n, err := bc.WriteBatch(ms)
			if err != nil || n != k {
				t.Fatalf("WriteBatch = (%d, %v), want (%d, nil)", n, err, k)
			}

			buf := make([]byte, maxDatagram)
			for i := 0; i < k; i++ {
				recv.SetReadDeadline(time.Now().Add(5 * time.Second))
				rn, _, err := recv.ReadFrom(buf)
				if err != nil {
					t.Fatalf("datagram %d: %v", i, err)
				}
				if !bytes.Equal(buf[:rn], payloadFor(i)) {
					t.Fatalf("datagram %d = %q, want %q (reordered or corrupt)", i, buf[:rn], payloadFor(i))
				}
			}
		})
	}
}

// TestBatchWriteNilAddrConnected covers the sender shape: a connected
// socket and messages with nil Addr (meaning "the connected peer") — via
// NewBatchWriter (the mmsg fast path, where available) and via the
// portable fallback wrapper.
func TestBatchWriteNilAddrConnected(t *testing.T) {
	recv := udpListener(t)
	sender, err := net.Dial("udp", recv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	writers := map[string]BatchWriter{
		"fallback": &fallbackConn{PacketConn: sender.(*net.UDPConn)},
	}
	if bw := NewBatchWriter(sender); bw != nil {
		writers["mmsg"] = bw
	}

	for name, bw := range writers {
		t.Run(name, func(t *testing.T) {
			const k = 8
			ms := MakeMessages(k)
			for i := 0; i < k; i++ {
				ms[i].N = copy(ms[i].Buf, payloadFor(i))
				ms[i].Addr = nil
			}
			n, err := bw.WriteBatch(ms)
			if err != nil || n != k {
				t.Fatalf("WriteBatch = (%d, %v), want (%d, nil)", n, err, k)
			}
			buf := make([]byte, maxDatagram)
			for i := 0; i < k; i++ {
				recv.SetReadDeadline(time.Now().Add(5 * time.Second))
				rn, _, err := recv.ReadFrom(buf)
				if err != nil {
					t.Fatalf("datagram %d: %v", i, err)
				}
				if !bytes.Equal(buf[:rn], payloadFor(i)) {
					t.Fatalf("datagram %d = %q, want %q", i, buf[:rn], payloadFor(i))
				}
			}
		})
	}
}

// TestBatchShortRead proves kernel truncation of an oversized datagram
// behaves identically on both paths: the message carries exactly
// len(Buf) bytes — the datagram's prefix — and the loop keeps running.
// The parsers treat such prefixes like any other wire truncation.
func TestBatchShortRead(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "mmsg"
		if disable {
			name = "fallback"
		}
		t.Run(name, func(t *testing.T) {
			recv := udpListener(t)
			bc := NewBatchConn(recv, disable)
			sender, err := net.Dial("udp", recv.LocalAddr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer sender.Close()

			big := bytes.Repeat([]byte{0xAB}, 100)
			if _, err := sender.Write(big); err != nil {
				t.Fatal(err)
			}

			// One 16-byte slot: the 100-byte datagram must truncate, not
			// error out or spill into a neighbor.
			ms := []Message{{Buf: make([]byte, 16)}}
			bc.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, err := bc.ReadBatch(ms)
			if err != nil || n != 1 {
				t.Fatalf("ReadBatch = (%d, %v), want (1, nil)", n, err)
			}
			if ms[0].N != 16 || !bytes.Equal(ms[0].Payload(), big[:16]) {
				t.Fatalf("truncated read N=%d payload=%x, want 16-byte prefix", ms[0].N, ms[0].Payload())
			}

			// The socket still works after truncation.
			if _, err := sender.Write(payloadFor(1)); err != nil {
				t.Fatal(err)
			}
			got := drainBatch(t, bc, MakeMessages(1), 1)
			if !bytes.Equal(got[0], payloadFor(1)) {
				t.Fatalf("post-truncation datagram = %q", got[0])
			}
		})
	}
}

// TestCollectorBatchGarbageResilience feeds the collector's batched read
// loop truncated and corrupt datagrams mid-stream. Garbage must never
// create sessions or kill the loop; a valid probe arriving afterwards
// must still be recorded.
func TestCollectorBatchGarbageResilience(t *testing.T) {
	col, addr := startCollector(t)
	conn := dial(t, addr)

	hdr := Header{ExpID: 77, P: 0.3, N: 100, PktsPerProbe: 3,
		SlotWidth: 5 * time.Millisecond, Seed: 1, SendTime: time.Now().UnixNano()}
	good := make([]byte, HeaderSize)
	if _, err := hdr.Marshal(good); err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), good...)
	corrupt[4] = Version + 1 // future version: rejected, not fatal

	for _, pkt := range [][]byte{
		good[:HeaderSize/2],        // truncated mid-header
		{0},                        // single garbage byte
		corrupt,                    // right size, wrong version
		bytes.Repeat([]byte{0}, 3), // too short for magic
		good,                       // the real probe
	} {
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		ids := col.Sessions()
		if len(ids) == 1 && ids[0] == 77 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions = %v, want [77] — garbage datagrams wedged the batch loop", ids)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchEmptyAndZeroSlot pins edge behavior shared by both
// implementations: a zero-length batch is a no-op, and MakeMessages
// hands out disjoint full-size buffers.
func TestBatchEmptyAndZeroSlot(t *testing.T) {
	recv := udpListener(t)
	for _, disable := range []bool{false, true} {
		bc := NewBatchConn(recv, disable)
		if n, err := bc.ReadBatch(nil); n != 0 || err != nil {
			t.Errorf("disable=%v: empty ReadBatch = (%d, %v), want (0, nil)", disable, n, err)
		}
	}

	ms := MakeMessages(3)
	if len(ms) != 3 {
		t.Fatalf("MakeMessages(3) returned %d messages", len(ms))
	}
	for i := range ms {
		if len(ms[i].Buf) != maxDatagram || cap(ms[i].Buf) != maxDatagram {
			t.Fatalf("slot %d buffer len=%d cap=%d, want %d", i, len(ms[i].Buf), cap(ms[i].Buf), maxDatagram)
		}
		for j := range ms[i].Buf {
			ms[i].Buf[j] = byte(i + 1)
		}
	}
	for i := range ms {
		for j := range ms[i].Buf {
			if ms[i].Buf[j] != byte(i+1) {
				t.Fatalf("slot %d buffer shares storage with a neighbor", i)
			}
		}
	}
}
