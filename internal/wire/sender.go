package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/session"
)

// nowNano supplies the clock-derived default for unpinned seeds. Tests
// override it to make "unseeded" sessions reproducible; everything else
// must route clock-derived seeds through it rather than calling time.Now
// directly.
var nowNano = func() int64 { return time.Now().UnixNano() }

// SenderConfig parameterizes a measurement session.
type SenderConfig struct {
	// ExpID identifies the session; pick something unique per run.
	ExpID uint64
	// P is the per-slot experiment probability.
	P float64
	// N is the number of slots. The session lasts N × Slot.
	N int64
	// Slot width; default badabing.DefaultSlot. Real hosts cannot pace
	// much below a millisecond reliably with timers (§7's point about
	// commodity workstations and small discretizations).
	Slot time.Duration
	// Improved selects the improved (triple-probe) design.
	Improved bool
	// Seed determines the schedule; the collector re-derives it.
	Seed int64
	// PacketsPerProbe: default 3.
	PacketsPerProbe int
	// PacketSize: default 600, minimum HeaderSize.
	PacketSize int
	// DisableBatch forces per-packet probe writes even when the conn
	// offers a batch fast path (sendmmsg). The chaos matrix runs the
	// same session both ways and pins the estimates bit-identical.
	DisableBatch bool
}

// Normalize fills defaults (slot width, packet sizing, clock-derived seed)
// and validates the config in place, so callers that assemble packets or
// schedules themselves see the same values the sender will use.
func (c *SenderConfig) Normalize() error { return c.applyDefaults() }

func (c *SenderConfig) applyDefaults() error {
	if c.Slot == 0 {
		c.Slot = badabing.DefaultSlot
	}
	if c.PacketsPerProbe == 0 {
		c.PacketsPerProbe = 3
	}
	if c.PacketSize == 0 {
		c.PacketSize = 600
	}
	if c.PacketSize < MinPacketSize {
		return fmt.Errorf("wire: packet size %d below header size %d", c.PacketSize, MinPacketSize)
	}
	if c.P <= 0 || c.P > 1 {
		return fmt.Errorf("wire: probability %v out of (0,1]", c.P)
	}
	if c.N <= 0 {
		return fmt.Errorf("wire: slot count %d must be positive", c.N)
	}
	if c.Seed == 0 {
		c.Seed = nowNano()
	}
	return nil
}

// SendStats summarizes a completed send.
type SendStats struct {
	Experiments int
	Probes      int
	Packets     int
	// MaxLag is the worst observed pacing lag behind the schedule; if
	// it approaches the slot width, the host cannot sustain this
	// discretization (§7).
	MaxLag time.Duration
	// WriteFailures counts probe-packet writes the socket rejected.
	// Transient failures (an ICMP-refused burst while a reflector
	// restarts) are tolerated and counted rather than aborting the
	// session; only an unbroken run of them kills the send.
	WriteFailures int
	// DeadSlot is the slot where the terminal run of consecutive write
	// failures began, or -1 if the send did not die that way. The wire
	// transport truncates its observations there so the outage is never
	// reported as measured loss.
	DeadSlot int64
}

// maxConsecutiveWriteFailures is how many probe-packet writes may fail in
// an unbroken run before the sender declares the far end dead. At the
// default 3 packets per probe this is 10 straight probes with a rejected
// send path — well past any transient refused burst, and cheap to reach
// quickly when a connected UDP socket returns ECONNREFUSED for a closed
// far end.
const maxConsecutiveWriteFailures = 30

// Send runs a full measurement session over conn (a connected UDP socket),
// pacing probes onto their slot deadlines. It blocks until the session
// completes or ctx is cancelled.
func Send(ctx context.Context, conn net.Conn, cfg SenderConfig) (SendStats, error) {
	if err := cfg.applyDefaults(); err != nil {
		return SendStats{DeadSlot: -1}, err
	}
	plans, err := badabing.Schedule(badabing.ScheduleConfig{
		P: cfg.P, N: cfg.N, Improved: cfg.Improved, Seed: cfg.Seed,
	})
	if err != nil {
		return SendStats{DeadSlot: -1}, err
	}
	st, err := SendSlots(ctx, conn, cfg, badabing.ProbeSlots(plans), time.Now(), nil)
	st.Experiments = len(plans)
	return st, err
}

// SendSlots paces the probes of an already-flattened schedule (ascending,
// deduplicated slots from badabing.ProbeSlots) onto their deadlines
// relative to start, which also stamps the wire header so the receiver can
// reconstruct the timeline. onProbe, if non-nil, is called after each
// probe's packets have been written — the session engine uses it to track
// emission progress. cfg must already be defaulted and carry a valid Seed;
// Send wraps this with schedule generation for standalone use.
func SendSlots(ctx context.Context, conn net.Conn, cfg SenderConfig, slots []int64, start time.Time, onProbe func(i int, slot int64)) (SendStats, error) {
	st := SendStats{DeadSlot: -1}
	if err := cfg.applyDefaults(); err != nil {
		return st, err
	}
	st.Probes = len(slots)
	var consecFails int
	var failRunSlot int64
	var lastWriteErr error

	// writeOne is the single-packet slow path with the consecutive-
	// write-failure guard: a rejected write is infrastructure failure,
	// not path loss — count it and keep pacing. Only an unbroken run
	// long enough to rule out a transient declares the far end dead.
	writeOne := func(buf []byte, slot int64) error {
		if _, err := conn.Write(buf); err != nil {
			st.WriteFailures++
			if consecFails == 0 {
				failRunSlot = slot
			}
			consecFails++
			lastWriteErr = err
			if consecFails >= maxConsecutiveWriteFailures {
				st.DeadSlot = failRunSlot
				return fmt.Errorf("wire: %d consecutive write failures from slot %d (%v): %w",
					consecFails, failRunSlot, lastWriteErr, session.ErrPathDead)
			}
			return nil
		}
		consecFails = 0
		st.Packets++
		return nil
	}

	// The batch fast path emits a probe's whole packet bunch with one
	// sendmmsg. Any shortfall or error drops that bunch's remainder to
	// writeOne, so failure accounting and the dead-path guard behave
	// exactly as on the single-packet path.
	var bw BatchWriter
	if !cfg.DisableBatch {
		if b, ok := conn.(BatchWriter); ok {
			bw = b
		} else {
			bw = NewBatchWriter(conn)
		}
	}
	var batch []Message
	if bw != nil {
		backing := make([]byte, cfg.PacketsPerProbe*cfg.PacketSize)
		batch = make([]Message, cfg.PacketsPerProbe)
		for i := range batch {
			batch[i].Buf = backing[i*cfg.PacketSize : (i+1)*cfg.PacketSize]
			batch[i].N = cfg.PacketSize
		}
	}

	buf := make([]byte, cfg.PacketSize)
	var seq uint64
	h := Header{
		ExpID:        cfg.ExpID,
		PktsPerProbe: uint8(cfg.PacketsPerProbe),
		Improved:     cfg.Improved,
		P:            cfg.P,
		N:            cfg.N,
		SlotWidth:    cfg.Slot,
		Seed:         cfg.Seed,
		Start:        start.UnixNano(),
	}
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}

	// Pace with a coarse timer, then busy-wait the final stretch: OS
	// timers routinely overshoot by a millisecond or more, which is
	// material at millisecond slot widths.
	const spin = 2 * time.Millisecond
	for i, slot := range slots {
		deadline := start.Add(time.Duration(slot) * cfg.Slot)
		if wait := time.Until(deadline) - spin; wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return st, ctx.Err()
			case <-timer.C:
			}
		}
		for time.Until(deadline) > 0 {
			if err := ctx.Err(); err != nil {
				return st, err
			}
		}
		if lag := time.Since(deadline); lag > st.MaxLag {
			st.MaxLag = lag
		}
		h.Slot = slot
		if bw != nil {
			for i := 0; i < cfg.PacketsPerProbe; i++ {
				h.PktIdx = uint8(i)
				h.SendTime = time.Now().UnixNano()
				h.Seq = seq
				seq++
				if _, err := h.Marshal(batch[i].Buf); err != nil {
					return st, err
				}
			}
			n, err := bw.WriteBatch(batch)
			st.Packets += n
			if n > 0 {
				consecFails = 0
			}
			if n != len(batch) || err != nil {
				if errors.Is(err, ErrBatchUnsupported) {
					bw = nil // stop probing a conn that cannot batch
				}
				for i := n; i < len(batch); i++ {
					if werr := writeOne(batch[i].Buf, slot); werr != nil {
						return st, werr
					}
				}
			}
		} else {
			for i := 0; i < cfg.PacketsPerProbe; i++ {
				h.PktIdx = uint8(i)
				h.SendTime = time.Now().UnixNano()
				h.Seq = seq
				seq++
				if _, err := h.Marshal(buf); err != nil {
					return st, err
				}
				if err := writeOne(buf, slot); err != nil {
					return st, err
				}
			}
		}
		if onProbe != nil {
			onProbe(i, slot)
		}
	}
	return st, nil
}
