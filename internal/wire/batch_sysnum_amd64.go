//go:build linux && amd64

package wire

// Multi-message syscall numbers. The frozen stdlib syscall package
// predates sendmmsg(2), so the numbers live here; both calls have been
// stable kernel ABI since 3.0.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
