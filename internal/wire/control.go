package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"badabing/internal/badabing"
)

// Control channel: the sender can query the collector, over the same UDP
// socket probes travel on, for a session's accumulated outcome counts.
// This closes the feedback loop that adaptive probing (§8) needs on a
// live path: after each round the sender merges the collector's counts
// into its controller and decides whether to stop, continue, or escalate.

// QueryMagic identifies control requests.
const QueryMagic uint32 = 0x42425251 // "BBRQ"

// ReplyMagic identifies control replies.
const ReplyMagic uint32 = 0x42425250 // "BBRP"

// querySize is the fixed request size: magic, version, pad×3, expID.
const querySize = 16

// ControlReply is the collector's answer to a query, JSON-encoded on the
// wire after an 8-byte header (magic + version + padding).
type ControlReply struct {
	ExpID uint64 `json:"exp_id"`
	Found bool   `json:"found"`
	// Counts is the session's outcome tallies after marking with the
	// collector's configured marker parameters.
	Counts badabing.Counts `json:"counts"`
	// PacketsLost and Skipped mirror SessionStats.
	PacketsLost int `json:"packets_lost"`
	Skipped     int `json:"skipped"`
}

const replyHeader = 8

// marshalQuery builds a control request for expID.
func marshalQuery(expID uint64) []byte {
	buf := make([]byte, querySize)
	binary.BigEndian.PutUint32(buf[0:], QueryMagic)
	buf[4] = Version
	binary.BigEndian.PutUint64(buf[8:], expID)
	return buf
}

// parseQuery extracts the expID from a control request, reporting whether
// the packet is one.
func parseQuery(data []byte) (uint64, bool) {
	if len(data) < querySize {
		return 0, false
	}
	if binary.BigEndian.Uint32(data[0:]) != QueryMagic || data[4] != Version {
		return 0, false
	}
	return binary.BigEndian.Uint64(data[8:]), true
}

// encodeReply frames a control reply: 8-byte header (magic + version +
// padding) followed by the JSON body.
func encodeReply(reply ControlReply) ([]byte, error) {
	body, err := json.Marshal(reply)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, replyHeader+len(body))
	binary.BigEndian.PutUint32(buf[0:], ReplyMagic)
	buf[4] = Version
	copy(buf[replyHeader:], body)
	return buf, nil
}

// parseReply decodes a control reply packet. ok reports whether the bytes
// are framed as a reply at all (magic present); a framing match with a
// corrupt body returns ok=true and a non-nil error, mirroring how Query
// distinguishes "not for us" from "broken".
func parseReply(data []byte) (reply ControlReply, ok bool, err error) {
	if len(data) < replyHeader || binary.BigEndian.Uint32(data[0:]) != ReplyMagic {
		return reply, false, nil
	}
	if err := json.Unmarshal(data[replyHeader:], &reply); err != nil {
		return reply, true, fmt.Errorf("wire: control reply: %w", err)
	}
	return reply, true, nil
}

// SetMarker configures the marking parameters used when answering
// control queries (and only those; Report still takes explicit
// parameters). Safe to call while Run is active.
func (c *Collector) SetMarker(m badabing.MarkerConfig) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queryMarker = m
}

// handleQuery builds and sends a reply to addr.
func (c *Collector) handleQuery(expID uint64, addr net.Addr) {
	c.mu.Lock()
	marker := c.queryMarker
	c.mu.Unlock()
	reply := ControlReply{ExpID: expID}
	rep, ss, err := c.reportCounts(expID, marker)
	if err == nil {
		reply.Found = true
		reply.Counts = rep
		reply.PacketsLost = ss.PacketsLost
		reply.Skipped = ss.Skipped
	}
	buf, err := encodeReply(reply)
	if err != nil {
		return
	}
	c.conn.WriteTo(buf, addr)
}

// reportCounts runs the marking/assembly pipeline and returns the raw
// counts instead of a finished report.
func (c *Collector) reportCounts(expID uint64, marker badabing.MarkerConfig) (badabing.Counts, SessionStats, error) {
	acc, ss, err := c.assemble(expID, marker)
	if err != nil {
		return badabing.Counts{}, ss, err
	}
	return acc.Counts(), ss, nil
}

// Query sends a control request for expID over conn (a connected UDP
// socket to the collector, typically through the same path probes take)
// and waits up to timeout for the reply.
func Query(conn net.Conn, expID uint64, timeout time.Duration) (ControlReply, error) {
	var out ControlReply
	if _, err := conn.Write(marshalQuery(expID)); err != nil {
		return out, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return out, err
	}
	defer conn.SetReadDeadline(time.Time{})
	buf := make([]byte, 65536)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return out, fmt.Errorf("wire: control query: %w", err)
		}
		reply, ok, err := parseReply(buf[:n])
		if !ok {
			continue // not a reply (e.g. stray probe reflection)
		}
		if err != nil {
			return out, err
		}
		if reply.ExpID != expID {
			continue // stale reply for an earlier round
		}
		return reply, nil
	}
}

// ErrSessionNotFound is returned by QueryCounts when the collector has no
// record of the session (e.g. every probe was lost).
var ErrSessionNotFound = errors.New("wire: session not found at collector")

// QueryCounts is Query with not-found turned into an error.
func QueryCounts(conn net.Conn, expID uint64, timeout time.Duration) (badabing.Counts, error) {
	reply, err := Query(conn, expID, timeout)
	if err != nil {
		return badabing.Counts{}, err
	}
	if !reply.Found {
		return badabing.Counts{}, ErrSessionNotFound
	}
	return reply.Counts, nil
}
