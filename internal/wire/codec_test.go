package wire

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		ExpID:        12345,
		Slot:         99887,
		PktIdx:       2,
		PktsPerProbe: 3,
		Improved:     true,
		P:            0.3,
		N:            180000,
		SlotWidth:    5 * time.Millisecond,
		Seed:         -42,
		Start:        time.Now().UnixNano(),
		SendTime:     time.Now().UnixNano() + 12345,
		Seq:          777,
	}
	buf := make([]byte, HeaderSize)
	n, err := h.Marshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != HeaderSize {
		t.Fatalf("marshal wrote %d, want %d", n, HeaderSize)
	}
	var got Header
	if err := got.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if got.ExpID != h.ExpID || got.Slot != h.Slot || got.PktIdx != h.PktIdx ||
		got.PktsPerProbe != h.PktsPerProbe || got.Improved != h.Improved ||
		got.N != h.N || got.SlotWidth != h.SlotWidth || got.Seed != h.Seed ||
		got.Start != h.Start || got.SendTime != h.SendTime || got.Seq != h.Seq {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
	if diff := got.P - h.P; diff < -1e-5 || diff > 1e-5 {
		t.Fatalf("P round trip: got %v want %v", got.P, h.P)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(expID uint64, slot int64, pktIdx, per uint8, seed, start, send int64, seq uint64, pRaw uint32) bool {
		p := (float64(pRaw%1000000) + 1) / 1000001 // (0,1)
		h := Header{
			ExpID: expID, Slot: slot, PktIdx: pktIdx, PktsPerProbe: per,
			P: p, N: 1000, SlotWidth: time.Millisecond,
			Seed: seed, Start: start, SendTime: send, Seq: seq,
		}
		buf := make([]byte, HeaderSize)
		if _, err := h.Marshal(buf); err != nil {
			return false
		}
		var got Header
		if err := got.Unmarshal(buf); err != nil {
			return false
		}
		dp := got.P - h.P
		if dp < 0 {
			dp = -dp
		}
		return got.ExpID == h.ExpID && got.Slot == h.Slot && got.PktIdx == h.PktIdx &&
			got.PktsPerProbe == h.PktsPerProbe && got.Seed == h.Seed &&
			got.Start == h.Start && got.SendTime == h.SendTime && got.Seq == h.Seq &&
			dp < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderRejectsGarbage(t *testing.T) {
	var h Header
	if err := h.Unmarshal(make([]byte, 4)); err == nil {
		t.Error("short packet accepted")
	}
	buf := make([]byte, HeaderSize)
	if err := h.Unmarshal(buf); err == nil {
		t.Error("zero magic accepted")
	}
	good := Header{P: 0.5, N: 10, SlotWidth: time.Millisecond}
	if _, err := good.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	buf[4] = 99 // corrupt version
	if err := h.Unmarshal(buf); err == nil {
		t.Error("bad version accepted")
	}
}

func TestHeaderMarshalValidation(t *testing.T) {
	var h Header
	h.P = 0 // invalid
	if _, err := h.Marshal(make([]byte, HeaderSize)); err == nil {
		t.Error("p=0 accepted")
	}
	h.P = 0.5
	if _, err := h.Marshal(make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
}
