package wire

import (
	"net"
	"sync"
	"sync/atomic"
)

// Reflector is the minimal collaborating far end of a round-trip BADABING
// session: it bounces every datagram straight back to its source. A sender
// that runs its own collector on the probing socket then measures the
// round-trip loss of the reflected path — the deployment shape badabingd's
// "wire" scenario uses, where only a dumb echo service is needed at the
// remote host.
type Reflector struct {
	conn net.PacketConn

	packets atomic.Uint64
	dropped atomic.Uint64
	pings   atomic.Uint64

	mu     sync.Mutex
	tap    func(data []byte, from net.Addr)
	closed bool
}

// NewReflector wraps an open packet socket. Call Run (usually on its own
// goroutine) to start echoing.
func NewReflector(conn net.PacketConn) *Reflector {
	return &Reflector{conn: conn}
}

// SetTap installs an observer invoked with each datagram before it is
// echoed (tests use it to record the probe stream). Call before Run.
func (r *Reflector) SetTap(tap func(data []byte, from net.Addr)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tap = tap
}

// Run echoes datagrams until the socket is closed. Liveness pings are
// answered with pongs instead of echoed, and are tallied separately so
// probe accounting stays exact.
func (r *Reflector) Run() {
	r.mu.Lock()
	tap := r.tap
	r.mu.Unlock()
	buf := make([]byte, 65536)
	for {
		n, addr, err := r.conn.ReadFrom(buf)
		if err != nil {
			if transientReadError(err) {
				// An ICMP-unreachable burst from a vanished peer
				// surfaces as read errors; the socket is still good
				// and other peers must keep being served.
				continue
			}
			return
		}
		if kind, nonce, _, ok := parseLiveness(buf[:n]); ok {
			if kind == livenessPing {
				r.pings.Add(1)
				if _, err := r.conn.WriteTo(pongFor(nonce, nowNano()), addr); err != nil {
					r.dropped.Add(1)
				}
			}
			continue
		}
		r.packets.Add(1)
		if tap != nil {
			tap(buf[:n], addr)
		}
		if _, err := r.conn.WriteTo(buf[:n], addr); err != nil {
			r.dropped.Add(1)
		}
	}
}

// Packets returns how many datagrams have been received so far (liveness
// pings excluded; see Pings).
func (r *Reflector) Packets() uint64 { return r.packets.Load() }

// Pings returns how many liveness pings have been answered.
func (r *Reflector) Pings() uint64 { return r.pings.Load() }

// Dropped returns how many echo (or pong) writes failed. A non-zero count
// with a live socket means the reflector's send path is impaired — the
// far-side write-failure signal badabingd surfaces in /metrics.
func (r *Reflector) Dropped() uint64 { return r.dropped.Load() }

// Addr returns the socket's local address.
func (r *Reflector) Addr() net.Addr { return r.conn.LocalAddr() }

// Close shuts the socket, terminating Run.
func (r *Reflector) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	return r.conn.Close()
}
