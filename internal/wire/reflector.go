package wire

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
)

// Reflector is the minimal collaborating far end of a round-trip BADABING
// session: it bounces every datagram straight back to its source. A sender
// that runs its own collector on the probing socket then measures the
// round-trip loss of the reflected path — the deployment shape badabingd's
// "wire" scenario uses, where only a dumb echo service is needed at the
// remote host.
//
// The echo loop is the fleet-scale bottleneck (Ekelin et al.: reflecting-
// server throughput bounds how many paths a measurement system can carry),
// so it is built for throughput: datagrams move in recvmmsg/sendmmsg
// batches where the platform allows (single-packet fallback elsewhere),
// the loop allocates nothing on the steady path, and the work is sharded
// across Config.Shards goroutines, each with its own batch state and
// counters. Counter accessors aggregate across shards.
type Reflector struct {
	conn net.PacketConn
	cfg  ReflectorConfig

	shards   []*reflShard
	readErrs errorNote

	mu     sync.Mutex
	tap    func(data []byte, from net.Addr)
	closed bool
	ran    bool
}

// ReflectorConfig tunes the echo loop.
type ReflectorConfig struct {
	// Shards is how many echo goroutines serve the socket. Each shard
	// reads, classifies and echoes its own batches; the kernel delivers
	// any given datagram to exactly one reader. Default 1 (the classic
	// single-loop reflector); a daemon-hosted reflector wants ~NumCPU.
	Shards int
	// Batch is the number of datagrams moved per syscall on the batch
	// path. Default DefaultBatch, capped at MaxBatch.
	Batch int
	// DisableBatch forces the portable single-packet read/write path
	// even where multi-message syscalls exist (benchmarks use it as the
	// baseline; the chaos matrix proves estimates match either way).
	DisableBatch bool
}

func (c *ReflectorConfig) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Batch <= 0 {
		c.Batch = DefaultBatch
	}
	if c.Batch > MaxBatch {
		c.Batch = MaxBatch
	}
}

// DefaultReflectorShards is the shard count a daemon-hosted reflector
// uses: one per CPU, capped — reflector shards pipeline reads against
// echo writes, and past a handful the socket lock, not the CPU, is the
// limit.
func DefaultReflectorShards() int {
	n := runtime.NumCPU()
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// reflShard is one echo goroutine's private state: its own batch view of
// the shared socket, reusable message buffers, and counters (padded
// apart by allocation; contention-free).
type reflShard struct {
	bc   BatchConn
	in   []Message
	out  []Message
	pong [][]byte // per-slot scratch for pong frames

	packets atomic.Uint64
	dropped atomic.Uint64
	pings   atomic.Uint64
}

// NewReflector wraps an open packet socket with the default single-shard
// configuration. Call Run (usually on its own goroutine) to start
// echoing.
func NewReflector(conn net.PacketConn) *Reflector {
	return NewReflectorConfig(conn, ReflectorConfig{})
}

// NewReflectorConfig wraps an open packet socket with explicit sharding
// and batching. Call Run to start echoing.
func NewReflectorConfig(conn net.PacketConn, cfg ReflectorConfig) *Reflector {
	cfg.applyDefaults()
	r := &Reflector{conn: conn, cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		s := &reflShard{
			bc:  NewBatchConn(conn, cfg.DisableBatch),
			in:  MakeMessages(cfg.Batch),
			out: make([]Message, 0, cfg.Batch),
		}
		s.pong = make([][]byte, cfg.Batch)
		for j := range s.pong {
			s.pong[j] = make([]byte, livenessSize)
		}
		r.shards = append(r.shards, s)
	}
	return r
}

// SetTap installs an observer invoked with each datagram before it is
// echoed (tests use it to record the probe stream). Call before Run.
// With multiple shards the tap is invoked concurrently; the data slice
// is only valid for the duration of the call.
func (r *Reflector) SetTap(tap func(data []byte, from net.Addr)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tap = tap
}

// OnReadError installs a hook surfaced once per persistent read-error
// class (see errorNote): transient errors keep the loop alive, but a
// *persistent* EMSGSIZE-class condition must reach an operator instead
// of spinning silently. Call before Run.
func (r *Reflector) OnReadError(hook func(error)) {
	r.readErrs.setHook(hook)
}

// ReadErrors returns how many transient read errors the loops have
// survived and the current error class ("" after a clean start). The
// count is monotone across shards and profile changes.
func (r *Reflector) ReadErrors() (uint64, string) {
	return r.readErrs.snapshot()
}

// Run echoes datagrams until the socket is closed, fanning the work
// across the configured shards and blocking until every shard has
// drained. Liveness pings are answered with pongs instead of echoed, and
// are tallied separately so probe accounting stays exact.
func (r *Reflector) Run() {
	r.mu.Lock()
	tap := r.tap
	r.ran = true
	r.mu.Unlock()
	var wg sync.WaitGroup
	for _, s := range r.shards[1:] {
		wg.Add(1)
		go func(s *reflShard) {
			defer wg.Done()
			r.runShard(s, tap)
		}(s)
	}
	r.runShard(r.shards[0], tap)
	wg.Wait()
}

// runShard is one shard's echo loop: read a batch, classify each
// datagram (liveness ping → pooled pong, anything else → echo), then
// write the batch back. The steady path allocates nothing.
func (r *Reflector) runShard(s *reflShard, tap func(data []byte, from net.Addr)) {
	for {
		n, err := s.bc.ReadBatch(s.in)
		if err != nil {
			if transientReadError(err) {
				// An ICMP-unreachable burst from a vanished peer
				// surfaces as read errors; the socket is still good
				// and other peers must keep being served. Surfaced
				// (once per class) rather than silently swallowed.
				r.readErrs.note(err)
				continue
			}
			return
		}
		r.serveBatch(s, tap, n)
	}
}

// serveBatch classifies one received batch — liveness ping → pooled
// pong, anything else → echo — and writes the answers back. It is the
// per-batch unit of work the zero-alloc regression test pins.
func (r *Reflector) serveBatch(s *reflShard, tap func(data []byte, from net.Addr), n int) {
	out := s.out[:0]
	for i := 0; i < n; i++ {
		m := &s.in[i]
		data := m.Payload()
		if kind, nonce, _, ok := parseLiveness(data); ok {
			if kind == livenessPing {
				s.pings.Add(1)
				nb := putLiveness(s.pong[i], livenessPong, nonce, nowNano())
				out = append(out, Message{Buf: s.pong[i], N: nb, Addr: m.Addr})
			}
			continue
		}
		s.packets.Add(1)
		if tap != nil {
			tap(data, m.Addr)
		}
		out = append(out, Message{Buf: m.Buf, N: m.N, Addr: m.Addr})
	}
	r.echo(s, out)
}

// echo writes the shard's outgoing batch, falling back to per-packet
// writes on a batch error so drop accounting stays exact.
func (r *Reflector) echo(s *reflShard, out []Message) {
	sent := 0
	for sent < len(out) {
		n, err := s.bc.WriteBatch(out[sent:])
		sent += n
		if err == nil && n > 0 {
			continue
		}
		// The message the batch stopped on gets an individual retry; a
		// second failure is a genuine drop (far-side write impairment,
		// surfaced via Dropped like always).
		for _, m := range out[sent:] {
			if _, werr := r.conn.WriteTo(m.Payload(), m.Addr); werr != nil {
				s.dropped.Add(1)
			}
		}
		return
	}
}

// Packets returns how many datagrams have been received so far across
// all shards (liveness pings excluded; see Pings).
func (r *Reflector) Packets() uint64 {
	var t uint64
	for _, s := range r.shards {
		t += s.packets.Load()
	}
	return t
}

// Pings returns how many liveness pings have been answered.
func (r *Reflector) Pings() uint64 {
	var t uint64
	for _, s := range r.shards {
		t += s.pings.Load()
	}
	return t
}

// Dropped returns how many echo (or pong) writes failed. A non-zero count
// with a live socket means the reflector's send path is impaired — the
// far-side write-failure signal badabingd surfaces in /metrics.
func (r *Reflector) Dropped() uint64 {
	var t uint64
	for _, s := range r.shards {
		t += s.dropped.Load()
	}
	return t
}

// ShardCounters is one shard's tally, for per-shard metrics rows.
type ShardCounters struct {
	Packets, Pings, Dropped uint64
}

// ShardCounts returns each shard's counters (index = shard id). The
// aggregate accessors above are the sums of these rows.
func (r *Reflector) ShardCounts() []ShardCounters {
	out := make([]ShardCounters, len(r.shards))
	for i, s := range r.shards {
		out[i] = ShardCounters{
			Packets: s.packets.Load(),
			Pings:   s.pings.Load(),
			Dropped: s.dropped.Load(),
		}
	}
	return out
}

// Shards returns the configured shard count.
func (r *Reflector) Shards() int { return len(r.shards) }

// Addr returns the socket's local address.
func (r *Reflector) Addr() net.Addr { return r.conn.LocalAddr() }

// Close shuts the socket, terminating every shard of Run.
func (r *Reflector) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	return r.conn.Close()
}
