// Package wire implements BADABING over real UDP sockets: a binary probe
// packet format, a sender that paces the slot-based probe process onto the
// wire, and a collector (the paper's "collaborating target host") that
// reassembles probe observations, removes the clock offset, and produces
// loss-characteristic reports.
//
// The probe schedule is derived deterministically from parameters carried
// in every packet header (seed, p, N, improved, slot width), so the
// collector can reconstruct the full experiment plan and account for
// probes that were lost in their entirety — without any side channel.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Magic identifies BADABING probe packets.
const Magic uint32 = 0x42444247 // "BDBG"

// Version of the wire format.
const Version = 1

// HeaderSize is the fixed encoded size of a Header in bytes.
//
// Layout (big-endian):
//
//	 0  magic        uint32
//	 4  version      uint8
//	 5  flags        uint8  (bit 0: improved design)
//	 6  expID        uint64
//	14  slot         int64
//	22  pktIdx       uint8
//	23  pktsPerProbe uint8
//	24  p            uint32 (fixed point, /2^20)
//	28  n            int64
//	36  slotWidth    int64  (ns)
//	44  seed         int64
//	52  start        int64  (Unix ns of slot 0)
//	60  sendTime     int64  (Unix ns)
//	68  seq          uint64
const HeaderSize = 76

// MinPacketSize is the smallest legal probe packet.
const MinPacketSize = HeaderSize

// pScale converts the probe probability to a fixed-point wire field.
const pScale = 1 << 20

// Header is the on-the-wire probe packet header.
type Header struct {
	// ExpID identifies the measurement session.
	ExpID uint64
	// Slot is the slot index this probe belongs to.
	Slot int64
	// PktIdx is this packet's index within its probe (0-based).
	PktIdx uint8
	// PktsPerProbe is the probe bunch length.
	PktsPerProbe uint8
	// Improved indicates the improved (extended-experiment) design.
	Improved bool
	// P is the per-slot experiment probability.
	P float64
	// N is the total number of slots in the session.
	N int64
	// SlotWidth is the discretization interval.
	SlotWidth time.Duration
	// Seed is the schedule seed; with P, N and Improved it fully
	// determines the experiment plan.
	Seed int64
	// Start is the sender's wall-clock time of slot 0 (Unix nanos).
	Start int64
	// SendTime is this packet's wall-clock send time (Unix nanos).
	SendTime int64
	// Seq is a global packet sequence number within the session.
	Seq uint64
}

// Marshal encodes h into buf, which must hold at least HeaderSize bytes,
// and returns the number of bytes written.
func (h *Header) Marshal(buf []byte) (int, error) {
	if len(buf) < HeaderSize {
		return 0, fmt.Errorf("wire: buffer %d bytes, need %d", len(buf), HeaderSize)
	}
	if h.P <= 0 || h.P > 1 {
		return 0, fmt.Errorf("wire: probability %v out of (0,1]", h.P)
	}
	binary.BigEndian.PutUint32(buf[0:], Magic)
	buf[4] = Version
	var flags byte
	if h.Improved {
		flags |= 1
	}
	buf[5] = flags
	binary.BigEndian.PutUint64(buf[6:], h.ExpID)
	binary.BigEndian.PutUint64(buf[14:], uint64(h.Slot))
	buf[22] = h.PktIdx
	buf[23] = h.PktsPerProbe
	binary.BigEndian.PutUint32(buf[24:], uint32(h.P*pScale+0.5))
	binary.BigEndian.PutUint64(buf[28:], uint64(h.N))
	binary.BigEndian.PutUint64(buf[36:], uint64(h.SlotWidth))
	binary.BigEndian.PutUint64(buf[44:], uint64(h.Seed))
	binary.BigEndian.PutUint64(buf[52:], uint64(h.Start))
	binary.BigEndian.PutUint64(buf[60:], uint64(h.SendTime))
	binary.BigEndian.PutUint64(buf[68:], h.Seq)
	return HeaderSize, nil
}

// Unmarshal decodes a header from buf.
func (h *Header) Unmarshal(buf []byte) error {
	if len(buf) < HeaderSize {
		return fmt.Errorf("wire: short packet: %d bytes", len(buf))
	}
	if binary.BigEndian.Uint32(buf[0:]) != Magic {
		return errors.New("wire: bad magic")
	}
	if buf[4] != Version {
		return fmt.Errorf("wire: unsupported version %d", buf[4])
	}
	h.Improved = buf[5]&1 != 0
	h.ExpID = binary.BigEndian.Uint64(buf[6:])
	h.Slot = int64(binary.BigEndian.Uint64(buf[14:]))
	h.PktIdx = buf[22]
	h.PktsPerProbe = buf[23]
	h.P = float64(binary.BigEndian.Uint32(buf[24:])) / pScale
	h.N = int64(binary.BigEndian.Uint64(buf[28:]))
	h.SlotWidth = time.Duration(binary.BigEndian.Uint64(buf[36:]))
	h.Seed = int64(binary.BigEndian.Uint64(buf[44:]))
	h.Start = int64(binary.BigEndian.Uint64(buf[52:]))
	h.SendTime = int64(binary.BigEndian.Uint64(buf[60:]))
	h.Seq = binary.BigEndian.Uint64(buf[68:])
	return nil
}
