package wire

import (
	"errors"
	"sync"
	"syscall"
)

// errorNote deduplicates transient-read-error surfacing for the
// reflector and collector loops. Those loops must keep serving through
// transient errors (ICMP-unreachable bursts from vanished peers), but
// silently swallowing them hid real misconfiguration: a persistent
// EMSGSIZE-class error (oversized datagrams bouncing off the socket,
// e.g. after an MTU or profile change) would previously spin unseen
// forever. The note surfaces each *new* error class exactly once — the
// hook fires when the class changes, not per packet — and keeps a
// monotone running count for metrics.
type errorNote struct {
	mu        sync.Mutex
	hook      func(error)
	lastClass string
	count     uint64
}

// setHook installs the surfacing callback (e.g. a daemon's logger).
// Install before the read loop starts.
func (n *errorNote) setHook(hook func(error)) {
	n.mu.Lock()
	n.hook = hook
	n.mu.Unlock()
}

// note records a transient read error, invoking the hook if its class
// differs from the previous error's (so a persistent condition surfaces
// once, and surfaces again if it changes — e.g. unreachable → message
// too long after a profile swap).
func (n *errorNote) note(err error) {
	class := errClass(err)
	n.mu.Lock()
	n.count++
	fire := class != n.lastClass
	n.lastClass = class
	hook := n.hook
	n.mu.Unlock()
	if fire && hook != nil {
		hook(err)
	}
}

// snapshot returns the running count and the current error class.
func (n *errorNote) snapshot() (uint64, string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.count, n.lastClass
}

// errClass collapses an error to a stable class key: the errno name when
// one is buried in the chain (EMSGSIZE, ECONNREFUSED, …), else the
// error text.
func errClass(err error) string {
	var errno syscall.Errno
	if errors.As(err, &errno) {
		return errno.Error()
	}
	return err.Error()
}
