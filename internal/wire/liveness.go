package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// Liveness handshake: before a measurement session starts (and whenever a
// watchdog suspects the far end died mid-run), the sender exchanges a tiny
// ping/pong with the far end over the probing socket. BADABING treats loss
// as the signal, so infrastructure failure — a dead reflector, a crashed
// collector, an unplugged path — must be detected out-of-band: without the
// handshake, an unreachable far end is indistinguishable from a
// perfectly-measured F≈1 loss episode.
//
// Both the Reflector and the Collector answer pings with pongs. A dumb
// echo service that merely bounces the ping back verbatim also proves
// liveness: the sender accepts either a pong or its own ping echoed with a
// matching nonce.

// LivenessMagic identifies liveness frames (pings and pongs).
const LivenessMagic uint32 = 0x42424C56 // "BBLV"

// Liveness frame kinds.
const (
	livenessPing = 1
	livenessPong = 2
)

// livenessSize is the fixed frame size: magic, version, kind, pad×2,
// nonce, send time.
const livenessSize = 24

// putLiveness encodes a liveness frame into buf (≥ livenessSize bytes)
// without allocating, returning the frame length. The reflector's pong
// path runs it against pooled per-shard scratch buffers, keeping the
// echo loop allocation-free.
func putLiveness(buf []byte, kind uint8, nonce uint64, sendTime int64) int {
	_ = buf[livenessSize-1]
	binary.BigEndian.PutUint32(buf[0:], LivenessMagic)
	buf[4] = Version
	buf[5] = kind
	buf[6], buf[7] = 0, 0
	binary.BigEndian.PutUint64(buf[8:], nonce)
	binary.BigEndian.PutUint64(buf[16:], uint64(sendTime))
	return livenessSize
}

// marshalLiveness builds a liveness frame on a fresh buffer (control
// paths only; the hot path uses putLiveness).
func marshalLiveness(kind uint8, nonce uint64, sendTime int64) []byte {
	buf := make([]byte, livenessSize)
	putLiveness(buf, kind, nonce, sendTime)
	return buf
}

// parseLiveness decodes a liveness frame, reporting whether the bytes are
// one. Unknown kinds and foreign versions are not liveness frames.
func parseLiveness(data []byte) (kind uint8, nonce uint64, sendTime int64, ok bool) {
	if len(data) < livenessSize {
		return 0, 0, 0, false
	}
	if binary.BigEndian.Uint32(data[0:]) != LivenessMagic || data[4] != Version {
		return 0, 0, 0, false
	}
	kind = data[5]
	if kind != livenessPing && kind != livenessPong {
		return 0, 0, 0, false
	}
	nonce = binary.BigEndian.Uint64(data[8:])
	sendTime = int64(binary.BigEndian.Uint64(data[16:]))
	return kind, nonce, sendTime, true
}

// pongFor builds the answer to a ping: same nonce, the responder's own
// send time.
func pongFor(nonce uint64, now int64) []byte {
	return marshalLiveness(livenessPong, nonce, now)
}

// ErrNotAlive is returned by Handshake when every attempt to elicit a pong
// from the far end failed: the path endpoint is refused, dead or
// blackholed, and a measurement session must not start (it would report
// the outage as perfectly-measured loss).
var ErrNotAlive = errors.New("wire: far end not alive")

// LivenessConfig tunes the handshake's retry schedule.
type LivenessConfig struct {
	// Attempts is how many pings to try before giving up. Default 4.
	Attempts int
	// Timeout is the per-attempt wait for a pong. Default 250ms.
	Timeout time.Duration
	// Backoff is the initial delay between attempts; it doubles per
	// attempt. Default 100ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Default 2s.
	MaxBackoff time.Duration
	// Jitter is the random fraction of each backoff added or removed
	// (0.5 = ±50%). Default 0.5.
	Jitter float64
	// Seed fixes the jitter RNG and the ping nonces; 0 derives one from
	// the clock. Pin it in tests.
	Seed int64
}

func (c *LivenessConfig) applyDefaults() {
	if c.Attempts == 0 {
		c.Attempts = 4
	}
	if c.Timeout == 0 {
		c.Timeout = 250 * time.Millisecond
	}
	if c.Backoff == 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.5
	}
	if c.Seed == 0 {
		c.Seed = nowNano()
	}
}

// WithDefaults returns the config with zero fields filled in (the same
// defaulting Handshake applies).
func (c LivenessConfig) WithDefaults() LivenessConfig {
	c.applyDefaults()
	return c
}

// BackoffSchedule materializes the capped-exponential-with-jitter delays a
// config would sleep between attempts (attempt i's delay at index i).
// Exported so retry policies elsewhere (the fleet's session re-queue) use
// the exact same curve the handshake does.
func (c LivenessConfig) BackoffSchedule() []time.Duration {
	c.applyDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	out := make([]time.Duration, 0, c.Attempts)
	for i := 0; i < c.Attempts; i++ {
		out = append(out, JitteredBackoff(rng, c.Backoff, c.MaxBackoff, c.Jitter, i))
	}
	return out
}

// JitteredBackoff computes attempt's capped exponential backoff delay:
// base·2^attempt clamped to cap, then ±jitter fraction drawn from rng.
func JitteredBackoff(rng *rand.Rand, base, cap time.Duration, jitter float64, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	if jitter > 0 {
		f := 1 + jitter*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// transientReadError reports whether a PacketConn read error is
// recoverable: anything but "socket closed" (and the permanent non-timeout
// net errors) is worth retrying, since UDP sockets surface far-end ICMP
// unreachable bursts as read errors while remaining perfectly usable.
func transientReadError(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return false
	}
	var op *net.OpError
	if errors.As(err, &op) {
		return true // refused/unreachable/timeout: socket still good
	}
	return false
}

// Ping writes a single liveness ping with the given nonce to conn. The
// pong comes back on the socket's read side — a Collector running there
// records it (LastPong); Handshake reads it directly. Mid-run watchdogs
// use this to re-check a suspect path without stealing the collector's
// reads.
func Ping(conn net.Conn, nonce uint64) error {
	_, err := conn.Write(marshalLiveness(livenessPing, nonce, nowNano()))
	return err
}

// Handshake proves the far end of conn (a connected UDP socket) is alive:
// it sends a ping and waits for a pong (or the ping echoed back by a dumb
// echo service) with a matching nonce, retrying with capped exponential
// backoff and jitter. It returns the round-trip time of the successful
// exchange, or ErrNotAlive (wrapping the last transport error, if any)
// once the attempt budget is spent.
//
// Handshake owns conn's read side while it runs: call it before starting
// a Collector loop on the same socket. For mid-run re-checks, route pongs
// through the collector (Collector.LastPong) instead.
func Handshake(ctx context.Context, conn net.Conn, cfg LivenessConfig) (time.Duration, error) {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var lastErr error
	defer conn.SetReadDeadline(time.Time{})
	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		if attempt > 0 {
			wait := JitteredBackoff(rng, cfg.Backoff, cfg.MaxBackoff, cfg.Jitter, attempt-1)
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				return 0, ctx.Err()
			case <-timer.C:
			}
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		nonce := rng.Uint64()
		sent := time.Now()
		if _, err := conn.Write(marshalLiveness(livenessPing, nonce, sent.UnixNano())); err != nil {
			lastErr = err
			continue
		}
		rtt, err := awaitPong(conn, nonce, sent, cfg.Timeout)
		if err == nil {
			return rtt, nil
		}
		lastErr = err
	}
	if lastErr != nil {
		return 0, fmt.Errorf("%w after %d attempts: %v", ErrNotAlive, cfg.Attempts, lastErr)
	}
	return 0, fmt.Errorf("%w after %d attempts", ErrNotAlive, cfg.Attempts)
}

// awaitPong reads conn until a liveness frame with the wanted nonce
// arrives or the deadline passes. Non-liveness traffic (stray probe
// reflections, control replies) is skipped.
func awaitPong(conn net.Conn, nonce uint64, sent time.Time, timeout time.Duration) (time.Duration, error) {
	if err := conn.SetReadDeadline(sent.Add(timeout)); err != nil {
		return 0, err
	}
	buf := make([]byte, 65536)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return 0, err
		}
		kind, got, _, ok := parseLiveness(buf[:n])
		if !ok || got != nonce {
			continue // not ours
		}
		// A pong proves a liveness-aware far end; a ping with our nonce
		// is our own frame bounced by a dumb echo service — either way
		// the path endpoint is demonstrably alive.
		_ = kind
		return time.Since(sent), nil
	}
}
