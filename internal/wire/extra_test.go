package wire

import (
	"context"
	"net"
	"testing"
	"time"

	"badabing/internal/badabing"
)

func TestCollectorClampsDuplicates(t *testing.T) {
	col := NewCollector(nopConn{})
	h := Header{
		ExpID: 1, Slot: 5, PktIdx: 0, PktsPerProbe: 1,
		P: 0.5, N: 10, SlotWidth: badabing.DefaultSlot, Seed: 3,
		Start: 0, SendTime: 100,
	}
	now := time.Now()
	// The same packet delivered three times (duplication in the
	// network) must not produce negative loss.
	col.record(&h, now)
	col.record(&h, now)
	col.record(&h, now)
	rep, ss, err := col.Report(1, badabing.MarkerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.PacketsLost < 0 {
		t.Fatalf("negative loss: %d", ss.PacketsLost)
	}
	_ = rep
}

// nopConn satisfies net.PacketConn for collectors fed directly via record.
type nopConn struct{}

func (nopConn) ReadFrom([]byte) (int, net.Addr, error) { return 0, nil, net.ErrClosed }
func (nopConn) WriteTo([]byte, net.Addr) (int, error)  { return 0, net.ErrClosed }
func (nopConn) Close() error                           { return nil }
func (nopConn) LocalAddr() net.Addr                    { return &net.UDPAddr{} }
func (nopConn) SetDeadline(time.Time) error            { return nil }
func (nopConn) SetReadDeadline(time.Time) error        { return nil }
func (nopConn) SetWriteDeadline(time.Time) error       { return nil }

func TestCollectorFullyLostProbesCongested(t *testing.T) {
	// Feed only one probe of a two-slot session directly; the missing
	// probe must be reconstructed from the schedule and counted as
	// fully lost → congested.
	col := NewCollector(nopConn{})
	// Find a seed whose schedule has at least 2 experiments for N=100.
	params := Header{
		ExpID: 9, PktsPerProbe: 2, P: 0.5, N: 100,
		SlotWidth: badabing.DefaultSlot, Seed: 17, Start: 0,
	}
	plans := badabing.MustSchedule(badabing.ScheduleConfig{P: 0.5, N: 100, Seed: 17})
	if len(plans) < 2 {
		t.Fatal("test schedule too small")
	}
	// Deliver both packets of the first experiment's probes only.
	now := time.Now()
	for j := 0; j < 2; j++ {
		for k := 0; k < 2; k++ {
			h := params
			h.Slot = plans[0].Slot + int64(j)
			h.PktIdx = uint8(k)
			h.SendTime = now.UnixNano()
			col.record(&h, now)
		}
	}
	rep, ss, err := col.Report(9, badabing.MarkerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.ProbesPlanned <= ss.ProbesSeen {
		t.Fatalf("planned %d probes, saw %d — reconstruction failed",
			ss.ProbesPlanned, ss.ProbesSeen)
	}
	// All unseen probes are fully lost → frequency close to 1 over
	// the remaining experiments.
	if rep.Frequency == 0 {
		t.Fatal("fully lost probes not marked congested")
	}
}

func TestCollectorIgnoresZingPackets(t *testing.T) {
	col, addr := startCollector(t)
	conn := dial(t, addr)
	zh := ZingHeader{ExpID: 5, Seq: 1, SendTime: time.Now().UnixNano()}
	buf := make([]byte, 256)
	if _, err := zh.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	conn.Write(buf)
	time.Sleep(100 * time.Millisecond)
	if got := col.Sessions(); len(got) != 0 {
		t.Fatalf("BADABING collector accepted ZING packets: %v", got)
	}
}

func TestZingHeaderIgnoredByBadabingAndViceVersa(t *testing.T) {
	var bh Header
	zbuf := make([]byte, 256)
	zh := ZingHeader{ExpID: 1, Seq: 2, SendTime: 3}
	zh.Marshal(zbuf)
	if err := bh.Unmarshal(zbuf); err == nil {
		t.Error("BADABING header decoded a ZING packet")
	}
	bbuf := make([]byte, 600)
	good := Header{P: 0.5, N: 10, SlotWidth: time.Millisecond}
	good.Marshal(bbuf)
	var zh2 ZingHeader
	if err := zh2.Unmarshal(bbuf); err == nil {
		t.Error("ZING header decoded a BADABING packet")
	}
}

func TestSendDedupsOverlappingExperiments(t *testing.T) {
	// With p close to 1 nearly every slot starts an experiment, so the
	// probes-per-experiment ratio must approach 1, not 2.
	_, addr := startCollector(t)
	conn := dial(t, addr)
	st, err := Send(context.Background(), conn, SenderConfig{
		ExpID: 3, P: 0.99, N: 100, Slot: time.Millisecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Probes > st.Experiments+5 {
		t.Fatalf("%d probes for %d experiments — overlapping slots not shared",
			st.Probes, st.Experiments)
	}
}

func TestCollectorCloseIdempotent(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(conn)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close errored: %v", err)
	}
}

func TestCollectorDelayStats(t *testing.T) {
	col, addr := startCollector(t)
	conn := dial(t, addr)
	if _, err := Send(context.Background(), conn, SenderConfig{
		ExpID: 11, P: 0.5, N: 200, Seed: 19,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	ds, err := col.Delays(11)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N == 0 {
		t.Fatal("no delay samples")
	}
	// Loopback delays: all tiny, quantiles ordered.
	if ds.P50 > ds.P95 || ds.P95 > ds.P99 {
		t.Fatalf("quantiles not ordered: %+v", ds)
	}
	if ds.P99 > time.Second {
		t.Fatalf("implausible loopback delay %v", ds.P99)
	}
	if _, err := col.Delays(999); err != ErrUnknownSession {
		t.Fatalf("unknown session: err = %v", err)
	}
}

func TestCollectorExpire(t *testing.T) {
	col := NewCollector(nopConn{})
	h := Header{ExpID: 1, PktsPerProbe: 1, P: 0.5, N: 10,
		SlotWidth: badabing.DefaultSlot, Seed: 1}
	col.record(&h, time.Now().Add(-time.Hour))
	h2 := h
	h2.ExpID = 2
	col.record(&h2, time.Now())
	if removed := col.Expire(10 * time.Minute); removed != 1 {
		t.Fatalf("expired %d sessions, want 1", removed)
	}
	if got := col.Sessions(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("sessions after expiry: %v", got)
	}
}
