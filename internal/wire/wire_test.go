package wire

import (
	"context"
	"net"
	"testing"
	"time"

	"badabing/internal/badabing"
)

// startCollector opens a loopback collector and returns it with its
// address.
func startCollector(t *testing.T) (*Collector, string) {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(conn)
	go c.Run()
	t.Cleanup(func() { c.Close() })
	return c, conn.LocalAddr().String()
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestSendCollectCleanPath(t *testing.T) {
	col, addr := startCollector(t)
	conn := dial(t, addr)

	cfg := SenderConfig{
		ExpID: 42,
		P:     0.5,
		N:     200, // 1 s at 5 ms slots
		Seed:  7,
	}
	st, err := Send(context.Background(), conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Experiments == 0 || st.Packets == 0 {
		t.Fatalf("nothing sent: %+v", st)
	}
	time.Sleep(200 * time.Millisecond) // let the last packets land

	ids := col.Sessions()
	if len(ids) != 1 || ids[0] != 42 {
		t.Fatalf("sessions = %v, want [42]", ids)
	}
	rep, ss, err := col.Report(42, badabing.RecommendedMarker(cfg.P, badabing.DefaultSlot))
	if err != nil {
		t.Fatal(err)
	}
	if ss.ProbesPlanned != st.Probes {
		t.Errorf("collector planned %d probes, sender sent %d", ss.ProbesPlanned, st.Probes)
	}
	if ss.PacketsLost != 0 {
		t.Errorf("loopback lost %d packets", ss.PacketsLost)
	}
	if rep.Frequency != 0 {
		t.Errorf("loopback frequency %v, want 0", rep.Frequency)
	}
	if rep.M+ss.Skipped != st.Experiments {
		t.Errorf("assembled %d + skipped %d experiments, sender ran %d",
			rep.M, ss.Skipped, st.Experiments)
	}
}

func TestCollectorUnknownSession(t *testing.T) {
	col, _ := startCollector(t)
	if _, _, err := col.Report(999, badabing.MarkerConfig{}); err != ErrUnknownSession {
		t.Fatalf("err = %v, want ErrUnknownSession", err)
	}
}

func TestCollectorIgnoresGarbage(t *testing.T) {
	col, addr := startCollector(t)
	conn := dial(t, addr)
	if _, err := conn.Write([]byte("not a probe packet")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if got := col.Sessions(); len(got) != 0 {
		t.Fatalf("garbage created sessions: %v", got)
	}
}

func TestSendRespectsContext(t *testing.T) {
	_, addr := startCollector(t)
	conn := dial(t, addr)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Send(ctx, conn, SenderConfig{ExpID: 1, P: 0.5, N: 100_000, Seed: 3})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSenderConfigValidation(t *testing.T) {
	_, addr := startCollector(t)
	conn := dial(t, addr)
	cases := []SenderConfig{
		{P: 0, N: 100},                   // bad p
		{P: 1.5, N: 100},                 // bad p
		{P: 0.5, N: 0},                   // bad n
		{P: 0.5, N: 100, PacketSize: 20}, // below header size
	}
	for i, cfg := range cases {
		if _, err := Send(context.Background(), conn, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSenderPacing(t *testing.T) {
	_, addr := startCollector(t)
	conn := dial(t, addr)
	start := time.Now()
	st, err := Send(context.Background(), conn, SenderConfig{
		ExpID: 5, P: 0.2, N: 100, Slot: 10 * time.Millisecond, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// The session spans ~1 s of slots; the sender must pace, not blast.
	if elapsed < 500*time.Millisecond {
		t.Errorf("session finished in %v — sender is not pacing to slot deadlines", elapsed)
	}
	if st.MaxLag > 5*time.Millisecond {
		t.Logf("warning: pacing lag %v (slow machine?)", st.MaxLag)
	}
}

func TestSessionStatsAccounting(t *testing.T) {
	col, addr := startCollector(t)
	conn := dial(t, addr)
	st, err := Send(context.Background(), conn, SenderConfig{
		ExpID: 9, P: 0.4, N: 400, Improved: true, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	rep, ss, err := col.Report(9, badabing.MarkerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Packets != uint64(st.Packets) {
		t.Errorf("collector saw %d packets, sender sent %d", ss.Packets, st.Packets)
	}
	if ss.ProbesSeen != st.Probes {
		t.Errorf("collector saw %d probes, sender sent %d", ss.ProbesSeen, st.Probes)
	}
	// Some experiments may be discarded when the host paces a probe
	// late; the accounting must balance exactly.
	if rep.M+ss.Skipped != st.Experiments {
		t.Errorf("report M=%d + skipped %d ≠ sent %d", rep.M, ss.Skipped, st.Experiments)
	}
}
