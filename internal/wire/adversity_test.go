package wire

import (
	"context"
	"net"
	"testing"
	"time"

	"badabing/internal/badabing"
)

// Control-channel adversity: the query/reply exchange rides the same UDP
// socket as probe traffic, so it must survive duplicated, reordered and
// truncated datagrams without wedging the sender or the collector.

// adversarialResponder answers every incoming datagram with a fixed
// sequence of canned payloads, regardless of content.
func adversarialResponder(t *testing.T, payloads [][]byte) string {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	go func() {
		buf := make([]byte, 65536)
		for {
			_, addr, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			for _, p := range payloads {
				pc.WriteTo(p, addr)
			}
		}
	}()
	return pc.LocalAddr().String()
}

func mustEncodeReply(t *testing.T, r ControlReply) []byte {
	t.Helper()
	buf, err := encodeReply(r)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestQuerySkipsStaleAndDuplicateReplies: replies for earlier rounds and
// duplicates of them arrive first; Query must keep reading until the
// reply for its expID shows up.
func TestQuerySkipsStaleAndDuplicateReplies(t *testing.T) {
	stale := mustEncodeReply(t, ControlReply{ExpID: 41, Found: true})
	good := mustEncodeReply(t, ControlReply{ExpID: 42, Found: true,
		Counts: badabing.Counts{M: 9, Z: 2, C2: [4]int{3, 1, 1, 4}}})
	addr := adversarialResponder(t, [][]byte{stale, stale, good, good})
	conn := dial(t, addr)

	reply, err := Query(conn, 42, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.ExpID != 42 || reply.Counts.M != 9 {
		t.Fatalf("wrong reply selected: %+v", reply)
	}
}

// TestQuerySkipsNonReplyNoise: probe reflections and truncated frames
// (shorter than the reply header, or with a foreign magic) are not
// replies and must be skipped silently.
func TestQuerySkipsNonReplyNoise(t *testing.T) {
	probe := make([]byte, 100)
	h := Header{P: 0.3, N: 50, SlotWidth: 5 * time.Millisecond}
	h.Marshal(probe)
	good := mustEncodeReply(t, ControlReply{ExpID: 7, Found: true,
		Counts: badabing.Counts{M: 4}})
	addr := adversarialResponder(t, [][]byte{
		probe,                // a reflected probe packet
		{},                   // empty datagram
		good[:4],             // reply truncated inside the magic
		good[:replyHeader-1], // truncated just short of the header
		marshalQuery(7),      // our own query echoed back
		good,
	})
	conn := dial(t, addr)

	reply, err := Query(conn, 7, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Counts.M != 4 {
		t.Fatalf("reply = %+v", reply)
	}
}

// TestQueryTruncatedReplyBody: a datagram framed as a reply whose JSON
// body was cut mid-flight is "for us but broken" — Query must fail fast
// with a decode error rather than hang until the deadline.
func TestQueryTruncatedReplyBody(t *testing.T) {
	good := mustEncodeReply(t, ControlReply{ExpID: 9, Found: true})
	addr := adversarialResponder(t, [][]byte{good[:len(good)-5]})
	conn := dial(t, addr)

	start := time.Now()
	_, err := Query(conn, 9, 5*time.Second)
	if err == nil {
		t.Fatal("truncated reply body accepted")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("took %v: waited for deadline instead of failing on decode", elapsed)
	}
}

// TestCollectorSurvivesMalformedQueries: garbage, truncated and
// wrong-version queries must neither crash the collector nor elicit a
// reply; a well-formed query afterwards still works.
func TestCollectorSurvivesMalformedQueries(t *testing.T) {
	col, addr := startCollector(t)
	col.SetMarker(badabing.MarkerConfig{})
	conn := dial(t, addr)

	if _, err := Send(context.Background(), conn, SenderConfig{
		ExpID: 55, P: 0.5, N: 100, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	wrongVersion := marshalQuery(55)
	wrongVersion[4] = Version + 1
	for _, junk := range [][]byte{
		marshalQuery(55)[:querySize-1], // truncated query
		wrongVersion,
		{0x42, 0x42, 0x52, 0x51}, // magic alone
		make([]byte, querySize),  // all zeros
	} {
		if _, err := conn.Write(junk); err != nil {
			t.Fatal(err)
		}
	}
	// None of those may produce a reply.
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 65536)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			break // deadline: silence, as required
		}
		if _, ok, _ := parseReply(buf[:n]); ok {
			t.Fatal("collector answered a malformed query")
		}
	}
	conn.SetReadDeadline(time.Time{})

	reply, err := Query(conn, 55, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Found || reply.Counts.M == 0 {
		t.Fatalf("collector lost the session after junk queries: %+v", reply)
	}
}

// TestCollectorDuplicatedQueries: retransmitted queries are answered
// idempotently — every duplicate gets the same counts.
func TestCollectorDuplicatedQueries(t *testing.T) {
	col, addr := startCollector(t)
	col.SetMarker(badabing.MarkerConfig{})
	conn := dial(t, addr)

	if _, err := Send(context.Background(), conn, SenderConfig{
		ExpID: 66, P: 0.5, N: 100, Seed: 13,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	first, err := Query(conn, 66, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Query(conn, 66, 2*time.Second)
		if err != nil {
			t.Fatalf("duplicate query %d: %v", i, err)
		}
		if again != first {
			t.Fatalf("duplicate query %d diverged:\nfirst %+v\nagain %+v", i, first, again)
		}
	}
}

// TestParseReplyTruncationSweep: every prefix of a valid reply must parse
// without panicking, and each lands in exactly one of the three contract
// outcomes (not-a-reply, broken reply, whole reply).
func TestParseReplyTruncationSweep(t *testing.T) {
	good := mustEncodeReply(t, ControlReply{ExpID: 77, Found: true,
		Counts: badabing.Counts{M: 5, Z: 1, C2: [4]int{2, 1, 1, 1}, C3: [8]int{3, 1, 0, 1}}})
	for n := 0; n <= len(good); n++ {
		reply, ok, err := parseReply(good[:n])
		switch {
		case n < replyHeader:
			if ok || err != nil {
				t.Fatalf("prefix %d: ok=%v err=%v, want silent skip", n, ok, err)
			}
		case n < len(good):
			if !ok || err == nil {
				t.Fatalf("prefix %d: ok=%v err=%v, want framed-but-broken", n, ok, err)
			}
		default:
			if !ok || err != nil || reply.ExpID != 77 {
				t.Fatalf("full reply: ok=%v err=%v reply=%+v", ok, err, reply)
			}
		}
	}
}

// TestParseQueryTruncationSweep mirrors the sweep for the fixed-size
// query frame.
func TestParseQueryTruncationSweep(t *testing.T) {
	good := marshalQuery(123456789)
	for n := 0; n <= len(good); n++ {
		id, ok := parseQuery(good[:n])
		if n < querySize && ok {
			t.Fatalf("prefix %d parsed as query", n)
		}
		if n == querySize && (!ok || id != 123456789) {
			t.Fatalf("full query: ok=%v id=%d", ok, id)
		}
	}
}
