package wire

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"badabing/internal/badabing"
)

// synthObs builds observations over span with base delay, random queueing
// spikes, and a linear drift of ppm parts per million.
func synthObs(rng *rand.Rand, n int, span time.Duration, ppm float64) []badabing.ProbeObs {
	obs := make([]badabing.ProbeObs, n)
	for i := range obs {
		t := time.Duration(float64(span) * float64(i) / float64(n))
		// Large enough base that negative drift never pushes the
		// synthetic OWD below zero over the span (real OWDs carry an
		// arbitrary clock offset anyway).
		base := 150 * time.Millisecond
		queue := time.Duration(0)
		if rng.Float64() < 0.3 {
			queue = time.Duration(rng.Intn(80)) * time.Millisecond
		}
		drift := time.Duration(ppm / 1e6 * float64(t))
		obs[i] = badabing.ProbeObs{
			Slot:        int64(i),
			SentPackets: 3,
			T:           t,
			OWD:         base + queue + drift,
		}
	}
	return obs
}

func TestEstimateSkewRecoversDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, ppm := range []float64{0, 50, -80, 200} {
		obs := synthObs(rng, 2000, 15*time.Minute, ppm)
		sk := estimateSkew(obs)
		if !sk.Valid() {
			t.Fatalf("ppm=%v: fit invalid", ppm)
		}
		if math.Abs(sk.PPM-ppm) > 10 {
			t.Errorf("ppm=%v: estimated %.1f", ppm, sk.PPM)
		}
	}
}

func TestCorrectSkewFlattensEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	obs := synthObs(rng, 2000, 15*time.Minute, 100)
	sk := estimateSkew(obs)
	correctSkew(obs, sk)
	// After correction the envelope should be flat: re-estimating skew
	// should give ≈0.
	resk := estimateSkew(obs)
	if math.Abs(resk.PPM) > 10 {
		t.Errorf("residual skew %.1f ppm after correction", resk.PPM)
	}
}

func TestEstimateSkewTooFewSamples(t *testing.T) {
	obs := synthObs(rand.New(rand.NewSource(1)), 5, time.Minute, 100)
	if sk := estimateSkew(obs); sk.Valid() {
		t.Fatal("valid fit from 5 samples")
	}
}

func TestEstimateSkewIgnoresLostProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	obs := synthObs(rng, 1000, 10*time.Minute, 40)
	// Zero out a third of the OWDs (fully lost probes).
	for i := 0; i < len(obs); i += 3 {
		obs[i].OWD = 0
		obs[i].LostPackets = 3
	}
	sk := estimateSkew(obs)
	if !sk.Valid() || math.Abs(sk.PPM-40) > 10 {
		t.Errorf("skew %.1f ppm with lost probes, want ≈40", sk.PPM)
	}
	correctSkew(obs, sk)
	for i := 0; i < len(obs); i += 3 {
		if obs[i].OWD != 0 {
			t.Fatal("correction touched a lost probe's zero OWD")
		}
	}
}

func TestCorrectSkewInvalidNoop(t *testing.T) {
	obs := []badabing.ProbeObs{{OWD: 50 * time.Millisecond, T: time.Hour}}
	correctSkew(obs, Skew{PPM: 1000, Windows: 1}) // invalid fit
	if obs[0].OWD != 50*time.Millisecond {
		t.Fatal("invalid skew applied")
	}
}

func TestCollectorReportsSkew(t *testing.T) {
	col, addr := startCollector(t)
	conn := dial(t, addr)
	st, err := Send(t.Context(), conn, SenderConfig{
		ExpID: 4, P: 0.6, N: 300, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	time.Sleep(200 * time.Millisecond)
	_, ss, err := col.Report(4, badabing.MarkerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Same host, same clock: drift must be tiny if the fit is valid.
	if ss.Skew.Valid() && math.Abs(ss.Skew.PPM) > 2000 {
		t.Errorf("implausible loopback skew %.1f ppm", ss.Skew.PPM)
	}
}
