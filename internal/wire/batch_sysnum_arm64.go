//go:build linux && arm64

package wire

// Multi-message syscall numbers for the arm64 (generic) syscall table.
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
