package wire

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestSendSlotsCancelMidRun cancels a paced send partway through its
// schedule: SendSlots must return promptly with the context error and a
// sane partial SendStats — some probes sent, not all, and no spurious
// dead-path verdict.
func TestSendSlotsCancelMidRun(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	refl := NewReflector(pc)
	go refl.Run()
	defer refl.Close()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	cfg := SenderConfig{
		ExpID: 11, P: 0.3, N: 1000, Slot: 5 * time.Millisecond, Seed: 11,
	}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	slots := make([]int64, 1000)
	for i := range slots {
		slots[i] = int64(i)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var emitted int
	done := make(chan struct{})
	var st SendStats
	var sendErr error
	go func() {
		defer close(done)
		st, sendErr = SendSlots(ctx, conn, cfg, slots, time.Now(), func(i int, slot int64) {
			emitted++
		})
	}()
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("SendSlots did not return after cancellation")
	}

	if !errors.Is(sendErr, context.Canceled) {
		t.Fatalf("SendSlots returned %v, want context.Canceled", sendErr)
	}
	if st.Packets == 0 {
		t.Fatal("no packets sent before cancellation")
	}
	if emitted == 0 || emitted >= len(slots) {
		t.Fatalf("emitted %d probes, want partial progress over %d slots", emitted, len(slots))
	}
	if st.Packets >= len(slots)*cfg.PacketsPerProbe {
		t.Fatalf("stats claim a full send: %+v", st)
	}
	if st.DeadSlot != -1 {
		t.Fatalf("cancellation flagged as dead path: DeadSlot=%d", st.DeadSlot)
	}
	if st.WriteFailures != 0 {
		t.Fatalf("clean loopback recorded %d write failures", st.WriteFailures)
	}
}
