package wire

import (
	"sort"
	"time"

	"badabing/internal/badabing"
)

// Clock skew handling (§7): one-way delays measured between unsynchronized
// hosts contain a constant offset plus a slow linear drift (skew). The
// offset cancels inside Mark's minimum-delay baseline, but skew does not —
// over a 15-minute session a 50 ppm drift is 45 ms, comparable to the
// queueing signal itself. EstimateSkew fits a line to the *lower envelope*
// of the (time, delay) cloud: minimum delays are achieved by probes that
// saw an empty queue, so their trend is pure clock drift.

// Skew is a fitted clock-drift estimate.
type Skew struct {
	// PPM is the drift rate in parts per million (receiver clock fast
	// relative to sender ⇒ positive).
	PPM float64
	// Windows is how many envelope points the fit used.
	Windows int
}

// Valid reports whether enough envelope points supported the fit.
func (s Skew) Valid() bool { return s.Windows >= 4 }

// estimateSkew fits the lower envelope of OWD over time. Observations with
// zero OWD (fully lost probes) are ignored.
func estimateSkew(obs []badabing.ProbeObs) Skew {
	type pt struct{ t, d float64 }
	var pts []pt
	for _, o := range obs {
		if o.OWD > 0 {
			pts = append(pts, pt{t: o.T.Seconds(), d: o.OWD.Seconds()})
		}
	}
	if len(pts) < 8 {
		return Skew{}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].t < pts[j].t })
	span := pts[len(pts)-1].t - pts[0].t
	if span <= 0 {
		return Skew{}
	}
	// Lower envelope: the minimum delay within each of up to 16 equal
	// time windows (windows with no samples are skipped).
	const nWin = 16
	t0 := pts[0].t
	mins := make([]pt, 0, nWin)
	cur := -1
	for _, p := range pts {
		w := int((p.t - t0) / span * nWin)
		if w >= nWin {
			w = nWin - 1
		}
		if w != cur {
			mins = append(mins, p)
			cur = w
		} else if p.d < mins[len(mins)-1].d {
			mins[len(mins)-1] = p
		}
	}
	if len(mins) < 4 {
		return Skew{Windows: len(mins)}
	}
	// Least squares over the envelope points.
	var st, sd, stt, std float64
	for _, p := range mins {
		st += p.t
		sd += p.d
		stt += p.t * p.t
		std += p.t * p.d
	}
	n := float64(len(mins))
	den := n*stt - st*st
	if den == 0 {
		return Skew{Windows: len(mins)}
	}
	slope := (n*std - st*sd) / den // seconds of drift per second
	return Skew{PPM: slope * 1e6, Windows: len(mins)}
}

// correctSkew subtracts the fitted drift from every observation's OWD,
// anchored at the session start. OWDs never go below zero.
func correctSkew(obs []badabing.ProbeObs, sk Skew) {
	if !sk.Valid() {
		return
	}
	slope := sk.PPM / 1e6
	for i := range obs {
		if obs[i].OWD == 0 {
			continue
		}
		corr := time.Duration(slope * float64(obs[i].T))
		obs[i].OWD -= corr
		if obs[i].OWD < 0 {
			obs[i].OWD = 0
		}
	}
}
