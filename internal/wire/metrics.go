package wire

import (
	"strconv"

	"badabing/internal/obs"
)

// RegisterMetrics registers the reflector's metric families; each
// scrape mirrors the live counters. The per-shard children are bound
// once here — shard count is fixed for the reflector's lifetime — so a
// scrape formats no labels (the old writer rendered shard=%q with
// fmt.Sprint per row per scrape).
func (r *Reflector) RegisterMetrics(o *obs.Registry) {
	packets := o.Counter("badabingd_reflector_packets_total", "Probe packets echoed by the co-hosted reflector.")
	pings := o.Counter("badabingd_reflector_pings_total", "Liveness pings answered by the co-hosted reflector.")
	dropped := o.Counter("badabingd_reflector_dropped_total", "Reflector write failures (echoes or pongs it could not send).")
	readErrors := o.Counter("badabingd_reflector_read_errors_total", "Transient read errors the reflector loops survived (monotone; current class logged once per change).")

	// Per-shard rows: the aggregates above are their exact sums, so a
	// cold shard (scheduling imbalance, wedged batch state) is visible.
	shardPackets := o.CounterVec("badabingd_reflector_shard_packets_total", "Probe packets echoed, by echo shard.", "shard")
	shardPings := o.CounterVec("badabingd_reflector_shard_pings_total", "Liveness pings answered, by echo shard.", "shard")
	shardDropped := o.CounterVec("badabingd_reflector_shard_dropped_total", "Write failures, by echo shard.", "shard")
	type shardRow struct {
		packets, pings, dropped obs.Counter
	}
	rows := make([]shardRow, r.Shards())
	for i := range rows {
		s := strconv.Itoa(i)
		rows[i] = shardRow{
			packets: shardPackets.With(s),
			pings:   shardPings.With(s),
			dropped: shardDropped.With(s),
		}
	}

	o.OnScrape(func() {
		packets.Set(float64(r.Packets()))
		pings.Set(float64(r.Pings()))
		dropped.Set(float64(r.Dropped()))
		errs, _ := r.ReadErrors()
		readErrors.Set(float64(errs))
		for i, s := range r.ShardCounts() {
			if i >= len(rows) {
				break
			}
			rows[i].packets.Set(float64(s.Packets))
			rows[i].pings.Set(float64(s.Pings))
			rows[i].dropped.Set(float64(s.Dropped))
		}
	})
}
