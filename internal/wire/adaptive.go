package wire

import (
	"context"
	"fmt"
	"net"
	"time"

	"badabing/internal/badabing"
)

// AdaptiveConfig parameterizes a live adaptive measurement: rounds of
// probing at an escalating rate, with the collector's control channel
// closing the feedback loop after each round.
type AdaptiveConfig struct {
	// BaseID seeds the per-round session ids (BaseID, BaseID+1, ...).
	BaseID uint64
	// Slot width; default badabing.DefaultSlot.
	Slot time.Duration
	// PacketsPerProbe / PacketSize as in SenderConfig.
	PacketsPerProbe int
	PacketSize      int
	// Controller holds the escalation/stopping policy.
	Controller badabing.AdaptiveConfig
	// DrainWait is how long to wait after a round before querying, so
	// in-flight probes land. Default 250 ms.
	DrainWait time.Duration
	// QueryTimeout per attempt; default 1 s. QueryRetries: default 3
	// (control packets share the lossy path with the probes).
	QueryTimeout time.Duration
	QueryRetries int
	// Seed for round schedules; default derived from the clock.
	Seed int64
}

func (c *AdaptiveConfig) applyDefaults() {
	if c.Slot == 0 {
		c.Slot = badabing.DefaultSlot
	}
	if c.DrainWait == 0 {
		c.DrainWait = 250 * time.Millisecond
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = time.Second
	}
	if c.QueryRetries == 0 {
		c.QueryRetries = 3
	}
	if c.Seed == 0 {
		c.Seed = nowNano()
	}
}

// AdaptiveResult summarizes a completed adaptive measurement.
type AdaptiveResult struct {
	Report    badabing.Report
	Rounds    int
	FinalP    float64
	Converged bool
	Packets   int
}

// SendAdaptive runs rounds of probing over conn until the controller's
// stopping rule fires or its round budget is exhausted (§8 adaptivity on
// a real path). Each round is its own wire session; after it drains, the
// collector is queried for the round's outcome counts, which feed the
// controller's escalation decision.
func SendAdaptive(ctx context.Context, conn net.Conn, cfg AdaptiveConfig) (AdaptiveResult, error) {
	cfg.applyDefaults()
	ctrl := badabing.NewAdaptive(cfg.Controller)
	var res AdaptiveResult
	err := ctrl.RunRounds(cfg.Seed, func(round int, _ []badabing.Plan, p float64) (badabing.Counts, error) {
		if err := ctx.Err(); err != nil {
			return badabing.Counts{}, err
		}
		st, err := Send(ctx, conn, SenderConfig{
			ExpID:           cfg.BaseID + uint64(round),
			P:               p,
			N:               ctrl.RoundSlots(),
			Slot:            cfg.Slot,
			Improved:        true,
			Seed:            cfg.Seed + int64(round),
			PacketsPerProbe: cfg.PacketsPerProbe,
			PacketSize:      cfg.PacketSize,
		})
		if err != nil {
			return badabing.Counts{}, fmt.Errorf("wire: adaptive round %d: %w", round, err)
		}
		res.Packets += st.Packets

		select {
		case <-ctx.Done():
			return badabing.Counts{}, ctx.Err()
		case <-time.After(cfg.DrainWait):
		}

		counts, err := queryWithRetry(ctx, conn, cfg.BaseID+uint64(round), cfg)
		if err != nil {
			return badabing.Counts{}, fmt.Errorf("wire: adaptive round %d: %w", round, err)
		}
		return counts, nil
	})
	if err != nil {
		return res, err
	}
	res.Report = ctrl.Report()
	res.Rounds = ctrl.Round()
	res.FinalP = ctrl.P()
	res.Converged = ctrl.Converged()
	return res, nil
}

// queryWithRetry tolerates control packets lost on the measured path.
func queryWithRetry(ctx context.Context, conn net.Conn, expID uint64, cfg AdaptiveConfig) (badabing.Counts, error) {
	var lastErr error
	for attempt := 0; attempt < cfg.QueryRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return badabing.Counts{}, err
		}
		counts, err := QueryCounts(conn, expID, cfg.QueryTimeout)
		if err == nil {
			return counts, nil
		}
		lastErr = err
		if err == ErrSessionNotFound {
			// Every probe of the round was lost; report the empty
			// round so the controller escalates.
			return badabing.Counts{}, nil
		}
	}
	return badabing.Counts{}, lastErr
}
