package wire

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/session"
	"badabing/internal/stats"
)

// probeRec accumulates the collector's view of one probe.
type probeRec struct {
	got     int
	maxOWD  time.Duration
	maxLate time.Duration // worst sender pacing lag among the packets
}

// colSession is the collector's state for one ExpID.
type colSession struct {
	params   Header // schedule parameters from the first packet seen
	probes   map[int64]*probeRec
	packets  uint64
	lastSeq  uint64
	delays   *stats.Histogram
	lastSeen time.Time
}

// Collector receives probe packets on a UDP socket and produces
// loss-characteristic reports per session. It is the "collaborating
// target host" of §1: the target system collects probe packets and
// reports the loss characteristics.
type Collector struct {
	conn net.PacketConn

	readErrs errorNote

	mu          sync.Mutex
	sessions    map[uint64]*colSession
	queryMarker badabing.MarkerConfig
	closed      bool

	lastPongNonce uint64
	lastPongAt    time.Time
}

// NewCollector wraps an open packet socket. Call Run to start receiving.
func NewCollector(conn net.PacketConn) *Collector {
	return &Collector{conn: conn, sessions: make(map[uint64]*colSession)}
}

// OnReadError installs a hook surfaced once per persistent read-error
// class (a persistent EMSGSIZE-class condition must reach an operator
// instead of spinning silently). Call before Run.
func (c *Collector) OnReadError(hook func(error)) {
	c.readErrs.setHook(hook)
}

// ReadErrors returns how many transient read errors the receive loop has
// survived and the current error class ("" after a clean start).
func (c *Collector) ReadErrors() (uint64, string) {
	return c.readErrs.snapshot()
}

// Run reads packets until the socket is closed, in recvmmsg batches
// where the platform allows. It is intended to be run on its own
// goroutine.
func (c *Collector) Run() {
	bc := NewBatchConn(c.conn, false)
	ms := MakeMessages(DefaultBatch)
	for {
		n, err := bc.ReadBatch(ms)
		if err != nil {
			if transientReadError(err) {
				// A connected socket whose far end died reports the
				// ICMP-unreachable burst on reads too; the collector
				// must outlive it — the far end may restart, and the
				// log it holds is the session's partial evidence. The
				// error is surfaced (once per class), not swallowed.
				c.readErrs.note(err)
				continue
			}
			return
		}
		for i := 0; i < n; i++ {
			c.handlePacket(ms[i].Payload(), ms[i].Addr)
		}
	}
}

// handlePacket classifies and processes one received datagram. addr may
// be batch-reused storage, valid only for the duration of the call.
func (c *Collector) handlePacket(buf []byte, addr net.Addr) {
	now := time.Now()
	if expID, ok := parseQuery(buf); ok {
		// Control queries are rare; answer off the hot path so
		// assembly does not stall probe reception. The batch loop
		// reuses addr storage, so the async path gets a copy.
		go c.handleQuery(expID, copyAddr(addr))
		return
	}
	if kind, nonce, _, ok := parseLiveness(buf); ok {
		switch kind {
		case livenessPing:
			// Symmetric liveness: a collector target proves itself
			// alive the same way a reflector does.
			c.conn.WriteTo(pongFor(nonce, now.UnixNano()), addr)
		case livenessPong:
			// A watchdog's mid-run re-check routes its pong through
			// us, since we own the socket's read side.
			c.mu.Lock()
			c.lastPongNonce, c.lastPongAt = nonce, now
			c.mu.Unlock()
		}
		return
	}
	var h Header
	if err := h.Unmarshal(buf); err != nil {
		return // not ours
	}
	c.record(&h, now)
}

// copyAddr snapshots a possibly-reused batch address for retention
// beyond the current ReadBatch window.
func copyAddr(addr net.Addr) net.Addr {
	if ua, ok := addr.(*net.UDPAddr); ok {
		cp := *ua
		cp.IP = append(net.IP(nil), ua.IP...)
		return &cp
	}
	return addr
}

func (c *Collector) record(h *Header, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sessions[h.ExpID]
	if s == nil {
		s = &colSession{
			params: *h,
			probes: make(map[int64]*probeRec),
			delays: stats.NewHistogram(100*time.Microsecond, 10*time.Second, 256),
		}
		c.sessions[h.ExpID] = s
	}
	s.packets++
	s.lastSeq = h.Seq
	s.lastSeen = now
	r := s.probes[h.Slot]
	if r == nil {
		r = &probeRec{}
		s.probes[h.Slot] = r
	}
	r.got++
	owd := time.Duration(now.UnixNano() - h.SendTime)
	if owd > r.maxOWD {
		r.maxOWD = owd
	}
	if owd > 0 {
		s.delays.Add(owd)
	}
	scheduled := h.Start + h.Slot*int64(h.SlotWidth)
	if late := time.Duration(h.SendTime - scheduled); late > r.maxLate {
		r.maxLate = late
	}
}

// LastPong reports the most recently received liveness pong (nonce and
// arrival time). ok is false until any pong has arrived.
func (c *Collector) LastPong() (nonce uint64, at time.Time, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastPongNonce, c.lastPongAt, !c.lastPongAt.IsZero()
}

// ReceivedSlots returns the per-slot received-packet counts of a session
// (a copy). The wire transport's watchdog uses it to tell a lossy path
// (scattered gaps) from a dead far end (an unbroken trailing run of
// unanswered probes).
func (c *Collector) ReceivedSlots(expID uint64) map[int64]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int64]int)
	if s := c.sessions[expID]; s != nil {
		for slot, r := range s.probes {
			out[slot] = r.got
		}
	}
	return out
}

// Sessions lists the ExpIDs seen so far.
func (c *Collector) Sessions() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]uint64, 0, len(c.sessions))
	for id := range c.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SessionStats summarizes the raw reception state of a session.
type SessionStats struct {
	Packets       uint64
	ProbesSeen    int
	ProbesPlanned int
	PacketsLost   int
	// LateInvalid counts probes the sender emitted more than half a
	// slot behind schedule. A lagging sender bunches adjacent slots'
	// probes together, which would corrupt the experiment outcomes, so
	// experiments touching such probes are discarded (§7: hosts that
	// cannot sustain the discretization cannot measure at it).
	LateInvalid int
	// Skipped counts experiments discarded for incomplete or invalid
	// probe observations.
	Skipped int
	// Skew is the fitted clock drift between sender and receiver,
	// which Report removes from the delays before marking (§7).
	Skew Skew
}

// ErrUnknownSession is returned for an ExpID the collector has not seen.
var ErrUnknownSession = errors.New("wire: unknown session")

// Report reconstructs the session's experiment plan from the header
// parameters, assembles probe observations (fully lost probes included),
// marks congestion with the given parameters and returns the estimates.
func (c *Collector) Report(expID uint64, marker badabing.MarkerConfig) (badabing.Report, SessionStats, error) {
	acc, ss, err := c.assemble(expID, marker)
	if err != nil {
		return badabing.Report{}, ss, err
	}
	return acc.MakeReport(), ss, nil
}

// ReportWithCI is Report plus bootstrap confidence intervals for the
// frequency and duration estimates (§8: variability estimated directly
// from the measured data).
func (c *Collector) ReportWithCI(expID uint64, marker badabing.MarkerConfig, boot badabing.BootstrapConfig) (badabing.Report, badabing.Interval, badabing.Interval, SessionStats, error) {
	rec, ss, err := c.assembleRecorder(expID, marker)
	if err != nil {
		return badabing.Report{}, badabing.Interval{}, badabing.Interval{}, ss, err
	}
	freqCI, durCI, _ := rec.Bootstrap(boot)
	return rec.Acc.MakeReport(), freqCI, durCI, ss, nil
}

// assemble runs the reconstruction/marking pipeline and returns the
// loaded accumulator.
func (c *Collector) assemble(expID uint64, marker badabing.MarkerConfig) (*badabing.Accumulator, SessionStats, error) {
	rec, ss, err := c.assembleRecorder(expID, marker)
	if err != nil {
		return nil, ss, err
	}
	return &rec.Acc, ss, nil
}

// assembleRecorder is assemble retaining the outcome sequence. The whole
// estimation pipeline below is the shared one: schedule reconstruction via
// badabing.ProbeSlots, observation assembly via AssembleObs, marking via
// session.MarkSlots, outcome grouping via badabing.Assemble — the same
// calls the transport-neutral session engine makes.
func (c *Collector) assembleRecorder(expID uint64, marker badabing.MarkerConfig) (*badabing.Recorder, SessionStats, error) {
	c.mu.Lock()
	s := c.sessions[expID]
	if s == nil {
		c.mu.Unlock()
		return nil, SessionStats{}, ErrUnknownSession
	}
	params := s.params
	stats := SessionStats{Packets: s.packets, ProbesSeen: len(s.probes)}
	c.mu.Unlock()

	// Headers arrive off the network: an invalid embedded schedule
	// config must surface as an error, never crash the collector.
	plans, err := badabing.Schedule(badabing.ScheduleConfig{
		P: params.P, N: params.N, Improved: params.Improved, Seed: params.Seed,
	})
	if err != nil {
		return nil, stats, fmt.Errorf("wire: session %d: %w", expID, err)
	}
	slots := badabing.ProbeSlots(plans)
	stats.ProbesPlanned = len(slots)

	obs, invalid, skew := c.AssembleObs(expID, slots, int(params.PktsPerProbe), params.SlotWidth)
	stats.Skew = skew
	stats.LateInvalid = len(invalid)
	for _, o := range obs {
		stats.PacketsLost += o.LostPackets
	}

	bySlot := session.MarkSlots(obs, invalid, marker)
	rec := &badabing.Recorder{}
	rec.Acc.Slot = params.SlotWidth
	stats.Skipped = badabing.Assemble(rec, plans, bySlot)
	return rec, stats, nil
}

// AssembleObs builds per-probe observations for the given slots of a
// session: fully lost probes are included as all-lost, probes the sender
// paced more than half a slot behind schedule are flagged invalid (§7: a
// lagging sender bunches adjacent slots' probes together, corrupting the
// experiment outcomes), fitted clock skew is removed from the delays (§7)
// and missing delays are inherited per §6.1. An unknown session yields
// all-lost observations, which is what a sender whose every probe vanished
// should conclude. Both the collector's batch reports and the wire
// transport of the session engine assemble through this one method.
func (c *Collector) AssembleObs(expID uint64, slots []int64, perProbe int, slotWidth time.Duration) (obs []badabing.ProbeObs, invalid map[int64]bool, skew Skew) {
	c.mu.Lock()
	probes := make(map[int64]probeRec)
	if s := c.sessions[expID]; s != nil {
		for slot, r := range s.probes {
			probes[slot] = *r
		}
	}
	c.mu.Unlock()

	lateLimit := slotWidth / 2
	obs = make([]badabing.ProbeObs, 0, len(slots))
	invalid = make(map[int64]bool)
	for _, slot := range slots {
		o := badabing.ProbeObs{
			Slot:        slot,
			SentPackets: perProbe,
			T:           time.Duration(slot) * slotWidth,
		}
		if r, ok := probes[slot]; ok {
			o.LostPackets = perProbe - r.got
			o.OWD = r.maxOWD
			if r.maxLate > lateLimit {
				invalid[slot] = true
			}
		} else {
			o.LostPackets = perProbe
		}
		if o.LostPackets < 0 {
			o.LostPackets = 0 // duplicated packets; clamp
		}
		obs = append(obs, o)
	}

	skew = estimateSkew(obs)
	correctSkew(obs, skew)
	badabing.InheritOWD(obs)
	return obs, invalid, skew
}

// Snapshot returns a session's marked outcome counts and reception stats
// without disturbing it: the session keeps accumulating packets, so a
// long-running service can poll live sessions for streaming estimates.
// It is the exported twin of the control channel's reply path.
func (c *Collector) Snapshot(expID uint64, marker badabing.MarkerConfig) (badabing.Counts, SessionStats, error) {
	return c.reportCounts(expID, marker)
}

// SessionHandle binds a collector, one ExpID and the marking parameters,
// so a session registry can poll or report on a session without carrying
// the triple around.
type SessionHandle struct {
	c      *Collector
	expID  uint64
	marker badabing.MarkerConfig
}

// Handle returns a reusable handle for one session.
func (c *Collector) Handle(expID uint64, marker badabing.MarkerConfig) SessionHandle {
	return SessionHandle{c: c, expID: expID, marker: marker}
}

// ExpID returns the session id the handle is bound to.
func (h SessionHandle) ExpID() uint64 { return h.expID }

// Counts snapshots the session's outcome tallies mid-run.
func (h SessionHandle) Counts() (badabing.Counts, SessionStats, error) {
	return h.c.Snapshot(h.expID, h.marker)
}

// Report produces the session's current estimates.
func (h SessionHandle) Report() (badabing.Report, SessionStats, error) {
	return h.c.Report(h.expID, h.marker)
}

// Delays returns the session's one-way-delay statistics.
func (h SessionHandle) Delays() (DelayStats, error) {
	return h.c.Delays(h.expID)
}

// DelayStats summarizes the raw one-way delays of a session's received
// packets (uncorrected for clock offset or skew): sample count, mean and
// quantile upper bounds at p50/p95/p99. ZING-style tools report delay
// alongside loss; BADABING sessions get it for free from the same packets.
type DelayStats struct {
	N             uint64
	Mean          time.Duration
	P50, P95, P99 time.Duration
}

// Delays returns the one-way-delay statistics for a session.
func (c *Collector) Delays(expID uint64) (DelayStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sessions[expID]
	if s == nil {
		return DelayStats{}, ErrUnknownSession
	}
	qs := s.delays.Quantiles(0.5, 0.95, 0.99)
	return DelayStats{
		N:    s.delays.N(),
		Mean: s.delays.Mean(),
		P50:  qs[0],
		P95:  qs[1],
		P99:  qs[2],
	}, nil
}

// Expire drops sessions that have received no packet for at least
// maxIdle, returning how many were removed. A long-running collector
// should call this periodically so abandoned sessions do not accumulate.
func (c *Collector) Expire(maxIdle time.Duration) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	cutoff := time.Now().Add(-maxIdle)
	removed := 0
	for id, s := range c.sessions {
		if s.lastSeen.Before(cutoff) {
			delete(c.sessions, id)
			removed++
		}
	}
	return removed
}

// Close shuts the underlying socket, terminating Run.
func (c *Collector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
