package gateway

import (
	"net"
	"testing"
	"time"
)

func TestGatewayQueueingAddsLatency(t *testing.T) {
	t.Parallel()
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// 1 Mb/s: a 1250-byte packet drains in 10 ms. Queue two packets
	// behind each other; the second should arrive ≈10 ms after the
	// first.
	g, err := New(Config{
		Listen:     "127.0.0.1:0",
		Target:     sink.LocalAddr().String(),
		BitsPerSec: 1_000_000,
		QueueBytes: 100_000,
		Delay:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	conn, err := net.Dial("udp", g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pkt := make([]byte, 1250)
	conn.Write(pkt)
	conn.Write(pkt)

	var arrivals []time.Time
	buf := make([]byte, 2048)
	sink.SetReadDeadline(time.Now().Add(2 * time.Second))
	for len(arrivals) < 2 {
		if _, _, err := sink.ReadFrom(buf); err != nil {
			t.Fatalf("read %d: %v", len(arrivals), err)
		}
		arrivals = append(arrivals, time.Now())
	}
	gap := arrivals[1].Sub(arrivals[0])
	if gap < 5*time.Millisecond {
		t.Errorf("second packet arrived %v after first; want ≈10ms of queueing", gap)
	}
}

func TestGatewayEpisodesDropProbes(t *testing.T) {
	t.Parallel()
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	g, err := New(Config{
		Listen:          "127.0.0.1:0",
		Target:          sink.LocalAddr().String(),
		BitsPerSec:      10_000_000,
		EpisodeEvery:    150 * time.Millisecond,
		EpisodeDuration: 50 * time.Millisecond,
		EpisodeOverload: 1.5,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	conn, err := net.Dial("udp", g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Probe for ~1.2 s: the 150 ms mean spacing (floored at 3× the 50 ms
	// duration) yields several episodes in the window.
	pkt := make([]byte, 600)
	deadline := time.Now().Add(1200 * time.Millisecond)
	for time.Now().Before(deadline) {
		conn.Write(pkt)
		time.Sleep(3 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	fwd, drop, eps := g.Stats()
	if eps == 0 {
		t.Fatal("no episodes generated")
	}
	if drop == 0 {
		t.Fatalf("no probe drops across %d episodes (forwarded %d)", eps, fwd)
	}
	if fwd == 0 {
		t.Fatal("everything dropped")
	}
	// Episodes cover a minority of time; most probes get through.
	if float64(drop) > float64(fwd) {
		t.Errorf("more drops (%d) than forwards (%d): episodes too aggressive", drop, fwd)
	}
}

func TestGatewayConfigErrors(t *testing.T) {
	t.Parallel()
	if _, err := New(Config{Listen: "not-an-addr::::", Target: "127.0.0.1:1"}); err == nil {
		t.Error("bad listen address accepted")
	}
	if _, err := New(Config{Listen: "127.0.0.1:0", Target: "also bad::::"}); err == nil {
		t.Error("bad target address accepted")
	}
}

func TestGatewayCloseIdempotent(t *testing.T) {
	t.Parallel()
	sink, _ := net.ListenPacket("udp", "127.0.0.1:0")
	defer sink.Close()
	g, err := New(Config{Listen: "127.0.0.1:0", Target: sink.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	g.Close() // must not panic or deadlock
}
