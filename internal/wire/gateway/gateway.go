// Package gateway implements a userspace UDP impairment proxy: a
// bandwidth-limited, fixed-delay, finite-buffer forwarding element that
// stands in for the congested path of the paper's testbed when the real
// BADABING tool is exercised over real sockets.
//
// The gateway models the Figure 1 system: packets entering faster than the
// configured rate accumulate in a drop-tail queue of QueueBytes; overflow
// is loss. A built-in episode generator adds fluid cross traffic that
// periodically overloads the queue, creating loss episodes of a configured
// duration at exponentially spaced intervals — the same workload shape as
// the paper's Iperf scenario, but on a live socket path.
package gateway

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config parameterizes a Gateway.
type Config struct {
	// Listen is the UDP address to receive on, e.g. "127.0.0.1:9000".
	Listen string
	// Target is where accepted packets are forwarded.
	Target string
	// BitsPerSec is the emulated link rate. Default 10 Mb/s.
	BitsPerSec int64
	// Delay is the emulated one-way propagation delay. Default 20 ms.
	Delay time.Duration
	// QueueBytes is the drop-tail buffer size. Default 100 ms at the
	// link rate.
	QueueBytes int
	// EpisodeEvery is the mean spacing between loss episodes
	// (exponential). Zero disables the episode generator.
	EpisodeEvery time.Duration
	// EpisodeDuration is each episode's length. Default 100 ms.
	EpisodeDuration time.Duration
	// EpisodeOverload is the cross-traffic rate during an episode as a
	// multiple of the link rate. Default 1.5.
	EpisodeOverload float64
	// Seed for episode spacing. Default 1.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.BitsPerSec == 0 {
		c.BitsPerSec = 10_000_000
	}
	if c.Delay == 0 {
		c.Delay = 20 * time.Millisecond
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = int(c.BitsPerSec / 8 / 10) // 100 ms
	}
	if c.EpisodeDuration == 0 {
		c.EpisodeDuration = 100 * time.Millisecond
	}
	if c.EpisodeOverload == 0 {
		c.EpisodeOverload = 1.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Gateway is a running impairment proxy.
type Gateway struct {
	cfg    Config
	in     *net.UDPConn
	out    *net.UDPConn
	done   chan struct{}
	wg     sync.WaitGroup
	closed sync.Once

	mu         sync.Mutex
	occ        float64 // queue occupancy, bytes
	lastDrain  time.Time
	crossBps   float64 // current cross-traffic rate, bits/s
	crossRem   float64 // fractional cross bytes carried between updates
	episodes   int
	forwarded  uint64
	dropped    uint64
	lastClient *net.UDPAddr // source of the most recent inbound packet
}

const crossPkt = 1500 // virtual cross-traffic packet size

// New starts a gateway. Close it to release its sockets.
func New(cfg Config) (*Gateway, error) {
	cfg.applyDefaults()
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("gateway: listen addr: %w", err)
	}
	taddr, err := net.ResolveUDPAddr("udp", cfg.Target)
	if err != nil {
		return nil, fmt.Errorf("gateway: target addr: %w", err)
	}
	in, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("gateway: listen: %w", err)
	}
	out, err := net.DialUDP("udp", nil, taddr)
	if err != nil {
		in.Close()
		return nil, fmt.Errorf("gateway: dial target: %w", err)
	}
	g := &Gateway{
		cfg:       cfg,
		in:        in,
		out:       out,
		done:      make(chan struct{}),
		lastDrain: time.Now(),
	}
	g.wg.Add(1)
	go g.readLoop()
	g.wg.Add(1)
	go g.reverseLoop()
	if cfg.EpisodeEvery > 0 {
		g.wg.Add(1)
		go g.episodeLoop()
	}
	return g, nil
}

// reverseLoop relays the target's replies (e.g. control-channel answers)
// back to the most recent client, after the propagation delay. The
// reverse direction models an uncongested return path, as in the paper's
// testbed.
func (g *Gateway) reverseLoop() {
	defer g.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, err := g.out.Read(buf)
		if err != nil {
			return
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		g.mu.Lock()
		client := g.lastClient
		g.mu.Unlock()
		if client == nil {
			continue
		}
		time.AfterFunc(g.cfg.Delay, func() {
			select {
			case <-g.done:
				return
			default:
			}
			g.in.WriteToUDP(pkt, client)
		})
	}
}

// Addr returns the address the gateway listens on.
func (g *Gateway) Addr() net.Addr { return g.in.LocalAddr() }

// Stats returns forwarded and dropped packet counts and the number of
// episodes generated so far.
func (g *Gateway) Stats() (forwarded, dropped uint64, episodes int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.forwarded, g.dropped, g.episodes
}

// Close stops the gateway and releases its sockets.
func (g *Gateway) Close() {
	g.closed.Do(func() {
		close(g.done)
		g.in.Close()
		g.out.Close()
	})
	g.wg.Wait()
}

// drainLocked advances the fluid queue model to now: the queue drains at
// the link rate and any active cross traffic refills it (excess is lost
// fluid — the cross traffic experiencing the loss episode).
func (g *Gateway) drainLocked(now time.Time) {
	dt := now.Sub(g.lastDrain).Seconds()
	if dt <= 0 {
		return
	}
	g.lastDrain = now
	drainBytes := float64(g.cfg.BitsPerSec) / 8 * dt
	if g.crossBps <= 0 {
		g.occ -= drainBytes
		if g.occ < 0 {
			g.occ = 0
		}
		return
	}
	// Interleave cross arrivals and drain in crossPkt quanta so probe
	// arrivals see realistic occupancy fluctuation rather than a queue
	// pinned exactly at capacity.
	arriveBytes := g.crossBps/8*dt + g.crossRem
	quanta := int(arriveBytes / crossPkt)
	g.crossRem = arriveBytes - float64(quanta*crossPkt)
	if quanta == 0 {
		g.occ -= drainBytes
		if g.occ < 0 {
			g.occ = 0
		}
		return
	}
	drainPerQuantum := drainBytes / float64(quanta)
	cap := float64(g.cfg.QueueBytes)
	for i := 0; i < quanta; i++ {
		g.occ -= drainPerQuantum
		if g.occ < 0 {
			g.occ = 0
		}
		if g.occ+crossPkt <= cap {
			g.occ += crossPkt
		}
		// else: cross packet dropped (fluid loss), queue stays full.
	}
}

func (g *Gateway) readLoop() {
	defer g.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, addr, err := g.in.ReadFromUDP(buf)
		if err != nil {
			return
		}
		g.mu.Lock()
		g.lastClient = addr
		g.mu.Unlock()
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		g.handle(pkt)
	}
}

func (g *Gateway) handle(pkt []byte) {
	now := time.Now()
	g.mu.Lock()
	g.drainLocked(now)
	if g.occ+float64(len(pkt)) > float64(g.cfg.QueueBytes) {
		g.dropped++
		g.mu.Unlock()
		return
	}
	g.occ += float64(len(pkt))
	queueDelay := time.Duration(g.occ / (float64(g.cfg.BitsPerSec) / 8) * float64(time.Second))
	g.forwarded++
	g.mu.Unlock()

	delay := g.cfg.Delay + queueDelay
	time.AfterFunc(delay, func() {
		select {
		case <-g.done:
			return
		default:
		}
		g.out.Write(pkt)
	})
}

func (g *Gateway) episodeLoop() {
	defer g.wg.Done()
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(g.cfg.EpisodeEvery))
		if min := g.cfg.EpisodeDuration * 3; gap < min {
			gap = min
		}
		select {
		case <-g.done:
			return
		case <-time.After(gap):
		}
		// Episode start: abrupt overload — prefill the queue and turn
		// on cross traffic.
		now := time.Now()
		g.mu.Lock()
		g.drainLocked(now)
		g.occ = float64(g.cfg.QueueBytes)
		g.crossBps = g.cfg.EpisodeOverload * float64(g.cfg.BitsPerSec)
		g.episodes++
		g.mu.Unlock()

		select {
		case <-g.done:
			return
		case <-time.After(g.cfg.EpisodeDuration):
		}
		now = time.Now()
		g.mu.Lock()
		g.drainLocked(now)
		g.crossBps = 0
		g.mu.Unlock()
	}
}
