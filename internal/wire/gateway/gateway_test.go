package gateway

import (
	"context"
	"net"
	"testing"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/wire"
)

func TestGatewayForwardsCleanly(t *testing.T) {
	t.Parallel()
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	g, err := New(Config{
		Listen: "127.0.0.1:0",
		Target: sink.LocalAddr().String(),
		Delay:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	conn, err := net.Dial("udp", g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	msg := []byte("hello through the gateway")
	start := time.Now()
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1500)
	sink.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := sink.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != string(msg) {
		t.Fatalf("payload corrupted: %q", buf[:n])
	}
	if lat := time.Since(start); lat < 5*time.Millisecond {
		t.Errorf("latency %v below configured 5ms delay", lat)
	}
	fwd, drop, _ := g.Stats()
	if fwd != 1 || drop != 0 {
		t.Fatalf("stats fwd=%d drop=%d, want 1/0", fwd, drop)
	}
}

func TestGatewayDropsWhenOverloaded(t *testing.T) {
	t.Parallel()
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// 1 Mb/s with a 2-packet queue: a burst of 20 packets must drop
	// most of its tail.
	g, err := New(Config{
		Listen:     "127.0.0.1:0",
		Target:     sink.LocalAddr().String(),
		BitsPerSec: 1_000_000,
		QueueBytes: 2500,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	conn, err := net.Dial("udp", g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pkt := make([]byte, 1200)
	for i := 0; i < 20; i++ {
		conn.Write(pkt)
	}
	// Drops are counted synchronously in the receive path; poll briefly
	// instead of sleeping a fixed interval.
	deadline := time.Now().Add(2 * time.Second)
	for {
		fwd, drop, _ := g.Stats()
		if fwd > 0 && drop > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("after 20x overload burst: fwd=%d drop=%d, want both > 0", fwd, drop)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEndToEndLossEpisodes is the live-socket analogue of the paper's
// experiment: BADABING sender → impairment gateway with engineered loss
// episodes → collector. The collector must measure a clearly nonzero loss
// frequency while a clean control run measures zero. It is the package's
// long soak (≈4 s of real-time probing) and is skipped under -short; with
// t.Parallel it overlaps the rest of the package instead of serializing.
func TestEndToEndLossEpisodes(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time end-to-end soak")
	}
	t.Parallel()
	colConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	col := wire.NewCollector(colConn)
	go col.Run()
	defer col.Close()

	g, err := New(Config{
		Listen:          "127.0.0.1:0",
		Target:          colConn.LocalAddr().String(),
		BitsPerSec:      10_000_000,
		Delay:           10 * time.Millisecond,
		EpisodeEvery:    400 * time.Millisecond,
		EpisodeDuration: 120 * time.Millisecond,
		EpisodeOverload: 1.5,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	conn, err := net.Dial("udp", g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	cfg := wire.SenderConfig{
		ExpID:    77,
		P:        0.5,
		N:        400,
		Slot:     10 * time.Millisecond, // 4 s; coarse enough for OS timers
		Improved: true,
		Seed:     9,
	}
	st, err := wire.Send(context.Background(), conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)

	_, _, episodes := g.Stats()
	if episodes == 0 {
		t.Fatal("gateway generated no episodes")
	}
	rep, ss, err := col.Report(77, badabing.RecommendedMarker(cfg.P, cfg.Slot))
	if err != nil {
		t.Fatal(err)
	}
	if ss.PacketsLost == 0 {
		t.Fatal("no probe packets lost across episodes")
	}
	if rep.Frequency <= 0 {
		t.Fatalf("estimated frequency %v, want > 0 (lost %d of %d packets)",
			rep.Frequency, ss.PacketsLost, st.Packets)
	}
	// Episodes cover ~120/520 ≈ 23% of time; the estimate should be
	// the right order of magnitude.
	if rep.Frequency < 0.02 || rep.Frequency > 0.8 {
		t.Errorf("estimated frequency %.3f wildly off expected ≈0.2", rep.Frequency)
	}
	if !rep.HasDuration {
		t.Error("no duration estimate despite repeated episodes")
	} else if rep.Duration < 0.02 || rep.Duration > 0.6 {
		t.Errorf("estimated duration %.3fs, want ≈0.12s order", rep.Duration)
	}
}
