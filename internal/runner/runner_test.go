package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sweep builds n cells whose values depend only on their descriptor-derived
// seed, mimicking a lab sweep cell.
func sweep(n int) []Cell {
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("cell/%d", i)
		cells[i] = Cell{Key: key, Run: func(_ context.Context, seed int64) (any, error) {
			rng := rand.New(rand.NewSource(seed))
			// A little arithmetic so cells finish out of order under
			// contention.
			sum := 0.0
			for j := 0; j < 1000; j++ {
				sum += rng.Float64()
			}
			return sum, nil
		}}
	}
	return cells
}

func values(t *testing.T, rs []Result) []float64 {
	t.Helper()
	out := make([]float64, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("cell %d (%s): %v", i, r.Key, r.Err)
		}
		if r.Index != i {
			t.Fatalf("result %d has index %d: submission order lost", i, r.Index)
		}
		out[i] = r.Value.(float64)
	}
	return out
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	cells := sweep(40)
	var want []float64
	for _, workers := range []int{1, 2, 8} {
		p := New(Config{Workers: workers})
		rs, sum, err := p.Run(context.Background(), cells)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sum.Cells != 40 || sum.Failed != 0 {
			t.Fatalf("workers=%d: summary %+v", workers, sum)
		}
		got := values(t, rs)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results differ from workers=1", workers)
		}
	}
}

func TestSeedForStableAndDistinct(t *testing.T) {
	a := SeedFor("table4/CBR/p=0.3", 1)
	if b := SeedFor("table4/CBR/p=0.3", 1); b != a {
		t.Fatalf("seed not stable: %d vs %d", a, b)
	}
	if b := SeedFor("table4/CBR/p=0.5", 1); b == a {
		t.Error("distinct keys share a seed")
	}
	if b := SeedFor("table4/CBR/p=0.3", 2); b == a {
		t.Error("distinct base seeds share a seed")
	}
	if SeedFor("", 0) == 0 {
		t.Error("zero seed escaped")
	}
}

func TestResultsCarryDescriptorSeed(t *testing.T) {
	cells := []Cell{{Key: "k", Run: func(_ context.Context, seed int64) (any, error) {
		return seed, nil
	}}}
	rs, _, err := New(Config{Workers: 3, BaseSeed: 42}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	want := SeedFor("k", 42)
	if rs[0].Seed != want || rs[0].Value.(int64) != want {
		t.Errorf("seed %d handed %v, want %d", rs[0].Seed, rs[0].Value, want)
	}
}

func TestConcurrencyBoundedByWorkers(t *testing.T) {
	const workers = 3
	var running, peak int32
	cells := make([]Cell, 20)
	for i := range cells {
		cells[i] = Cell{Key: fmt.Sprintf("c%d", i), Run: func(context.Context, int64) (any, error) {
			n := atomic.AddInt32(&running, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt32(&running, -1)
			return nil, nil
		}}
	}
	if _, _, err := New(Config{Workers: workers}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt32(&peak); p > workers {
		t.Errorf("observed %d concurrent cells, bound is %d", p, workers)
	}
}

func TestProgressStreamsEveryCell(t *testing.T) {
	p := New(Config{Workers: 4})
	job := p.Start(context.Background(), sweep(10))
	seen := map[string]bool{}
	for r := range job.Progress() {
		if r.Elapsed < 0 {
			t.Errorf("cell %s: negative elapsed", r.Key)
		}
		seen[r.Key] = true
	}
	if len(seen) != 10 {
		t.Fatalf("progress reported %d cells, want 10", len(seen))
	}
	rs, sum, err := job.Wait()
	if err != nil || len(rs) != 10 || sum.Cells != 10 {
		t.Fatalf("wait: %d results, %+v, %v", len(rs), sum, err)
	}
	if sum.Work <= 0 {
		t.Error("summary recorded no work time")
	}
}

func TestOnResultHookFiresPerCell(t *testing.T) {
	var mu sync.Mutex
	count := 0
	p := New(Config{Workers: 2, OnResult: func(Result) {
		mu.Lock()
		count++
		mu.Unlock()
	}})
	if _, _, err := p.Run(context.Background(), sweep(7)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 7 {
		t.Errorf("hook fired %d times, want 7", count)
	}
}

func TestCellErrorsAreIsolated(t *testing.T) {
	boom := errors.New("boom")
	cells := sweep(4)
	cells[2] = Cell{Key: "bad", Run: func(context.Context, int64) (any, error) {
		return nil, boom
	}}
	rs, sum, err := New(Config{Workers: 2}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rs[2].Err, boom) {
		t.Errorf("cell 2 error = %v, want boom", rs[2].Err)
	}
	for _, i := range []int{0, 1, 3} {
		if rs[i].Err != nil {
			t.Errorf("cell %d poisoned by cell 2's error: %v", i, rs[i].Err)
		}
	}
	if sum.Failed != 1 {
		t.Errorf("summary failed = %d, want 1", sum.Failed)
	}
}

func TestTimeoutAbandonsSlowCell(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	cells := []Cell{
		{Key: "slow", Run: func(context.Context, int64) (any, error) {
			<-release
			return nil, nil
		}},
		{Key: "fast", Run: func(context.Context, int64) (any, error) {
			return "ok", nil
		}},
	}
	p := New(Config{Workers: 1, Timeout: 20 * time.Millisecond})
	rs, sum, err := p.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rs[0].Err, context.DeadlineExceeded) {
		t.Errorf("slow cell err = %v, want deadline exceeded", rs[0].Err)
	}
	// The timed-out cell released its worker slot: the next cell ran.
	if rs[1].Err != nil || rs[1].Value != "ok" {
		t.Errorf("fast cell blocked behind abandoned one: %+v", rs[1])
	}
	if sum.Failed != 1 {
		t.Errorf("failed = %d, want 1", sum.Failed)
	}
}

func TestCancellationStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	var ran int32
	cells := make([]Cell, 30)
	for i := range cells {
		first := i == 0
		cells[i] = Cell{Key: fmt.Sprintf("c%d", i), Run: func(context.Context, int64) (any, error) {
			atomic.AddInt32(&ran, 1)
			if first {
				started <- struct{}{}
			}
			time.Sleep(time.Millisecond)
			return nil, nil
		}}
	}
	p := New(Config{Workers: 1})
	job := p.Start(ctx, cells)
	<-started
	cancel()
	rs, sum, err := job.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("job err = %v, want canceled", err)
	}
	if n := atomic.LoadInt32(&ran); int(n) == len(cells) {
		t.Error("cancellation never stopped the sweep")
	}
	canceled := 0
	for _, r := range rs {
		if errors.Is(r.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("no cell recorded the cancellation")
	}
	if sum.Failed != canceled {
		t.Errorf("failed = %d, canceled results = %d", sum.Failed, canceled)
	}
}

func TestPoolStatsAccumulateAcrossJobs(t *testing.T) {
	p := New(Config{Workers: 2})
	for i := 0; i < 3; i++ {
		if _, _, err := p.Run(context.Background(), sweep(5)); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Cells != 15 {
		t.Errorf("lifetime cells = %d, want 15", st.Cells)
	}
	if st.Worker != 2 {
		t.Errorf("workers = %d, want 2", st.Worker)
	}
}

func TestSummaryRendering(t *testing.T) {
	s := Summary{Cells: 10, Failed: 1, Wall: time.Second, Work: 3 * time.Second, Worker: 4}
	if s.Speedup() < 2.9 || s.Speedup() > 3.1 {
		t.Errorf("speedup = %.2f, want 3", s.Speedup())
	}
	out := s.String()
	for _, want := range []string{"10 cells", "1 failed", "4 workers", "3.00x"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary %q missing %q", out, want)
		}
	}
}
