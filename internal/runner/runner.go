// Package runner is the parallel experiment engine behind the lab: it
// fans independent experiment cells (one scenario × parameter × seed
// combination each) out across a bounded set of workers and returns their
// results in submission order, so a sweep's output is bit-identical
// regardless of worker count or completion order.
//
// Determinism contract: a cell must derive all of its randomness from its
// own descriptor — either the seed the runner hands it (a stable hash of
// the cell key, see SeedFor) or seeds carried in the closure — and must
// never share mutable state with other cells. Under that contract the
// engine guarantees that Run(ctx, cells) yields identical Result values
// for any Workers setting, because cells are pure functions of their
// descriptors and results are reassembled by submission index.
package runner

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"
	"time"
)

// Cell is one unit of experiment work: a stable descriptor plus the
// function that produces the cell's result. The seed passed to Run is
// SeedFor(Key, BaseSeed); cells that carry their own seeds may ignore it.
type Cell struct {
	// Key is the stable cell descriptor, e.g. "table4/CBR/p=0.3/seed=1".
	// It names the cell in progress output and derives its RNG stream.
	Key string
	// Run computes the cell. It must be self-contained: no shared
	// mutable state, all randomness seeded from its arguments.
	Run func(ctx context.Context, seed int64) (any, error)
}

// Result is the outcome of one cell.
type Result struct {
	// Index is the cell's submission position; results are returned
	// sorted by it.
	Index int
	// Key echoes the cell descriptor.
	Key string
	// Seed is the descriptor-derived seed the cell was offered.
	Seed int64
	// Value is Run's return value (nil on error).
	Value any
	// Err is Run's error, a timeout, or the cancellation cause.
	Err error
	// Elapsed is the cell's wall-clock execution time.
	Elapsed time.Duration
	// Worker is the worker slot (0..Workers-1) that ran the cell.
	Worker int
}

// Summary aggregates a job (or, via Pool.Stats, a pool's lifetime).
type Summary struct {
	Cells  int           // cells completed
	Failed int           // cells that returned an error (incl. timeouts/cancels)
	Wall   time.Duration // wall-clock time of the job
	Work   time.Duration // sum of per-cell elapsed times
	Worker int           // worker slots configured
}

// Speedup is the parallel efficiency observed: total work divided by
// wall-clock time. Serial execution reports ≈1.
func (s Summary) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Work) / float64(s.Wall)
}

func (s Summary) String() string {
	return fmt.Sprintf("%d cells (%d failed) on %d workers: %v wall, %v work, %.2fx speedup",
		s.Cells, s.Failed, s.Worker, s.Wall.Round(time.Millisecond),
		s.Work.Round(time.Millisecond), s.Speedup())
}

// Config parameterizes a Pool.
type Config struct {
	// Workers bounds concurrent cell executions across all jobs on the
	// pool. Default runtime.GOMAXPROCS(0).
	Workers int
	// Timeout bounds each cell's execution; zero means unbounded. A
	// timed-out cell's Result carries context.DeadlineExceeded; its
	// goroutine is abandoned (the simulator cannot be preempted) and
	// its worker slot is released so the sweep continues.
	Timeout time.Duration
	// BaseSeed is mixed into every cell's descriptor hash, so one knob
	// re-seeds a whole sweep without touching cell keys. Default 1.
	BaseSeed int64
	// OnResult, when set, is called for every completed cell on the
	// worker's goroutine (jobs may interleave). It must be safe for
	// concurrent use.
	OnResult func(Result)
}

// Pool executes cells with bounded concurrency. Multiple jobs may run on
// one pool concurrently; they share the worker slots.
type Pool struct {
	cfg   Config
	slots chan int // worker ids; capacity = Workers

	mu    sync.Mutex
	total Summary // lifetime aggregate across jobs (Wall left zero)
}

// New builds a pool.
func New(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BaseSeed == 0 {
		cfg.BaseSeed = 1
	}
	p := &Pool{cfg: cfg, slots: make(chan int, cfg.Workers)}
	for i := 0; i < cfg.Workers; i++ {
		p.slots <- i
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.cfg.Workers }

// Stats returns the pool's lifetime aggregate: cells and work summed over
// every job completed so far (Wall is not meaningful across overlapping
// jobs and is reported zero).
func (p *Pool) Stats() Summary {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.total
	s.Worker = p.cfg.Workers
	return s
}

// Job is a running (or finished) batch of cells.
type Job struct {
	progress chan Result
	done     chan struct{}
	results  []Result
	summary  Summary
	err      error
}

// Progress yields one Result per cell in completion order. The channel is
// buffered to the cell count, so consuming it is optional; it is closed
// when the job finishes.
func (j *Job) Progress() <-chan Result { return j.progress }

// Wait blocks until every cell has finished (or been abandoned) and
// returns the results in submission order, the job summary, and the
// context's error if the job was cancelled.
func (j *Job) Wait() ([]Result, Summary, error) {
	<-j.done
	return j.results, j.summary, j.err
}

// Run is Start followed by Wait.
func (p *Pool) Run(ctx context.Context, cells []Cell) ([]Result, Summary, error) {
	return p.Start(ctx, cells).Wait()
}

// Start launches the cells and returns immediately. Results arrive on
// Job.Progress as they complete; Job.Wait reassembles submission order.
func (p *Pool) Start(ctx context.Context, cells []Cell) *Job {
	j := &Job{
		progress: make(chan Result, len(cells)),
		done:     make(chan struct{}),
		results:  make([]Result, len(cells)),
	}
	if ctx == nil {
		ctx = context.Background()
	}
	go p.run(ctx, cells, j)
	return j
}

func (p *Pool) run(ctx context.Context, cells []Cell, j *Job) {
	start := time.Now()
	var wg sync.WaitGroup
	for i := range cells {
		i, c := i, cells[i]
		res := Result{Index: i, Key: c.Key, Seed: SeedFor(c.Key, p.cfg.BaseSeed)}
		// Acquire a worker slot (or give up on cancellation) before
		// spawning, so a huge sweep holds at most Workers goroutines.
		select {
		case <-ctx.Done():
			res.Err = ctx.Err()
			j.results[i] = res
			j.progress <- res
			continue
		case worker := <-p.slots:
			res.Worker = worker
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { p.slots <- worker }()
				j.results[i] = p.runCell(ctx, c, res)
				j.progress <- j.results[i]
				if p.cfg.OnResult != nil {
					p.cfg.OnResult(j.results[i])
				}
			}()
		}
	}
	wg.Wait()
	close(j.progress)
	j.err = ctx.Err()
	j.summary = Summary{Cells: len(cells), Wall: time.Since(start), Worker: p.cfg.Workers}
	for _, r := range j.results {
		j.summary.Work += r.Elapsed
		if r.Err != nil {
			j.summary.Failed++
		}
	}
	p.mu.Lock()
	p.total.Cells += j.summary.Cells
	p.total.Failed += j.summary.Failed
	p.total.Work += j.summary.Work
	p.mu.Unlock()
	close(j.done)
}

// runCell executes one cell, enforcing the per-cell timeout.
func (p *Pool) runCell(ctx context.Context, c Cell, res Result) Result {
	start := time.Now()
	if p.cfg.Timeout <= 0 {
		res.Value, res.Err = c.Run(ctx, res.Seed)
		res.Elapsed = time.Since(start)
		return res
	}
	cellCtx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
	defer cancel()
	type outcome struct {
		value any
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := c.Run(cellCtx, res.Seed)
		ch <- outcome{v, err}
	}()
	select {
	case o := <-ch:
		res.Value, res.Err = o.value, o.err
	case <-cellCtx.Done():
		res.Err = fmt.Errorf("runner: cell %q: %w", c.Key, cellCtx.Err())
	}
	res.Elapsed = time.Since(start)
	return res
}

// SeedFor derives a cell's deterministic RNG seed from its descriptor: an
// FNV-1a hash of the key mixed with the base seed. Equal descriptors map
// to equal seeds on every platform and in every execution order; distinct
// descriptors get independent streams. The result is never zero, so it is
// safe for configs that treat zero as "use the default".
func SeedFor(key string, base int64) int64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}
