package capture

import (
	"testing"
	"time"

	"badabing/internal/simnet"
)

// sink discards packets.
type sink struct{}

func (sink) Deliver(*simnet.Packet) {}

// overload sends a burst into link at twice its drain rate for dur.
func overload(s *simnet.Sim, l *simnet.Link, at, dur time.Duration, size int) {
	ival := l.Rate().TxTime(size) / 2
	n := int(dur / ival)
	for i := 0; i < n; i++ {
		t := at + time.Duration(i)*ival
		s.ScheduleAt(t, func() {
			l.Send(&simnet.Packet{ID: s.NextPacketID(), Kind: simnet.Data, Size: size, Sent: s.Now()})
		})
	}
}

func TestMonitorSingleEpisode(t *testing.T) {
	s := simnet.New()
	// 8 Mb/s link, 10 ms buffer (10 kB → 10 packets of 1000 B).
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 10_000, sink{})
	m := Attach(s, l, Config{})
	// 2x overload for 100 ms: fills the 10 ms buffer in ~10 ms, then
	// drops for ~90 ms.
	overload(s, l, 0, 100*time.Millisecond, 1000)
	s.Run(time.Second)
	eps := m.Episodes()
	if len(eps) != 1 {
		t.Fatalf("extracted %d episodes, want 1: %+v", len(eps), eps)
	}
	d := eps[0].Duration()
	if d < 70*time.Millisecond || d > 95*time.Millisecond {
		t.Errorf("episode duration %v, want ≈90ms", d)
	}
	if eps[0].Drops == 0 {
		t.Error("episode has no drops")
	}
}

func TestMonitorSeparatesDistantEpisodes(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 10_000, sink{})
	m := Attach(s, l, Config{})
	overload(s, l, 0, 60*time.Millisecond, 1000)
	overload(s, l, 2*time.Second, 60*time.Millisecond, 1000)
	s.Run(5 * time.Second)
	if got := len(m.Episodes()); got != 2 {
		t.Fatalf("extracted %d episodes, want 2", got)
	}
}

func TestMonitorMergesNearbyDrops(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 10_000, sink{})
	m := Attach(s, l, Config{MaxGap: 30 * time.Millisecond})
	// Two bursts 20 ms apart (< MaxGap): one episode.
	overload(s, l, 0, 40*time.Millisecond, 1000)
	overload(s, l, 60*time.Millisecond, 40*time.Millisecond, 1000)
	s.Run(time.Second)
	if got := len(m.Episodes()); got != 1 {
		t.Fatalf("extracted %d episodes, want 1 (merged)", got)
	}
}

func TestMonitorCountsByKind(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 2000, sink{})
	m := Attach(s, l, Config{})
	s.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			l.Send(&simnet.Packet{ID: s.NextPacketID(), Kind: simnet.Data, Size: 1000})
		}
		l.Send(&simnet.Packet{ID: s.NextPacketID(), Kind: simnet.Probe, Size: 1000})
	})
	s.Run(time.Second)
	da, dd := m.Counts(simnet.Data)
	pa, pd := m.Counts(simnet.Probe)
	if da != 4 || pa != 1 {
		t.Fatalf("arrivals (data=%d, probe=%d), want (4,1)", da, pa)
	}
	if dd+pd != 3 {
		t.Fatalf("drops = %d, want 3 total", dd+pd)
	}
}

func TestTruthFrequencyAndDuration(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 10_000, sink{})
	m := Attach(s, l, Config{})
	// Three ~90 ms episodes in 30 s: F ≈ 3*0.09/30 = 0.009.
	for i := 0; i < 3; i++ {
		overload(s, l, time.Duration(i)*10*time.Second, 100*time.Millisecond, 1000)
	}
	s.Run(30 * time.Second)
	truth := m.Truth(30*time.Second, 5*time.Millisecond)
	if truth.Episodes != 3 {
		t.Fatalf("episodes = %d, want 3", truth.Episodes)
	}
	if truth.Frequency < 0.006 || truth.Frequency > 0.012 {
		t.Errorf("frequency = %v, want ≈0.009", truth.Frequency)
	}
	mean := truth.Duration.MeanDuration()
	if mean < 70*time.Millisecond || mean > 95*time.Millisecond {
		t.Errorf("mean duration = %v, want ≈90ms", mean)
	}
	if truth.LossRate <= 0 {
		t.Error("loss rate should be positive")
	}
	if truth.EpisodeRate < 0.05 || truth.EpisodeRate > 0.2 {
		t.Errorf("episode rate = %v, want 0.1/s", truth.EpisodeRate)
	}
}

func TestCongestedSlotsMatchesEpisodes(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 10_000, sink{})
	m := Attach(s, l, Config{})
	overload(s, l, time.Second, 100*time.Millisecond, 1000)
	s.Run(3 * time.Second)
	slot := 5 * time.Millisecond
	bits := m.CongestedSlots(3*time.Second, slot)
	eps := m.Episodes()
	if len(eps) != 1 {
		t.Fatalf("want 1 episode, got %d", len(eps))
	}
	congested := 0
	for _, b := range bits {
		if b {
			congested++
		}
	}
	wantSlots := int(eps[0].Duration()/slot) + 1
	if congested < wantSlots-1 || congested > wantSlots+1 {
		t.Errorf("congested slots = %d, want ≈%d", congested, wantSlots)
	}
	// No congested slot outside the episode's span.
	for i, b := range bits {
		tm := time.Duration(i) * slot
		if b && (tm+slot < eps[0].Start || tm > eps[0].End+slot) {
			t.Fatalf("slot %d (%v) marked congested outside episode [%v,%v]",
				i, tm, eps[0].Start, eps[0].End)
		}
	}
}

func TestQueueSampling(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 10_000, sink{})
	m := Attach(s, l, Config{SampleInterval: time.Millisecond, Horizon: 100 * time.Millisecond})
	overload(s, l, 0, 50*time.Millisecond, 1000)
	s.Run(200 * time.Millisecond)
	samples := m.Samples()
	if len(samples) < 95 || len(samples) > 105 {
		t.Fatalf("got %d samples, want ≈100", len(samples))
	}
	var peak time.Duration
	for _, q := range samples {
		if q.Delay > peak {
			peak = q.Delay
		}
	}
	// Buffer is 10 ms deep; during overload it should be near-full.
	if peak < 8*time.Millisecond {
		t.Errorf("peak sampled queue delay %v, want ≈10ms", peak)
	}
}

func TestTruthEmptyWindow(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 10_000, sink{})
	m := Attach(s, l, Config{})
	s.Run(time.Second)
	truth := m.Truth(time.Second, 5*time.Millisecond)
	if truth.Frequency != 0 || truth.Episodes != 0 || truth.Duration.N() != 0 {
		t.Fatalf("truth on idle link not empty: %+v", truth)
	}
}
