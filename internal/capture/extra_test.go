package capture

import (
	"testing"
	"time"

	"badabing/internal/simnet"
	"badabing/internal/traffic"
)

// TestMonitorHighWaterMerging: two drop clusters 60 ms apart (beyond the
// 30 ms MaxGap) must still merge into one episode when the queue stays
// above the high-water mark throughout the gap — the paper's Harpoon
// delineation rule.
func TestMonitorHighWaterMerging(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 10_000, sink{})
	m := Attach(s, l, Config{MaxGap: 30 * time.Millisecond, HighWater: 0.9})
	// Phase 1: overload for 40 ms (fills and drops).
	overload(s, l, 0, 40*time.Millisecond, 1000)
	// Gap: send exactly at the drain rate so the queue holds near-full
	// for 60 ms without dropping.
	ival := l.Rate().TxTime(1000)
	for i := 0; i < int(60*time.Millisecond/ival); i++ {
		at := 40*time.Millisecond + time.Duration(i)*ival
		s.ScheduleAt(at, func() {
			l.Send(&simnet.Packet{ID: s.NextPacketID(), Kind: simnet.Data, Size: 1000})
		})
	}
	// Phase 2: overload again.
	overload(s, l, 100*time.Millisecond, 40*time.Millisecond, 1000)
	s.Run(time.Second)
	if got := len(m.Episodes()); got != 1 {
		t.Fatalf("extracted %d episodes, want 1 (high-water merge)", got)
	}
}

func TestMonitorLowQueueGapSplits(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 10_000, sink{})
	m := Attach(s, l, Config{MaxGap: 30 * time.Millisecond, HighWater: 0.9})
	overload(s, l, 0, 40*time.Millisecond, 1000)
	// 100 ms of silence: the queue drains fully.
	overload(s, l, 140*time.Millisecond, 40*time.Millisecond, 1000)
	s.Run(time.Second)
	if got := len(m.Episodes()); got != 2 {
		t.Fatalf("extracted %d episodes, want 2 (drained gap splits)", got)
	}
}

func TestCongestedSlotsClampsToHorizon(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 10_000, sink{})
	m := Attach(s, l, Config{})
	// Episode starting near the horizon edge.
	overload(s, l, 950*time.Millisecond, 200*time.Millisecond, 1000)
	s.Run(2 * time.Second)
	bits := m.CongestedSlots(time.Second, 5*time.Millisecond)
	if len(bits) != 200 {
		t.Fatalf("bitmap length %d, want 200", len(bits))
	}
	if !bits[len(bits)-1] {
		t.Error("episode at horizon edge not marked in final slot")
	}
}

func TestTruthZeroInputs(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 10_000, sink{})
	m := Attach(s, l, Config{})
	s.Run(time.Second)
	if tr := m.Truth(0, 5*time.Millisecond); tr.Frequency != 0 {
		t.Error("zero horizon should yield empty truth")
	}
	if tr := m.Truth(time.Second, 0); tr.Frequency != 0 {
		t.Error("zero slot should yield empty truth")
	}
}

func TestEpisodeDurationAndDrops(t *testing.T) {
	e := Episode{Start: 100 * time.Millisecond, End: 180 * time.Millisecond, Drops: 7}
	if e.Duration() != 80*time.Millisecond {
		t.Fatalf("duration %v", e.Duration())
	}
}

func TestMonitorOpenEpisodeIncluded(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 10_000, sink{})
	m := Attach(s, l, Config{})
	overload(s, l, 0, 40*time.Millisecond, 1000)
	// Query while the episode is the still-open current cluster.
	s.Run(20 * time.Millisecond)
	if len(m.Episodes()) != 1 {
		t.Fatal("open episode not reported")
	}
	// And reading must not corrupt subsequent accumulation.
	s.Run(time.Second)
	if len(m.Episodes()) != 1 {
		t.Fatal("episode double-counted after mid-run read")
	}
}

func TestFlowLossRates(t *testing.T) {
	s := simnet.New()
	l := simnet.NewLink(s, simnet.Rate(8_000_000), 0, 3000, sink{})
	m := Attach(s, l, Config{})
	// Flow 1 sends during congestion, flow 2 before it: flow 2 must be
	// lossless even though the router-centric rate is positive.
	s.Schedule(0, func() {
		for i := 0; i < 2; i++ {
			l.Send(&simnet.Packet{ID: s.NextPacketID(), Flow: 2, Kind: simnet.Data, Size: 1000})
		}
	})
	s.Schedule(10*time.Millisecond, func() {
		for i := 0; i < 8; i++ {
			l.Send(&simnet.Packet{ID: s.NextPacketID(), Flow: 1, Kind: simnet.Data, Size: 1000})
		}
	})
	s.Run(time.Second)
	r1, ok := m.FlowLossRate(1)
	if !ok || r1 <= 0 {
		t.Fatalf("flow 1 loss rate %v (%v), want positive", r1, ok)
	}
	r2, ok := m.FlowLossRate(2)
	if !ok || r2 != 0 {
		t.Fatalf("flow 2 loss rate %v (%v), want 0", r2, ok)
	}
	if _, ok := m.FlowLossRate(99); ok {
		t.Fatal("unknown flow reported a rate")
	}
	lossless, active := m.LosslessFlows(1)
	if active != 2 || lossless != 1 {
		t.Fatalf("lossless/active = %d/%d, want 1/2", lossless, active)
	}
}

// TestSection3Observation reproduces §3's central point on a real
// scenario: during loss episodes the router drops packets, yet many
// individual flows come through without any loss at all — which is why a
// probe's own losses are a poor estimator of congestion.
func TestSection3Observation(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	m := Attach(s, d.Bottleneck, Config{})
	ids := traffic.NewIDSpace(1000)
	traffic.NewWeb(s, d, ids, traffic.WebConfig{Seed: 4})
	s.Run(90 * time.Second)
	truth := m.Truth(90*time.Second, 5*time.Millisecond)
	if truth.LossRate <= 0 {
		t.Skip("no loss this seed")
	}
	lossless, active := m.LosslessFlows(10)
	if active < 50 {
		t.Fatalf("only %d active flows", active)
	}
	if lossless == 0 {
		t.Fatal("no lossless flows despite positive router-centric loss rate")
	}
	t.Logf("router loss rate %.4f; %d of %d flows lossless", truth.LossRate, lossless, active)
}
