// Package capture provides ground-truth measurement of the simulated
// bottleneck, standing in for the Endace DAG passive-capture cards of the
// paper's testbed. A Monitor taps the bottleneck link and records every
// drop, a periodically sampled queue-length time series, and per-kind
// packet counts; from these it extracts loss episodes and the true loss
// characteristics (episode frequency F and mean duration D) that the
// probe-based estimates are judged against.
package capture

import (
	"time"

	"badabing/internal/simnet"
	"badabing/internal/stats"
)

// Episode is a loss episode: a maximal period during which the bottleneck
// buffer is dropping packets (paper §3, Figure 2).
type Episode struct {
	Start time.Duration // time of the first drop
	End   time.Duration // time of the last drop
	Drops int           // packets lost during the episode
}

// Duration returns the episode length.
func (e Episode) Duration() time.Duration { return e.End - e.Start }

// QueueSample is one point of the queue-length time series, with occupancy
// expressed as drain time (the y axis of the paper's Figures 4–6 and 8).
type QueueSample struct {
	T     time.Duration
	Delay time.Duration
}

// Config parameterizes a Monitor.
type Config struct {
	// SampleInterval is the spacing of queue-length samples.
	// Default 1 ms. Zero-cost if Samples are never read.
	SampleInterval time.Duration
	// MaxGap merges drops into one episode when they are closer than
	// this, regardless of queue level. Default 30 ms — well below the
	// multi-second spacing between episodes in all paper scenarios.
	MaxGap time.Duration
	// HighWater is the queue fraction above which a gap between drops
	// is still inside the same episode (the paper's Harpoon
	// delineation: delays within 10 ms of the 100 ms maximum, i.e.
	// 0.9). Default 0.9.
	HighWater float64
	// Horizon stops queue sampling after this time. Zero means no
	// sampling at all unless SampleInterval is set and Start is called
	// with a horizon.
	Horizon time.Duration
}

func (c *Config) applyDefaults() {
	if c.SampleInterval == 0 {
		c.SampleInterval = time.Millisecond
	}
	if c.MaxGap == 0 {
		c.MaxGap = 30 * time.Millisecond
	}
	if c.HighWater == 0 {
		c.HighWater = 0.9
	}
}

// Monitor observes one link and accumulates ground truth. Attach it with
// Attach; it implements simnet.Tap.
type Monitor struct {
	sim  *simnet.Sim
	link *simnet.Link
	cfg  Config

	episodes []Episode
	open     bool
	cur      Episode
	minGapQ  int // minimum queue bytes seen since the last drop

	samples []QueueSample

	arrivals map[simnet.Kind]uint64
	drops    map[simnet.Kind]uint64

	flowArrivals map[uint64]uint64
	flowDrops    map[uint64]uint64
}

// Attach creates a Monitor on link and registers it as a tap. If
// cfg.Horizon is positive, queue sampling runs from now until the horizon.
func Attach(sim *simnet.Sim, link *simnet.Link, cfg Config) *Monitor {
	cfg.applyDefaults()
	m := &Monitor{
		sim:          sim,
		link:         link,
		cfg:          cfg,
		arrivals:     make(map[simnet.Kind]uint64),
		drops:        make(map[simnet.Kind]uint64),
		flowArrivals: make(map[uint64]uint64),
		flowDrops:    make(map[uint64]uint64),
	}
	link.AddTap(m)
	if cfg.Horizon > 0 {
		m.scheduleSample()
	}
	return m
}

func (m *Monitor) scheduleSample() {
	m.sim.Schedule(m.cfg.SampleInterval, func() {
		m.samples = append(m.samples, QueueSample{T: m.sim.Now(), Delay: m.link.QueueDelay()})
		if m.sim.Now() < m.cfg.Horizon {
			m.scheduleSample()
		}
	})
}

// Arrive implements simnet.Tap.
func (m *Monitor) Arrive(_ time.Duration, p *simnet.Packet, _ int) {
	m.arrivals[p.Kind]++
	m.flowArrivals[p.Flow]++
}

// Depart implements simnet.Tap.
func (m *Monitor) Depart(_ time.Duration, _ *simnet.Packet, queuedBytes int) {
	if m.open && queuedBytes < m.minGapQ {
		m.minGapQ = queuedBytes
	}
}

// Dropped implements simnet.Tap.
func (m *Monitor) Dropped(now time.Duration, p *simnet.Packet, _ simnet.Drop) {
	m.drops[p.Kind]++
	m.flowDrops[p.Flow]++
	if !m.open {
		m.open = true
		m.cur = Episode{Start: now, End: now, Drops: 1}
		m.minGapQ = m.link.QueueBytes()
		return
	}
	gap := now - m.cur.End
	highWater := int(m.cfg.HighWater * float64(m.link.QueueCap()))
	if gap <= m.cfg.MaxGap || m.minGapQ >= highWater {
		m.cur.End = now
		m.cur.Drops++
	} else {
		m.episodes = append(m.episodes, m.cur)
		m.cur = Episode{Start: now, End: now, Drops: 1}
	}
	m.minGapQ = m.link.QueueBytes()
}

// flushEpisodes returns all episodes including a still-open one.
func (m *Monitor) flushEpisodes() []Episode {
	eps := m.episodes
	if m.open {
		eps = append(append([]Episode(nil), eps...), m.cur)
	}
	return eps
}

// Episodes returns the extracted loss episodes so far.
func (m *Monitor) Episodes() []Episode { return m.flushEpisodes() }

// Samples returns the queue-length time series (only populated when the
// Monitor was attached with a positive Horizon).
func (m *Monitor) Samples() []QueueSample { return m.samples }

// Counts returns cumulative arrivals and drops for kind k.
func (m *Monitor) Counts(k simnet.Kind) (arrivals, drops uint64) {
	return m.arrivals[k], m.drops[k]
}

// Truth summarizes the ground-truth loss characteristics over an
// observation window, in the form the paper's tables report.
type Truth struct {
	// Frequency is the fraction of time slots of width Slot that
	// intersect a loss episode — the paper's congestion frequency F.
	Frequency float64
	// Duration summarizes episode durations (mean µ and σ appear in
	// the tables).
	Duration stats.Summary
	// Episodes is the number of loss episodes observed.
	Episodes int
	// EpisodeRate is episodes per second.
	EpisodeRate float64
	// LossRate is the router-centric loss rate L/(S+L) over all
	// packets.
	LossRate float64
	// Slot is the discretization used for Frequency.
	Slot time.Duration
}

// Truth computes ground truth over the window [0, horizon) using the given
// slot width (the paper discretizes at 5 ms).
func (m *Monitor) Truth(horizon, slot time.Duration) Truth {
	eps := m.flushEpisodes()
	t := Truth{Episodes: len(eps), Slot: slot}
	if horizon <= 0 || slot <= 0 {
		return t
	}
	nSlots := int64(horizon / slot)
	congested := int64(0)
	for _, e := range eps {
		first := int64(e.Start / slot)
		last := int64(e.End / slot)
		if last >= nSlots {
			last = nSlots - 1
		}
		congested += last - first + 1
		t.Duration.AddDuration(e.Duration())
	}
	t.Frequency = float64(congested) / float64(nSlots)
	t.EpisodeRate = float64(len(eps)) / horizon.Seconds()
	var arr, drop uint64
	for _, k := range []simnet.Kind{simnet.Data, simnet.Ack, simnet.Probe} {
		a, d := m.Counts(k)
		arr += a
		drop += d
	}
	if arr > 0 {
		t.LossRate = float64(drop) / float64(arr)
	}
	return t
}

// FlowLossRate returns the end-to-end loss rate of one flow — the paper's
// §3 second definition, counting only that flow's packets. ok is false if
// the flow was never seen.
func (m *Monitor) FlowLossRate(flow uint64) (rate float64, ok bool) {
	arr := m.flowArrivals[flow]
	if arr == 0 {
		return 0, false
	}
	return float64(m.flowDrops[flow]) / float64(arr), true
}

// LosslessFlows counts flows that sent at least minPackets and lost
// nothing, along with the total number of such active flows. The paper's
// §3 observation — "during a period where the router-centric loss rate is
// non-zero, there may be flows that do not lose any packets" — is this
// quantity being nonzero while the link drops.
func (m *Monitor) LosslessFlows(minPackets uint64) (lossless, active int) {
	for flow, arr := range m.flowArrivals {
		if arr < minPackets {
			continue
		}
		active++
		if m.flowDrops[flow] == 0 {
			lossless++
		}
	}
	return lossless, active
}

// CongestedSlots returns a bitmap over [0,horizon) at the given slot width
// where true marks slots intersecting a loss episode. This is the oracle
// series Yi of the paper's §5.2.2, used to validate estimator consistency.
func (m *Monitor) CongestedSlots(horizon, slot time.Duration) []bool {
	n := int(horizon / slot)
	out := make([]bool, n)
	for _, e := range m.flushEpisodes() {
		first := int(e.Start / slot)
		last := int(e.End / slot)
		for i := first; i <= last && i < n; i++ {
			if i >= 0 {
				out[i] = true
			}
		}
	}
	return out
}
