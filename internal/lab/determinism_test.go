package lab

import (
	"math"
	"testing"
	"time"

	"badabing/internal/runner"
)

// These tests are the regression gate for all parallelism work: the same
// sweep run serially (workers=1) and heavily parallel (workers=8) must
// produce byte-identical frequency and duration estimates per cell. A
// failure means a cell shares state — an RNG stream, a simulator, an
// accumulation order — across goroutines.

// bitsEqual compares floats by bit pattern: determinism means identical
// bits, not "close enough".
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func withWorkers(cfg RunConfig, workers int) RunConfig {
	cfg.Pool = runner.New(runner.Config{Workers: workers})
	return cfg
}

func TestSweepInvariantAcrossWorkerCounts(t *testing.T) {
	base := RunConfig{Horizon: 60 * time.Second, Seed: 3}
	serial := Table4(withWorkers(base, 1))
	parallel := Table4(withWorkers(base, 8))
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		a, b := serial.Rows[i], parallel.Rows[i]
		if !bitsEqual(a.P, b.P) || !bitsEqual(a.TrueF, b.TrueF) || !bitsEqual(a.EstF, b.EstF) ||
			!bitsEqual(a.TrueD, b.TrueD) || !bitsEqual(a.EstD, b.EstD) {
			t.Errorf("p=%.1f: workers=1 %+v != workers=8 %+v", a.P, a, b)
		}
	}
	if serial.String() != parallel.String() {
		t.Error("rendered tables differ between worker counts")
	}
}

func TestZingTableInvariantAcrossWorkerCounts(t *testing.T) {
	base := RunConfig{Horizon: 60 * time.Second, Seed: 5}
	serial := Table2(withWorkers(base, 1))
	parallel := Table2(withWorkers(base, 8))
	if serial.String() != parallel.String() {
		t.Fatalf("rendered tables differ:\n-- workers=1\n%s\n-- workers=8\n%s", serial, parallel)
	}
	for i := range serial.Rows {
		a, b := serial.Rows[i], parallel.Rows[i]
		if !bitsEqual(a.Frequency, b.Frequency) || !bitsEqual(a.DurMean, b.DurMean) ||
			!bitsEqual(a.DurSD, b.DurSD) {
			t.Errorf("row %d (%s): estimates differ across worker counts", i, a.Name)
		}
	}
}

func TestSeedStudyInvariantAcrossWorkerCounts(t *testing.T) {
	base := RunConfig{Horizon: 45 * time.Second}
	seeds := []int64{1, 2, 3, 4}
	serial := SeedStudy(CBRUniform, 0.5, seeds, withWorkers(base, 1))
	parallel := SeedStudy(CBRUniform, 0.5, seeds, withWorkers(base, 8))
	pairs := []struct {
		name string
		a, b float64
	}{
		{"true F mean", serial.TrueF.Mean(), parallel.TrueF.Mean()},
		{"est F mean", serial.EstF.Mean(), parallel.EstF.Mean()},
		{"true D mean", serial.TrueD.Mean(), parallel.TrueD.Mean()},
		{"est D mean", serial.EstD.Mean(), parallel.EstD.Mean()},
		{"est F sd", serial.EstF.StdDev(), parallel.EstF.StdDev()},
	}
	for _, p := range pairs {
		if !bitsEqual(p.a, p.b) {
			t.Errorf("%s: %v (workers=1) != %v (workers=8)", p.name, p.a, p.b)
		}
	}
}

// TestRepeatedRunsIdentical guards the weaker but necessary property that
// the same config run twice on the same pool reproduces itself (no state
// leaks between cells through the pool or package globals).
func TestRepeatedRunsIdentical(t *testing.T) {
	cfg := withWorkers(RunConfig{Horizon: 45 * time.Second, Seed: 9}, 4)
	first := Table4(cfg)
	second := Table4(cfg)
	if first.String() != second.String() {
		t.Errorf("same config diverged across runs:\n%s\nvs\n%s", first, second)
	}
}
