package lab

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/capture"
	"badabing/internal/probe"
)

// QueueSeries is a queue-length time series with the loss episodes that
// occurred in the window (Figures 4, 5, 6).
type QueueSeries struct {
	Title    string
	From, To time.Duration
	Samples  []capture.QueueSample
	Episodes []capture.Episode
	QueueCap time.Duration
}

// String renders a sparkline of queue occupancy plus episode annotations.
func (q QueueSeries) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%v..%v, queue capacity %v]\n", q.Title, q.From, q.To, q.QueueCap)
	levels := []rune(" .:-=+*#%@")
	const width = 100
	if len(q.Samples) > 0 {
		bins := make([]time.Duration, width)
		span := q.To - q.From
		for _, s := range q.Samples {
			if s.T < q.From || s.T >= q.To {
				continue
			}
			i := int(int64(s.T-q.From) * int64(width) / int64(span))
			if s.Delay > bins[i] {
				bins[i] = s.Delay
			}
		}
		for _, d := range bins {
			lv := int(int64(d) * int64(len(levels)-1) / int64(q.QueueCap))
			if lv >= len(levels) {
				lv = len(levels) - 1
			}
			b.WriteRune(levels[lv])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "loss episodes in window: %d\n", len(q.Episodes))
	for _, e := range q.Episodes {
		fmt.Fprintf(&b, "  [%8.3fs .. %8.3fs]  duration %6.1fms  drops %d\n",
			e.Start.Seconds(), e.End.Seconds(), e.Duration().Seconds()*1000, e.Drops)
	}
	return b.String()
}

// queueFigure runs a scenario with queue sampling and extracts the
// [from,to) window of the series. The single run is still routed through
// the experiment engine so it honors the pool's timeout and cancellation.
func queueFigure(title string, sc Scenario, cfg RunConfig, from, to time.Duration) QueueSeries {
	cfg.applyDefaults()
	if cfg.SampleHorizon == 0 {
		cfg.SampleHorizon = to
	}
	if cfg.Horizon < to {
		cfg.Horizon = to
	}
	out := runCells(cfg, []cell[QueueSeries]{{
		key: fmt.Sprintf("queuefig/%v/%v-%v/seed=%d", sc, from, to, cfg.Seed),
		run: func() QueueSeries { return queueWindow(title, sc, cfg, from, to) },
	}})
	return out[0]
}

func queueWindow(title string, sc Scenario, cfg RunConfig, from, to time.Duration) QueueSeries {
	p := NewPath(sc, cfg)
	p.Run(cfg.Horizon)
	out := QueueSeries{
		Title:    title,
		From:     from,
		To:       to,
		QueueCap: p.D.Bottleneck.Rate().TxTime(p.D.Bottleneck.QueueCap()),
	}
	for _, s := range p.Mon.Samples() {
		if s.T >= from && s.T < to {
			out.Samples = append(out.Samples, s)
		}
	}
	for _, e := range p.Mon.Episodes() {
		if e.End >= from && e.Start < to {
			out.Episodes = append(out.Episodes, e)
		}
	}
	return out
}

// Figure4 reproduces Figure 4: queue-length time series for the infinite
// TCP scenario (synchronized congestion-avoidance sawtooth).
func Figure4(cfg RunConfig) QueueSeries {
	return queueFigure("Figure 4: queue length, 40 infinite TCP sources",
		InfiniteTCP, cfg, 10*time.Second, 20*time.Second)
}

// Figure5 reproduces Figure 5: queue-length series with randomly spaced,
// constant-duration loss episodes.
func Figure5(cfg RunConfig) QueueSeries {
	return queueFigure("Figure 5: queue length, CBR with constant-duration episodes",
		CBRUniform, cfg, 0, 40*time.Second)
}

// Figure6 reproduces Figure 6: queue-length series under Harpoon web-like
// traffic, with loss episodes marked.
func Figure6(cfg RunConfig) QueueSeries {
	return queueFigure("Figure 6: queue length, Harpoon web-like traffic",
		Web, cfg, 0, 60*time.Second)
}

// Fig7Point is one point of Figure 7.
type Fig7Point struct {
	Bunch  int     // packets per probe
	PNoTCP float64 // P(no loss | probe during episode), infinite TCP
	PNoCBR float64 // same, constant-bit-rate traffic
}

// Fig7Result renders like Figure 7.
type Fig7Result struct {
	Points []Fig7Point
}

func (f Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 7: P(probe of N packets sees no loss during a loss episode)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "bunch length\tinfinite TCP\tCBR")
	for _, pt := range f.Points {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\n", pt.Bunch, pt.PNoTCP, pt.PNoCBR)
	}
	w.Flush()
	return b.String()
}

// probeMissRate runs a fixed-interval prober of the given bunch length on
// sc and returns the fraction of probes sent during a true loss episode
// that nevertheless lost no packets.
func probeMissRate(sc Scenario, cfg RunConfig, bunch int) float64 {
	path := NewPath(sc, cfg)
	f := probe.StartFixed(path.Sim, path.D, probeFlowID, probe.FixedConfig{
		Interval:        10 * time.Millisecond,
		PacketsPerProbe: bunch,
		Horizon:         cfg.Horizon,
	})
	path.Run(cfg.Horizon)
	eps := path.Mon.Episodes()
	inEpisode := func(t time.Duration) bool {
		for _, e := range eps {
			if t >= e.Start && t <= e.End {
				return true
			}
		}
		return false
	}
	total, clean := 0, 0
	for _, o := range f.Results() {
		if !inEpisode(o.T) {
			continue
		}
		total++
		if o.Lost == 0 {
			clean++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(clean) / float64(total)
}

// Figure7 reproduces Figure 7 for bunch lengths 1..10 on the infinite TCP
// and CBR scenarios: 20 independent cells on the experiment engine.
func Figure7(cfg RunConfig) Fig7Result {
	cfg.applyDefaults()
	var cells []cell[float64]
	for bunch := 1; bunch <= 10; bunch++ {
		for _, sc := range []Scenario{InfiniteTCP, CBRUniform} {
			bunch, sc := bunch, sc
			cells = append(cells, cell[float64]{
				key: fmt.Sprintf("fig7/%v/bunch=%d/seed=%d/h=%v", sc, bunch, cfg.Seed, cfg.Horizon),
				run: func() float64 { return probeMissRate(sc, cfg, bunch) },
			})
		}
	}
	rates := runCells(cfg, cells)
	var out Fig7Result
	for bunch := 1; bunch <= 10; bunch++ {
		out.Points = append(out.Points, Fig7Point{
			Bunch:  bunch,
			PNoTCP: rates[(bunch-1)*2],
			PNoCBR: rates[(bunch-1)*2+1],
		})
	}
	return out
}

// Fig8Series is the queue series around a loss episode for one probe size.
type Fig8Series struct {
	Bunch     int // 0 = no probe traffic
	Series    QueueSeries
	ProbePkts int
	ProbeLost int
}

// Fig8Result renders like Figure 8: the impact of probe trains on queue
// dynamics during a loss episode.
type Fig8Result struct {
	Variants []Fig8Series
}

func (f Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 8: queue behavior during a loss episode vs probe train length")
	for _, v := range f.Variants {
		label := "no probe traffic"
		if v.Bunch > 0 {
			label = fmt.Sprintf("probe train of %d packets (sent %d, lost %d)",
				v.Bunch, v.ProbePkts, v.ProbeLost)
		}
		fmt.Fprintf(&b, "-- %s\n%s", label, v.Series.String())
	}
	return b.String()
}

// Figure8 reproduces Figure 8: infinite TCP traffic observed with no
// probes, 3-packet probes, and 10-packet probes at 10 ms intervals.
func Figure8(cfg RunConfig) Fig8Result {
	cfg.applyDefaults()
	var cells []cell[Fig8Series]
	for _, bunch := range []int{0, 3, 10} {
		bunch := bunch
		cells = append(cells, cell[Fig8Series]{
			key: fmt.Sprintf("fig8/bunch=%d/seed=%d/h=%v", bunch, cfg.Seed, cfg.Horizon),
			run: func() Fig8Series { return figure8Variant(cfg, bunch) },
		})
	}
	return Fig8Result{Variants: runCells(cfg, cells)}
}

// figure8Variant runs one probe-train variant of Figure 8.
func figure8Variant(cfg RunConfig, bunch int) Fig8Series {
	runCfg := cfg
	runCfg.SampleHorizon = cfg.Horizon
	path := NewPath(InfiniteTCP, runCfg)
	var fx *probe.Fixed
	if bunch > 0 {
		fx = probe.StartFixed(path.Sim, path.D, probeFlowID, probe.FixedConfig{
			Interval:        10 * time.Millisecond,
			PacketsPerProbe: bunch,
			Horizon:         cfg.Horizon,
		})
	}
	path.Run(cfg.Horizon)
	eps := path.Mon.Episodes()
	// Window: 200 ms around the first episode after warmup.
	from, to := 10*time.Second, 11*time.Second
	for _, e := range eps {
		if e.Start > 10*time.Second {
			from = e.Start - 50*time.Millisecond
			to = e.End + 150*time.Millisecond
			break
		}
	}
	qs := QueueSeries{
		Title:    fmt.Sprintf("queue around episode (bunch=%d)", bunch),
		From:     from,
		To:       to,
		QueueCap: path.D.Bottleneck.Rate().TxTime(path.D.Bottleneck.QueueCap()),
	}
	for _, s := range path.Mon.Samples() {
		if s.T >= from && s.T < to {
			qs.Samples = append(qs.Samples, s)
		}
	}
	for _, e := range eps {
		if e.End >= from && e.Start < to {
			qs.Episodes = append(qs.Episodes, e)
		}
	}
	v := Fig8Series{Bunch: bunch, Series: qs}
	if fx != nil {
		for _, o := range fx.Results() {
			v.ProbePkts += o.Sent
			v.ProbeLost += o.Lost
		}
	}
	return v
}

// Fig9Row is one row of a Figure 9 sensitivity sweep: estimated loss
// frequency for each parameter value at one probe rate.
type Fig9Row struct {
	P     float64
	TrueF float64
	EstF  []float64
}

// Fig9Result renders like Figure 9(a) or 9(b).
type Fig9Result struct {
	Title  string
	Param  string
	Values []string
	Rows   []Fig9Row
}

func (f Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, f.Title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "p\ttrue freq")
	for _, v := range f.Values {
		fmt.Fprintf(w, "\t%s=%s", f.Param, v)
	}
	fmt.Fprintln(w)
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%.1f\t%.4f", r.P, r.TrueF)
		for _, e := range r.EstF {
			fmt.Fprintf(w, "\t%.4f", e)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// figure9 fans one sensitivity sweep (every p × marker-variant pair is an
// independent cell) out on the experiment engine and folds the results
// back into rows ordered by p.
func figure9(cfg RunConfig, out Fig9Result, markers []badabing.MarkerConfig) Fig9Result {
	var cells []cell[SweepRow]
	for _, p := range DefaultPSweep {
		for vi, mk := range markers {
			cells = append(cells, cell[SweepRow]{
				key: fmt.Sprintf("fig9/%s=%s/p=%.1f/seed=%d/h=%v",
					out.Param, out.Values[vi], p, cfg.Seed, cfg.Horizon),
				run: func() SweepRow { return badabingRun(CBRUniform, cfg, p, &mk, false) },
			})
		}
	}
	rows := runCells(cfg, cells)
	i := 0
	for _, p := range DefaultPSweep {
		row := Fig9Row{P: p}
		for range markers {
			r := rows[i]
			i++
			row.TrueF = r.TrueF
			row.EstF = append(row.EstF, r.EstF)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Figure9a reproduces Figure 9(a): estimated loss frequency over a range
// of α with τ fixed at 80 ms, CBR traffic.
func Figure9a(cfg RunConfig) Fig9Result {
	cfg.applyDefaults()
	out := Fig9Result{
		Title:  "Figure 9(a): frequency sensitivity to alpha (tau = 80ms)",
		Param:  "alpha",
		Values: []string{"0.05", "0.10", "0.20"},
	}
	var markers []badabing.MarkerConfig
	for _, a := range []float64{0.05, 0.10, 0.20} {
		markers = append(markers, badabing.MarkerConfig{Alpha: a, Tau: 80 * time.Millisecond})
	}
	return figure9(cfg, out, markers)
}

// Figure9b reproduces Figure 9(b): estimated loss frequency over a range
// of τ with α fixed at 0.1, CBR traffic.
func Figure9b(cfg RunConfig) Fig9Result {
	cfg.applyDefaults()
	out := Fig9Result{
		Title:  "Figure 9(b): frequency sensitivity to tau (alpha = 0.1)",
		Param:  "tau",
		Values: []string{"20ms", "40ms", "80ms"},
	}
	var markers []badabing.MarkerConfig
	for _, tau := range []time.Duration{20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond} {
		markers = append(markers, badabing.MarkerConfig{Alpha: 0.1, Tau: tau})
	}
	return figure9(cfg, out, markers)
}
