package lab

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"badabing/internal/stats"
)

// SeedStudy quantifies run-to-run variability: the same measurement
// repeated over several workload seeds, reporting the spread of both the
// true characteristics and the estimates. The paper reports single runs
// per cell; this study (an extension) shows how much of the
// estimate-vs-truth gap is sampling noise rather than bias.
type SeedStudyResult struct {
	Scenario Scenario
	P        float64
	Seeds    []int64
	TrueF    stats.Summary
	EstF     stats.Summary
	TrueD    stats.Summary // seconds
	EstD     stats.Summary // seconds
	// RelFreqErr and RelDurErr summarize per-seed relative errors.
	RelFreqErr stats.Summary
	RelDurErr  stats.Summary
}

func (r SeedStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Seed study: %s, p=%.1f, %d seeds\n", r.Scenario, r.P, len(r.Seeds))
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "quantity\tmean\tσ\tmin\tmax")
	row := func(name string, s stats.Summary) {
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.4f\t%.4f\n", name, s.Mean(), s.StdDev(), s.Min(), s.Max())
	}
	row("true frequency", r.TrueF)
	row("est frequency", r.EstF)
	row("true duration (s)", r.TrueD)
	row("est duration (s)", r.EstD)
	row("rel freq error", r.RelFreqErr)
	row("rel dur error", r.RelDurErr)
	w.Flush()
	return b.String()
}

// SeedStudy runs the BADABING measurement on sc at probability p once per
// seed; every seed is an independent cell on the experiment engine, and
// the per-seed rows are folded into summaries in seed order so the spread
// statistics are identical at any worker count.
func SeedStudy(sc Scenario, p float64, seeds []int64, cfg RunConfig) SeedStudyResult {
	cfg.applyDefaults()
	res := SeedStudyResult{Scenario: sc, P: p, Seeds: seeds}
	cells := make([]cell[SweepRow], len(seeds))
	for i, seed := range seeds {
		cells[i] = cell[SweepRow]{
			key: fmt.Sprintf("seedstudy/%v/p=%.1f/seed=%d/h=%v", sc, p, seed, cfg.Horizon),
			run: func() SweepRow {
				runCfg := cfg
				runCfg.Seed = seed
				return badabingRun(sc, runCfg, p, nil, false)
			},
		}
	}
	for _, row := range runCells(cfg, cells) {
		res.TrueF.Add(row.TrueF)
		res.EstF.Add(row.EstF)
		res.TrueD.Add(row.TrueD)
		res.EstD.Add(row.EstD)
		if row.TrueF > 0 {
			res.RelFreqErr.Add(absf(row.EstF-row.TrueF) / row.TrueF)
		}
		if row.TrueD > 0 {
			res.RelDurErr.Add(absf(row.EstD-row.TrueD) / row.TrueD)
		}
	}
	return res
}
