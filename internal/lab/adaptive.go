package lab

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/capture"
	"badabing/internal/probe"
	"badabing/internal/simnet"
	"badabing/internal/traffic"
)

// AdaptiveStudy quantifies what §8-style adaptivity buys. Because the
// boundary-evidence rate scales with p while time-to-converge scales with
// 1/p, the total probe *cost* of reaching a validated estimate is roughly
// p-invariant — what differs is whether a given fixed rate converges
// within the time budget at all. §7 says choosing p requires a prior
// estimate of the loss-event rate L; the adaptive controller removes that
// requirement: it converges wherever some fixed rate would have, at a
// bounded escalation premium, without knowing L in advance. The study
// compares fixed high, fixed low and adaptive probing on a lossy and a
// quiet path under one time budget.
type AdaptiveStudyRow struct {
	Path      string
	Strategy  string
	Packets   int
	Converged bool
	// FinalP is the probe probability at the end (for the adaptive
	// strategy, where it escalated to; fixed strategies report their
	// constant).
	FinalP float64
	EstF   float64
	TrueF  float64
}

// AdaptiveStudyResult renders the comparison.
type AdaptiveStudyResult struct {
	Rows []AdaptiveStudyRow
}

func (r AdaptiveStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Adaptive extension: probe cost to a validated estimate")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "path\tstrategy\tprobe pkts\tconverged\tfinal p\test freq\ttrue freq")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%.2f\t%.4f\t%.4f\n",
			row.Path, row.Strategy, row.Packets, row.Converged, row.FinalP, row.EstF, row.TrueF)
	}
	w.Flush()
	return b.String()
}

// adaptivePath describes one workload regime for the study.
type adaptivePath struct {
	name    string
	spacing time.Duration
}

// AdaptiveStudy runs the comparison. cfg.Horizon is the per-strategy
// virtual-time probe budget.
func AdaptiveStudy(cfg RunConfig) AdaptiveStudyResult {
	cfg.applyDefaults()
	paths := []adaptivePath{
		{"lossy (episodes ≈4s)", 4 * time.Second},
		{"quiet (episodes ≈45s)", 45 * time.Second},
	}
	var cells []cell[AdaptiveStudyRow]
	for _, path := range paths {
		for _, strat := range []string{"fixed p=0.9", "fixed p=0.1", "adaptive"} {
			cells = append(cells, cell[AdaptiveStudyRow]{
				key: fmt.Sprintf("adaptivestudy/%s/%s/seed=%d/h=%v", path.name, strat, cfg.Seed, cfg.Horizon),
				run: func() AdaptiveStudyRow { return runAdaptiveStrategy(path, strat, cfg) },
			})
		}
	}
	return AdaptiveStudyResult{Rows: runCells(cfg, cells)}
}

// monCriteria is the convergence bar shared by all strategies.
func monCriteria() badabing.MonitorConfig {
	return badabing.MonitorConfig{
		MinExperiments: 1000,
		Criteria:       badabing.Criteria{MinBoundarySamples: 20},
	}
}

// newStudyPath builds a CBR-episode path with the given mean spacing.
func newStudyPath(path adaptivePath, cfg RunConfig) (*simnet.Sim, *simnet.Dumbbell, *capture.Monitor) {
	sim := simnet.New()
	d := simnet.NewDumbbell(sim, simnet.DumbbellConfig{})
	ids := traffic.NewIDSpace(1000)
	traffic.NewEpisodeInjector(sim, d, ids, traffic.EpisodeInjectorConfig{
		MeanSpacing:     path.spacing,
		Overload:        4,
		BaseUtilization: 0.25,
		Seed:            cfg.Seed,
	})
	mon := capture.Attach(sim, d.Bottleneck, capture.Config{})
	return sim, d, mon
}

const studyRoundSlots = 6000 // 30 s at the default slot

func runAdaptiveStrategy(path adaptivePath, strat string, cfg RunConfig) AdaptiveStudyRow {
	slot := badabing.DefaultSlot
	row := AdaptiveStudyRow{Path: path.name, Strategy: strat}
	sim, d, mon := newStudyPath(path, cfg)

	if strat == "adaptive" {
		ctrl := badabing.NewAdaptive(badabing.AdaptiveConfig{
			RoundSlots: studyRoundSlots,
			MaxRounds:  int(cfg.Horizon / (studyRoundSlots * slot)),
			Monitor:    monCriteria(),
		})
		// cursor tracks the absolute slot index; each round leaves a
		// small drain gap so in-flight probes land before the next
		// round's earliest slot.
		const drainSlots = 300 // 1.5 s at 5 ms
		cursor := int64(0)
		base := cfg.Seed + 500
		_ = ctrl.RunRounds(base, func(round int, plans []badabing.Plan, p float64) (badabing.Counts, error) {
			shifted := make([]badabing.Plan, len(plans))
			for i, pl := range plans {
				shifted[i] = badabing.Plan{Slot: cursor + pl.Slot, Probes: pl.Probes}
			}
			bb := probe.StartBadabing(sim, d, probeFlowID+uint64(base+int64(round)), probe.BadabingConfig{
				Plans:  shifted,
				Marker: badabing.RecommendedMarker(p, slot),
			})
			cursor += studyRoundSlots
			sim.Run(time.Duration(cursor) * slot) // round ends
			cursor += drainSlots
			sim.Run(time.Duration(cursor) * slot) // in-flight probes land
			sent, _ := bb.PacketCounts()
			row.Packets += sent
			return bb.Counts(), nil
		})
		row.Converged = ctrl.Converged()
		row.FinalP = ctrl.P()
		row.EstF = ctrl.Report().Frequency
		row.TrueF = mon.Truth(time.Duration(cursor)*slot, slot).Frequency
		return row
	}

	pFixed := 0.9
	if strat == "fixed p=0.1" {
		pFixed = 0.1
	}
	plans := badabing.MustSchedule(badabing.ScheduleConfig{
		P: pFixed, N: int64(cfg.Horizon / slot), Improved: true, Seed: cfg.Seed + 500,
	})
	bb := probe.StartBadabing(sim, d, probeFlowID, probe.BadabingConfig{
		Plans:  plans,
		Marker: badabing.RecommendedMarker(pFixed, slot),
	})
	// Advance round by round against the same convergence bar; probes
	// scheduled past the stopping time are never sent, so PacketCounts
	// reflects the true cost.
	mon2 := badabing.NewMonitor(monCriteria())
	elapsed := time.Duration(0)
	for elapsed < cfg.Horizon {
		elapsed += studyRoundSlots * slot
		sim.Run(elapsed + time.Second)
		mon2.Acc = badabing.Accumulator{Slot: slot}
		mon2.Acc.Merge(bb.Counts())
		if mon2.Converged() {
			row.Converged = true
			break
		}
	}
	sent, _ := bb.PacketCounts()
	row.Packets = sent
	row.FinalP = pFixed
	row.EstF = mon2.Report().Frequency
	row.TrueF = mon.Truth(elapsed, slot).Frequency
	return row
}
