package lab

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/capture"
	"badabing/internal/probe"
	"badabing/internal/simnet"
	"badabing/internal/traffic"
)

// MultiHop is an extension experiment beyond the paper's single-bottleneck
// evaluation (its §6.2 names "more complex multi-hop scenarios" as future
// work): a chain of hops, each independently congested by its own
// episodic cross traffic, measured end to end with BADABING. Ground truth
// for the end-to-end path is the union of the per-hop congested slots —
// a probe observes congestion if any hop's queue was overflowing.
type MultiHopResult struct {
	Hops    int
	PerHopF []float64 // per-hop true congestion frequency
	TrueF   float64   // union frequency
	TrueD   float64   // mean duration of union episodes (seconds)
	EstF    float64
	EstD    float64
	Report  badabing.Report
}

func (r MultiHopResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-hop extension: %d independently congested hops, end-to-end BADABING\n", r.Hops)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	for i, f := range r.PerHopF {
		fmt.Fprintf(w, "hop %d true freq\t%.4f\n", i, f)
	}
	fmt.Fprintf(w, "path (union) true freq\t%.4f\n", r.TrueF)
	fmt.Fprintf(w, "BADABING freq\t%.4f\n", r.EstF)
	fmt.Fprintf(w, "path true duration\t%.3fs\n", r.TrueD)
	fmt.Fprintf(w, "BADABING duration\t%.3fs\n", r.EstD)
	w.Flush()
	return b.String()
}

// MultiHop runs the extension experiment: hops chained links, each with
// its own episode injector (episodes offset in character per hop so the
// union is nontrivial), probed end to end at p = 0.3. The chain is one
// simulator, so the experiment is a single cell on the engine (it still
// honors the pool's timeout and cancellation).
func MultiHop(hops int, cfg RunConfig) MultiHopResult {
	cfg.applyDefaults()
	out := runCells(cfg, []cell[MultiHopResult]{{
		key: fmt.Sprintf("multihop/hops=%d/seed=%d/h=%v", hops, cfg.Seed, cfg.Horizon),
		run: func() MultiHopResult { return multiHopRun(hops, cfg) },
	}})
	return out[0]
}

func multiHopRun(hops int, cfg RunConfig) MultiHopResult {
	sim := simnet.New()
	ch := simnet.NewChain(sim, simnet.ChainConfig{Hops: hops})
	ids := traffic.NewIDSpace(1000)

	mons := make([]*capture.Monitor, hops)
	for i := 0; i < hops; i++ {
		mons[i] = capture.Attach(sim, ch.Hops[i], capture.Config{})
		// Distinct episode character per hop: durations and spacing
		// grow with depth; every hop's cross traffic is local to it.
		inj := traffic.EpisodeInjectorConfig{
			Durations:       []time.Duration{time.Duration(60+30*i) * time.Millisecond},
			MeanSpacing:     time.Duration(8+4*i) * time.Second,
			Overload:        4,
			BaseUtilization: 0.25,
			Seed:            cfg.Seed + int64(i),
		}
		startHopInjector(sim, ch, i, ids, inj)
	}

	slot := badabing.DefaultSlot
	plans := badabing.MustSchedule(badabing.ScheduleConfig{
		P: 0.3, N: int64(cfg.Horizon / slot), Improved: true, Seed: cfg.Seed + 99,
	})
	bb := probe.StartBadabingAt(sim, ch.Entry(), ch.FwdDemux, probeFlowID, probe.BadabingConfig{
		Plans:  plans,
		Marker: badabing.RecommendedMarker(0.3, slot),
	})
	sim.Run(cfg.Horizon + time.Second)

	res := MultiHopResult{Hops: hops, Report: bb.Report()}
	res.EstF = res.Report.Frequency
	res.EstD = res.Report.Duration

	// Union ground truth across hops.
	n := int(cfg.Horizon / slot)
	union := make([]bool, n)
	for _, m := range mons {
		bits := m.CongestedSlots(cfg.Horizon, slot)
		truth := m.Truth(cfg.Horizon, slot)
		res.PerHopF = append(res.PerHopF, truth.Frequency)
		for j, b := range bits {
			if b {
				union[j] = true
			}
		}
	}
	congested, episodes, runLen := 0, 0, 0
	var totalRun int
	for j := 0; j < n; j++ {
		if union[j] {
			congested++
			runLen++
		} else if runLen > 0 {
			episodes++
			totalRun += runLen
			runLen = 0
		}
	}
	if runLen > 0 {
		episodes++
		totalRun += runLen
	}
	res.TrueF = float64(congested) / float64(n)
	if episodes > 0 {
		res.TrueD = float64(totalRun) / float64(episodes) * slot.Seconds()
	}
	return res
}

// startHopInjector places an injector's cross traffic onto hop i only:
// its flows are registered on that hop's demux, so they exit the path
// there instead of loading downstream hops.
func startHopInjector(sim *simnet.Sim, ch *simnet.Chain, hop int, ids *traffic.IDSpace, cfg traffic.EpisodeInjectorConfig) {
	// The injector allocates flow ids internally; register a sink for
	// a generous id range on the hop demux via fallback-free explicit
	// registration: we wrap the id space so every id the injector takes
	// is also registered locally.
	local := &hopLocalIDs{inner: ids, demux: ch.HopDemux[hop]}
	traffic.NewEpisodeInjectorAt(sim, ch.Hops[hop], local, cfg)
}

// hopLocalIDs allocates flow ids and registers each on a hop-local demux
// sink, so the flows terminate at that hop.
type hopLocalIDs struct {
	inner *traffic.IDSpace
	demux *simnet.Demux
}

// Next implements the injector's id source.
func (h *hopLocalIDs) Next() uint64 {
	id := h.inner.Next()
	h.demux.Register(id, simnet.ReceiverFunc(func(*simnet.Packet) {}))
	return id
}
