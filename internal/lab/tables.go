package lab

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/probe"
)

// LossRow is one line of a ZING-comparison table (Tables 1–3): a tool's
// loss-frequency and loss-episode-duration estimate, or the true values.
type LossRow struct {
	Name      string
	Frequency float64
	DurMean   float64 // seconds
	DurSD     float64 // seconds
}

// LossTable renders like the paper's Tables 1–3.
type LossTable struct {
	Title string
	Rows  []LossRow
}

func (t LossTable) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, t.Title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "\tfrequency\tduration µ (σ) seconds")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s\t%.4f\t%.3f (%.3f)\n", r.Name, r.Frequency, r.DurMean, r.DurSD)
	}
	w.Flush()
	return b.String()
}

// zingTable runs the three-row ZING experiment (true values, 10 Hz/256 B,
// 20 Hz/64 B) on the given scenario. Each tool run uses its own instance
// of the path so probe load does not compound, as in the paper's separate
// tests; the runs are independent cells on the experiment engine.
func zingTable(title string, sc Scenario, cfg RunConfig) LossTable {
	cfg.applyDefaults()
	t := LossTable{Title: title}

	type zspec struct {
		name string
		mean time.Duration
		size int
	}
	specs := []zspec{
		{"ZING (10Hz)", 100 * time.Millisecond, 256},
		{"ZING (20Hz)", 50 * time.Millisecond, 64},
	}

	type zrow struct {
		truth LossRow
		tool  LossRow
	}
	cells := make([]cell[zrow], len(specs))
	for i, spec := range specs {
		i, spec := i, spec
		cells[i] = cell[zrow]{
			key: fmt.Sprintf("zing/%v/%s/seed=%d/h=%v", sc, spec.name, cfg.Seed, cfg.Horizon),
			run: func() zrow {
				p := NewPath(sc, cfg)
				z := probe.StartZing(p.Sim, p.D, probeFlowID, probe.ZingConfig{
					Mean:       spec.mean,
					PacketSize: spec.size,
					Horizon:    cfg.Horizon,
					Seed:       cfg.Seed + int64(i),
				})
				p.Run(cfg.Horizon)
				truth := p.Mon.Truth(cfg.Horizon, badabing.DefaultSlot)
				rep := z.Report()
				return zrow{
					truth: LossRow{
						Name:      "true values",
						Frequency: truth.Frequency,
						DurMean:   truth.Duration.Mean(),
						DurSD:     truth.Duration.StdDev(),
					},
					tool: LossRow{
						Name:      spec.name,
						Frequency: rep.Frequency,
						DurMean:   rep.Duration.Mean(),
						DurSD:     rep.Duration.StdDev(),
					},
				}
			},
		}
	}
	rows := runCells(cfg, cells)
	for i, r := range rows {
		if i == 0 {
			t.Rows = append(t.Rows, r.truth)
		}
		t.Rows = append(t.Rows, r.tool)
	}
	return t
}

// Table1 reproduces Table 1: ZING with 40 infinite TCP sources.
func Table1(cfg RunConfig) LossTable {
	return zingTable("Table 1: ZING with infinite TCP sources", InfiniteTCP, cfg)
}

// Table2 reproduces Table 2: ZING with randomly spaced, constant-duration
// loss episodes.
func Table2(cfg RunConfig) LossTable {
	return zingTable("Table 2: ZING with randomly spaced, constant duration loss episodes", CBRUniform, cfg)
}

// Table3 reproduces Table 3: ZING with Harpoon web-like traffic.
func Table3(cfg RunConfig) LossTable {
	return zingTable("Table 3: ZING with Harpoon web-like traffic", Web, cfg)
}

// SweepRow is one line of a BADABING p-sweep table (Tables 4–6).
type SweepRow struct {
	P     float64
	TrueF float64
	EstF  float64
	TrueD float64 // seconds
	EstD  float64 // seconds
}

// SweepTable renders like the paper's Tables 4–6.
type SweepTable struct {
	Title string
	Rows  []SweepRow
}

func (t SweepTable) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, t.Title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "p\ttrue freq\tBADABING freq\ttrue dur (s)\tBADABING dur (s)")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%.1f\t%.4f\t%.4f\t%.3f\t%.3f\n", r.P, r.TrueF, r.EstF, r.TrueD, r.EstD)
	}
	w.Flush()
	return b.String()
}

// DefaultPSweep is the probe-probability sweep of Tables 4–6.
var DefaultPSweep = []float64{0.1, 0.3, 0.5, 0.7, 0.9}

// badabingRun performs one BADABING measurement on a fresh path and
// returns the sweep row. Marker parameters follow §6.2 unless overridden.
func badabingRun(sc Scenario, cfg RunConfig, p float64, marker *badabing.MarkerConfig, improved bool) SweepRow {
	cfg.applyDefaults()
	path := NewPath(sc, cfg)
	slot := badabing.DefaultSlot
	n := int64(cfg.Horizon / slot)
	plans := badabing.MustSchedule(badabing.ScheduleConfig{
		P: p, N: n, Improved: improved, Seed: cfg.Seed + 100,
	})
	mk := badabing.RecommendedMarker(p, slot)
	if marker != nil {
		mk = *marker
	}
	bb := probe.StartBadabing(path.Sim, path.D, probeFlowID, probe.BadabingConfig{
		Plans:  plans,
		Slot:   slot,
		Marker: mk,
	})
	path.Run(cfg.Horizon)
	truth := path.Mon.Truth(cfg.Horizon, slot)
	rep := bb.Report()
	return SweepRow{
		P:     p,
		TrueF: truth.Frequency,
		EstF:  rep.Frequency,
		TrueD: truth.Duration.Mean(),
		EstD:  rep.Duration,
	}
}

func sweepTable(title string, sc Scenario, cfg RunConfig) SweepTable {
	cfg.applyDefaults()
	cells := make([]cell[SweepRow], len(DefaultPSweep))
	for i, p := range DefaultPSweep {
		p := p
		cells[i] = cell[SweepRow]{
			key: fmt.Sprintf("sweep/%v/p=%.1f/seed=%d/h=%v", sc, p, cfg.Seed, cfg.Horizon),
			run: func() SweepRow { return badabingRun(sc, cfg, p, nil, false) },
		}
	}
	return SweepTable{Title: title, Rows: runCells(cfg, cells)}
}

// Table4 reproduces Table 4: BADABING loss estimates for constant-bit-rate
// traffic with loss episodes of uniform duration.
func Table4(cfg RunConfig) SweepTable {
	return sweepTable("Table 4: BADABING estimates, CBR traffic, uniform 68ms episodes", CBRUniform, cfg)
}

// Table5 reproduces Table 5: BADABING with 50/100/150 ms episodes.
func Table5(cfg RunConfig) SweepTable {
	return sweepTable("Table 5: BADABING estimates, CBR traffic, 50/100/150ms episodes", CBRMixed, cfg)
}

// Table6 reproduces Table 6: BADABING with Harpoon web-like traffic.
func Table6(cfg RunConfig) SweepTable {
	return sweepTable("Table 6: BADABING estimates, Harpoon web-like traffic", Web, cfg)
}

// Table7Row is one line of Table 7: the N/τ trade-off at p = 0.1.
type Table7Row struct {
	N     int64
	Tau   time.Duration
	TrueF float64
	EstF  float64
	TrueD float64
	EstD  float64
}

// Table7Result renders like the paper's Table 7.
type Table7Result struct {
	Rows []Table7Row
}

func (t Table7Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 7: p=0.1 trade-off between N and tau (CBR uniform episodes)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "N\ttau (ms)\ttrue freq\tBADABING freq\ttrue dur (s)\tBADABING dur (s)")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%d\t%d\t%.4f\t%.4f\t%.3f\t%.3f\n",
			r.N, r.Tau.Milliseconds(), r.TrueF, r.EstF, r.TrueD, r.EstD)
	}
	w.Flush()
	return b.String()
}

// Table7 reproduces Table 7. The paper's N values (180 000 and 720 000
// slots = 900 s and 3 600 s) scale with cfg.Horizon: the short row uses
// the horizon as-is, the long row 4× that.
func Table7(cfg RunConfig) Table7Result {
	cfg.applyDefaults()
	const p = 0.1
	var cells []cell[Table7Row]
	for _, mult := range []int{1, 4} {
		for _, tau := range []time.Duration{40 * time.Millisecond, 80 * time.Millisecond} {
			mult, tau := mult, tau
			cells = append(cells, cell[Table7Row]{
				key: fmt.Sprintf("table7/mult=%d/tau=%v/seed=%d/h=%v", mult, tau, cfg.Seed, cfg.Horizon),
				run: func() Table7Row {
					runCfg := cfg
					runCfg.Horizon = cfg.Horizon * time.Duration(mult)
					mk := badabing.RecommendedMarker(p, badabing.DefaultSlot)
					mk.Tau = tau
					row := badabingRun(CBRUniform, runCfg, p, &mk, false)
					return Table7Row{
						N:     int64(runCfg.Horizon / badabing.DefaultSlot),
						Tau:   tau,
						TrueF: row.TrueF,
						EstF:  row.EstF,
						TrueD: row.TrueD,
						EstD:  row.EstD,
					}
				},
			})
		}
	}
	return Table7Result{Rows: runCells(cfg, cells)}
}

// Table8Row is one line of the tool-comparison table.
type Table8Row struct {
	Scenario string
	Tool     string
	TrueF    float64
	EstF     float64
	TrueD    float64
	EstD     float64
}

// Table8Result renders like the paper's Table 8.
type Table8Result struct {
	Rows []Table8Row
}

func (t Table8Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 8: BADABING vs ZING at matched probe load (≈876 kb/s)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "traffic\ttool\ttrue freq\tmeasured freq\ttrue dur (s)\tmeasured dur (s)")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s\t%s\t%.4f\t%.4f\t%.3f\t%.3f\n",
			r.Scenario, r.Tool, r.TrueF, r.EstF, r.TrueD, r.EstD)
	}
	w.Flush()
	return b.String()
}

// Table8 reproduces Table 8: BADABING at p = 0.3 against ZING whose
// Poisson rate matches BADABING's link load (600-byte packets at ≈180/s ≈
// 876 kb/s, ≈0.5% of the OC3).
func Table8(cfg RunConfig) Table8Result {
	cfg.applyDefaults()
	var cells []cell[Table8Row]
	for _, sc := range []Scenario{CBRUniform, Web} {
		sc := sc
		// BADABING at p=0.3.
		cells = append(cells, cell[Table8Row]{
			key: fmt.Sprintf("table8/%v/badabing/seed=%d/h=%v", sc, cfg.Seed, cfg.Horizon),
			run: func() Table8Row {
				row := badabingRun(sc, cfg, 0.3, nil, false)
				return Table8Row{
					Scenario: sc.String(), Tool: "BADABING",
					TrueF: row.TrueF, EstF: row.EstF, TrueD: row.TrueD, EstD: row.EstD,
				}
			},
		})
		// ZING at the same packet rate: p/slot × pkts-per-probe =
		// 0.3/5ms × 3 = 180 packets/s → mean interval 5.555 ms.
		cells = append(cells, cell[Table8Row]{
			key: fmt.Sprintf("table8/%v/zing/seed=%d/h=%v", sc, cfg.Seed, cfg.Horizon),
			run: func() Table8Row {
				path := NewPath(sc, cfg)
				slotF := float64(badabing.DefaultSlot)
				z := probe.StartZing(path.Sim, path.D, probeFlowID, probe.ZingConfig{
					Mean:       time.Duration(slotF / (0.3 * 3)),
					PacketSize: 600,
					Horizon:    cfg.Horizon,
					Seed:       cfg.Seed + 7,
				})
				path.Run(cfg.Horizon)
				truth := path.Mon.Truth(cfg.Horizon, badabing.DefaultSlot)
				rep := z.Report()
				return Table8Row{
					Scenario: sc.String(), Tool: "ZING",
					TrueF: truth.Frequency, EstF: rep.Frequency,
					TrueD: truth.Duration.Mean(), EstD: rep.Duration.Mean(),
				}
			},
		})
	}
	return Table8Result{Rows: runCells(cfg, cells)}
}
