// Package lab reproduces the paper's evaluation: it wires the simulated
// testbed (simnet dumbbell with the paper's parameters), a cross-traffic
// scenario, ground-truth capture and a prober into one experiment per
// table and figure of the paper. Each experiment function returns a result
// value whose String method renders the corresponding table or series.
package lab

import (
	"context"
	"time"

	"badabing/internal/capture"
	"badabing/internal/runner"
	"badabing/internal/simnet"
	"badabing/internal/traffic"
)

// Scenario selects a cross-traffic workload from §4.
type Scenario int

// Scenarios.
const (
	// InfiniteTCP is 40 long-lived TCP sources (Figure 4, Tables 1, 8).
	InfiniteTCP Scenario = iota
	// CBRUniform is constant-bit-rate traffic with ≈68 ms loss episodes
	// at exponential spacing, mean 10 s (Figure 5, Tables 2, 4, 7, 8).
	CBRUniform
	// CBRMixed draws episode durations from {50, 100, 150} ms (Table 5).
	CBRMixed
	// Web is the Harpoon-like web workload (Figure 6, Tables 3, 6, 8).
	Web
)

func (s Scenario) String() string {
	switch s {
	case InfiniteTCP:
		return "infinite TCP"
	case CBRUniform:
		return "CBR (uniform 68ms episodes)"
	case CBRMixed:
		return "CBR (50/100/150ms episodes)"
	case Web:
		return "Harpoon web-like"
	default:
		return "unknown"
	}
}

// RunConfig holds experiment-wide knobs.
type RunConfig struct {
	// Horizon is the measurement duration. The paper's runs are 900 s
	// (15 minutes); the benchmark harness uses shorter horizons to
	// keep `go test -bench` tractable. Default 900 s.
	Horizon time.Duration
	// Seed for all randomness in the run.
	Seed int64
	// QueueSampling turns on queue-length time-series capture up to
	// SampleHorizon (used by the figure experiments).
	SampleHorizon time.Duration
	// Pool is the parallel experiment engine the run's cells are
	// submitted to; nil uses a process-wide default with one worker per
	// CPU. Results are bit-identical for any worker count: every cell
	// owns its simulator and RNG streams.
	Pool *runner.Pool
	// Ctx cancels in-flight experiments (cells not yet started are
	// skipped); nil means context.Background.
	Ctx context.Context
}

func (c *RunConfig) applyDefaults() {
	if c.Horizon == 0 {
		c.Horizon = 900 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Path is an instantiated testbed: simulator, dumbbell, ground-truth
// monitor and a running cross-traffic scenario.
type Path struct {
	Sim *simnet.Sim
	D   *simnet.Dumbbell
	Mon *capture.Monitor
	IDs *traffic.IDSpace
}

// probeFlowID is reserved for measurement traffic; cross-traffic flow ids
// are allocated above it.
const probeFlowID = 7

// NewPath builds the testbed, attaches the monitor and starts the
// scenario's cross traffic.
func NewPath(sc Scenario, cfg RunConfig) *Path {
	cfg.applyDefaults()
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	mon := capture.Attach(s, d.Bottleneck, capture.Config{Horizon: cfg.SampleHorizon})
	ids := traffic.NewIDSpace(1000)
	p := &Path{Sim: s, D: d, Mon: mon, IDs: ids}
	switch sc {
	case InfiniteTCP:
		traffic.NewInfiniteTCP(s, d, ids, 40)
	case CBRUniform:
		traffic.NewEpisodeInjector(s, d, ids, traffic.EpisodeInjectorConfig{
			Durations:       []time.Duration{68 * time.Millisecond},
			MeanSpacing:     10 * time.Second,
			Overload:        4,
			BaseUtilization: 0.25,
			Seed:            cfg.Seed,
		})
	case CBRMixed:
		traffic.NewEpisodeInjector(s, d, ids, traffic.EpisodeInjectorConfig{
			Durations: []time.Duration{
				50 * time.Millisecond, 100 * time.Millisecond, 150 * time.Millisecond,
			},
			MeanSpacing:     10 * time.Second,
			Overload:        4,
			BaseUtilization: 0.25,
			Seed:            cfg.Seed,
		})
	case Web:
		traffic.NewWeb(s, d, ids, traffic.WebConfig{Seed: cfg.Seed})
	}
	return p
}

// Run advances the simulation to the horizon plus drain time, so that all
// in-flight packets settle before results are read.
func (p *Path) Run(horizon time.Duration) {
	p.Sim.Run(horizon + time.Second)
}
