package lab

import (
	"context"

	"badabing/internal/runner"
)

// defaultPool serves experiments whose RunConfig carries no pool: one
// worker per CPU, shared by the whole process so concurrently running
// experiments cannot oversubscribe the machine.
var defaultPool = runner.New(runner.Config{})

// pool returns the engine an experiment's cells are submitted to.
func (c RunConfig) pool() *runner.Pool {
	if c.Pool != nil {
		return c.Pool
	}
	return defaultPool
}

// context returns the cancellation context for the run.
func (c RunConfig) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// cell couples a stable descriptor with the closure computing one
// experiment cell. Cells must be independent: each builds its own Path
// (own Sim, own RNG streams), so a sweep's cells can run on any worker in
// any order and still produce identical results.
type cell[T any] struct {
	key string
	run func() T
}

// runCells fans the cells out on the config's pool and returns their
// values in submission order, regardless of completion order — the
// determinism contract every table and figure relies on. Cells skipped by
// cancellation or killed by the per-cell timeout yield zero values.
func runCells[T any](cfg RunConfig, cells []cell[T]) []T {
	rcells := make([]runner.Cell, len(cells))
	for i, c := range cells {
		run := c.run
		rcells[i] = runner.Cell{Key: c.key, Run: func(context.Context, int64) (any, error) {
			return run(), nil
		}}
	}
	results, _, _ := cfg.pool().Run(cfg.context(), rcells)
	out := make([]T, len(cells))
	for i, r := range results {
		if r.Err == nil {
			out[i] = r.Value.(T)
		}
	}
	return out
}
