package lab

import (
	"strings"
	"testing"
	"time"
)

// Short horizons keep the suite fast; the paper-scale runs are exercised
// via cmd/labsim and the benchmark harness.
var short = RunConfig{Horizon: 120 * time.Second, Seed: 1}

func TestTable1ZingUnderestimatesTCPLoss(t *testing.T) {
	res := Table1(RunConfig{Horizon: 150 * time.Second, Seed: 1})
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	truth := res.Rows[0]
	if truth.Frequency <= 0 || truth.DurMean <= 0 {
		t.Fatalf("no true loss in TCP scenario: %+v", truth)
	}
	for _, r := range res.Rows[1:] {
		// The paper's headline: ZING reports a tiny fraction of the
		// true frequency (0.0005 vs 0.0265) and near-zero durations.
		if r.Frequency > truth.Frequency/2 {
			t.Errorf("%s frequency %.4f not ≪ true %.4f", r.Name, r.Frequency, truth.Frequency)
		}
		if r.DurMean > truth.DurMean/2 {
			t.Errorf("%s duration %.3f not ≪ true %.3f", r.Name, r.DurMean, truth.DurMean)
		}
	}
	if !strings.Contains(res.String(), "Table 1") {
		t.Error("rendering lacks title")
	}
}

func TestTable2ZingCloserOnCBR(t *testing.T) {
	res := Table2(RunConfig{Horizon: 200 * time.Second, Seed: 2})
	truth := res.Rows[0]
	if truth.Frequency <= 0 {
		t.Fatal("no true loss in CBR scenario")
	}
	for _, r := range res.Rows[1:] {
		// Paper Table 2: ZING gets within about a factor of two on
		// frequency for the CBR scenario (0.0031–0.0036 vs 0.0069).
		if r.Frequency <= 0 {
			t.Errorf("%s measured zero frequency", r.Name)
		}
		if r.Frequency > truth.Frequency*1.5 {
			t.Errorf("%s frequency %.4f overshoots true %.4f", r.Name, r.Frequency, truth.Frequency)
		}
	}
}

func TestTable3ZingPoorOnWebTraffic(t *testing.T) {
	res := Table3(RunConfig{Horizon: 150 * time.Second, Seed: 3})
	truth := res.Rows[0]
	if truth.Frequency <= 0 {
		t.Fatal("no true loss in web scenario")
	}
	for _, r := range res.Rows[1:] {
		if r.Frequency > truth.Frequency {
			t.Errorf("%s frequency %.4f exceeds true %.4f (expected underestimate)",
				r.Name, r.Frequency, truth.Frequency)
		}
	}
}

func TestTable4BadabingTracksTruth(t *testing.T) {
	res := Table4(RunConfig{Horizon: 300 * time.Second, Seed: 4})
	if len(res.Rows) != len(DefaultPSweep) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(DefaultPSweep))
	}
	for _, r := range res.Rows {
		if r.P < 0.5 {
			// The paper, too, reports poor estimates at p=0.1, and
			// at p=0.3 the boundary sample S is still small at this
			// shortened horizon.
			continue
		}
		if r.TrueD <= 0 {
			t.Fatalf("p=%.1f: no true episodes", r.P)
		}
		if rel := abs(r.EstD-r.TrueD) / r.TrueD; rel > 0.6 {
			t.Errorf("p=%.1f: duration estimate %.3f vs true %.3f (%.0f%% off)",
				r.P, r.EstD, r.TrueD, rel*100)
		}
		if ratio := r.EstF / r.TrueF; ratio < 0.4 || ratio > 2.5 {
			t.Errorf("p=%.1f: freq estimate %.4f vs true %.4f", r.P, r.EstF, r.TrueF)
		}
	}
}

func TestTable7LowPBehaviour(t *testing.T) {
	res := Table7(RunConfig{Horizon: 120 * time.Second, Seed: 5})
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for _, r := range res.Rows {
		// At p=0.1 estimates are rough in both the paper and this
		// reproduction (here the bias has the opposite sign — see
		// EXPERIMENTS.md); assert they stay within a factor of 3.
		if r.EstF <= 0 || r.EstD <= 0 {
			t.Fatalf("N=%d tau=%v: missing estimates", r.N, r.Tau)
		}
		if ratio := r.EstF / r.TrueF; ratio < 1/3.0 || ratio > 3 {
			t.Errorf("N=%d tau=%v: freq %.4f vs true %.4f beyond 3x",
				r.N, r.Tau, r.EstF, r.TrueF)
		}
		if ratio := r.EstD / r.TrueD; ratio < 1/3.5 || ratio > 3.5 {
			t.Errorf("N=%d tau=%v: dur %.3f vs true %.3f beyond 3.5x",
				r.N, r.Tau, r.EstD, r.TrueD)
		}
	}
	if res.Rows[2].N != 4*res.Rows[0].N {
		t.Errorf("long rows should have 4x the slots: %d vs %d", res.Rows[2].N, res.Rows[0].N)
	}
}

func TestTable8BadabingBeatsZing(t *testing.T) {
	res := Table8(RunConfig{Horizon: 200 * time.Second, Seed: 6})
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	// Compare duration error for the CBR pair (rows 0 and 1).
	bb, zing := res.Rows[0], res.Rows[1]
	if bb.Tool != "BADABING" || zing.Tool != "ZING" {
		t.Fatalf("unexpected row order: %+v", res.Rows)
	}
	bbErr := abs(bb.EstD - bb.TrueD)
	zingErr := abs(zing.EstD - zing.TrueD)
	if bbErr >= zingErr {
		t.Errorf("CBR: BADABING duration error %.3f not better than ZING %.3f", bbErr, zingErr)
	}
}

func TestFigure4ShowsSawtooth(t *testing.T) {
	res := Figure4(RunConfig{Horizon: 20 * time.Second, Seed: 7})
	if len(res.Samples) == 0 {
		t.Fatal("no queue samples")
	}
	// The TCP sawtooth must repeatedly approach the full buffer and
	// fall back: range should span most of the buffer.
	var min, max time.Duration = time.Hour, 0
	for _, s := range res.Samples {
		if s.Delay < min {
			min = s.Delay
		}
		if s.Delay > max {
			max = s.Delay
		}
	}
	if max < res.QueueCap*8/10 {
		t.Errorf("queue never approaches capacity: max %v of %v", max, res.QueueCap)
	}
	if min > res.QueueCap/2 {
		t.Errorf("queue never drains below half: min %v", min)
	}
}

func TestFigure5ShowsIsolatedEpisodes(t *testing.T) {
	res := Figure5(RunConfig{Horizon: 40 * time.Second, Seed: 8})
	if len(res.Episodes) == 0 {
		t.Fatal("no episodes in window")
	}
	for _, e := range res.Episodes {
		d := e.Duration()
		if d < 30*time.Millisecond || d > 120*time.Millisecond {
			t.Errorf("episode duration %v, want ≈68ms", d)
		}
	}
}

func TestFigure6WebEpisodes(t *testing.T) {
	res := Figure6(RunConfig{Horizon: 60 * time.Second, Seed: 9})
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	if !strings.Contains(res.String(), "Figure 6") {
		t.Error("rendering lacks title")
	}
}

func TestFigure7LongerProbesDetectBetter(t *testing.T) {
	res := Figure7(RunConfig{Horizon: 60 * time.Second, Seed: 10})
	if len(res.Points) != 10 {
		t.Fatalf("got %d points, want 10", len(res.Points))
	}
	first, last := res.Points[0], res.Points[9]
	// Paper Figure 7: for CBR, single-packet probes miss ≈half of
	// episodes while 10-packet probes miss almost none.
	if first.PNoCBR < 0.15 {
		t.Errorf("1-packet CBR miss rate %.3f, expected substantial (≈0.5)", first.PNoCBR)
	}
	if last.PNoCBR >= first.PNoCBR {
		t.Errorf("10-packet CBR miss rate %.3f not below 1-packet %.3f",
			last.PNoCBR, first.PNoCBR)
	}
	// For TCP the improvement is mild; mainly assert monotone direction.
	if last.PNoTCP > first.PNoTCP+0.1 {
		t.Errorf("TCP miss rate grew with bunch length: %.3f → %.3f",
			first.PNoTCP, last.PNoTCP)
	}
}

func TestFigure8ProbesPerturbQueue(t *testing.T) {
	res := Figure8(RunConfig{Horizon: 15 * time.Second, Seed: 11})
	if len(res.Variants) != 3 {
		t.Fatalf("got %d variants, want 3", len(res.Variants))
	}
	if res.Variants[0].Bunch != 0 || res.Variants[2].Bunch != 10 {
		t.Fatalf("unexpected variant order")
	}
	if res.Variants[2].ProbePkts == 0 {
		t.Fatal("10-packet variant sent no probes")
	}
	// 10-packet trains at 10 ms are ~4.8 Mb/s of probe traffic; during
	// episodes they must lose packets (Figure 8 bottom panel).
	if res.Variants[2].ProbeLost == 0 {
		t.Error("10-packet probe trains never lost a packet during episodes")
	}
}

func TestFigure9aFrequencyIncreasesWithAlpha(t *testing.T) {
	res := Figure9a(RunConfig{Horizon: 150 * time.Second, Seed: 12})
	if len(res.Rows) != len(DefaultPSweep) {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// Aggregate across p: larger alpha should not decrease the mean
	// estimated frequency (Figure 9a trend).
	sums := make([]float64, 3)
	for _, r := range res.Rows {
		for i, e := range r.EstF {
			sums[i] += e
		}
	}
	if !(sums[2] >= sums[0]) {
		t.Errorf("frequency not increasing with alpha: sums %v", sums)
	}
}

func TestFigure9bFrequencyIncreasesWithTau(t *testing.T) {
	res := Figure9b(RunConfig{Horizon: 150 * time.Second, Seed: 13})
	sums := make([]float64, 3)
	for _, r := range res.Rows {
		for i, e := range r.EstF {
			sums[i] += e
		}
	}
	if !(sums[2] >= sums[0]) {
		t.Errorf("frequency not increasing with tau: sums %v", sums)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
