package lab

import (
	"strings"
	"testing"
	"time"
)

func TestMultiHopUnionTruth(t *testing.T) {
	res := MultiHop(3, RunConfig{Horizon: 200 * time.Second, Seed: 31})
	if len(res.PerHopF) != 3 {
		t.Fatalf("per-hop truths: %d", len(res.PerHopF))
	}
	var sum, max float64
	for i, f := range res.PerHopF {
		if f <= 0 {
			t.Fatalf("hop %d saw no congestion", i)
		}
		sum += f
		if f > max {
			max = f
		}
	}
	// Union frequency lies between the max hop and the sum of hops.
	if res.TrueF < max-1e-9 || res.TrueF > sum+1e-9 {
		t.Errorf("union F %.4f outside [max %.4f, sum %.4f]", res.TrueF, max, sum)
	}
	if res.TrueD <= 0 {
		t.Fatal("no union episodes")
	}
}

func TestMultiHopEndToEndEstimate(t *testing.T) {
	res := MultiHop(2, RunConfig{Horizon: 300 * time.Second, Seed: 32})
	if res.EstF <= 0 {
		t.Fatal("no end-to-end frequency estimate")
	}
	// The probe sees the union of the hops; the estimate should track
	// the union truth, not a single hop's.
	if ratio := res.EstF / res.TrueF; ratio < 0.4 || ratio > 2.5 {
		t.Errorf("end-to-end F̂/F = %.2f (est %.4f, union true %.4f)",
			ratio, res.EstF, res.TrueF)
	}
	if res.EstD <= 0 {
		t.Fatal("no duration estimate")
	}
	if !strings.Contains(res.String(), "Multi-hop") {
		t.Error("rendering lacks title")
	}
}
