package lab

import (
	"strings"
	"testing"
	"time"
)

func TestAdaptiveStudy(t *testing.T) {
	res := AdaptiveStudy(RunConfig{Horizon: 600 * time.Second, Seed: 51})
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	byKey := map[string]AdaptiveStudyRow{}
	for _, r := range res.Rows {
		byKey[r.Path+"/"+r.Strategy] = r
	}
	lossyHigh := byKey["lossy (episodes ≈4s)/fixed p=0.9"]
	lossyLow := byKey["lossy (episodes ≈4s)/fixed p=0.1"]
	lossyAdaptive := byKey["lossy (episodes ≈4s)/adaptive"]
	quietLow := byKey["quiet (episodes ≈45s)/fixed p=0.1"]
	quietAdaptive := byKey["quiet (episodes ≈45s)/adaptive"]

	// The point of adaptivity: it converges wherever the well-chosen
	// fixed rate would have, without knowing that rate in advance.
	if lossyHigh.Converged && !lossyAdaptive.Converged {
		t.Error("fixed-high converged on the lossy path but adaptive did not")
	}
	// And it beats a badly chosen fixed rate outright.
	if lossyLow.Converged && !lossyAdaptive.Converged {
		t.Error("even fixed-low converged but adaptive did not")
	}
	if lossyAdaptive.Converged && lossyHigh.Converged {
		// Bounded escalation premium: within ~4x of the oracle choice.
		if lossyAdaptive.Packets > 4*lossyHigh.Packets {
			t.Errorf("adaptive cost %d > 4x fixed-high cost %d",
				lossyAdaptive.Packets, lossyHigh.Packets)
		}
	}
	// On the quiet path adaptive must have escalated toward PMax.
	if quietAdaptive.FinalP <= quietLow.FinalP {
		t.Errorf("adaptive final p %.2f did not escalate past %.2f on the quiet path",
			quietAdaptive.FinalP, quietLow.FinalP)
	}
	// Estimates should track truth on the quiet path regardless of
	// convergence.
	if quietAdaptive.TrueF > 0 {
		if ratio := quietAdaptive.EstF / quietAdaptive.TrueF; ratio < 0.25 || ratio > 4 {
			t.Errorf("quiet adaptive estF/trueF = %.2f", ratio)
		}
	}
	if !strings.Contains(res.String(), "Adaptive extension") {
		t.Error("rendering lacks title")
	}
	for _, r := range res.Rows {
		t.Logf("%-24s %-12s pkts=%7d converged=%v estF=%.4f trueF=%.4f",
			r.Path, r.Strategy, r.Packets, r.Converged, r.EstF, r.TrueF)
	}
}
