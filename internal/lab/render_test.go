package lab

import (
	"strings"
	"testing"
	"time"

	"badabing/internal/capture"
)

func TestLossTableRendering(t *testing.T) {
	tbl := LossTable{
		Title: "Table X",
		Rows: []LossRow{
			{Name: "true values", Frequency: 0.0265, DurMean: 0.136, DurSD: 0.009},
			{Name: "ZING (10Hz)", Frequency: 0.0005, DurMean: 0, DurSD: 0},
		},
	}
	out := tbl.String()
	for _, want := range []string{"Table X", "true values", "ZING (10Hz)", "0.0265", "0.136 (0.009)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestSweepTableRendering(t *testing.T) {
	tbl := SweepTable{
		Title: "Table Y",
		Rows:  []SweepRow{{P: 0.3, TrueF: 0.0069, EstF: 0.0065, TrueD: 0.068, EstD: 0.073}},
	}
	out := tbl.String()
	for _, want := range []string{"Table Y", "0.3", "0.0069", "0.0065", "0.068", "0.073"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTable7Rendering(t *testing.T) {
	res := Table7Result{Rows: []Table7Row{
		{N: 180000, Tau: 40 * time.Millisecond, TrueF: 0.0059, EstF: 0.0006, TrueD: 0.068, EstD: 0.021},
	}}
	out := res.String()
	for _, want := range []string{"180000", "40", "0.0059"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTable8Rendering(t *testing.T) {
	res := Table8Result{Rows: []Table8Row{
		{Scenario: "CBR", Tool: "BADABING", TrueF: 0.0069, EstF: 0.0065, TrueD: 0.068, EstD: 0.073},
		{Scenario: "CBR", Tool: "ZING", TrueF: 0.0069, EstF: 0.0041, TrueD: 0.068, EstD: 0.010},
	}}
	out := res.String()
	if !strings.Contains(out, "BADABING") || !strings.Contains(out, "ZING") {
		t.Errorf("rendering missing tool names:\n%s", out)
	}
}

func TestQueueSeriesRendering(t *testing.T) {
	qs := QueueSeries{
		Title:    "Figure Z",
		From:     10 * time.Second,
		To:       20 * time.Second,
		QueueCap: 100 * time.Millisecond,
		Samples: []capture.QueueSample{
			{T: 11 * time.Second, Delay: 10 * time.Millisecond},
			{T: 15 * time.Second, Delay: 100 * time.Millisecond},
		},
		Episodes: []capture.Episode{
			{Start: 15 * time.Second, End: 15*time.Second + 70*time.Millisecond, Drops: 12},
		},
	}
	out := qs.String()
	if !strings.Contains(out, "Figure Z") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "loss episodes in window: 1") {
		t.Errorf("missing episode count:\n%s", out)
	}
	if !strings.Contains(out, "drops 12") {
		t.Errorf("missing drop count:\n%s", out)
	}
	// The sparkline should contain both a near-empty and a full level.
	lines := strings.Split(out, "\n")
	if len(lines) < 2 {
		t.Fatal("no sparkline line")
	}
	spark := lines[1]
	if !strings.Contains(spark, "@") {
		t.Errorf("full-queue sample not rendered at top level: %q", spark)
	}
}

func TestFig7Rendering(t *testing.T) {
	res := Fig7Result{Points: []Fig7Point{{Bunch: 1, PNoTCP: 0.75, PNoCBR: 0.5}}}
	out := res.String()
	if !strings.Contains(out, "0.750") || !strings.Contains(out, "0.500") {
		t.Errorf("points not rendered:\n%s", out)
	}
}

func TestFig9Rendering(t *testing.T) {
	res := Fig9Result{
		Title:  "Figure 9(x)",
		Param:  "alpha",
		Values: []string{"0.05", "0.10"},
		Rows:   []Fig9Row{{P: 0.3, TrueF: 0.0069, EstF: []float64{0.004, 0.006}}},
	}
	out := res.String()
	for _, want := range []string{"alpha=0.05", "alpha=0.10", "0.0069", "0.0040"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestAblationRendering(t *testing.T) {
	res := AblationResult{
		Title: "Ablation: thing",
		Rows:  []AblationRow{{Variant: "v1", TrueF: 0.01, EstF: 0.011, TrueD: 0.07, EstD: 0.08}},
	}
	out := res.String()
	if !strings.Contains(out, "v1") || !strings.Contains(out, "0.0110") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}

func TestScenarioString(t *testing.T) {
	cases := map[Scenario]string{
		InfiniteTCP: "infinite TCP",
		CBRUniform:  "CBR (uniform 68ms episodes)",
		CBRMixed:    "CBR (50/100/150ms episodes)",
		Web:         "Harpoon web-like",
		Scenario(9): "unknown",
	}
	for sc, want := range cases {
		if got := sc.String(); got != want {
			t.Errorf("Scenario(%d).String() = %q, want %q", sc, got, want)
		}
	}
}

func TestFig8Rendering(t *testing.T) {
	res := Fig8Result{Variants: []Fig8Series{
		{Bunch: 0, Series: QueueSeries{Title: "q0", QueueCap: time.Second}},
		{Bunch: 10, ProbePkts: 100, ProbeLost: 5, Series: QueueSeries{Title: "q10", QueueCap: time.Second}},
	}}
	out := res.String()
	if !strings.Contains(out, "no probe traffic") {
		t.Error("missing no-probe label")
	}
	if !strings.Contains(out, "probe train of 10 packets (sent 100, lost 5)") {
		t.Errorf("missing probe label:\n%s", out)
	}
}
