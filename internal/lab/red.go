package lab

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"badabing/internal/badabing"
	"badabing/internal/capture"
	"badabing/internal/probe"
	"badabing/internal/simnet"
	"badabing/internal/traffic"
)

// REDStudy is an extension experiment: the same TCP workload and BADABING
// measurement on a drop-tail bottleneck versus a RED-managed one. RED
// spreads drops thin instead of concentrating them in full-buffer
// episodes, eroding the episode structure the estimators assume — the
// experiment shows how the loss characteristics, the estimates and the
// self-validation verdict all shift.
type REDRow struct {
	Queue     string
	TrueF     float64
	TrueD     float64 // seconds
	LossRate  float64
	Episodes  int
	EstF      float64
	EstD      float64
	Validated bool
}

// REDResult renders the comparison.
type REDResult struct {
	Rows []REDRow
}

func (r REDResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "RED extension: 40 infinite TCP sources, drop-tail vs RED bottleneck")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "queue\ttrue freq\ttrue dur (s)\tloss rate\tepisodes\tBB freq\tBB dur (s)\tvalidated")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%.4f\t%.3f\t%.5f\t%d\t%.4f\t%.3f\t%v\n",
			row.Queue, row.TrueF, row.TrueD, row.LossRate, row.Episodes,
			row.EstF, row.EstD, row.Validated)
	}
	w.Flush()
	return b.String()
}

// RED runs the comparison at p = 0.3; the two queue disciplines are
// independent cells on the experiment engine.
func RED(cfg RunConfig) REDResult {
	cfg.applyDefaults()
	var cells []cell[REDRow]
	for _, useRED := range []bool{false, true} {
		cells = append(cells, cell[REDRow]{
			key: fmt.Sprintf("red/aqm=%v/seed=%d/h=%v", useRED, cfg.Seed, cfg.Horizon),
			run: func() REDRow { return redRun(cfg, useRED) },
		})
	}
	return REDResult{Rows: runCells(cfg, cells)}
}

// redRun measures one queue-discipline variant.
func redRun(cfg RunConfig, useRED bool) REDRow {
	sim := simnet.New()
	d := simnet.NewDumbbell(sim, simnet.DumbbellConfig{})
	if useRED {
		d.Bottleneck.SetAQM(simnet.REDForLink(d.Bottleneck, 0.25, 0.75, 0.1, cfg.Seed))
	}
	mon := capture.Attach(sim, d.Bottleneck, capture.Config{})
	ids := traffic.NewIDSpace(1000)
	traffic.NewInfiniteTCP(sim, d, ids, 40)

	slot := badabing.DefaultSlot
	plans := badabing.MustSchedule(badabing.ScheduleConfig{
		P: 0.3, N: int64(cfg.Horizon / slot), Improved: true, Seed: cfg.Seed + 99,
	})
	bb := probe.StartBadabing(sim, d, probeFlowID, probe.BadabingConfig{
		Plans:  plans,
		Marker: badabing.RecommendedMarker(0.3, slot),
	})
	sim.Run(cfg.Horizon + 1e9)

	truth := mon.Truth(cfg.Horizon, slot)
	rep := bb.Report()
	row := REDRow{
		Queue:     "drop-tail",
		TrueF:     truth.Frequency,
		TrueD:     truth.Duration.Mean(),
		LossRate:  truth.LossRate,
		Episodes:  truth.Episodes,
		EstF:      rep.Frequency,
		EstD:      rep.Duration,
		Validated: rep.Validation.Passes(badabing.Criteria{}),
	}
	if useRED {
		row.Queue = "RED"
	}
	return row
}
