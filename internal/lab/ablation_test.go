package lab

import (
	"testing"
	"time"
)

func TestAblationPlacementBothDefined(t *testing.T) {
	res := AblationPlacement(RunConfig{Horizon: 200 * time.Second, Seed: 21})
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.EstF <= 0 || r.TrueF <= 0 {
			t.Errorf("%s: missing frequency (est %v, true %v)", r.Variant, r.EstF, r.TrueF)
		}
		// Both placements are unbiased for frequency; both should land
		// in the right ballpark.
		if ratio := r.EstF / r.TrueF; ratio < 0.3 || ratio > 3 {
			t.Errorf("%s: freq ratio %v", r.Variant, ratio)
		}
	}
}

func TestAblationMarkingDelayHelpsAtLowP(t *testing.T) {
	res := AblationMarking(RunConfig{Horizon: 300 * time.Second, Seed: 22})
	withDelay, lossOnly := res.Rows[0], res.Rows[1]
	// Loss-only marking can only undercount congested slots relative to
	// loss+delay marking on the same schedule.
	if lossOnly.EstF > withDelay.EstF {
		t.Errorf("loss-only freq %.4f exceeds loss+delay %.4f", lossOnly.EstF, withDelay.EstF)
	}
	errWith := absf(withDelay.EstF - withDelay.TrueF)
	errWithout := absf(lossOnly.EstF - lossOnly.TrueF)
	if errWith > errWithout {
		t.Logf("note: delay marking did not improve frequency here (%.4f vs %.4f)", errWith, errWithout)
	}
}

func TestAblationEstimatorBothDefined(t *testing.T) {
	res := AblationEstimator(RunConfig{Horizon: 300 * time.Second, Seed: 23})
	for _, r := range res.Rows {
		if r.EstD <= 0 {
			t.Errorf("%s: no duration estimate", r.Variant)
		}
		if ratio := r.EstD / r.TrueD; ratio < 0.25 || ratio > 4 {
			t.Errorf("%s: duration ratio %v (est %.3f true %.3f)", r.Variant, ratio, r.EstD, r.TrueD)
		}
	}
}

func TestAblationSlotCoarseCannotResolve(t *testing.T) {
	res := AblationSlot(RunConfig{Horizon: 200 * time.Second, Seed: 24})
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	fine, mid, coarse := res.Rows[0], res.Rows[1], res.Rows[2]
	// 68 ms episodes span 3.4 slots at 20 ms: the coarse estimate is
	// quantization-dominated. Relative duration error should be worst
	// (or at least not best) at the coarsest slot.
	errOf := func(r AblationRow) float64 { return absf(r.EstD-r.TrueD) / r.TrueD }
	if errOf(coarse) < errOf(fine) && errOf(coarse) < errOf(mid) {
		t.Errorf("coarse slot gave the best duration accuracy: fine %.2f mid %.2f coarse %.2f",
			errOf(fine), errOf(mid), errOf(coarse))
	}
}

func TestAblationProbeSizeMorePacketsDetectMore(t *testing.T) {
	res := AblationProbeSize(RunConfig{Horizon: 300 * time.Second, Seed: 25})
	one, three := res.Rows[0], res.Rows[1]
	// Single-packet probes sail through episodes more often (Figure 7),
	// so their frequency estimate cannot exceed the 3-packet one by
	// much.
	if one.EstF > three.EstF*1.3 {
		t.Errorf("1-packet freq %.4f unexpectedly above 3-packet %.4f", one.EstF, three.EstF)
	}
}

func TestMeanFreqError(t *testing.T) {
	rows := []AblationRow{
		{TrueF: 0.01, EstF: 0.012},
		{TrueF: 0.01, EstF: 0.008},
	}
	if got := MeanFreqError(rows); absf(got-0.2) > 1e-9 {
		t.Fatalf("MeanFreqError = %v, want 0.2", got)
	}
	if got := MeanFreqError(nil); got != 0 {
		t.Fatalf("MeanFreqError(nil) = %v, want 0", got)
	}
}

func TestAblationExtendedPairsBothDefined(t *testing.T) {
	res := AblationExtendedPairs(RunConfig{Horizon: 200 * time.Second, Seed: 26})
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	off, on := res.Rows[0], res.Rows[1]
	if off.EstD <= 0 || on.EstD <= 0 {
		t.Fatalf("missing duration estimates: off %.3f on %.3f", off.EstD, on.EstD)
	}
	// Identical schedule and traffic: frequency estimates are identical
	// (pairs only affect R/S, not zi).
	if off.EstF != on.EstF {
		t.Errorf("frequency changed with pairs: %.5f vs %.5f", off.EstF, on.EstF)
	}
}
