package lab

import (
	"strings"
	"testing"
	"time"
)

func TestREDStudyContrast(t *testing.T) {
	res := RED(RunConfig{Horizon: 150 * time.Second, Seed: 41})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	dt, red := res.Rows[0], res.Rows[1]
	if dt.Queue != "drop-tail" || red.Queue != "RED" {
		t.Fatalf("row order: %+v", res.Rows)
	}
	if dt.LossRate <= 0 || red.LossRate <= 0 {
		t.Fatal("a scenario produced no loss")
	}
	// RED keeps the queue off the hard limit: its average queueing
	// delay and episode structure differ from drop-tail's crisp
	// full-buffer episodes. At minimum the workloads must both be
	// measurable and the comparison table renderable.
	if dt.EstF <= 0 {
		t.Error("drop-tail estimate missing")
	}
	if red.TrueF <= 0 {
		t.Error("no RED congestion measured")
	}
	if !strings.Contains(res.String(), "RED extension") {
		t.Error("rendering lacks title")
	}
	t.Logf("drop-tail: %+v", dt)
	t.Logf("RED:       %+v", red)
}
