package lab

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The golden suite pins the estimator pipeline's exact numerical outputs
// for a handful of fixed-seed cells. Any change to the simulator, the
// traffic models, the probers, or the estimators that shifts a single
// float will fail here — deliberate changes regenerate the fixtures with
//
//	go test ./internal/lab -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden fixtures under testdata/")

// goldenRow is one cell's pinned estimator output.
type goldenRow struct {
	Key   string  `json:"key"`
	TrueF float64 `json:"true_f"`
	EstF  float64 `json:"est_f"`
	TrueD float64 `json:"true_d"`
	EstD  float64 `json:"est_d"`
}

// goldenCells are deliberately cheap (45 s horizons) but cover both CBR
// episode shapes and three probe rates.
func goldenCells() []goldenRow {
	specs := []struct {
		sc   Scenario
		p    float64
		seed int64
	}{
		{CBRUniform, 0.5, 1},
		{CBRUniform, 0.9, 2},
		{CBRMixed, 0.7, 3},
		{CBRMixed, 0.3, 1},
	}
	cells := make([]cell[goldenRow], len(specs))
	for i, s := range specs {
		key := fmt.Sprintf("golden/%v/p=%.1f/seed=%d", s.sc, s.p, s.seed)
		cells[i] = cell[goldenRow]{
			key: key,
			run: func() goldenRow {
				row := badabingRun(s.sc, RunConfig{Horizon: 45 * time.Second, Seed: s.seed}, s.p, nil, false)
				return goldenRow{Key: key, TrueF: row.TrueF, EstF: row.EstF, TrueD: row.TrueD, EstD: row.EstD}
			},
		}
	}
	return runCells(RunConfig{}, cells)
}

func TestGoldenEstimates(t *testing.T) {
	got := goldenCells()
	path := filepath.Join("testdata", "golden", "estimates.json")

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cells", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with -update): %v", err)
	}
	var want []goldenRow
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden fixture %s: %v", path, err)
	}
	if len(want) != len(got) {
		t.Fatalf("fixture has %d cells, suite produced %d (regenerate with -update)", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Key != g.Key {
			t.Errorf("cell %d key drifted: fixture %q, suite %q", i, w.Key, g.Key)
			continue
		}
		check := func(field string, wv, gv float64) {
			if math.Float64bits(wv) != math.Float64bits(gv) {
				t.Errorf("%s: %s drifted from golden %v to %v (intentional? rerun with -update)",
					g.Key, field, wv, gv)
			}
		}
		check("true_f", w.TrueF, g.TrueF)
		check("est_f", w.EstF, g.EstF)
		check("true_d", w.TrueD, g.TrueD)
		check("est_d", w.EstD, g.EstD)
	}
}

// TestGoldenFixtureRoundTrips guards the fixture encoding itself: every
// float64 written by -update must parse back to the identical bits, or
// the drift detector would false-positive.
func TestGoldenFixtureRoundTrips(t *testing.T) {
	in := []goldenRow{{Key: "k", TrueF: 1.0 / 3.0, EstF: 0.1, TrueD: 0.068, EstD: math.Nextafter(0.068, 1)}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []goldenRow
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]float64{
		{in[0].TrueF, out[0].TrueF}, {in[0].EstF, out[0].EstF},
		{in[0].TrueD, out[0].TrueD}, {in[0].EstD, out[0].EstD},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Errorf("float64 %v did not round-trip through JSON", pair[0])
		}
	}
}
