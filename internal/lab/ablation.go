package lab

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/probe"
	"badabing/internal/stats"
)

// Ablations probe the design choices DESIGN.md calls out: probe placement
// (per-slot Bernoulli vs Poisson pairs), delay-augmented marking vs
// loss-only marking, basic vs improved estimation, slot width, and probe
// size. Each returns a small table comparing estimator quality under the
// CBR workload where ground truth is sharpest.

// AblationRow is a labelled (frequency, duration) estimate against truth.
type AblationRow struct {
	Variant string
	TrueF   float64
	EstF    float64
	TrueD   float64
	EstD    float64
}

// AblationResult renders an ablation comparison.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

func (a AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, a.Title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "variant\ttrue freq\test freq\ttrue dur (s)\test dur (s)")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.3f\t%.3f\n", r.Variant, r.TrueF, r.EstF, r.TrueD, r.EstD)
	}
	w.Flush()
	return b.String()
}

// poissonPairPlans builds experiments whose start slots come from a
// Poisson process with the same expected experiment count as the per-slot
// Bernoulli design — the "what if we kept Poisson placement" baseline.
func poissonPairPlans(p float64, n int64, seed int64) []badabing.Plan {
	rng := rand.New(rand.NewSource(seed))
	meanGap := 1 / p // slots between experiment starts
	var plans []badabing.Plan
	slot := 0.0
	for {
		slot += rng.ExpFloat64() * meanGap
		s := int64(slot)
		if s+2 > n {
			break
		}
		plans = append(plans, badabing.Plan{Slot: s, Probes: 2})
	}
	return plans
}

// runWithPlans measures the CBR workload with an explicit plan set.
func runWithPlans(cfg RunConfig, plans []badabing.Plan, marker badabing.MarkerConfig, slot time.Duration, bunch int) AblationRow {
	path := NewPath(CBRUniform, cfg)
	bb := probe.StartBadabing(path.Sim, path.D, probeFlowID, probe.BadabingConfig{
		Plans:           plans,
		Slot:            slot,
		Marker:          marker,
		PacketsPerProbe: bunch,
	})
	path.Run(cfg.Horizon)
	truth := path.Mon.Truth(cfg.Horizon, slot)
	rep := bb.Report()
	return AblationRow{
		TrueF: truth.Frequency, EstF: rep.Frequency,
		TrueD: truth.Duration.Mean(), EstD: rep.Duration,
	}
}

// AblationPlacement compares per-slot Bernoulli placement (the paper's
// geometric design) against Poisson-placed probe pairs at the same
// expected probe budget.
func AblationPlacement(cfg RunConfig) AblationResult {
	cfg.applyDefaults()
	const p = 0.3
	slot := badabing.DefaultSlot
	n := int64(cfg.Horizon / slot)
	marker := badabing.RecommendedMarker(p, slot)

	rows := runCells(cfg, []cell[AblationRow]{
		{
			key: fmt.Sprintf("ablation/placement/bernoulli/seed=%d/h=%v", cfg.Seed, cfg.Horizon),
			run: func() AblationRow {
				r := runWithPlans(cfg, badabing.MustSchedule(badabing.ScheduleConfig{
					P: p, N: n, Seed: cfg.Seed + 100,
				}), marker, slot, 3)
				r.Variant = "per-slot Bernoulli (BADABING)"
				return r
			},
		},
		{
			key: fmt.Sprintf("ablation/placement/poisson/seed=%d/h=%v", cfg.Seed, cfg.Horizon),
			run: func() AblationRow {
				r := runWithPlans(cfg, poissonPairPlans(p, n, cfg.Seed+100), marker, slot, 3)
				r.Variant = "Poisson-placed pairs"
				return r
			},
		},
	})
	return AblationResult{
		Title: "Ablation: probe placement at equal budget (CBR, p=0.3)",
		Rows:  rows,
	}
}

// AblationMarking compares loss-only congestion marking against the §6.1
// loss+delay marking at a low probe rate, where the delay channel is what
// rescues accuracy.
func AblationMarking(cfg RunConfig) AblationResult {
	cfg.applyDefaults()
	const p = 0.2
	slot := badabing.DefaultSlot
	variants := []struct {
		name   string
		marker badabing.MarkerConfig
		label  string
	}{
		{"delay", badabing.RecommendedMarker(p, slot), "loss + one-way-delay marking"},
		{"loss-only", badabing.MarkerConfig{Alpha: 0, Tau: 0}, "loss-only marking"},
	}
	cells := make([]cell[AblationRow], len(variants))
	for i, v := range variants {
		cells[i] = cell[AblationRow]{
			key: fmt.Sprintf("ablation/marking/%s/seed=%d/h=%v", v.name, cfg.Seed, cfg.Horizon),
			run: func() AblationRow {
				// Both variants mark the same schedule; each cell
				// rebuilds it so the cells stay self-contained.
				plans := badabing.MustSchedule(badabing.ScheduleConfig{
					P: p, N: int64(cfg.Horizon / slot), Seed: cfg.Seed + 100,
				})
				r := runWithPlans(cfg, plans, v.marker, slot, 3)
				r.Variant = v.label
				return r
			},
		}
	}
	return AblationResult{
		Title: "Ablation: congestion marking (CBR, p=0.2)",
		Rows:  runCells(cfg, cells),
	}
}

// AblationEstimator compares the basic and improved duration estimators
// on the same improved-design run.
func AblationEstimator(cfg RunConfig) AblationResult {
	cfg.applyDefaults()
	const p = 0.5
	slot := badabing.DefaultSlot
	// One run feeds both estimator rows; it is a single cell.
	rows := runCells(cfg, []cell[[]AblationRow]{{
		key: fmt.Sprintf("ablation/estimator/seed=%d/h=%v", cfg.Seed, cfg.Horizon),
		run: func() []AblationRow {
			path := NewPath(CBRUniform, cfg)
			plans := badabing.MustSchedule(badabing.ScheduleConfig{
				P: p, N: int64(cfg.Horizon / slot), Improved: true, Seed: cfg.Seed + 100,
			})
			bb := probe.StartBadabing(path.Sim, path.D, probeFlowID, probe.BadabingConfig{
				Plans:  plans,
				Marker: badabing.RecommendedMarker(p, slot),
			})
			path.Run(cfg.Horizon)
			truth := path.Mon.Truth(cfg.Horizon, slot)
			rep := bb.Report()
			return []AblationRow{{
				Variant: "basic  D̂ = 2(R/S−1)+1",
				TrueF:   truth.Frequency, EstF: rep.Frequency,
				TrueD: truth.Duration.Mean(), EstD: rep.DurationBasic,
			}, {
				Variant: "improved  D̂ = (2V/U)(R/S−1)+1",
				TrueF:   truth.Frequency, EstF: rep.Frequency,
				TrueD: truth.Duration.Mean(), EstD: rep.DurationImproved,
			}}
		},
	}})
	return AblationResult{
		Title: "Ablation: basic vs improved duration estimator (CBR, p=0.5)",
		Rows:  rows[0],
	}
}

// AblationSlot sweeps the discretization width against fixed 68 ms
// episodes (§7: the discretization need only be finer than the durations
// being estimated; far coarser slots cannot resolve them).
func AblationSlot(cfg RunConfig) AblationResult {
	cfg.applyDefaults()
	res := AblationResult{Title: "Ablation: slot width vs 68ms episodes (CBR, p=0.3)"}
	var cells []cell[AblationRow]
	for _, slot := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		cells = append(cells, cell[AblationRow]{
			key: fmt.Sprintf("ablation/slot=%v/seed=%d/h=%v", slot, cfg.Seed, cfg.Horizon),
			run: func() AblationRow {
				const p = 0.3
				plans := badabing.MustSchedule(badabing.ScheduleConfig{
					P: p, N: int64(cfg.Horizon / slot), Seed: cfg.Seed + 100,
				})
				row := runWithPlans(cfg, plans, badabing.RecommendedMarker(p, slot), slot, 3)
				row.Variant = fmt.Sprintf("slot = %v", slot)
				return row
			},
		})
	}
	res.Rows = runCells(cfg, cells)
	return res
}

// AblationProbeSize compares 1-packet and 3-packet probes at the same
// experiment schedule: multi-packet probes detect episodes that single
// packets sail through (Figure 7's mechanism, measured end to end).
func AblationProbeSize(cfg RunConfig) AblationResult {
	cfg.applyDefaults()
	const p = 0.3
	slot := badabing.DefaultSlot
	res := AblationResult{Title: "Ablation: packets per probe (CBR, p=0.3)"}
	var cells []cell[AblationRow]
	for _, bunch := range []int{1, 3} {
		cells = append(cells, cell[AblationRow]{
			key: fmt.Sprintf("ablation/probesize=%d/seed=%d/h=%v", bunch, cfg.Seed, cfg.Horizon),
			run: func() AblationRow {
				plans := badabing.MustSchedule(badabing.ScheduleConfig{
					P: p, N: int64(cfg.Horizon / slot), Seed: cfg.Seed + 100,
				})
				row := runWithPlans(cfg, plans, badabing.RecommendedMarker(p, slot), slot, bunch)
				row.Variant = fmt.Sprintf("%d packet(s) per probe", bunch)
				return row
			},
		})
	}
	res.Rows = runCells(cfg, cells)
	return res
}

// AblationExtendedPairs compares the improved design with and without the
// §5.5 modification (extended experiments' slot pairs feeding the duration
// estimator) on the same schedule: the pairs increase the effective
// boundary sample without any extra probes.
func AblationExtendedPairs(cfg RunConfig) AblationResult {
	cfg.applyDefaults()
	const p = 0.3
	slot := badabing.DefaultSlot
	res := AblationResult{Title: "Ablation: §5.5 extended-pair reuse (CBR, p=0.3, improved design)"}
	var cells []cell[AblationRow]
	for _, pairs := range []bool{false, true} {
		cells = append(cells, cell[AblationRow]{
			key: fmt.Sprintf("ablation/pairs=%v/seed=%d/h=%v", pairs, cfg.Seed, cfg.Horizon),
			run: func() AblationRow {
				path := NewPath(CBRUniform, cfg)
				plans := badabing.MustSchedule(badabing.ScheduleConfig{
					P: p, N: int64(cfg.Horizon / slot), Improved: true, Seed: cfg.Seed + 100,
				})
				bb := probe.StartBadabing(path.Sim, path.D, probeFlowID, probe.BadabingConfig{
					Plans:         plans,
					Marker:        badabing.RecommendedMarker(p, slot),
					ExtendedPairs: pairs,
				})
				path.Run(cfg.Horizon)
				truth := path.Mon.Truth(cfg.Horizon, slot)
				rep := bb.Report()
				row := AblationRow{
					Variant: "pairs off",
					TrueF:   truth.Frequency, EstF: rep.Frequency,
					TrueD: truth.Duration.Mean(), EstD: rep.Duration,
				}
				if pairs {
					row.Variant = "pairs on (§5.5)"
				}
				return row
			},
		})
	}
	res.Rows = runCells(cfg, cells)
	return res
}

// MeanFreqError is the mean relative frequency error over rows, used by
// the benchmark harness to report estimate quality as a metric.
func MeanFreqError(rows []AblationRow) float64 {
	var s stats.Summary
	for _, r := range rows {
		if r.TrueF > 0 {
			s.Add(absf(r.EstF-r.TrueF) / r.TrueF)
		}
	}
	return s.Mean()
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
