package lab

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"badabing/internal/badabing"
	"badabing/internal/estimate"
	"badabing/internal/probe"
	"badabing/internal/session"
	"badabing/internal/session/simtransport"
)

// EstimatorStudy runs the same CBR workload through every estimator kind
// of the pluggable pipeline (internal/estimate), side by side: one
// streaming session per kind over the transport-neutral engine, against
// one ground truth. The table shows what the estimator choice changes —
// the headline duration estimator and, for the bootstrap kind, interval
// bounds — and what it cannot change: F̂ and the experiment count come
// from the same accumulator arithmetic in every row.
type EstimatorStudyRow struct {
	Kind  string
	M     int
	EstF  float64
	TrueF float64
	// EstD is the kind's headline duration estimate, when defined.
	EstD    float64
	HasD    bool
	TrueD   float64
	FreqLo  float64
	FreqHi  float64
	HasCI   bool
	CILevel float64
}

// EstimatorStudyResult renders the comparison.
type EstimatorStudyResult struct {
	Rows []EstimatorStudyRow
}

func (r EstimatorStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Pluggable estimators: one workload, every kind")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "estimator\tm\test freq\ttrue freq\test dur\ttrue dur\tfreq CI")
	for _, row := range r.Rows {
		dur := "—"
		if row.HasD {
			dur = fmt.Sprintf("%.4fs", row.EstD)
		}
		ci := "—"
		if row.HasCI {
			ci = fmt.Sprintf("[%.4f, %.4f]@%v", row.FreqLo, row.FreqHi, row.CILevel)
		}
		fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\t%s\t%.4fs\t%s\n",
			row.Kind, row.M, row.EstF, row.TrueF, dur, row.TrueD, ci)
	}
	w.Flush()
	return b.String()
}

// EstimatorStudy runs the comparison. kinds empty selects every
// registered kind.
func EstimatorStudy(kinds []string, cfg RunConfig) EstimatorStudyResult {
	cfg.applyDefaults()
	if len(kinds) == 0 {
		kinds = estimate.Kinds()
	}
	var cells []cell[EstimatorStudyRow]
	for _, kind := range kinds {
		kind := kind
		cells = append(cells, cell[EstimatorStudyRow]{
			key: fmt.Sprintf("estimators/%s/seed=%d/h=%v", kind, cfg.Seed, cfg.Horizon),
			run: func() EstimatorStudyRow { return runEstimatorKind(kind, cfg) },
		})
	}
	return EstimatorStudyResult{Rows: runCells(cfg, cells)}
}

// runEstimatorKind measures one CBR path with one estimator kind through
// the full streaming session engine (the same code path fleet sessions
// run), then reads ground truth off the bottleneck monitor.
func runEstimatorKind(kind string, cfg RunConfig) EstimatorStudyRow {
	slot := badabing.DefaultSlot
	path := NewPath(CBRUniform, cfg)
	tr := simtransport.New(path.Sim, path.D, probeFlowID, probe.BadabingConfig{Slot: slot})
	defer tr.Close()

	res, err := session.Run(context.Background(), tr, session.Config{
		P:         0.3,
		Slots:     int64(cfg.Horizon / slot),
		Slot:      slot,
		Improved:  true,
		Seed:      cfg.Seed + 900,
		Estimator: estimate.Config{Kind: kind},
	}, nil)
	row := EstimatorStudyRow{Kind: kind}
	if err != nil {
		return row
	}
	snap := res.Final.Snapshot
	row.M = snap.Total.M
	row.EstF = snap.Total.Frequency
	row.EstD, row.HasD = snap.Total.Duration, snap.Total.HasDuration
	if ci := snap.FrequencyCI; ci != nil {
		row.FreqLo, row.FreqHi, row.CILevel = ci.Lo, ci.Hi, ci.Level
		row.HasCI = true
	}
	truth := path.Mon.Truth(cfg.Horizon, slot)
	row.TrueF = truth.Frequency
	row.TrueD = truth.Duration.Mean()
	return row
}
