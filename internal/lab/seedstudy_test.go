package lab

import (
	"strings"
	"testing"
	"time"
)

func TestSeedStudySpread(t *testing.T) {
	res := SeedStudy(CBRUniform, 0.5, []int64{1, 2, 3}, RunConfig{Horizon: 150 * time.Second})
	if res.TrueF.N() != 3 || res.EstF.N() != 3 {
		t.Fatalf("runs recorded: true %d, est %d", res.TrueF.N(), res.EstF.N())
	}
	if res.TrueD.Mean() < 0.05 || res.TrueD.Mean() > 0.09 {
		t.Errorf("mean true duration %.3f, want ≈0.068", res.TrueD.Mean())
	}
	if res.RelDurErr.N() == 0 {
		t.Fatal("no duration errors recorded")
	}
	// The engineered workload is highly reproducible: frequency spread
	// across seeds should be small relative to its mean.
	if cv := res.TrueF.StdDev() / res.TrueF.Mean(); cv > 0.5 {
		t.Errorf("true frequency CV %.2f across seeds, want < 0.5", cv)
	}
	out := res.String()
	for _, want := range []string{"Seed study", "true frequency", "rel dur error"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}
