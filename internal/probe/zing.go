package probe

import (
	"math/rand"
	"time"

	"badabing/internal/simnet"
	"badabing/internal/stats"
)

// ZingConfig parameterizes the ZING-style Poisson prober (§4): UDP probe
// packets at Poisson-modulated intervals with a fixed mean rate.
type ZingConfig struct {
	// Mean is the mean probe interval (the paper uses 100 ms / 10 Hz
	// and 50 ms / 20 Hz).
	Mean time.Duration
	// PacketSize in bytes (the paper uses 256 B at 10 Hz, 64 B at
	// 20 Hz).
	PacketSize int
	// Flight is the number of packets per probe event. Default 1.
	Flight int
	// Horizon stops probing at this virtual time.
	Horizon time.Duration
	// Seed for the Poisson process.
	Seed int64
}

func (c *ZingConfig) applyDefaults() {
	if c.Mean == 0 {
		c.Mean = 100 * time.Millisecond
	}
	if c.PacketSize == 0 {
		c.PacketSize = 256
	}
	if c.Flight == 0 {
		c.Flight = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Zing drives Poisson-modulated probing on a simulated path.
type Zing struct {
	cfg    ZingConfig
	prober *Prober
	next   int64
}

// StartZing begins probing immediately.
func StartZing(sim *simnet.Sim, d *simnet.Dumbbell, flow uint64, cfg ZingConfig) *Zing {
	return StartZingAt(sim, d.Bottleneck, d.FwdDemux, flow, cfg)
}

// StartZingAt is the topology-agnostic form.
func StartZingAt(sim *simnet.Sim, entry *simnet.Link, demux *simnet.Demux, flow uint64, cfg ZingConfig) *Zing {
	cfg.applyDefaults()
	z := &Zing{
		cfg:    cfg,
		prober: NewProber(sim, entry, flow, cfg.PacketSize, 30*time.Microsecond),
	}
	demux.Register(flow, z.prober.Receiver())
	rng := rand.New(rand.NewSource(cfg.Seed))
	var tick func()
	tick = func() {
		if sim.Now() >= cfg.Horizon {
			return
		}
		z.prober.SendProbe(z.next, cfg.Flight)
		z.next++
		sim.Schedule(stats.Exp(rng, cfg.Mean), tick)
	}
	sim.Schedule(stats.Exp(rng, cfg.Mean), tick)
	return z
}

// ZingReport carries the loss characteristics a Poisson prober can
// estimate, following the Zhang et al. definitions the paper applies in
// §4.2: loss frequency as the fraction of lost probes, and loss episodes
// as maximal runs of consecutive lost probes whose duration is the time
// spanned by the run.
type ZingReport struct {
	Probes    int
	Lost      int
	Frequency float64
	Duration  stats.Summary
}

// Results returns the raw per-probe outcomes in send order. Call after
// the simulation has drained.
func (z *Zing) Results() []Obs { return z.prober.Results() }

// Report computes the estimates. Call after the simulation has drained.
func (z *Zing) Report() ZingReport {
	res := z.prober.Results()
	rep := ZingReport{Probes: len(res)}
	var runStart time.Duration
	var runLast time.Duration
	inRun := false
	endRun := func() {
		if inRun {
			rep.Duration.AddDuration(runLast - runStart)
			inRun = false
		}
	}
	for _, o := range res {
		lost := o.Lost > 0
		if lost {
			rep.Lost++
			if !inRun {
				inRun = true
				runStart = o.T
			}
			runLast = o.T
		} else {
			endRun()
		}
	}
	endRun()
	if rep.Probes > 0 {
		rep.Frequency = float64(rep.Lost) / float64(rep.Probes)
	}
	return rep
}
