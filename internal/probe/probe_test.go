package probe

import (
	"math"
	"testing"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/capture"
	"badabing/internal/simnet"
	"badabing/internal/traffic"
)

func TestProberCleanPath(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	p := NewProber(s, d.Bottleneck, 9, 600, 30*time.Microsecond)
	d.FwdDemux.Register(9, p.Receiver())
	s.Schedule(0, func() { p.SendProbe(0, 3) })
	s.Schedule(5*time.Millisecond, func() { p.SendProbe(1, 3) })
	s.Run(time.Second)
	res := p.Results()
	if len(res) != 2 {
		t.Fatalf("got %d observations, want 2", len(res))
	}
	for _, o := range res {
		if o.Lost != 0 || o.Sent != 3 {
			t.Errorf("probe %d: sent %d lost %d, want 3/0", o.Key, o.Sent, o.Lost)
		}
		// OWD ≈ propagation only on an idle path.
		if o.OWD < 50*time.Millisecond || o.OWD > 51*time.Millisecond {
			t.Errorf("probe %d OWD = %v, want ≈50ms", o.Key, o.OWD)
		}
	}
	sent, lost := p.PacketCounts()
	if sent != 6 || lost != 0 {
		t.Fatalf("packet counts %d/%d, want 6/0", sent, lost)
	}
}

func TestProberDetectsLoss(t *testing.T) {
	s := simnet.New()
	// Tiny queue: 2 × 600 B.
	sink := simnet.ReceiverFunc(func(*simnet.Packet) {})
	dmx := simnet.NewDemux()
	l := simnet.NewLink(s, simnet.Rate(1_000_000), 0, 1200, dmx)
	_ = sink
	p := NewProber(s, l, 9, 600, time.Microsecond)
	dmx.Register(9, p.Receiver())
	s.Schedule(0, func() { p.SendProbe(0, 5) }) // 5 packets into a 2-packet queue
	s.Run(time.Second)
	res := p.Results()
	if res[0].Lost == 0 {
		t.Fatal("no loss recorded despite overflow")
	}
	if res[0].Lost+2 > res[0].Sent {
		t.Fatalf("lost %d of %d: at least 2 should fit", res[0].Lost, res[0].Sent)
	}
}

func TestProberDuplicateKeyPanics(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	p := NewProber(s, d.Bottleneck, 9, 600, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate key did not panic")
		}
	}()
	p.SendProbe(1, 1)
	p.SendProbe(1, 1)
}

func TestFixedProbeSpacing(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	f := StartFixed(s, d, 9, FixedConfig{
		Interval:        10 * time.Millisecond,
		PacketsPerProbe: 3,
		Horizon:         time.Second,
	})
	s.Run(2 * time.Second)
	res := f.Results()
	if len(res) < 99 || len(res) > 101 {
		t.Fatalf("got %d probes in 1s at 10ms, want ≈100", len(res))
	}
	for i := 1; i < len(res); i++ {
		if gap := res[i].T - res[i-1].T; gap != 10*time.Millisecond {
			t.Fatalf("probe gap %v, want 10ms", gap)
		}
	}
}

func TestZingPoissonSpacing(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	z := StartZing(s, d, 9, ZingConfig{
		Mean:    100 * time.Millisecond,
		Horizon: 100 * time.Second,
		Seed:    3,
	})
	s.Run(101 * time.Second)
	rep := z.Report()
	// ≈1000 probes expected; Poisson fluctuation is ~±3%.
	if rep.Probes < 850 || rep.Probes > 1150 {
		t.Fatalf("got %d probes, want ≈1000", rep.Probes)
	}
	if rep.Lost != 0 || rep.Frequency != 0 {
		t.Fatalf("loss on idle path: %d lost", rep.Lost)
	}
}

func TestZingRunDetection(t *testing.T) {
	// Synthesize the report logic on a hand-built result set by driving
	// a tiny link that drops a known burst.
	s := simnet.New()
	dmx := simnet.NewDemux()
	l := simnet.NewLink(s, simnet.Rate(100_000_000), 0, 600*2, dmx)
	p := NewProber(s, l, 9, 600, 0)
	dmx.Register(9, p.Receiver())
	// Saturate the queue continuously from t=95ms to t=135ms so probes
	// at 100,110,120,130 ms all drop.
	blocker := func() {
		for i := 0; i < 900; i++ {
			i := i
			s.ScheduleAt(95*time.Millisecond+time.Duration(i)*48*time.Microsecond, func() {
				l.Send(&simnet.Packet{ID: s.NextPacketID(), Flow: 1, Kind: simnet.Data, Size: 600})
			})
		}
	}
	blocker()
	for i := 0; i < 30; i++ {
		i := i
		s.ScheduleAt(time.Duration(i)*10*time.Millisecond, func() {
			p.SendProbe(int64(i), 1)
		})
	}
	s.Run(time.Second)
	res := p.Results()
	lost := 0
	for _, o := range res {
		if o.Lost > 0 {
			lost++
		}
	}
	if lost < 2 {
		t.Skipf("blocker did not induce a multi-probe loss run (lost=%d)", lost)
	}
	z := &Zing{prober: p}
	rep := z.Report()
	if rep.Duration.N() == 0 {
		t.Fatal("no loss runs detected")
	}
	if rep.Duration.Mean() <= 0 {
		t.Fatal("run of consecutive losses should have positive span")
	}
}

func TestBadabingEstimatesCBREpisodes(t *testing.T) {
	// Integration: the full pipeline against engineered 68 ms episodes,
	// the core of Table 4. p=0.5 for a strong signal in a short run.
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	ids := traffic.NewIDSpace(1000)
	mon := capture.Attach(s, d.Bottleneck, capture.Config{})
	traffic.NewEpisodeInjector(s, d, ids, traffic.EpisodeInjectorConfig{
		Durations:       []time.Duration{68 * time.Millisecond},
		MeanSpacing:     10 * time.Second,
		Overload:        4,    // sharp episode edges, like the paper's Iperf bursts
		BaseUtilization: 0.25, // fast post-episode drain
		Seed:            2,
	})
	const (
		p       = 0.5
		horizon = 400 * time.Second
	)
	slot := badabing.DefaultSlot
	n := int64(horizon / slot)
	plans := badabing.MustSchedule(badabing.ScheduleConfig{P: p, N: n, Improved: true, Seed: 4})
	bb := StartBadabing(s, d, 7, BadabingConfig{
		Plans:  plans,
		Marker: badabing.RecommendedMarker(p, slot),
	})
	s.Run(horizon + time.Second)
	truth := mon.Truth(horizon, slot)
	rep := bb.Report()

	if !rep.HasDuration {
		t.Fatal("no duration estimate")
	}
	trueD := truth.Duration.Mean()
	// The estimator carries a small positive bias here (edge slots of
	// each episode are legitimately marked via the delay rule) plus
	// sampling noise at this horizon; 65% is the guardrail.
	if math.Abs(rep.Duration-trueD) > 0.65*trueD {
		t.Errorf("D̂ = %.3fs, true %.3fs (>65%% off)", rep.Duration, trueD)
	}
	if truth.Frequency == 0 {
		t.Fatal("no true congestion")
	}
	ratio := rep.Frequency / truth.Frequency
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("F̂/F = %.2f (F̂=%.5f, F=%.5f), want within [0.4,2.5]",
			ratio, rep.Frequency, truth.Frequency)
	}
}

func TestBadabingBeatsZingAtSameLoad(t *testing.T) {
	// Qualitative Table 8: at comparable probe load, BADABING's duration
	// estimate should be far closer to truth than ZING's.
	run := func(withZing bool) (est, trueD float64) {
		s := simnet.New()
		d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
		ids := traffic.NewIDSpace(1000)
		mon := capture.Attach(s, d.Bottleneck, capture.Config{})
		traffic.NewEpisodeInjector(s, d, ids, traffic.EpisodeInjectorConfig{
			Durations:   []time.Duration{68 * time.Millisecond},
			MeanSpacing: 10 * time.Second,
			Seed:        2,
		})
		const horizon = 300 * time.Second
		slot := badabing.DefaultSlot
		if withZing {
			// Match ≈ p=0.3 × 3 pkts / 5 ms ≈ 180 pkt/s.
			z := StartZing(s, d, 7, ZingConfig{
				Mean:       5555 * time.Microsecond,
				PacketSize: 600,
				Horizon:    horizon,
				Seed:       6,
			})
			s.Run(horizon + time.Second)
			rep := z.Report()
			return rep.Duration.Mean(), mon.Truth(horizon, slot).Duration.Mean()
		}
		plans := badabing.MustSchedule(badabing.ScheduleConfig{
			P: 0.3, N: int64(horizon / slot), Improved: false, Seed: 6})
		bb := StartBadabing(s, d, 7, BadabingConfig{
			Plans:  plans,
			Marker: badabing.RecommendedMarker(0.3, slot),
		})
		s.Run(horizon + time.Second)
		return bb.Report().Duration, mon.Truth(horizon, slot).Duration.Mean()
	}
	bbEst, trueD := run(false)
	zingEst, _ := run(true)
	bbErr := math.Abs(bbEst - trueD)
	zingErr := math.Abs(zingEst - trueD)
	if bbErr >= zingErr {
		t.Errorf("BADABING error %.3fs not better than ZING error %.3fs (true %.3fs, bb %.3fs, zing %.3fs)",
			bbErr, zingErr, trueD, bbEst, zingEst)
	}
}

func TestBadabingProbesShareOverlappingSlots(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	plans := []badabing.Plan{{Slot: 10, Probes: 2}, {Slot: 11, Probes: 2}}
	bb := StartBadabing(s, d, 7, BadabingConfig{Plans: plans})
	if bb.ProbeCount() != 3 {
		t.Fatalf("scheduled %d probes for overlapping experiments, want 3 (slots 10,11,12)", bb.ProbeCount())
	}
	s.Run(time.Second)
	rep := bb.Report()
	if rep.M != 2 {
		t.Fatalf("assembled %d experiments, want 2", rep.M)
	}
}
