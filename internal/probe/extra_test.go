package probe

import (
	"testing"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/simnet"
)

func TestProberOWDTracksQueueDelay(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	p := NewProber(s, d.Bottleneck, 9, 600, time.Microsecond)
	d.FwdDemux.Register(9, p.Receiver())
	// Pre-load the queue with ~50 ms of traffic, then probe.
	s.Schedule(0, func() {
		bytes := d.Bottleneck.Rate().Bytes(50 * time.Millisecond)
		for sent := 0; sent < bytes; sent += 1500 {
			d.Bottleneck.Send(&simnet.Packet{
				ID: s.NextPacketID(), Flow: 1, Kind: simnet.Data, Size: 1500,
			})
		}
		p.SendProbe(0, 1)
	})
	s.Run(time.Second)
	res := p.Results()
	// OWD ≈ 50 ms propagation + ~50 ms queueing.
	if res[0].OWD < 95*time.Millisecond || res[0].OWD > 106*time.Millisecond {
		t.Fatalf("OWD = %v, want ≈100ms", res[0].OWD)
	}
}

func TestBadabingObservationsInheritLastOWD(t *testing.T) {
	// A fully lost probe must borrow the most recent successful OWD as
	// its queue-depth estimate (§6.1).
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	bb := StartBadabing(s, d, 9, BadabingConfig{
		Plans: []badabing.Plan{{Slot: 0, Probes: 2}},
	})
	// Block the queue entirely during slot 1 by filling it beyond
	// capacity just before.
	s.Schedule(4*time.Millisecond, func() {
		over := d.Bottleneck.QueueCap() * 2
		for sent := 0; sent < over; sent += 1500 {
			d.Bottleneck.Send(&simnet.Packet{
				ID: s.NextPacketID(), Flow: 1, Kind: simnet.Data, Size: 1500,
			})
		}
	})
	s.Run(2 * time.Second)
	obs := bb.Observations()
	if len(obs) != 2 {
		t.Fatalf("got %d observations, want 2", len(obs))
	}
	if obs[1].LostPackets != obs[1].SentPackets {
		t.Skipf("slot-1 probe not fully lost (lost %d/%d)", obs[1].LostPackets, obs[1].SentPackets)
	}
	if obs[1].OWD == 0 {
		t.Fatal("fully lost probe did not inherit the previous OWD")
	}
	if obs[1].OWD != obs[0].OWD {
		t.Fatalf("inherited OWD %v != previous probe's %v", obs[1].OWD, obs[0].OWD)
	}
}

func TestZingFlightCounts(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	z := StartZing(s, d, 9, ZingConfig{
		Mean:    50 * time.Millisecond,
		Flight:  3,
		Horizon: 10 * time.Second,
		Seed:    4,
	})
	s.Run(11 * time.Second)
	rep := z.Report()
	if rep.Probes == 0 {
		t.Fatal("no probes sent")
	}
	for _, o := range z.Results() {
		if o.Sent != 3 {
			t.Fatalf("flight size %d, want 3", o.Sent)
		}
	}
	_ = rep
}

func TestZingConfigDefaults(t *testing.T) {
	var c ZingConfig
	c.applyDefaults()
	if c.Mean != 100*time.Millisecond || c.PacketSize != 256 || c.Flight != 1 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
}

func TestBadabingConfigDefaults(t *testing.T) {
	var c BadabingConfig
	c.applyDefaults()
	if c.Slot != badabing.DefaultSlot || c.PacketsPerProbe != 3 || c.PacketSize != 600 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.PktGap != 30*time.Microsecond {
		t.Fatalf("pkt gap %v, want 30µs (paper's host capability)", c.PktGap)
	}
}

func TestFixedHorizonRespected(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	f := StartFixed(s, d, 9, FixedConfig{
		Interval: 50 * time.Millisecond,
		Horizon:  500 * time.Millisecond,
	})
	s.Run(5 * time.Second)
	res := f.Results()
	for _, o := range res {
		if o.T > 500*time.Millisecond {
			t.Fatalf("probe at %v past the %v horizon", o.T, 500*time.Millisecond)
		}
	}
}

func TestBadabingReportEmptySchedule(t *testing.T) {
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	bb := StartBadabing(s, d, 9, BadabingConfig{})
	s.Run(time.Second)
	rep := bb.Report()
	if rep.M != 0 || rep.HasDuration || rep.Frequency != 0 {
		t.Fatalf("empty schedule produced estimates: %+v", rep)
	}
}
