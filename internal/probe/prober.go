// Package probe implements the probe-traffic side of the evaluation over
// simnet: the BADABING slot prober (multi-packet probes driven by a
// badabing.Schedule), a ZING-style Poisson-modulated prober, and a
// fixed-interval prober used for the probe-sensitivity experiments
// (Figures 7 and 8).
package probe

import (
	"time"

	"badabing/internal/simnet"
)

// arrival accumulates receiver-side state for one probe.
type arrival struct {
	count  int
	maxOWD time.Duration
}

// Prober sends multi-packet probes into a link and collects arrivals.
// Packets of one probe share a key; packet Seq encodes key and index.
// The Prober must be registered (via Receiver) on the demux that
// terminates the forward path.
type Prober struct {
	sim    *simnet.Sim
	link   *simnet.Link
	flow   uint64
	size   int
	pktGap time.Duration

	sent    map[int64]int
	sentAt  map[int64]time.Duration
	arrived map[int64]*arrival
	order   []int64
}

const pktsPerKey = 64

// NewProber creates a prober sending size-byte probe packets into link
// under the given flow id, spacing packets within a probe by pktGap
// (the paper's hosts managed ≈30 µs back-to-back).
func NewProber(sim *simnet.Sim, link *simnet.Link, flow uint64, size int, pktGap time.Duration) *Prober {
	return &Prober{
		sim:     sim,
		link:    link,
		flow:    flow,
		size:    size,
		pktGap:  pktGap,
		sent:    make(map[int64]int),
		sentAt:  make(map[int64]time.Duration),
		arrived: make(map[int64]*arrival),
	}
}

// Receiver returns the receiver to register for the probe flow.
func (p *Prober) Receiver() simnet.Receiver {
	return simnet.ReceiverFunc(p.deliver)
}

func (p *Prober) deliver(pkt *simnet.Packet) {
	key := pkt.Seq / pktsPerKey
	a := p.arrived[key]
	if a == nil {
		a = &arrival{}
		p.arrived[key] = a
	}
	a.count++
	if owd := p.sim.Now() - pkt.Sent; owd > a.maxOWD {
		a.maxOWD = owd
	}
}

// SendProbe emits a probe of n packets starting at the current virtual
// time. Each key must be used at most once.
func (p *Prober) SendProbe(key int64, n int) {
	if _, dup := p.sent[key]; dup {
		panic("probe: duplicate probe key")
	}
	p.sent[key] = n
	p.sentAt[key] = p.sim.Now()
	p.order = append(p.order, key)
	for i := 0; i < n; i++ {
		i := i
		p.sim.Schedule(time.Duration(i)*p.pktGap, func() {
			p.link.Send(&simnet.Packet{
				ID:   p.sim.NextPacketID(),
				Flow: p.flow,
				Kind: simnet.Probe,
				Size: p.size,
				Seq:  key*pktsPerKey + int64(i),
				Sent: p.sim.Now(),
			})
		})
	}
}

// Obs is the outcome of one probe after the simulation has drained.
type Obs struct {
	Key  int64
	T    time.Duration // send time of the probe's first packet
	Sent int
	Lost int
	OWD  time.Duration // max one-way delay among received packets
}

// Results returns per-probe outcomes in send order. Call only after the
// simulation has run long enough for all probe packets to be delivered or
// dropped.
func (p *Prober) Results() []Obs {
	out := make([]Obs, 0, len(p.order))
	for _, key := range p.order {
		o := Obs{Key: key, T: p.sentAt[key], Sent: p.sent[key]}
		if a := p.arrived[key]; a != nil {
			o.Lost = o.Sent - a.count
			o.OWD = a.maxOWD
		} else {
			o.Lost = o.Sent
		}
		out = append(out, o)
	}
	return out
}

// PacketCounts returns total probe packets sent and lost.
func (p *Prober) PacketCounts() (sent, lost int) {
	for _, o := range p.Results() {
		sent += o.Sent
		lost += o.Lost
	}
	return sent, lost
}
