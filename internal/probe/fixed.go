package probe

import (
	"time"

	"badabing/internal/simnet"
)

// FixedConfig parameterizes the fixed-interval prober used for the §6.1
// probe-sensitivity experiments: probes of N tightly spaced packets every
// Interval, guaranteeing that some probes overlap every loss episode.
type FixedConfig struct {
	// Interval between probes. Default 10 ms (§6.1).
	Interval time.Duration
	// PacketsPerProbe is the bunch length (1–10 in Figure 7).
	PacketsPerProbe int
	// PacketSize: default 600.
	PacketSize int
	// PktGap within a probe: default 30 µs.
	PktGap time.Duration
	// Horizon stops probing at this virtual time.
	Horizon time.Duration
}

func (c *FixedConfig) applyDefaults() {
	if c.Interval == 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.PacketsPerProbe == 0 {
		c.PacketsPerProbe = 1
	}
	if c.PacketSize == 0 {
		c.PacketSize = 600
	}
	if c.PktGap == 0 {
		c.PktGap = 30 * time.Microsecond
	}
}

// Fixed drives fixed-interval probing on a simulated path.
type Fixed struct {
	cfg    FixedConfig
	prober *Prober
}

// StartFixed begins probing immediately.
func StartFixed(sim *simnet.Sim, d *simnet.Dumbbell, flow uint64, cfg FixedConfig) *Fixed {
	return StartFixedAt(sim, d.Bottleneck, d.FwdDemux, flow, cfg)
}

// StartFixedAt is the topology-agnostic form.
func StartFixedAt(sim *simnet.Sim, entry *simnet.Link, demux *simnet.Demux, flow uint64, cfg FixedConfig) *Fixed {
	cfg.applyDefaults()
	f := &Fixed{
		cfg:    cfg,
		prober: NewProber(sim, entry, flow, cfg.PacketSize, cfg.PktGap),
	}
	demux.Register(flow, f.prober.Receiver())
	var key int64
	var tick func()
	tick = func() {
		if sim.Now() >= cfg.Horizon {
			return
		}
		f.prober.SendProbe(key, cfg.PacketsPerProbe)
		key++
		sim.Schedule(cfg.Interval, tick)
	}
	sim.Schedule(0, tick)
	return f
}

// Results returns the per-probe outcomes. Call after the simulation has
// drained.
func (f *Fixed) Results() []Obs { return f.prober.Results() }
