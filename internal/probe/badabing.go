package probe

import (
	"time"

	"badabing/internal/badabing"
	"badabing/internal/session"
	"badabing/internal/simnet"
)

// BadabingConfig parameterizes a simulated BADABING run.
type BadabingConfig struct {
	// Plans is the experiment schedule (from badabing.Schedule).
	Plans []badabing.Plan
	// Slot is the discretization width. Default badabing.DefaultSlot.
	Slot time.Duration
	// PacketsPerProbe: default 3 (§6.2).
	PacketsPerProbe int
	// PacketSize: default 600 bytes (§6.1).
	PacketSize int
	// PktGap spaces packets within a probe. Default 30 µs.
	PktGap time.Duration
	// Marker holds the α/τ congestion-marking parameters.
	Marker badabing.MarkerConfig
	// ExtendedPairs enables the §5.5 modification in the estimator:
	// extended experiments' overlapping slot pairs also feed R/S.
	ExtendedPairs bool
}

func (c *BadabingConfig) applyDefaults() {
	if c.Slot == 0 {
		c.Slot = badabing.DefaultSlot
	}
	if c.PacketsPerProbe == 0 {
		c.PacketsPerProbe = 3
	}
	if c.PacketSize == 0 {
		c.PacketSize = 600
	}
	if c.PktGap == 0 {
		c.PktGap = 30 * time.Microsecond
	}
}

// Badabing drives the slot-based probe process on a simulated path.
type Badabing struct {
	cfg    BadabingConfig
	prober *Prober
	slots  []int64 // deduplicated probe slots, in order
}

// StartBadabing schedules all probes of cfg.Plans on the dumbbell.
// Overlapping experiments share probes: each slot is probed at most once
// and its observation feeds every experiment covering it.
func StartBadabing(sim *simnet.Sim, d *simnet.Dumbbell, flow uint64, cfg BadabingConfig) *Badabing {
	return StartBadabingAt(sim, d.Bottleneck, d.FwdDemux, flow, cfg)
}

// StartBadabingAt is the topology-agnostic form: probes enter at entry
// and are collected from demux (e.g. a multi-hop simnet.Chain's Entry and
// FwdDemux).
func StartBadabingAt(sim *simnet.Sim, entry *simnet.Link, demux *simnet.Demux, flow uint64, cfg BadabingConfig) *Badabing {
	return StartBadabingSlots(sim, entry, demux, flow, cfg, badabing.ProbeSlots(cfg.Plans))
}

// StartBadabingSlots schedules one probe per slot of an already-flattened
// schedule (ascending, deduplicated — see badabing.ProbeSlots). It is the
// session engine's entry point, which derives the slot list itself;
// cfg.Plans is then only needed for the batch Report/Counts accessors.
func StartBadabingSlots(sim *simnet.Sim, entry *simnet.Link, demux *simnet.Demux, flow uint64, cfg BadabingConfig, slots []int64) *Badabing {
	cfg.applyDefaults()
	b := &Badabing{
		cfg:    cfg,
		prober: NewProber(sim, entry, flow, cfg.PacketSize, cfg.PktGap),
		slots:  slots,
	}
	demux.Register(flow, b.prober.Receiver())
	for _, slot := range b.slots {
		slot := slot
		sim.ScheduleAt(time.Duration(slot)*cfg.Slot, func() {
			b.prober.SendProbe(slot, cfg.PacketsPerProbe)
		})
	}
	return b
}

// ProbeCount returns the number of probes scheduled.
func (b *Badabing) ProbeCount() int { return len(b.slots) }

// PacketCounts returns total probe packets sent and lost so far.
func (b *Badabing) PacketCounts() (sent, lost int) { return b.prober.PacketCounts() }

// Observations converts raw probe results to marker inputs. Call after
// the simulation has drained.
func (b *Badabing) Observations() []badabing.ProbeObs {
	raw := b.prober.Results()
	obs := make([]badabing.ProbeObs, len(raw))
	for i, r := range raw {
		obs[i] = badabing.ProbeObs{
			Slot:        r.Key,
			T:           r.T,
			SentPackets: r.Sent,
			LostPackets: r.Lost,
			OWD:         r.OWD,
		}
	}
	badabing.InheritOWD(obs)
	return obs
}

// Report marks the observations, assembles experiment outcomes and
// returns the estimates. Call after the simulation has drained.
func (b *Badabing) Report() badabing.Report {
	return b.accumulate().MakeReport()
}

// Counts returns the assembled outcome tallies, for merging across rounds
// (e.g. by the adaptive controller). Experiments whose probes have not
// been sent yet are skipped, so mid-run snapshots are safe.
func (b *Badabing) Counts() badabing.Counts {
	return b.accumulate().Counts()
}

func (b *Badabing) accumulate() *badabing.Accumulator {
	acc := &badabing.Accumulator{Slot: b.cfg.Slot, ExtendedPairs: b.cfg.ExtendedPairs}
	bySlot := session.MarkSlots(b.Observations(), nil, b.cfg.Marker)
	badabing.Assemble(acc, b.cfg.Plans, bySlot)
	return acc
}
