// Package store is badabingd's durable measurement archive: an
// embedded, dependency-free write-ahead log of session lifecycle events
// and periodic estimate snapshots, with crash recovery, retention and a
// time-range query layer.
//
// On disk the archive is a directory of append-only segment files
// (`wal-NNNNNNNN.seg`). Each segment starts with an 8-byte magic and
// then holds length-prefixed binary records:
//
//	uint32  payload length (little endian)
//	uint32  CRC32-C of the payload (Castagnoli, little endian)
//	payload = 1 type byte + type-specific fields
//
// A record is durable once its bytes (and, under the "always" fsync
// policy, the fsync that follows them) hit the segment file. Recovery
// replays every segment in order and tolerates a torn or truncated tail:
// a short header, an impossible length or a CRC mismatch ends that
// segment's replay without error — the WAL guarantees a prefix, never
// the tail that was in flight when the process died.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// Record types. The type byte is the first payload byte.
const (
	recCreated byte = 0x01 // session registered: id, created, seed, config JSON
	recState   byte = 0x02 // lifecycle transition: id, at, state, flags, retries, seed, error
	recPoint   byte = 0x03 // periodic estimate snapshot: id + fixed-width Point
	recTotals  byte = 0x04 // registry lifetime totals (monotone across restarts)
	recFinal   byte = 0x05 // compaction summary: whole session in one record
)

// segMagic opens every segment file. The trailing byte versions the
// record format; bump it on incompatible changes.
var segMagic = [8]byte{'B', 'B', 'W', 'A', 'L', 0, 2, '\n'}

// maxRecord bounds a single record payload. Anything larger in a length
// field is corruption, not data: the biggest legitimate record is a
// recFinal carrying a config JSON, far under 1 MiB.
const maxRecord = 1 << 20

// recordOverhead is the framing cost per record: length + CRC.
const recordOverhead = 8

// zeroHdr reserves the framing header in an append chain without
// allocating (frame fills it in afterwards).
var zeroHdr [recordOverhead]byte

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Point is one persisted estimate snapshot: the F̂/D̂/loss-rate series
// element the history API serves. Encoded fixed-width so the steady-state
// append path never allocates.
type Point struct {
	// At is the wall-clock publish instant, Unix nanoseconds.
	At int64 `json:"at_unix_nano"`
	// SlotsDone is virtual measurement progress in slots.
	SlotsDone int64 `json:"slots_done"`
	// M is the number of experiments the estimates are computed from.
	M int64 `json:"m"`
	// Frequency is the loss-episode frequency estimate F̂ (total).
	Frequency float64 `json:"frequency"`
	// Duration is the mean loss-episode duration estimate D̂ in seconds,
	// valid when HasDuration.
	Duration    float64 `json:"duration_seconds"`
	HasDuration bool    `json:"has_duration"`
	// Probe/packet tallies at this instant (monotone within one run).
	ProbesSent  int64 `json:"probes_sent"`
	ProbesLost  int64 `json:"probes_lost"`
	PacketsSent int64 `json:"packets_sent"`
	PacketsLost int64 `json:"packets_lost"`
	Experiments int64 `json:"experiments"`
	// Bootstrap confidence bounds over the frequency and duration
	// estimates, present when the session runs the bootstrap estimator.
	// CILevel is the shared nominal coverage (e.g. 0.95).
	FreqLo    float64 `json:"freq_ci_lo,omitempty"`
	FreqHi    float64 `json:"freq_ci_hi,omitempty"`
	HasFreqCI bool    `json:"has_freq_ci,omitempty"`
	DurLo     float64 `json:"dur_ci_lo,omitempty"`
	DurHi     float64 `json:"dur_ci_hi,omitempty"`
	HasDurCI  bool    `json:"has_dur_ci,omitempty"`
	CILevel   float64 `json:"ci_level,omitempty"`
}

// LossRate is the packet loss rate at this point (0 before any packet).
func (p Point) LossRate() float64 {
	if p.PacketsSent == 0 {
		return 0
	}
	return float64(p.PacketsLost) / float64(p.PacketsSent)
}

// pointWidth is Point's fixed encoding: fifteen 8-byte fields + 1 flag
// byte.
const pointWidth = 15*8 + 1

// Totals are the registry's lifetime aggregate counters, persisted so
// daemon totals stay monotone across restarts.
type Totals struct {
	SessionsCreated  int64
	SessionsFinished int64
	SessionRetries   int64
	ProbesSent       int64
	ProbesLost       int64
	PacketsSent      int64
	PacketsLost      int64
	Experiments      int64
	WriteFailures    int64
}

const totalsWidth = 9 * 8

// maxTotals folds b into t field-wise (used during replay: the newest
// totals record wins, but a max is robust to reordered segments).
func (t *Totals) maxTotals(b Totals) {
	t.SessionsCreated = max64(t.SessionsCreated, b.SessionsCreated)
	t.SessionsFinished = max64(t.SessionsFinished, b.SessionsFinished)
	t.SessionRetries = max64(t.SessionRetries, b.SessionRetries)
	t.ProbesSent = max64(t.ProbesSent, b.ProbesSent)
	t.ProbesLost = max64(t.ProbesLost, b.ProbesLost)
	t.PacketsSent = max64(t.PacketsSent, b.PacketsSent)
	t.PacketsLost = max64(t.PacketsLost, b.PacketsLost)
	t.Experiments = max64(t.Experiments, b.Experiments)
	t.WriteFailures = max64(t.WriteFailures, b.WriteFailures)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- low-level append helpers (alloc-free on the steady path) ---

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendI64(dst []byte, v int64) []byte {
	return appendU64(dst, uint64(v))
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendPoint encodes p fixed-width.
func appendPoint(dst []byte, p Point) []byte {
	dst = appendI64(dst, p.At)
	dst = appendI64(dst, p.SlotsDone)
	dst = appendI64(dst, p.M)
	dst = appendF64(dst, p.Frequency)
	dst = appendF64(dst, p.Duration)
	var flags byte
	if p.HasDuration {
		flags |= 1
	}
	if p.HasFreqCI {
		flags |= 2
	}
	if p.HasDurCI {
		flags |= 4
	}
	dst = append(dst, flags)
	dst = appendI64(dst, p.ProbesSent)
	dst = appendI64(dst, p.ProbesLost)
	dst = appendI64(dst, p.PacketsSent)
	dst = appendI64(dst, p.PacketsLost)
	dst = appendI64(dst, p.Experiments)
	dst = appendF64(dst, p.FreqLo)
	dst = appendF64(dst, p.FreqHi)
	dst = appendF64(dst, p.DurLo)
	dst = appendF64(dst, p.DurHi)
	return appendF64(dst, p.CILevel)
}

func appendTotals(dst []byte, t Totals) []byte {
	dst = appendI64(dst, t.SessionsCreated)
	dst = appendI64(dst, t.SessionsFinished)
	dst = appendI64(dst, t.SessionRetries)
	dst = appendI64(dst, t.ProbesSent)
	dst = appendI64(dst, t.ProbesLost)
	dst = appendI64(dst, t.PacketsSent)
	dst = appendI64(dst, t.PacketsLost)
	dst = appendI64(dst, t.Experiments)
	return appendI64(dst, t.WriteFailures)
}

// frame wraps a payload already written at dst[start+recordOverhead:]
// by filling the length and CRC header in place. The caller reserves
// recordOverhead bytes at start before encoding the payload.
func frame(dst []byte, start int) []byte {
	payload := dst[start+recordOverhead:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// --- decode helpers: every read is bounds-checked, corruption returns
// errCorrupt instead of panicking or over-reading ---

var errCorrupt = fmt.Errorf("store: corrupt record")

type reader struct {
	b   []byte
	off int
	err bool
}

func (r *reader) fail() {
	r.err = true
}

func (r *reader) u64() uint64 {
	if r.err || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) byte() byte {
	if r.err || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) str() string {
	if r.err {
		return ""
	}
	n, w := binary.Uvarint(r.b[r.off:])
	if w <= 0 || n > uint64(len(r.b)-r.off-w) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off+w : r.off+w+int(n)])
	r.off += w + int(n)
	return s
}

func (r *reader) bytes() []byte {
	if r.err {
		return nil
	}
	n, w := binary.Uvarint(r.b[r.off:])
	if w <= 0 || n > uint64(len(r.b)-r.off-w) {
		r.fail()
		return nil
	}
	b := append([]byte(nil), r.b[r.off+w:r.off+w+int(n)]...)
	r.off += w + int(n)
	return b
}

func (r *reader) point() Point {
	p := Point{
		At:        r.i64(),
		SlotsDone: r.i64(),
		M:         r.i64(),
		Frequency: r.f64(),
		Duration:  r.f64(),
	}
	flags := r.byte()
	p.HasDuration = flags&1 != 0
	p.HasFreqCI = flags&2 != 0
	p.HasDurCI = flags&4 != 0
	p.ProbesSent = r.i64()
	p.ProbesLost = r.i64()
	p.PacketsSent = r.i64()
	p.PacketsLost = r.i64()
	p.Experiments = r.i64()
	p.FreqLo = r.f64()
	p.FreqHi = r.f64()
	p.DurLo = r.f64()
	p.DurHi = r.f64()
	p.CILevel = r.f64()
	return p
}

func (r *reader) totals() Totals {
	return Totals{
		SessionsCreated:  r.i64(),
		SessionsFinished: r.i64(),
		SessionRetries:   r.i64(),
		ProbesSent:       r.i64(),
		ProbesLost:       r.i64(),
		PacketsSent:      r.i64(),
		PacketsLost:      r.i64(),
		Experiments:      r.i64(),
		WriteFailures:    r.i64(),
	}
}

// record is one decoded WAL record (the union of all types).
type record struct {
	typ     byte
	id      string
	at      int64 // unixnano: created / transition instant
	seed    int64
	state   string
	term    bool
	errMsg  string
	retries int
	cfgJSON []byte
	point   Point
	totals  Totals
	// recFinal extras
	created, started, finished int64
}

// decodeRecord parses one framed payload (the bytes after length+CRC).
// It never panics and never reads past payload.
func decodeRecord(payload []byte) (record, error) {
	if len(payload) == 0 {
		return record{}, errCorrupt
	}
	r := &reader{b: payload, off: 1}
	rec := record{typ: payload[0]}
	switch rec.typ {
	case recCreated:
		rec.id = r.str()
		rec.at = r.i64()
		rec.seed = r.i64()
		rec.cfgJSON = r.bytes()
	case recState:
		rec.id = r.str()
		rec.at = r.i64()
		rec.state = r.str()
		rec.term = r.byte()&1 != 0
		rec.retries = int(r.u64())
		rec.seed = r.i64()
		rec.errMsg = r.str()
	case recPoint:
		rec.id = r.str()
		rec.point = r.point()
	case recTotals:
		rec.at = r.i64()
		rec.totals = r.totals()
	case recFinal:
		rec.id = r.str()
		rec.created = r.i64()
		rec.started = r.i64()
		rec.finished = r.i64()
		rec.seed = r.i64()
		rec.state = r.str()
		rec.term = r.byte()&1 != 0
		rec.retries = int(r.u64())
		rec.errMsg = r.str()
		rec.cfgJSON = r.bytes()
		rec.point = r.point()
	default:
		return record{}, errCorrupt
	}
	if r.err {
		return record{}, errCorrupt
	}
	return rec, nil
}

// scanSegment walks the framed records in a segment body (after the
// magic), calling fn for each valid record. It returns the byte offset
// of the end of the last valid record relative to the start of data —
// the truncation point for a torn tail — and whether the segment ended
// cleanly (no trailing garbage).
//
// Corruption (short header, impossible length, CRC mismatch, undecodable
// payload) ends the scan: the WAL guarantees a durable prefix, nothing
// after the first bad frame is trusted.
func scanSegment(data []byte, fn func(record)) (valid int, clean bool) {
	off := 0
	for {
		if off == len(data) {
			return off, true
		}
		if off+recordOverhead > len(data) {
			return off, false
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecord || int(n) > len(data)-off-recordOverhead {
			return off, false
		}
		payload := data[off+recordOverhead : off+recordOverhead+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, false
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return off, false
		}
		if fn != nil {
			fn(rec)
		}
		off += recordOverhead + int(n)
	}
}

// timeOf converts a unixnano to time.Time, zero for zero.
func timeOf(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}
