package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// These tests drive real append failures through the on-disk WAL —
// short writes under ENOSPC/EIO and fsync errors — and pin the unwind
// contract: the segment always ends at a valid record boundary, so a
// caller that treats the error as "not persisted" and replays the
// record (the breaker sink does) neither duplicates history nor
// strands later records behind a torn frame.

var errInjectedDisk = errors.New("injected: no space left on device")

// reopenPoints closes s, reopens the archive and returns s0001's
// replayed series plus the recovery info.
func reopenPoints(t *testing.T, s *Store, dir string) ([]Point, RecoveryInfo) {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, info := openT(t, Options{Dir: dir, Fsync: FsyncNever})
	defer r.Close()
	pts, _ := r.History("s0001", time.Time{}, time.Time{})
	return pts, info
}

func TestAppendShortWriteUnwindsToRecordBoundary(t *testing.T) {
	dir := t.TempDir()
	base := time.Unix(5000, 0)
	s, _ := openT(t, Options{Dir: dir, Fsync: FsyncNever})
	s.SessionCreated("s0001", base, []byte(`{}`), 1)
	for i := 1; i <= 3; i++ {
		s.SessionPoint("s0001", testPoint(base.Add(time.Duration(i)*time.Second).UnixNano(), i))
	}

	// The disk dies mid-frame: half the record lands, then an error.
	s.w.writeFn = func(f *os.File, b []byte) (int, error) {
		n, _ := f.Write(b[:len(b)/2])
		return n, errInjectedDisk
	}
	p4 := testPoint(base.Add(4*time.Second).UnixNano(), 4)
	if err := s.SessionPoint("s0001", p4); !errors.Is(err, errInjectedDisk) {
		t.Fatalf("append during fault = %v, want injected error", err)
	}
	if got := s.Stats().WriteErrors; got != 1 {
		t.Fatalf("write errors = %d, want 1", got)
	}

	// Disk recovers; the caller replays the failed record, then appends
	// one more behind it.
	s.w.writeFn = nil
	if err := s.SessionPoint("s0001", p4); err != nil {
		t.Fatalf("replay after recovery: %v", err)
	}
	p5 := testPoint(base.Add(5*time.Second).UnixNano(), 5)
	if err := s.SessionPoint("s0001", p5); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}

	pts, info := reopenPoints(t, s, dir)
	if info.TornTails != 0 {
		t.Fatalf("torn tails after unwind = %d, want 0", info.TornTails)
	}
	if len(pts) != 5 {
		t.Fatalf("replayed %d points, want 5 (no loss, no duplicate)", len(pts))
	}
	for i, p := range pts {
		if want := base.Add(time.Duration(i+1) * time.Second).UnixNano(); p.At != want {
			t.Fatalf("point %d at %d, want %d", i, p.At, want)
		}
	}
}

func TestAppendFsyncFailureRollsBackRecord(t *testing.T) {
	dir := t.TempDir()
	base := time.Unix(6000, 0)
	s, _ := openT(t, Options{Dir: dir, Fsync: FsyncAlways})
	s.SessionCreated("s0001", base, []byte(`{}`), 1)
	s.SessionPoint("s0001", testPoint(base.Add(time.Second).UnixNano(), 1))

	// Under FsyncAlways a record whose fsync fails was never
	// acknowledged: it must be cut from the file so a replay cannot
	// duplicate it.
	s.w.syncFn = func(f *os.File) error { return errInjectedDisk }
	p2 := testPoint(base.Add(2*time.Second).UnixNano(), 2)
	if err := s.SessionPoint("s0001", p2); !errors.Is(err, errInjectedDisk) {
		t.Fatalf("append during fsync fault = %v, want injected error", err)
	}
	if got := s.Stats().FsyncErrors; got == 0 {
		t.Fatal("fsync errors not counted")
	}

	s.w.syncFn = nil
	if err := s.SessionPoint("s0001", p2); err != nil {
		t.Fatalf("replay after recovery: %v", err)
	}

	pts, info := reopenPoints(t, s, dir)
	if info.TornTails != 0 {
		t.Fatalf("torn tails = %d, want 0", info.TornTails)
	}
	if len(pts) != 2 {
		t.Fatalf("replayed %d points, want 2 (rolled-back record must not duplicate)", len(pts))
	}
}

func TestRotateOpenFailureHealsOnNextAppend(t *testing.T) {
	dir := t.TempDir()
	base := time.Unix(7000, 0)
	// Every record overflows the segment, so every append rotates.
	s, _ := openT(t, Options{Dir: dir, SegmentBytes: 1, Fsync: FsyncNever})
	s.SessionCreated("s0001", base, []byte(`{}`), 1)
	s.SessionPoint("s0001", testPoint(base.Add(time.Second).UnixNano(), 1))

	// Block the next segment's creation: a directory squats on its path
	// (stands in for ENOSPC). The append that triggers rotation still
	// succeeds — its record is sealed and durable — but the WAL is left
	// without an active segment.
	next := s.w.activeIndex() + 1
	blocked := filepath.Join(dir, segName(next))
	if err := os.Mkdir(blocked, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.SessionPoint("s0001", testPoint(base.Add(2*time.Second).UnixNano(), 2)); err != nil {
		t.Fatalf("append triggering blocked rotation: %v", err)
	}
	if s.w.active != nil {
		t.Fatal("active segment survived a blocked rotation")
	}

	// While blocked, appends fail — visibly, not silently.
	p3 := testPoint(base.Add(3*time.Second).UnixNano(), 3)
	if err := s.SessionPoint("s0001", p3); err == nil {
		t.Fatal("append with no active segment and blocked reopen succeeded")
	}
	if got := s.Stats().WriteErrors; got == 0 {
		t.Fatal("blocked reopen not counted as write error")
	}

	// Space frees: the next append must heal the WAL without a restart.
	if err := os.Remove(blocked); err != nil {
		t.Fatal(err)
	}
	if err := s.SessionPoint("s0001", p3); err != nil {
		t.Fatalf("append after reopen path cleared: %v", err)
	}

	pts, info := reopenPoints(t, s, dir)
	if info.TornTails != 0 {
		t.Fatalf("torn tails = %d, want 0", info.TornTails)
	}
	if len(pts) != 3 {
		t.Fatalf("replayed %d points, want 3", len(pts))
	}
}
