package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// FsyncPolicy selects when appended records are flushed to stable
// storage.
type FsyncPolicy int

const (
	// FsyncInterval batches fsyncs on a timer (Options.FsyncInterval):
	// a crash can lose at most one interval's records. The default.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs after every append: nothing acknowledged is
	// ever lost, at the cost of one fsync per record.
	FsyncAlways
	// FsyncNever leaves flushing to the OS page cache. Fastest; a crash
	// may lose everything since the last kernel writeback.
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy parses the -fsync flag forms.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval", "batch", "":
		return FsyncInterval, nil
	case "never", "none":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval or never)", s)
}

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

func segName(index int) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, index, segSuffix)
}

// segIndexOf parses a segment filename, -1 for foreign files.
func segIndexOf(name string) int {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// listSegments returns the segment indexes present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idx []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n := segIndexOf(e.Name()); n >= 0 {
			idx = append(idx, n)
		}
	}
	sort.Ints(idx)
	return idx, nil
}

// segment is one open WAL file (only the active segment is ever open
// for writing).
type segment struct {
	f     *os.File
	index int
	size  int64 // bytes written including magic
	// firstAt/lastAt are the record-time bounds, for retention.
	firstAt, lastAt int64
}

// wal owns the segment files: appends, rotation, fsync accounting.
// It is not goroutine-safe; Store serializes access.
type wal struct {
	dir          string
	segmentBytes int64
	policy       FsyncPolicy

	active *segment
	// sealed segments still on disk, ascending by index. Only metadata
	// is kept; the files are not held open.
	sealed []segMeta

	// nextIndex is the segment a reopen creates when active is nil —
	// rotation or unwind abandoned the previous one after an I/O error.
	nextIndex int
	shut      bool // close() called; appends must not reopen

	dirty bool // records appended since the last fsync

	// writeFn/syncFn, when non-nil, replace the active segment's
	// Write/Sync so tests can inject short writes and fsync failures on
	// the real on-disk append path.
	writeFn func(f *os.File, b []byte) (int, error)
	syncFn  func(f *os.File) error

	// metrics, read lock-free by Stats/metrics scrapes.
	bytesWritten    atomic.Int64
	recordsWritten  atomic.Int64
	fsyncs          atomic.Int64
	fsyncNanos      atomic.Int64
	segmentsCreated atomic.Int64
	segmentsDropped atomic.Int64
	writeErrors     atomic.Int64
	fsyncErrors     atomic.Int64
	lastErr         atomic.Value // error string
}

type segMeta struct {
	index           int
	size            int64
	firstAt, lastAt int64
}

func (w *wal) setErr(err error) {
	if err != nil {
		w.lastErr.Store(err.Error())
	}
}

// openWAL opens dir's highest segment for append (truncating a torn
// tail to validSize first) or creates segment startIndex when none
// exists. Recovery has already scanned the files.
func (w *wal) openActive(index int, validSize int64, meta segMeta) error {
	path := filepath.Join(w.dir, segName(index))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if st.Size() < int64(len(segMagic)) || validSize < int64(len(segMagic)) {
		// brand new (or hopelessly corrupt) segment: write the magic.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if _, err := f.WriteAt(segMagic[:], 0); err != nil {
			f.Close()
			return err
		}
		validSize = int64(len(segMagic))
		w.segmentsCreated.Add(1)
	} else if st.Size() > validSize {
		// torn tail: drop the bytes after the last valid record so new
		// appends continue a clean prefix.
		if err := f.Truncate(validSize); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(validSize, 0); err != nil {
		f.Close()
		return err
	}
	w.active = &segment{f: f, index: index, size: validSize,
		firstAt: meta.firstAt, lastAt: meta.lastAt}
	w.nextIndex = index
	return nil
}

// rotate seals the (already fsynced) active segment and opens the next
// one. A failure to open the next segment is not fatal to the append
// that triggered rotation — the record is durable in the sealed file —
// so it only leaves active nil; the next append retries via reopen.
func (w *wal) rotate() {
	a := w.active
	if err := a.f.Close(); err != nil {
		// The tail was fsynced before sealing; a close error loses no
		// records, so record it and move on.
		w.setErr(err)
	}
	w.sealed = append(w.sealed, segMeta{index: a.index, size: a.size,
		firstAt: a.firstAt, lastAt: a.lastAt})
	w.active = nil
	w.nextIndex = a.index + 1
	if err := w.openActive(a.index+1, 0, segMeta{}); err != nil {
		w.setErr(err)
		return
	}
	if err := syncDir(w.dir); err != nil {
		w.setErr(err)
	}
}

// reopen recreates an active segment after rotate or unwind abandoned
// it (e.g. ENOSPC creating the next file). Appends call this so the
// WAL heals as soon as the disk recovers instead of failing until
// restart.
func (w *wal) reopen() error {
	if w.shut {
		return errors.New("store: wal closed")
	}
	idx := w.nextIndex
	if idx <= 0 {
		idx = 1
	}
	if err := w.openActive(idx, 0, segMeta{}); err != nil {
		w.setErr(err)
		return err
	}
	if err := syncDir(w.dir); err != nil {
		w.setErr(err)
	}
	return nil
}

// activeIndex is the segment new appends land in — the reopen target
// when the active segment was abandoned after an I/O error.
func (w *wal) activeIndex() int {
	if w.active != nil {
		return w.active.index
	}
	if w.nextIndex > 0 {
		return w.nextIndex
	}
	return 1
}

// append writes one framed record (frame already applied to buf) and
// applies the fsync policy. at is the record's logical timestamp for
// retention bookkeeping (0 for untimed records).
//
// On any error the segment is rewound to the pre-write offset, so the
// file always ends at a valid record boundary: a caller that treats the
// error as "not persisted" and replays the record (the breaker sink
// does) can neither duplicate it nor strand readable records behind a
// torn frame.
func (w *wal) append(buf []byte, at int64) error {
	if w.active == nil {
		if err := w.reopen(); err != nil {
			w.writeErrors.Add(1)
			return err
		}
	}
	a := w.active
	start := a.size
	var n int
	var err error
	if w.writeFn != nil {
		n, err = w.writeFn(a.f, buf)
	} else {
		n, err = a.f.Write(buf)
	}
	a.size += int64(n)
	w.bytesWritten.Add(int64(n))
	if err != nil {
		w.writeErrors.Add(1)
		w.setErr(err)
		w.unwind(start)
		return err
	}
	w.dirty = true
	if w.policy == FsyncAlways || a.size >= w.segmentBytes {
		// The pre-rotation fsync shares this path: a segment is never
		// sealed with an unflushed tail.
		if err := w.fsync(); err != nil {
			w.unwind(start)
			return err
		}
	}
	w.recordsWritten.Add(1)
	if at != 0 {
		if a.firstAt == 0 {
			a.firstAt = at
		}
		a.lastAt = at
	}
	if a.size >= w.segmentBytes {
		w.rotate()
	}
	return nil
}

// unwind restores the active segment to end at offset to after a failed
// write or fsync. When even that fails the segment is abandoned: sealed
// at its valid prefix, with appends moving to a fresh segment — readers
// and recovery stop a segment's scan at the first bad frame, so the
// prefix stays intact and nothing ever lands after the torn bytes.
func (w *wal) unwind(to int64) {
	a := w.active
	if a == nil {
		return
	}
	if err := a.f.Truncate(to); err == nil {
		if _, err := a.f.Seek(to, 0); err == nil {
			a.size = to
			// Force a future fsync to flush the truncation even if the
			// failed record was the only dirty state.
			w.dirty = true
			return
		}
	}
	a.f.Close()
	w.sealed = append(w.sealed, segMeta{index: a.index, size: to,
		firstAt: a.firstAt, lastAt: a.lastAt})
	w.active = nil
	w.nextIndex = a.index + 1
}

// fsync flushes the active segment if dirty.
func (w *wal) fsync() error {
	if !w.dirty || w.active == nil || w.policy == FsyncNever {
		w.dirty = false
		return nil
	}
	start := time.Now()
	var err error
	if w.syncFn != nil {
		err = w.syncFn(w.active.f)
	} else {
		err = w.active.f.Sync()
	}
	w.fsyncs.Add(1)
	w.fsyncNanos.Add(int64(time.Since(start)))
	if err != nil {
		w.fsyncErrors.Add(1)
		w.setErr(err)
		return err
	}
	w.dirty = false
	return nil
}

// dropSealed deletes sealed segments for which keep returns false,
// returning how many were removed.
func (w *wal) dropSealed(keep func(segMeta) bool) (int, error) {
	var kept []segMeta
	dropped := 0
	var firstErr error
	for _, m := range w.sealed {
		if keep(m) {
			kept = append(kept, m)
			continue
		}
		if err := os.Remove(filepath.Join(w.dir, segName(m.index))); err != nil && !os.IsNotExist(err) {
			w.setErr(err)
			if firstErr == nil {
				firstErr = err
			}
			kept = append(kept, m)
			continue
		}
		dropped++
	}
	w.sealed = kept
	if dropped > 0 {
		w.segmentsDropped.Add(int64(dropped))
		if err := syncDir(w.dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return dropped, firstErr
}

func (w *wal) close() error {
	w.shut = true
	if w.active == nil {
		return nil
	}
	err := w.fsync()
	if cerr := w.active.f.Close(); err == nil {
		err = cerr
	}
	w.active = nil
	return err
}

// segmentCount is sealed + active.
func (w *wal) segmentCount() int {
	n := len(w.sealed)
	if w.active != nil {
		n++
	}
	return n
}

// syncDir fsyncs a directory so renames/creates/removes are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
