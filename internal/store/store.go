package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options parameterizes Open.
type Options struct {
	// Dir is the data directory; created if absent.
	Dir string
	// SegmentBytes rotates the active segment past this size.
	// Default 4 MiB.
	SegmentBytes int64
	// Fsync selects the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the batch-fsync cadence under FsyncInterval.
	// Default 100ms.
	FsyncInterval time.Duration
	// Retention drops history older than this horizon (whole segments
	// are deleted; terminal sessions are first compacted to a
	// final-summary record). 0 keeps everything forever.
	Retention time.Duration
	// CompactInterval is the retention sweep cadence. Default 1m.
	CompactInterval time.Duration
	// Now is a test hook for the clock. Default time.Now.
	Now func() time.Time
}

func (o *Options) applyDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.CompactInterval <= 0 {
		o.CompactInterval = time.Minute
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// Session is a recovered session as rebuilt from the WAL: what the
// registry needs to re-register it after a restart.
type Session struct {
	ID         string
	ConfigJSON []byte
	Seed       int64
	State      string
	Terminal   bool
	Err        string
	Retries    int
	Created    time.Time
	Started    time.Time
	Finished   time.Time
	// LastPoint is the newest persisted estimate snapshot (zero when
	// the session never published one); Points is the series length.
	LastPoint Point
	Points    int
}

// RecoveryInfo summarizes what Open replayed.
type RecoveryInfo struct {
	// Sessions are the recovered sessions in creation order.
	Sessions []Session
	// Totals are the registry lifetime counters at the crash/shutdown.
	Totals Totals
	// Segments and Records count what was scanned; TornTails counts
	// segments that ended in a torn or corrupt frame.
	Segments  int
	Records   int
	TornTails int
	// Duration is how long the replay took.
	Duration time.Duration
}

// sessionRec is the in-memory index entry behind one session.
type sessionRec struct {
	id      string
	cfgJSON []byte
	seed    int64
	state   string
	term    bool
	errMsg  string
	retries int

	createdNs, startedNs, finishedNs int64

	points []Point

	// idSeg is the segment holding the session's newest identity record
	// (created or final); compaction re-writes the identity forward
	// before dropping that segment.
	idSeg int
}

func (sr *sessionRec) lastPoint() (Point, bool) {
	if len(sr.points) == 0 {
		return Point{}, false
	}
	return sr.points[len(sr.points)-1], true
}

func (sr *sessionRec) view() Session {
	v := Session{
		ID:         sr.id,
		ConfigJSON: sr.cfgJSON,
		Seed:       sr.seed,
		State:      sr.state,
		Terminal:   sr.term,
		Err:        sr.errMsg,
		Retries:    sr.retries,
		Created:    timeOf(sr.createdNs),
		Started:    timeOf(sr.startedNs),
		Finished:   timeOf(sr.finishedNs),
		Points:     len(sr.points),
	}
	if p, ok := sr.lastPoint(); ok {
		v.LastPoint = p
	}
	return v
}

// Store is the durable measurement archive. All methods are safe for
// concurrent use. The event-append methods (SessionCreated,
// SessionState, SessionPoint, RegistryTotals) satisfy the registry's
// sink interface and surface real WAL append/fsync errors (disk full,
// I/O error) to the caller — the fleet's store circuit breaker uses
// them to trip into its spill buffer. Every error is also tallied in
// Stats (WriteErrors/FsyncErrors) so silent loss is visible on
// /metrics. Appends after Close are dropped and counted, never a
// panic.
type Store struct {
	opts Options

	mu       sync.Mutex
	w        wal
	sessions map[string]*sessionRec
	order    []string
	totals   Totals
	buf      []byte // reusable framed-record scratch
	closed   bool

	recordsReplayed atomic.Int64
	tornTails       atomic.Int64
	recoveryNanos   atomic.Int64
	compactions     atomic.Int64
	droppedClosed   atomic.Int64

	stopBg chan struct{}
	bgDone sync.WaitGroup
}

// Open creates or reopens the archive at opts.Dir, replaying every
// segment to rebuild the session index. A torn or truncated tail ends
// a segment's replay without error; the bad tail of the active segment
// is truncated away so appends continue a clean prefix.
func Open(opts Options) (*Store, RecoveryInfo, error) {
	opts.applyDefaults()
	if opts.Dir == "" {
		return nil, RecoveryInfo{}, fmt.Errorf("store: no data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, err
	}
	s := &Store{
		opts:     opts,
		sessions: make(map[string]*sessionRec),
		stopBg:   make(chan struct{}),
	}
	s.w = wal{dir: opts.Dir, segmentBytes: opts.SegmentBytes, policy: opts.Fsync}

	start := time.Now()
	info, err := s.replay()
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	info.Duration = time.Since(start)
	s.recoveryNanos.Store(int64(info.Duration))
	s.recordsReplayed.Store(int64(info.Records))
	s.tornTails.Store(int64(info.TornTails))
	info.Totals = s.totals
	info.Sessions = s.sessionViewsLocked()

	// Background fsync batching and retention sweeps.
	if opts.Fsync == FsyncInterval {
		s.bgDone.Add(1)
		go s.fsyncLoop()
	}
	if opts.Retention > 0 {
		s.bgDone.Add(1)
		go s.compactLoop()
	}
	return s, info, nil
}

// replay scans every segment and opens the newest for append.
func (s *Store) replay() (RecoveryInfo, error) {
	var info RecoveryInfo
	indexes, err := listSegments(s.opts.Dir)
	if err != nil {
		return info, err
	}
	info.Segments = len(indexes)

	lastIdx := 1
	lastValid := int64(0)
	var lastMeta segMeta
	for i, idx := range indexes {
		path := filepath.Join(s.opts.Dir, segName(idx))
		raw, err := os.ReadFile(path)
		if err != nil {
			return info, err
		}
		meta := segMeta{index: idx, size: int64(len(raw))}
		goodMagic := len(raw) >= len(segMagic) && [8]byte(raw[:8]) == segMagic
		valid := 0
		clean := false
		if goodMagic {
			valid, clean = scanSegment(raw[len(segMagic):], func(rec record) {
				info.Records++
				s.applyLocked(rec, idx, &meta)
			})
		}
		if !clean {
			info.TornTails++
		}
		validSize := int64(0) // bad magic: re-initialize if it becomes active
		if goodMagic {
			validSize = int64(len(segMagic) + valid)
		}
		if i == len(indexes)-1 {
			lastIdx, lastValid, lastMeta = idx, validSize, meta
		} else {
			meta.size = validSize
			s.w.sealed = append(s.w.sealed, meta)
		}
	}
	if err := s.w.openActive(lastIdx, lastValid, lastMeta); err != nil {
		return info, err
	}
	// A full recovered segment rotates immediately on the next append;
	// that is fine.
	return info, nil
}

// applyLocked folds one replayed record into the index. seg is the
// segment it came from; meta collects the segment's time bounds.
func (s *Store) applyLocked(rec record, seg int, meta *segMeta) {
	switch rec.typ {
	case recCreated:
		sr := s.upsertLocked(rec.id)
		sr.cfgJSON = rec.cfgJSON
		sr.createdNs = rec.at
		if rec.seed != 0 {
			sr.seed = rec.seed
		}
		sr.idSeg = seg
		meta.note(rec.at)
	case recState:
		sr := s.upsertLocked(rec.id)
		s.applyStateLocked(sr, rec.state, rec.term, rec.errMsg, rec.retries, rec.seed, rec.at)
		meta.note(rec.at)
	case recPoint:
		sr := s.upsertLocked(rec.id)
		sr.addPoint(rec.point)
		meta.note(rec.point.At)
	case recTotals:
		s.totals.maxTotals(rec.totals)
		meta.note(rec.at)
	case recFinal:
		sr := s.upsertLocked(rec.id)
		sr.cfgJSON = rec.cfgJSON
		sr.createdNs = rec.created
		sr.startedNs = rec.started
		sr.finishedNs = rec.finished
		if rec.seed != 0 {
			sr.seed = rec.seed
		}
		sr.state = rec.state
		sr.term = rec.term
		sr.errMsg = rec.errMsg
		sr.retries = rec.retries
		if rec.point.At != 0 {
			sr.addPoint(rec.point)
		}
		sr.idSeg = seg
		meta.note(rec.finished)
	}
}

func (m *segMeta) note(at int64) {
	if at == 0 {
		return
	}
	if m.firstAt == 0 || at < m.firstAt {
		m.firstAt = at
	}
	if at > m.lastAt {
		m.lastAt = at
	}
}

func (s *Store) upsertLocked(id string) *sessionRec {
	sr, ok := s.sessions[id]
	if !ok {
		sr = &sessionRec{id: id, state: "pending"}
		s.sessions[id] = sr
		s.order = append(s.order, id)
	}
	return sr
}

// addPoint appends monotonically: replay may present the same point
// twice (a recFinal echoes the last live point), so equal-or-older
// timestamps are dropped.
func (sr *sessionRec) addPoint(p Point) {
	if last, ok := sr.lastPoint(); ok && p.At <= last.At {
		return
	}
	sr.points = append(sr.points, p)
}

func (s *Store) applyStateLocked(sr *sessionRec, state string, term bool, errMsg string, retries int, seed, atNs int64) {
	sr.state = state
	sr.term = term
	sr.errMsg = errMsg
	sr.retries = retries
	if seed != 0 {
		sr.seed = seed
	}
	switch {
	case term:
		sr.finishedNs = atNs
	case state == "running" && sr.startedNs == 0:
		sr.startedNs = atNs
	case state == "pending":
		// a retry re-queues: the next running transition restamps.
		sr.startedNs = 0
	}
}

func (s *Store) sessionViewsLocked() []Session {
	out := make([]Session, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.sessions[id].view())
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// --- event sink (the registry's write path) ---

// SessionCreated records a new session and its (defaulted) config. The
// returned error is the WAL append/fsync failure, if any; the in-memory
// index is updated either way, so queries keep working while a breaker
// handles durability.
func (s *Store) SessionCreated(id string, at time.Time, cfgJSON []byte, seed int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dropIfClosedLocked() {
		return nil
	}
	sr := s.upsertLocked(id)
	sr.cfgJSON = append([]byte(nil), cfgJSON...)
	sr.createdNs = at.UnixNano()
	if seed != 0 {
		sr.seed = seed
	}
	sr.idSeg = s.w.activeIndex()

	s.buf = s.buf[:0]
	s.buf = append(s.buf, zeroHdr[:]...)
	s.buf = append(s.buf, recCreated)
	s.buf = appendStr(s.buf, id)
	s.buf = appendI64(s.buf, at.UnixNano())
	s.buf = appendI64(s.buf, seed)
	s.buf = appendBytes(s.buf, cfgJSON)
	return s.w.append(frame(s.buf, 0), at.UnixNano())
}

// SessionState records a lifecycle transition.
func (s *Store) SessionState(id string, at time.Time, state string, terminal bool, errMsg string, retries int, seed int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dropIfClosedLocked() {
		return nil
	}
	sr := s.upsertLocked(id)
	s.applyStateLocked(sr, state, terminal, errMsg, retries, seed, at.UnixNano())

	s.buf = s.buf[:0]
	s.buf = append(s.buf, zeroHdr[:]...)
	s.buf = append(s.buf, recState)
	s.buf = appendStr(s.buf, id)
	s.buf = appendI64(s.buf, at.UnixNano())
	s.buf = appendStr(s.buf, state)
	var flags byte
	if terminal {
		flags |= 1
	}
	s.buf = append(s.buf, flags)
	s.buf = appendU64(s.buf, uint64(retries))
	s.buf = appendI64(s.buf, seed)
	s.buf = appendStr(s.buf, errMsg)
	return s.w.append(frame(s.buf, 0), at.UnixNano())
}

// SessionPoint appends one estimate snapshot to a session's series.
// This is the steady-state hot path: the encode is allocation-free.
func (s *Store) SessionPoint(id string, p Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dropIfClosedLocked() {
		return nil
	}
	s.upsertLocked(id).addPoint(p)
	s.encodePointLocked(id, p)
	return s.w.append(s.buf, p.At)
}

// encodePointLocked builds the framed recPoint into s.buf.
func (s *Store) encodePointLocked(id string, p Point) {
	s.buf = s.buf[:0]
	s.buf = append(s.buf, zeroHdr[:]...)
	s.buf = append(s.buf, recPoint)
	s.buf = appendStr(s.buf, id)
	s.buf = appendPoint(s.buf, p)
	frame(s.buf, 0)
}

// RegistryTotals records the registry's lifetime counters; the newest
// record seeds the counters after a restart so totals stay monotone.
func (s *Store) RegistryTotals(t Totals) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dropIfClosedLocked() {
		return nil
	}
	s.totals.maxTotals(t)
	at := s.opts.Now().UnixNano()
	s.buf = s.buf[:0]
	s.buf = append(s.buf, zeroHdr[:]...)
	s.buf = append(s.buf, recTotals)
	s.buf = appendI64(s.buf, at)
	s.buf = appendTotals(s.buf, t)
	return s.w.append(frame(s.buf, 0), at)
}

func (s *Store) dropIfClosedLocked() bool {
	if s.closed {
		s.droppedClosed.Add(1)
		return true
	}
	return false
}

// --- queries ---

// History returns the persisted estimate series for a session within
// [from, to] (zero bounds are open). ok reports whether the session is
// known to the archive.
func (s *Store) History(id string, from, to time.Time) (points []Point, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, found := s.sessions[id]
	if !found {
		return nil, false
	}
	fromNs, toNs := rangeNs(from, to)
	out := make([]Point, 0, len(sr.points))
	for _, p := range sr.points {
		if p.At < fromNs || p.At > toNs {
			continue
		}
		out = append(out, p)
	}
	return out, true
}

func rangeNs(from, to time.Time) (int64, int64) {
	fromNs := int64(0)
	if !from.IsZero() {
		fromNs = from.UnixNano()
	}
	toNs := int64(1<<63 - 1)
	if !to.IsZero() {
		toNs = to.UnixNano()
	}
	return fromNs, toNs
}

// Sessions returns every archived session in creation order.
func (s *Store) Sessions() []Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessionViewsLocked()
}

// Totals returns the persisted registry counters.
func (s *Store) Totals() Totals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totals
}

// Stats is the archive's operational snapshot (the /store/stats and
// /metrics source).
type Stats struct {
	Dir               string  `json:"dir"`
	Sessions          int     `json:"sessions"`
	Points            int     `json:"points"`
	Segments          int     `json:"segments"`
	BytesWritten      int64   `json:"bytes_written"`
	RecordsWritten    int64   `json:"records_written"`
	RecordsReplayed   int64   `json:"records_replayed"`
	TornTails         int64   `json:"torn_tails"`
	RecoverySeconds   float64 `json:"recovery_seconds"`
	Fsyncs            int64   `json:"fsyncs"`
	FsyncSeconds      float64 `json:"fsync_seconds_total"`
	SegmentsCreated   int64   `json:"segments_created"`
	SegmentsDropped   int64   `json:"segments_dropped"`
	Compactions       int64   `json:"compactions"`
	DroppedAfterClose int64   `json:"dropped_after_close"`
	// WriteErrors and FsyncErrors are cumulative WAL append/fsync
	// failures — the alertable silent-loss signal (a healthy archive
	// keeps both at zero).
	WriteErrors      int64   `json:"write_errors"`
	FsyncErrors      int64   `json:"fsync_errors"`
	FsyncPolicy      string  `json:"fsync_policy"`
	RetentionSeconds float64 `json:"retention_seconds"`
	LastError        string  `json:"last_error,omitempty"`
}

// Stats snapshots the archive's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	nSessions := len(s.sessions)
	nPoints := 0
	for _, sr := range s.sessions {
		nPoints += len(sr.points)
	}
	segments := s.w.segmentCount()
	s.mu.Unlock()
	st := Stats{
		Dir:               s.opts.Dir,
		Sessions:          nSessions,
		Points:            nPoints,
		Segments:          segments,
		BytesWritten:      s.w.bytesWritten.Load(),
		RecordsWritten:    s.w.recordsWritten.Load(),
		RecordsReplayed:   s.recordsReplayed.Load(),
		TornTails:         s.tornTails.Load(),
		RecoverySeconds:   time.Duration(s.recoveryNanos.Load()).Seconds(),
		Fsyncs:            s.w.fsyncs.Load(),
		FsyncSeconds:      time.Duration(s.w.fsyncNanos.Load()).Seconds(),
		SegmentsCreated:   s.w.segmentsCreated.Load(),
		SegmentsDropped:   s.w.segmentsDropped.Load(),
		Compactions:       s.compactions.Load(),
		DroppedAfterClose: s.droppedClosed.Load(),
		WriteErrors:       s.w.writeErrors.Load(),
		FsyncErrors:       s.w.fsyncErrors.Load(),
		FsyncPolicy:       s.opts.Fsync.String(),
		RetentionSeconds:  s.opts.Retention.Seconds(),
	}
	if e, ok := s.w.lastErr.Load().(string); ok {
		st.LastError = e
	}
	return st
}

// --- retention / compaction ---

// Compact applies the retention policy now: terminal sessions whose
// identity lives in expiring segments are first re-written as a single
// final-summary record, then whole sealed segments older than the
// horizon are deleted and the in-memory series trimmed to match. A
// no-op without a retention horizon.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opts.Retention <= 0 {
		return
	}
	s.compactLocked(s.opts.Now())
}

func (s *Store) compactLocked(now time.Time) {
	horizon := now.Add(-s.opts.Retention).UnixNano()
	expiring := make(map[int]bool)
	for _, m := range s.w.sealed {
		if m.lastAt != 0 && m.lastAt < horizon {
			expiring[m.index] = true
		}
	}
	if len(expiring) == 0 {
		return
	}
	// Carry every session whose identity record is about to vanish
	// forward into the active segment as one final-summary record, so a
	// restart after the drop still knows it.
	for _, id := range s.order {
		sr := s.sessions[id]
		if expiring[sr.idSeg] {
			s.appendFinalLocked(sr)
		}
	}
	s.w.dropSealed(func(m segMeta) bool { return !expiring[m.index] })
	// The on-disk series older than the horizon is gone (segment
	// granularity); trim the queryable series to the same horizon,
	// always keeping the newest point so final estimates survive.
	for _, sr := range s.sessions {
		sr.trimBefore(horizon)
	}
	s.compactions.Add(1)
}

func (sr *sessionRec) trimBefore(horizonNs int64) {
	cut := 0
	for cut < len(sr.points)-1 && sr.points[cut].At < horizonNs {
		cut++
	}
	if cut > 0 {
		sr.points = append(sr.points[:0], sr.points[cut:]...)
	}
}

// appendFinalLocked writes a whole-session summary record.
func (s *Store) appendFinalLocked(sr *sessionRec) {
	last, _ := sr.lastPoint()
	s.buf = s.buf[:0]
	s.buf = append(s.buf, zeroHdr[:]...)
	s.buf = append(s.buf, recFinal)
	s.buf = appendStr(s.buf, sr.id)
	s.buf = appendI64(s.buf, sr.createdNs)
	s.buf = appendI64(s.buf, sr.startedNs)
	s.buf = appendI64(s.buf, sr.finishedNs)
	s.buf = appendI64(s.buf, sr.seed)
	s.buf = appendStr(s.buf, sr.state)
	var flags byte
	if sr.term {
		flags |= 1
	}
	s.buf = append(s.buf, flags)
	s.buf = appendU64(s.buf, uint64(sr.retries))
	s.buf = appendStr(s.buf, sr.errMsg)
	s.buf = appendBytes(s.buf, sr.cfgJSON)
	s.buf = appendPoint(s.buf, last)
	s.w.append(frame(s.buf, 0), s.opts.Now().UnixNano())
	sr.idSeg = s.w.activeIndex()
}

// --- background loops / shutdown ---

func (s *Store) fsyncLoop() {
	defer s.bgDone.Done()
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopBg:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				s.w.fsync()
			}
			s.mu.Unlock()
		}
	}
}

func (s *Store) compactLoop() {
	defer s.bgDone.Done()
	t := time.NewTicker(s.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopBg:
			return
		case <-t.C:
			s.Compact()
		}
	}
}

// Sync forces pending appends to stable storage regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.w.policy == FsyncNever {
		if s.w.active != nil && s.w.dirty {
			s.w.dirty = false
			return s.w.active.f.Sync()
		}
		return nil
	}
	return s.w.fsync()
}

// Close flushes the WAL and closes the active segment. Later appends
// are counted and dropped, never an error or panic — the registry
// guarantees it closes the store only after the last session goroutine
// joins, so drops indicate a bug and are surfaced in Stats.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stopBg)
	policy := s.w.policy
	if policy == FsyncNever && s.w.active != nil && s.w.dirty {
		// Final flush on shutdown even under "never": a graceful drain
		// should leave a durable archive.
		s.w.policy = FsyncInterval
	}
	err := s.w.close()
	s.mu.Unlock()
	s.bgDone.Wait()
	return err
}
