//go:build !race

// Allocation and recovery-speed pins for the durable archive. The WAL's
// steady-state write is one recPoint per publish interval per session;
// the encode must stay off the allocator so a large fleet doesn't turn
// its persistence layer into GC pressure. Gated from -race because the
// race runtime adds its own allocations.
package store

import (
	"testing"
	"time"
)

// TestEncodePointZeroAlloc pins the hot-path point encode at zero heap
// allocations once the scratch buffer has warmed up.
func TestEncodePointZeroAlloc(t *testing.T) {
	s, _ := openT(t, Options{Dir: t.TempDir(), Fsync: FsyncNever})
	defer s.Close()
	p := testPoint(time.Now().UnixNano(), 3)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.encodePointLocked("s0001", p) // warm the scratch buffer
	if avg := testing.AllocsPerRun(500, func() {
		s.encodePointLocked("s0001", p)
	}); avg != 0 {
		t.Errorf("encodePointLocked allocates %.2f times per run, want 0", avg)
	}
}

// TestSessionPointAllocBound pins the full append path (encode + frame
// + segment write + in-memory series) under one amortized allocation
// per record: only the points slice's geometric growth may allocate.
func TestSessionPointAllocBound(t *testing.T) {
	s, _ := openT(t, Options{Dir: t.TempDir(), Fsync: FsyncNever})
	defer s.Close()
	at := time.Unix(6000, 0).UnixNano()
	s.SessionPoint("s0001", testPoint(at, 0))
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		i++
		s.SessionPoint("s0001", testPoint(at+int64(i)*int64(time.Second), i))
	}); avg > 1 {
		t.Errorf("SessionPoint allocates %.2f times per run, want <= 1 amortized", avg)
	}
}

// TestRecoverySpeed replays a 100k-record log and requires recovery to
// finish in under a second (the acceptance bound; on CI-class hardware
// it is typically tens of milliseconds).
func TestRecoverySpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-record log build")
	}
	dir := t.TempDir()
	s, _ := openT(t, Options{Dir: dir, Fsync: FsyncNever})
	base := time.Unix(7000, 0)
	const sessions = 10
	const perSession = 10_000 // 100k records total
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = string(rune('a'+i)) + "-sess"
		s.SessionCreated(ids[i], base, []byte(`{"scenario":"idle"}`), int64(i+1))
	}
	for n := 1; n < perSession; n++ {
		at := base.Add(time.Duration(n) * time.Second).UnixNano()
		for _, id := range ids {
			s.SessionPoint(id, testPoint(at, n))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	s2, info := openT(t, Options{Dir: dir, Fsync: FsyncNever})
	elapsed := time.Since(start)
	defer s2.Close()
	if info.Records < sessions*perSession {
		t.Fatalf("replayed %d records, want >= %d", info.Records, sessions*perSession)
	}
	if elapsed > time.Second {
		t.Errorf("recovery of %d records took %v, want < 1s", info.Records, elapsed)
	}
	t.Logf("recovered %d records from %d segments in %v", info.Records, info.Segments, elapsed)
}
