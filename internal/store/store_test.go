package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func testPoint(atNs int64, i int) Point {
	return Point{
		At:          atNs,
		SlotsDone:   int64(i) * 1000,
		M:           int64(i) * 10,
		Frequency:   0.01 * float64(i%7),
		Duration:    0.2 * float64(i%5),
		HasDuration: i%2 == 0,
		ProbesSent:  int64(i) * 30,
		ProbesLost:  int64(i),
		PacketsSent: int64(i) * 90,
		PacketsLost: int64(i) * 2,
		Experiments: int64(i) * 10,
	}
}

func openT(t *testing.T, opts Options) (*Store, RecoveryInfo) {
	t.Helper()
	s, info, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, info
}

// TestRoundTrip: everything appended before a clean close is replayed
// exactly on reopen — sessions, estimate series, registry totals.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := time.Now()

	s, info := openT(t, Options{Dir: dir, Fsync: FsyncNever})
	if info.Records != 0 || len(info.Sessions) != 0 {
		t.Fatalf("fresh store has records: %+v", info)
	}
	cfg := []byte(`{"scenario":"cbr","slots":2000}`)
	s.SessionCreated("s0001", base, cfg, 7)
	s.SessionState("s0001", base.Add(time.Second), "running", false, "", 0, 7)
	var points []Point
	for i := 1; i <= 5; i++ {
		p := testPoint(base.Add(time.Duration(i)*time.Second).UnixNano(), i)
		points = append(points, p)
		s.SessionPoint("s0001", p)
	}
	s.SessionState("s0001", base.Add(10*time.Second), "done", true, "", 0, 7)
	tot := Totals{SessionsCreated: 1, SessionsFinished: 1, ProbesSent: 150, PacketsSent: 450}
	s.RegistryTotals(tot)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, info2 := openT(t, Options{Dir: dir, Fsync: FsyncNever})
	defer s2.Close()
	if info2.Records != 9 {
		t.Errorf("replayed %d records, want 9", info2.Records)
	}
	if info2.TornTails != 0 {
		t.Errorf("torn tails on clean close: %d", info2.TornTails)
	}
	if len(info2.Sessions) != 1 {
		t.Fatalf("sessions: %+v", info2.Sessions)
	}
	sess := info2.Sessions[0]
	if sess.ID != "s0001" || sess.State != "done" || !sess.Terminal || sess.Seed != 7 {
		t.Errorf("recovered session %+v", sess)
	}
	if string(sess.ConfigJSON) != string(cfg) {
		t.Errorf("config json %q", sess.ConfigJSON)
	}
	if sess.Points != 5 || !reflect.DeepEqual(sess.LastPoint, points[4]) {
		t.Errorf("points %d last %+v", sess.Points, sess.LastPoint)
	}
	if got := info2.Totals; got != tot {
		t.Errorf("totals %+v want %+v", got, tot)
	}
	hist, ok := s2.History("s0001", time.Time{}, time.Time{})
	if !ok || !reflect.DeepEqual(hist, points) {
		t.Errorf("history %v want %v", hist, points)
	}
}

// TestHistoryRange: from/to filtering is inclusive and zero bounds are
// open.
func TestHistoryRange(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Options{Dir: dir, Fsync: FsyncNever})
	defer s.Close()
	base := time.Unix(1000, 0)
	for i := 1; i <= 10; i++ {
		s.SessionPoint("x", testPoint(base.Add(time.Duration(i)*time.Second).UnixNano(), i))
	}
	got, ok := s.History("x", base.Add(3*time.Second), base.Add(6*time.Second))
	if !ok || len(got) != 4 {
		t.Fatalf("range query: ok=%v n=%d", ok, len(got))
	}
	if got[0].At != base.Add(3*time.Second).UnixNano() || got[3].At != base.Add(6*time.Second).UnixNano() {
		t.Errorf("bounds wrong: %v", got)
	}
	if _, ok := s.History("nope", time.Time{}, time.Time{}); ok {
		t.Error("unknown session reported ok")
	}
}

// TestSegmentRotation: a tiny rotation threshold produces many segments
// and replay stitches them back together.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 512})
	base := time.Unix(2000, 0)
	for i := 1; i <= 100; i++ {
		s.SessionPoint("s0001", testPoint(base.Add(time.Duration(i)*time.Second).UnixNano(), i))
	}
	s.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want several segments, got %v (%v)", segs, err)
	}
	s2, info := openT(t, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 512})
	defer s2.Close()
	if info.Records != 100 {
		t.Errorf("replayed %d records, want 100", info.Records)
	}
	hist, _ := s2.History("s0001", time.Time{}, time.Time{})
	if len(hist) != 100 {
		t.Errorf("history length %d", len(hist))
	}
	if info.Segments != len(segs) {
		t.Errorf("segments %d want %d", info.Segments, len(segs))
	}
}

// TestTornTail: garbage appended to the active segment (a torn write)
// is tolerated on replay, truncated away, and appends continue cleanly.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Options{Dir: dir, Fsync: FsyncNever})
	base := time.Unix(3000, 0)
	for i := 1; i <= 3; i++ {
		s.SessionPoint("s0001", testPoint(base.Add(time.Duration(i)*time.Second).UnixNano(), i))
	}
	s.Close()

	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// a torn record: plausible header, half a payload
	f.Write([]byte{40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3})
	f.Close()

	s2, info := openT(t, Options{Dir: dir, Fsync: FsyncNever})
	if info.Records != 3 || info.TornTails != 1 {
		t.Fatalf("records %d torn %d, want 3/1", info.Records, info.TornTails)
	}
	// appends continue from the truncated tail
	s2.SessionPoint("s0001", testPoint(base.Add(10*time.Second).UnixNano(), 10))
	s2.Close()

	s3, info3 := openT(t, Options{Dir: dir, Fsync: FsyncNever})
	defer s3.Close()
	if info3.Records != 4 || info3.TornTails != 0 {
		t.Fatalf("after repair: records %d torn %d, want 4/0", info3.Records, info3.TornTails)
	}
	hist, _ := s3.History("s0001", time.Time{}, time.Time{})
	if len(hist) != 4 {
		t.Errorf("history %d want 4", len(hist))
	}
}

// TestRetentionCompaction: segments wholly past the horizon are dropped;
// sessions whose identity lived there are compacted to (or carried
// forward as) a final-summary record that survives restarts.
func TestRetentionCompaction(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(5000, 0)
	clock := func() time.Time { return now }
	s, _ := openT(t, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 512,
		Retention: time.Hour, CompactInterval: time.Hour, Now: clock})

	cfgA := []byte(`{"scenario":"idle"}`)
	s.SessionCreated("s0001", now, cfgA, 3)
	for i := 1; i <= 30; i++ {
		s.SessionPoint("s0001", testPoint(now.Add(time.Duration(i)*time.Second).UnixNano(), i))
	}
	s.SessionState("s0001", now.Add(31*time.Second), "done", true, "", 0, 3)
	// a session that will still be running at compaction time
	s.SessionCreated("s0002", now.Add(40*time.Second), []byte(`{"scenario":"cbr","resume":true}`), 4)
	s.SessionState("s0002", now.Add(41*time.Second), "running", false, "", 0, 4)

	// jump past the horizon and generate fresh traffic so old segments
	// seal and age out
	now = now.Add(3 * time.Hour)
	for i := 100; i <= 130; i++ {
		s.SessionPoint("s0002", testPoint(now.Add(time.Duration(i)*time.Second).UnixNano(), i))
	}
	before := s.Stats().Segments
	s.Compact()
	after := s.Stats()
	if after.Segments >= before {
		t.Errorf("segments %d -> %d: nothing dropped", before, after.Segments)
	}
	if after.SegmentsDropped == 0 || after.Compactions == 0 {
		t.Errorf("stats %+v", after)
	}
	s.Close()

	s2, info := openT(t, Options{Dir: dir, Fsync: FsyncNever, Retention: time.Hour, Now: clock})
	defer s2.Close()
	byID := map[string]Session{}
	for _, sess := range info.Sessions {
		byID[sess.ID] = sess
	}
	a, ok := byID["s0001"]
	if !ok || a.State != "done" || !a.Terminal {
		t.Fatalf("compacted terminal session lost: %+v", a)
	}
	if string(a.ConfigJSON) != string(cfgA) || a.Seed != 3 {
		t.Errorf("summary lost identity: %+v", a)
	}
	if a.Points == 0 || a.LastPoint.SlotsDone != 30*1000 {
		t.Errorf("summary lost final estimates: %+v", a.LastPoint)
	}
	b, ok := byID["s0002"]
	if !ok || b.Terminal {
		t.Fatalf("live session lost by compaction: %+v", b)
	}
	if b.Points < 31 {
		t.Errorf("recent points dropped: %d", b.Points)
	}
}

// TestCloseDrops: appends after Close are counted, never a panic or a
// write.
func TestCloseDrops(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Options{Dir: dir})
	s.Close()
	s.SessionPoint("x", testPoint(1, 1))
	s.SessionCreated("x", time.Now(), nil, 0)
	s.SessionState("x", time.Now(), "done", true, "", 0, 0)
	s.RegistryTotals(Totals{})
	if got := s.Stats().DroppedAfterClose; got != 4 {
		t.Errorf("dropped after close = %d, want 4", got)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// TestFsyncAlways: every append fsyncs, and the fsync counters move.
func TestFsyncAlways(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Options{Dir: dir, Fsync: FsyncAlways})
	defer s.Close()
	for i := 1; i <= 3; i++ {
		s.SessionPoint("x", testPoint(int64(i), i))
	}
	st := s.Stats()
	if st.Fsyncs < 3 {
		t.Errorf("fsyncs %d, want >= 3", st.Fsyncs)
	}
	if st.FsyncPolicy != "always" {
		t.Errorf("policy %q", st.FsyncPolicy)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "interval": FsyncInterval, "batch": FsyncInterval,
		"never": FsyncNever, "none": FsyncNever, "": FsyncInterval,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// TestMemMirrorsStore: the in-memory sink records the same lifecycle the
// durable store does, plus the after-close counter fleet's ordering test
// relies on.
func TestMemMirrorsStore(t *testing.T) {
	m := NewMem()
	at := time.Unix(100, 0)
	m.SessionCreated("s0001", at, []byte(`{}`), 1)
	m.SessionState("s0001", at, "running", false, "", 0, 1)
	m.SessionPoint("s0001", testPoint(at.UnixNano(), 1))
	m.SessionState("s0001", at.Add(time.Second), "done", true, "", 0, 1)
	m.RegistryTotals(Totals{SessionsCreated: 1})
	hist, ok := m.History("s0001", time.Time{}, time.Time{})
	if !ok || len(hist) != 1 {
		t.Fatalf("mem history: %v %v", hist, ok)
	}
	sessions := m.Sessions()
	if len(sessions) != 1 || sessions[0].State != "done" || !sessions[0].Terminal {
		t.Errorf("mem sessions: %+v", sessions)
	}
	if m.Totals().SessionsCreated != 1 {
		t.Errorf("mem totals: %+v", m.Totals())
	}
	m.Close()
	m.SessionPoint("s0001", testPoint(2, 2))
	if m.AfterClose() != 1 {
		t.Errorf("after close = %d", m.AfterClose())
	}
}

// TestWriteErrorsSurface: WAL append failures propagate to the sink
// caller and are counted in Stats — the signal the fleet's store
// circuit breaker trips on, and the alertable silent-loss counter.
func TestWriteErrorsSurface(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Options{Dir: dir, Fsync: FsyncAlways})
	defer s.Close()

	if err := s.SessionCreated("s0001", time.Unix(1, 0), []byte(`{"scenario":"idle"}`), 1); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	if st := s.Stats(); st.WriteErrors != 0 || st.FsyncErrors != 0 {
		t.Fatalf("healthy store reports errors: %+v", st)
	}

	// Kill the disk: every segment write fails persistently. (Closing
	// the fd is not enough any more — the WAL would abandon the segment
	// and heal itself by opening a fresh one on the healthy tempdir.)
	errDead := errors.New("injected: input/output error")
	s.mu.Lock()
	s.w.writeFn = func(f *os.File, b []byte) (int, error) { return 0, errDead }
	s.mu.Unlock()

	if err := s.SessionPoint("s0001", testPoint(2, 1)); err == nil {
		t.Fatal("append on dead file surfaced no error")
	}
	if err := s.SessionState("s0001", time.Unix(3, 0), "done", true, "", 0, 1); err == nil {
		t.Fatal("state append on dead file surfaced no error")
	}
	if err := s.RegistryTotals(Totals{SessionsCreated: 1}); err == nil {
		t.Fatal("totals append on dead file surfaced no error")
	}
	st := s.Stats()
	if st.WriteErrors != 3 {
		t.Errorf("Stats.WriteErrors = %d, want 3", st.WriteErrors)
	}

	// fsync failures are counted separately: force a dirty WAL onto the
	// dead disk.
	s.mu.Lock()
	s.w.syncFn = func(f *os.File) error { return errDead }
	s.w.dirty = true
	err := s.w.fsync()
	s.mu.Unlock()
	if err == nil {
		t.Fatal("fsync on dead file surfaced no error")
	}
	if st := s.Stats(); st.FsyncErrors != 1 {
		t.Errorf("Stats.FsyncErrors = %d, want 1", st.FsyncErrors)
	}

	// The in-memory index kept serving through the outage: the point
	// that failed to persist is still queryable live.
	if pts, ok := s.History("s0001", time.Time{}, time.Time{}); !ok || len(pts) != 1 {
		t.Errorf("live history during outage: ok=%v len=%d, want 1 point", ok, len(pts))
	}
}
