package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// buildSegment writes n points through a real store and returns the
// single segment's bytes plus the record frame boundaries (offsets
// relative to the start of the file, after the magic).
func buildSegment(t *testing.T, n int) (dir string, raw []byte, bounds []int) {
	t.Helper()
	dir = t.TempDir()
	s, _ := openT(t, Options{Dir: dir, Fsync: FsyncNever})
	base := time.Unix(4000, 0)
	s.SessionCreated("s0001", base, []byte(`{"scenario":"idle"}`), 1)
	for i := 1; i < n; i++ {
		s.SessionPoint("s0001", testPoint(base.Add(time.Duration(i)*time.Second).UnixNano(), i))
	}
	s.Close()
	raw, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	off := len(segMagic)
	for off < len(raw) {
		ln := int(binary.LittleEndian.Uint32(raw[off:]))
		off += recordOverhead + ln
		bounds = append(bounds, off)
	}
	if len(bounds) != n {
		t.Fatalf("built %d records, want %d", len(bounds), n)
	}
	return dir, raw, bounds
}

func reopenWith(t *testing.T, dir string, raw []byte) (*Store, RecoveryInfo) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return openT(t, Options{Dir: dir, Fsync: FsyncNever})
}

// TestCorruptSegmentRecovery: every class of segment damage — truncation
// at any byte, a flipped CRC, a flipped payload byte, a garbage length —
// recovers the clean prefix without error or panic.
func TestCorruptSegmentRecovery(t *testing.T) {
	const n = 6
	t.Run("truncated-at-every-boundary", func(t *testing.T) {
		dir, raw, bounds := buildSegment(t, n)
		for i, b := range bounds[:n-1] {
			s, info := reopenWith(t, dir, raw[:b])
			if info.Records != i+1 {
				t.Errorf("truncate at record %d: replayed %d", i+1, info.Records)
			}
			if info.TornTails != 0 {
				t.Errorf("clean boundary read as torn: %d", info.TornTails)
			}
			s.Close()
		}
	})
	t.Run("truncated-mid-record", func(t *testing.T) {
		dir, raw, bounds := buildSegment(t, n)
		for i, cut := range []int{bounds[2] + 3, bounds[3] - 1, bounds[0] + recordOverhead} {
			s, info := reopenWith(t, dir, raw[:cut])
			if info.TornTails != 1 {
				t.Errorf("case %d: torn=%d, want 1", i, info.TornTails)
			}
			if info.Records >= n {
				t.Errorf("case %d: replayed %d of a torn log", i, info.Records)
			}
			s.Close()
		}
	})
	t.Run("flipped-crc", func(t *testing.T) {
		dir, raw, bounds := buildSegment(t, n)
		mut := append([]byte(nil), raw...)
		mut[bounds[2]+4] ^= 0xff // CRC byte of record 4
		s, info := reopenWith(t, dir, mut)
		if info.Records != 3 || info.TornTails != 1 {
			t.Errorf("records %d torn %d, want 3/1", info.Records, info.TornTails)
		}
		s.Close()
	})
	t.Run("flipped-payload", func(t *testing.T) {
		dir, raw, bounds := buildSegment(t, n)
		mut := append([]byte(nil), raw...)
		mut[bounds[1]+recordOverhead+5] ^= 0x01 // inside record 3's payload
		s, info := reopenWith(t, dir, mut)
		if info.Records != 2 || info.TornTails != 1 {
			t.Errorf("records %d torn %d, want 2/1", info.Records, info.TornTails)
		}
		s.Close()
	})
	t.Run("garbage-length", func(t *testing.T) {
		dir, raw, bounds := buildSegment(t, n)
		for _, ln := range []uint32{0xffffffff, maxRecord + 1, 1 << 30} {
			mut := append([]byte(nil), raw...)
			binary.LittleEndian.PutUint32(mut[bounds[1]:], ln)
			s, info := reopenWith(t, dir, mut)
			if info.Records != 2 || info.TornTails != 1 {
				t.Errorf("len %#x: records %d torn %d, want 2/1", ln, info.Records, info.TornTails)
			}
			s.Close()
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		dir, raw, _ := buildSegment(t, n)
		mut := append([]byte(nil), raw...)
		mut[0] = 'X'
		s, info := reopenWith(t, dir, mut)
		if info.Records != 0 || info.TornTails != 1 {
			t.Errorf("records %d torn %d, want 0/1", info.Records, info.TornTails)
		}
		// the segment is re-initialized: appends must round-trip
		s.SessionPoint("fresh", testPoint(99, 9))
		s.Close()
		s2, info2 := openT(t, Options{Dir: dir, Fsync: FsyncNever})
		if info2.Records != 1 {
			t.Errorf("after reinit: replayed %d, want 1", info2.Records)
		}
		s2.Close()
	})
	t.Run("corrupt-middle-segment", func(t *testing.T) {
		// damage in a sealed (non-last) segment must not stop later
		// segments from replaying
		dir := t.TempDir()
		s, _ := openT(t, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 512})
		base := time.Unix(4100, 0)
		for i := 1; i <= 40; i++ {
			s.SessionPoint("s0001", testPoint(base.Add(time.Duration(i)*time.Second).UnixNano(), i))
		}
		s.Close()
		segs, _ := listSegments(dir)
		if len(segs) < 3 {
			t.Fatalf("want >=3 segments, got %v", segs)
		}
		mid := filepath.Join(dir, segName(segs[1]))
		raw, _ := os.ReadFile(mid)
		raw[len(segMagic)+recordOverhead+2] ^= 0xff
		os.WriteFile(mid, raw, 0o644)

		s2, info := openT(t, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 512})
		defer s2.Close()
		if info.TornTails != 1 {
			t.Errorf("torn %d, want 1", info.TornTails)
		}
		hist, _ := s2.History("s0001", time.Time{}, time.Time{})
		// records from the first and last segments survive; only the
		// damaged middle segment's tail is lost
		if len(hist) >= 40 || len(hist) == 0 {
			t.Errorf("history %d, want partial", len(hist))
		}
		last := hist[len(hist)-1]
		if last.At != base.Add(40*time.Second).UnixNano() {
			t.Errorf("newest record lost: %v", last.At)
		}
	})
}
