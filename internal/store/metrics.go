package store

import (
	"badabing/internal/obs"
)

// RegisterMetrics registers the durable archive's metric families; each
// scrape mirrors a Stats snapshot, so /metrics and GET /v1/store/stats
// always agree.
func (s *Store) RegisterMetrics(o *obs.Registry) {
	bytesWritten := o.Counter("badabingd_store_bytes_written_total", "Bytes appended to the measurement WAL.")
	recordsWritten := o.Counter("badabingd_store_records_written_total", "Records appended to the measurement WAL.")
	recordsReplayed := o.Gauge("badabingd_store_records_replayed", "Records replayed from the WAL at the last startup.")
	recoverySeconds := o.Gauge("badabingd_store_recovery_seconds", "WAL replay duration at the last startup.")
	tornTails := o.Gauge("badabingd_store_torn_tails", "Segments whose replay ended at a torn or corrupt frame.")
	segments := o.Gauge("badabingd_store_segments", "Live WAL segment files (sealed + active).")
	segmentsDropped := o.Counter("badabingd_store_segments_dropped_total", "Segments deleted by retention.")
	compactions := o.Counter("badabingd_store_compactions_total", "Retention sweeps that dropped or compacted data.")
	fsyncs := o.Counter("badabingd_store_fsyncs_total", "WAL fsync calls.")
	fsyncSeconds := o.Counter("badabingd_store_fsync_seconds_total", "Cumulative time spent in WAL fsyncs (latency = rate of this over fsyncs).")
	sessions := o.Gauge("badabingd_store_sessions", "Sessions in the archive index.")
	points := o.Gauge("badabingd_store_points", "Estimate snapshots in the queryable series.")
	droppedAfterClose := o.Counter("badabingd_store_dropped_after_close_total", "Events dropped because they arrived after store close (always 0 when shutdown ordering holds).")
	writeErrors := o.Counter("badabingd_store_write_errors_total", "WAL append failures (the breaker's trip signal; nonzero means the archive disk misbehaved).")
	fsyncErrors := o.Counter("badabingd_store_fsync_errors_total", "WAL fsync failures (acknowledged records may not be durable).")
	o.OnScrape(func() {
		st := s.Stats()
		bytesWritten.Set(float64(st.BytesWritten))
		recordsWritten.Set(float64(st.RecordsWritten))
		recordsReplayed.SetInt(int64(st.RecordsReplayed))
		recoverySeconds.Set(st.RecoverySeconds)
		tornTails.SetInt(int64(st.TornTails))
		segments.SetInt(int64(st.Segments))
		segmentsDropped.Set(float64(st.SegmentsDropped))
		compactions.Set(float64(st.Compactions))
		fsyncs.Set(float64(st.Fsyncs))
		fsyncSeconds.Set(st.FsyncSeconds)
		sessions.SetInt(int64(st.Sessions))
		points.SetInt(int64(st.Points))
		droppedAfterClose.Set(float64(st.DroppedAfterClose))
		writeErrors.Set(float64(st.WriteErrors))
		fsyncErrors.Set(float64(st.FsyncErrors))
	})
}
