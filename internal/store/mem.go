package store

import (
	"sync"
	"time"
)

// Mem is an in-memory stand-in for Store: it satisfies the registry's
// sink and history interfaces without touching disk, so fleet tests can
// assert on the exact event flow. It additionally counts events arriving
// after Close — the drain-ordering regression signal (the registry must
// close the sink only after the last session goroutine joins).
type Mem struct {
	mu         sync.Mutex
	closed     bool
	sessions   map[string]*sessionRec
	order      []string
	totals     Totals
	events     []string // compact trace: "created s0001", "state s0001 running", ...
	afterClose int
}

// NewMem builds an empty in-memory sink.
func NewMem() *Mem {
	return &Mem{sessions: make(map[string]*sessionRec)}
}

func (m *Mem) upsert(id string) *sessionRec {
	sr, ok := m.sessions[id]
	if !ok {
		sr = &sessionRec{id: id, state: "pending"}
		m.sessions[id] = sr
		m.order = append(m.order, id)
	}
	return sr
}

func (m *Mem) note(ev string) bool {
	if m.closed {
		m.afterClose++
		return false
	}
	m.events = append(m.events, ev)
	return true
}

// SessionCreated mirrors Store.SessionCreated.
func (m *Mem) SessionCreated(id string, at time.Time, cfgJSON []byte, seed int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.note("created " + id) {
		return nil
	}
	sr := m.upsert(id)
	sr.cfgJSON = append([]byte(nil), cfgJSON...)
	sr.createdNs = at.UnixNano()
	if seed != 0 {
		sr.seed = seed
	}
	return nil
}

// SessionState mirrors Store.SessionState.
func (m *Mem) SessionState(id string, at time.Time, state string, terminal bool, errMsg string, retries int, seed int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.note("state " + id + " " + state) {
		return nil
	}
	sr := m.upsert(id)
	sr.state = state
	sr.term = terminal
	sr.errMsg = errMsg
	sr.retries = retries
	if seed != 0 {
		sr.seed = seed
	}
	switch {
	case terminal:
		sr.finishedNs = at.UnixNano()
	case state == "running" && sr.startedNs == 0:
		sr.startedNs = at.UnixNano()
	}
	return nil
}

// SessionPoint mirrors Store.SessionPoint.
func (m *Mem) SessionPoint(id string, p Point) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.note("point " + id) {
		return nil
	}
	m.upsert(id).addPoint(p)
	return nil
}

// RegistryTotals mirrors Store.RegistryTotals.
func (m *Mem) RegistryTotals(t Totals) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.note("totals") {
		return nil
	}
	m.totals.maxTotals(t)
	return nil
}

// History mirrors Store.History.
func (m *Mem) History(id string, from, to time.Time) ([]Point, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sr, ok := m.sessions[id]
	if !ok {
		return nil, false
	}
	fromNs, toNs := rangeNs(from, to)
	out := make([]Point, 0, len(sr.points))
	for _, p := range sr.points {
		if p.At >= fromNs && p.At <= toNs {
			out = append(out, p)
		}
	}
	return out, true
}

// Sessions mirrors Store.Sessions.
func (m *Mem) Sessions() []Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Session, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.sessions[id].view())
	}
	return out
}

// Totals returns the recorded registry counters.
func (m *Mem) Totals() Totals {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totals
}

// Close marks the sink closed; later events only bump AfterClose.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Closed reports whether Close has run.
func (m *Mem) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// AfterClose counts events that arrived after Close — always zero when
// the registry's shutdown ordering is correct.
func (m *Mem) AfterClose() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.afterClose
}

// Events returns the ordered event trace.
func (m *Mem) Events() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.events...)
}
