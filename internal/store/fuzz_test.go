package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fuzzSeedBody builds a well-formed segment body (records of every
// type, magic stripped) by writing through a real store.
func fuzzSeedBody(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	s, _, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		f.Fatal(err)
	}
	base := time.Unix(5000, 0)
	s.SessionCreated("s0001", base, []byte(`{"scenario":"wire"}`), 42)
	s.SessionState("s0001", base, "running", false, "", 0, 42)
	s.SessionPoint("s0001", Point{
		At: base.UnixNano(), SlotsDone: 7, M: 21, Frequency: 0.125,
		Duration: 1.5, HasDuration: true,
		ProbesSent: 21, ProbesLost: 2, PacketsSent: 63, PacketsLost: 5,
		Experiments: 21,
	})
	s.RegistryTotals(Totals{SessionsCreated: 1, ProbesSent: 10, PacketsSent: 30})
	s.SessionState("s0001", base.Add(time.Minute), "done", true, "boom", 1, 42)
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	return raw[len(segMagic):]
}

// FuzzWALDecode throws arbitrary bytes at the segment scanner and the
// record decoder. Invariants: never panic, never read past the input,
// and the reported valid prefix must rescan cleanly to the same record
// count — the recovery path's durable-prefix contract.
func FuzzWALDecode(f *testing.F) {
	seed := fuzzSeedBody(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte("not a wal segment at all"))

	// flipped CRC byte in the first record
	bad := append([]byte(nil), seed...)
	bad[4] ^= 0xff
	f.Add(bad)

	// garbage lengths
	huge := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(huge, 0xffffffff)
	f.Add(huge)
	over := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(over, maxRecord+1)
	f.Add(over)

	f.Fuzz(func(t *testing.T, data []byte) {
		records := 0
		valid, clean := scanSegment(data, func(record) { records++ })
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid=%d out of [0,%d]", valid, len(data))
		}
		if clean && valid != len(data) {
			t.Fatalf("clean scan stopped early: %d != %d", valid, len(data))
		}
		// the reported valid prefix must itself rescan as a clean
		// segment with the same record count
		re := 0
		reValid, reClean := scanSegment(data[:valid], func(record) { re++ })
		if !reClean || reValid != valid || re != records {
			t.Fatalf("prefix rescan: valid %d/%d clean %v records %d/%d",
				reValid, valid, reClean, re, records)
		}

		// decodeRecord directly on raw bytes (bypassing the CRC gate)
		// must never panic or over-read either
		_, _ = decodeRecord(data)
	})
}
