package session_test

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/lab"
	"badabing/internal/probe"
	"badabing/internal/session"
	"badabing/internal/session/simtransport"
	"badabing/internal/session/wiretransport"
	"badabing/internal/simnet"
	"badabing/internal/wire"
)

// TestFinalSnapshotMatchesBatch runs a full session on a lossy simulated
// path and checks the engine's central invariant: the final streaming
// snapshot is exactly what batch estimation over the final marked slots
// reports.
func TestFinalSnapshotMatchesBatch(t *testing.T) {
	cfg := session.Config{
		P:        0.3,
		Slots:    30000,
		Improved: true,
		Seed:     11,
	}
	p := lab.NewPath(lab.CBRUniform, lab.RunConfig{Seed: 12})
	tr := simtransport.New(p.Sim, p.D, 7, probe.BadabingConfig{})
	defer tr.Close()

	var updates []session.Update
	res, err := session.Run(context.Background(), tr, cfg, func(u session.Update) {
		updates = append(updates, u)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(updates) < 2 {
		t.Fatalf("published %d updates, want several harvest steps", len(updates))
	}
	if got := updates[len(updates)-1]; !reflect.DeepEqual(got, res.Final) {
		t.Errorf("last published update differs from Final:\n got %+v\nwant %+v", got, res.Final)
	}
	if res.Final.SlotsDone != cfg.Slots {
		t.Errorf("SlotsDone = %d, want %d", res.Final.SlotsDone, cfg.Slots)
	}
	if res.Final.Counters.ProbesSent != int64(res.Probes) {
		t.Errorf("ProbesSent = %d, want all %d probes settled", res.Final.Counters.ProbesSent, res.Probes)
	}
	if res.Final.Counters.PacketsLost == 0 {
		t.Error("expected losses on the CBR scenario, got none")
	}

	est, skipped := session.BatchEstimates(res.Plans, res.Marked, badabing.DefaultSlot, false)
	if skipped != int(res.Final.Counters.Skipped) {
		t.Errorf("batch skipped %d, session skipped %d", skipped, res.Final.Counters.Skipped)
	}
	if res.Final.Snapshot.Total != est {
		t.Errorf("final snapshot diverges from batch estimation:\n got %+v\nwant %+v", res.Final.Snapshot.Total, est)
	}
}

// TestMidRunSnapshotsProgress checks that harvest steps publish increasing
// progress and that mid-run experiment counts never exceed the final one.
func TestMidRunSnapshotsProgress(t *testing.T) {
	cfg := session.Config{P: 0.2, Slots: 10000, Seed: 3}
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	tr := simtransport.New(s, d, 7, probe.BadabingConfig{})
	defer tr.Close()

	var last session.Update
	res, err := session.Run(context.Background(), tr, cfg, func(u session.Update) {
		if u.SlotsDone < last.SlotsDone {
			t.Errorf("SlotsDone went backwards: %d after %d", u.SlotsDone, last.SlotsDone)
		}
		if u.Counters.ProbesSent < last.Counters.ProbesSent {
			t.Errorf("ProbesSent went backwards: %d after %d", u.Counters.ProbesSent, last.Counters.ProbesSent)
		}
		last = u
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.Final.Counters.Experiments; got != int64(len(res.Plans)) {
		t.Errorf("fed %d experiments, want all %d (idle path, nothing skipped)", got, len(res.Plans))
	}
	if res.Final.Counters.PacketsLost != 0 {
		t.Errorf("idle path lost %d packets", res.Final.Counters.PacketsLost)
	}
}

// TestRunCancellation checks the engine honours context cancellation
// between harvest steps.
func TestRunCancellation(t *testing.T) {
	cfg := session.Config{P: 0.2, Slots: 100000, Seed: 3, StepSlots: 100, StepDelay: 10 * time.Millisecond}
	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	tr := simtransport.New(s, d, 7, probe.BadabingConfig{})
	defer tr.Close()

	ctx, cancel := context.WithCancel(context.Background())
	steps := 0
	_, err := session.Run(ctx, tr, cfg, func(session.Update) {
		steps++
		if steps == 3 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if steps > 4 {
		t.Errorf("engine kept harvesting after cancellation: %d steps", steps)
	}
}

// TestSimWireParity pushes the same schedule through both substrates — the
// simulated idle dumbbell and a real UDP loopback round trip — and requires
// identical results: same probe count, zero losses, same marked outcomes
// and bit-identical loss-rate estimates.
func TestSimWireParity(t *testing.T) {
	if testing.Short() {
		t.Skip("paces real probes for ~2s")
	}
	if raceEnabled {
		t.Skip("race instrumentation slows pacing past the late-probe threshold")
	}
	// A wide slot keeps the late-probe threshold (slot/2) comfortably
	// above OS timer overshoot on a loaded machine, so no experiment is
	// invalidated and both substrates see the full schedule.
	const (
		seed  = 42
		pProb = 0.3
		slots = 150
		slotW = 20 * time.Millisecond
	)
	cfg := session.Config{
		P:         pProb,
		Slots:     slots,
		Slot:      slotW,
		Improved:  true,
		Seed:      seed,
		StepSlots: 50,
		Settle:    300 * time.Millisecond,
	}

	s := simnet.New()
	d := simnet.NewDumbbell(s, simnet.DumbbellConfig{})
	st := simtransport.New(s, d, 7, probe.BadabingConfig{Slot: slotW})
	defer st.Close()
	simRes, err := session.Run(context.Background(), st, cfg, nil)
	if err != nil {
		t.Fatalf("sim Run: %v", err)
	}

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	refl := wire.NewReflector(pc)
	go refl.Run()
	defer refl.Close()

	wt, err := wiretransport.Dial(refl.Addr().String(), wire.SenderConfig{
		ExpID: 99, P: pProb, N: slots, Slot: slotW, Improved: true, Seed: seed,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer wt.Close()
	wireRes, err := session.Run(context.Background(), wt, cfg, nil)
	if err != nil {
		t.Fatalf("wire Run: %v", err)
	}
	// A host that cannot hold the discretization produces invalidated
	// probes by design (§7) — that is the machine failing, not the code,
	// so don't let a throttled CI box turn it into a test failure.
	if lag := wt.SendStats().MaxLag; lag > slotW/2 {
		t.Skipf("host could not pace %v slots (max lag %v); skipping parity check", slotW, lag)
	}

	if simRes.Probes != wireRes.Probes {
		t.Fatalf("probe counts diverge: sim %d, wire %d", simRes.Probes, wireRes.Probes)
	}
	if got := refl.Packets(); got != uint64(wireRes.Final.Counters.PacketsSent) {
		t.Errorf("reflector saw %d packets, sender reports %d", got, wireRes.Final.Counters.PacketsSent)
	}
	for name, res := range map[string]*session.Result{"sim": simRes, "wire": wireRes} {
		if res.Final.Counters.PacketsLost != 0 {
			t.Errorf("%s path lost %d packets on an idle/loopback path", name, res.Final.Counters.PacketsLost)
		}
		if res.Final.Counters.Skipped != 0 {
			t.Errorf("%s path skipped %d experiments", name, res.Final.Counters.Skipped)
		}
	}
	if !reflect.DeepEqual(simRes.Marked, wireRes.Marked) {
		t.Errorf("marked slot maps diverge: sim %d entries, wire %d entries", len(simRes.Marked), len(wireRes.Marked))
	}
	if simRes.Final.Snapshot.Total != wireRes.Final.Snapshot.Total {
		t.Errorf("estimates diverge:\n sim  %+v\n wire %+v", simRes.Final.Snapshot.Total, wireRes.Final.Snapshot.Total)
	}
	if simRes.Final.Snapshot.Total.Frequency != 0 {
		t.Errorf("loss frequency %v on a loss-free path", simRes.Final.Snapshot.Total.Frequency)
	}
}
