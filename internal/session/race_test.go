//go:build race

package session_test

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation slows real-time pacing enough to trip the wire path's
// late-probe invalidation, so wall-clock parity tests skip under it.
const raceEnabled = true
