// Package simtransport adapts the discrete-event simulator to the session
// engine's Transport interface: probes are pre-scheduled as simulator
// events (preserving the event ordering the golden fixtures depend on) and
// AdvanceTo runs the event loop up to the requested virtual time.
package simtransport

import (
	"context"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/probe"
	"badabing/internal/simnet"
)

// Transport drives a BADABING session over a simulated path. Construct it
// with New (dumbbell) or NewAt (arbitrary entry/demux), then hand it to
// session.Run.
type Transport struct {
	sim   *simnet.Sim
	entry *simnet.Link
	demux *simnet.Demux
	flow  uint64
	cfg   probe.BadabingConfig
	bb    *probe.Badabing
}

// New wraps a dumbbell path. cfg.Slot must match the session Config's slot
// width (both default to badabing.DefaultSlot); cfg.Plans is ignored — the
// session engine supplies the flattened slot list at Launch.
func New(sim *simnet.Sim, d *simnet.Dumbbell, flow uint64, cfg probe.BadabingConfig) *Transport {
	return NewAt(sim, d.Bottleneck, d.FwdDemux, flow, cfg)
}

// NewAt is the topology-agnostic form: probes enter at entry and are
// collected from demux (e.g. a multi-hop chain).
func NewAt(sim *simnet.Sim, entry *simnet.Link, demux *simnet.Demux, flow uint64, cfg probe.BadabingConfig) *Transport {
	return &Transport{sim: sim, entry: entry, demux: demux, flow: flow, cfg: cfg}
}

// Launch pre-schedules one probe per slot on the simulator's event heap.
func (t *Transport) Launch(ctx context.Context, slots []int64) error {
	t.bb = probe.StartBadabingSlots(t.sim, t.entry, t.demux, t.flow, t.cfg, slots)
	return nil
}

// Now returns the simulator's virtual time.
func (t *Transport) Now() time.Duration { return t.sim.Now() }

// AdvanceTo runs the event loop up to virtual time tt. The simulator runs
// to completion of the requested window; cancellation is only observed
// between windows.
func (t *Transport) AdvanceTo(ctx context.Context, tt time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t.sim.Run(tt)
	return nil
}

// Observations returns the per-probe outcomes so far. Simulated probes are
// never invalid: virtual pacing is exact.
func (t *Transport) Observations() ([]badabing.ProbeObs, map[int64]bool) {
	if t.bb == nil {
		return nil, nil
	}
	return t.bb.Observations(), nil
}

// Close is a no-op; the simulator owns no external resources.
func (t *Transport) Close() error { return nil }

// Badabing exposes the underlying prober (nil before Launch), e.g. for
// packet-count assertions in tests.
func (t *Transport) Badabing() *probe.Badabing { return t.bb }
