// Package session is the transport-neutral BADABING session engine: one
// probe process, two substrates. It owns everything the paper's tool does
// between "here is a path" and "here are the estimates" — schedule
// generation, probe-slot derivation, per-probe outcome bookkeeping,
// congestion marking, experiment assembly and streaming estimation —
// parameterized by a small Transport interface so the identical engine
// drives both the simulated testbed (simtransport) and real UDP paths
// (wiretransport).
//
// The engine advances in harvest steps: Transport.AdvanceTo moves session
// time forward (running the discrete-event simulator, or sleeping on the
// wall clock), then the settled observations are re-marked, newly completed
// experiments are fed to the streaming estimator and a snapshot is
// published. Marking is retrospective — the baseline delay and loss-time
// delay estimates refine as data arrives — so mid-run snapshots freeze an
// outcome's congestion bits when the outcome is fed; the final snapshot is
// rebuilt from the full observation set and is exactly what the batch
// pipeline reports.
package session

import (
	"context"
	"errors"
	"fmt"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/estimate"
)

// ErrPathDead reports that a transport decided the far end of the path is
// dead — refused, crashed or blackholed — rather than lossy. BADABING
// treats loss as the measurement signal, so this distinction must be made
// out-of-band (liveness probing, write-failure runs, watchdogs): a session
// that kept measuring a dead path would report the outage as a
// perfectly-measured F≈1 loss episode. Transports wrap this sentinel;
// Run reacts by aborting with a partial, clearly-flagged Result.
var ErrPathDead = errors.New("session: far end dead (infrastructure failure, not path loss)")

// DefaultSettle is how far behind session "now" a probe must be before its
// observation is considered stable enough to harvest. It bounds path delay
// plus the marker's τ look-ahead with a wide margin: 50 ms propagation +
// ≤100 ms queueing on the testbed topology, and comfortably more than any
// sane real-path RTT.
const DefaultSettle = time.Second

// Clock abstracts session time, measured as a Duration since the session
// started. The simulated substrate reads virtual time; the wire substrate
// reads the wall clock relative to its launch instant.
type Clock interface {
	// Now returns the current session time.
	Now() time.Duration
	// AdvanceTo moves session time forward to t: the simulated clock runs
	// its event loop, the wall clock sleeps. It returns early with the
	// context's error on cancellation, or the transport's error if the
	// substrate failed (e.g. the probe sender died).
	AdvanceTo(ctx context.Context, t time.Duration) error
}

// Transport is a measurement substrate: it emits the session's probes at
// their slot deadlines and accumulates per-probe observations.
type Transport interface {
	Clock
	// Launch starts emitting probes for the given slots (ascending,
	// deduplicated, from badabing.ProbeSlots). It must not block for the
	// session's duration: the simulated substrate pre-schedules events,
	// the wire substrate starts a pacing goroutine.
	Launch(ctx context.Context, slots []int64) error
	// Observations returns per-probe outcomes in send order for every
	// probe emitted so far, fully lost probes included, with the §6.1
	// missing-delay rule already applied. invalid flags slots whose
	// probes cannot be trusted (e.g. paced too far behind schedule);
	// experiments touching them are skipped. invalid may be nil.
	Observations() (obs []badabing.ProbeObs, invalid map[int64]bool)
	// Close releases the substrate's resources (sockets, goroutines).
	Close() error
}

// Config parameterizes one measurement session.
type Config struct {
	// P is the per-slot experiment probability.
	P float64
	// Slots is the measurement horizon in slots (the schedule's N).
	Slots int64
	// Slot is the discretization width. Default badabing.DefaultSlot.
	Slot time.Duration
	// Improved selects the improved (triple-probe) design;
	// ExtendedFraction weights it (nil = the paper's 1/2).
	Improved         bool
	ExtendedFraction *float64
	// ExtendedPairs enables the §5.5 pair-counting modification.
	ExtendedPairs bool
	// Seed fixes the schedule RNG.
	Seed int64
	// Marker holds the α/τ congestion-marking parameters. A zero value
	// selects RecommendedMarker(P, Slot).
	Marker badabing.MarkerConfig
	// Estimator selects the streaming estimator the session feeds (the
	// zero value is the improved estimator). Both transports consume the
	// same estimator: the selection is estimation policy, not substrate.
	Estimator estimate.Config
	// WindowSlots is the streaming estimator's sliding-window span; zero
	// disables windowing.
	WindowSlots int64
	// StepSlots is the harvest cadence in slots. Default 1000.
	StepSlots int64
	// StepDelay throttles the session by sleeping this much wall time
	// between harvest steps (useful to pace a simulated session like a
	// live one; a wire session is already paced by its clock).
	StepDelay time.Duration
	// Settle is the stability cutoff for harvesting. Default
	// DefaultSettle.
	Settle time.Duration
}

func (c *Config) applyDefaults() {
	if c.Slot == 0 {
		c.Slot = badabing.DefaultSlot
	}
	if c.StepSlots == 0 {
		c.StepSlots = 1000
	}
	if c.Settle == 0 {
		c.Settle = DefaultSettle
	}
	if c.Marker == (badabing.MarkerConfig{}) {
		c.Marker = badabing.RecommendedMarker(c.P, c.Slot)
	}
}

// estimatorParams shapes the estimator from the session's probe-process
// parameters.
func (c *Config) estimatorParams() estimate.Params {
	return estimate.Params{
		Slot:          c.Slot,
		WindowSlots:   c.WindowSlots,
		ExtendedPairs: c.ExtendedPairs,
	}
}

// schedule draws the session's experiment plan.
func (c *Config) schedule() ([]badabing.Plan, error) {
	return badabing.Schedule(badabing.ScheduleConfig{
		P:                c.P,
		N:                c.Slots,
		Improved:         c.Improved,
		ExtendedFraction: c.ExtendedFraction,
		Seed:             c.Seed,
	})
}

// Counters are a session's probe-level tallies so far.
type Counters struct {
	ProbesSent  int64
	ProbesLost  int64
	PacketsSent int64
	PacketsLost int64
	Experiments int64
	Skipped     int64
}

// Update is one published harvest step: the estimator snapshot, progress
// through the horizon and the tallies backing it.
type Update struct {
	Snapshot  estimate.Snapshot
	SlotsDone int64
	Counters  Counters
}

// Result is a completed session.
type Result struct {
	// Final is the last published update, rebuilt from the full
	// observation set (bit-identical to batch estimation).
	Final Update
	// Plans is the experiment schedule the session ran.
	Plans []badabing.Plan
	// Probes is the number of probe slots the schedule flattened to.
	Probes int
	// Marked is the final per-slot congestion bit map (slots of invalid
	// probes absent), as fed to the estimators.
	Marked map[int64]bool
	// Aborted flags a session cut short because the transport declared
	// the far end dead (ErrPathDead). Final then holds partial estimates
	// covering only the probes answered while the path was alive — the
	// outage itself is excluded, never reported as measured loss.
	Aborted bool
}

// Run drives a full measurement session over the transport: it draws the
// schedule, launches probing, paces the harvest loop, and publishes an
// Update after every step (publish may be nil). It blocks until the
// session completes or ctx is cancelled. The caller owns the transport and
// closes it.
func Run(ctx context.Context, tr Transport, cfg Config, publish func(Update)) (*Result, error) {
	cfg.applyDefaults()
	plans, err := cfg.schedule()
	if err != nil {
		return nil, err
	}
	slots := badabing.ProbeSlots(plans)
	est, err := estimate.New(cfg.Estimator, cfg.estimatorParams())
	if err != nil {
		return nil, err
	}
	if err := tr.Launch(ctx, slots); err != nil {
		return nil, err
	}

	h := &harvester{cfg: &cfg, plans: plans, est: est, publish: publish}
	res := &Result{Plans: plans, Probes: len(slots)}
	horizon := time.Duration(cfg.Slots) * cfg.Slot
	step := time.Duration(cfg.StepSlots) * cfg.Slot
	for t := step; ; t += step {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := t >= horizon+cfg.Settle
		if end {
			t = horizon + cfg.Settle
		}
		if err := tr.AdvanceTo(ctx, t); err != nil {
			if errors.Is(err, ErrPathDead) {
				// The far end died mid-run: harvest what had settled
				// while the path was alive (the transport truncates its
				// observations at the death point) and surface a
				// partial, flagged result alongside the error.
				h.harvest(tr, tr.Now(), true)
				res.Final = h.last
				res.Marked = h.marked
				res.Aborted = true
				return res, err
			}
			return nil, err
		}
		h.harvest(tr, t, end)
		if end {
			res.Final = h.last
			res.Marked = h.marked
			return res, nil
		}
		if cfg.StepDelay > 0 {
			timer := time.NewTimer(cfg.StepDelay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
	}
}

// harvester carries the incremental estimation state across steps.
type harvester struct {
	cfg     *Config
	plans   []badabing.Plan
	est     estimate.Estimator
	publish func(Update)
	fed     int // plans[:fed] have been fed to the stream
	skip    int64
	last    Update
	marked  map[int64]bool
}

// harvest re-marks the settled observations and feeds newly completed
// experiments. At the end of the run it rebuilds the stream from the full
// observation set so the published result matches batch estimation.
func (h *harvester) harvest(tr Transport, now time.Duration, end bool) {
	obs, invalid := tr.Observations()
	cutoff := now - h.cfg.Settle
	if end {
		cutoff = now
	}
	settled := obs
	for i, o := range obs {
		if o.T > cutoff {
			settled = obs[:i]
			break
		}
	}

	var c Counters
	for _, o := range settled {
		c.ProbesSent++
		c.PacketsSent += int64(o.SentPackets)
		c.PacketsLost += int64(o.LostPackets)
		if o.LostPackets > 0 {
			c.ProbesLost++
		}
	}

	bySlot := MarkSlots(settled, invalid, h.cfg.Marker)

	if end {
		// Final pass: re-mark everything and rebuild, discarding the
		// provisional mid-run marks.
		h.est.Reset()
		h.fed = 0
		h.skip = 0
	}
	// Feed experiments whose probes have all settled. An extra marker-τ
	// guard keeps a loss arriving just after the cutoff from changing a
	// mark we already froze.
	feedCutoff := cutoff - h.cfg.Marker.Tau - h.cfg.Slot
	if end {
		feedCutoff = cutoff
	}
	for h.fed < len(h.plans) {
		pl := h.plans[h.fed]
		if time.Duration(pl.Slot+int64(pl.Probes)-1)*h.cfg.Slot > feedCutoff {
			break
		}
		bits := make([]bool, 0, pl.Probes)
		ok := true
		for j := 0; j < pl.Probes; j++ {
			b, present := bySlot[pl.Slot+int64(j)]
			if !present {
				ok = false
				break
			}
			bits = append(bits, b)
		}
		if ok {
			h.est.Observe(pl.Slot, bits)
		} else {
			h.skip++
		}
		h.fed++
	}
	c.Experiments = int64(h.est.M())
	c.Skipped = h.skip

	slotsDone := int64(now / h.cfg.Slot)
	if slotsDone > h.cfg.Slots {
		slotsDone = h.cfg.Slots
	}
	h.last = Update{Snapshot: h.est.Snapshot(), SlotsDone: slotsDone, Counters: c}
	h.marked = bySlot
	if h.publish != nil {
		h.publish(h.last)
	}
}

// MarkSlots is the one shared marking pipeline: it classifies each probe
// observation as congested or not (badabing.Mark) and collapses the result
// to a per-slot congestion-bit map, omitting slots flagged invalid so that
// experiments touching them are skipped by assembly. Every estimation path
// — the session engine, the wire collector's batch reports and the
// control-channel counts — feeds its marker through this function.
func MarkSlots(obs []badabing.ProbeObs, invalid map[int64]bool, cfg badabing.MarkerConfig) map[int64]bool {
	marked := badabing.Mark(obs, cfg)
	bySlot := make(map[int64]bool, len(obs))
	for i, o := range obs {
		if invalid[o.Slot] {
			continue
		}
		bySlot[o.Slot] = bySlot[o.Slot] || marked[i]
	}
	return bySlot
}

// BatchEstimates assembles marked outcomes for a schedule and returns
// the default (improved) estimator's batch estimates plus the number of
// skipped experiments — the batch twin of a session's streaming feed,
// used to cross-check final snapshots. It is a thin replay over the
// pluggable estimator core; BatchSnapshot is the kind-aware form.
func BatchEstimates(plans []badabing.Plan, bySlot map[int64]bool, slot time.Duration, extendedPairs bool) (badabing.Estimates, int) {
	snap, skipped, err := BatchSnapshot(estimate.Config{}, plans, bySlot, slot, extendedPairs)
	if err != nil {
		// The zero estimator config is statically valid.
		panic(err)
	}
	return snap.Total, skipped
}

// BatchSnapshot replays marked outcomes for a schedule through a fresh
// estimator of cfg's kind — the batch pipeline for any estimator kind,
// Float64bits-identical to the final snapshot of a session that ran the
// same schedule, marks and estimator.
func BatchSnapshot(cfg estimate.Config, plans []badabing.Plan, bySlot map[int64]bool, slot time.Duration, extendedPairs bool) (estimate.Snapshot, int, error) {
	snap, skipped, err := estimate.Batch(cfg, estimate.Params{Slot: slot, ExtendedPairs: extendedPairs}, plans, bySlot)
	if err != nil {
		return estimate.Snapshot{}, 0, err
	}
	return snap, skipped, nil
}

// String implements a compact one-line rendering of counters for logs.
func (c Counters) String() string {
	return fmt.Sprintf("probes %d (%d lost) packets %d (%d lost) experiments %d (%d skipped)",
		c.ProbesSent, c.ProbesLost, c.PacketsSent, c.PacketsLost, c.Experiments, c.Skipped)
}
