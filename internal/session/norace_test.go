//go:build !race

package session_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
