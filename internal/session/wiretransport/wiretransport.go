// Package wiretransport adapts the UDP sender/collector pair to the
// session engine's Transport interface, measuring the round trip to an
// echoing far end (wire.Reflector or any dumb echo service): probes are
// paced onto their slot deadlines by a goroutine while the collector logs
// the reflected stream on the same socket, and AdvanceTo sleeps on the
// wall clock.
package wiretransport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/wire"
)

// Transport drives a BADABING session over a real UDP path. Construct it
// with Dial, hand it to session.Run, then Close it.
type Transport struct {
	cfg  wire.SenderConfig
	conn *net.UDPConn
	col  *wire.Collector

	start time.Time
	slots []int64

	mu       sync.Mutex
	sent     int // slots[:sent] have been emitted
	sendErr  error
	stats    wire.SendStats
	launched bool
	done     chan struct{}
}

// Dial connects a UDP socket to target and prepares a round-trip
// measurement transport. cfg must carry the session's exact schedule
// parameters (P, N, Slot, Improved, Seed — in particular a non-zero Seed
// equal to the session Config's), since they are stamped into the wire
// header and the collector's own batch reports re-derive the schedule from
// them.
func Dial(target string, cfg wire.SenderConfig) (*Transport, error) {
	if cfg.Seed == 0 {
		return nil, fmt.Errorf("wiretransport: seed must be pinned to the session's schedule seed")
	}
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	raddr, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		return nil, fmt.Errorf("wiretransport: resolve %s: %w", target, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("wiretransport: dial %s: %w", target, err)
	}
	return &Transport{
		cfg:  cfg,
		conn: conn,
		col:  wire.NewCollector(conn),
		done: make(chan struct{}),
	}, nil
}

// Launch starts the collector loop and the pacing goroutine. The launch
// instant becomes session time zero.
func (t *Transport) Launch(ctx context.Context, slots []int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.launched {
		return fmt.Errorf("wiretransport: already launched")
	}
	t.launched = true
	t.slots = slots
	t.start = time.Now()
	go t.col.Run()
	go func() {
		defer close(t.done)
		st, err := wire.SendSlots(ctx, t.conn, t.cfg, slots, t.start, func(i int, slot int64) {
			t.mu.Lock()
			t.sent = i + 1
			t.mu.Unlock()
		})
		t.mu.Lock()
		t.stats = st
		t.sendErr = err
		t.mu.Unlock()
	}()
	return nil
}

// Now returns the wall-clock time elapsed since Launch.
func (t *Transport) Now() time.Duration {
	t.mu.Lock()
	start := t.start
	t.mu.Unlock()
	if start.IsZero() {
		return 0
	}
	return time.Since(start)
}

// AdvanceTo sleeps until session time tt, then surfaces any error the
// pacing goroutine hit (a dead sender would otherwise stall the session
// silently until its horizon).
func (t *Transport) AdvanceTo(ctx context.Context, tt time.Duration) error {
	t.mu.Lock()
	start := t.start
	t.mu.Unlock()
	if wait := time.Until(start.Add(tt)); wait > 0 {
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
	t.mu.Lock()
	err := t.sendErr
	t.mu.Unlock()
	if err != nil && err != context.Canceled {
		return fmt.Errorf("wiretransport: sender: %w", err)
	}
	return nil
}

// Observations assembles per-probe outcomes for every probe emitted so
// far from the collector's log of the reflected stream, including the
// collector's pacing-lag invalidation and clock-skew correction.
func (t *Transport) Observations() ([]badabing.ProbeObs, map[int64]bool) {
	t.mu.Lock()
	emitted := t.slots[:t.sent]
	t.mu.Unlock()
	obs, invalid, _ := t.col.AssembleObs(t.cfg.ExpID, emitted, t.cfg.PacketsPerProbe, t.cfg.Slot)
	return obs, invalid
}

// Close shuts the socket, terminating the collector loop and (if still
// running) the pacer, and waits for the pacer to exit.
func (t *Transport) Close() error {
	err := t.col.Close()
	t.mu.Lock()
	launched := t.launched
	t.mu.Unlock()
	if launched {
		<-t.done
	}
	return err
}

// Collector exposes the underlying collector so callers can run batch
// reports or snapshots against the same observation log.
func (t *Transport) Collector() *wire.Collector { return t.col }

// ExpID returns the session id stamped on the probes.
func (t *Transport) ExpID() uint64 { return t.cfg.ExpID }

// LocalAddr returns the probing socket's local address.
func (t *Transport) LocalAddr() net.Addr { return t.conn.LocalAddr() }

// SendStats returns the pacer's summary; valid once the session is done.
func (t *Transport) SendStats() wire.SendStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}
